// Command nmostat is the simulated equivalent of `perf stat -e
// mem_access` — the exact-counting baseline of the paper's accuracy
// methodology (§VII, Eq. 1). It runs a workload uninstrumented except
// for counting events (which cost nothing in the model) and prints
// the counters the evaluation needs.
package main

import (
	"flag"
	"fmt"
	"os"

	"nmo"
	"nmo/internal/report"
)

func main() {
	workload := flag.String("workload", "stream", "stream | cfd | bfs")
	threads := flag.Int("threads", 32, "worker threads")
	elems := flag.Int("elems", 2_000_000, "elements/nodes")
	iters := flag.Int("iters", 2, "iterations (stream/cfd) or BFS sources")
	cores := flag.Int("cores", 128, "machine cores")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	if err := run(*workload, *threads, *elems, *iters, *cores, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "nmostat:", err)
		os.Exit(1)
	}
}

func run(workload string, threads, elems, iters, cores int, seed uint64) error {
	var w nmo.Workload
	switch workload {
	case "stream":
		w = nmo.NewStream(nmo.StreamConfig{Elems: elems, Threads: threads, Iters: iters})
	case "cfd":
		w = nmo.NewCFD(nmo.CFDConfig{Elems: elems, Threads: threads, Iters: iters, Seed: seed})
	case "bfs":
		w = nmo.NewBFS(nmo.BFSConfig{Nodes: elems, Degree: 8, Threads: threads, Iters: iters, Seed: seed})
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}

	cfg := nmo.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = nmo.ModeCounters
	cfg.IntervalSec = 0 // counting only, no series
	cfg.Seed = seed

	mach := nmo.NewMachine(nmo.AmpereAltraMax().WithCores(cores))
	prof, err := nmo.Run(cfg, mach, w)
	if err != nil {
		return err
	}

	t := &report.Table{
		Title:   fmt.Sprintf("perf stat (simulated): %s, %d threads", prof.Workload, prof.Threads),
		Headers: []string{"counter", "value"},
	}
	t.AddRow("mem_access", prof.MemAccesses)
	t.AddRow("bus_access", prof.BusAccesses)
	t.AddRow("fp_ops", prof.Flops)
	t.AddRow("cycles (wall)", uint64(prof.Wall))
	t.AddRow("seconds (simulated)", fmt.Sprintf("%.6f", prof.WallSec))
	t.AddRow("arithmetic intensity", fmt.Sprintf("%.4f flops/B", prof.ArithmeticIntensity()))
	return t.Render(os.Stdout)
}
