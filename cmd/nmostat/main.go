// Command nmostat is the simulated equivalent of `perf stat -e
// mem_access` — the exact-counting baseline of the paper's accuracy
// methodology (§VII, Eq. 1). It runs a workload uninstrumented except
// for counting events (which cost nothing in the model) and prints
// the counters the evaluation needs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nmo"
	"nmo/internal/report"
)

// options collects the CLI parameters (a struct so the golden test can
// drive run directly).
type options struct {
	workload string
	threads  int
	elems    int
	iters    int
	cores    int
	seed     uint64
}

func main() {
	var o options
	flag.StringVar(&o.workload, "workload", "stream", "stream | cfd | bfs")
	flag.IntVar(&o.threads, "threads", 32, "worker threads")
	flag.IntVar(&o.elems, "elems", 2_000_000, "elements/nodes")
	flag.IntVar(&o.iters, "iters", 2, "iterations (stream/cfd) or BFS sources")
	flag.IntVar(&o.cores, "cores", 128, "machine cores")
	flag.Uint64Var(&o.seed, "seed", 42, "workload seed")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "nmostat:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, o options) error {
	var w nmo.Workload
	switch o.workload {
	case "stream":
		w = nmo.NewStream(nmo.StreamConfig{Elems: o.elems, Threads: o.threads, Iters: o.iters})
	case "cfd":
		w = nmo.NewCFD(nmo.CFDConfig{Elems: o.elems, Threads: o.threads, Iters: o.iters, Seed: o.seed})
	case "bfs":
		w = nmo.NewBFS(nmo.BFSConfig{Nodes: o.elems, Degree: 8, Threads: o.threads, Iters: o.iters, Seed: o.seed})
	default:
		return fmt.Errorf("unknown workload %q", o.workload)
	}

	cfg := nmo.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = nmo.ModeCounters
	cfg.IntervalSec = 0 // counting only, no series
	cfg.Seed = o.seed

	mach := nmo.NewMachine(nmo.AmpereAltraMax().WithCores(o.cores))
	prof, err := nmo.Run(cfg, mach, w)
	if err != nil {
		return err
	}

	t := &report.Table{
		Title:   fmt.Sprintf("perf stat (simulated): %s, %d threads", prof.Workload, prof.Threads),
		Headers: []string{"counter", "value"},
	}
	t.AddRow("mem_access", prof.MemAccesses)
	t.AddRow("bus_access", prof.BusAccesses)
	t.AddRow("fp_ops", prof.Flops)
	t.AddRow("cycles (wall)", uint64(prof.Wall))
	t.AddRow("seconds (simulated)", fmt.Sprintf("%.6f", prof.WallSec))
	t.AddRow("arithmetic intensity", fmt.Sprintf("%.4f flops/B", prof.ArithmeticIntensity()))
	return t.Render(out)
}
