// Command nmostat is the simulated equivalent of `perf stat -e
// mem_access` — the exact-counting baseline of the paper's accuracy
// methodology (§VII, Eq. 1). It runs a workload uninstrumented except
// for counting events (which cost nothing in the model) and prints
// the counters the evaluation needs.
//
// With -trace it is a trace-file inspector instead: it reads a sample
// trace (v2 files out-of-core — only the footer block index and one
// block at a time are ever resident; v1 .trace.bin loads fully) and
// prints the sample tables from a single scan feeding every
// aggregation. -from/-to (ns) and -core push down to the v2 block
// index, so a narrow query skips most of the file's blocks without
// touching their bytes:
//
//	nmostat -trace run.nmo2
//	nmostat -trace run.nmo2 -from 1000000 -to 2000000 -core 3
//	nmostat -trace legacy.trace.bin -format v1
//
// With -remote it inspects a trace held by an nmod daemon instead:
// -job names the job, -scenario the scenario within it, and the same
// time/core filters are pushed down to the daemon — whole blocks the
// daemon's footer index rules out never cross the wire. Pointed at an
// nmogw fleet gateway the flags are identical; gateway job IDs carry a
// shard prefix (s0-j…) that routes the read to the member holding the
// blob:
//
//	nmostat -remote localhost:8077 -job j0123abcd -from 1000000 -core 3
//	nmostat -remote localhost:8100 -job s0-j0123abcd -core 3
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"nmo"
	"nmo/internal/postproc"
	"nmo/internal/report"
	"nmo/internal/service"
	"nmo/internal/trace"
)

// options collects the CLI parameters (a struct so the golden test can
// drive run directly).
type options struct {
	workload string
	threads  int
	elems    int
	iters    int
	cores    int
	seed     uint64

	// Trace inspection mode (-trace).
	trace  string
	format string
	fromNs uint64
	toNs   uint64
	core   int

	// Remote inspection mode (-remote + -job): fetch a job's trace
	// from an nmod daemon — the time/core flags push down to the
	// daemon's block index, so only admitted blocks cross the wire —
	// and inspect the downloaded stream.
	remote   string
	job      string
	scenario string

	// Stats mode (-remote + -stats): render the daemon's (or, via a
	// gateway, the fleet's summed) /v1/stats counters.
	stats bool

	// token is the bearer credential for daemons in -auth-mode jwt.
	token string
}

func main() {
	var o options
	flag.StringVar(&o.workload, "workload", "stream", "stream | cfd | bfs")
	flag.IntVar(&o.threads, "threads", 32, "worker threads")
	flag.IntVar(&o.elems, "elems", 2_000_000, "elements/nodes")
	flag.IntVar(&o.iters, "iters", 2, "iterations (stream/cfd) or BFS sources")
	flag.IntVar(&o.cores, "cores", 128, "machine cores")
	flag.Uint64Var(&o.seed, "seed", 42, "workload seed")
	flag.StringVar(&o.trace, "trace", "", "inspect a trace file instead of running a workload")
	flag.StringVar(&o.format, "format", "auto", "trace file format: auto | v1 | v2")
	flag.Uint64Var(&o.fromNs, "from", 0, "trace mode: keep samples with time >= from (ns)")
	flag.Uint64Var(&o.toNs, "to", 0, "trace mode: keep samples with time < to (ns; 0 = unbounded)")
	flag.IntVar(&o.core, "core", -1, "trace mode: keep samples from one core (-1 = all)")
	flag.StringVar(&o.remote, "remote", "", "inspect a trace served by an nmod daemon at this address (with -job)")
	flag.StringVar(&o.job, "job", "", "remote mode: job ID to inspect")
	flag.StringVar(&o.scenario, "scenario", "", "remote mode: scenario name or index (default: the first)")
	flag.BoolVar(&o.stats, "stats", false, "remote mode: print the daemon's scheduler/cache counters instead of a trace")
	flag.StringVar(&o.token, "token", os.Getenv("NMO_TOKEN"),
		"remote mode: bearer token for daemons in -auth-mode jwt (default $NMO_TOKEN)")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "nmostat:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, o options) error {
	if o.remote != "" && o.stats {
		return remoteStats(out, o)
	}
	if o.remote != "" {
		return inspectRemote(out, o)
	}
	if o.trace != "" {
		return inspectTrace(out, o)
	}
	var w nmo.Workload
	switch o.workload {
	case "stream":
		w = nmo.NewStream(nmo.StreamConfig{Elems: o.elems, Threads: o.threads, Iters: o.iters})
	case "cfd":
		w = nmo.NewCFD(nmo.CFDConfig{Elems: o.elems, Threads: o.threads, Iters: o.iters, Seed: o.seed})
	case "bfs":
		w = nmo.NewBFS(nmo.BFSConfig{Nodes: o.elems, Degree: 8, Threads: o.threads, Iters: o.iters, Seed: o.seed})
	default:
		return fmt.Errorf("unknown workload %q", o.workload)
	}

	cfg := nmo.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = nmo.ModeCounters
	cfg.IntervalSec = 0 // counting only, no series
	cfg.Seed = o.seed

	mach := nmo.NewMachine(nmo.AmpereAltraMax().WithCores(o.cores))
	prof, err := nmo.Run(cfg, mach, w)
	if err != nil {
		return err
	}

	t := &report.Table{
		Title:   fmt.Sprintf("perf stat (simulated): %s, %d threads", prof.Workload, prof.Threads),
		Headers: []string{"counter", "value"},
	}
	t.AddRow("mem_access", prof.MemAccesses)
	t.AddRow("bus_access", prof.BusAccesses)
	t.AddRow("fp_ops", prof.Flops)
	t.AddRow("cycles (wall)", uint64(prof.Wall))
	t.AddRow("seconds (simulated)", fmt.Sprintf("%.6f", prof.WallSec))
	t.AddRow("arithmetic intensity", fmt.Sprintf("%.4f flops/B", prof.ArithmeticIntensity()))
	return t.Render(out)
}

// remoteStats fetches and renders a daemon's /v1/stats. Pointed at a
// gateway, the same decode yields the fleet-summed counters (FleetStats
// embeds SchedStats), so the cache tier occupancy and traffic rows are
// fleet totals.
func remoteStats(out io.Writer, o options) error {
	client := service.NewClient(o.remote)
	client.Token = o.token
	st, err := client.Stats(context.Background())
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("stats: %s", o.remote),
		Headers: []string{"counter", "value"},
	}
	t.AddRow("submitted", st.Submitted)
	t.AddRow("rejected", st.Rejected)
	t.AddRow("engine runs", st.EngineRuns)
	t.AddRow("cache hits", st.CacheHits)
	t.AddRow("coalesced", st.Coalesced)
	t.AddRow("cache entries", st.CacheEntries)
	t.AddRow("cache evictions", st.CacheEvictions)
	t.AddRow("cache bytes (mem)", st.CacheBytesMem)
	t.AddRow("cache bytes (disk)", st.CacheBytesDisk)
	t.AddRow("cache demotions", st.CacheDemotions)
	t.AddRow("cache promotions", st.CachePromotions)
	t.AddRow("queued", st.Queued)
	t.AddRow("running", st.Running)
	t.AddRow("zc sendfile bytes", st.ZcSendfileBytes)
	t.AddRow("zc splice bytes", st.ZcSpliceBytes)
	t.AddRow("zc fallback bytes", st.ZcFallbackBytes)
	t.AddRow("trace client aborts", st.TraceClientAborts)
	t.AddRow("trace serve errors", st.TraceServeErrors)
	t.AddRow("uptime", fmt.Sprintf("%.1fs", st.UptimeSec))
	for _, p := range st.JobPhases {
		mean := 0.0
		if p.Count > 0 {
			mean = p.TotalSec / float64(p.Count) * 1e3
		}
		t.AddRow("phase "+p.Phase,
			fmt.Sprintf("n=%d total=%.3fs mean=%.2fms", p.Count, p.TotalSec, mean))
	}
	// Per-tenant fair-share rows (present when the daemon runs with a
	// quota table or saw named tenants): weight, live occupancy, totals.
	for _, tn := range st.Tenants {
		t.AddRow("tenant "+tn.Tenant,
			fmt.Sprintf("w=%d queued=%d running=%d inflight=%d submitted=%d runs=%d rejected=%d",
				tn.Weight, tn.Queued, tn.Running, tn.InFlight, tn.Submitted, tn.EngineRuns, tn.Rejected))
	}
	return t.Render(out)
}

// inspectRemote downloads a job's trace from an nmod daemon and
// inspects it. The -from/-to/-core filters are applied server-side
// (block-skip push-down on the daemon's stored blob, exact trim on
// the survivors), so the download already contains only matching
// samples; the local pass then runs unfiltered over the temp file.
func inspectRemote(out io.Writer, o options) error {
	if o.job == "" {
		return fmt.Errorf("-remote needs -job <id> (submit with nmoprof -remote or curl)")
	}
	client := service.NewClient(o.remote)
	client.Token = o.token
	tmp, err := os.CreateTemp("", "nmostat-*.nmo2")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	defer tmp.Close()

	opt := service.NewTraceOptions()
	opt.Scenario = o.scenario
	opt.FromNs, opt.ToNs, opt.Core = o.fromNs, o.toNs, o.core
	n, _, err := client.DownloadTrace(context.Background(), o.job, opt, tmp)
	if err != nil {
		return err
	}
	filtered := o.fromNs != 0 || o.toNs != 0 || o.core >= 0
	mode := "verbatim blob"
	if filtered {
		mode = "server-side filtered restream"
	}
	fmt.Fprintf(out, "fetched %d bytes from %s job %s (%s)\n", n, o.remote, o.job, mode)

	// The downloaded stream is self-contained and pre-filtered;
	// inspect it without reapplying the predicates.
	local := o
	local.trace, local.format = tmp.Name(), "v2"
	local.fromNs, local.toNs, local.core = 0, 0, -1
	return inspectTrace(out, local)
}

// inspectTrace reads a trace file and prints its sample tables. v2
// traces are read out-of-core (footer index + one block at a time);
// the time/core flags push down to the block index as skip hints.
func inspectTrace(out io.Writer, o options) error {
	f, err := os.Open(o.trace)
	if err != nil {
		return err
	}
	defer f.Close()

	format := o.format
	if format == "auto" {
		if format, err = sniffFormat(f); err != nil {
			return err
		}
	}
	var src nmo.SampleSource
	var rd *nmo.TraceReaderV2
	switch format {
	case "v2", "v2.1":
		if rd, err = nmo.OpenTraceV2(f); err != nil {
			return err
		}
		src = rd
	case "v1":
		tr, err := nmo.ReadTraceBinary(f)
		if err != nil {
			return err
		}
		src = tr
	default:
		return fmt.Errorf("unknown trace format %q (auto, v1, v2, v2.1)", format)
	}

	if o.core > 32767 {
		// Core ids are int16 in the sample model; an unchecked cast
		// would silently wrap onto a different core.
		return fmt.Errorf("-core %d out of range (0..32767)", o.core)
	}
	q := postproc.From(src)
	filtered := o.fromNs != 0 || o.toNs != 0 || o.core >= 0
	if o.fromNs != 0 || o.toNs != 0 {
		q = q.TimeBetween(o.fromNs, o.toNs)
	}
	if o.core >= 0 {
		q = q.OnCores(int16(o.core))
	}

	// One scan feeds every table below (and the checksum).
	meta := src.Meta()
	// The checksum row only renders on unfiltered scans; skip the
	// per-sample hashing otherwise.
	sum, err := postproc.Summarize(q, !filtered)
	if err != nil {
		return err
	}

	t := &report.Table{
		Title:   fmt.Sprintf("trace %s (%s): %s", o.trace, format, meta.Workload),
		Headers: []string{"item", "value"},
	}
	t.AddRow("samples (matching)", sum.Count)
	if rd != nil {
		t.AddRow("samples (file)", rd.TotalSamples())
		read, skipped := rd.ScanStats()
		if rd.Compressed() {
			// A skipped v2.1 block skipped its decompression too; the
			// ratio row quantifies what the frames saved on disk.
			t.AddRow("blocks read / skipped",
				fmt.Sprintf("%d / %d (decompress skipped %d)", read, skipped, skipped))
			stored, raw := rd.PayloadSizes()
			t.AddRow("block compression",
				fmt.Sprintf("%d -> %d bytes (%.2fx)", raw, stored, ratio(raw, stored)))
		} else {
			t.AddRow("blocks read / skipped", fmt.Sprintf("%d / %d", read, skipped))
		}
		if !filtered {
			status := "ok"
			if sum.MD5 != rd.MD5() {
				status = "MISMATCH"
			}
			t.AddRow("payload MD5", fmt.Sprintf("%x (%s)", rd.MD5(), status))
		}
	} else if !filtered {
		t.AddRow("payload MD5", fmt.Sprintf("%x", sum.MD5))
	}
	t.AddRow("mean latency (cycles)", fmt.Sprintf("%.1f", sum.MeanLat.Mean()))
	t.AddRow("latency p50/p90/p99", fmt.Sprintf("%.0f / %.0f / %.0f",
		sum.Lat.Percentile(50), sum.Lat.Percentile(90), sum.Lat.Percentile(99)))
	if err := t.Render(out); err != nil {
		return err
	}

	for _, sect := range []struct {
		title  string
		groups []postproc.Group
	}{
		{"Samples by region", sum.ByRegion.Groups()},
		{"Samples by kernel", sum.ByKernel.Groups()},
		{"Samples by core", sum.ByCore.Groups()},
	} {
		gt := &report.Table{Title: sect.title, Headers: []string{"tag", "count"}}
		for _, g := range sect.groups {
			gt.AddRow(g.Key, g.Count)
		}
		if err := gt.Render(out); err != nil {
			return err
		}
	}
	return report.LevelTable(out, sum.Levels.By)
}

// ratio returns raw/stored (0 when stored is 0 — an empty trace).
func ratio(raw, stored uint64) float64 {
	if stored == 0 {
		return 0
	}
	return float64(raw) / float64(stored)
}

// sniffFormat distinguishes v1, v2 and v2.1 traces by their magic and
// rewinds the file.
func sniffFormat(f io.ReadSeeker) (string, error) {
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return "", fmt.Errorf("%w: short file", trace.ErrBadTrace)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	switch binary.LittleEndian.Uint32(magic[:]) {
	case trace.MagicV1:
		return "v1", nil
	case trace.MagicV2:
		return "v2", nil
	case trace.MagicV21:
		return "v2.1", nil
	}
	return "", fmt.Errorf("%w: unrecognized magic %x", trace.ErrBadTrace, magic)
}
