package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenStreamStat pins nmostat's exact output over a small canned
// run: the simulation is deterministic, so the counter table is
// reproducible byte for byte. Run with -update after an intentional
// model change.
func TestGoldenStreamStat(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, options{
		workload: "stream", threads: 4, elems: 20_000, iters: 2, cores: 8, seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stream_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{workload: "spec2017"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestStatDeterministicAcrossRuns guards the golden against hidden
// run-to-run state: two identical invocations must render the same
// bytes.
func TestStatDeterministicAcrossRuns(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		err := run(&buf, options{
			workload: "bfs", threads: 2, elems: 5_000, iters: 2, cores: 4, seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("two identical nmostat runs rendered different output")
	}
}
