package main

import (
	"bytes"
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmo"
	"nmo/internal/service"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenStreamStat pins nmostat's exact output over a small canned
// run: the simulation is deterministic, so the counter table is
// reproducible byte for byte. Run with -update after an intentional
// model change.
func TestGoldenStreamStat(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, options{
		workload: "stream", threads: 4, elems: 20_000, iters: 2, cores: 8, seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stream_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{workload: "spec2017"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// writeTestTraces profiles a small run streaming to a v2 file and also
// writes the same trace in v1 form, returning both paths.
func writeTestTraces(t *testing.T) (v2path, v1path string) {
	t.Helper()
	dir := t.TempDir()
	v2path = filepath.Join(dir, "t.nmo2")
	v1path = filepath.Join(dir, "t.trace.bin")

	cfg := nmo.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = nmo.ModeSample
	cfg.Period = 500
	cfg.Seed = 42
	mach := nmo.NewMachine(nmo.AmpereAltraMax().WithCores(4))
	w := nmo.NewStream(nmo.StreamConfig{Elems: 20_000, Threads: 4, Iters: 2})
	p, err := nmo.Run(cfg, mach, w)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := os.Create(v1path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Trace.WriteBinary(f1); err != nil {
		t.Fatal(err)
	}
	f1.Close()

	cfg.TraceOut = v2path
	if _, err := nmo.Run(cfg, nmo.NewMachine(nmo.AmpereAltraMax().WithCores(4)), w); err != nil {
		t.Fatal(err)
	}
	return v2path, v1path
}

// TestInspectTraceV2AndV1 drives the -trace mode over both formats:
// the same sample population must render the same counts, the v2
// checksum must verify, and format sniffing must pick the right
// decoder.
func TestInspectTraceV2AndV1(t *testing.T) {
	v2path, v1path := writeTestTraces(t)
	render := func(o options) string {
		var buf bytes.Buffer
		if err := run(&buf, o); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	outV2 := render(options{trace: v2path, format: "auto", core: -1})
	outV1 := render(options{trace: v1path, format: "auto", core: -1})
	if !strings.Contains(outV2, "(v2): stream") || !strings.Contains(outV1, "(v1): stream") {
		t.Errorf("format sniffing failed:\n%s\n%s", outV2, outV1)
	}
	if !strings.Contains(outV2, "(ok)") {
		t.Errorf("v2 checksum did not verify:\n%s", outV2)
	}
	// Same sample tables from both formats: compare the shared suffix
	// (region/kernel/core/level sections).
	tail := func(s string) string {
		i := strings.Index(s, "## Samples by region")
		if i < 0 {
			t.Fatalf("no region table:\n%s", s)
		}
		return s[i:]
	}
	if tail(outV2) != tail(outV1) {
		t.Errorf("v1/v2 tables differ:\n%s\nvs\n%s", tail(outV2), tail(outV1))
	}
}

// TestInspectTracePushdown: a narrow time/core query must report block
// skips and a reduced matching count.
func TestInspectTracePushdown(t *testing.T) {
	v2path, _ := writeTestTraces(t)
	var buf bytes.Buffer
	if err := run(&buf, options{trace: v2path, format: "v2", fromNs: 1, toNs: 2, core: 0}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "blocks read / skipped") {
		t.Errorf("no pushdown stats:\n%s", out)
	}
	squeezed := strings.Join(strings.Fields(out), " ")
	if !strings.Contains(squeezed, "samples (matching) 0 ") {
		t.Errorf("narrow query matched samples:\n%s", out)
	}
	// A core id past int16 must be rejected, not wrapped onto core 0.
	if err := run(&buf, options{trace: v2path, format: "v2", core: 65536}); err == nil {
		t.Error("out-of-range -core accepted")
	}
}

// TestInspectTraceCorruptFails: malformed inputs error, never panic.
func TestInspectTraceCorruptFails(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.nmo2")
	if err := os.WriteFile(bad, []byte("garbage that is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, options{trace: bad, format: "auto", core: -1}); err == nil {
		t.Fatal("garbage accepted")
	}
	v2path, _ := writeTestTraces(t)
	full, err := os.ReadFile(v2path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.nmo2")
	if err := os.WriteFile(trunc, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, options{trace: trunc, format: "v2", core: -1}); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// TestStatDeterministicAcrossRuns guards the golden against hidden
// run-to-run state: two identical invocations must render the same
// bytes.
func TestStatDeterministicAcrossRuns(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		err := run(&buf, options{
			workload: "bfs", threads: 2, elems: 5_000, iters: 2, cores: 4, seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("two identical nmostat runs rendered different output")
	}
}

// TestRemoteInspect drives the -remote mode against an in-process nmod
// service: the inspector downloads the job's trace over HTTP (time
// filters pushed down to the daemon) and its tables must match an
// inspection of the byte-identical local file.
func TestRemoteInspect(t *testing.T) {
	sched := service.NewScheduler(service.SchedConfig{Workers: 1}, nil)
	defer sched.Close()
	srv := httptest.NewServer(service.NewServer(sched))
	defer srv.Close()

	client := service.NewClient(srv.URL)
	ctx := context.Background()
	info, err := client.Submit(ctx, service.JobSpec{Scenarios: []service.ScenarioSpec{{
		Workload: "stream", Threads: 4, Elems: 30_000, Iters: 2, Cores: 8, Seed: 42, Period: 700,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, info.ID, 0); err != nil {
		t.Fatal(err)
	}

	var remoteOut bytes.Buffer
	err = run(&remoteOut, options{
		remote: srv.URL, job: info.ID, core: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := remoteOut.String()
	if !strings.Contains(out, "Samples by region") || !strings.Contains(out, "payload MD5") {
		t.Errorf("remote inspection output incomplete:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("remote trace failed checksum verification:\n%s", out)
	}

	// The local inspection of the downloaded-equivalent bytes prints
	// the same tables: dump the blob to a file and inspect it.
	dir := t.TempDir()
	local := filepath.Join(dir, "remote.nmo2")
	f, err := os.Create(local)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.DownloadTrace(ctx, info.ID, service.NewTraceOptions(), f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var localOut bytes.Buffer
	if err := run(&localOut, options{trace: local, format: "v2", core: -1}); err != nil {
		t.Fatal(err)
	}
	// Outputs differ only in the fetch banner and the file name row;
	// compare from the first table section onward.
	tail := func(s string) string {
		if i := strings.Index(s, "## Samples by region"); i >= 0 {
			return s[i:]
		}
		return s
	}
	if tail(remoteOut.String()) != tail(localOut.String()) {
		t.Errorf("remote and local inspections disagree:\n--- remote ---\n%s\n--- local ---\n%s",
			tail(remoteOut.String()), tail(localOut.String()))
	}

	// Filtered remote inspection: the daemon trims server-side.
	var filtered bytes.Buffer
	if err := run(&filtered, options{remote: srv.URL, job: info.ID, core: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filtered.String(), "server-side filtered restream") {
		t.Errorf("filtered fetch not announced:\n%s", filtered.String())
	}
}

// TestRemoteStats drives the -stats mode: the rendered table must
// carry the daemon's scheduler counters, including the two-tier cache
// gauges added for the spill store.
func TestRemoteStats(t *testing.T) {
	sched := service.NewScheduler(service.SchedConfig{Workers: 1}, nil)
	defer sched.Close()
	srv := httptest.NewServer(service.NewServer(sched))
	defer srv.Close()

	client := service.NewClient(srv.URL)
	ctx := context.Background()
	info, err := client.Submit(ctx, service.JobSpec{Scenarios: []service.ScenarioSpec{{
		Workload: "stream", Threads: 2, Elems: 10_000, Iters: 1, Cores: 4, Seed: 42, Period: 700,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, info.ID, 0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(&buf, options{remote: srv.URL, stats: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"submitted", "engine runs", "cache bytes (mem)", "cache bytes (disk)",
		"cache demotions", "cache promotions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	squeezed := strings.Join(strings.Fields(out), " ")
	if !strings.Contains(squeezed, "submitted 1") || !strings.Contains(squeezed, "engine runs 1") {
		t.Errorf("stats counters wrong:\n%s", out)
	}
	// One finished sampling job lives in the memory tier.
	if !strings.Contains(squeezed, "cache entries 1") {
		t.Errorf("cache entries not reported:\n%s", out)
	}
	// The observability rows: process uptime plus one row per job
	// lifecycle phase, each carrying the single run's observation.
	if !strings.Contains(out, "uptime") {
		t.Errorf("uptime row missing:\n%s", out)
	}
	for _, phase := range []string{"cache_lookup", "queue_wait", "run", "digest", "spill"} {
		if !strings.Contains(out, "phase "+phase) {
			t.Errorf("phase row %q missing:\n%s", phase, out)
		}
	}
	if !strings.Contains(squeezed, "phase run n=1") {
		t.Errorf("run phase should have one observation:\n%s", out)
	}
}
