// Command nmod is the nmo profiling daemon: a long-running service
// that schedules simulation jobs, deduplicates identical submissions
// through a content-addressed result cache, and streams v2 traces
// over HTTP. It turns the one-shot CLIs into front-ends — nmoprof
// -remote and nmostat -remote speak this API — and is the service
// layer the ROADMAP's many-users north star needs.
//
//	nmod -addr :8077 -workers 4 -engine-jobs 2 -cache-dir nmo-cache
//
//	# submit a sweep
//	curl -s localhost:8077/v1/jobs -d '{
//	  "scenarios": [{"workload": "stream", "threads": 8, "elems": 200000}]
//	}'
//	# poll, then stream the trace
//	curl -s localhost:8077/v1/jobs/<id>
//	curl -s localhost:8077/v1/jobs/<id>/trace -o run.nmo2
//
// Admission control: -workers bounds concurrently running jobs,
// -queue bounds the waiting line (429 beyond it), and -backend-slots
// caps how many running jobs may occupy one sampling backend, so a
// flood of SPE sweeps cannot starve PEBS work (and vice versa).
// Identical jobs — same canonical config, machine spec and workload
// shape — are answered from the cache without re-simulating; the
// simulator's determinism makes the cached bytes exactly what a fresh
// run would produce.
//
// The cache is two-tier: -cache-mem-mib bounds the in-memory hot set
// and, when -cache-dir (or NMO_CACHE_DIR) names a spill directory,
// -cache-disk-mib bounds an on-disk tier of verified v2/v2.1 files
// that survives restarts — a daemon restarted on its spill directory
// answers previously computed jobs without re-simulating.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nmo/internal/auth"
	"nmo/internal/obs"
	"nmo/internal/sampler"
	"nmo/internal/service"
	"nmo/internal/zerocopy"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 2, "concurrently running jobs")
	queueCap := flag.Int("queue", 64, "max queued jobs (submissions beyond it get 429)")
	engineJobs := flag.Int("engine-jobs", 1, "engine worker-pool size per job (results identical at any value)")
	cacheDir := flag.String("cache-dir", os.Getenv("NMO_CACHE_DIR"),
		"cache spill directory; restart-surviving disk tier (default $NMO_CACHE_DIR; empty = memory-only)")
	cacheMemMiB := flag.Int("cache-mem-mib", 256, "in-memory cache tier budget, MiB")
	cacheDiskMiB := flag.Int("cache-disk-mib", 4096, "on-disk cache tier budget, MiB (needs -cache-dir)")
	backendSlots := flag.Int("backend-slots", 0, "max running jobs per sampling backend (0 = unlimited)")
	auditLog := flag.String("audit-log", os.Getenv("NMO_AUDIT_LOG"),
		"append-only JSONL audit file: one event per HTTP request and job transition (default $NMO_AUDIT_LOG; empty = off)")
	debugAddr := flag.String("debug-addr", "",
		"private listen address serving net/http/pprof under /debug/pprof/ (empty = off)")
	authMode := flag.String("auth-mode", "none",
		"request authentication: none (dev X-Nmo-Tenant header tenancy) or jwt (HS256 bearer tokens)")
	authKeyFile := flag.String("auth-hmac-key-file", "",
		"file holding the HS256 verification key (required for -auth-mode jwt; also verifies the gateway's signed tenant header)")
	quotasFile := flag.String("tenant-quotas", "",
		"JSON tenant quota table: fair-share weights, rate limits, max in-flight (empty = unlimited)")
	flag.Parse()

	acfg, err := auth.LoadConfig(*authMode, *authKeyFile, *quotasFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmod:", err)
		os.Exit(1)
	}
	ccfg := service.CacheConfig{
		Dir:        *cacheDir,
		MemBudget:  int64(*cacheMemMiB) << 20,
		DiskBudget: int64(*cacheDiskMiB) << 20,
	}
	if err := run(*addr, *workers, *queueCap, *engineJobs, *backendSlots, ccfg, acfg, *auditLog, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "nmod:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queueCap, engineJobs, backendSlots int, ccfg service.CacheConfig, acfg auth.Config, auditLog, debugAddr string) error {
	var audit *obs.AuditLog
	if auditLog != "" {
		var err error
		if audit, err = obs.OpenAudit(auditLog); err != nil {
			return fmt.Errorf("audit log %s: %w", auditLog, err)
		}
		defer audit.Close()
	}
	if debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(debugAddr, obs.DebugHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "nmod: debug listener:", err)
			}
		}()
	}
	cfg := service.SchedConfig{
		Workers:    workers,
		QueueCap:   queueCap,
		EngineJobs: engineJobs,
		Metrics:    service.NewMetrics(audit),
		Quotas:     acfg.Quotas,
	}
	if backendSlots > 0 {
		cfg.BackendSlots = map[sampler.Kind]int{}
		for _, k := range sampler.Kinds() {
			cfg.BackendSlots[k] = backendSlots
		}
	}
	cache, err := service.NewCache(ccfg)
	if err != nil {
		return fmt.Errorf("cache dir %s: %w", ccfg.Dir, err)
	}
	sched := service.NewScheduler(cfg, cache)
	defer sched.Close()

	// The listener is wrapped for the zero-copy data plane: accepted
	// conns cache a raw fd so unfiltered file-tier trace serves run
	// sendfile(2) instead of the pooled copy, and ConnContext lets the
	// trace handler pick the right serve tier per request. Counters
	// are shared with the handler so /v1/stats sees both sides.
	mw, err := auth.NewMiddleware(acfg)
	if err != nil {
		return err
	}
	h := service.NewServer(sched, service.WithAuth(mw))
	srv := &http.Server{Addr: addr, Handler: h, ConnContext: zerocopy.ConnContext}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	// Graceful shutdown: stop accepting, drain in-flight HTTP, then
	// the deferred scheduler Close cancels whatever is still queued.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(zerocopy.WrapListener(ln, h.ZeroCopy())) }()
	tier := "memory-only"
	if ccfg.Dir != "" {
		tier = "spill dir " + ccfg.Dir
	}
	fmt.Printf("nmod: listening on %s (%d workers, engine-jobs %d, queue %d, cache %s, auth %s)\n",
		addr, workers, engineJobs, queueCap, tier, acfg.Mode)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("nmod: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shctx)
}
