// Command nmoprof profiles one of the five paper workloads under the
// NMO_* environment configuration (Table I), mirroring how the real
// tool attaches via LD_PRELOAD and is configured by environment:
//
//	NMO_ENABLE=1 NMO_MODE=full NMO_PERIOD=4096 NMO_TRACK_RSS=1 \
//	    nmoprof -workload stream -threads 32
//
// It writes <NMO_NAME>.trace.csv, <NMO_NAME>.trace.bin and
// <NMO_NAME>.{capacity,bandwidth}.csv next to the working directory
// and prints a summary with the trace MD5.
package main

import (
	"flag"
	"fmt"
	"os"

	"nmo"
	"nmo/internal/analysis"
	"nmo/internal/experiments"
	"nmo/internal/report"
)

func main() {
	workload := flag.String("workload", "stream", "stream | cfd | bfs | pagerank | inmem")
	threads := flag.Int("threads", 32, "worker threads (cycle-level workloads)")
	elems := flag.Int("elems", 2_000_000, "elements/nodes for cycle-level workloads")
	iters := flag.Int("iters", 2, "iterations for stream/cfd")
	cores := flag.Int("cores", 128, "machine cores")
	seed := flag.Uint64("seed", 42, "workload/profiler seed")
	flag.Parse()

	if err := run(*workload, *threads, *elems, *iters, *cores, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "nmoprof:", err)
		os.Exit(1)
	}
}

func run(workload string, threads, elems, iters, cores int, seed uint64) error {
	cfg, err := nmo.FromEnv()
	if err != nil {
		return err
	}
	cfg.Seed = seed
	if !cfg.Enable {
		fmt.Println("NMO_ENABLE is not set; running uninstrumented (timing only).")
	}

	spec := nmo.AmpereAltraMax().WithCores(cores)
	var w nmo.Workload
	switch workload {
	case "stream":
		w = nmo.NewStream(nmo.StreamConfig{Elems: elems, Threads: threads, Iters: iters})
	case "cfd":
		w = nmo.NewCFD(nmo.CFDConfig{Elems: elems, Threads: threads, Iters: iters, Seed: seed})
	case "bfs":
		w = nmo.NewBFS(nmo.BFSConfig{Nodes: elems, Degree: 8, Threads: threads, Iters: 3, Seed: seed})
	case "pagerank", "inmem":
		// Phase-level workloads run on the scaled clock.
		sc := experiments.DefaultScale()
		sc.Cores = cores
		res, err := experiments.CloudTemporal(sc, map[string]string{
			"pagerank": "pagerank", "inmem": "inmem"}[workload])
		if err != nil {
			return err
		}
		fmt.Printf("%s: wall %.1fs, peak RSS %.1f GiB (%.1f%% of machine), peak bandwidth %.1f GiB/s\n",
			res.Workload, res.WallSec, res.PeakRSSGiB, res.UtilizationPct, res.PeakBWGiBps)
		if err := writeSeries(cfg.Name+".capacity.csv", &res.Capacity); err != nil {
			return err
		}
		return writeSeries(cfg.Name+".bandwidth.csv", &res.Bandwidth)
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}

	mach := nmo.NewMachine(spec)
	prof, err := nmo.Run(cfg, mach, w)
	if err != nil {
		return err
	}

	fmt.Printf("workload %s, %d threads: wall %d cycles (%.3f ms simulated)\n",
		prof.Workload, prof.Threads, prof.Wall, prof.WallSec*1e3)
	if cfg.Enable {
		fmt.Printf("mem accesses (perf stat): %d; bus accesses: %d; arithmetic intensity: %.4f flops/B\n",
			prof.MemAccesses, prof.BusAccesses, prof.ArithmeticIntensity())
	}
	if cfg.Mode.Sampling() {
		fmt.Printf("SPE: %d selected, %d processed, %d collisions, %d truncated, %d invalid-skipped\n",
			prof.SPE.Selected, prof.SPE.Processed, prof.SPE.Collisions,
			prof.SPE.TruncatedHW, prof.SPE.SkippedInvalid)
		fmt.Printf("Eq.(1) accuracy: %.2f%%\n",
			100*nmo.Accuracy(prof.MemAccesses, prof.SPE.Processed, cfg.EffectivePeriod()))
		fmt.Printf("trace MD5: %x (%d samples stored)\n", prof.MD5, len(prof.Trace.Samples))

		t := &report.Table{Title: "Samples by region", Headers: []string{"region", "count"}}
		for name, n := range prof.Trace.CountByRegion() {
			t.AddRow(name, n)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}

		// Cache-activity view from the SPE data-source packets.
		lv := analysis.LevelBreakdown(prof.Trace)
		lt := &report.Table{Title: "Samples by memory level (data source)",
			Headers: []string{"level", "count"}}
		for i, name := range []string{"L1", "L2", "SLC", "DRAM"} {
			lt.AddRow(name, lv[i])
		}
		if err := lt.Render(os.Stdout); err != nil {
			return err
		}
		p50, p90, p99 := analysis.LatencyPercentiles(prof.Trace)
		fmt.Printf("sampled latency percentiles: p50=%.0f p90=%.0f p99=%.0f cycles\n", p50, p90, p99)

		f, err := os.Create(cfg.Name + ".trace.csv")
		if err != nil {
			return err
		}
		if err := prof.Trace.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		fb, err := os.Create(cfg.Name + ".trace.bin")
		if err != nil {
			return err
		}
		if err := prof.Trace.WriteBinary(fb); err != nil {
			fb.Close()
			return err
		}
		fb.Close()
		fmt.Printf("wrote %s.trace.csv and %s.trace.bin\n", cfg.Name, cfg.Name)
	}
	if cfg.Mode.Counters() {
		if err := writeSeries(cfg.Name+".bandwidth.csv", &prof.Bandwidth); err != nil {
			return err
		}
		if cfg.TrackRSS {
			if err := writeSeries(cfg.Name+".capacity.csv", &prof.Capacity); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(path string, s *nmo.Series) error {
	if len(s.Points) == 0 {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("wrote %s\n", path)
	return s.WriteCSV(f)
}
