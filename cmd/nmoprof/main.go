// Command nmoprof profiles the paper workloads under the NMO_*
// environment configuration (Table I), mirroring how the real tool
// attaches via LD_PRELOAD and is configured by environment:
//
//	NMO_ENABLE=1 NMO_MODE=full NMO_PERIOD=4096 NMO_TRACK_RSS=1 \
//	    nmoprof -workload stream -threads 32
//
// -workload accepts a comma-separated list; cycle-level workloads
// (stream, cfd, bfs) then execute concurrently on the internal/engine
// worker pool, bounded by -jobs. Cycle-level summaries print in
// request order, followed by the phase-level (pagerank, inmem)
// timelines; per-workload profiles stay bit-identical at any -jobs
// value. -backend (or NMO_BACKEND) selects the sampling backend and
// with it the simulated platform: spe profiles on the ARM Altra,
// pebs on the Intel Ice Lake part.
//
// It writes <NMO_NAME>.trace.csv, <NMO_NAME>.trace.bin and
// <NMO_NAME>.{capacity,bandwidth}.csv next to the working directory
// and prints a summary with the trace MD5. With several workloads the
// file base becomes <NMO_NAME>.<workload>.
//
// With -trace-out (or NMO_TRACE_OUT) the samples stream into a
// blocked, indexed v2 trace file instead of being materialized in
// memory: the run's sample footprint is one block, and the summary
// tables are derived afterwards by scanning the file out-of-core
// (one pass, several aggregations). With several workloads the
// workload name is inserted before the file extension.
//
// With -remote <addr> nothing simulates locally: the request becomes
// an nmod job (cycle-level workloads only), the daemon runs — or
// serves from its content-addressed cache — and the tables, counters
// and trace files below come over HTTP. The streamed v2 file is
// byte-identical to what the same invocation writes locally. The
// address may equally be an nmogw fleet gateway: the gateway speaks
// the same API, consistent-hashes the submission onto the shard whose
// cache owns its content address, and nothing here changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nmo"
	"nmo/internal/analysis"
	"nmo/internal/engine"
	"nmo/internal/experiments"
	"nmo/internal/postproc"
	"nmo/internal/report"
	"nmo/internal/service"
	"nmo/internal/workloads"
)

func main() {
	// Defaults shared with the nmod wire format (service.Default*), so
	// a defaulted -remote submission equals a defaulted local run.
	workload := flag.String("workload", "stream",
		"comma-separated list of stream | cfd | bfs | pagerank | inmem")
	threads := flag.Int("threads", service.DefaultThreads, "worker threads (cycle-level workloads)")
	elems := flag.Int("elems", service.DefaultElems, "elements/nodes for cycle-level workloads")
	iters := flag.Int("iters", service.DefaultIters, "iterations for stream/cfd")
	cores := flag.Int("cores", service.DefaultCores, "machine cores")
	seed := flag.Uint64("seed", service.DefaultSeed, "workload/profiler seed")
	jobs := flag.Int("jobs", 0, "parallel scenario workers (0 = one per CPU, 1 = serial)")
	backend := flag.String("backend", "",
		"sampling backend ("+nmo.SupportedBackends()+"); selects the machine ISA (default spe on ARM); overrides NMO_BACKEND")
	traceOut := flag.String("trace-out", "",
		"stream samples to an indexed v2 trace file (bounded memory); overrides NMO_TRACE_OUT")
	traceCompress := flag.Bool("trace-compress", false,
		"store the trace in the v2.1 format (per-block compression, same checksum); overrides NMO_TRACE_COMPRESS")
	remote := flag.String("remote", "",
		"submit to an nmod daemon at this address instead of simulating locally")
	priority := flag.Int("priority", 0, "remote mode: job priority (higher runs first)")
	token := flag.String("token", os.Getenv("NMO_TOKEN"),
		"remote mode: bearer token for daemons in -auth-mode jwt (default $NMO_TOKEN)")
	flag.Parse()

	if err := run(*workload, *threads, *elems, *iters, *cores, *seed, *jobs, *backend, *traceOut, *traceCompress, *remote, *priority, *token); err != nil {
		fmt.Fprintln(os.Stderr, "nmoprof:", err)
		os.Exit(1)
	}
}

func run(workload string, threads, elems, iters, cores int, seed uint64, jobs int, backend, traceOut string, traceCompress bool, remote string, priority int, token string) error {
	cfg, err := nmo.FromEnv()
	if err != nil {
		return err
	}
	cfg.Seed = seed
	if backend != "" {
		// The parse error names every supported backend.
		kind, err := nmo.ParseBackend(backend)
		if err != nil {
			return fmt.Errorf("-backend: %w", err)
		}
		cfg.Backend = kind
	}
	if traceOut != "" {
		cfg.TraceOut = traceOut
	}
	if traceCompress {
		cfg.TraceCompress = true
	}
	if remote != "" {
		return runRemote(remote, token, workload, threads, elems, iters, cores, seed, priority, cfg)
	}
	if !cfg.Enable {
		fmt.Println("NMO_ENABLE is not set; running uninstrumented (timing only).")
		if cfg.TraceOut != "" {
			fmt.Println("WARNING: -trace-out is ignored while profiling is disabled; no trace file will be written.")
		}
	}

	names := strings.Split(workload, ",")
	seen := make(map[string]bool, len(names))
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if seen[names[i]] {
			// Output files are keyed by workload name; duplicates
			// would silently overwrite each other.
			return fmt.Errorf("workload %q requested twice", names[i])
		}
		seen[names[i]] = true
	}
	multi := len(names) > 1

	// Split the request into cycle-level scenarios (sharded across the
	// engine pool) and phase-level CloudSuite timelines. The backend
	// pins the platform: SPE profiles on the Altra, PEBS on the Ice
	// Lake part.
	spec := nmo.SpecForBackend(cfg.Backend).WithCores(cores)
	var scenarios []engine.Scenario
	var cloud []string
	for _, name := range names {
		switch name {
		case "pagerank", "inmem":
			cloud = append(cloud, name)
			continue
		case "stream", "cfd", "bfs":
		default:
			return fmt.Errorf("unknown workload %q", name)
		}
		// The canonical constructor shared with the nmod resolver —
		// remote and local runs build identical workloads.
		name := name
		factory := func() (workloads.Workload, error) {
			return workloads.NewStandard(name, elems, threads, iters, seed)
		}
		// Each scenario writes its own v2 file: distinct paths when
		// several workloads share one -trace-out request.
		scfg := cfg
		if cfg.TraceOut != "" && multi {
			scfg.TraceOut = insertName(cfg.TraceOut, name)
		}
		scenarios = append(scenarios, engine.Scenario{
			Name: name, Spec: spec, Config: scfg, Workload: factory,
		})
	}

	results := engine.Runner{Jobs: jobs}.RunAll(scenarios)
	for i, res := range results {
		if res.Err != nil {
			return res.Err
		}
		base := cfg.Name
		if multi {
			base = cfg.Name + "." + scenarios[i].Name
		}
		if err := report1(res.Profile, scenarios[i].Config, base); err != nil {
			return err
		}
	}

	for _, name := range cloud {
		sc := experiments.DefaultScale()
		sc.Cores = cores
		res, err := experiments.CloudTemporal(sc, name)
		if err != nil {
			return err
		}
		base := cfg.Name
		if multi {
			base = cfg.Name + "." + name
		}
		fmt.Printf("%s: wall %.1fs, peak RSS %.1f GiB (%.1f%% of machine), peak bandwidth %.1f GiB/s\n",
			res.Workload, res.WallSec, res.PeakRSSGiB, res.UtilizationPct, res.PeakBWGiBps)
		if err := writeSeries(base+".capacity.csv", &res.Capacity); err != nil {
			return err
		}
		if err := writeSeries(base+".bandwidth.csv", &res.Bandwidth); err != nil {
			return err
		}
	}
	return nil
}

// runRemote maps the CLI request onto a service JobSpec, submits it to
// the nmod daemon, and renders the returned result document — the
// tables arrive as data, so the output matches a local run's. With
// -trace-out the job's v2 trace streams into the requested file(s);
// resubmitting an identical request is a daemon cache hit and costs no
// simulation.
func runRemote(addr, token, workload string, threads, elems, iters, cores int, seed uint64, priority int, cfg nmo.Config) error {
	if seed == 0 {
		// The wire format uses 0 for "default seed"; submitting it
		// would silently simulate seed 42 instead of seed 0.
		return fmt.Errorf("-remote cannot represent -seed 0 (the wire treats 0 as \"use the default\"); pick a nonzero seed")
	}
	if cfg.Arch != "" {
		// Unrepresentable on the wire: dropping it would happily run
		// the wrong platform where a local run refuses to start.
		return fmt.Errorf("-remote cannot represent NMO_ARCH=%s; pin the platform with -backend instead", cfg.Arch)
	}
	if err := cfg.Validate(); err != nil {
		// Mirror the local rejection (e.g. NMO_TRACE_OUT with a
		// non-sampling mode) instead of silently succeeding with no
		// trace to download.
		return err
	}
	ctx := context.Background()
	mode := cfg.Mode.String()
	if !cfg.Enable {
		mode = "none"
		fmt.Println("NMO_ENABLE is not set; submitting an uninstrumented timing run.")
	}

	var spec service.JobSpec
	spec.Priority = priority
	names := strings.Split(workload, ",")
	for i := range names {
		name := strings.TrimSpace(names[i])
		switch name {
		case "pagerank", "inmem":
			return fmt.Errorf("workload %q is phase-level; the nmod service serves the cycle-level engine path (run it locally)", name)
		}
		spec.Scenarios = append(spec.Scenarios, service.ScenarioSpec{
			Name:     name,
			Workload: name,
			Threads:  threads,
			Elems:    elems,
			Iters:    iters,
			Cores:    cores,
			Seed:     seed,
			Backend:  string(cfg.Backend),
			Mode:     mode,
			Period:   cfg.Period,
			TrackRSS: cfg.TrackRSS,
			BufMiB:   cfg.BufMiB,
			AuxMiB:   cfg.AuxMiB,
			Compress: cfg.TraceCompress,
		})
	}

	client := service.NewClient(addr)
	client.Token = token
	info, err := client.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted job %s (key %.12s…, cached=%t)\n", info.ID, info.Key, info.Cached)
	if info, err = client.Wait(ctx, info.ID, 0); err != nil {
		return err
	}
	doc, err := client.Result(ctx, info.ID)
	if err != nil {
		return err
	}

	multi := len(spec.Scenarios) > 1
	for _, sr := range doc.Scenarios {
		fmt.Printf("workload %s, %d threads: wall %d cycles (%.3f ms simulated)\n",
			sr.Workload, threads, sr.WallCycles, sr.WallSec*1e3)
		if sr.Samples > 0 {
			fmt.Printf("mem accesses: %d; %s samples: %d; Eq.(1) accuracy: %.2f%%\n",
				sr.MemAccesses, strings.ToUpper(sr.Backend), sr.Samples, 100*sr.Accuracy)
			fmt.Printf("trace MD5: %s (%d samples, %d blocks, %d bytes on the daemon)\n",
				sr.TraceMD5, sr.TraceSamples, sr.TraceBlocks, sr.TraceBytes)
			if err := report.RenderAll(os.Stdout, sr.Tables...); err != nil {
				return err
			}
			fmt.Printf("sampled latency percentiles: p50=%.0f p90=%.0f p99=%.0f cycles\n",
				sr.LatP50, sr.LatP90, sr.LatP99)
		}
		// Counters-mode temporal series arrive as data; write the same
		// CSVs a local run would.
		base := cfg.Name
		if multi {
			base = cfg.Name + "." + sr.Name
		}
		if sr.Bandwidth != nil {
			if err := writeSeries(base+".bandwidth.csv", sr.Bandwidth); err != nil {
				return err
			}
		}
		if sr.Capacity != nil {
			if err := writeSeries(base+".capacity.csv", sr.Capacity); err != nil {
				return err
			}
		}
		if cfg.TraceOut != "" && sr.TraceBytes > 0 {
			path := cfg.TraceOut
			if multi {
				path = insertName(path, sr.Name)
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			opt := service.NewTraceOptions()
			opt.Scenario = sr.Name
			n, _, err := client.DownloadTrace(ctx, info.ID, opt, f)
			f.Close()
			if err != nil {
				return err
			}
			// Verify the bytes that actually landed on disk — a
			// corrupt download must fail the process, not just print;
			// scripts key on the exit code for the byte-identical
			// contract. (Comparing the response header against the
			// result doc would be vacuous: both come from the same
			// daemon field.)
			if err := verifyDownload(path, sr.TraceMD5); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes streamed, MD5 %s verified)\n", path, n, sr.TraceMD5)
		}
	}
	return nil
}

// verifyDownload re-opens a downloaded v2 trace and recomputes its
// payload checksum, requiring footer, recomputed hash, and the
// daemon-advertised hash to agree.
func verifyDownload(path, wantHex string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := nmo.OpenTraceV2(f)
	if err != nil {
		return fmt.Errorf("downloaded trace %s is not a valid v2 file: %w", path, err)
	}
	sum, err := postproc.Summarize(postproc.From(rd), true)
	if err != nil {
		return fmt.Errorf("downloaded trace %s: %w", path, err)
	}
	got := fmt.Sprintf("%x", sum.MD5)
	if got != wantHex || sum.MD5 != rd.MD5() {
		return fmt.Errorf("downloaded trace %s: payload MD5 %s, footer %x, daemon advertised %s (corrupt download)",
			path, got, rd.MD5(), wantHex)
	}
	return nil
}

// report1 prints one profile's summary tables and writes its trace and
// series files under the given base name.
func report1(prof *nmo.Profile, cfg nmo.Config, base string) error {
	fmt.Printf("workload %s, %d threads: wall %d cycles (%.3f ms simulated)\n",
		prof.Workload, prof.Threads, prof.Wall, prof.WallSec*1e3)
	if cfg.Enable {
		fmt.Printf("mem accesses (perf stat): %d; bus accesses: %d; arithmetic intensity: %.4f flops/B\n",
			prof.MemAccesses, prof.BusAccesses, prof.ArithmeticIntensity())
	}
	if cfg.Mode.Sampling() {
		label := strings.ToUpper(string(prof.Backend))
		if label == "" {
			label = "SPE"
		}
		fmt.Printf("%s: %d selected, %d processed, %d collisions, %d truncated, %d invalid-skipped\n",
			label, prof.Sampler.Selected, prof.Sampler.Processed, prof.Sampler.Collisions,
			prof.Sampler.TruncatedHW, prof.Sampler.SkippedInvalid)
		if prof.Backend == nmo.BackendPEBS {
			fmt.Printf("PEBS loss/skew: %d DS-dropped, %d kernel-truncated, mean skid %.2f ops\n",
				prof.Sampler.Dropped, prof.Kernel.TruncatedRecords,
				float64(prof.Sampler.SkidTotal)/float64(max(prof.Sampler.Selected, 1)))
		}
		fmt.Printf("Eq.(1) accuracy: %.2f%%\n",
			100*nmo.Accuracy(prof.MemAccesses, prof.Sampler.Processed, cfg.EffectivePeriod()))
		// The streamed branch only applies when the run actually wrote
		// the file; with profiling disabled no sinks exist and the
		// legacy path below still renders its (empty) tables.
		if cfg.TraceOut != "" && cfg.Enable {
			// Streamed run: the samples are on disk, not in memory; the
			// tables below come from one out-of-core pass over the file.
			fmt.Printf("trace MD5: %x (%d samples streamed to %s)\n",
				prof.MD5, prof.Sampler.Processed, cfg.TraceOut)
			if err := reportStreamed(cfg.TraceOut); err != nil {
				return err
			}
		} else if err := reportCollected(prof, base); err != nil {
			return err
		}
	}
	if cfg.Mode.Counters() {
		if err := writeSeries(base+".bandwidth.csv", &prof.Bandwidth); err != nil {
			return err
		}
		if cfg.TrackRSS {
			if err := writeSeries(base+".capacity.csv", &prof.Capacity); err != nil {
				return err
			}
		}
	}
	return nil
}

// reportCollected renders the sample tables of an in-memory trace and
// writes its CSV/binary files.
func reportCollected(prof *nmo.Profile, base string) error {
	fmt.Printf("trace MD5: %x (%d samples stored)\n", prof.MD5, len(prof.Trace.Samples))
	if prof.TraceTruncated > 0 {
		fmt.Printf("WARNING: %d samples dropped at the MaxSamples cap (stream with -trace-out to keep them all)\n",
			prof.TraceTruncated)
	}

	t := &report.Table{Title: "Samples by region", Headers: []string{"region", "count"}}
	byRegion := prof.Trace.CountByRegion()
	for _, name := range report.SortedKeys(byRegion) {
		t.AddRow(name, byRegion[name])
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Cache-activity view from the SPE data-source packets.
	var levels [4]uint64
	for i, n := range analysis.LevelBreakdown(prof.Trace) {
		levels[i] = uint64(n)
	}
	if err := report.LevelTable(os.Stdout, levels); err != nil {
		return err
	}
	p50, p90, p99 := analysis.LatencyPercentiles(prof.Trace)
	fmt.Printf("sampled latency percentiles: p50=%.0f p90=%.0f p99=%.0f cycles\n", p50, p90, p99)

	f, err := os.Create(base + ".trace.csv")
	if err != nil {
		return err
	}
	if err := prof.Trace.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fb, err := os.Create(base + ".trace.bin")
	if err != nil {
		return err
	}
	if err := prof.Trace.WriteBinary(fb); err != nil {
		fb.Close()
		return err
	}
	fb.Close()
	fmt.Printf("wrote %s.trace.csv and %s.trace.bin\n", base, base)
	return nil
}

// reportStreamed renders the same sample tables from a v2 trace file,
// out-of-core: one scan feeds every aggregation, and memory stays
// bounded by one block regardless of the trace size.
func reportStreamed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := nmo.OpenTraceV2(f)
	if err != nil {
		return err
	}
	// No checksum needed here: the run just reported its rolling MD5.
	sum, err := postproc.Summarize(postproc.From(rd), false)
	if err != nil {
		return err
	}

	t := &report.Table{Title: "Samples by region", Headers: []string{"region", "count"}}
	for _, g := range sum.ByRegion.Groups() {
		t.AddRow(g.Key, g.Count)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if err := report.LevelTable(os.Stdout, sum.Levels.By); err != nil {
		return err
	}
	fmt.Printf("sampled latency percentiles: p50=%.0f p90=%.0f p99=%.0f cycles\n",
		sum.Lat.Percentile(50), sum.Lat.Percentile(90), sum.Lat.Percentile(99))
	fmt.Printf("wrote %s (%d samples, %d blocks; inspect with nmostat -trace)\n",
		path, rd.TotalSamples(), rd.NumBlocks())
	return nil
}

// insertName inserts a workload name before the path's extension
// ("out.nmo2" + "cfd" -> "out.cfd.nmo2"), keeping multi-workload
// streams from clobbering one file.
func insertName(path, name string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + name + ext
}

func writeSeries(path string, s *nmo.Series) error {
	if len(s.Points) == 0 {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("wrote %s\n", path)
	return s.WriteCSV(f)
}
