// Command nmorepro regenerates every table and figure of the paper's
// evaluation from the simulated testbed:
//
//	nmorepro -exp all            # everything (DefaultScale, minutes)
//	nmorepro -exp fig8 -quick    # one artifact at reduced scale
//	nmorepro -exp fig8 -jobs 4   # shard the sweep over 4 workers
//	nmorepro -exp fig8 -backend pebs  # the sweep on Intel PEBS instead of ARM SPE
//	nmorepro -exp xisa           # SPE-vs-PEBS cross-ISA contrast
//	nmorepro -list               # show the experiment index
//
// Sweeps execute as scenario batches on the internal/engine worker
// pool; -jobs bounds the pool (default: one worker per CPU). Output
// tables are bit-identical at any -jobs value.
//
// Output is textual: aligned tables for the numeric artifacts and
// ASCII heatmaps/series plots for the scatter/timeline figures. Pass
// -csv DIR to additionally dump machine-readable series.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nmo"
	"nmo/internal/experiments"
	"nmo/internal/report"
	"nmo/internal/trace"
)

var experimentIndex = []struct {
	id   string
	desc string
}{
	{"tab1", "Table I: supported environment variables and defaults"},
	{"tab2", "Table II: hardware specification of the (simulated) platform"},
	{"fig2", "Fig. 2: memory capacity over time (Page Rank, In-memory Analytics)"},
	{"fig3", "Fig. 3: memory bandwidth over time (Page Rank, In-memory Analytics)"},
	{"fig4", "Fig. 4: STREAM tagged execution phases with sampled accesses (8 threads)"},
	{"fig5", "Fig. 5: CFD sampled accesses at 1 thread"},
	{"fig6", "Fig. 6: CFD sampled accesses at 32 threads + high-res trace"},
	{"fig7", "Fig. 7: collected SPE samples vs sampling period (5 trials)"},
	{"fig8", "Fig. 8: accuracy / time overhead / collisions vs sampling period"},
	{"fig9", "Fig. 9: impact of aux buffer size (STREAM, 32 threads)"},
	{"fig10", "Fig. 10: time overhead and accuracy vs thread count"},
	{"fig11", "Fig. 11: sample collisions/throttling vs thread count"},
	{"ext-bias", "Extension (§IX future work): code-position sampling bias, dither on/off"},
	{"xisa", "Extension (§III, ref. [8]): SPE-vs-PEBS cross-ISA period sweep"},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (tab1,tab2,fig2..fig11,xisa,all)")
	quick := flag.Bool("quick", false, "use the reduced QuickScale configuration")
	csvDir := flag.String("csv", "", "directory for CSV series dumps (optional)")
	list := flag.Bool("list", false, "list experiments and exit")
	jobs := flag.Int("jobs", 0, "parallel scenario workers (0 = one per CPU, 1 = serial; results identical)")
	backend := flag.String("backend", "",
		"sampling backend for the sweeps ("+nmo.SupportedBackends()+"; default spe on ARM)")
	flag.Parse()

	if *list {
		for _, e := range experimentIndex {
			fmt.Printf("%-6s %s\n", e.id, e.desc)
		}
		return
	}

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	sc.Jobs = *jobs
	// -backend wins over the NMO_BACKEND environment variable.
	if *backend == "" {
		*backend = os.Getenv("NMO_BACKEND")
	}
	if *backend != "" {
		kind, err := nmo.ParseBackend(*backend)
		if err != nil {
			// The parse error names every supported backend.
			fmt.Fprintf(os.Stderr, "nmorepro: -backend: %v\n", err)
			os.Exit(2)
		}
		sc.Backend = kind
	}
	r := &runner{sc: sc, csvDir: *csvDir}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, e := range experimentIndex {
			ids = append(ids, e.id)
		}
	}
	for _, id := range ids {
		if err := r.run(strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "nmorepro: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

type runner struct {
	sc     experiments.Scale
	csvDir string
}

func (r *runner) run(id string) error {
	switch id {
	case "tab1":
		return r.table1()
	case "tab2":
		return r.table2()
	case "fig2", "fig3":
		return r.temporal(id)
	case "fig4":
		return r.regionTrace("stream", 8, "Fig. 4: STREAM triad, 8 threads")
	case "fig5":
		return r.regionTrace("cfd", 1, "Fig. 5: CFD computation loop, 1 thread")
	case "fig6":
		return r.regionTrace("cfd", 32, "Fig. 6: CFD computation loop, 32 threads (high-res)")
	case "fig7":
		return r.fig7()
	case "fig8":
		return r.fig8()
	case "fig9":
		return r.fig9()
	case "fig10", "fig11":
		return r.fig1011(id)
	case "ext-bias":
		return r.extBias()
	case "xisa":
		return r.crossISA()
	}
	return fmt.Errorf("unknown experiment %q", id)
}

func (r *runner) table1() error {
	t := &report.Table{
		Title:   "Table I: Environment variables (live defaults)",
		Headers: []string{"Option", "Description", "Default"},
	}
	for _, row := range experiments.Table1EnvVars() {
		t.AddRow(row.Option, row.Description, row.Default)
	}
	return t.Render(os.Stdout)
}

func (r *runner) table2() error {
	t := &report.Table{
		Title:   "Table II: Simulated hardware platform",
		Headers: []string{"Item", "Value"},
	}
	for _, row := range experiments.Table2MachineSpec() {
		t.AddRow(row.Item, row.Value)
	}
	return t.Render(os.Stdout)
}

func (r *runner) temporal(id string) error {
	for _, name := range []string{"inmem", "pagerank"} {
		res, err := experiments.CloudTemporal(r.sc, name)
		if err != nil {
			return err
		}
		var series trace.Series
		var title string
		if id == "fig2" {
			series = res.Capacity
			title = fmt.Sprintf("Fig. 2 (%s): memory capacity over time — peak %.1f GiB (%.1f%% of machine)",
				res.Workload, res.PeakRSSGiB, res.UtilizationPct)
		} else {
			series = res.Bandwidth
			title = fmt.Sprintf("Fig. 3 (%s): memory bandwidth over time — peak %.1f GiB/s",
				res.Workload, res.PeakBWGiBps)
		}
		times := make([]float64, len(series.Points))
		values := make([]float64, len(series.Points))
		for i, p := range series.Points {
			times[i] = p.TimeSec
			values[i] = p.Value
		}
		if err := report.RenderSeries(os.Stdout, title, series.Unit, times, values, 72, 12); err != nil {
			return err
		}
		if err := r.dumpCSV(fmt.Sprintf("%s_%s.csv", id, res.Workload), &series); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func (r *runner) regionTrace(workload string, threads int, title string) error {
	res, err := experiments.RegionTrace(r.sc, workload, threads, 72, 24)
	if err != nil {
		return err
	}
	if err := report.RenderHeatmap(os.Stdout, res.Heatmap, title); err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Samples by tagged region / kernel",
		Headers: []string{"tag", "samples"},
	}
	for _, name := range report.SortedKeys(res.ByRegion) {
		t.AddRow("region:"+name, res.ByRegion[name])
	}
	for _, name := range report.SortedKeys(res.ByKernel) {
		t.AddRow("kernel:"+name, res.ByKernel[name])
	}
	t.AddRow("locality(4KB)", fmt.Sprintf("%.3f", res.Locality))
	if res.Truncated > 0 {
		t.AddRow("truncated(MaxSamples)", res.Truncated)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if res.Truncated > 0 {
		fmt.Printf("WARNING: %d samples dropped at the MaxSamples cap; the figure is clipped\n",
			res.Truncated)
	}
	fmt.Println()
	return nil
}

func (r *runner) fig7() error {
	for _, wl := range []string{"stream", "cfd", "bfs"} {
		res, err := experiments.PeriodSweep(r.sc, wl, experiments.Fig7Periods)
		if err != nil {
			return err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("Fig. 7 (%s): collected samples per sampling period, %d trials", wl, r.sc.Trials),
			Headers: []string{"period", "trials(samples)", "mean", "linear-fit(samples*period/memops)"},
		}
		for _, pt := range res.Points {
			var sum float64
			cells := make([]string, len(pt.Samples))
			for i, s := range pt.Samples {
				cells[i] = fmt.Sprintf("%d", s)
				sum += float64(s)
			}
			mean := sum / float64(len(pt.Samples))
			t.AddRow(pt.Period, strings.Join(cells, " "),
				fmt.Sprintf("%.0f", mean),
				fmt.Sprintf("%.3f", mean*float64(pt.Period)/float64(res.MemOps)))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func (r *runner) fig8() error {
	for _, wl := range []string{"stream", "cfd", "bfs"} {
		res, err := experiments.PeriodSweep(r.sc, wl, experiments.Fig8Periods)
		if err != nil {
			return err
		}
		t := &report.Table{
			Title: fmt.Sprintf("Fig. 8 (%s): accuracy / time overhead / collisions vs period (%d threads)",
				wl, res.Threads),
			Headers: []string{"period", "accuracy", "overhead", "collisions(flagged)", "hw-collisions"},
		}
		for _, pt := range res.Points {
			t.AddRow(pt.Period,
				report.MeanStd(pt.Accuracy),
				report.Pct(pt.Overhead.Mean),
				fmt.Sprintf("%.1f", pt.Collisions.Mean),
				fmt.Sprintf("%.0f", pt.HWColl.Mean))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func (r *runner) fig9() error {
	res, err := experiments.Fig9AuxSweep(r.sc)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Fig. 9: aux buffer size impact (STREAM, %d threads, period %d, ring 8+1 pages)",
			r.sc.Threads, res.Period),
		Headers: []string{"aux pages", "overhead", "accuracy", "truncated", "wakeups"},
	}
	for _, pt := range res.Points {
		t.AddRow(pt.AuxPages,
			report.Pct(pt.Overhead.Mean),
			report.MeanStd(pt.Accuracy),
			fmt.Sprintf("%.0f", pt.Truncated.Mean),
			pt.Wakeups)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (r *runner) fig1011(id string) error {
	res, err := experiments.Fig10ThreadSweep(r.sc)
	if err != nil {
		return err
	}
	if id == "fig10" {
		t := &report.Table{
			Title: fmt.Sprintf("Fig. 10: overhead and accuracy vs thread count (STREAM, aux %d pages, period %d)",
				res.AuxPages, res.Period),
			Headers: []string{"threads", "overhead", "accuracy"},
		}
		for _, pt := range res.Points {
			t.AddRow(pt.Threads, report.Pct(pt.Overhead.Mean), report.MeanStd(pt.Accuracy))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	} else {
		t := &report.Table{
			Title:   "Fig. 11: sample collisions / throttling vs thread count",
			Headers: []string{"threads", "collisions(flagged)", "hw-collisions", "truncated records"},
		}
		for _, pt := range res.Points {
			t.AddRow(pt.Threads,
				fmt.Sprintf("%.1f", pt.Collisions.Mean),
				fmt.Sprintf("%.0f", pt.HWColl.Mean),
				fmt.Sprintf("%.0f", pt.Truncated.Mean))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}

func (r *runner) extBias() error {
	if r.sc.Backend == nmo.BackendPEBS {
		// Keep `-exp all -backend pebs` runnable: the dither ablation
		// simply has no PEBS variant.
		fmt.Println("ext-bias: skipped — PEBS has no interval dither to ablate (spe-only study)")
		fmt.Println()
		return nil
	}
	res, err := experiments.BiasStudy(r.sc)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Extension: code-position sampling bias (STREAM, period %d)", res.Period),
		Headers: []string{"configuration", "TV distance to true PC mix", "top-PC share"},
	}
	t.AddRow("dither on (jitter)", fmt.Sprintf("%.3f", res.BiasJitterOn), "-")
	t.AddRow("dither off", fmt.Sprintf("%.3f", res.BiasJitterOff),
		fmt.Sprintf("%.3f", res.TopPCShareOff))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (r *runner) crossISA() error {
	res, err := experiments.CrossBackendSweep(r.sc, "stream", experiments.Fig8Periods)
	if err != nil {
		return err
	}
	for _, run := range res.Runs {
		t := &report.Table{
			Title: fmt.Sprintf("Cross-ISA sweep [%s on %s/%s]: %s, %d threads",
				strings.ToUpper(string(run.Backend)), run.Machine, run.Arch,
				res.Workload, res.Threads),
			Headers: []string{"period", "accuracy", "overhead",
				"collisions(hw)", "dropped(DS/aux)", "skid(mean ops)"},
		}
		for _, pt := range run.Points {
			t.AddRow(pt.Period,
				report.MeanStd(pt.Accuracy),
				report.Pct(pt.Overhead.Mean),
				fmt.Sprintf("%.0f", pt.HWColl.Mean),
				fmt.Sprintf("%.0f", pt.Dropped.Mean),
				fmt.Sprintf("%.2f", pt.SkidMeanOps.Mean))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func (r *runner) dumpCSV(name string, s *trace.Series) error {
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(r.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return s.WriteCSV(f)
}
