// Command nmogw is the nmo fleet gateway: a stateless routing tier
// that fronts several nmod daemons behind the daemon's own HTTP API.
// Submissions are consistent-hashed by their content address onto the
// member ring, so identical jobs from any client land on the shard
// whose single-flight cache already holds (or is computing) the
// result; job reads route by the shard prefix in the gateway job ID;
// /v1/stats merges the fleet; dead shards are probed, skipped, and
// re-homed onto their ring successors with bounded re-mapping.
//
//	nmod -addr 127.0.0.1:8101 &
//	nmod -addr 127.0.0.1:8102 &
//	nmogw -addr :8100 -members 127.0.0.1:8101,127.0.0.1:8102
//
//	# exactly the daemon API, one level up
//	curl -s localhost:8100/v1/jobs -d '{"scenarios":[{"workload":"stream"}]}'
//	curl -s localhost:8100/v1/jobs/s0-j<id>/trace -o run.nmo2
//	curl -s localhost:8100/v1/stats | jq .engine_runs
//
// nmoprof -remote and nmostat -remote work unchanged against a
// gateway address.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nmo/internal/auth"
	"nmo/internal/gateway"
	"nmo/internal/obs"
	"nmo/internal/zerocopy"
)

func main() {
	addr := flag.String("addr", ":8100", "listen address")
	members := flag.String("members", "", "comma-separated nmod member addresses (required)")
	replicas := flag.Int("replicas", gateway.DefaultReplicas, "virtual nodes per member on the hash ring")
	probe := flag.Duration("probe", 2*time.Second, "member health-probe interval")
	auditLog := flag.String("audit-log", os.Getenv("NMO_AUDIT_LOG"),
		"append-only JSONL audit file: one event per HTTP request at the gateway edge (default $NMO_AUDIT_LOG; empty = off)")
	debugAddr := flag.String("debug-addr", "",
		"private listen address serving net/http/pprof under /debug/pprof/ (empty = off)")
	authMode := flag.String("auth-mode", "none",
		"request authentication: none (dev X-Nmo-Tenant header tenancy) or jwt (HS256 bearer tokens)")
	authKeyFile := flag.String("auth-hmac-key-file", "",
		"file holding the HS256 verification key (required for -auth-mode jwt; also signs the tenant header forwarded to shards)")
	quotasFile := flag.String("tenant-quotas", "",
		"JSON tenant quota table: fair-share weights, rate limits, max in-flight (empty = unlimited)")
	flag.Parse()

	acfg, err := auth.LoadConfig(*authMode, *authKeyFile, *quotasFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmogw:", err)
		os.Exit(1)
	}
	if err := run(*addr, *members, *replicas, *probe, acfg, *auditLog, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "nmogw:", err)
		os.Exit(1)
	}
}

func run(addr, members string, replicas int, probe time.Duration, acfg auth.Config, auditLog, debugAddr string) error {
	var list []string
	for _, m := range strings.Split(members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			list = append(list, m)
		}
	}
	var audit *obs.AuditLog
	if auditLog != "" {
		var err error
		if audit, err = obs.OpenAudit(auditLog); err != nil {
			return fmt.Errorf("audit log %s: %w", auditLog, err)
		}
		defer audit.Close()
	}
	if debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(debugAddr, obs.DebugHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "nmogw: debug listener:", err)
			}
		}()
	}
	gw, err := gateway.New(gateway.Config{
		Members:    list,
		Replicas:   replicas,
		ProbeEvery: probe,
		Audit:      audit,
		Auth:       acfg,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	// Wrapped listener + ConnContext: client conns carry the zero-copy
	// state the splice proxy hop needs, so sized shard trace bodies
	// move shard-socket → pipe → client-socket in kernel space.
	srv := &http.Server{Addr: addr, Handler: gw, ConnContext: zerocopy.ConnContext}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(zerocopy.WrapListener(ln, gw.ZeroCopy())) }()
	fmt.Printf("nmogw: listening on %s, routing %d members (%d vnodes each, probe %s, auth %s)\n",
		addr, len(list), replicas, probe, acfg.Mode)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("nmogw: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shctx)
}
