package nmo_test

import (
	"bytes"
	"fmt"
	"testing"

	"nmo"
	"nmo/internal/trace"
)

// fullPipelineProfile runs a sampled STREAM profile through the whole
// stack: workload -> machine -> SPE unit -> packet encoder -> aux ring
// -> PERF_RECORD_AUX -> decoder -> attribution.
func fullPipelineProfile(t *testing.T, seed uint64) *nmo.Profile {
	t.Helper()
	mach := nmo.NewMachine(nmo.AmpereAltraMax().WithCores(16))
	cfg := nmo.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = nmo.ModeFull
	cfg.TrackRSS = true
	cfg.Period = 1024
	cfg.IntervalSec = 1e-4
	cfg.Seed = seed
	p, err := nmo.Run(cfg, mach, nmo.NewStream(nmo.StreamConfig{
		Elems: 400_000, Threads: 16, Iters: 2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSampleConservation checks the end-to-end accounting identity:
// every selected sample is exactly one of collided, filtered, emitted,
// or truncated; and every byte the monitor drained decodes to either a
// valid or a skipped record.
func TestSampleConservation(t *testing.T) {
	p := fullPipelineProfile(t, 7)
	s := p.Sampler

	if s.Selected == 0 {
		t.Fatal("no samples selected")
	}
	if got := s.Collisions + s.Filtered + s.Emitted + s.TruncatedHW; got != s.Selected {
		t.Errorf("selection accounting: coll %d + filt %d + emit %d + trunc %d = %d, want Selected %d",
			s.Collisions, s.Filtered, s.Emitted, s.TruncatedHW, got, s.Selected)
	}
	// Drained bytes are whole records: emitted plus corrupted ones.
	wantBytes := (s.Emitted + s.Corrupted) * 64
	if p.Kernel.DrainedBytes != wantBytes {
		t.Errorf("drained %d bytes, want %d (64 per accepted record)",
			p.Kernel.DrainedBytes, wantBytes)
	}
	// Every drained record is either processed or skipped.
	if got := s.Processed + s.SkippedInvalid; got != s.Emitted+s.Corrupted {
		t.Errorf("decode accounting: processed %d + skipped %d = %d, want %d",
			s.Processed, s.SkippedInvalid, got, s.Emitted+s.Corrupted)
	}
	// Corrupted records must all be skipped by the decoder.
	if s.SkippedInvalid != s.Corrupted {
		t.Errorf("skipped %d != corrupted %d", s.SkippedInvalid, s.Corrupted)
	}
}

// TestSampleAttribution checks that every stored sample lands in one
// of the workload's tagged regions (STREAM touches nothing else) and
// that stores only appear in the output array.
func TestSampleAttribution(t *testing.T) {
	p := fullPipelineProfile(t, 11)
	if len(p.Trace.Samples) == 0 {
		t.Fatal("no samples")
	}
	for i := range p.Trace.Samples {
		s := &p.Trace.Samples[i]
		if s.Region < 0 {
			t.Fatalf("sample %d unattributed: va=%#x", i, s.VA)
		}
		region := p.Trace.Regions[s.Region]
		if s.Store && region != "a" {
			t.Fatalf("store sample in region %q, want a", region)
		}
		if !s.Store && region == "a" {
			t.Fatalf("load sample in the store-only region a")
		}
	}
}

// TestSampleTimestampsOrdered checks that per-core sample timestamps
// are non-decreasing (SPE emits records in completion order per core).
func TestSampleTimestampsOrdered(t *testing.T) {
	p := fullPipelineProfile(t, 13)
	last := map[int16]uint64{}
	for i := range p.Trace.Samples {
		s := &p.Trace.Samples[i]
		if s.TimeNs < last[s.Core] {
			t.Fatalf("core %d timestamps went backwards: %d after %d",
				s.Core, s.TimeNs, last[s.Core])
		}
		last[s.Core] = s.TimeNs
	}
}

// TestEndToEndDeterminism pins byte-level reproducibility across the
// full stack, including the MD5 the tool reports.
func TestEndToEndDeterminism(t *testing.T) {
	a := fullPipelineProfile(t, 99)
	b := fullPipelineProfile(t, 99)
	if a.MD5 != b.MD5 {
		t.Error("MD5 differs across identical runs")
	}
	if a.Wall != b.Wall || a.Sampler != b.Sampler || a.Kernel != b.Kernel {
		t.Error("stats differ across identical runs")
	}
	c := fullPipelineProfile(t, 100)
	if a.MD5 == c.MD5 {
		t.Error("different seeds produced identical traces")
	}
}

// TestTraceSerializationRoundTrip pushes a real profile's trace
// through the binary format and back.
func TestTraceSerializationRoundTrip(t *testing.T) {
	p := fullPipelineProfile(t, 21)
	var buf bytes.Buffer
	if err := p.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MD5() != p.Trace.MD5() {
		t.Error("MD5 changed through serialization")
	}
	if len(got.Samples) != len(p.Trace.Samples) {
		t.Errorf("sample count %d != %d", len(got.Samples), len(p.Trace.Samples))
	}
}

// TestBandwidthSeriesConsistency: the bandwidth series must integrate
// to roughly the bus traffic the counters saw.
func TestBandwidthSeriesConsistency(t *testing.T) {
	p := fullPipelineProfile(t, 31)
	if len(p.Bandwidth.Points) == 0 {
		t.Fatal("no bandwidth points")
	}
	var integrated float64 // GiB
	for _, pt := range p.Bandwidth.Points {
		integrated += pt.Value * 1e-4 // value GiB/s * interval s
	}
	busGiB := float64(p.BusAccesses) * 64 / float64(1<<30)
	// The last partial interval is not emitted, so allow slack.
	if integrated < busGiB*0.7 || integrated > busGiB*1.05 {
		t.Errorf("series integrates to %.4f GiB, counters saw %.4f GiB",
			integrated, busGiB)
	}
}

// TestAccuracyBandAcrossSeeds: Eq. (1) accuracy at a healthy period
// must be stable across seeds (the paper's five-trial methodology
// depends on it).
func TestAccuracyBandAcrossSeeds(t *testing.T) {
	mach := nmo.NewMachine(nmo.AmpereAltraMax().WithCores(16))
	w := nmo.NewStream(nmo.StreamConfig{Elems: 400_000, Threads: 16, Iters: 2})
	var accs []float64
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := nmo.DefaultConfig()
		cfg.Enable = true
		cfg.Mode = nmo.ModeSample
		cfg.Period = 8192
		cfg.Seed = seed
		p, err := nmo.Run(cfg, mach, w)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, nmo.Accuracy(p.MemAccesses, p.Sampler.Processed, cfg.Period))
	}
	for i, a := range accs {
		if a < 0.85 {
			t.Errorf("trial %d accuracy %.3f below band", i, a)
		}
	}
	spread := maxF(accs) - minF(accs)
	if spread > 0.1 {
		t.Errorf("accuracy spread %.3f too wide across seeds: %v", spread, accs)
	}
}

// TestGoldenTraceChecksum pins the exact MD5 of a fixed configuration.
// If an intentional change to the pipeline alters sampling behaviour,
// update the constant — the test exists so such changes are always
// deliberate.
func TestGoldenTraceChecksum(t *testing.T) {
	p := fullPipelineProfile(t, 42)
	got := fmt.Sprintf("%x", p.MD5)
	const want = "3f5c715c3318921059888ea913e33bf0"
	if want == "GOLDEN" {
		t.Logf("golden MD5 for seed 42: %s (pin me)", got)
		return
	}
	if got != want {
		t.Errorf("trace MD5 = %s, want %s", got, want)
	}
}

func maxF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
