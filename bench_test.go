// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark* per artifact; see DESIGN.md §5 for the
// index), plus the ablation studies of the design choices DESIGN.md
// calls out and microbenchmarks of the performance-critical substrate
// paths.
//
// Figure benches run the QuickScale configuration so `go test
// -bench=.` completes in minutes; cmd/nmorepro runs the full
// DefaultScale used for EXPERIMENTS.md. Shape metrics (accuracy,
// overhead, collision counts) are attached via b.ReportMetric, so the
// bench output doubles as a compact reproduction record.
package nmo_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"nmo"
	"nmo/internal/engine"
	"nmo/internal/experiments"
	"nmo/internal/isa"
	"nmo/internal/machine"
	"nmo/internal/memsim"
	"nmo/internal/sim"
	"nmo/internal/spe"
	"nmo/internal/workloads"
	"nmo/internal/xrand"
)

func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Trials = 2
	return sc
}

// --- Table I / Table II ---

func BenchmarkTable1EnvConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1EnvVars()
		// Keep in lockstep with TestTable1MatchesPaperDefaults (the
		// stale magic number here broke the bench when PR 2 grew the
		// table).
		if len(rows) != 10 {
			b.Fatalf("Table I row count drifted: %d", len(rows))
		}
	}
}

func BenchmarkTable2MachineSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2MachineSpec()
		if len(rows) == 0 {
			b.Fatal("empty Table II")
		}
	}
}

// --- Fig. 2 / Fig. 3: CloudSuite temporal views ---

func benchCloud(b *testing.B, workload string) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CloudTemporal(sc, workload)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PeakRSSGiB, "peakRSS-GiB")
		b.ReportMetric(res.PeakBWGiBps, "peakBW-GiBps")
	}
}

func BenchmarkFig2CapacityPageRank(b *testing.B) { benchCloud(b, "pagerank") }
func BenchmarkFig3BandwidthInMem(b *testing.B)   { benchCloud(b, "inmem") }

// --- Fig. 4 / 5 / 6: region-tagged sample traces ---

func benchRegionTrace(b *testing.B, workload string, threads int) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RegionTrace(sc, workload, threads, 64, 24)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Trace.Samples)), "samples")
		b.ReportMetric(res.Locality, "locality")
	}
}

func BenchmarkFig4StreamRegions(b *testing.B) { benchRegionTrace(b, "stream", 8) }
func BenchmarkFig5CFD1Thread(b *testing.B)    { benchRegionTrace(b, "cfd", 1) }
func BenchmarkFig6CFD32Threads(b *testing.B)  { benchRegionTrace(b, "cfd", 32) }

// --- Fig. 7: samples vs period ---

func BenchmarkFig7SamplesVsPeriod(b *testing.B) {
	sc := benchScale()
	sc.Trials = 1
	periods := []uint64{1024, 4096, 16384, 65536} // subset of the axis
	for i := 0; i < b.N; i++ {
		res, err := experiments.PeriodSweep(sc, "stream", periods)
		if err != nil {
			b.Fatal(err)
		}
		first := float64(res.Points[0].Samples[0])
		last := float64(res.Points[len(res.Points)-1].Samples[0])
		b.ReportMetric(first/last, "sample-ratio-1024-vs-65536")
	}
}

// --- Fig. 8: accuracy / overhead / collisions vs period ---

func benchFig8(b *testing.B, workload string) {
	sc := benchScale()
	sc.Trials = 1
	periods := []uint64{1000, 4000, 16000}
	for i := 0; i < b.N; i++ {
		res, err := experiments.PeriodSweep(sc, workload, periods)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].Accuracy.Mean, "acc@1000")
		b.ReportMetric(res.Points[1].Accuracy.Mean, "acc@4000")
		b.ReportMetric(res.Points[2].Accuracy.Mean, "acc@16000")
		b.ReportMetric(res.Points[0].Overhead.Mean*100, "ovh@1000-pct")
		b.ReportMetric(res.Points[0].HWColl.Mean, "collisions@1000")
	}
}

func BenchmarkFig8Stream(b *testing.B) { benchFig8(b, "stream") }
func BenchmarkFig8CFD(b *testing.B)    { benchFig8(b, "cfd") }
func BenchmarkFig8BFS(b *testing.B)    { benchFig8(b, "bfs") }

// --- Fig. 9: aux buffer sweep ---

func BenchmarkFig9AuxSweep(b *testing.B) {
	sc := benchScale()
	sc.Trials = 1
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9AuxSweep(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].Accuracy.Mean, "acc@2pages")
		b.ReportMetric(res.Points[len(res.Points)-1].Accuracy.Mean, "acc@2048pages")
	}
}

// --- Fig. 10 / 11: thread sweep ---

func BenchmarkFig10ThreadSweep(b *testing.B) {
	sc := benchScale()
	sc.Trials = 1
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10ThreadSweep(sc)
		if err != nil {
			b.Fatal(err)
		}
		lo := res.Points[0]
		hi := res.Points[len(res.Points)-1]
		b.ReportMetric(lo.Overhead.Mean*100, "ovh@1T-pct")
		b.ReportMetric(hi.Overhead.Mean*100, "ovh@maxT-pct")
		b.ReportMetric(hi.Accuracy.Mean, "acc@maxT")
	}
}

func BenchmarkFig11ThreadCollisions(b *testing.B) {
	sc := benchScale()
	sc.Trials = 1
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10ThreadSweep(sc)
		if err != nil {
			b.Fatal(err)
		}
		lo := res.Points[0]
		hi := res.Points[len(res.Points)-1]
		b.ReportMetric(lo.HWColl.Mean, "hwcoll@1T")
		b.ReportMetric(hi.HWColl.Mean, "hwcoll@maxT")
	}
}

// --- Ablations (DESIGN.md §6) ---

// ablationProfile runs STREAM under a sampling config mutated by f.
func ablationProfile(b *testing.B, mutate func(*nmo.Config, *nmo.MachineSpec)) *nmo.Profile {
	b.Helper()
	spec := nmo.AmpereAltraMax().WithCores(64)
	cfg := nmo.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = nmo.ModeSample
	cfg.Period = 1024
	cfg.PageBytes = 1024
	cfg.AuxPages = 64
	cfg.AuxWatermarkBytes = 4096
	mutate(&cfg, &spec)
	mach := nmo.NewMachine(spec)
	w := nmo.NewStream(nmo.StreamConfig{Elems: 1_000_000, Threads: 32, Iters: 2})
	p, err := nmo.Run(cfg, mach, w)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAblationJitter compares sampling with and without the
// interval-counter dither. Without dither, phase lock with loop bodies
// biases which code sites are sampled; the rate itself stays similar.
func BenchmarkAblationJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablationProfile(b, func(c *nmo.Config, _ *nmo.MachineSpec) { c.Jitter = true })
		off := ablationProfile(b, func(c *nmo.Config, _ *nmo.MachineSpec) { c.Jitter = false })
		b.ReportMetric(float64(on.Sampler.Processed), "samples-jitter-on")
		b.ReportMetric(float64(off.Sampler.Processed), "samples-jitter-off")
	}
}

// BenchmarkAblationDRAMTail disables the DRAM latency tail: collisions
// at small periods should largely disappear, flattening the Fig. 8a
// accuracy curve — evidence the tail is the collision driver.
func BenchmarkAblationDRAMTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationProfile(b, func(_ *nmo.Config, _ *nmo.MachineSpec) {})
		without := ablationProfile(b, func(_ *nmo.Config, s *nmo.MachineSpec) {
			s.DRAM.TailProb = -1
		})
		b.ReportMetric(float64(with.Sampler.Collisions), "collisions-tail-on")
		b.ReportMetric(float64(without.Sampler.Collisions), "collisions-tail-off")
	}
}

// BenchmarkAblationWatermark compares wakeup frequencies at 1/8 vs 1/2
// of the aux buffer: the watermark trades interrupt overhead against
// truncation risk.
func BenchmarkAblationWatermark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eighth := ablationProfile(b, func(c *nmo.Config, _ *nmo.MachineSpec) {
			c.AuxWatermarkBytes = 64 * 1024 / 8
		})
		half := ablationProfile(b, func(c *nmo.Config, _ *nmo.MachineSpec) {
			c.AuxWatermarkBytes = 0 // default: half the buffer
		})
		b.ReportMetric(float64(eighth.Kernel.Wakeups), "wakeups-eighth")
		b.ReportMetric(float64(half.Kernel.Wakeups), "wakeups-half")
	}
}

// BenchmarkAblationTrackingSlots compares the real single-slot SPE
// against a hypothetical dual-slot unit (spe.Config knob): the second
// slot absorbs most collisions.
func BenchmarkAblationTrackingSlots(b *testing.B) {
	run := func(slots int) uint64 {
		sink := &countSink{}
		cfg := spe.Config{Period: 64, SampleLoads: true, TrackingSlots: slots}
		u := spe.NewUnit(cfg, xrand.New(7), sink)
		u.Enable()
		op := benchOp()
		now := sim.Cycles(0)
		for i := 0; i < 2_000_000; i++ {
			u.OnOp(now, &op, 1800, 3, false, false)
			now += 2
		}
		return u.Stats().Collisions
	}
	for i := 0; i < b.N; i++ {
		one := run(1)
		two := run(2)
		b.ReportMetric(float64(one), "collisions-1slot")
		b.ReportMetric(float64(two), "collisions-2slot")
	}
}

// --- Engine: parallel scenario execution ---

// engineBatch builds a grid of sampling scenarios (the shape of one
// sweep point column).
func engineBatch(n int) []engine.Scenario {
	scs := make([]engine.Scenario, n)
	for i := range scs {
		cfg := nmo.DefaultConfig()
		cfg.Enable = true
		cfg.Mode = nmo.ModeSample
		cfg.Period = 2048
		cfg.PageBytes = 1024
		cfg.RingPages = 8
		cfg.AuxPages = 64
		scs[i] = engine.Scenario{
			Name:   fmt.Sprintf("stream/trial=%d", i),
			Spec:   machine.AmpereAltraMax().WithCores(32),
			Config: cfg,
			Seed:   engine.DeriveSeed(42, i),
			Workload: func() (workloads.Workload, error) {
				return nmo.NewStream(nmo.StreamConfig{
					Elems: 400_000, Threads: 16, Iters: 2,
				}), nil
			},
		}
	}
	return scs
}

// BenchmarkEngineParallelSpeedup runs the same scenario batch at
// jobs=1 and jobs=GOMAXPROCS and reports the wall-clock speedup — the
// engine's reason to exist. On an N-core host the speedup approaches
// min(N, batch size); on one core it stays ~1 (and must not regress
// below it by much, i.e. the pool adds no meaningful overhead).
func BenchmarkEngineParallelSpeedup(b *testing.B) {
	const batchSize = 8
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := engine.FirstError(engine.Runner{Jobs: 1}.RunAll(engineBatch(batchSize))); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)
		t0 = time.Now()
		if err := engine.FirstError(engine.Runner{}.RunAll(engineBatch(batchSize))); err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(t0)
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	}
}

// BenchmarkStreamingVsCollect contrasts the same profiled run under
// the default Collect sink and under the aggregate-only sink chain
// the sweep drivers use. allocs/op and B/op expose the per-sample
// materialization the streaming pipeline removes (the fixed machine +
// session setup cost is identical in both variants, so the delta is
// pure sample storage); samples/op records the stream size. CI emits
// this into BENCH_root.json, pinning the memory trajectory per commit.
func BenchmarkStreamingVsCollect(b *testing.B) {
	mkcfg := func() nmo.Config {
		cfg := nmo.DefaultConfig()
		cfg.Enable = true
		cfg.Mode = nmo.ModeSample
		cfg.Period = 256 // dense sampling: storage dominates setup
		cfg.Seed = 42
		return cfg
	}
	variant := func(b *testing.B, cfg nmo.Config, wantStored bool) {
		spec := machine.AmpereAltraMax().WithCores(8)
		b.ReportAllocs()
		var processed, stored uint64
		for i := 0; i < b.N; i++ {
			w := nmo.NewStream(nmo.StreamConfig{Elems: 200_000, Threads: 8, Iters: 2})
			p, err := nmo.Run(cfg, nmo.NewMachine(spec), w)
			if err != nil {
				b.Fatal(err)
			}
			processed = p.Sampler.Processed
			stored = uint64(len(p.Trace.Samples))
			if wantStored != (stored > 0) {
				b.Fatalf("stored %d samples, wantStored=%v", stored, wantStored)
			}
		}
		b.ReportMetric(float64(processed), "samples/op")
		b.ReportMetric(float64(stored), "stored/op")
	}
	b.Run("collect", func(b *testing.B) {
		variant(b, mkcfg(), true)
	})
	b.Run("aggregate", func(b *testing.B) {
		cfg := mkcfg()
		cfg.SinkFactory = experiments.AggregateSinks
		variant(b, cfg, false)
	})
}

// BenchmarkEngineScenarioOverhead measures the per-scenario fixed cost
// (machine construction + session setup) with a minimal workload: the
// price the engine pays for share-nothing isolation.
func BenchmarkEngineScenarioOverhead(b *testing.B) {
	cfg := nmo.DefaultConfig()
	spec := machine.AmpereAltraMax().WithCores(2)
	sc := engine.Scenario{
		Name: "tiny", Spec: spec, Config: cfg,
		Workload: func() (workloads.Workload, error) {
			return nmo.NewStream(nmo.StreamConfig{Elems: 64, Threads: 1, Iters: 1}), nil
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkMachineOpThroughput(b *testing.B) {
	spec := machine.AmpereAltraMax().WithCores(1)
	m := machine.New(spec)
	elems := 200_000
	w := nmo.NewStream(nmo.StreamConfig{Elems: elems, Threads: 1, Iters: 1})
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		res, err := m.Run(w.Streams())
		if err != nil {
			b.Fatal(err)
		}
		ops += int(res.TotalOps)
	}
	b.ReportMetric(float64(ops)/float64(b.N), "ops/run")
}

func BenchmarkCacheAccess(b *testing.B) {
	c := memsim.NewCache(memsim.CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkSPEUnitHotPath(b *testing.B) {
	sink := &countSink{}
	u := spe.NewUnit(spe.Config{Period: 4096, SampleLoads: true}, xrand.New(1), sink)
	u.Enable()
	op := benchOp()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.OnOp(sim.Cycles(i), &op, 4, 0, false, false)
	}
}

// --- helpers ---

type countSink struct{ n int }

func (s *countSink) WriteRecord(_ sim.Cycles, rec []byte) bool {
	s.n++
	return true
}

func benchOp() isa.Op {
	return isa.Op{Kind: isa.KindLoad, Addr: 0x10000, PC: 0x400000, Size: 8}
}

// --- Cross-backend (SPE vs PEBS) ---

// backendProfile profiles STREAM on a backend's native platform.
func backendProfile(b *testing.B, backend nmo.Backend) *nmo.Profile {
	b.Helper()
	spec := nmo.SpecForBackend(backend).WithCores(64)
	cfg := nmo.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = nmo.ModeSample
	cfg.Backend = backend
	cfg.Period = 1024
	cfg.PageBytes = 1024
	cfg.AuxPages = 64
	cfg.AuxWatermarkBytes = 4096
	mach := nmo.NewMachine(spec)
	w := nmo.NewStream(nmo.StreamConfig{Elems: 1_000_000, Threads: 32, Iters: 2})
	p, err := nmo.Run(cfg, mach, w)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkBackendContrast runs the same workload through both
// sampling backends and reports the mechanism split: SPE pays in
// collisions, PEBS in shadowing skid — the cross-ISA claim of the
// paper's §III in one metric row.
func BenchmarkBackendContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spe := backendProfile(b, nmo.BackendSPE)
		pebs := backendProfile(b, nmo.BackendPEBS)
		b.ReportMetric(float64(spe.Sampler.Processed), "samples-spe")
		b.ReportMetric(float64(pebs.Sampler.Processed), "samples-pebs")
		b.ReportMetric(float64(spe.Sampler.Collisions), "collisions-spe")
		b.ReportMetric(float64(pebs.Sampler.SkidTotal), "skidops-pebs")
	}
}
