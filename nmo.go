// Package nmo is a Go reproduction of NMO, the multi-level
// memory-centric profiling tool for ARM processors presented in
// "Multi-level Memory-Centric Profiling on ARM Processors with ARM
// SPE" (SC 2024).
//
// The package profiles workloads running on a simulated ARM server
// (an Ampere-Altra-Max-class machine with a full ARM SPE model; see
// DESIGN.md for the substitution rationale) at three levels:
//
//   - temporal memory capacity usage (working set over time);
//   - temporal memory bandwidth usage (bus traffic per interval);
//   - memory-region profiling via ARM SPE precise event sampling,
//     with the paper's aux-buffer decoding, timescale conversion,
//     and region/kernel annotations.
//
// # Quickstart
//
//	mach := nmo.NewMachine(nmo.AmpereAltraMax().WithCores(32))
//	cfg := nmo.DefaultConfig()
//	cfg.Enable = true
//	cfg.Mode = nmo.ModeFull
//	cfg.TrackRSS = true
//	cfg.Period = 4096
//	prof, err := nmo.Run(cfg, mach, nmo.NewStream(nmo.StreamConfig{
//		Elems: 1 << 20, Threads: 32, Iters: 5,
//	}))
//
// Configuration follows the paper's Table I environment variables;
// FromEnv reads NMO_ENABLE, NMO_NAME, NMO_MODE, NMO_PERIOD,
// NMO_TRACK_RSS, NMO_BUFSIZE and NMO_AUXBUFSIZE from the process
// environment.
package nmo

import (
	"io"
	"os"

	"nmo/internal/analysis"
	"nmo/internal/core"
	"nmo/internal/machine"
	"nmo/internal/sampler"
	"nmo/internal/sim"
	"nmo/internal/trace"
	"nmo/internal/workloads"
)

// Config is the profiler configuration (Table I plus code-level
// knobs); see core.Config for field documentation.
type Config = core.Config

// Mode selects what the profiler collects (NMO_MODE).
type Mode = core.Mode

// Collection modes.
const (
	ModeNone     = core.ModeNone
	ModeCounters = core.ModeCounters
	ModeSample   = core.ModeSample
	ModeFull     = core.ModeFull
)

// Backend names a sampling backend (NMO_BACKEND).
type Backend = sampler.Kind

// Sampling backends: ARM SPE and Intel PEBS.
const (
	BackendSPE  = sampler.KindSPE
	BackendPEBS = sampler.KindPEBS
)

// ParseBackend parses an NMO_BACKEND / -backend value; the error
// names every supported backend.
func ParseBackend(s string) (Backend, error) { return sampler.ParseKind(s) }

// SupportedBackends lists the backend names for flag help ("spe,
// pebs").
func SupportedBackends() string { return sampler.SupportedList() }

// Profile is a profiling result: wall time, temporal series, the
// attributed sample trace, and SPE/kernel statistics.
type Profile = core.Profile

// Trace is the sample trace model with CSV/binary serialization and
// MD5 checksumming.
type Trace = trace.Trace

// Sample is one attributed memory-access sample.
type Sample = trace.Sample

// Series is a temporal metric (capacity GiB, bandwidth GiB/s).
type Series = trace.Series

// TraceMeta identifies a sample stream: workload plus the region and
// kernel name tables its samples index.
type TraceMeta = trace.Meta

// TraceSink consumes a sample stream; the decode stage pushes every
// attributed sample through the configured sink chain
// (Config.SinkFactory), so run memory is what the sinks retain.
type TraceSink = trace.Sink

// SampleSource streams attributed samples for post-processing: an
// in-memory Trace or an out-of-core v2 trace reader.
type SampleSource = trace.SampleSource

// TraceReaderV2 reads a blocked, indexed v2 trace file out-of-core.
type TraceReaderV2 = trace.ReaderV2

// TraceWriterV2 streams samples into the v2 format (it is a TraceSink).
type TraceWriterV2 = trace.WriterV2

// OpenTraceV2 opens a v2 trace for out-of-core reading: only the
// header and footer block index load; samples stream block-by-block.
func OpenTraceV2(r io.ReadSeeker) (*TraceReaderV2, error) { return trace.OpenV2(r) }

// NewTraceWriterV2 starts a streamed v2 trace (blockSamples 0 = the
// default block granularity).
func NewTraceWriterV2(w io.Writer, meta TraceMeta, blockSamples int) (*TraceWriterV2, error) {
	return trace.NewWriterV2(w, meta, blockSamples)
}

// NewTraceWriterV21 starts a streamed v2.1 trace: the v2 layout with
// per-block compression, identical sample stream and rolling MD5.
func NewTraceWriterV21(w io.Writer, meta TraceMeta, blockSamples int) (*TraceWriterV2, error) {
	return trace.NewWriterV21(w, meta, blockSamples)
}

// ReadTraceBinary deserializes a v1 trace written by Trace.WriteBinary.
func ReadTraceBinary(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// Machine is the simulated ARM platform workloads run on.
type Machine = machine.Machine

// MachineSpec describes the simulated hardware.
type MachineSpec = machine.Spec

// Workload produces per-thread operation streams plus region/kernel
// annotations.
type Workload = workloads.Workload

// Region is a tagged address range (nmo_tag_addr equivalent).
type Region = workloads.Region

// Workload configurations (the paper's five applications).
type (
	StreamConfig = workloads.StreamConfig
	CFDConfig    = workloads.CFDConfig
	BFSConfig    = workloads.BFSConfig
	Phase        = workloads.Phase
)

// DefaultConfig returns the Table I defaults.
func DefaultConfig() Config { return core.DefaultConfig() }

// FromEnv builds a Config from the process environment (NMO_* vars).
func FromEnv() (Config, error) { return core.FromEnv(os.Getenv) }

// FromEnvFunc builds a Config from a custom environment lookup.
func FromEnvFunc(getenv func(string) string) (Config, error) {
	return core.FromEnv(getenv)
}

// AmpereAltraMax returns the paper's Table II platform specification.
func AmpereAltraMax() MachineSpec { return machine.AmpereAltraMax() }

// IntelIceLakeSP returns the x86 counterpart platform (Xeon Platinum
// 8380 class) used for the SPE-vs-PEBS cross-ISA contrasts.
func IntelIceLakeSP() MachineSpec { return machine.IntelIceLakeSP() }

// SpecForBackend returns the native platform of a sampling backend:
// the Altra for SPE, the Ice Lake part for PEBS.
func SpecForBackend(b Backend) MachineSpec {
	return machine.SpecForArch(b.Arch())
}

// NewMachine constructs a simulated machine.
func NewMachine(spec MachineSpec) *Machine { return machine.New(spec) }

// NewSession binds a configuration to a machine for repeated
// profiling runs.
func NewSession(cfg Config, m *Machine) (*core.Session, error) {
	return core.NewSession(cfg, m)
}

// Run profiles the workload once under cfg on m and returns the
// profile — the one-call entry point.
func Run(cfg Config, m *Machine, w Workload) (*core.Profile, error) {
	s, err := core.NewSession(cfg, m)
	if err != nil {
		return nil, err
	}
	return s.Run(w)
}

// NewStream constructs the STREAM (Triad) benchmark workload.
func NewStream(cfg StreamConfig) Workload { return workloads.NewStream(cfg) }

// NewCFD constructs the Rodinia-CFD-like solver workload.
func NewCFD(cfg CFDConfig) Workload { return workloads.NewCFD(cfg) }

// NewBFS constructs the Rodinia-BFS-like graph workload.
func NewBFS(cfg BFSConfig) Workload { return workloads.NewBFS(cfg) }

// NewPageRank constructs the CloudSuite Graph Analytics (Page Rank)
// phase-level workload for a machine with the given spec.
func NewPageRank(spec MachineSpec, seed uint64) Workload {
	return workloads.NewPageRank(spec.Freq, seed)
}

// NewInMemAnalytics constructs the CloudSuite In-memory Analytics
// (ALS) phase-level workload.
func NewInMemAnalytics(spec MachineSpec, seed uint64) Workload {
	return workloads.NewInMemAnalytics(spec.Freq, seed)
}

// Accuracy evaluates the paper's Eq. (1): 1 - |mem - samples*period|
// / mem.
func Accuracy(memCounted, samples, period uint64) float64 {
	return analysis.Accuracy(memCounted, samples, period)
}

// Overhead evaluates relative time overhead against a baseline wall
// time (both in cycles).
func Overhead(baselineCycles, profiledCycles uint64) float64 {
	return analysis.Overhead(sim.Cycles(baselineCycles), sim.Cycles(profiledCycles))
}
