package pebs

import (
	"testing"
	"testing/quick"

	"nmo/internal/isa"
	"nmo/internal/sim"
	"nmo/internal/xrand"
)

func loadOp(addr, pc uint64) isa.Op {
	return isa.Op{Kind: isa.KindLoad, Addr: addr, PC: pc, Size: 8}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(ip, addr, tsc uint64, lat uint32, src uint8, store bool) bool {
		in := Record{IP: ip, Addr: addr, TSC: tsc, Latency: lat, Source: src, Store: store}
		var buf [RecordSize]byte
		Encode(buf[:], &in)
		var out Record
		if err := Decode(buf[:], &out); err != nil {
			return false
		}
		return in == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	var r Record
	if err := Decode(make([]byte, RecordSize-1), &r); err != ErrShort {
		t.Errorf("short decode err = %v", err)
	}
}

func TestEventMatching(t *testing.T) {
	ld := loadOp(1, 2)
	st := isa.Op{Kind: isa.KindStore, Addr: 1, PC: 2, Size: 8}
	alu := isa.Op{Kind: isa.KindALU}
	cases := []struct {
		ev   Event
		op   *isa.Op
		want bool
	}{
		{EventLoads, &ld, true}, {EventLoads, &st, false}, {EventLoads, &alu, false},
		{EventStores, &st, true}, {EventStores, &ld, false},
		{EventMemAll, &ld, true}, {EventMemAll, &st, true}, {EventMemAll, &alu, false},
	}
	for _, c := range cases {
		if got := c.ev.matches(c.op); got != c.want {
			t.Errorf("%v.matches(%v) = %v", c.ev, c.op.Kind, got)
		}
	}
	for _, ev := range []Event{EventLoads, EventStores, EventMemAll} {
		if ev.String() == "?" {
			t.Error("missing event name")
		}
	}
}

func TestSamplingRateCountsEventsNotOps(t *testing.T) {
	// PEBS samples every Nth *event*: interleaving non-events must not
	// change the number of samples.
	run := func(aluPerLoad int) uint64 {
		var written uint64
		u := NewUnit(Config{Event: EventLoads, Period: 100},
			xrand.New(1), func(_ sim.Cycles, recs []byte) (sim.Cycles, bool) {
				written += uint64(len(recs) / RecordSize)
				return 0, true
			})
		u.Enable()
		ld := loadOp(0x1000, 0x40)
		alu := isa.Op{Kind: isa.KindALU, PC: 0x44}
		now := sim.Cycles(0)
		for i := 0; i < 50_000; i++ {
			u.OnOp(now, &ld, 4, 0)
			for j := 0; j < aluPerLoad; j++ {
				now++
				u.OnOp(now, &alu, 1, 0)
			}
			now++
		}
		u.Flush(now)
		return written
	}
	dense, sparse := run(0), run(9)
	if dense != sparse {
		t.Errorf("sample count depends on non-event ops: %d vs %d", dense, sparse)
	}
	if dense != 500 {
		t.Errorf("samples = %d, want 500 (50000 loads / period 100)", dense)
	}
}

func TestNoCollisionsUnlikeSPE(t *testing.T) {
	// Long latencies never cause PEBS drops (no tracking slot).
	var got int
	u := NewUnit(Config{Event: EventLoads, Period: 10},
		xrand.New(1), func(_ sim.Cycles, recs []byte) (sim.Cycles, bool) {
			got += len(recs) / RecordSize
			return 0, true
		})
	u.Enable()
	ld := loadOp(0x2000, 0x40)
	for i := 0; i < 10_000; i++ {
		u.OnOp(sim.Cycles(i), &ld, 50_000, 3)
	}
	u.Flush(sim.Cycles(10_000))
	if got != 1000 {
		t.Errorf("records = %d, want 1000 (no collisions)", got)
	}
	if u.Stats().Dropped != 0 {
		t.Errorf("dropped = %d", u.Stats().Dropped)
	}
}

func TestSkidMovesIP(t *testing.T) {
	// With skid enabled, some records carry the PC of a later op.
	var ips []uint64
	u := NewUnit(Config{Event: EventLoads, Period: 7, SkidOps: 3},
		xrand.New(3), func(_ sim.Cycles, recs []byte) (sim.Cycles, bool) {
			DecodeAll(recs, func(r *Record) { ips = append(ips, r.IP) })
			return 0, true
		})
	u.Enable()
	now := sim.Cycles(0)
	for i := 0; i < 7_000; i++ {
		op := loadOp(uint64(0x1000+i*8), uint64(0x400000+i*4))
		u.OnOp(now, &op, 4, 0)
		now++
	}
	u.Flush(now)
	if len(ips) == 0 {
		t.Fatal("no records")
	}
	if u.Stats().SkidTotal == 0 {
		t.Error("no skid accumulated with SkidOps=3")
	}
	// Addresses remain the *sampled* op's (operands are precise in
	// PEBS); only the IP skids. Verify addresses are period-spaced.
	// (Addr of sample k is 0x1000 + (7k-1)*8 exactly.)
}

func TestSkidAddressStaysPrecise(t *testing.T) {
	var recs []Record
	u := NewUnit(Config{Event: EventLoads, Period: 5, SkidOps: 2},
		xrand.New(9), func(_ sim.Cycles, raw []byte) (sim.Cycles, bool) {
			DecodeAll(raw, func(r *Record) { recs = append(recs, *r) })
			return 0, true
		})
	u.Enable()
	now := sim.Cycles(0)
	for i := 0; i < 1_000; i++ {
		op := loadOp(uint64(0x1000+i*8), uint64(0x400000+i*4))
		u.OnOp(now, &op, 4, 0)
		now++
	}
	u.Flush(now)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range recs {
		// Sampled ops are every 5th load: index 4, 9, 14, ... so
		// addresses are 0x1000 + idx*8 with idx % 5 == 4.
		idx := (r.Addr - 0x1000) / 8
		if idx%5 != 4 {
			t.Fatalf("record addr %#x (idx %d) not on the sampling grid", r.Addr, idx)
		}
		if r.IP < 0x400000 || r.IP < 0x400000+uint64(idx)*4 {
			t.Fatalf("IP %#x earlier than the sampled op", r.IP)
		}
	}
}

func TestPMIThresholdAndCost(t *testing.T) {
	var pmis int
	u := NewUnit(Config{Event: EventLoads, Period: 1, DSBytes: RecordSize * 8,
		PMIThreshold: RecordSize * 4},
		xrand.New(1), func(_ sim.Cycles, recs []byte) (sim.Cycles, bool) {
			pmis++
			if len(recs) != RecordSize*4 {
				t.Errorf("PMI with %d bytes, want %d", len(recs), RecordSize*4)
			}
			return 1000, true
		})
	u.Enable()
	ld := loadOp(1, 2)
	var cost sim.Cycles
	for i := 0; i < 8; i++ {
		cost += u.OnOp(sim.Cycles(i), &ld, 4, 0)
	}
	if pmis != 2 {
		t.Errorf("PMIs = %d, want 2", pmis)
	}
	if cost != 2000 {
		t.Errorf("charged %d cycles, want 2000", cost)
	}
}

func TestDSOverflowDropsWithoutHandler(t *testing.T) {
	// No handler: the buffer fills at the threshold's firePMI (which
	// clears it), so use threshold > capacity to force drops.
	u := NewUnit(Config{Event: EventLoads, Period: 1,
		DSBytes: RecordSize * 2, PMIThreshold: RecordSize * 2},
		xrand.New(1), nil)
	u.Enable()
	ld := loadOp(1, 2)
	for i := 0; i < 10; i++ {
		u.OnOp(sim.Cycles(i), &ld, 4, 0)
	}
	st := u.Stats()
	if st.Written == 0 {
		t.Error("nothing written")
	}
	if st.PMIs == 0 {
		t.Error("no PMIs")
	}
}

func TestDisabled(t *testing.T) {
	u := NewUnit(Config{Event: EventLoads, Period: 1}, xrand.New(1), nil)
	ld := loadOp(1, 2)
	u.OnOp(0, &ld, 4, 0)
	if u.Stats().EventsSeen != 0 {
		t.Error("disabled unit observed events")
	}
	u.Enable()
	u.OnOp(1, &ld, 4, 0)
	u.Disable()
	u.OnOp(2, &ld, 4, 0)
	if u.Stats().EventsSeen != 1 {
		t.Errorf("events = %d, want 1", u.Stats().EventsSeen)
	}
}

func TestDefaults(t *testing.T) {
	u := NewUnit(Config{}, xrand.New(1), nil)
	if u.cfg.Period == 0 || u.cfg.DSBytes == 0 || u.cfg.PMIThreshold == 0 {
		t.Errorf("defaults not applied: %+v", u.cfg)
	}
	if u.cfg.PMIThreshold > u.cfg.DSBytes {
		t.Error("threshold beyond capacity")
	}
}

func TestRejectedPMIRetriesAndRecovers(t *testing.T) {
	// While the kernel rejects PMIs the DS buffer fills and overflows
	// (transient drops); once service is available again, the next
	// capture's retry must resume delivery — rejection must not wedge
	// the unit permanently.
	reject := true
	var accepted int
	u := NewUnit(Config{Event: EventLoads, Period: 1,
		DSBytes: RecordSize * 8, PMIThreshold: RecordSize * 4},
		xrand.New(1), func(_ sim.Cycles, recs []byte) (sim.Cycles, bool) {
			if reject {
				return 0, false
			}
			accepted += len(recs) / RecordSize
			return 0, true
		})
	u.Enable()
	ld := loadOp(1, 2)
	for i := 0; i < 32; i++ {
		u.OnOp(sim.Cycles(i), &ld, 4, 0)
	}
	st := u.Stats()
	if st.Dropped == 0 {
		t.Fatal("no DS-overflow drops while the PMI was rejected")
	}
	if accepted != 0 {
		t.Fatal("handler accepted records while rejecting")
	}
	droppedBefore := st.Dropped
	reject = false
	for i := 32; i < 64; i++ {
		u.OnOp(sim.Cycles(i), &ld, 4, 0)
	}
	if accepted == 0 {
		t.Fatal("service never resumed after the rejection window")
	}
	if u.Stats().Dropped != droppedBefore {
		t.Errorf("drops kept accruing after service resumed: %d -> %d",
			droppedBefore, u.Stats().Dropped)
	}
}

func TestArmedOverwriteCountsDropped(t *testing.T) {
	// Period at or below the skid window: counter overflows faster
	// than armed samples resolve, so older armed samples are lost —
	// and must be accounted, keeping Sampled == Written + Dropped
	// (plus at most one sample still armed at the end).
	u := NewUnit(Config{Event: EventLoads, Period: 2, SkidOps: 8},
		xrand.New(3), func(_ sim.Cycles, recs []byte) (sim.Cycles, bool) {
			return 0, true
		})
	u.Enable()
	ld := loadOp(1, 2)
	for i := 0; i < 100_000; i++ {
		u.OnOp(sim.Cycles(i), &ld, 4, 0)
	}
	u.Flush(100_000)
	st := u.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops despite period <= skid window")
	}
	if got := st.Written + st.Dropped; got != st.Sampled && got != st.Sampled-1 {
		t.Errorf("Sampled=%d != Written=%d + Dropped=%d (+<=1 armed)",
			st.Sampled, st.Written, st.Dropped)
	}
}
