// Package pebs models Intel Processor Event-Based Sampling — the x86
// backend of NMO. The paper's design section states that "to collect
// address samples, the runtime uses SPE when compiling for ARM and
// PEBS for Intel" (§III); this package provides that second backend so
// the architecture-agnostic annotation API is demonstrably portable,
// and so the SPE-vs-PEBS contrast studied by Sasongko et al. (the
// paper's reference [8]) can be reproduced in simulation.
//
// PEBS differs from SPE in mechanism:
//
//   - the sampled population is a specific *event* (e.g. retired
//     loads), not every decoded operation: the hardware counter
//     counts event occurrences and arms PEBS when it overflows;
//   - the record is written by microcode at the sampling point into
//     the Debug Store (DS) buffer without tracking the operation
//     through the pipeline — there is no SPE-style collision, but
//     there is *shadowing*: the recorded instruction pointer skids to
//     a nearby later instruction;
//   - a PMI (performance monitoring interrupt) fires when the DS
//     buffer reaches its threshold, like the SPE aux watermark.
//
// Records follow a fixed 48-byte layout loosely modeled on the
// Skylake PEBS v3 memory record (IP, data linear address, latency,
// data source, TSC).
package pebs

import (
	"encoding/binary"
	"errors"

	"nmo/internal/isa"
	"nmo/internal/sim"
	"nmo/internal/xrand"
)

// RecordSize is the size of one encoded PEBS record.
const RecordSize = 48

// Event selects the sampled population.
type Event uint8

const (
	// EventLoads samples retired load instructions
	// (MEM_INST_RETIRED.ALL_LOADS).
	EventLoads Event = iota
	// EventStores samples retired store instructions
	// (MEM_INST_RETIRED.ALL_STORES).
	EventStores
	// EventMemAll samples all retired memory instructions.
	EventMemAll
)

func (e Event) String() string {
	switch e {
	case EventLoads:
		return "mem_inst_retired.all_loads"
	case EventStores:
		return "mem_inst_retired.all_stores"
	case EventMemAll:
		return "mem_inst_retired.any"
	}
	return "?"
}

// matches reports whether op belongs to the sampled population.
func (e Event) matches(op *isa.Op) bool {
	switch e {
	case EventLoads:
		return op.Kind == isa.KindLoad || op.Kind == isa.KindBlockLoad
	case EventStores:
		return op.Kind == isa.KindStore || op.Kind == isa.KindBlockStore
	case EventMemAll:
		return op.Kind.IsMemory()
	}
	return false
}

// Record is a decoded PEBS memory record.
type Record struct {
	IP      uint64 // instruction pointer (possibly skidded)
	Addr    uint64 // data linear address
	TSC     uint64 // timestamp counter at capture
	Latency uint32 // load latency (cycles)
	Source  uint8  // data source encoding (memory level, 0..3)
	Store   bool
}

// Encode writes the record into dst (>= RecordSize bytes).
func Encode(dst []byte, r *Record) int {
	_ = dst[RecordSize-1]
	binary.LittleEndian.PutUint64(dst[0:], r.IP)
	binary.LittleEndian.PutUint64(dst[8:], r.Addr)
	binary.LittleEndian.PutUint64(dst[16:], r.TSC)
	binary.LittleEndian.PutUint32(dst[24:], r.Latency)
	dst[28] = r.Source
	if r.Store {
		dst[29] = 1
	} else {
		dst[29] = 0
	}
	for i := 30; i < RecordSize; i++ {
		dst[i] = 0
	}
	return RecordSize
}

// ErrShort reports a buffer smaller than one record.
var ErrShort = errors.New("pebs: buffer shorter than one record")

// Decode parses one record.
func Decode(src []byte, r *Record) error {
	if len(src) < RecordSize {
		return ErrShort
	}
	r.IP = binary.LittleEndian.Uint64(src[0:])
	r.Addr = binary.LittleEndian.Uint64(src[8:])
	r.TSC = binary.LittleEndian.Uint64(src[16:])
	r.Latency = binary.LittleEndian.Uint32(src[24:])
	r.Source = src[28]
	r.Store = src[29] == 1
	return nil
}

// Config programs a PEBS unit.
type Config struct {
	// Event selects the sampled population.
	Event Event
	// Period is the counter reload value: one sample every Period
	// event occurrences.
	Period uint64
	// SkidOps is the maximum shadowing skid in *operations*: the
	// recorded IP belongs to an instruction up to SkidOps later than
	// the one that overflowed the counter. Yi et al. (the paper's
	// reference [26]) measured small but systematic skid; 0 disables.
	SkidOps int
	// DSBytes is the Debug Store buffer capacity in bytes.
	DSBytes int
	// PMIThreshold is the fill level (bytes) at which the PMI fires;
	// 0 defaults to 7/8 of the buffer, roughly Linux's layout.
	PMIThreshold int
}

func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = 10007
	}
	if c.DSBytes == 0 {
		c.DSBytes = 64 << 10
	}
	if c.PMIThreshold == 0 {
		c.PMIThreshold = c.DSBytes * 7 / 8
	}
	if c.PMIThreshold > c.DSBytes {
		// An explicitly programmed threshold sizes the buffer: grow
		// the DS area (with headroom past the threshold) rather than
		// silently clamping the PMI cadence.
		c.DSBytes = c.PMIThreshold + c.PMIThreshold/8 + RecordSize
	}
	return c
}

// Stats counts unit activity.
type Stats struct {
	EventsSeen uint64 // population occurrences observed
	Sampled    uint64 // counter overflows
	Written    uint64 // records written to the DS buffer
	Dropped    uint64 // records lost: DS full awaiting PMI service, or overwritten while armed
	PMIs       uint64 // interrupts raised
	SkidTotal  uint64 // accumulated skid distance (ops)
}

// PMIHandler receives the DS buffer contents when the threshold
// interrupt fires. It returns the service cost in cycles and whether
// the kernel took the interrupt: on accepted == false (the PMI is
// still pended — e.g. the previous one is mid-service) the unit keeps
// the DS contents, retries at the next capture, and — this being the
// point — overflows the DS buffer if service stays unavailable, which
// is where PEBS actually loses records.
type PMIHandler func(now sim.Cycles, records []byte) (cost sim.Cycles, accepted bool)

// Unit is one core's PEBS machinery.
type Unit struct {
	cfg     Config
	rng     *xrand.RNG
	handler PMIHandler
	enabled bool

	counter uint64
	ds      []byte
	dsUsed  int
	// pmiPending marks a fired-but-unaccepted PMI: the DS is retained
	// and service retried on later captures without recounting PMIs.
	pmiPending bool

	// pending skid: a sample armed, waiting for a later op's IP.
	armed     bool
	armedSkid int
	pendAddr  uint64
	pendLat   uint32
	pendSrc   uint8
	pendStore bool
	pendTime  sim.Cycles

	stats Stats
}

// NewUnit constructs a disabled PEBS unit.
func NewUnit(cfg Config, rng *xrand.RNG, handler PMIHandler) *Unit {
	cfg = cfg.withDefaults()
	return &Unit{
		cfg:     cfg,
		rng:     rng,
		handler: handler,
		ds:      make([]byte, 0, cfg.DSBytes),
		counter: cfg.Period,
	}
}

// Enable starts sampling.
func (u *Unit) Enable() {
	u.enabled = true
	u.counter = u.cfg.Period
}

// Disable stops sampling and discards in-flight state.
func (u *Unit) Disable() {
	u.enabled = false
	u.armed = false
}

// Stats returns a copy of the counters.
func (u *Unit) Stats() Stats { return u.stats }

// OnOp observes one operation; returns PMI service cycles to charge.
func (u *Unit) OnOp(now sim.Cycles, op *isa.Op, lat uint32, level uint8) sim.Cycles {
	if !u.enabled {
		return 0
	}
	var cost sim.Cycles

	// A pending (armed) sample captures the IP of a later op —
	// shadowing skid.
	if u.armed {
		if u.armedSkid <= 0 {
			cost += u.capture(now, op.PC)
		} else {
			u.armedSkid--
		}
	}

	if !u.cfg.Event.matches(op) {
		return cost
	}
	u.stats.EventsSeen++
	u.counter--
	if u.counter > 0 {
		return cost
	}
	u.counter = u.cfg.Period
	u.stats.Sampled++
	if u.armed {
		// The previous sample is still waiting out its skid window;
		// the microcode tracks one capture at a time, so the older
		// sample is lost. Counted as Dropped to keep the invariant
		// Sampled == Written + Dropped (+ at most one still armed).
		u.stats.Dropped++
	}
	// Arm a capture: record the memory operands now, the IP after the
	// skid window.
	u.armed = true
	if u.cfg.SkidOps > 0 {
		u.armedSkid = u.rng.Intn(u.cfg.SkidOps + 1)
	} else {
		u.armedSkid = 0
	}
	u.pendAddr = op.Addr
	u.pendLat = lat
	u.pendSrc = level
	u.pendStore = op.Kind.IsWrite()
	u.pendTime = now
	u.stats.SkidTotal += uint64(u.armedSkid)
	if u.armedSkid == 0 {
		cost += u.capture(now, op.PC)
	}
	return cost
}

// capture writes the armed record with ip, possibly firing the PMI.
func (u *Unit) capture(now sim.Cycles, ip uint64) sim.Cycles {
	u.armed = false
	var cost sim.Cycles
	if u.pmiPending && len(u.ds)+RecordSize > u.cfg.DSBytes {
		// DS full behind a pended PMI: retry service first — the
		// kernel may have finished the previous interrupt — so a
		// finite service window causes transient loss, not a
		// permanent stall.
		cost += u.firePMI(now)
	}
	if len(u.ds)+RecordSize > u.cfg.DSBytes {
		u.stats.Dropped++
		return cost
	}
	var buf [RecordSize]byte
	rec := Record{
		IP:      ip,
		Addr:    u.pendAddr,
		TSC:     uint64(u.pendTime),
		Latency: u.pendLat,
		Source:  u.pendSrc,
		Store:   u.pendStore,
	}
	Encode(buf[:], &rec)
	u.ds = append(u.ds, buf[:]...)
	u.stats.Written++
	if len(u.ds) >= u.cfg.PMIThreshold {
		cost += u.firePMI(now)
	}
	return cost
}

// firePMI delivers the DS contents to the handler, resetting the
// buffer only when the handler accepted the interrupt.
func (u *Unit) firePMI(now sim.Cycles) sim.Cycles {
	if !u.pmiPending {
		u.stats.PMIs++
	}
	if u.handler == nil {
		u.ds = u.ds[:0]
		u.pmiPending = false
		return 0
	}
	cost, accepted := u.handler(now, u.ds)
	if accepted {
		u.ds = u.ds[:0]
	}
	u.pmiPending = !accepted
	return cost
}

// Flush delivers any residual records (end of run).
func (u *Unit) Flush(now sim.Cycles) {
	if len(u.ds) > 0 {
		u.firePMI(now)
	}
}

// DecodeAll walks concatenated records, calling fn per record, and
// returns the count.
func DecodeAll(src []byte, fn func(*Record)) int {
	n := 0
	var rec Record
	for len(src) >= RecordSize {
		if Decode(src[:RecordSize], &rec) == nil {
			fn(&rec)
			n++
		}
		src = src[RecordSize:]
	}
	return n
}
