package experiments

import (
	"fmt"

	"nmo/internal/analysis"
	"nmo/internal/engine"
	"nmo/internal/sampler"
)

// BiasResult holds the §IX future-work study: sampling bias across
// code positions, with and without interval-counter dither.
type BiasResult struct {
	// Period is the sampling period used; it is chosen divisible by
	// the kernel's ops-per-iteration so that an undithered counter
	// phase-locks to one code position.
	Period uint64
	// BiasJitterOn / BiasJitterOff are total-variation distances in
	// [0,1] between the sampled PC mix and the true per-PC frequency
	// of memory operations.
	BiasJitterOn  float64
	BiasJitterOff float64
	// TopPCShareOff is the fraction of undithered samples taken at
	// the single most-sampled PC (1.0 = complete phase lock).
	TopPCShareOff float64
}

// BiasStudy quantifies the sampling bias the paper leaves as future
// work ("the bias when sampling the same event in different positions
// of code"). STREAM's Triad loop body is 5 operations with 3 memory
// accesses at distinct PCs appearing with equal true frequency; with
// a period divisible by 5 and dither disabled, SPE's interval counter
// selects the same loop slot forever — in the extreme case a
// non-memory slot, collecting no samples at all (bias 1.0).
func BiasStudy(sc Scale) (*BiasResult, error) {
	if sc.Backend == sampler.KindPEBS {
		// PEBS has no interval dither to ablate: its counter reloads
		// exactly, so "jitter on" and "jitter off" would run the same
		// scenario twice and report a meaningless zero delta. (The
		// PEBS phase-lock bias itself is the permanent condition —
		// DESIGN.md §8.)
		return nil, fmt.Errorf("experiments: the dither bias study requires the spe backend (pebs has no jitter)")
	}
	const period = 1000 // divisible by STREAM's 5 ops/element
	// True memory-op PC mix: loads of b and c, store of a — one each
	// per element at fixed code sites.
	truth := map[uint64]float64{
		0x0040_1000: 1.0 / 3, // load b
		0x0040_1004: 1.0 / 3, // load c
		0x0040_100c: 1.0 / 3, // store a
	}

	// Both configurations run as one two-scenario batch.
	scenario := func(jitter bool, name string) engine.Scenario {
		cfg := sc.samplingConfig(period, 0)
		cfg.Jitter = jitter
		return sc.scenario(name, "stream", sc.Threads, cfg)
	}
	profs, err := engine.Profiles(sc.runner().RunAll([]engine.Scenario{
		scenario(true, "stream/bias/jitter=on"),
		scenario(false, "stream/bias/jitter=off"),
	}))
	if err != nil {
		return nil, err
	}
	on, off := profs[0], profs[1]

	res := &BiasResult{
		Period:        period,
		BiasJitterOn:  analysis.PCBias(on.Trace, truth),
		BiasJitterOff: analysis.PCBias(off.Trace, truth),
	}
	if h := analysis.PCHistogramOf(off.Trace); len(h) > 0 && len(off.Trace.Samples) > 0 {
		res.TopPCShareOff = float64(h[0].Count) / float64(len(off.Trace.Samples))
	}
	return res, nil
}
