package experiments

import (
	"reflect"
	"testing"
)

// determinismScale is deliberately small: the jobs=1 vs jobs=8
// comparison runs every sweep twice.
func determinismScale(jobs int) Scale {
	s := QuickScale()
	s.Trials = 2
	s.StreamElems = 120_000
	s.Cores = 16
	s.Threads = 8
	s.Jobs = jobs
	return s
}

// TestSweepTablesIdenticalAcrossJobs is the engine's end-to-end
// determinism contract at the experiments layer: the same seed at
// jobs=1 and jobs=8 yields identical sweep tables, field for field.
func TestSweepTablesIdenticalAcrossJobs(t *testing.T) {
	periods := []uint64{2000, 8000}

	serial, err := PeriodSweep(determinismScale(1), "stream", periods)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PeriodSweep(determinismScale(8), "stream", periods)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("period sweep differs between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
			serial, parallel)
	}
}

func TestThreadSweepIdenticalAcrossJobs(t *testing.T) {
	serial, err := Fig10ThreadSweep(determinismScale(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig10ThreadSweep(determinismScale(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("thread sweep differs between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
			serial, parallel)
	}
}

// TestRegionTraceMD5IdenticalAcrossJobs pins the per-profile trace
// checksum: identical seeds must yield bit-identical traces no matter
// how the batch was sharded.
func TestRegionTraceMD5IdenticalAcrossJobs(t *testing.T) {
	a, err := RegionTrace(determinismScale(1), "stream", 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RegionTrace(determinismScale(8), "stream", 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.MD5() != b.Trace.MD5() {
		t.Error("trace MD5 differs between jobs=1 and jobs=8")
	}
}
