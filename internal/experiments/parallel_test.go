package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nmo/internal/engine"
	"nmo/internal/trace"
	"nmo/internal/workloads"
)

// determinismScale is deliberately small: the jobs=1 vs jobs=8
// comparison runs every sweep twice.
func determinismScale(jobs int) Scale {
	s := QuickScale()
	s.Trials = 2
	s.StreamElems = 120_000
	s.Cores = 16
	s.Threads = 8
	s.Jobs = jobs
	return s
}

// TestSweepTablesIdenticalAcrossJobs is the engine's end-to-end
// determinism contract at the experiments layer: the same seed at
// jobs=1 and jobs=8 yields identical sweep tables, field for field.
func TestSweepTablesIdenticalAcrossJobs(t *testing.T) {
	periods := []uint64{2000, 8000}

	serial, err := PeriodSweep(determinismScale(1), "stream", periods)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PeriodSweep(determinismScale(8), "stream", periods)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("period sweep differs between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
			serial, parallel)
	}
}

func TestThreadSweepIdenticalAcrossJobs(t *testing.T) {
	serial, err := Fig10ThreadSweep(determinismScale(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig10ThreadSweep(determinismScale(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("thread sweep differs between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
			serial, parallel)
	}
}

// TestRegionTraceMD5IdenticalAcrossJobs pins the per-profile trace
// checksum: identical seeds must yield bit-identical traces no matter
// how the batch was sharded.
func TestRegionTraceMD5IdenticalAcrossJobs(t *testing.T) {
	a, err := RegionTrace(determinismScale(1), "stream", 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RegionTrace(determinismScale(8), "stream", 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.MD5() != b.Trace.MD5() {
		t.Error("trace MD5 differs between jobs=1 and jobs=8")
	}
}

// TestStreamedSinksIdenticalAcrossJobs pins the streaming pipeline's
// determinism end to end: scenarios that stream to v2 files and
// aggregate-only sinks must produce bit-identical checksums at jobs=1
// and jobs=8 — the emit-time attribution and reorder buffer must not
// depend on scheduling.
func TestStreamedSinksIdenticalAcrossJobs(t *testing.T) {
	run := func(jobs int, dir string) [][16]byte {
		sc := determinismScale(jobs)
		var scs []engine.Scenario
		for i := 0; i < 4; i++ {
			cfg := sc.samplingConfig(1500+uint64(i)*500, i)
			cfg.TraceOut = filepath.Join(dir, fmt.Sprintf("j%d_%d.nmo2", jobs, i))
			cfg.TraceBlockSamples = 32
			scs = append(scs, sc.scenario(
				fmt.Sprintf("stream/v2/%d", i), "stream", sc.Threads, cfg))
			scs = append(scs, engine.Scenario{
				Name:        fmt.Sprintf("stream/agg/%d", i),
				Spec:        sc.specFor(),
				Config:      sc.samplingConfig(1500+uint64(i)*500, i),
				SinkFactory: AggregateSinks,
				Workload: func() (workloads.Workload, error) {
					return sc.workloadFor("stream", sc.Threads)
				},
			})
		}
		profs, err := engine.Profiles(sc.runner().RunAll(scs))
		if err != nil {
			t.Fatal(err)
		}
		var sums [][16]byte
		for _, p := range profs {
			sums = append(sums, p.MD5)
		}
		return sums
	}
	dir := t.TempDir()
	serial := run(1, dir)
	parallel := run(8, dir)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("streamed MD5s differ between jobs=1 and jobs=8:\n%x\nvs\n%x",
			serial, parallel)
	}
	// The v2 files themselves must be byte-identical across shardings.
	for i := 0; i < 4; i++ {
		a, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("j1_%d.nmo2", i)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("j8_%d.nmo2", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("v2 file %d differs between jobs=1 and jobs=8", i)
		}
		rd, err := trace.OpenV2(bytes.NewReader(a))
		if err != nil {
			t.Fatal(err)
		}
		if rd.MD5() != serial[i*2] {
			t.Errorf("file %d footer MD5 differs from profile MD5", i)
		}
	}
}
