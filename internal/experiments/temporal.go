package experiments

import (
	"fmt"

	"nmo/internal/analysis"
	"nmo/internal/core"
	"nmo/internal/engine"
	"nmo/internal/trace"
	"nmo/internal/workloads"
)

// TemporalResult holds the Fig. 2 (capacity) and Fig. 3 (bandwidth)
// timelines for one CloudSuite workload.
type TemporalResult struct {
	Workload  string
	Capacity  trace.Series
	Bandwidth trace.Series
	// PeakRSSGiB is the saturation level (123.8 GiB for Page Rank,
	// 52.3 GiB for In-memory Analytics in the paper).
	PeakRSSGiB float64
	// PeakBWGiBps is the bandwidth peak (~120 / ~100 GiB/s).
	PeakBWGiBps float64
	// UtilizationPct is peak RSS over installed capacity (the paper's
	// 48.4% / 20.4% observation).
	UtilizationPct float64
	WallSec        float64
}

// CloudScenario builds the engine scenario for a CloudSuite workload
// ("pagerank" or "inmem") under the temporal collectors, on the
// scaled-clock machine.
func CloudScenario(sc Scale, name string) (engine.Scenario, error) {
	spec := sc.cloudSpec()
	var build func() *workloads.PhaseWorkload
	switch name {
	case "pagerank":
		build = func() *workloads.PhaseWorkload {
			return workloads.NewPageRank(spec.Freq, sc.Seed)
		}
	case "inmem":
		build = func() *workloads.PhaseWorkload {
			return workloads.NewInMemAnalytics(spec.Freq, sc.Seed)
		}
	default:
		return engine.Scenario{}, fmt.Errorf("experiments: unknown cloud workload %q", name)
	}

	cfg := core.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = core.ModeCounters
	cfg.TrackRSS = true
	cfg.IntervalSec = 1.0
	cfg.Seed = sc.Seed

	return engine.Scenario{
		Name:   "cloud/" + name,
		Spec:   spec,
		Config: cfg,
		Workload: func() (workloads.Workload, error) {
			w := build()
			if sc.CloudBlockBytes > 0 {
				w.SetBlockBytes(sc.CloudBlockBytes)
			}
			return w, nil
		},
	}, nil
}

// CloudTemporal profiles a CloudSuite workload ("pagerank" or
// "inmem") with the temporal collectors, reproducing Figs. 2–3.
func CloudTemporal(sc Scale, name string) (*TemporalResult, error) {
	scen, err := CloudScenario(sc, name)
	if err != nil {
		return nil, err
	}
	p, err := engine.Run(scen)
	if err != nil {
		return nil, err
	}
	spec := sc.cloudSpec()
	res := &TemporalResult{
		Workload:       p.Workload,
		Capacity:       p.Capacity,
		Bandwidth:      p.Bandwidth,
		PeakRSSGiB:     p.Capacity.Max(),
		PeakBWGiBps:    p.Bandwidth.Max(),
		UtilizationPct: float64(p.MaxRSS) / float64(spec.MemCapacityBytes) * 100,
		WallSec:        p.WallSec,
	}
	return res, nil
}

// RegionTraceResult holds a Figs. 4–6 style region-tagged sample
// trace plus its heatmap.
type RegionTraceResult struct {
	Workload string
	Threads  int
	Trace    *trace.Trace
	Heatmap  *analysis.Heatmap
	ByRegion map[string]int
	ByKernel map[string]int
	// Locality is the fraction of time-consecutive samples within
	// 4 KB of each other — high for STREAM's per-thread segments,
	// low for CFD's 32-thread irregular gathers.
	Locality float64
	// Truncated counts samples dropped at the MaxSamples cap (0 when
	// the trace is complete) — surfaced so a clipped figure is never
	// mistaken for a full one.
	Truncated uint64
}

// RegionTrace profiles a workload with SPE sampling and region/kernel
// tags, reproducing the scatter data of Fig. 4 (STREAM, 8 threads),
// Fig. 5 (CFD, 1 thread) and Fig. 6 (CFD, 32 threads, high-res).
func RegionTrace(sc Scale, workload string, threads int, timeBins, addrBins int) (*RegionTraceResult, error) {
	cfg := sc.samplingConfig(1024, 0)
	cfg.Mode = core.ModeFull
	cfg.TrackRSS = true
	cfg.IntervalSec = 1e-4
	p, err := engine.Run(sc.scenario(
		fmt.Sprintf("%s/regions/threads=%d", workload, threads),
		workload, threads, cfg))
	if err != nil {
		return nil, err
	}
	p.Trace.SortByTime()
	return &RegionTraceResult{
		Workload:  p.Workload,
		Threads:   threads,
		Trace:     p.Trace,
		Heatmap:   analysis.BuildHeatmap(p.Trace, timeBins, addrBins),
		ByRegion:  p.Trace.CountByRegion(),
		ByKernel:  p.Trace.CountByKernel(),
		Locality:  analysis.SpatialLocality(p.Trace, 65536),
		Truncated: p.TraceTruncated,
	}, nil
}
