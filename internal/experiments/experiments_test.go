package experiments

import (
	"testing"
)

// Most experiment tests use QuickScale with a single trial to stay
// fast; the full-scale runs live in cmd/nmorepro and bench_test.go.
func tinyScale() Scale {
	s := QuickScale()
	s.Trials = 1
	// STREAM arrays must exceed the 16 MB SLC, and the thread count
	// must saturate the 200 GB/s device, to stay in the paper's
	// bandwidth-bound sampling regime.
	s.StreamElems = 900_000
	s.CFDElems = 60_000
	s.BFSNodes = 40_000
	s.Cores = 48
	s.Threads = 32
	return s
}

func TestTable1MatchesPaperDefaults(t *testing.T) {
	rows := Table1EnvVars()
	want := map[string]string{
		"NMO_ENABLE":     "off",
		"NMO_NAME":       `"nmo"`,
		"NMO_MODE":       "none",
		"NMO_BACKEND":    "auto (by machine ISA)",
		"NMO_ARCH":       "any",
		"NMO_PERIOD":     "0",
		"NMO_TRACK_RSS":  "off",
		"NMO_BUFSIZE":    "1",
		"NMO_AUXBUFSIZE": "1",
		"NMO_TRACE_OUT":  "off (collect in memory)",
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if want[r.Option] != r.Default {
			t.Errorf("%s default = %q, want %q", r.Option, r.Default, want[r.Option])
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2MachineSpec()
	byItem := map[string]string{}
	for _, r := range rows {
		byItem[r.Item] = r.Value
	}
	checks := map[string]string{
		"Cores":              "128 Armv8.2+ cores",
		"Frequency":          "3.0 GHz",
		"Mem. capacity":      "256 GB",
		"Peak bandwidth":     "200 GB/s",
		"L1d":                "64 KB per core",
		"L2":                 "1 MB per core",
		"System Level Cache": "16 MB",
	}
	for item, want := range checks {
		if byItem[item] != want {
			t.Errorf("%s = %q, want %q", item, byItem[item], want)
		}
	}
}

func TestPeriodSweepShapes(t *testing.T) {
	sc := tinyScale()
	res, err := PeriodSweep(sc, "stream", []uint64{1000, 4000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Fig. 7: sample counts scale down linearly with period.
	s0 := float64(res.Points[0].Samples[0])
	s2 := float64(res.Points[2].Samples[0])
	if s0 <= s2 {
		t.Errorf("samples did not decrease with period: %v vs %v", s0, s2)
	}
	// Fig. 8a: accuracy at 16000 beats accuracy at 1000 (collision
	// regime at small periods).
	if res.Points[2].Accuracy.Mean <= res.Points[0].Accuracy.Mean {
		t.Errorf("accuracy not increasing: %v -> %v",
			res.Points[0].Accuracy.Mean, res.Points[2].Accuracy.Mean)
	}
	// Large-period accuracy must be high.
	if res.Points[2].Accuracy.Mean < 0.85 {
		t.Errorf("accuracy at period 16000 = %v, want > 0.85", res.Points[2].Accuracy.Mean)
	}
	if res.MemOps == 0 || res.Baseline == 0 {
		t.Error("missing baseline stats")
	}
}

func TestPeriodSweepBFSCleanerThanStream(t *testing.T) {
	// The paper's Fig. 8 contrast: at small periods BFS samples far
	// more cleanly than STREAM — higher accuracy, far fewer
	// collisions — because its warm working set is cache resident.
	sc := tinyScale()
	bfs, err := PeriodSweep(sc, "bfs", []uint64{1000})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := PeriodSweep(sc, "stream", []uint64{1000})
	if err != nil {
		t.Fatal(err)
	}
	b, s := bfs.Points[0], stream.Points[0]
	if b.Accuracy.Mean <= s.Accuracy.Mean {
		t.Errorf("BFS accuracy %v not above STREAM %v at period 1000",
			b.Accuracy.Mean, s.Accuracy.Mean)
	}
	if b.Accuracy.Mean < 0.6 {
		t.Errorf("BFS accuracy = %v, want reasonably high", b.Accuracy.Mean)
	}
	if b.HWColl.Mean > s.HWColl.Mean/3 {
		t.Errorf("BFS collisions %v not well below STREAM %v",
			b.HWColl.Mean, s.HWColl.Mean)
	}
}

func TestPeriodSweepUnknownWorkload(t *testing.T) {
	if _, err := PeriodSweep(tinyScale(), "nope", []uint64{1000}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFig9AuxSweepShape(t *testing.T) {
	sc := tinyScale()
	res, err := Fig9AuxSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig9AuxPages) {
		t.Fatalf("points = %d", len(res.Points))
	}
	byPages := map[int]AuxPoint{}
	for _, p := range res.Points {
		byPages[p.AuxPages] = p
	}
	// Below the driver minimum (2 pages < 4): everything lost.
	if byPages[2].Accuracy.Mean > 0.1 {
		t.Errorf("2-page accuracy = %v, want ~0 (all samples lost)",
			byPages[2].Accuracy.Mean)
	}
	// Large buffers: high accuracy.
	if byPages[2048].Accuracy.Mean < 0.7 {
		t.Errorf("2048-page accuracy = %v, want high", byPages[2048].Accuracy.Mean)
	}
	// Accuracy improves with size between the working sizes.
	if byPages[2048].Accuracy.Mean < byPages[8].Accuracy.Mean {
		t.Errorf("accuracy not improving with aux size: 8p=%v 2048p=%v",
			byPages[8].Accuracy.Mean, byPages[2048].Accuracy.Mean)
	}
	// Overhead at the unusable 2-page size is the lowest (paper §VII-B).
	if byPages[2].Overhead.Mean > byPages[8].Overhead.Mean {
		t.Errorf("2-page overhead (%v) should not exceed 8-page (%v)",
			byPages[2].Overhead.Mean, byPages[8].Overhead.Mean)
	}
}

func TestFig10ThreadSweepShape(t *testing.T) {
	sc := tinyScale()
	res, err := Fig10ThreadSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Accuracy stays in a healthy band across thread counts.
	for _, p := range res.Points {
		if p.Accuracy.Mean < 0.3 {
			t.Errorf("threads=%d accuracy=%v implausibly low", p.Threads, p.Accuracy.Mean)
		}
	}
	// Thread counts beyond the machine size are skipped.
	for _, p := range res.Points {
		if p.Threads > sc.Cores {
			t.Errorf("point for %d threads on %d cores", p.Threads, sc.Cores)
		}
	}
}

func TestCloudTemporalPageRank(t *testing.T) {
	sc := tinyScale()
	res, err := CloudTemporal(sc, "pagerank")
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2 right: capacity saturates at 123.8 GiB.
	if res.PeakRSSGiB < 120 || res.PeakRSSGiB > 127 {
		t.Errorf("PageRank peak RSS = %.1f GiB, want ~123.8", res.PeakRSSGiB)
	}
	// 48.4% of the 256 GB machine.
	if res.UtilizationPct < 45 || res.UtilizationPct > 52 {
		t.Errorf("utilization = %.1f%%, want ~48.4%%", res.UtilizationPct)
	}
	// Fig. 3 right: ingest spike above the later iteration bandwidth.
	if res.PeakBWGiBps < 60 {
		t.Errorf("PageRank peak bandwidth = %.1f GiB/s, want >60", res.PeakBWGiBps)
	}
	if len(res.Capacity.Points) < 10 || len(res.Bandwidth.Points) < 10 {
		t.Errorf("series too short: %d / %d points",
			len(res.Capacity.Points), len(res.Bandwidth.Points))
	}
	// Capacity is monotonically non-decreasing for PageRank.
	for i := 1; i < len(res.Capacity.Points); i++ {
		if res.Capacity.Points[i].Value < res.Capacity.Points[i-1].Value-0.5 {
			t.Errorf("capacity decreased at %d: %v -> %v", i,
				res.Capacity.Points[i-1].Value, res.Capacity.Points[i].Value)
			break
		}
	}
}

func TestCloudTemporalInMem(t *testing.T) {
	sc := tinyScale()
	res, err := CloudTemporal(sc, "inmem")
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2 left: saturation at 52.3 GiB => 20.4% utilization.
	if res.PeakRSSGiB < 50 || res.PeakRSSGiB > 54 {
		t.Errorf("InMem peak RSS = %.1f GiB, want ~52.3", res.PeakRSSGiB)
	}
	if res.UtilizationPct < 18 || res.UtilizationPct > 23 {
		t.Errorf("utilization = %.1f%%, want ~20.4%%", res.UtilizationPct)
	}
	// Fig. 3 left: periodic bandwidth — the series must alternate
	// between high and low regimes.
	high, low := 0, 0
	for _, p := range res.Bandwidth.Points {
		if p.Value > res.PeakBWGiBps*0.6 {
			high++
		}
		if p.Value < res.PeakBWGiBps*0.3 {
			low++
		}
	}
	if high < 5 || low < 5 {
		t.Errorf("bandwidth not bimodal: %d high, %d low points", high, low)
	}
}

func TestCloudTemporalUnknown(t *testing.T) {
	if _, err := CloudTemporal(tinyScale(), "nope"); err == nil {
		t.Error("unknown cloud workload accepted")
	}
}

func TestRegionTraceStream(t *testing.T) {
	sc := tinyScale()
	res, err := RegionTrace(sc, "stream", 8, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Samples) == 0 {
		t.Fatal("no samples")
	}
	// Fig. 4: samples attribute to a, b, c and the triad kernel.
	for _, r := range []string{"a", "b", "c"} {
		if res.ByRegion[r] == 0 {
			t.Errorf("region %q empty: %v", r, res.ByRegion)
		}
	}
	if res.ByKernel["triad"] == 0 {
		t.Errorf("no triad samples: %v", res.ByKernel)
	}
	if res.Heatmap.Total() == 0 {
		t.Error("empty heatmap")
	}
}

func TestRegionTraceCFDThreadContrast(t *testing.T) {
	sc := tinyScale()
	one, err := RegionTrace(sc, "cfd", 1, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RegionTrace(sc, "cfd", 16, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5 vs Fig. 6: single-threaded CFD traverses continuously
	// (high locality); multi-threaded execution interleaves chunks
	// (lower locality in time-sorted order).
	if one.Locality <= many.Locality {
		t.Errorf("locality 1T=%v should exceed 16T=%v", one.Locality, many.Locality)
	}
	if one.ByRegion["variables"] == 0 || many.ByRegion["variables"] == 0 {
		t.Error("no gather samples attributed to variables")
	}
}

func TestScalesValid(t *testing.T) {
	for _, sc := range []Scale{DefaultScale(), QuickScale()} {
		if sc.Trials <= 0 || sc.StreamElems <= 0 || sc.Cores <= 0 {
			t.Errorf("bad scale %+v", sc)
		}
		if sc.Threads > sc.Cores {
			t.Errorf("threads %d > cores %d", sc.Threads, sc.Cores)
		}
	}
}

func TestBiasStudyJitterHelps(t *testing.T) {
	sc := tinyScale()
	res, err := BiasStudy(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Dither must reduce code-position bias substantially: STREAM's
	// loop body phase-locks an undithered counter.
	if res.BiasJitterOff <= res.BiasJitterOn {
		t.Errorf("bias off=%v not worse than on=%v", res.BiasJitterOff, res.BiasJitterOn)
	}
	if res.BiasJitterOn > 0.25 {
		t.Errorf("dithered bias = %v, want small", res.BiasJitterOn)
	}
	if res.BiasJitterOff < 0.4 {
		t.Errorf("undithered bias = %v, want heavy phase lock", res.BiasJitterOff)
	}
	// The undithered run either locks onto one site (share ~1) or —
	// the extreme case — locks onto a filtered (non-memory) slot and
	// collects nothing (share 0 with bias 1).
	if res.TopPCShareOff > 0 && res.TopPCShareOff < 0.5 {
		t.Errorf("top-PC share undithered = %v, want 0 or ~1", res.TopPCShareOff)
	}
}
