package experiments

import (
	"fmt"

	"nmo/internal/analysis"
	"nmo/internal/core"
	"nmo/internal/engine"
	"nmo/internal/sampler"
)

// CrossBackendPoint is one (backend, period) grid point's aggregated
// results. HWColl and SkidMeanOps are mechanism-exclusive by
// construction (collisions exist only on SPE, shadowing skid only on
// PEBS); Dropped counts buffer-path loss on either backend — kernel
// aux truncation on both, plus PEBS unit-side DS overflow.
type CrossBackendPoint struct {
	Period      uint64
	Accuracy    analysis.Stats
	Overhead    analysis.Stats
	HWColl      analysis.Stats // SPE tracking-slot collisions (0 on PEBS)
	Dropped     analysis.Stats // DS-overflow (PEBS) + kernel-truncated records
	SkidMeanOps analysis.Stats // PEBS mean shadowing skid per sample (0 on SPE)
}

// CrossBackendRun is one backend's half of the sweep.
type CrossBackendRun struct {
	Backend  sampler.Kind
	Machine  string // platform name (pins the ISA)
	Arch     string
	Baseline uint64 // uninstrumented wall cycles on this platform
	Points   []CrossBackendPoint
}

// CrossBackendResult holds the cross-ISA sweep: the same workload and
// periods on both backends, each on its native platform.
type CrossBackendResult struct {
	Workload string
	Threads  int
	Runs     []CrossBackendRun
}

// CrossBackendSweep runs the Sasongko-style SPE-vs-PEBS contrast (the
// paper's ref. [8]) as one sharded scenario batch: for each backend, a
// baseline on the backend's native platform plus Trials profiled runs
// per period, with the backend as a grid axis next to period and
// trial. Aggregation walks results in submission order, so the tables
// are bit-identical at any worker count.
func CrossBackendSweep(sc Scale, workload string, periods []uint64) (*CrossBackendResult, error) {
	kinds := sampler.Kinds()

	var scs []engine.Scenario
	for _, kind := range kinds {
		bsc := sc
		bsc.Backend = kind
		scs = append(scs, bsc.scenario(
			fmt.Sprintf("%s/%s/baseline", kind, workload),
			workload, sc.Threads, core.DefaultConfig()))
		for _, period := range periods {
			for t := 0; t < sc.Trials; t++ {
				scs = append(scs, bsc.scenario(
					fmt.Sprintf("%s/%s/period=%d/trial=%d", kind, workload, period, t),
					workload, sc.Threads, bsc.aggregateConfig(period, t)))
			}
		}
	}
	profs, err := engine.Profiles(sc.runner().RunAll(scs))
	if err != nil {
		return nil, err
	}

	res := &CrossBackendResult{Workload: workload, Threads: sc.Threads}
	next := 0
	for _, kind := range kinds {
		bsc := sc
		bsc.Backend = kind
		spec := bsc.specFor()
		base := profs[next].Wall
		next++
		run := CrossBackendRun{
			Backend: kind, Machine: spec.Name, Arch: spec.Arch,
			Baseline: uint64(base),
		}
		for _, period := range periods {
			pt := CrossBackendPoint{Period: period}
			var acc, ovh, hw, drop, skid []float64
			for t := 0; t < sc.Trials; t++ {
				p := profs[next]
				tr := evalTrial(p, scs[next].Config, base)
				next++
				acc = append(acc, tr.accuracy)
				ovh = append(ovh, tr.overhead)
				hw = append(hw, float64(tr.hwColl))
				drop = append(drop, float64(p.Sampler.Dropped+p.Kernel.TruncatedRecords))
				skid = append(skid, meanSkid(p))
			}
			pt.Accuracy = analysis.Aggregate(acc)
			pt.Overhead = analysis.Aggregate(ovh)
			pt.HWColl = analysis.Aggregate(hw)
			pt.Dropped = analysis.Aggregate(drop)
			pt.SkidMeanOps = analysis.Aggregate(skid)
			run.Points = append(run.Points, pt)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// meanSkid is the average shadowing skid per selected sample (0 on
// SPE, whose records carry the tracked operation's own PC).
func meanSkid(p *core.Profile) float64 {
	if p.Sampler.Selected == 0 {
		return 0
	}
	return float64(p.Sampler.SkidTotal) / float64(p.Sampler.Selected)
}
