package experiments

import (
	"fmt"

	"nmo/internal/analysis"
	"nmo/internal/core"
	"nmo/internal/engine"
)

// Fig7Periods are the sampling periods of the Fig. 7 sample-count
// study (powers of two, 512…131072 as on the paper's x axis).
var Fig7Periods = []uint64{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072}

// Fig8Periods are the periods of the Fig. 8 accuracy/overhead/
// collision study (1000…128000 as on the paper's x axis).
var Fig8Periods = []uint64{1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000}

// PeriodPoint is one period's aggregated results.
type PeriodPoint struct {
	Period     uint64
	Samples    []uint64 // per-trial processed sample counts (Fig. 7)
	Accuracy   analysis.Stats
	Overhead   analysis.Stats
	Collisions analysis.Stats // flagged aux records (the paper's metric)
	HWColl     analysis.Stats // raw tracking-slot collisions
}

// PeriodSweepResult holds one workload's sweep.
type PeriodSweepResult struct {
	Workload string
	Threads  int
	Baseline uint64 // baseline wall cycles
	MemOps   uint64 // perf-stat mem_access count
	Points   []PeriodPoint
}

// PeriodSweep runs the Figs. 7–8 methodology for one workload: a
// perf-stat + timing baseline, then Trials profiled runs per period.
// The whole grid — baseline included — is submitted as one scenario
// batch and shards across Scale.Jobs workers; aggregation walks the
// results in submission order, so the tables are identical at any
// worker count. The sweep consumes only counters, so every scenario
// runs with the aggregate-only sink chain: no sample is ever stored.
func PeriodSweep(sc Scale, workload string, periods []uint64) (*PeriodSweepResult, error) {
	scs := []engine.Scenario{sc.baselineScenario(workload, sc.Threads)}
	for _, period := range periods {
		for t := 0; t < sc.Trials; t++ {
			scs = append(scs, sc.scenario(
				fmt.Sprintf("%s/period=%d/trial=%d", workload, period, t),
				workload, sc.Threads, sc.aggregateConfig(period, t)))
		}
	}
	profs, err := engine.Profiles(sc.runner().RunAll(scs))
	if err != nil {
		return nil, err
	}

	base := profs[0].Wall
	res := &PeriodSweepResult{Workload: workload, Threads: sc.Threads, Baseline: uint64(base)}
	next := 1
	for _, period := range periods {
		pt := PeriodPoint{Period: period}
		var acc, ovh, coll, hw []float64
		for t := 0; t < sc.Trials; t++ {
			// Evaluate against the config the scenario actually ran
			// (same index: results come back in submission order).
			tr := evalTrial(profs[next], scs[next].Config, base)
			next++
			if res.MemOps == 0 {
				res.MemOps = tr.profile.MemAccesses
			}
			pt.Samples = append(pt.Samples, tr.samples)
			acc = append(acc, tr.accuracy)
			ovh = append(ovh, tr.overhead)
			coll = append(coll, float64(tr.collisions))
			hw = append(hw, float64(tr.hwColl))
		}
		pt.Accuracy = analysis.Aggregate(acc)
		pt.Overhead = analysis.Aggregate(ovh)
		pt.Collisions = analysis.Aggregate(coll)
		pt.HWColl = analysis.Aggregate(hw)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Fig9AuxPages is the aux buffer size axis of Fig. 9, in pages.
var Fig9AuxPages = []int{2, 8, 32, 128, 512, 2048}

// AuxPoint is one aux-size configuration's aggregated results.
type AuxPoint struct {
	AuxPages  int
	Accuracy  analysis.Stats
	Overhead  analysis.Stats
	Truncated analysis.Stats
	Wakeups   uint64
}

// AuxSweepResult holds the Fig. 9 sweep (STREAM, 32 threads, ring
// fixed at 8 data pages + metadata = the paper's 9 pages).
type AuxSweepResult struct {
	Period   uint64
	Baseline uint64
	Points   []AuxPoint
}

// fig9Config is the per-trial configuration of the aux sweep
// (aggregate-only: the sweep reads counters, never samples).
func (sc Scale) fig9Config(period uint64, pages, trial int) core.Config {
	cfg := sc.aggregateConfig(period, trial)
	cfg.AuxPages = pages
	cfg.RingPages = 8 // paper: ring buffer fixed to 9 pages
	// Watermark at its half-buffer default: the wakeup (and its dead
	// time) frequency is what the sweep varies.
	cfg.AuxWatermarkBytes = 0
	return cfg
}

// Fig9AuxSweep runs the aux buffer sensitivity study as one sharded
// scenario batch.
func Fig9AuxSweep(sc Scale) (*AuxSweepResult, error) {
	// A period outside the heavy-collision regime, so aux-buffer
	// pressure is the dominant loss mechanism as in the paper's
	// Fig. 9 (their long runs fill any buffer; our scaled runs need a
	// denser-but-clean period).
	const period = 2048
	scs := []engine.Scenario{sc.baselineScenario("stream", sc.Threads)}
	for _, pages := range Fig9AuxPages {
		for t := 0; t < sc.Trials; t++ {
			scs = append(scs, sc.scenario(
				fmt.Sprintf("stream/aux=%d/trial=%d", pages, t),
				"stream", sc.Threads, sc.fig9Config(period, pages, t)))
		}
	}
	profs, err := engine.Profiles(sc.runner().RunAll(scs))
	if err != nil {
		return nil, err
	}

	base := profs[0].Wall
	res := &AuxSweepResult{Period: period, Baseline: uint64(base)}
	next := 1
	for _, pages := range Fig9AuxPages {
		pt := AuxPoint{AuxPages: pages}
		var acc, ovh, trunc []float64
		for t := 0; t < sc.Trials; t++ {
			tr := evalTrial(profs[next], scs[next].Config, base)
			next++
			acc = append(acc, tr.accuracy)
			ovh = append(ovh, tr.overhead)
			trunc = append(trunc, float64(tr.truncated))
			pt.Wakeups = tr.profile.Kernel.Wakeups
		}
		pt.Accuracy = analysis.Aggregate(acc)
		pt.Overhead = analysis.Aggregate(ovh)
		pt.Truncated = analysis.Aggregate(trunc)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Fig10Threads is the thread-count axis of Figs. 10–11.
var Fig10Threads = []int{1, 2, 4, 8, 16, 32, 48, 64, 96, 128}

// ThreadPoint is one thread count's aggregated results.
type ThreadPoint struct {
	Threads    int
	Accuracy   analysis.Stats
	Overhead   analysis.Stats
	Collisions analysis.Stats // flagged (Fig. 11's throttling signal)
	HWColl     analysis.Stats // raw tracking-slot collisions
	Truncated  analysis.Stats
}

// ThreadSweepResult holds the Figs. 10–11 sweep.
type ThreadSweepResult struct {
	Period   uint64
	AuxPages int
	Points   []ThreadPoint
}

// fig10Config is the per-trial configuration of the thread sweep
// (aggregate-only: the sweep reads counters, never samples).
func (sc Scale) fig10Config(period uint64, auxPages, trial int) core.Config {
	cfg := sc.aggregateConfig(period, trial)
	cfg.AuxPages = auxPages
	cfg.RingPages = 8
	// A low watermark keeps wakeups (and hence interrupt + monitor-
	// interference costs) visible as per-core record rates shrink with
	// the thread count.
	cfg.AuxWatermarkBytes = 2048
	return cfg
}

// Fig10ThreadSweep runs the thread scaling study: STREAM with the
// Fig. 9 setup, aux fixed at 16 pages, thread count varied. Every
// thread count contributes its own baseline plus trials to a single
// sharded batch.
func Fig10ThreadSweep(sc Scale) (*ThreadSweepResult, error) {
	const period = 2048
	const auxPages = 16
	var threadCounts []int
	for _, threads := range Fig10Threads {
		if threads <= sc.Cores {
			threadCounts = append(threadCounts, threads)
		}
	}

	var scs []engine.Scenario
	for _, threads := range threadCounts {
		scs = append(scs, sc.baselineScenario("stream", threads))
		for t := 0; t < sc.Trials; t++ {
			scs = append(scs, sc.scenario(
				fmt.Sprintf("stream/threads=%d/trial=%d", threads, t),
				"stream", threads, sc.fig10Config(period, auxPages, t)))
		}
	}
	profs, err := engine.Profiles(sc.runner().RunAll(scs))
	if err != nil {
		return nil, err
	}

	res := &ThreadSweepResult{Period: period, AuxPages: auxPages}
	next := 0
	for _, threads := range threadCounts {
		base := profs[next].Wall
		next++
		pt := ThreadPoint{Threads: threads}
		var acc, ovh, coll, hw, trunc []float64
		for t := 0; t < sc.Trials; t++ {
			tr := evalTrial(profs[next], scs[next].Config, base)
			next++
			acc = append(acc, tr.accuracy)
			ovh = append(ovh, tr.overhead)
			coll = append(coll, float64(tr.collisions))
			hw = append(hw, float64(tr.hwColl))
			trunc = append(trunc, float64(tr.truncated))
		}
		pt.Accuracy = analysis.Aggregate(acc)
		pt.Overhead = analysis.Aggregate(ovh)
		pt.Collisions = analysis.Aggregate(coll)
		pt.HWColl = analysis.Aggregate(hw)
		pt.Truncated = analysis.Aggregate(trunc)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
