package experiments

import (
	"fmt"

	"nmo/internal/core"
	"nmo/internal/machine"
	"nmo/internal/sampler"
)

// EnvVarRow is one row of Table I.
type EnvVarRow struct {
	Option      string
	Description string
	Default     string
}

// Table1EnvVars returns the supported environment variables and their
// defaults — the content of the paper's Table I — checked against the
// live core.DefaultConfig so documentation cannot drift from code.
func Table1EnvVars() []EnvVarRow {
	d := core.DefaultConfig()
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	backend := string(d.Backend)
	if backend == "" {
		backend = "auto (by machine ISA)"
	}
	arch := d.Arch
	if arch == "" {
		arch = "any"
	}
	traceOut := d.TraceOut
	if traceOut == "" {
		traceOut = "off (collect in memory)"
	}
	return []EnvVarRow{
		{"NMO_ENABLE", "Enable profile collection", onOff(d.Enable)},
		{"NMO_NAME", "Base name of output files", fmt.Sprintf("%q", d.Name)},
		{"NMO_MODE", "Profile collection mode", d.Mode.String()},
		{"NMO_BACKEND", "Sampling backend (" + sampler.SupportedList() + ")", backend},
		{"NMO_ARCH", "Assert target architecture", arch},
		{"NMO_PERIOD", "Sampling period", fmt.Sprintf("%d", d.Period)},
		{"NMO_TRACK_RSS", "Capture working set size", onOff(d.TrackRSS)},
		{"NMO_BUFSIZE", "Ring buffer size [MiB]", fmt.Sprintf("%d", d.BufMiB)},
		{"NMO_AUXBUFSIZE", "Aux buffer size [MiB]", fmt.Sprintf("%d", d.AuxMiB)},
		{"NMO_TRACE_OUT", "Stream samples to an indexed v2 trace file", traceOut},
	}
}

// SpecRow is one row of Table II.
type SpecRow struct {
	Item  string
	Value string
}

// Table2MachineSpec returns the hardware description of the simulated
// platform — the paper's Table II — read from the live machine spec.
func Table2MachineSpec() []SpecRow {
	s := machine.AmpereAltraMax()
	peakBW := s.DRAM.PeakBytesPerCycle * float64(s.Freq.Hz)
	return []SpecRow{
		{"CPU", s.Name},
		{"Cores", fmt.Sprintf("%d Armv8.2+ cores", s.Cores)},
		{"Frequency", s.Freq.String()},
		{"Mem. capacity", fmt.Sprintf("%d GB", s.MemCapacityBytes>>30)},
		{"Mem. technology", "DDR4 (simulated queue model)"},
		{"Peak bandwidth", fmt.Sprintf("%.0f GB/s", peakBW/1e9)},
		{"L1d", fmt.Sprintf("%d KB per core", s.L1.SizeBytes>>10)},
		{"L2", fmt.Sprintf("%d MB per core", s.L2.SizeBytes>>20)},
		{"System Level Cache", fmt.Sprintf("%d MB", s.SLC.SizeBytes>>20)},
		{"Page size", fmt.Sprintf("%d KB", s.PageBytes>>10)},
	}
}
