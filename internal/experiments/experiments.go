// Package experiments regenerates every table and figure of the
// paper's evaluation (§§V–VII). Each Fig*/Table* function is a
// self-contained runner used by cmd/nmorepro, bench_test.go, and the
// EXPERIMENTS.md record.
//
// The runs are scaled-down versions of the paper's: the testbed
// executed seconds-to-minutes of real time (billions of operations);
// the simulation runs tens of millions of operations and scales the
// profiler buffers with the run length so the buffer-pressure
// phenomena appear at the same relative positions. Scale collects all
// the knobs; DefaultScale is what EXPERIMENTS.md records, QuickScale
// keeps unit tests and smoke benches fast.
//
// Every sweep submits its full grid (baselines included) as one
// engine.Runner batch, sharding scenarios across Scale.Jobs workers;
// aggregation walks results in submission order, so tables are
// bit-identical at any worker count (DESIGN.md §7).
package experiments

import (
	"fmt"

	"nmo/internal/analysis"
	"nmo/internal/core"
	"nmo/internal/engine"
	"nmo/internal/machine"
	"nmo/internal/perfev"
	"nmo/internal/sampler"
	"nmo/internal/sim"
	"nmo/internal/trace"
	"nmo/internal/workloads"
)

// Scale sets experiment sizes.
type Scale struct {
	// Trials is the number of repetitions per configuration (the
	// paper uses at least five).
	Trials int
	// StreamElems / CFDElems / BFSNodes size the cycle-level
	// workloads for the sensitivity studies.
	StreamElems int
	CFDElems    int
	BFSNodes    int
	BFSDegree   int
	// Iters is the iteration count for STREAM/CFD.
	Iters int
	// Threads is the thread count for the period sweeps (Figs. 7–8).
	Threads int
	// Cores is the machine size.
	Cores int
	// PageBytes is the scaled mmap page size for buffer experiments.
	PageBytes int
	// WatermarkBytes is the aux wakeup watermark for the sweeps.
	WatermarkBytes uint32
	// CloudFreqHz is the scaled clock for the CloudSuite timelines.
	CloudFreqHz uint64
	// CloudBlockBytes is the bulk-transfer granularity of the
	// phase-level workloads.
	CloudBlockBytes uint32
	// Seed is the base seed; trial t derives seed Seed+t.
	Seed uint64
	// Jobs bounds the scenario-execution worker pool (engine.Runner);
	// 0 uses every available CPU, 1 forces serial execution. Results
	// are bit-identical at any value.
	Jobs int
	// Backend selects the sampling backend (and with it the machine
	// ISA: SPE runs on the Altra spec, PEBS on the Ice Lake spec).
	// Empty keeps the paper's default, SPE on ARM.
	Backend sampler.Kind
}

// DefaultScale is the configuration used to produce EXPERIMENTS.md.
func DefaultScale() Scale {
	return Scale{
		Trials:          5,
		StreamElems:     2_000_000,
		CFDElems:        600_000,
		BFSNodes:        400_000,
		BFSDegree:       8,
		Iters:           2,
		Threads:         32,
		Cores:           128,
		PageBytes:       1024,
		WatermarkBytes:  4096,
		CloudFreqHz:     1_000_000,
		CloudBlockBytes: 1 << 20,
		Seed:            42,
	}
}

// QuickScale is a reduced configuration for tests and smoke benches.
func QuickScale() Scale {
	s := DefaultScale()
	s.Trials = 2
	s.StreamElems = 1_000_000
	s.CFDElems = 120_000
	s.BFSNodes = 80_000
	s.Cores = 64
	s.CloudFreqHz = 200_000
	s.CloudBlockBytes = 8 << 20
	return s
}

// specFor builds the machine spec for cycle-level experiments: the
// backend pins the ISA, the ISA pins the platform. Core counts stay
// comparable across backends so the grids line up.
func (sc Scale) specFor() machine.Spec {
	kind := sc.Backend
	if kind == "" {
		kind = sampler.KindSPE
	}
	return machine.SpecForArch(kind.Arch()).WithCores(sc.Cores)
}

// cloudSpec builds the scaled-clock machine for the CloudSuite
// timelines: the cycle budget of 1 simulated second shrinks with the
// clock, and the DRAM service rate is rescaled so the absolute
// bandwidth (200 GB/s peak) is preserved.
func (sc Scale) cloudSpec() machine.Spec {
	s := machine.AmpereAltraMax().WithCores(sc.Cores).WithFreq(sc.CloudFreqHz)
	s.DRAM.PeakBytesPerCycle = 200e9 / float64(sc.CloudFreqHz)
	s.DRAM.BaseLatency = 1 // latency constants are meaningless at phase scale
	s.DRAM.HideCycles = 1
	s.DRAM.TailProb = -1
	// Block transfers are sparse on the scaled clock; a small quantum
	// keeps the round-robin skew on the shared device clock well below
	// the inter-block spacing.
	s.Quantum = 32
	return s
}

// workloadFor constructs a named cycle-level workload with the given
// thread count.
func (sc Scale) workloadFor(name string, threads int) (workloads.Workload, error) {
	switch name {
	case "stream":
		return workloads.NewStream(workloads.StreamConfig{
			Elems: sc.StreamElems, Threads: threads, Iters: sc.Iters,
		}), nil
	case "cfd":
		return workloads.NewCFD(workloads.CFDConfig{
			Elems: sc.CFDElems, Threads: threads, Iters: sc.Iters, Seed: sc.Seed,
		}), nil
	case "bfs":
		// Several traversals from different sources: the first streams
		// the CSR cold, the rest run warm — BFS's clean-sampling
		// behaviour in the paper comes from its cache-resident steady
		// state.
		return workloads.NewBFS(workloads.BFSConfig{
			Nodes: sc.BFSNodes, Degree: sc.BFSDegree, Threads: threads,
			Iters: 5, Seed: sc.Seed,
		}), nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", name)
}

// runner builds the scenario-execution pool for this scale.
func (sc Scale) runner() engine.Runner { return engine.Runner{Jobs: sc.Jobs} }

// scenario builds one cycle-level scenario on the standard spec. The
// workload factory runs on the executing worker, so graph/mesh
// construction parallelizes along with the simulation.
func (sc Scale) scenario(name, workload string, threads int, cfg core.Config) engine.Scenario {
	return engine.Scenario{
		Name:   name,
		Spec:   sc.specFor(),
		Config: cfg,
		Workload: func() (workloads.Workload, error) {
			return sc.workloadFor(workload, threads)
		},
	}
}

// baselineScenario is the uninstrumented timing run (the paper's
// main-function timing baseline), submitted as scenario 0 of a sweep.
func (sc Scale) baselineScenario(workload string, threads int) engine.Scenario {
	return sc.scenario(workload+"/baseline", workload, threads, core.DefaultConfig())
}

// trialResult is one profiled run's evaluation metrics.
type trialResult struct {
	accuracy   float64
	overhead   float64
	samples    uint64
	collisions uint64 // flagged aux records, the paper's Fig. 8c metric
	hwColl     uint64
	truncated  uint64
	profile    *core.Profile
}

// evalTrial evaluates Eq. (1) and overhead for one profiled run
// against the sweep's baseline wall time.
func evalTrial(p *core.Profile, cfg core.Config, baseline sim.Cycles) trialResult {
	return trialResult{
		accuracy:   analysis.Accuracy(p.MemAccesses, p.Sampler.Processed, cfg.EffectivePeriod()),
		overhead:   analysis.Overhead(baseline, p.Wall),
		samples:    p.Sampler.Processed,
		collisions: p.Kernel.FlaggedCollisions,
		hwColl:     p.Sampler.Collisions,
		truncated:  p.Sampler.TruncatedHW + p.Sampler.Dropped + p.Kernel.TruncatedRecords,
		profile:    p,
	}
}

// samplingConfig builds the profiler configuration for sensitivity
// experiments.
func (sc Scale) samplingConfig(period uint64, trial int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = core.ModeSample
	cfg.Backend = sc.Backend
	cfg.Period = period
	cfg.PageBytes = sc.PageBytes
	cfg.AuxWatermarkBytes = sc.WatermarkBytes
	// Aux/ring in scaled pages: defaults mirror NMO's 1 MiB in scaled
	// units (1024 pages of 1 KiB at the default PageBytes).
	cfg.RingPages = 8
	cfg.AuxPages = 1024
	cfg.Seed = sc.Seed + uint64(trial)*7919
	cfg.MaxSamples = 1 << 22
	// Kernel costs scaled with the shortened runs (DESIGN.md §2;
	// EXPERIMENTS.md discusses the scaling).
	cfg.Costs = perfev.Costs{
		IRQBase:      1_200,
		IRQPerRecord: 25,
		DrainBase:    400,
		DrainPerByte: 0.1,
		IRQDeadTime:  20_000,
		MinAuxPages:  4,
	}
	return cfg
}

// AggregateSinks is the aggregate-only sink factory: rolling MD5 plus
// level/region/kernel histograms, no per-sample retention or
// allocation. The sweeps that consume only counters and wall times
// (period, aux, thread, cross-backend grids) run every scenario
// through it, so sweep memory no longer grows with samples × scenarios
// and MaxSamples cannot clip the high-pressure points.
func AggregateSinks(meta trace.Meta) (trace.Sink, error) {
	return trace.NewAggregate(meta), nil
}

// aggregateConfig is samplingConfig with the aggregate-only sink chain
// — the configuration for sweeps that never read Profile.Trace.
func (sc Scale) aggregateConfig(period uint64, trial int) core.Config {
	cfg := sc.samplingConfig(period, trial)
	cfg.SinkFactory = AggregateSinks
	return cfg
}
