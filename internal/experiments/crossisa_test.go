package experiments

import (
	"reflect"
	"testing"

	"nmo/internal/isa"
	"nmo/internal/sampler"
)

// TestCrossBackendSweepContrast pins the acceptance contract of the
// cross-ISA sweep: both backends produce full period curves, and the
// loss mechanisms separate structurally — SPE loses samples to
// tracking-slot collisions and never skids, PEBS shows zero SPE
// collisions with its loss/skew carried by DS-overflow drops and
// shadowing skid.
func TestCrossBackendSweepContrast(t *testing.T) {
	periods := []uint64{500, 4000}
	res, err := CrossBackendSweep(determinismScale(0), "stream", periods)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want one per backend", len(res.Runs))
	}
	byKind := map[sampler.Kind]*CrossBackendRun{}
	for i := range res.Runs {
		run := &res.Runs[i]
		byKind[run.Backend] = run
		if run.Baseline == 0 {
			t.Errorf("%s: no baseline", run.Backend)
		}
		if len(run.Points) != len(periods) {
			t.Errorf("%s: %d points, want %d", run.Backend, len(run.Points), len(periods))
		}
		for _, pt := range run.Points {
			if pt.Accuracy.Mean <= 0 {
				t.Errorf("%s period %d: accuracy %.3f", run.Backend, pt.Period, pt.Accuracy.Mean)
			}
		}
	}

	spe, pebs := byKind[sampler.KindSPE], byKind[sampler.KindPEBS]
	if spe == nil || pebs == nil {
		t.Fatal("missing a backend run")
	}
	if spe.Arch != isa.ArchARM64 || pebs.Arch != isa.ArchX86 {
		t.Errorf("arch pinning: spe on %s, pebs on %s", spe.Arch, pebs.Arch)
	}

	var speColl, speSkid, pebsColl, pebsSkid float64
	for i := range periods {
		speColl += spe.Points[i].HWColl.Mean
		speSkid += spe.Points[i].SkidMeanOps.Mean
		pebsColl += pebs.Points[i].HWColl.Mean
		pebsSkid += pebs.Points[i].SkidMeanOps.Mean
	}
	if speColl == 0 {
		t.Error("SPE sweep shows no tracking-slot collisions at period 500")
	}
	if speSkid != 0 {
		t.Error("SPE sweep reports shadowing skid")
	}
	if pebsColl != 0 {
		t.Errorf("PEBS sweep reports %v SPE collisions", pebsColl)
	}
	if pebsSkid == 0 {
		t.Error("PEBS sweep shows no shadowing skid")
	}
}

// TestCrossBackendSweepIdenticalAcrossJobs extends the determinism
// contract to the backend grid axis.
func TestCrossBackendSweepIdenticalAcrossJobs(t *testing.T) {
	periods := []uint64{2000}
	serial, err := CrossBackendSweep(determinismScale(1), "stream", periods)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CrossBackendSweep(determinismScale(8), "stream", periods)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("cross-backend sweep differs between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
			serial, parallel)
	}
}
