package core

import (
	"fmt"
	"sort"

	"nmo/internal/isa"
	"nmo/internal/machine"
	"nmo/internal/perfev"
	"nmo/internal/sim"
	"nmo/internal/spepkt"
	"nmo/internal/trace"
	"nmo/internal/workloads"
	"nmo/internal/xrand"
)

// SPEAgg aggregates SPE hardware-unit counters plus the decode-side
// outcomes across all cores of a run.
type SPEAgg struct {
	OpsSeen     uint64
	Selected    uint64
	Collisions  uint64 // hardware tracking-slot collisions
	Filtered    uint64
	Emitted     uint64
	TruncatedHW uint64 // records dropped at the aux buffer
	Corrupted   uint64
	// Processed counts records the decoder accepted — the "samples"
	// term of the paper's Eq. (1).
	Processed uint64
	// SkippedInvalid counts records the decoder skipped under the
	// invalid-packet policy (bad 0xb2/0x71 header or zero VA/TS).
	SkippedInvalid uint64
}

// KernelAgg aggregates perf kernel-side accounting across cores.
type KernelAgg struct {
	Wakeups            uint64
	AuxRecords         uint64
	LostRecords        uint64
	TruncatedRecords   uint64
	FlaggedCollisions  uint64 // aux records with the collision flag (§VII)
	FlaggedTruncations uint64
	DrainedBytes       uint64
	IRQCycles          sim.Cycles
}

// Profile is the result of one profiled run.
type Profile struct {
	Workload string
	Threads  int
	// Wall is the run's completion time in cycles; WallSec the same
	// in simulated seconds.
	Wall    sim.Cycles
	WallSec float64
	// Trace holds the attributed memory-access samples (ModeSample+).
	Trace *trace.Trace
	// Capacity (GiB) and Bandwidth (GiB/s) temporal series
	// (ModeCounters+; capacity additionally requires TrackRSS).
	Capacity  trace.Series
	Bandwidth trace.Series
	// MemAccesses is the exact architectural load+store count from
	// the mem_access counting events (Eq. 1's denominator).
	MemAccesses uint64
	// BusAccesses is the DRAM-level access count (bandwidth basis).
	BusAccesses uint64
	// Flops counts floating-point operations (arithmetic intensity).
	Flops  uint64
	MaxRSS uint64
	SPE    SPEAgg
	Kernel KernelAgg
	// MD5 is the trace checksum (NMO hashes its sample trace).
	MD5 [16]byte
}

// ArithmeticIntensity returns flops per DRAM byte (the Roofline
// x-axis NMO derives by augmenting bandwidth counters with FP events).
func (p *Profile) ArithmeticIntensity() float64 {
	bytes := float64(p.BusAccesses) * 64
	if bytes == 0 {
		return 0
	}
	return float64(p.Flops) / bytes
}

// Session profiles workloads on a machine. One session owns the
// machine's probes and callbacks while it runs; create a fresh session
// (or reuse this one) per run.
type Session struct {
	cfg  Config
	mach *machine.Machine
}

// NewSession validates the configuration and binds it to a machine.
func NewSession(cfg Config, m *machine.Machine) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("core: nil machine")
	}
	return &Session{cfg: cfg, mach: m}, nil
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// kernelWindow is one tagged execution phase instance.
type kernelWindow struct {
	startNs uint64
	endNs   uint64
	label   int16
}

// Run executes the workload under the configured profiling mode and
// returns the profile. When cfg.Enable is false the workload still
// runs (transparent pass-through) and only wall time is reported,
// which is exactly what the overhead baseline measures.
func (s *Session) Run(w workloads.Workload) (*Profile, error) {
	threads := w.Threads()
	spec := s.mach.Spec()
	if threads > spec.Cores {
		return nil, fmt.Errorf("core: workload wants %d threads, machine has %d cores",
			threads, spec.Cores)
	}

	prof := &Profile{Workload: w.Name(), Threads: threads}
	regions := w.Regions()
	labels := w.Labels()
	prof.Trace = &trace.Trace{Workload: w.Name(), Kernels: labels}
	for _, r := range regions {
		prof.Trace.Regions = append(prof.Trace.Regions, r.Name)
	}
	sortedRegions := make([]workloads.Region, len(regions))
	copy(sortedRegions, regions)
	sort.Slice(sortedRegions, func(i, j int) bool {
		return sortedRegions[i].Lo < sortedRegions[j].Lo
	})
	regionIndex := make(map[string]int16, len(regions))
	for i, r := range regions {
		regionIndex[r.Name] = int16(i)
	}

	s.mach.ClearProbes()
	s.mach.ClearTicks()
	s.mach.SetMarkerFunc(nil)
	defer func() {
		s.mach.ClearProbes()
		s.mach.ClearTicks()
		s.mach.SetMarkerFunc(nil)
	}()

	if !s.cfg.Enable {
		res, err := s.mach.Run(w.Streams())
		if err != nil {
			return nil, err
		}
		s.fillRunStats(prof, res, spec)
		return prof, nil
	}

	ts := sim.TimescaleFor(spec.Freq, 1, 0)
	kern := perfev.NewKernel(spec.Cores, s.cfg.Costs, ts, xrand.New(s.cfg.Seed))
	if s.cfg.PageBytes > 0 {
		kern.SetPageSize(s.cfg.PageBytes)
	}

	// Counting events: exact mem_access on every active core (the
	// perf-stat denominator), plus bus_access for bandwidth.
	memEvents := make([]*perfev.Event, threads)
	busEvents := make([]*perfev.Event, threads)
	for t := 0; t < threads; t++ {
		var err error
		memEvents[t], err = kern.Open(&perfev.Attr{Type: perfev.TypeRaw, Config: perfev.RawMemAccess}, t)
		if err != nil {
			return nil, err
		}
		busEvents[t], err = kern.Open(&perfev.Attr{Type: perfev.TypeRaw, Config: perfev.RawBusAccess}, t)
		if err != nil {
			return nil, err
		}
		if err := s.mach.AttachProbe(t, memEvents[t]); err != nil {
			return nil, err
		}
		if err := s.mach.AttachProbe(t, busEvents[t]); err != nil {
			return nil, err
		}
	}

	// SPE sampling events.
	var speEvents []*perfev.Event
	if s.cfg.Mode.Sampling() {
		attr := &perfev.Attr{
			Type:         perfev.TypeArmSPE,
			Config:       perfev.SPETSEnable,
			Config2:      uint64(s.cfg.MinLatencyFilter),
			SamplePeriod: s.cfg.EffectivePeriod(),
			AuxWatermark: s.cfg.AuxWatermarkBytes,
		}
		if s.cfg.SampleLoads {
			attr.Config |= perfev.SPELoadFilter
		}
		if s.cfg.SampleStores {
			attr.Config |= perfev.SPEStoreFilter
		}
		if s.cfg.Jitter {
			attr.Config |= perfev.SPEJitter
		}
		for t := 0; t < threads; t++ {
			ev, err := kern.Open(attr, t)
			if err != nil {
				return nil, err
			}
			if err := ev.MmapRing(s.cfg.EffectiveRingPages()); err != nil {
				return nil, err
			}
			if err := ev.MmapAux(s.cfg.EffectiveAuxPages()); err != nil {
				return nil, err
			}
			core := int16(t)
			ev.SetWakeup(func(now, done sim.Cycles, e *perfev.Event, rec perfev.RecordAux, span []byte) {
				st := perfev.DecodeSpan(span, func(r *spepkt.Record) {
					prof.SPE.Processed++
					if len(prof.Trace.Samples) >= s.cfg.MaxSamples {
						return
					}
					prof.Trace.Samples = append(prof.Trace.Samples, trace.Sample{
						TimeNs: ts.ToNanos(r.TS),
						VA:     r.VA,
						PC:     r.PC,
						Lat:    r.TotalLat,
						Core:   core,
						Region: attributeRegion(sortedRegions, regionIndex, r.VA),
						Kernel: -1, // attributed after the run
						Store:  r.IsStore(),
						Level:  levelOfSource(r.Source),
					})
				})
				prof.SPE.SkippedInvalid += uint64(st.Skipped)
			})
			if err := s.mach.AttachProbe(t, ev); err != nil {
				return nil, err
			}
			speEvents = append(speEvents, ev)
		}
	}

	// Annotation markers: tagged execution phases.
	var windows []kernelWindow
	open := make(map[int16]uint64) // label -> startNs
	nsOf := func(c sim.Cycles) uint64 {
		return uint64(spec.Freq.Seconds(c) * 1e9)
	}
	s.mach.SetMarkerFunc(func(coreID int, now sim.Cycles, op *isa.Op) {
		switch op.Marker {
		case isa.MarkerStart:
			open[int16(op.Label)] = nsOf(now)
		case isa.MarkerStop:
			if start, ok := open[int16(op.Label)]; ok {
				windows = append(windows, kernelWindow{
					startNs: start, endNs: nsOf(now), label: int16(op.Label),
				})
				delete(open, int16(op.Label))
			}
		}
	})

	// Temporal collectors.
	var intervalCycles sim.Cycles
	if s.cfg.Mode.Counters() && s.cfg.IntervalSec > 0 {
		intervalCycles = spec.Freq.CyclesOf(s.cfg.IntervalSec)
		if intervalCycles == 0 {
			intervalCycles = spec.Quantum
		}
		var next sim.Cycles
		var prevBytes uint64
		next = intervalCycles
		s.mach.OnTick(func(now sim.Cycles) {
			for now >= next {
				var bus uint64
				for _, ev := range busEvents {
					bus += ev.ReadCount()
				}
				bytes := bus * 64
				gibps := float64(bytes-prevBytes) /
					s.cfg.IntervalSec / float64(1<<30)
				prevBytes = bytes
				tsec := spec.Freq.Seconds(next)
				prof.Bandwidth.Points = append(prof.Bandwidth.Points,
					trace.Point{TimeSec: tsec, Value: gibps})
				if s.cfg.TrackRSS {
					rss, _ := s.mach.RSS()
					prof.Capacity.Points = append(prof.Capacity.Points,
						trace.Point{TimeSec: tsec, Value: float64(rss) / float64(1<<30)})
				}
				next += intervalCycles
			}
		})
	}
	prof.Bandwidth.Name, prof.Bandwidth.Unit = "bandwidth", "GiBps"
	prof.Capacity.Name, prof.Capacity.Unit = "capacity", "GiB"

	res, err := s.mach.Run(w.Streams())
	if err != nil {
		return nil, err
	}

	// Close any window left open at exit (implicit nmo_stop at end).
	for label, start := range open {
		windows = append(windows, kernelWindow{startNs: start, endNs: nsOf(res.Wall), label: label})
	}

	// Capture the monitor's in-run drain work before the final drain:
	// the end-of-program flush happens after exit and is not charged
	// (§VII of the paper).
	inRunDrainCycles := kern.DrainCycles()

	// Drain residual aux data (after program exit; uncharged, §VII).
	for _, ev := range speEvents {
		ev.FinalDrain(s.mach.Now())
	}

	s.attributeKernels(prof.Trace, windows)
	s.fillRunStats(prof, res, spec)

	// Monitor interference: NMO's monitoring process competes with the
	// application for cores. With T app threads on a C-core machine,
	// a fraction T/C of the monitor's drain work preempts application
	// cores and lands on the critical path — negligible on a mostly
	// idle machine, and the reason time overhead creeps up toward full
	// subscription in the paper's Fig. 10.
	if spec.Cores > 0 {
		interference := sim.Cycles(float64(inRunDrainCycles) *
			float64(threads) / float64(spec.Cores))
		prof.Wall += interference
		prof.WallSec = spec.Freq.Seconds(prof.Wall)
	}

	for _, ev := range memEvents {
		prof.MemAccesses += ev.ReadCount()
	}
	for _, ev := range busEvents {
		prof.BusAccesses += ev.ReadCount()
	}
	for _, ev := range speEvents {
		u := ev.SPEStats()
		prof.SPE.OpsSeen += u.OpsSeen
		prof.SPE.Selected += u.Selected
		prof.SPE.Collisions += u.Collisions
		prof.SPE.Filtered += u.Filtered
		prof.SPE.Emitted += u.Emitted
		prof.SPE.TruncatedHW += u.Truncated
		prof.SPE.Corrupted += u.Corrupted
		k := ev.Stats()
		prof.Kernel.Wakeups += k.Wakeups
		prof.Kernel.AuxRecords += k.AuxRecords
		prof.Kernel.LostRecords += k.LostRecords
		prof.Kernel.TruncatedRecords += k.TruncatedRecords
		prof.Kernel.FlaggedCollisions += k.FlaggedCollisions
		prof.Kernel.FlaggedTruncations += k.FlaggedTruncations
		prof.Kernel.DrainedBytes += k.DrainedBytes
		prof.Kernel.IRQCycles += k.IRQCycles
	}
	prof.MD5 = prof.Trace.MD5()
	return prof, nil
}

// fillRunStats copies machine-level results into the profile.
func (s *Session) fillRunStats(p *Profile, res machine.RunResult, spec machine.Spec) {
	p.Wall = res.Wall
	p.WallSec = spec.Freq.Seconds(res.Wall)
	p.Flops = res.TotalFlops
	p.MaxRSS = res.MaxRSS
}

// attributeKernels assigns each sample the tagged phase containing its
// timestamp.
func (s *Session) attributeKernels(tr *trace.Trace, windows []kernelWindow) {
	if len(windows) == 0 || len(tr.Samples) == 0 {
		return
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i].startNs < windows[j].startNs })
	starts := make([]uint64, len(windows))
	for i, w := range windows {
		starts[i] = w.startNs
	}
	for i := range tr.Samples {
		t := tr.Samples[i].TimeNs
		// Last window starting at or before t.
		idx := sort.Search(len(starts), func(k int) bool { return starts[k] > t }) - 1
		for ; idx >= 0; idx-- {
			if windows[idx].endNs > t {
				tr.Samples[i].Kernel = windows[idx].label
				break
			}
			// Windows are non-overlapping per label but may nest
			// across labels; scan a few earlier windows.
			if t-windows[idx].startNs > 1<<40 {
				break
			}
		}
	}
}

// attributeRegion finds the tagged region containing va (-1 if none).
func attributeRegion(sorted []workloads.Region, index map[string]int16, va uint64) int16 {
	i := sort.Search(len(sorted), func(k int) bool { return sorted[k].Lo > va }) - 1
	if i >= 0 && sorted[i].Contains(va) {
		return index[sorted[i].Name]
	}
	return -1
}

// levelOfSource maps an SPE data-source payload back to a hierarchy
// level index.
func levelOfSource(src uint8) uint8 {
	switch src {
	case spepkt.SourceL1:
		return 0
	case spepkt.SourceL2:
		return 1
	case spepkt.SourceSLC:
		return 2
	default:
		return 3
	}
}
