package core

import (
	"fmt"
	"os"
	"sort"

	"nmo/internal/isa"
	"nmo/internal/machine"
	"nmo/internal/perfev"
	"nmo/internal/sampler"
	"nmo/internal/sim"
	"nmo/internal/trace"
	"nmo/internal/workloads"
	"nmo/internal/xrand"
)

// SamplerAgg aggregates sampling-unit counters plus the decode-side
// outcomes across all cores of a run. The counters are backend-
// neutral: mechanism-specific fields stay zero on the backend without
// the mechanism (Collisions on PEBS; Dropped and SkidTotal on SPE).
type SamplerAgg struct {
	OpsSeen     uint64
	Selected    uint64
	Collisions  uint64 // SPE hardware tracking-slot collisions
	Filtered    uint64
	Emitted     uint64
	TruncatedHW uint64 // records dropped at the aux buffer
	Corrupted   uint64
	Dropped     uint64 // PEBS records lost to DS-buffer overflow
	SkidTotal   uint64 // PEBS accumulated shadowing skid (ops)
	// Processed counts records the decoder accepted — the "samples"
	// term of the paper's Eq. (1).
	Processed uint64
	// SkippedInvalid counts records the decoder skipped under the
	// invalid-packet policy (bad 0xb2/0x71 header or zero VA/TS).
	SkippedInvalid uint64
}

// KernelAgg aggregates perf kernel-side accounting across cores.
type KernelAgg struct {
	Wakeups            uint64
	AuxRecords         uint64
	LostRecords        uint64
	TruncatedRecords   uint64
	FlaggedCollisions  uint64 // aux records with the collision flag (§VII)
	FlaggedTruncations uint64
	DrainedBytes       uint64
	IRQCycles          sim.Cycles
}

// Profile is the result of one profiled run.
type Profile struct {
	Workload string
	Threads  int
	// Wall is the run's completion time in cycles; WallSec the same
	// in simulated seconds.
	Wall    sim.Cycles
	WallSec float64
	// Trace holds the attributed memory-access samples (ModeSample+
	// under the default Collect sink; name tables only when a custom
	// SinkFactory or TraceOut stream consumed the samples instead).
	Trace *trace.Trace
	// TraceTruncated counts samples dropped at the MaxSamples cap —
	// the high-pressure runs the cap silently clipped before.
	TraceTruncated uint64
	// Capacity (GiB) and Bandwidth (GiB/s) temporal series
	// (ModeCounters+; capacity additionally requires TrackRSS).
	Capacity  trace.Series
	Bandwidth trace.Series
	// MemAccesses is the exact architectural load+store count from
	// the mem_access counting events (Eq. 1's denominator).
	MemAccesses uint64
	// BusAccesses is the DRAM-level access count (bandwidth basis).
	BusAccesses uint64
	// Flops counts floating-point operations (arithmetic intensity).
	Flops  uint64
	MaxRSS uint64
	// Backend is the sampling backend that produced the trace (empty
	// when sampling was disabled).
	Backend sampler.Kind
	Sampler SamplerAgg
	Kernel  KernelAgg
	// MD5 is the trace checksum (NMO hashes its sample trace).
	MD5 [16]byte
}

// ArithmeticIntensity returns flops per DRAM byte (the Roofline
// x-axis NMO derives by augmenting bandwidth counters with FP events).
func (p *Profile) ArithmeticIntensity() float64 {
	bytes := float64(p.BusAccesses) * 64
	if bytes == 0 {
		return 0
	}
	return float64(p.Flops) / bytes
}

// Session profiles workloads on a machine. One session owns the
// machine's probes and callbacks while it runs; create a fresh session
// (or reuse this one) per run.
//
// A Session holds no mutable run state of its own — everything a run
// touches lives in the per-run pipeline — so sessions over *distinct*
// machines are safe to run concurrently (the engine package exploits
// this by giving every worker its own machine). Two sessions sharing
// one machine must still serialize.
type Session struct {
	cfg  Config
	mach *machine.Machine
}

// NewSession validates the configuration and binds it to a machine.
func NewSession(cfg Config, m *machine.Machine) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("core: nil machine")
	}
	return &Session{cfg: cfg, mach: m}, nil
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// kernelWindow is one tagged execution phase instance.
type kernelWindow struct {
	startNs uint64
	endNs   uint64
	label   int16
}

// run carries one profiling run through the pipeline. Each stage is a
// method; Session.Run composes them. All mutable state is confined
// here so a Session itself stays stateless across runs.
type run struct {
	s       *Session
	w       workloads.Workload
	spec    machine.Spec
	threads int
	prof    *Profile

	// Region attribution tables (prepare).
	sortedRegions []workloads.Region
	regionIndex   map[string]int16

	// Event plumbing (setupEvents; nil when profiling is disabled).
	ts         sim.Timescale
	kern       *perfev.Kernel
	memEvents  []*perfev.Event
	busEvents  []*perfev.Event
	sampEvents []*perfev.Event
	decoder    sampler.Decoder

	// Sample pipeline (setupEvents, sampling modes only): decoded
	// samples flow through the attribution boundary into the sink
	// chain. collect is the default in-memory sink (nil when a custom
	// SinkFactory or TraceOut replaced it); v2/traceFile carry the
	// NMO_TRACE_OUT stream.
	sink      trace.Sink
	boundary  *emitBoundary
	collect   *trace.Collect
	v2        *trace.WriterV2
	traceFile *os.File
	// batch is the decode stage's span arena: decodeSpan gathers each
	// drained span's samples here and hands the boundary one slice, so
	// the steady state allocates nothing per PMI.
	batch []trace.Sample
	// sum16 reads the run's checksum from whichever streaming sink
	// carries one (chosen once, in setupSinks); nil on the Collect
	// path, which hashes the stored trace at aggregate time instead.
	sum16 func() [16]byte

	// Live tagged-phase state (setupMarkers/execute): label -> startNs
	// of the currently open window; closed windows live in boundary.
	open map[int16]uint64

	// Temporal collectors (setupTemporal; nil when disabled).
	bwSeries  *trace.SeriesBuilder
	capSeries *trace.SeriesBuilder

	// Execution results (execute/drain).
	res        machine.RunResult
	inRunDrain sim.Cycles
}

// Run executes the workload under the configured profiling mode and
// returns the profile. When cfg.Enable is false the workload still
// runs (transparent pass-through) and only wall time is reported,
// which is exactly what the overhead baseline measures.
//
// The run is a pipeline of stages; disabled collectors turn their
// stages into no-ops rather than branching the control flow:
//
//	prepare -> setupEvents -> setupMarkers -> setupTemporal
//	        -> execute -> drain -> flush -> aggregate
//
// Samples stream: the decode stage attributes each sample at emit
// time and pushes it through the configured sink chain (Collect by
// default; aggregate-only or v2-file sinks under SinkFactory /
// TraceOut), so memory is bounded by what the sinks retain. flush
// releases the attribution boundary's reorder buffer and seals the
// sinks.
func (s *Session) Run(w workloads.Workload) (*Profile, error) {
	r, err := s.prepare(w)
	if err != nil {
		return nil, err
	}
	defer r.teardown()
	for _, stage := range []func() error{
		r.setupEvents,   // counting + sampling probes, sink chain
		r.setupMarkers,  // tagged-phase annotation windows
		r.setupTemporal, // bandwidth/capacity collectors
		r.execute,       // run the op streams on the machine
		r.drain,         // post-exit aux flush + decode
		r.flush,         // release the reorder buffer, seal sinks
		r.aggregate,     // stats, interference, checksum
	} {
		if err := stage(); err != nil {
			return nil, err
		}
	}
	return r.prof, nil
}

// prepare validates the workload against the machine, builds the
// profile skeleton and region-attribution tables, and claims the
// machine's probe/callback slots.
func (s *Session) prepare(w workloads.Workload) (*run, error) {
	threads := w.Threads()
	spec := s.mach.Spec()
	if threads > spec.Cores {
		return nil, fmt.Errorf("core: workload wants %d threads, machine has %d cores",
			threads, spec.Cores)
	}
	if s.cfg.Arch != "" && s.cfg.Arch != spec.Arch {
		return nil, fmt.Errorf("core: NMO_ARCH %q does not match the machine (%s, %s)",
			s.cfg.Arch, spec.Name, spec.Arch)
	}

	prof := &Profile{Workload: w.Name(), Threads: threads}
	regions := w.Regions()
	prof.Trace = &trace.Trace{Workload: w.Name(), Kernels: w.Labels()}
	for _, reg := range regions {
		prof.Trace.Regions = append(prof.Trace.Regions, reg.Name)
	}
	sortedRegions := make([]workloads.Region, len(regions))
	copy(sortedRegions, regions)
	sort.Slice(sortedRegions, func(i, j int) bool {
		return sortedRegions[i].Lo < sortedRegions[j].Lo
	})
	regionIndex := make(map[string]int16, len(regions))
	for i, reg := range regions {
		regionIndex[reg.Name] = int16(i)
	}

	s.mach.ClearProbes()
	s.mach.ClearTicks()
	s.mach.SetMarkerFunc(nil)

	return &run{
		s: s, w: w, spec: spec, threads: threads, prof: prof,
		sortedRegions: sortedRegions, regionIndex: regionIndex,
		open: make(map[int16]uint64),
	}, nil
}

// teardown releases the machine's probe/callback slots and the trace
// output file (a failed run leaves a footer-less, unreadable file —
// the error already told the caller not to trust it).
func (r *run) teardown() {
	r.s.mach.ClearProbes()
	r.s.mach.ClearTicks()
	r.s.mach.SetMarkerFunc(nil)
	if r.traceFile != nil {
		r.traceFile.Close()
		r.traceFile = nil
	}
}

// setupEvents opens the counting events (exact memory-access counts
// on every active core — the perf-stat denominator — plus a bus/LLC
// counter for bandwidth, using each ISA's event codes) and, in
// sampling modes, the per-core sampling events of the configured
// backend with their ring/aux mappings and decode callbacks.
func (r *run) setupEvents() error {
	cfg := &r.s.cfg
	if !cfg.Enable {
		return nil
	}

	r.ts = sim.TimescaleFor(r.spec.Freq, 1, 0)
	r.kern = perfev.NewKernel(r.spec.Cores, cfg.Costs, r.ts, xrand.New(cfg.Seed))
	if pb := r.pageBytes(); pb > 0 {
		r.kern.SetPageSize(pb)
	}

	memCode, busCode := perfev.RawMemAccess, perfev.RawBusAccess
	if r.spec.Arch == isa.ArchX86 {
		memCode, busCode = perfev.RawMemInstRetiredAny, perfev.RawLLCMiss
	}
	r.memEvents = make([]*perfev.Event, r.threads)
	r.busEvents = make([]*perfev.Event, r.threads)
	for t := 0; t < r.threads; t++ {
		var err error
		r.memEvents[t], err = r.kern.Open(&perfev.Attr{Type: perfev.TypeRaw, Config: memCode}, t)
		if err != nil {
			return err
		}
		r.busEvents[t], err = r.kern.Open(&perfev.Attr{Type: perfev.TypeRaw, Config: busCode}, t)
		if err != nil {
			return err
		}
		if err := r.s.mach.AttachProbe(t, r.memEvents[t]); err != nil {
			return err
		}
		if err := r.s.mach.AttachProbe(t, r.busEvents[t]); err != nil {
			return err
		}
	}

	if !cfg.Mode.Sampling() {
		return nil
	}
	kind := cfg.EffectiveBackend(r.spec.Arch)
	if kind.Arch() != r.spec.Arch {
		return fmt.Errorf("core: backend %s requires %s hardware, machine %q is %s",
			kind, kind.Arch(), r.spec.Name, r.spec.Arch)
	}
	if kind == sampler.KindPEBS && cfg.MinLatencyFilter > 0 {
		// SPE's PMSLATFR has no PEBS equivalent in this model; honoring
		// the same config on both backends would silently compare a
		// latency-filtered SPE population against an unfiltered PEBS
		// one, so the combination is rejected instead of ignored.
		return fmt.Errorf("core: MinLatencyFilter is SPE-only (no PEBS latency filter)")
	}
	backend, err := sampler.For(kind)
	if err != nil {
		return fmt.Errorf("core: %v", err)
	}
	r.decoder = backend.NewDecoder()
	r.prof.Backend = kind
	if err := r.setupSinks(); err != nil {
		return err
	}
	attr := r.samplingAttr(kind)
	for t := 0; t < r.threads; t++ {
		ev, err := r.kern.Open(attr, t)
		if err != nil {
			return err
		}
		if err := ev.MmapRing(cfg.EffectiveRingPages(r.pageBytes())); err != nil {
			return err
		}
		if err := ev.MmapAux(cfg.EffectiveAuxPages(r.pageBytes())); err != nil {
			return err
		}
		core := int16(t)
		ev.SetWakeup(func(now, done sim.Cycles, e *perfev.Event, rec perfev.RecordAux, span []byte) {
			r.decodeSpan(core, now, span)
		})
		if err := r.s.mach.AttachProbe(t, ev); err != nil {
			return err
		}
		r.sampEvents = append(r.sampEvents, ev)
	}
	return nil
}

// setupSinks builds the run's sample-sink chain and the attribution
// boundary in front of it. The default chain is the Collect compat
// sink (materialize into Profile.Trace under the MaxSamples cap); a
// SinkFactory replaces it, and TraceOut appends a streaming v2 file
// writer — either of which makes the run's sample memory independent
// of the sample count.
func (r *run) setupSinks() error {
	cfg := &r.s.cfg
	meta := r.prof.Trace.Meta()
	var sinks []trace.Sink
	var custom trace.Sink
	if cfg.SinkFactory != nil {
		s, err := cfg.SinkFactory(meta)
		if err != nil {
			return fmt.Errorf("core: sink factory: %w", err)
		}
		custom = s
		sinks = append(sinks, s)
	}
	if cfg.TraceOut != "" {
		f, err := os.Create(cfg.TraceOut)
		if err != nil {
			return fmt.Errorf("core: NMO_TRACE_OUT: %w", err)
		}
		r.traceFile = f
		newWriter := trace.NewWriterV2
		if cfg.TraceCompress {
			newWriter = trace.NewWriterV21
		}
		w, err := newWriter(f, meta, cfg.TraceBlockSamples)
		if err != nil {
			return err
		}
		r.v2 = w
		sinks = append(sinks, w)
	}
	if len(sinks) == 0 {
		r.collect = trace.NewCollect(r.prof.Trace, cfg.MaxSamples)
		sinks = append(sinks, r.collect)
	}

	// Choose the checksum source once, here: the v2 writer's rolling
	// hash, a Sum16-capable custom sink, or — when no streaming sink
	// can produce one (e.g. a factory returning a bare Tee) — a
	// rolling hash that rides along, so Profile.MD5 never silently
	// stays zero. The Collect path leaves sum16 nil and hashes the
	// stored (possibly capped) trace at aggregate time instead.
	if r.collect == nil {
		switch {
		case r.v2 != nil:
			r.sum16 = r.v2.Sum16
		default:
			if h, ok := custom.(interface{ Sum16() [16]byte }); ok {
				r.sum16 = h.Sum16
			} else {
				hash := trace.NewHash()
				sinks = append(sinks, hash)
				r.sum16 = hash.Sum16
			}
		}
	}
	if len(sinks) == 1 {
		r.sink = sinks[0]
	} else {
		r.sink = trace.NewTee(sinks...)
	}
	r.boundary = newEmitBoundary(r.sink, r.open)
	return nil
}

// pageBytes resolves the perf mmap page size: an explicit config
// override wins, else the machine's native page size (64 KB on the
// Altra, 4 KB on the Ice Lake part).
func (r *run) pageBytes() int {
	if r.s.cfg.PageBytes > 0 {
		return r.s.cfg.PageBytes
	}
	return r.spec.PageBytes
}

// samplingAttr builds the perf attribute for the chosen backend: the
// arm_spe_pmu config-bit layout on arm64, a precise MEM_INST_RETIRED
// raw event on x86_64.
func (r *run) samplingAttr(kind sampler.Kind) *perfev.Attr {
	cfg := &r.s.cfg
	if kind == sampler.KindPEBS {
		code := perfev.RawMemInstRetiredAny
		switch {
		case cfg.SampleLoads && !cfg.SampleStores:
			code = perfev.RawMemInstRetiredAllLoads
		case cfg.SampleStores && !cfg.SampleLoads:
			code = perfev.RawMemInstRetiredAllStores
		}
		wm := cfg.AuxWatermarkBytes
		if wm == 0 {
			// SPE's kernel-side default is half the aux buffer; the
			// PMI threshold must follow the same convention so wakeup
			// cadence stays comparable across backends (the DS buffer
			// grows to fit — sampler/pebs.go).
			wm = uint32(cfg.EffectiveAuxPages(r.pageBytes()) * r.pageBytes() / 2)
		}
		return &perfev.Attr{
			Type:         perfev.TypeRaw,
			Config:       code,
			SamplePeriod: cfg.EffectivePeriod(),
			AuxWatermark: wm,
			// precise_ip 1: PEBS with the hardware's inherent
			// shadowing skid — the mechanism the cross-backend sweep
			// contrasts against SPE collisions.
			Precise: 1,
		}
	}
	attr := &perfev.Attr{
		Type:         perfev.TypeArmSPE,
		Config:       perfev.SPETSEnable,
		Config2:      uint64(cfg.MinLatencyFilter),
		SamplePeriod: cfg.EffectivePeriod(),
		AuxWatermark: cfg.AuxWatermarkBytes,
	}
	if cfg.SampleLoads {
		attr.Config |= perfev.SPELoadFilter
	}
	if cfg.SampleStores {
		attr.Config |= perfev.SPEStoreFilter
	}
	if cfg.Jitter {
		attr.Config |= perfev.SPEJitter
	}
	return attr
}

// decodeSpan is the decode stage's hot path: it parses one drained aux
// span with the backend's decoder, gathers the attributed samples into
// the run's reusable span arena, and hands the boundary the whole span
// as one batch. It runs inside kernel wakeups during execute and again
// from drain for the residual flush. The decoder already normalized
// the record (PEBS IP skid is baked into PC, the data source is a
// hierarchy level), so attribution is backend-free; now is the service
// time — constant across the span, which is what makes the batched
// hand-off emit the exact per-sample sequence — and upper-bounds every
// drained sample's completion timestamp.
func (r *run) decodeSpan(core int16, now sim.Cycles, span []byte) {
	nowNs := r.nsOf(now)
	batch := r.batch[:0]
	st := r.decoder.DecodeSpan(span, func(s *sampler.Sample) {
		r.prof.Sampler.Processed++
		batch = append(batch, trace.Sample{
			TimeNs: r.ts.ToNanos(s.TS),
			VA:     s.VA,
			PC:     s.PC,
			Lat:    s.Lat,
			Core:   core,
			Region: attributeRegion(r.sortedRegions, r.regionIndex, s.VA),
			Kernel: -1, // assigned at the boundary
			Store:  s.Store,
			Level:  s.Level,
		})
	})
	if len(batch) > 0 {
		r.boundary.pushBatch(batch, nowNs)
	}
	r.batch = batch[:0] // keep the grown arena for the next span
	r.prof.Sampler.SkippedInvalid += uint64(st.Skipped)
}

// setupMarkers registers the annotation receiver that turns
// nmo_start/nmo_stop pseudo-ops into tagged execution-phase windows.
func (r *run) setupMarkers() error {
	if !r.s.cfg.Enable {
		return nil
	}
	r.s.mach.SetMarkerFunc(func(coreID int, now sim.Cycles, op *isa.Op) {
		switch op.Marker {
		case isa.MarkerStart:
			r.open[int16(op.Label)] = r.nsOf(now)
		case isa.MarkerStop:
			if start, ok := r.open[int16(op.Label)]; ok {
				if r.boundary != nil {
					r.boundary.windowClosed(kernelWindow{
						startNs: start, endNs: r.nsOf(now), label: int16(op.Label),
					})
				}
				delete(r.open, int16(op.Label))
			}
		}
	})
	return nil
}

// nsOf converts machine cycles to the trace's nanosecond timebase.
func (r *run) nsOf(c sim.Cycles) uint64 {
	return uint64(r.spec.Freq.Seconds(c) * 1e9)
}

// setupTemporal registers the per-quantum tick that subsamples the
// bandwidth and capacity series at the configured interval, feeding
// the online series builders (max/mean maintained incrementally).
func (r *run) setupTemporal() error {
	cfg := &r.s.cfg
	if !cfg.Enable {
		return nil
	}
	r.bwSeries = trace.NewSeriesBuilder("bandwidth", "GiBps")
	r.capSeries = trace.NewSeriesBuilder("capacity", "GiB")
	if cfg.Mode.Counters() && cfg.IntervalSec > 0 {
		intervalCycles := r.spec.Freq.CyclesOf(cfg.IntervalSec)
		if intervalCycles == 0 {
			intervalCycles = r.spec.Quantum
		}
		next := intervalCycles
		var prevBytes uint64
		r.s.mach.OnTick(func(now sim.Cycles) {
			for now >= next {
				var bus uint64
				for _, ev := range r.busEvents {
					bus += ev.ReadCount()
				}
				bytes := bus * 64
				gibps := float64(bytes-prevBytes) /
					cfg.IntervalSec / float64(1<<30)
				prevBytes = bytes
				tsec := r.spec.Freq.Seconds(next)
				r.bwSeries.Add(tsec, gibps)
				if cfg.TrackRSS {
					rss, _ := r.s.mach.RSS()
					r.capSeries.Add(tsec, float64(rss)/float64(1<<30))
				}
				next += intervalCycles
			}
		})
	}
	return nil
}

// execute runs the workload's op streams on the machine and closes any
// phase window left open at exit (implicit nmo_stop at program end).
func (r *run) execute() error {
	res, err := r.s.mach.Run(r.w.Streams())
	if err != nil {
		return err
	}
	r.res = res
	// Close leftovers (implicit nmo_stop at program end) into the
	// boundary's sorted window set, and clear the open map so the
	// final flush attributes against closed windows only — a sample
	// completing exactly at the wall must not match an "open" window
	// the wall already ended.
	for label, start := range r.open {
		if r.boundary != nil {
			r.boundary.windowClosed(kernelWindow{
				startNs: start, endNs: r.nsOf(res.Wall), label: label,
			})
		}
		delete(r.open, label)
	}
	return nil
}

// drain captures the monitor's in-run drain work, then flushes the
// residual aux data. The end-of-program flush happens after exit and
// is not charged (§VII of the paper) — which is why the in-run cycles
// are snapshotted first.
func (r *run) drain() error {
	if r.kern == nil {
		return nil
	}
	r.inRunDrain = r.kern.DrainCycles()
	for _, ev := range r.sampEvents {
		ev.FinalDrain(r.s.mach.Now())
	}
	return nil
}

// flush releases the attribution boundary's reorder buffer (every
// window has closed by now, so attribution is decidable for any
// timestamp) and seals the sink chain — the v2 writer's footer index
// is written here.
func (r *run) flush() error {
	if r.boundary == nil {
		return nil
	}
	if err := r.boundary.finish(); err != nil {
		return fmt.Errorf("core: sample sink: %w", err)
	}
	if err := r.sink.Close(); err != nil {
		return fmt.Errorf("core: sample sink close: %w", err)
	}
	return nil
}

// aggregate folds machine results, event counters and SPE/kernel stats
// into the profile, charges monitor interference, and seals the trace
// with its checksum.
func (r *run) aggregate() error {
	prof, spec := r.prof, r.spec
	prof.Wall = r.res.Wall
	prof.WallSec = spec.Freq.Seconds(r.res.Wall)
	prof.Flops = r.res.TotalFlops
	prof.MaxRSS = r.res.MaxRSS
	if !r.s.cfg.Enable {
		return nil
	}
	prof.Bandwidth = r.bwSeries.Series()
	prof.Capacity = r.capSeries.Series()

	// Monitor interference: NMO's monitoring process competes with the
	// application for cores. With T app threads on a C-core machine,
	// a fraction T/C of the monitor's drain work preempts application
	// cores and lands on the critical path — negligible on a mostly
	// idle machine, and the reason time overhead creeps up toward full
	// subscription in the paper's Fig. 10.
	if spec.Cores > 0 {
		interference := sim.Cycles(float64(r.inRunDrain) *
			float64(r.threads) / float64(spec.Cores))
		prof.Wall += interference
		prof.WallSec = spec.Freq.Seconds(prof.Wall)
	}

	for _, ev := range r.memEvents {
		prof.MemAccesses += ev.ReadCount()
	}
	for _, ev := range r.busEvents {
		prof.BusAccesses += ev.ReadCount()
	}
	for _, ev := range r.sampEvents {
		u := ev.UnitStats()
		prof.Sampler.OpsSeen += u.OpsSeen
		prof.Sampler.Selected += u.Selected
		prof.Sampler.Collisions += u.Collisions
		prof.Sampler.Filtered += u.Filtered
		prof.Sampler.Emitted += u.Emitted
		prof.Sampler.TruncatedHW += u.Truncated
		prof.Sampler.Corrupted += u.Corrupted
		prof.Sampler.Dropped += u.Dropped
		prof.Sampler.SkidTotal += u.SkidTotal
		k := ev.Stats()
		prof.Kernel.Wakeups += k.Wakeups
		prof.Kernel.AuxRecords += k.AuxRecords
		prof.Kernel.LostRecords += k.LostRecords
		prof.Kernel.TruncatedRecords += k.TruncatedRecords
		prof.Kernel.FlaggedCollisions += k.FlaggedCollisions
		prof.Kernel.FlaggedTruncations += k.FlaggedTruncations
		prof.Kernel.DrainedBytes += k.DrainedBytes
		prof.Kernel.IRQCycles += k.IRQCycles
	}

	// Seal the trace checksum. The Collect path hashes the stored
	// (possibly capped) trace, exactly as the batch pipeline did; the
	// streaming paths report the rolling hash of the full emitted
	// stream — equal to a Collect hash whenever the cap did not bite.
	if r.collect != nil {
		prof.MD5 = prof.Trace.MD5()
		prof.TraceTruncated = r.collect.Truncated
	} else if r.sum16 != nil {
		prof.MD5 = r.sum16()
	}
	return nil
}

// attributeRegion finds the tagged region containing va (-1 if none).
func attributeRegion(sorted []workloads.Region, index map[string]int16, va uint64) int16 {
	i := sort.Search(len(sorted), func(k int) bool { return sorted[k].Lo > va }) - 1
	if i >= 0 && sorted[i].Contains(va) {
		return index[sorted[i].Name]
	}
	return -1
}
