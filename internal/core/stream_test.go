package core

import (
	"os"
	"path/filepath"
	"testing"

	"nmo/internal/trace"
	"nmo/internal/workloads"
)

// streamWorkload is the shared workload of the streaming tests: big
// enough to produce several wakeups and tagged-phase windows.
func streamWorkload() workloads.Workload {
	return workloads.NewStream(workloads.StreamConfig{Elems: 50_000, Threads: 4, Iters: 4})
}

func runWith(t *testing.T, cfg Config) *Profile {
	t.Helper()
	s, err := NewSession(cfg, testMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Run(streamWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAggregateSinkMatchesCollect is the aggregate-only contract: a
// run whose sink chain retains nothing must produce the same rolling
// MD5 and histogram counts as the Collect compat run, with zero
// sample-slice growth.
func TestAggregateSinkMatchesCollect(t *testing.T) {
	collected := runWith(t, sampleConfig(500))

	var agg *trace.Aggregate
	cfg := sampleConfig(500)
	cfg.SinkFactory = func(meta trace.Meta) (trace.Sink, error) {
		agg = trace.NewAggregate(meta)
		return agg, nil
	}
	streamed := runWith(t, cfg)

	if len(streamed.Trace.Samples) != 0 {
		t.Fatalf("aggregate-only run stored %d samples", len(streamed.Trace.Samples))
	}
	if streamed.MD5 != collected.MD5 {
		t.Error("aggregate-only MD5 differs from the Collect run")
	}
	if streamed.Sampler != collected.Sampler || streamed.Wall != collected.Wall {
		t.Error("aggregate-only run diverged in counters or wall time")
	}
	wantR := collected.Trace.CountByRegion()
	gotR := agg.Regions.Counts()
	for k, v := range wantR {
		if gotR[k] != v {
			t.Errorf("region %q: %d, want %d", k, gotR[k], v)
		}
	}
	wantK := collected.Trace.CountByKernel()
	gotK := agg.Kernels.Counts()
	for k, v := range wantK {
		if gotK[k] != v {
			t.Errorf("kernel %q: %d, want %d", k, gotK[k], v)
		}
	}
}

// TestTraceOutStreamsV2 checks the bounded-memory file path: the run
// must leave Profile.Trace empty, and the v2 file must replay to the
// exact trace (order included) a Collect run materializes.
func TestTraceOutStreamsV2(t *testing.T) {
	collected := runWith(t, sampleConfig(500))

	cfg := sampleConfig(500)
	cfg.TraceOut = filepath.Join(t.TempDir(), "out.nmo2")
	cfg.TraceBlockSamples = 64 // several blocks
	streamed := runWith(t, cfg)

	if len(streamed.Trace.Samples) != 0 {
		t.Fatalf("TraceOut run stored %d samples in memory", len(streamed.Trace.Samples))
	}
	if streamed.MD5 != collected.MD5 {
		t.Error("streamed MD5 differs from the Collect run")
	}

	f, err := os.Open(cfg.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := trace.OpenV2(f)
	if err != nil {
		t.Fatal(err)
	}
	if rd.MD5() != collected.MD5 {
		t.Error("v2 footer MD5 differs from the Collect run")
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(collected.Trace.Samples) {
		t.Fatalf("file has %d samples, Collect run %d",
			len(got.Samples), len(collected.Trace.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != collected.Trace.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v",
				i, got.Samples[i], collected.Trace.Samples[i])
		}
	}
	if got.Workload != collected.Trace.Workload {
		t.Errorf("workload %q", got.Workload)
	}
}

// TestSinkFactoryComposesWithTraceOut: both sinks receive the stream.
func TestSinkFactoryComposesWithTraceOut(t *testing.T) {
	var h *trace.Hash
	cfg := sampleConfig(500)
	cfg.TraceOut = filepath.Join(t.TempDir(), "both.nmo2")
	cfg.SinkFactory = func(trace.Meta) (trace.Sink, error) {
		h = trace.NewHash()
		return h, nil
	}
	p := runWith(t, cfg)
	if h.Count() == 0 {
		t.Fatal("factory sink saw no samples")
	}
	if h.Sum16() != p.MD5 {
		t.Error("factory hash differs from profile MD5")
	}
	f, err := os.Open(cfg.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := trace.OpenV2(f)
	if err != nil {
		t.Fatal(err)
	}
	if rd.MD5() != h.Sum16() {
		t.Error("v2 file and factory sink hash different streams")
	}
}

// TestCustomSinkWithoutSum16GetsFallbackHash: a factory chain that
// cannot produce a checksum itself (a bare Tee) must not leave
// Profile.MD5 zero — the boundary rides a rolling hash along.
func TestCustomSinkWithoutSum16GetsFallbackHash(t *testing.T) {
	collected := runWith(t, sampleConfig(500))

	cfg := sampleConfig(500)
	cfg.SinkFactory = func(meta trace.Meta) (trace.Sink, error) {
		return trace.NewTee(trace.NewAggregate(meta)), nil
	}
	streamed := runWith(t, cfg)
	if streamed.MD5 == ([16]byte{}) {
		t.Fatal("Profile.MD5 left zero for a Sum16-less sink chain")
	}
	if streamed.MD5 != collected.MD5 {
		t.Error("fallback hash differs from the Collect run")
	}
}

// TestTraceOutRequiresSampling: asking for a trace file in a mode that
// produces no samples is a config error, not a silent no-op.
func TestTraceOutRequiresSampling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enable = true
	cfg.Mode = ModeCounters
	cfg.TraceOut = "x.nmo2"
	if err := cfg.Validate(); err == nil {
		t.Fatal("TraceOut accepted in counters mode")
	}
	// Disabled profiling ignores all collection settings, TraceOut
	// included (the NMO_ENABLE master-switch convention).
	cfg.Enable = false
	if err := cfg.Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
}

// TestMaxSamplesTruncationSurfaced: the cap is counted, not silent.
func TestMaxSamplesTruncationSurfaced(t *testing.T) {
	cfg := sampleConfig(200)
	cfg.MaxSamples = 100
	s, _ := NewSession(cfg, testMachine(1))
	w := workloads.NewStream(workloads.StreamConfig{Elems: 100_000, Threads: 1, Iters: 2})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Trace.Samples) != 100 {
		t.Fatalf("stored %d, cap 100", len(p.Trace.Samples))
	}
	if want := p.Sampler.Processed - 100; p.TraceTruncated != want {
		t.Errorf("TraceTruncated = %d, want %d", p.TraceTruncated, want)
	}
}

// TestTraceOutUncapped: the streamed file keeps every processed sample
// even when MaxSamples would have clipped an in-memory trace — the
// exact high-pressure case the cap used to silently truncate.
func TestTraceOutUncapped(t *testing.T) {
	cfg := sampleConfig(200)
	cfg.MaxSamples = 100
	cfg.TraceOut = filepath.Join(t.TempDir(), "uncapped.nmo2")
	s, _ := NewSession(cfg, testMachine(1))
	w := workloads.NewStream(workloads.StreamConfig{Elems: 100_000, Threads: 1, Iters: 2})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sampler.Processed <= 100 {
		t.Fatalf("test needs >100 processed samples, got %d", p.Sampler.Processed)
	}
	f, err := os.Open(cfg.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := trace.OpenV2(f)
	if err != nil {
		t.Fatal(err)
	}
	if rd.TotalSamples() != p.Sampler.Processed {
		t.Errorf("file has %d samples, processed %d", rd.TotalSamples(), p.Sampler.Processed)
	}
	if p.TraceTruncated != 0 {
		t.Errorf("streamed run reports truncation: %d", p.TraceTruncated)
	}
}

// TestTraceOutBadPathFails: an unwritable TraceOut is a run error, not
// a silent fallback to collection.
func TestTraceOutBadPathFails(t *testing.T) {
	cfg := sampleConfig(500)
	cfg.TraceOut = filepath.Join(t.TempDir(), "missing-dir", "x.nmo2")
	s, err := NewSession(cfg, testMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(streamWorkload()); err == nil {
		t.Fatal("unwritable TraceOut did not fail the run")
	}
}
