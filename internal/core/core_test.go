package core

import (
	"testing"

	"nmo/internal/machine"
	"nmo/internal/workloads"
)

func envOf(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

func TestFromEnvDefaults(t *testing.T) {
	c, err := FromEnv(envOf(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Table I defaults.
	if c.Enable {
		t.Error("NMO_ENABLE default must be off")
	}
	if c.Name != "nmo" {
		t.Errorf("name = %q, want nmo", c.Name)
	}
	if c.Mode != ModeNone {
		t.Errorf("mode = %v, want none", c.Mode)
	}
	if c.Period != 0 {
		t.Errorf("period = %d, want 0", c.Period)
	}
	if c.TrackRSS {
		t.Error("NMO_TRACK_RSS default must be off")
	}
	if c.BufMiB != 1 || c.AuxMiB != 1 {
		t.Errorf("buf sizes = %d/%d MiB, want 1/1", c.BufMiB, c.AuxMiB)
	}
}

func TestFromEnvParsesAll(t *testing.T) {
	c, err := FromEnv(envOf(map[string]string{
		"NMO_ENABLE":     "1",
		"NMO_NAME":       "run42",
		"NMO_MODE":       "full",
		"NMO_PERIOD":     "3000",
		"NMO_TRACK_RSS":  "yes",
		"NMO_BUFSIZE":    "2",
		"NMO_AUXBUFSIZE": "4",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Enable || c.Name != "run42" || c.Mode != ModeFull || c.Period != 3000 ||
		!c.TrackRSS || c.BufMiB != 2 || c.AuxMiB != 4 {
		t.Errorf("parsed config = %+v", c)
	}
}

func TestFromEnvErrors(t *testing.T) {
	cases := []map[string]string{
		{"NMO_MODE": "bogus"},
		{"NMO_PERIOD": "abc"},
		{"NMO_BUFSIZE": "-1"},
		{"NMO_AUXBUFSIZE": "zero"},
	}
	for i, env := range cases {
		if _, err := FromEnv(envOf(env)); err == nil {
			t.Errorf("case %d: no error for %v", i, env)
		}
	}
}

func TestParseModeAliases(t *testing.T) {
	for s, want := range map[string]Mode{
		"": ModeNone, "none": ModeNone, "bw": ModeCounters, "counters": ModeCounters,
		"spe": ModeSample, "sample": ModeSample, "full": ModeFull, "all": ModeFull,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
}

func TestModePredicatesAndString(t *testing.T) {
	if ModeNone.Sampling() || ModeCounters.Sampling() || !ModeSample.Sampling() || !ModeFull.Sampling() {
		t.Error("Sampling predicate wrong")
	}
	if ModeNone.Counters() || !ModeCounters.Counters() || ModeSample.Counters() || !ModeFull.Counters() {
		t.Error("Counters predicate wrong")
	}
	for _, m := range []Mode{ModeNone, ModeCounters, ModeSample, ModeFull} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
}

func TestEffectiveSizes(t *testing.T) {
	c := DefaultConfig()
	if c.EffectiveRingPages(0) != 16 || c.EffectiveAuxPages(0) != 16 {
		t.Errorf("1 MiB should be 16 pages: %d/%d",
			c.EffectiveRingPages(0), c.EffectiveAuxPages(0))
	}
	c.RingPages, c.AuxPages = 8, 2048
	if c.EffectiveRingPages(0) != 8 || c.EffectiveAuxPages(0) != 2048 {
		t.Error("page overrides ignored")
	}
	c = DefaultConfig()
	c.AuxMiB = 3 // 48 pages -> round down to 32
	if c.EffectiveAuxPages(0) != 32 {
		t.Errorf("3 MiB -> %d pages, want 32", c.EffectiveAuxPages(0))
	}
	if c.EffectivePeriod() != 4096 {
		t.Errorf("default period = %d", c.EffectivePeriod())
	}
	c.Period = 1000
	if c.EffectivePeriod() != 1000 {
		t.Error("explicit period ignored")
	}
}

func testMachine(cores int) *machine.Machine {
	spec := machine.AmpereAltraMax().WithCores(cores)
	return machine.New(spec)
}

func sampleConfig(period uint64) Config {
	c := DefaultConfig()
	c.Enable = true
	c.Mode = ModeFull
	c.TrackRSS = true
	c.Period = period
	c.IntervalSec = 1e-4 // 300k cycles at 3 GHz
	return c
}

func TestSessionDisabledPassThrough(t *testing.T) {
	c := DefaultConfig() // Enable=false
	s, err := NewSession(c, testMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.NewStream(workloads.StreamConfig{Elems: 5000, Threads: 2, Iters: 2})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Wall == 0 {
		t.Error("no wall time")
	}
	if p.MemAccesses != 0 || len(p.Trace.Samples) != 0 {
		t.Error("disabled session collected data")
	}
}

func TestSessionSamplingEndToEnd(t *testing.T) {
	s, err := NewSession(sampleConfig(500), testMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.NewStream(workloads.StreamConfig{Elems: 50_000, Threads: 4, Iters: 4})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sampler.Processed == 0 {
		t.Fatal("no samples processed")
	}
	if len(p.Trace.Samples) == 0 {
		t.Fatal("no samples stored")
	}
	// Eq. (1): samples*period should estimate mem accesses well at a
	// healthy period.
	if p.MemAccesses == 0 {
		t.Fatal("mem_access counter empty")
	}
	est := float64(p.Sampler.Processed) * 500
	ratio := est / float64(p.MemAccesses)
	if ratio < 0.7 || ratio > 1.2 {
		t.Errorf("estimator ratio = %.3f (processed=%d mem=%d)",
			ratio, p.Sampler.Processed, p.MemAccesses)
	}
	// STREAM: loads of b/c, stores of a; regions must attribute.
	byRegion := p.Trace.CountByRegion()
	for _, r := range []string{"a", "b", "c"} {
		if byRegion[r] == 0 {
			t.Errorf("region %q has no samples: %v", r, byRegion)
		}
	}
	if byRegion["-"] > len(p.Trace.Samples)/10 {
		t.Errorf("too many unattributed samples: %v", byRegion)
	}
	// Kernel tagging: most samples inside "triad".
	byKernel := p.Trace.CountByKernel()
	if byKernel["triad"] < len(p.Trace.Samples)*8/10 {
		t.Errorf("triad samples = %d of %d", byKernel["triad"], len(p.Trace.Samples))
	}
	// Stores must be a-region only.
	for _, smp := range p.Trace.Samples {
		if smp.Store && p.Trace.Regions[smp.Region] != "a" {
			t.Fatalf("store sample outside region a: %+v", smp)
		}
	}
	if p.MD5 == ([16]byte{}) {
		t.Error("zero MD5")
	}
}

func TestSessionCountersMode(t *testing.T) {
	c := DefaultConfig()
	c.Enable = true
	c.Mode = ModeCounters
	c.TrackRSS = true
	c.IntervalSec = 1e-4
	s, _ := NewSession(c, testMachine(2))
	w := workloads.NewStream(workloads.StreamConfig{Elems: 100_000, Threads: 2, Iters: 3})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Bandwidth.Points) == 0 {
		t.Fatal("no bandwidth points")
	}
	if len(p.Capacity.Points) == 0 {
		t.Fatal("no capacity points")
	}
	if p.Bandwidth.Max() <= 0 {
		t.Error("bandwidth never positive")
	}
	// STREAM's RSS is its footprint.
	wantGiB := float64(w.FootprintBytes()) / float64(1<<30)
	if got := p.Capacity.Max(); got < wantGiB*0.99 || got > wantGiB*1.01 {
		t.Errorf("capacity max = %v GiB, want %v", got, wantGiB)
	}
	if len(p.Trace.Samples) != 0 {
		t.Error("counters mode produced samples")
	}
	if p.Sampler.Selected != 0 {
		t.Error("SPE active in counters mode")
	}
}

func TestSessionOverheadVsBaseline(t *testing.T) {
	m := testMachine(1)
	w := workloads.NewStream(workloads.StreamConfig{Elems: 200_000, Threads: 1, Iters: 10})

	base := DefaultConfig()
	sb, _ := NewSession(base, m)
	pb, err := sb.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	cfg := sampleConfig(1000)
	cfg.AuxPages = 4 // small aux: wakeups inside the run
	sp, _ := NewSession(cfg, m)
	pp, err := sp.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Wall <= pb.Wall {
		t.Errorf("profiled wall %d not greater than baseline %d", pp.Wall, pb.Wall)
	}
	overhead := float64(pp.Wall-pb.Wall) / float64(pb.Wall)
	if overhead > 0.25 {
		t.Errorf("overhead %.1f%% implausibly high", overhead*100)
	}
	if pp.Kernel.IRQCycles == 0 {
		t.Error("no IRQ time recorded")
	}
}

func TestSessionDeterministic(t *testing.T) {
	run := func() *Profile {
		s, _ := NewSession(sampleConfig(800), testMachine(2))
		w := workloads.NewStream(workloads.StreamConfig{Elems: 20_000, Threads: 2, Iters: 2})
		p, err := s.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	if a.MD5 != b.MD5 {
		t.Error("traces differ across identical runs")
	}
	if a.Wall != b.Wall || a.Sampler.Processed != b.Sampler.Processed {
		t.Errorf("stats differ: %+v vs %+v", a.Sampler, b.Sampler)
	}
}

func TestSessionTooManyThreads(t *testing.T) {
	s, _ := NewSession(DefaultConfig(), testMachine(2))
	w := workloads.NewStream(workloads.StreamConfig{Elems: 100, Threads: 8, Iters: 1})
	if _, err := s.Run(w); err == nil {
		t.Error("8 threads on 2 cores accepted")
	}
}

func TestSessionMaxSamplesBounds(t *testing.T) {
	c := sampleConfig(200)
	c.MaxSamples = 100
	s, _ := NewSession(c, testMachine(1))
	w := workloads.NewStream(workloads.StreamConfig{Elems: 100_000, Threads: 1, Iters: 2})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Trace.Samples) > 100 {
		t.Errorf("stored %d samples, cap 100", len(p.Trace.Samples))
	}
	if p.Sampler.Processed <= 100 {
		t.Errorf("processed %d; cap must not limit processing", p.Sampler.Processed)
	}
}

func TestSessionCollisionsAtSmallPeriod(t *testing.T) {
	// STREAM with 32 threads saturates the memory system; the DRAM
	// latency tail then makes small-period sampling collide (§VII-A).
	s, _ := NewSession(sampleConfig(512), testMachine(32))
	w := workloads.NewStream(workloads.StreamConfig{Elems: 1_000_000, Threads: 32, Iters: 2})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sampler.Collisions == 0 {
		t.Error("no collisions at period 300 on a DRAM-bound workload")
	}
	if p.Kernel.FlaggedCollisions == 0 {
		t.Error("no flagged collisions")
	}
	if p.Sampler.SkippedInvalid == 0 {
		t.Error("no invalid packets skipped (collision corruption)")
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(DefaultConfig(), nil); err == nil {
		t.Error("nil machine accepted")
	}
	bad := DefaultConfig()
	bad.IntervalSec = -1
	if _, err := NewSession(bad, testMachine(1)); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestArithmeticIntensity(t *testing.T) {
	p := &Profile{Flops: 640, BusAccesses: 10}
	if ai := p.ArithmeticIntensity(); ai != 1.0 {
		t.Errorf("AI = %v, want 1.0", ai)
	}
	empty := &Profile{}
	if empty.ArithmeticIntensity() != 0 {
		t.Error("empty AI not zero")
	}
}

// ---- Architecture-neutral backend dispatch ----

func x86Machine(cores int) *machine.Machine {
	return machine.New(machine.IntelIceLakeSP().WithCores(cores))
}

func TestFromEnvBackendAndArch(t *testing.T) {
	c, err := FromEnv(envOf(map[string]string{
		"NMO_BACKEND": "pebs",
		"NMO_ARCH":    "x86_64",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend != "pebs" || c.Arch != "x86_64" {
		t.Errorf("backend/arch = %v/%v", c.Backend, c.Arch)
	}
	if _, err := FromEnv(envOf(map[string]string{"NMO_BACKEND": "ibs"})); err == nil {
		t.Error("bad NMO_BACKEND accepted")
	}
}

func TestEffectiveBackendFollowsArch(t *testing.T) {
	c := DefaultConfig()
	if c.EffectiveBackend("arm64") != "spe" || c.EffectiveBackend("x86_64") != "pebs" {
		t.Error("backend auto-selection does not follow the machine ISA")
	}
	c.Backend = "spe"
	if c.EffectiveBackend("x86_64") != "spe" {
		t.Error("explicit backend not honoured")
	}
}

// TestSessionPEBSEndToEnd is the x86 twin of the SPE end-to-end test:
// the same workload on the Ice Lake platform must produce attributed
// samples through the PEBS decode path, with zero SPE collisions.
func TestSessionPEBSEndToEnd(t *testing.T) {
	s, err := NewSession(sampleConfig(500), x86Machine(4))
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.NewStream(workloads.StreamConfig{Elems: 50_000, Threads: 4, Iters: 4})
	p, err := s.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != "pebs" {
		t.Fatalf("backend = %q, want pebs (auto-selected from x86 spec)", p.Backend)
	}
	if p.Sampler.Processed == 0 || len(p.Trace.Samples) == 0 {
		t.Fatal("no PEBS samples decoded")
	}
	if p.Sampler.Collisions != 0 || p.Sampler.Corrupted != 0 {
		t.Errorf("PEBS profile carries SPE mechanisms: %+v", p.Sampler)
	}
	// PEBS counts the memory population directly: period 500 retired
	// memory instructions per sample, so Eq. (1) holds tightly.
	est := float64(p.Sampler.Processed) * 500
	ratio := est / float64(p.MemAccesses)
	if ratio < 0.7 || ratio > 1.2 {
		t.Errorf("estimator ratio = %.3f (processed=%d mem=%d)",
			ratio, p.Sampler.Processed, p.MemAccesses)
	}
	byRegion := p.Trace.CountByRegion()
	for _, r := range []string{"a", "b", "c"} {
		if byRegion[r] == 0 {
			t.Errorf("region %q has no samples: %v", r, byRegion)
		}
	}
}

func TestSessionBackendArchMismatch(t *testing.T) {
	cfg := sampleConfig(500)
	cfg.Backend = "spe"
	s, err := NewSession(cfg, x86Machine(2))
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.NewStream(workloads.StreamConfig{Elems: 5000, Threads: 2, Iters: 1})
	if _, err := s.Run(w); err == nil {
		t.Fatal("SPE on an x86 machine did not error")
	}

	cfg = sampleConfig(500)
	cfg.Backend = "pebs"
	s, err = NewSession(cfg, testMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(w); err == nil {
		t.Fatal("PEBS on an ARM machine did not error")
	}
}

func TestSessionArchAssertion(t *testing.T) {
	cfg := sampleConfig(500)
	cfg.Arch = "x86_64"
	s, err := NewSession(cfg, testMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.NewStream(workloads.StreamConfig{Elems: 5000, Threads: 2, Iters: 1})
	if _, err := s.Run(w); err == nil {
		t.Fatal("NMO_ARCH mismatch did not error")
	}
	cfg.Arch = "riscv"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown NMO_ARCH accepted")
	}
}

func TestValidateRejectsEmptySamplePopulation(t *testing.T) {
	// Uniform across backends: SPE would fail at perf_event_open, PEBS
	// would silently sample everything — the config layer rejects both.
	cfg := sampleConfig(500)
	cfg.SampleLoads, cfg.SampleStores = false, false
	if err := cfg.Validate(); err == nil {
		t.Fatal("empty sample population accepted")
	}
}

func TestPEBSRejectsMinLatencyFilter(t *testing.T) {
	cfg := sampleConfig(500)
	cfg.MinLatencyFilter = 200
	s, err := NewSession(cfg, x86Machine(2))
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.NewStream(workloads.StreamConfig{Elems: 5000, Threads: 2, Iters: 1})
	if _, err := s.Run(w); err == nil {
		t.Fatal("PEBS accepted the SPE-only latency filter")
	}
}
