package core

import (
	"sort"

	"nmo/internal/trace"
)

// emitBoundary sits between the decode stage and the configured sink
// chain: it assigns each sample its tagged-phase (kernel) label at
// emit time and releases samples to the sinks in arrival order.
//
// It replaces the old materialize-then-process tail (collect all
// samples, then SortByTime + attributeKernels over the full trace)
// with a streaming equivalent. The correctness argument:
//
//   - A sample's kernel attribution is the highest-(startNs, label)
//     window containing its timestamp t. Windows open at marker time,
//     which is machine "now" — monotone — so once now (in trace ns)
//     strictly exceeds t, no window with startNs <= t can still
//     appear: the candidate set is complete.
//   - A window that is still *open* when the decision is made closes
//     at some future cycle, whose ns conversion is >= now-ns > t — so
//     an open window with startNs <= t is guaranteed to contain t and
//     participates as an end=∞ candidate.
//
// Samples whose timestamp has not yet been passed by the clock wait in
// a small reorder buffer (FIFO, so the sinks observe the exact decode
// order the batch pipeline stored — trace checksums are preserved
// byte for byte). The buffer drains at the next decode wakeup and is
// flushed completely by finish(), after every window has closed.
type emitBoundary struct {
	sink trace.Sink
	// open is the live marker state (label -> startNs), shared with
	// the run's marker callback.
	open map[int16]uint64
	// closed holds finished windows sorted by (startNs, label) — the
	// same order batch attribution sorted into post-hoc.
	closed []kernelWindow
	// pending is the reorder buffer: samples in arrival order whose
	// attribution is not yet decidable. head indexes the first
	// unemitted entry so draining does not reallocate.
	pending []trace.Sample
	head    int
	// emitted counts samples released to the sink chain.
	emitted uint64
	err     error
}

func newEmitBoundary(sink trace.Sink, open map[int16]uint64) *emitBoundary {
	return &emitBoundary{sink: sink, open: open}
}

// windowClosed inserts a finished window at its (startNs, label) sort
// position. Windows close rarely relative to sample arrival, so the
// O(n) insertion is noise next to the per-sample work it replaces.
func (b *emitBoundary) windowClosed(w kernelWindow) {
	i := sort.Search(len(b.closed), func(k int) bool {
		if b.closed[k].startNs != w.startNs {
			return b.closed[k].startNs > w.startNs
		}
		return b.closed[k].label > w.label
	})
	b.closed = append(b.closed, kernelWindow{})
	copy(b.closed[i+1:], b.closed[i:])
	b.closed[i] = w
}

// push hands one decoded sample to the boundary. nowNs is the current
// machine time in trace nanoseconds; samples strictly older than it
// are attributable immediately, the rest wait in the reorder buffer.
func (b *emitBoundary) push(s *trace.Sample, nowNs uint64) {
	if b.head == len(b.pending) && s.TimeNs < nowNs {
		b.emit(s)
		return
	}
	b.pending = append(b.pending, *s)
	b.drain(nowNs)
}

// drain releases pending samples whose attribution became decidable,
// preserving arrival order (head-of-line blocking keeps a young ready
// sample behind an old not-yet-ready one).
func (b *emitBoundary) drain(nowNs uint64) {
	for b.head < len(b.pending) && b.pending[b.head].TimeNs < nowNs {
		b.emit(&b.pending[b.head])
		b.head++
	}
	if b.head == len(b.pending) {
		b.pending = b.pending[:0]
		b.head = 0
	}
}

// finish flushes the reorder buffer unconditionally. It must only run
// once every window has closed (after the run's leftover-close and
// final drain), when attribution is decidable for any timestamp.
func (b *emitBoundary) finish() error {
	for b.head < len(b.pending) {
		b.emit(&b.pending[b.head])
		b.head++
	}
	b.pending, b.head = nil, 0
	return b.err
}

// emit attributes and releases one sample.
func (b *emitBoundary) emit(s *trace.Sample) {
	if k := b.attribute(s.TimeNs); k >= 0 {
		s.Kernel = k
	}
	b.emitted++
	if b.err != nil {
		return
	}
	b.err = b.sink.Emit(s)
}

// attribute finds the tagged phase containing t: the highest
// (startNs, label) window with startNs <= t and endNs > t. It walks
// the closed windows downward from the last startNs <= t — the exact
// loop batch attribution ran, including its stale-window cutoff — with
// the best open window merged in at its sort position (open windows
// always contain t; see the type comment).
func (b *emitBoundary) attribute(t uint64) int16 {
	var openStart uint64
	var openLabel int16
	haveOpen := false
	for label, start := range b.open {
		if start > t {
			continue
		}
		if !haveOpen || start > openStart || (start == openStart && label > openLabel) {
			openStart, openLabel, haveOpen = start, label, true
		}
	}
	idx := sort.Search(len(b.closed), func(k int) bool { return b.closed[k].startNs > t }) - 1
	for ; idx >= 0; idx-- {
		w := &b.closed[idx]
		if haveOpen && (openStart > w.startNs || (openStart == w.startNs && openLabel > w.label)) {
			return openLabel
		}
		if w.endNs > t {
			return w.label
		}
		// Windows are non-overlapping per label but may nest across
		// labels; scan a few earlier windows, giving up past the
		// staleness horizon (as the batch pass did).
		if t-w.startNs > 1<<40 {
			return -1
		}
	}
	if haveOpen {
		return openLabel
	}
	return -1
}
