package core

import (
	"sort"

	"nmo/internal/trace"
)

// emitBoundary sits between the decode stage and the configured sink
// chain: it assigns each sample its tagged-phase (kernel) label at
// emit time and releases samples to the sinks in arrival order.
//
// It replaces the old materialize-then-process tail (collect all
// samples, then SortByTime + attributeKernels over the full trace)
// with a streaming equivalent. The correctness argument:
//
//   - A sample's kernel attribution is the highest-(startNs, label)
//     window containing its timestamp t. Windows open at marker time,
//     which is machine "now" — monotone — so once now (in trace ns)
//     strictly exceeds t, no window with startNs <= t can still
//     appear: the candidate set is complete.
//   - A window that is still *open* when the decision is made closes
//     at some future cycle, whose ns conversion is >= now-ns > t — so
//     an open window with startNs <= t is guaranteed to contain t and
//     participates as an end=∞ candidate.
//
// Samples whose timestamp has not yet been passed by the clock wait in
// a small reorder buffer (FIFO, so the sinks observe the exact decode
// order the batch pipeline stored — trace checksums are preserved
// byte for byte). The buffer drains at the next decode wakeup and is
// flushed completely by finish(), after every window has closed.
type emitBoundary struct {
	sink trace.BatchSink
	// open is the live marker state (label -> startNs), shared with
	// the run's marker callback.
	open map[int16]uint64
	// closed holds finished windows sorted by (startNs, label) — the
	// same order batch attribution sorted into post-hoc.
	closed []kernelWindow
	// pending is the reorder buffer: samples in arrival order whose
	// attribution is not yet decidable. head indexes the first
	// unemitted entry so draining does not reallocate.
	pending []trace.Sample
	head    int
	// emitted counts samples released to the sink chain.
	emitted uint64
	err     error
}

func newEmitBoundary(sink trace.Sink, open map[int16]uint64) *emitBoundary {
	return &emitBoundary{sink: trace.ToBatch(sink), open: open}
}

// windowClosed inserts a finished window at its (startNs, label) sort
// position. Windows close rarely relative to sample arrival, so the
// O(n) insertion is noise next to the per-sample work it replaces.
func (b *emitBoundary) windowClosed(w kernelWindow) {
	i := sort.Search(len(b.closed), func(k int) bool {
		if b.closed[k].startNs != w.startNs {
			return b.closed[k].startNs > w.startNs
		}
		return b.closed[k].label > w.label
	})
	b.closed = append(b.closed, kernelWindow{})
	copy(b.closed[i+1:], b.closed[i:])
	b.closed[i] = w
}

// pushBatch hands one decoded span's samples to the boundary. nowNs is
// the current machine time in trace nanoseconds — constant across the
// span, so the decidable set is a prefix: samples strictly older than
// nowNs are attributable immediately and released as one batch, the
// rest wait in the reorder buffer. The emission sequence is identical
// to pushing each sample individually (arrival order, same decision
// point), so trace bytes and checksums are unchanged; only the
// dispatch granularity differs. The batch slice is caller-owned and
// reusable as soon as pushBatch returns.
func (b *emitBoundary) pushBatch(batch []trace.Sample, nowNs uint64) {
	if b.head == len(b.pending) {
		n := 0
		for n < len(batch) && batch[n].TimeNs < nowNs {
			n++
		}
		if n > 0 {
			b.emitBatch(batch[:n])
		}
		if n < len(batch) {
			b.pending = append(b.pending, batch[n:]...)
		}
		return
	}
	b.pending = append(b.pending, batch...)
	b.drain(nowNs)
}

// drain releases pending samples whose attribution became decidable,
// preserving arrival order (head-of-line blocking keeps a young ready
// sample behind an old not-yet-ready one). The decidable prefix goes
// out as one batch.
func (b *emitBoundary) drain(nowNs uint64) {
	n := b.head
	for n < len(b.pending) && b.pending[n].TimeNs < nowNs {
		n++
	}
	if n > b.head {
		b.emitBatch(b.pending[b.head:n])
		b.head = n
	}
	if b.head == len(b.pending) {
		b.pending = b.pending[:0]
		b.head = 0
	}
}

// finish flushes the reorder buffer unconditionally. It must only run
// once every window has closed (after the run's leftover-close and
// final drain), when attribution is decidable for any timestamp.
func (b *emitBoundary) finish() error {
	if b.head < len(b.pending) {
		b.emitBatch(b.pending[b.head:])
	}
	b.pending, b.head = nil, 0
	return b.err
}

// emitBatch attributes the samples in place and releases them to the
// sink chain in one call.
func (b *emitBoundary) emitBatch(batch []trace.Sample) {
	for i := range batch {
		if k := b.attribute(batch[i].TimeNs); k >= 0 {
			batch[i].Kernel = k
		}
	}
	b.emitted += uint64(len(batch))
	if b.err != nil {
		return
	}
	b.err = b.sink.EmitBatch(batch)
}

// attribute finds the tagged phase containing t: the highest
// (startNs, label) window with startNs <= t and endNs > t. It walks
// the closed windows downward from the last startNs <= t — the exact
// loop batch attribution ran, including its stale-window cutoff — with
// the best open window merged in at its sort position (open windows
// always contain t; see the type comment).
func (b *emitBoundary) attribute(t uint64) int16 {
	var openStart uint64
	var openLabel int16
	haveOpen := false
	for label, start := range b.open {
		if start > t {
			continue
		}
		if !haveOpen || start > openStart || (start == openStart && label > openLabel) {
			openStart, openLabel, haveOpen = start, label, true
		}
	}
	idx := sort.Search(len(b.closed), func(k int) bool { return b.closed[k].startNs > t }) - 1
	for ; idx >= 0; idx-- {
		w := &b.closed[idx]
		if haveOpen && (openStart > w.startNs || (openStart == w.startNs && openLabel > w.label)) {
			return openLabel
		}
		if w.endNs > t {
			return w.label
		}
		// Windows are non-overlapping per label but may nest across
		// labels; scan a few earlier windows, giving up past the
		// staleness horizon (as the batch pass did).
		if t-w.startNs > 1<<40 {
			return -1
		}
	}
	if haveOpen {
		return openLabel
	}
	return -1
}
