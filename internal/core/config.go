// Package core implements the NMO profiling engine: configuration
// (the Table I environment variables), the profiling session that
// wires perf events onto the machine, the collectors for the three
// profiling levels (temporal capacity, temporal bandwidth, memory
// region samples), and the backend-dispatched decode loop with its
// timescale conversion and invalid-packet skipping (§III–IV of the
// paper). Sampling runs on the architecture-neutral backend layer
// (internal/sampler): SPE on arm64 machines, PEBS on x86_64.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"nmo/internal/isa"
	"nmo/internal/perfev"
	"nmo/internal/sampler"
	"nmo/internal/trace"
)

// SinkFactory builds the sample-sink chain for one run. It is called
// once per run, before the first sample decodes, with the stream's
// identity (workload plus region/kernel name tables). When set it
// replaces the default in-memory Collect sink, which is how aggregate-
// only sweeps run whole grids with O(1) sample memory per scenario.
type SinkFactory func(meta trace.Meta) (trace.Sink, error)

// Mode selects what the profiler collects, the NMO_MODE setting.
type Mode int

const (
	// ModeNone collects nothing (profiling disabled), the Table I
	// default.
	ModeNone Mode = iota
	// ModeCounters collects the temporal metrics (capacity +
	// bandwidth) from plain counting events.
	ModeCounters
	// ModeSample adds precise memory-access sampling on the machine's
	// backend (ARM SPE or Intel PEBS).
	ModeSample
	// ModeFull collects everything.
	ModeFull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeCounters:
		return "counters"
	case ModeSample:
		return "sample"
	case ModeFull:
		return "full"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses an NMO_MODE value.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return ModeNone, nil
	case "counters", "bw":
		return ModeCounters, nil
	case "sample", "spe":
		return ModeSample, nil
	case "full", "all":
		return ModeFull, nil
	}
	return ModeNone, fmt.Errorf("core: unknown NMO_MODE %q", s)
}

// Sampling reports whether the mode includes SPE sampling.
func (m Mode) Sampling() bool { return m == ModeSample || m == ModeFull }

// Counters reports whether the mode includes temporal counters.
func (m Mode) Counters() bool { return m == ModeCounters || m == ModeFull }

// Config is the profiler configuration. The first block corresponds
// one-to-one to the paper's Table I environment variables; the second
// block holds the knobs the paper sets through code or perf attrs.
type Config struct {
	// Enable gates all collection (NMO_ENABLE, default off).
	Enable bool
	// Name is the base name of output files (NMO_NAME, default "nmo").
	Name string
	// Mode is the collection mode (NMO_MODE, default none).
	Mode Mode
	// Backend selects the sampling backend (NMO_BACKEND: "spe" or
	// "pebs"; default empty = follow the machine's architecture, the
	// paper's "SPE when compiling for ARM and PEBS for Intel").
	Backend sampler.Kind
	// Arch, when set (NMO_ARCH: "arm64" or "x86_64"), asserts the
	// target architecture: a session whose machine has a different
	// ISA refuses to run, pinning a scenario to one (ISA × backend)
	// grid point.
	Arch string
	// Period is the sampling period (NMO_PERIOD, default 0 =>
	// sampling disabled unless the mode demands it, then 4096).
	Period uint64
	// TrackRSS enables working-set capture (NMO_TRACK_RSS, default
	// off).
	TrackRSS bool
	// BufMiB is the ring buffer size in MiB (NMO_BUFSIZE, default 1).
	BufMiB int
	// AuxMiB is the aux buffer size in MiB (NMO_AUXBUFSIZE, default 1).
	AuxMiB int

	// RingPages / AuxPages override the MiB sizes with exact page
	// counts (in the kernel's mmap page size); the paper's Fig. 9
	// sweep is specified in pages.
	RingPages int
	AuxPages  int
	// SampleLoads / SampleStores select the SPE operation filter;
	// both default on (the paper's 0x600000001). Branches are never
	// sampled (§IV-A).
	SampleLoads  bool
	SampleStores bool
	// Jitter enables interval-counter dither (default on).
	Jitter bool
	// MinLatencyFilter drops samples below the latency threshold.
	MinLatencyFilter uint16
	// IntervalSec is the temporal collector resolution (default 1 s).
	IntervalSec float64
	// MaxSamples bounds stored samples; further samples are counted
	// but not retained (default 4M).
	MaxSamples int
	// Seed drives SPE dither and any randomized decisions.
	Seed uint64
	// PageBytes overrides the perf mmap page size (0 = the machine's
	// native page size: 64 KB on the ARM testbed, 4 KB on the x86
	// part). The scaled-down buffer experiments shrink pages together
	// with run lengths (EXPERIMENTS.md).
	PageBytes int
	// AuxWatermarkBytes overrides the aux wakeup watermark (0 = half
	// the aux buffer).
	AuxWatermarkBytes uint32
	// SinkFactory replaces the default Collect sink with a custom sink
	// chain (nil = collect into Profile.Trace, the compat path).
	SinkFactory SinkFactory
	// TraceOut, when set (NMO_TRACE_OUT), streams samples to a blocked
	// indexed v2 trace file at this path instead of materializing them
	// in memory: Profile.Trace stays empty (name tables only) and the
	// run's sample memory is one block. Composes with SinkFactory (both
	// receive the stream).
	TraceOut string
	// TraceBlockSamples overrides the v2 block granularity
	// (0 = trace.DefaultBlockSamples).
	TraceBlockSamples int
	// TraceCompress (NMO_TRACE_COMPRESS) writes the TraceOut file in
	// the v2.1 format: per-block compressed frames, same sample stream
	// and rolling MD5. Delivery-only, like TraceBlockSamples — it packs
	// the stored bytes, not what the stream contains.
	TraceCompress bool
	// Costs overrides the kernel cost model (zero fields keep the
	// calibrated defaults); the scaled-down experiments shrink costs
	// together with run lengths.
	Costs perfev.Costs
}

// DefaultConfig mirrors the Table I defaults with sampling enabled
// knobs at their code defaults.
func DefaultConfig() Config {
	return Config{
		Enable:       false,
		Name:         "nmo",
		Mode:         ModeNone,
		Period:       0,
		TrackRSS:     false,
		BufMiB:       1,
		AuxMiB:       1,
		SampleLoads:  true,
		SampleStores: true,
		Jitter:       true,
		IntervalSec:  1.0,
		MaxSamples:   4 << 20,
		Seed:         1,
	}
}

// pagesOf converts a MiB setting to pages of the given size, clamped
// down to a power of two (mmap requirement). pageBytes <= 0 means the
// ARM testbed's 64 KB pages.
func pagesOf(mib, pageBytes int) int {
	if pageBytes <= 0 {
		pageBytes = 64 << 10
	}
	pages := mib << 20 / pageBytes
	if pages < 1 {
		pages = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= pages {
		p *= 2
	}
	return p
}

// EffectiveRingPages returns the data-page count for the perf ring
// (the paper's "(N+1) pages" mmap maps N data pages plus metadata).
// pageBytes is the kernel's mmap page size, so the MiB-denominated
// NMO_BUFSIZE yields the same byte size on any platform (64 KB pages
// on the Altra, 4 KB on the Ice Lake part); pass 0 for 64 KB.
func (c Config) EffectiveRingPages(pageBytes int) int {
	if c.RingPages > 0 {
		return c.RingPages
	}
	return pagesOf(c.BufMiB, pageBytes)
}

// EffectiveAuxPages returns the aux-area page count; pageBytes as for
// EffectiveRingPages.
func (c Config) EffectiveAuxPages(pageBytes int) int {
	if c.AuxPages > 0 {
		return c.AuxPages
	}
	return pagesOf(c.AuxMiB, pageBytes)
}

// EffectivePeriod returns the sampling period, applying the default
// when sampling is requested without an explicit NMO_PERIOD.
func (c Config) EffectivePeriod() uint64 {
	if c.Period > 0 {
		return c.Period
	}
	return 4096
}

// EffectiveBackend resolves the sampling backend for a machine of the
// given architecture: an explicit Backend wins; otherwise the
// architecture's native backend is used (SPE on arm64, PEBS on
// x86_64).
func (c Config) EffectiveBackend(arch string) sampler.Kind {
	if c.Backend != "" {
		return c.Backend
	}
	if arch == isa.ArchX86 {
		return sampler.KindPEBS
	}
	return sampler.KindSPE
}

// Validate rejects configurations the profiler cannot honour.
func (c Config) Validate() error {
	if c.Backend != "" {
		if _, err := sampler.For(c.Backend); err != nil {
			return fmt.Errorf("core: %v", err)
		}
	}
	if c.Arch != "" && c.Arch != isa.ArchARM64 && c.Arch != isa.ArchX86 {
		return fmt.Errorf("core: unknown NMO_ARCH %q (supported: %s, %s)",
			c.Arch, isa.ArchARM64, isa.ArchX86)
	}
	if c.Mode.Sampling() && c.EffectiveAuxPages(0) <= 0 {
		return fmt.Errorf("core: sampling requires an aux buffer")
	}
	if c.Mode.Sampling() && !c.SampleLoads && !c.SampleStores {
		// Enforced uniformly here: SPE would reject the empty filter
		// at perf_event_open, but PEBS has no equivalent check (its
		// raw event always names a population) and would silently
		// sample everything.
		return fmt.Errorf("core: sampling selects no operation classes (loads/stores both off)")
	}
	if c.Enable && c.TraceOut != "" && !c.Mode.Sampling() {
		// Rejected rather than ignored (like MinLatencyFilter on PEBS):
		// a user who asked for a trace file must not get a successful
		// run and no file.
		return fmt.Errorf("core: NMO_TRACE_OUT requires a sampling mode (NMO_MODE=sample or full), mode is %s", c.Mode)
	}
	if c.IntervalSec < 0 {
		return fmt.Errorf("core: negative interval %v", c.IntervalSec)
	}
	if c.MaxSamples < 0 {
		return fmt.Errorf("core: negative MaxSamples")
	}
	return nil
}

// CanonicalBytes returns a deterministic encoding of every field that
// can change what a run computes: the Table I knobs, the code-level
// attr knobs, the seed, and the kernel cost model, in fixed order.
// Delivery-only fields are excluded on purpose — Name, SinkFactory,
// TraceOut, TraceBlockSamples, TraceCompress and MaxSamples choose
// where the sample stream goes and how it is stored, not what the
// stream contains — so two configurations with equal CanonicalBytes produce
// bit-identical profiles (the simulator is deterministic, DESIGN.md
// §7). The service layer's content-addressed result cache hashes this
// encoding; core owns it so the semantic/delivery split stays next to
// the fields it classifies.
func (c Config) CanonicalBytes() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "enable=%t\n", c.Enable)
	fmt.Fprintf(&b, "mode=%d\n", int(c.Mode))
	fmt.Fprintf(&b, "backend=%s\n", c.Backend)
	fmt.Fprintf(&b, "arch=%s\n", c.Arch)
	fmt.Fprintf(&b, "period=%d\n", c.Period)
	fmt.Fprintf(&b, "trackrss=%t\n", c.TrackRSS)
	fmt.Fprintf(&b, "bufmib=%d\n", c.BufMiB)
	fmt.Fprintf(&b, "auxmib=%d\n", c.AuxMiB)
	fmt.Fprintf(&b, "ringpages=%d\n", c.RingPages)
	fmt.Fprintf(&b, "auxpages=%d\n", c.AuxPages)
	fmt.Fprintf(&b, "loads=%t\nstores=%t\n", c.SampleLoads, c.SampleStores)
	fmt.Fprintf(&b, "jitter=%t\n", c.Jitter)
	fmt.Fprintf(&b, "minlat=%d\n", c.MinLatencyFilter)
	fmt.Fprintf(&b, "interval=%g\n", c.IntervalSec)
	fmt.Fprintf(&b, "seed=%d\n", c.Seed)
	fmt.Fprintf(&b, "pagebytes=%d\n", c.PageBytes)
	fmt.Fprintf(&b, "auxwatermark=%d\n", c.AuxWatermarkBytes)
	fmt.Fprintf(&b, "costs=%d,%d,%d,%g,%d,%d\n",
		c.Costs.IRQBase, c.Costs.IRQPerRecord, c.Costs.DrainBase,
		c.Costs.DrainPerByte, c.Costs.IRQDeadTime, c.Costs.MinAuxPages)
	return []byte(b.String())
}

// FromEnv builds a Config from an environment lookup function
// (pass os.Getenv in real use; tests inject maps). Unset variables
// keep their Table I defaults. Errors identify the offending variable.
func FromEnv(getenv func(string) string) (Config, error) {
	c := DefaultConfig()
	if v := getenv("NMO_ENABLE"); v != "" {
		c.Enable = isTruthy(v)
	}
	if v := getenv("NMO_NAME"); v != "" {
		c.Name = v
	}
	if v := getenv("NMO_MODE"); v != "" {
		m, err := ParseMode(v)
		if err != nil {
			return c, err
		}
		c.Mode = m
	}
	if v := getenv("NMO_BACKEND"); v != "" {
		k, err := sampler.ParseKind(v)
		if err != nil {
			return c, fmt.Errorf("core: bad NMO_BACKEND %q (supported: %s)",
				v, sampler.SupportedList())
		}
		c.Backend = k
	}
	if v := getenv("NMO_ARCH"); v != "" {
		c.Arch = strings.ToLower(strings.TrimSpace(v))
	}
	if v := getenv("NMO_PERIOD"); v != "" {
		p, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return c, fmt.Errorf("core: bad NMO_PERIOD %q: %v", v, err)
		}
		c.Period = p
	}
	if v := getenv("NMO_TRACK_RSS"); v != "" {
		c.TrackRSS = isTruthy(v)
	}
	if v := getenv("NMO_TRACE_OUT"); v != "" {
		c.TraceOut = v
	}
	if v := getenv("NMO_TRACE_COMPRESS"); v != "" {
		c.TraceCompress = isTruthy(v)
	}
	if v := getenv("NMO_BUFSIZE"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return c, fmt.Errorf("core: bad NMO_BUFSIZE %q", v)
		}
		c.BufMiB = n
	}
	if v := getenv("NMO_AUXBUFSIZE"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return c, fmt.Errorf("core: bad NMO_AUXBUFSIZE %q", v)
		}
		c.AuxMiB = n
	}
	return c, nil
}

func isTruthy(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
