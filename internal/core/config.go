// Package core implements the NMO profiling engine: configuration
// (the Table I environment variables), the profiling session that
// wires perf events onto the machine, the collectors for the three
// profiling levels (temporal capacity, temporal bandwidth, memory
// region samples), and the SPE decode loop with its timescale
// conversion and invalid-packet skipping (§III–IV of the paper).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"nmo/internal/perfev"
)

// Mode selects what the profiler collects, the NMO_MODE setting.
type Mode int

const (
	// ModeNone collects nothing (profiling disabled), the Table I
	// default.
	ModeNone Mode = iota
	// ModeCounters collects the temporal metrics (capacity +
	// bandwidth) from plain counting events.
	ModeCounters
	// ModeSample adds ARM SPE memory-access sampling.
	ModeSample
	// ModeFull collects everything.
	ModeFull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeCounters:
		return "counters"
	case ModeSample:
		return "sample"
	case ModeFull:
		return "full"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses an NMO_MODE value.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return ModeNone, nil
	case "counters", "bw":
		return ModeCounters, nil
	case "sample", "spe":
		return ModeSample, nil
	case "full", "all":
		return ModeFull, nil
	}
	return ModeNone, fmt.Errorf("core: unknown NMO_MODE %q", s)
}

// Sampling reports whether the mode includes SPE sampling.
func (m Mode) Sampling() bool { return m == ModeSample || m == ModeFull }

// Counters reports whether the mode includes temporal counters.
func (m Mode) Counters() bool { return m == ModeCounters || m == ModeFull }

// Config is the profiler configuration. The first block corresponds
// one-to-one to the paper's Table I environment variables; the second
// block holds the knobs the paper sets through code or perf attrs.
type Config struct {
	// Enable gates all collection (NMO_ENABLE, default off).
	Enable bool
	// Name is the base name of output files (NMO_NAME, default "nmo").
	Name string
	// Mode is the collection mode (NMO_MODE, default none).
	Mode Mode
	// Period is the SPE sampling period (NMO_PERIOD, default 0 =>
	// sampling disabled unless the mode demands it, then 4096).
	Period uint64
	// TrackRSS enables working-set capture (NMO_TRACK_RSS, default
	// off).
	TrackRSS bool
	// BufMiB is the ring buffer size in MiB (NMO_BUFSIZE, default 1).
	BufMiB int
	// AuxMiB is the aux buffer size in MiB (NMO_AUXBUFSIZE, default 1).
	AuxMiB int

	// RingPages / AuxPages override the MiB sizes with exact 64 KB
	// page counts; the paper's Fig. 9 sweep is specified in pages.
	RingPages int
	AuxPages  int
	// SampleLoads / SampleStores select the SPE operation filter;
	// both default on (the paper's 0x600000001). Branches are never
	// sampled (§IV-A).
	SampleLoads  bool
	SampleStores bool
	// Jitter enables interval-counter dither (default on).
	Jitter bool
	// MinLatencyFilter drops samples below the latency threshold.
	MinLatencyFilter uint16
	// IntervalSec is the temporal collector resolution (default 1 s).
	IntervalSec float64
	// MaxSamples bounds stored samples; further samples are counted
	// but not retained (default 4M).
	MaxSamples int
	// Seed drives SPE dither and any randomized decisions.
	Seed uint64
	// PageBytes overrides the perf mmap page size (0 = the testbed's
	// 64 KB). The scaled-down buffer experiments shrink pages together
	// with run lengths (EXPERIMENTS.md).
	PageBytes int
	// AuxWatermarkBytes overrides the aux wakeup watermark (0 = half
	// the aux buffer).
	AuxWatermarkBytes uint32
	// Costs overrides the kernel cost model (zero fields keep the
	// calibrated defaults); the scaled-down experiments shrink costs
	// together with run lengths.
	Costs perfev.Costs
}

// DefaultConfig mirrors the Table I defaults with sampling enabled
// knobs at their code defaults.
func DefaultConfig() Config {
	return Config{
		Enable:       false,
		Name:         "nmo",
		Mode:         ModeNone,
		Period:       0,
		TrackRSS:     false,
		BufMiB:       1,
		AuxMiB:       1,
		SampleLoads:  true,
		SampleStores: true,
		Jitter:       true,
		IntervalSec:  1.0,
		MaxSamples:   4 << 20,
		Seed:         1,
	}
}

// pagesOf converts a MiB setting to 64 KB pages, clamped to a power of
// two (mmap requirement).
func pagesOf(mib int) int {
	pages := mib * 16
	if pages < 1 {
		pages = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= pages {
		p *= 2
	}
	return p
}

// EffectiveRingPages returns the data-page count for the perf ring
// (the paper's "(N+1) pages" mmap maps N data pages plus metadata).
func (c Config) EffectiveRingPages() int {
	if c.RingPages > 0 {
		return c.RingPages
	}
	return pagesOf(c.BufMiB)
}

// EffectiveAuxPages returns the aux-area page count.
func (c Config) EffectiveAuxPages() int {
	if c.AuxPages > 0 {
		return c.AuxPages
	}
	return pagesOf(c.AuxMiB)
}

// EffectivePeriod returns the sampling period, applying the default
// when sampling is requested without an explicit NMO_PERIOD.
func (c Config) EffectivePeriod() uint64 {
	if c.Period > 0 {
		return c.Period
	}
	return 4096
}

// Validate rejects configurations the profiler cannot honour.
func (c Config) Validate() error {
	if c.Mode.Sampling() && c.EffectiveAuxPages() <= 0 {
		return fmt.Errorf("core: sampling requires an aux buffer")
	}
	if c.IntervalSec < 0 {
		return fmt.Errorf("core: negative interval %v", c.IntervalSec)
	}
	if c.MaxSamples < 0 {
		return fmt.Errorf("core: negative MaxSamples")
	}
	return nil
}

// FromEnv builds a Config from an environment lookup function
// (pass os.Getenv in real use; tests inject maps). Unset variables
// keep their Table I defaults. Errors identify the offending variable.
func FromEnv(getenv func(string) string) (Config, error) {
	c := DefaultConfig()
	if v := getenv("NMO_ENABLE"); v != "" {
		c.Enable = isTruthy(v)
	}
	if v := getenv("NMO_NAME"); v != "" {
		c.Name = v
	}
	if v := getenv("NMO_MODE"); v != "" {
		m, err := ParseMode(v)
		if err != nil {
			return c, err
		}
		c.Mode = m
	}
	if v := getenv("NMO_PERIOD"); v != "" {
		p, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return c, fmt.Errorf("core: bad NMO_PERIOD %q: %v", v, err)
		}
		c.Period = p
	}
	if v := getenv("NMO_TRACK_RSS"); v != "" {
		c.TrackRSS = isTruthy(v)
	}
	if v := getenv("NMO_BUFSIZE"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return c, fmt.Errorf("core: bad NMO_BUFSIZE %q", v)
		}
		c.BufMiB = n
	}
	if v := getenv("NMO_AUXBUFSIZE"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return c, fmt.Errorf("core: bad NMO_AUXBUFSIZE %q", v)
		}
		c.AuxMiB = n
	}
	return c, nil
}

func isTruthy(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
