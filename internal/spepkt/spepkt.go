// Package spepkt encodes and decodes ARM SPE sample records.
//
// When SPE samples a load/store, the tracked pipeline information is
// emitted into the aux buffer as a sequence of packets forming one
// sample record. This package implements the subset of the SPE packet
// grammar that NMO consumes, in the exact layout the paper's decoder
// describes (§IV-A):
//
//   - records are 64 bytes large and 64-byte aligned;
//   - the data virtual address is a 64-bit value at byte offset 31,
//     prefaced by the header byte 0xb2 (address packet, index 2);
//   - the timestamp is a 64-bit value at the end of the record, at
//     byte offset 56, prefaced by the header byte 0x71.
//
// A record is considered invalid — and skipped by the decoder, exactly
// as NMO skips it — if either header byte is wrong or if the virtual
// address or timestamp is zero. Such records occur in real traces when
// samples collide or the profiler is throttled; the simulated SPE unit
// produces them under the same conditions.
//
// The remaining packets fill the front of the record:
//
//	off  0: 0xb0  PC           (address packet, index 0; 8-byte payload)
//	off  9: 0x49  op type      (LD/ST subclass; 1-byte payload)
//	off 11: 0x52  events       (2-byte payload, bitmask below)
//	off 14: 0x65  data source  (1-byte payload, memory level)
//	off 16: 0x98  issue lat    (2-byte payload, cycles)
//	off 19: 0x99  total lat    (2-byte payload, cycles)
//	off 22: 0x9a  xlat lat     (2-byte payload, cycles)
//	off 25: 0x00  padding ×5
//	off 30: 0xb2  data VA      (8-byte payload at offset 31)
//	off 39: 0xb3  data PA      (8-byte payload; zero if PA disabled)
//	off 48: 0x00  padding ×7
//	off 55: 0x71  timestamp    (8-byte payload at offset 56)
//
// All multi-byte payloads are little-endian, as on real SPE.
package spepkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RecordSize is the size in bytes of one encoded sample record.
const RecordSize = 64

// Packet header bytes (subset of the Armv8-A SPE packet encoding).
const (
	HdrPC         = 0xb0 // address packet, index 0: instruction PC
	HdrBranchTgt  = 0xb1 // address packet, index 1: branch target
	HdrDataVA     = 0xb2 // address packet, index 2: data virtual address
	HdrDataPA     = 0xb3 // address packet, index 3: data physical address
	HdrOpType     = 0x49 // operation-type packet, class LD/ST
	HdrOpOther    = 0x48 // operation-type packet, class other
	HdrOpBranch   = 0x4a // operation-type packet, class branch
	HdrEvents     = 0x52 // events packet
	HdrDataSource = 0x65 // data-source packet
	HdrLatIssue   = 0x98 // counter packet: issue latency
	HdrLatTotal   = 0x99 // counter packet: total latency
	HdrLatXlat    = 0x9a // counter packet: translation latency
	HdrTimestamp  = 0x71 // timestamp packet
	HdrPadding    = 0x00 // alignment padding
	HdrEnd        = 0x01 // end-of-record
)

// Byte offsets inside a record. VAOffset and TSOffset are the two
// numbers the paper states explicitly; the rest follow from the
// layout above.
const (
	PCOffset       = 0  // header; payload at 1..8
	OpTypeOffset   = 9  // header; payload at 10
	EventsOffset   = 11 // header; payload at 12..13
	SourceOffset   = 14 // header; payload at 15
	LatIssueOffset = 16 // header; payload at 17..18
	LatTotalOffset = 19 // header; payload at 20..21
	LatXlatOffset  = 22 // header; payload at 23..24
	VAHeaderOffset = 30 // header byte 0xb2
	VAOffset       = 31 // 64-bit VA payload (paper: "offset of 31 bytes")
	PAHeaderOffset = 39 // header byte 0xb3
	PAOffset       = 40 // 64-bit PA payload
	TSHeaderOffset = 55 // header byte 0x71
	TSOffset       = 56 // 64-bit timestamp payload (paper: "56-byte offset")
)

// Event bits carried by the events packet. These mirror the SPE
// events used for memory-centric filtering (latency/event/level,
// Fig. 1 stage 3).
const (
	EvRetired     uint16 = 1 << 1 // instruction architecturally retired
	EvL1Refill    uint16 = 1 << 2 // L1D refill (L1 miss)
	EvTLBWalk     uint16 = 1 << 3 // translation table walk
	EvNotTaken    uint16 = 1 << 6 // conditional not taken (branches)
	EvMispredict  uint16 = 1 << 7 // branch mispredicted
	EvLLCAccess   uint16 = 1 << 8 // last-level cache access
	EvLLCMiss     uint16 = 1 << 9 // last-level cache miss
	EvRemote      uint16 = 1 << 10
	EvPartialPred uint16 = 1 << 11
	EvEmptyPred   uint16 = 1 << 12
)

// Op subtypes carried in the op-type packet payload.
const (
	OpLoad  = 0x00
	OpStore = 0x01
	// OpAtomic marks load-exclusive / atomic RMW operations.
	OpAtomic = 0x02
)

// Data-source payload values: which memory level served the access.
const (
	SourceL1   = 0x00
	SourceL2   = 0x08
	SourceSLC  = 0x09
	SourceDRAM = 0x0d
)

// Record is the decoded form of one SPE sample record.
type Record struct {
	PC       uint64
	VA       uint64
	PA       uint64 // zero unless PA collection enabled
	TS       uint64 // raw SPE timer value (pre timescale conversion)
	Events   uint16
	IssueLat uint16
	TotalLat uint16
	XlatLat  uint16
	Op       uint8 // OpLoad / OpStore / OpAtomic
	Source   uint8 // SourceL1 / SourceL2 / SourceSLC / SourceDRAM
}

// IsStore reports whether the record describes a store.
func (r *Record) IsStore() bool { return r.Op == OpStore }

func (r *Record) String() string {
	return fmt.Sprintf("spe{pc=%#x va=%#x ts=%d op=%d src=%d lat=%d ev=%#x}",
		r.PC, r.VA, r.TS, r.Op, r.Source, r.TotalLat, r.Events)
}

// Encode writes the record into dst, which must be at least RecordSize
// bytes. It returns the number of bytes written (always RecordSize).
func Encode(dst []byte, r *Record) int {
	_ = dst[RecordSize-1] // bounds hint
	for i := 0; i < RecordSize; i++ {
		dst[i] = HdrPadding
	}
	dst[PCOffset] = HdrPC
	binary.LittleEndian.PutUint64(dst[PCOffset+1:], r.PC)
	dst[OpTypeOffset] = HdrOpType
	dst[OpTypeOffset+1] = r.Op
	dst[EventsOffset] = HdrEvents
	binary.LittleEndian.PutUint16(dst[EventsOffset+1:], r.Events)
	dst[SourceOffset] = HdrDataSource
	dst[SourceOffset+1] = r.Source
	dst[LatIssueOffset] = HdrLatIssue
	binary.LittleEndian.PutUint16(dst[LatIssueOffset+1:], r.IssueLat)
	dst[LatTotalOffset] = HdrLatTotal
	binary.LittleEndian.PutUint16(dst[LatTotalOffset+1:], r.TotalLat)
	dst[LatXlatOffset] = HdrLatXlat
	binary.LittleEndian.PutUint16(dst[LatXlatOffset+1:], r.XlatLat)
	dst[VAHeaderOffset] = HdrDataVA
	binary.LittleEndian.PutUint64(dst[VAOffset:], r.VA)
	dst[PAHeaderOffset] = HdrDataPA
	binary.LittleEndian.PutUint64(dst[PAOffset:], r.PA)
	dst[TSHeaderOffset] = HdrTimestamp
	binary.LittleEndian.PutUint64(dst[TSOffset:], r.TS)
	return RecordSize
}

// Decode errors.
var (
	// ErrShort means the buffer holds less than one full record.
	ErrShort = errors.New("spepkt: buffer shorter than one record")
	// ErrBadVAHeader means the byte at offset 30 is not 0xb2.
	ErrBadVAHeader = errors.New("spepkt: missing 0xb2 virtual-address header")
	// ErrBadTSHeader means the byte at offset 55 is not 0x71.
	ErrBadTSHeader = errors.New("spepkt: missing 0x71 timestamp header")
	// ErrZeroVA means the virtual address payload is zero.
	ErrZeroVA = errors.New("spepkt: zero virtual address")
	// ErrZeroTS means the timestamp payload is zero.
	ErrZeroTS = errors.New("spepkt: zero timestamp")
)

// Decode parses one record from src. Invalid records return an error
// identifying the first check that failed; callers implementing NMO's
// skip-on-invalid policy treat any error other than ErrShort as "skip
// this record and continue".
func Decode(src []byte, r *Record) error {
	if len(src) < RecordSize {
		return ErrShort
	}
	if src[VAHeaderOffset] != HdrDataVA {
		return ErrBadVAHeader
	}
	if src[TSHeaderOffset] != HdrTimestamp {
		return ErrBadTSHeader
	}
	va := binary.LittleEndian.Uint64(src[VAOffset:])
	if va == 0 {
		return ErrZeroVA
	}
	ts := binary.LittleEndian.Uint64(src[TSOffset:])
	if ts == 0 {
		return ErrZeroTS
	}
	r.VA = va
	r.TS = ts
	if src[PAHeaderOffset] == HdrDataPA {
		r.PA = binary.LittleEndian.Uint64(src[PAOffset:])
	} else {
		r.PA = 0
	}
	if src[PCOffset] == HdrPC {
		r.PC = binary.LittleEndian.Uint64(src[PCOffset+1:])
	} else {
		r.PC = 0
	}
	if src[OpTypeOffset] == HdrOpType {
		r.Op = src[OpTypeOffset+1]
	} else {
		r.Op = OpLoad
	}
	if src[EventsOffset] == HdrEvents {
		r.Events = binary.LittleEndian.Uint16(src[EventsOffset+1:])
	} else {
		r.Events = 0
	}
	if src[SourceOffset] == HdrDataSource {
		r.Source = src[SourceOffset+1]
	} else {
		r.Source = 0
	}
	if src[LatIssueOffset] == HdrLatIssue {
		r.IssueLat = binary.LittleEndian.Uint16(src[LatIssueOffset+1:])
	} else {
		r.IssueLat = 0
	}
	if src[LatTotalOffset] == HdrLatTotal {
		r.TotalLat = binary.LittleEndian.Uint16(src[LatTotalOffset+1:])
	} else {
		r.TotalLat = 0
	}
	if src[LatXlatOffset] == HdrLatXlat {
		r.XlatLat = binary.LittleEndian.Uint16(src[LatXlatOffset+1:])
	} else {
		r.XlatLat = 0
	}
	return nil
}

// DecodeStats counts the outcomes of a DecodeAll pass.
type DecodeStats struct {
	Valid   int // records decoded successfully
	Skipped int // records skipped by the invalid-packet policy
	Partial int // trailing bytes not forming a whole record
}

// DecodeAll walks a byte span of concatenated records, invoking fn for
// each valid record and skipping invalid ones (NMO's policy: a record
// is skipped if the 0xb2/0x71 headers are wrong or the VA/TS is zero).
// fn may retain the *Record only for the duration of the call.
func DecodeAll(src []byte, fn func(*Record)) DecodeStats {
	var st DecodeStats
	var rec Record
	for len(src) >= RecordSize {
		if err := Decode(src[:RecordSize], &rec); err != nil {
			st.Skipped++
		} else {
			st.Valid++
			fn(&rec)
		}
		src = src[RecordSize:]
	}
	st.Partial = len(src)
	return st
}

// SourceForLevel maps a memsim-style hierarchy level index (0=L1,
// 1=L2, 2=SLC, 3=DRAM) to the SPE data-source payload value.
func SourceForLevel(level uint8) uint8 {
	switch level {
	case 0:
		return SourceL1
	case 1:
		return SourceL2
	case 2:
		return SourceSLC
	default:
		return SourceDRAM
	}
}

// EventsForOutcome builds the events bitmask for a sample given the
// hierarchy outcome.
func EventsForOutcome(level uint8, tlbMiss, remote bool) uint16 {
	ev := EvRetired
	if level >= 1 {
		ev |= EvL1Refill
	}
	if level >= 2 {
		ev |= EvLLCAccess
	}
	if level >= 3 {
		ev |= EvLLCAccess | EvLLCMiss
	}
	if tlbMiss {
		ev |= EvTLBWalk
	}
	if remote {
		ev |= EvRemote
	}
	return ev
}
