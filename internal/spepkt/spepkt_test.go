package spepkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleRecord() Record {
	return Record{
		PC:       0x400ab0,
		VA:       0x7f00_1234_5678,
		PA:       0x8_0000_1234,
		TS:       987654321,
		Events:   EvRetired | EvL1Refill | EvLLCMiss,
		IssueLat: 3,
		TotalLat: 214,
		XlatLat:  28,
		Op:       OpStore,
		Source:   SourceDRAM,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := sampleRecord()
	buf := make([]byte, RecordSize)
	if n := Encode(buf, &in); n != RecordSize {
		t.Fatalf("Encode returned %d, want %d", n, RecordSize)
	}
	var out Record
	if err := Decode(buf, &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out != in {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestPaperOffsets(t *testing.T) {
	// The paper states: VA is a 64-bit value at offset 31 prefaced by
	// 0xb2; the timestamp is a 64-bit value at offset 56 (the end of
	// the 64-byte record) prefaced by 0x71. Pin those facts.
	in := sampleRecord()
	buf := make([]byte, RecordSize)
	Encode(buf, &in)

	if buf[30] != 0xb2 {
		t.Errorf("byte 30 = %#x, want 0xb2", buf[30])
	}
	if buf[55] != 0x71 {
		t.Errorf("byte 55 = %#x, want 0x71", buf[55])
	}
	va := uint64(0)
	for i := 7; i >= 0; i-- {
		va = va<<8 | uint64(buf[31+i])
	}
	if va != in.VA {
		t.Errorf("VA at offset 31 = %#x, want %#x", va, in.VA)
	}
	ts := uint64(0)
	for i := 7; i >= 0; i-- {
		ts = ts<<8 | uint64(buf[56+i])
	}
	if ts != in.TS {
		t.Errorf("TS at offset 56 = %d, want %d", ts, in.TS)
	}
	if TSOffset+8 != RecordSize {
		t.Error("timestamp must end exactly at the record boundary")
	}
}

func TestDecodeRejectsBadHeaders(t *testing.T) {
	in := sampleRecord()
	buf := make([]byte, RecordSize)

	Encode(buf, &in)
	buf[VAHeaderOffset] = 0x00
	var out Record
	if err := Decode(buf, &out); err != ErrBadVAHeader {
		t.Errorf("bad VA header: err = %v, want ErrBadVAHeader", err)
	}

	Encode(buf, &in)
	buf[TSHeaderOffset] = 0xff
	if err := Decode(buf, &out); err != ErrBadTSHeader {
		t.Errorf("bad TS header: err = %v, want ErrBadTSHeader", err)
	}
}

func TestDecodeRejectsZeroFields(t *testing.T) {
	buf := make([]byte, RecordSize)
	var out Record

	in := sampleRecord()
	in.VA = 0
	Encode(buf, &in)
	if err := Decode(buf, &out); err != ErrZeroVA {
		t.Errorf("zero VA: err = %v, want ErrZeroVA", err)
	}

	in = sampleRecord()
	in.TS = 0
	Encode(buf, &in)
	if err := Decode(buf, &out); err != ErrZeroTS {
		t.Errorf("zero TS: err = %v, want ErrZeroTS", err)
	}
}

func TestDecodeShort(t *testing.T) {
	var out Record
	if err := Decode(make([]byte, RecordSize-1), &out); err != ErrShort {
		t.Errorf("short buffer: err = %v, want ErrShort", err)
	}
}

func TestDecodeToleratesMissingOptionalPackets(t *testing.T) {
	// Only the VA and TS packets are mandatory; a record with the
	// rest zeroed (padding) must decode with zero-valued fields.
	buf := make([]byte, RecordSize)
	buf[VAHeaderOffset] = HdrDataVA
	buf[VAOffset] = 0x42
	buf[TSHeaderOffset] = HdrTimestamp
	buf[TSOffset] = 0x07
	var out Record
	if err := Decode(buf, &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.VA != 0x42 || out.TS != 0x07 {
		t.Errorf("VA/TS = %#x/%d", out.VA, out.TS)
	}
	if out.PC != 0 || out.Events != 0 || out.TotalLat != 0 {
		t.Errorf("optional fields not zero: %+v", out)
	}
}

func TestDecodeAll(t *testing.T) {
	var stream bytes.Buffer
	buf := make([]byte, RecordSize)
	valid := sampleRecord()

	for i := 0; i < 3; i++ {
		r := valid
		r.VA = uint64(0x1000 * (i + 1))
		Encode(buf, &r)
		stream.Write(buf)
	}
	// One corrupted record in the middle of the trace.
	bad := valid
	Encode(buf, &bad)
	buf[VAHeaderOffset] = 0x33
	stream.Write(buf)
	// One more valid, then trailing garbage shorter than a record.
	Encode(buf, &valid)
	stream.Write(buf)
	stream.Write([]byte{1, 2, 3})

	var vas []uint64
	st := DecodeAll(stream.Bytes(), func(r *Record) { vas = append(vas, r.VA) })
	if st.Valid != 4 || st.Skipped != 1 || st.Partial != 3 {
		t.Errorf("stats = %+v, want {4 1 3}", st)
	}
	if len(vas) != 4 || vas[0] != 0x1000 || vas[3] != valid.VA {
		t.Errorf("decoded VAs = %#v", vas)
	}
}

func TestDecodeAllEmpty(t *testing.T) {
	st := DecodeAll(nil, func(*Record) { t.Fatal("callback on empty input") })
	if st.Valid != 0 || st.Skipped != 0 || st.Partial != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSourceForLevel(t *testing.T) {
	cases := map[uint8]uint8{0: SourceL1, 1: SourceL2, 2: SourceSLC, 3: SourceDRAM, 9: SourceDRAM}
	for level, want := range cases {
		if got := SourceForLevel(level); got != want {
			t.Errorf("SourceForLevel(%d) = %#x, want %#x", level, got, want)
		}
	}
}

func TestEventsForOutcome(t *testing.T) {
	if ev := EventsForOutcome(0, false, false); ev != EvRetired {
		t.Errorf("L1 hit events = %#x, want retired only", ev)
	}
	ev := EventsForOutcome(3, true, false)
	for _, want := range []uint16{EvRetired, EvL1Refill, EvLLCAccess, EvLLCMiss, EvTLBWalk} {
		if ev&want == 0 {
			t.Errorf("DRAM+TLB-miss events %#x missing bit %#x", ev, want)
		}
	}
	if ev := EventsForOutcome(1, false, false); ev&EvLLCMiss != 0 {
		t.Errorf("L2 hit should not set LLC miss: %#x", ev)
	}
	if ev := EventsForOutcome(3, false, true); ev&EvRemote == 0 {
		t.Errorf("remote access events %#x missing remote bit", ev)
	}
	if ev := EventsForOutcome(3, false, false); ev&EvRemote != 0 {
		t.Errorf("local access carries remote bit: %#x", ev)
	}
}

func TestIsStore(t *testing.T) {
	r := Record{Op: OpStore}
	if !r.IsStore() {
		t.Error("OpStore.IsStore() = false")
	}
	r.Op = OpLoad
	if r.IsStore() {
		t.Error("OpLoad.IsStore() = true")
	}
}

// Property: every encoded record decodes to the same record, for
// arbitrary field values (nonzero VA/TS).
func TestRoundTripProperty(t *testing.T) {
	f := func(pc, va, pa, ts uint64, ev, il, tl, xl uint16, op, src uint8) bool {
		if va == 0 {
			va = 1
		}
		if ts == 0 {
			ts = 1
		}
		in := Record{PC: pc, VA: va, PA: pa, TS: ts, Events: ev,
			IssueLat: il, TotalLat: tl, XlatLat: xl, Op: op, Source: src}
		buf := make([]byte, RecordSize)
		Encode(buf, &in)
		var out Record
		if err := Decode(buf, &out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DecodeAll valid+skipped always equals the number of whole
// records in the input.
func TestDecodeAllConservationProperty(t *testing.T) {
	f := func(raw []byte) bool {
		n := 0
		st := DecodeAll(raw, func(*Record) { n++ })
		whole := len(raw) / RecordSize
		return st.Valid+st.Skipped == whole &&
			st.Partial == len(raw)%RecordSize &&
			n == st.Valid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordString(t *testing.T) {
	r := sampleRecord()
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}

func BenchmarkEncode(b *testing.B) {
	r := sampleRecord()
	buf := make([]byte, RecordSize)
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		Encode(buf, &r)
	}
}

func BenchmarkDecode(b *testing.B) {
	r := sampleRecord()
	buf := make([]byte, RecordSize)
	Encode(buf, &r)
	var out Record
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		if err := Decode(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}
