package machine

import (
	"fmt"

	"nmo/internal/isa"
	"nmo/internal/memsim"
	"nmo/internal/sim"
)

// Probe observes every operation executed on a core and may charge
// extra cycles to it (interrupt time). The perf subsystem's events
// implement this interface.
type Probe interface {
	OnOp(now sim.Cycles, op *isa.Op, lat uint32, level uint8, tlbMiss, remote bool) sim.Cycles
}

// MarkerFunc receives annotation pseudo-ops (nmo_start / nmo_stop /
// alloc updates) as the cores execute them.
type MarkerFunc func(core int, now sim.Cycles, op *isa.Op)

// TickFunc is called once per quantum with the quantum's end time;
// collectors (bandwidth, capacity) subsample from here.
type TickFunc func(now sim.Cycles)

// CoreStats summarizes one core's execution.
type CoreStats struct {
	Cycles  sim.Cycles // local completion time
	Ops     uint64     // operations executed (markers excluded)
	MemOps  uint64     // architectural memory accesses (block = lines)
	Flops   uint64     // floating-point operations (SIMD lanes)
	Levels  [memsim.NumLevels]uint64
	TLBMiss uint64
}

// core is one simulated hardware thread.
type core struct {
	id     int
	hier   *memsim.Hierarchy
	stream isa.Stream
	probes []Probe

	cycles sim.Cycles
	done   bool

	// retireAt is the completion time of the youngest long-latency
	// operation: retirement is in-order, so any operation issued while
	// a miss is outstanding completes no earlier than the miss. SPE
	// tracks sampled operations to *completion*, which is why, on a
	// bandwidth-saturated core, even cheap operations show hundreds of
	// cycles of tracked latency — the mechanism behind the paper's
	// sample-collision collapse at small sampling periods (§VII-A).
	retireAt sim.Cycles

	buf    []isa.Op
	bufPos int
	bufLen int

	stats CoreStats
}

// Machine is the simulated platform.
type Machine struct {
	spec  Spec
	cores []*core
	slc   *memsim.Cache
	dram  *memsim.DRAM
	numa  *memsim.NUMADomain // nil for single-node machines

	now      sim.Cycles
	markerFn MarkerFunc
	ticks    []TickFunc

	rss    uint64 // current resident set, from alloc/free markers
	maxRSS uint64
}

// New constructs a machine. Zero spec fields fall back to the Altra
// defaults.
func New(spec Spec) *Machine {
	spec = spec.normalize()
	m := &Machine{
		spec: spec,
		slc:  memsim.NewCache(spec.SLC),
		dram: memsim.NewDRAM(spec.DRAM),
	}
	if spec.NUMA.Nodes > 1 {
		m.numa = memsim.NewNUMADomain(spec.NUMA, spec.DRAM)
	}
	m.cores = make([]*core, spec.Cores)
	for i := range m.cores {
		h := &memsim.Hierarchy{
			L1:   memsim.NewCache(spec.L1),
			L2:   memsim.NewCache(spec.L2),
			TLB:  memsim.NewTLB(spec.TLBEntries, spec.PageBytes),
			SLC:  m.slc,
			DRAM: m.dram,
			Lat:  spec.Lat,
		}
		if m.numa != nil {
			h.NUMA = m.numa
			// Cores split evenly across sockets.
			h.NodeID = i * spec.NUMA.Nodes / spec.Cores
		}
		m.cores[i] = &core{id: i, hier: h, buf: make([]isa.Op, 4096)}
	}
	return m
}

// NUMA returns the socket domain (nil on single-node machines).
func (m *Machine) NUMA() *memsim.NUMADomain { return m.numa }

// Spec returns the platform description.
func (m *Machine) Spec() Spec { return m.spec }

// Now returns the global (quantum-aligned) simulated time.
func (m *Machine) Now() sim.Cycles { return m.now }

// DRAM exposes the shared memory device (traffic counters feed the
// bandwidth collector).
func (m *Machine) DRAM() *memsim.DRAM { return m.dram }

// RSS returns the current resident set size as reported by the
// workload's alloc/free markers, and the high-water mark.
func (m *Machine) RSS() (current, max uint64) { return m.rss, m.maxRSS }

// AttachProbe registers a per-op probe on a core.
func (m *Machine) AttachProbe(coreID int, p Probe) error {
	if coreID < 0 || coreID >= len(m.cores) {
		return fmt.Errorf("machine: core %d out of range (have %d)", coreID, len(m.cores))
	}
	m.cores[coreID].probes = append(m.cores[coreID].probes, p)
	return nil
}

// ClearProbes removes all probes (between baseline and profiled runs).
func (m *Machine) ClearProbes() {
	for _, c := range m.cores {
		c.probes = nil
	}
}

// SetMarkerFunc registers the annotation receiver.
func (m *Machine) SetMarkerFunc(fn MarkerFunc) { m.markerFn = fn }

// OnTick registers a per-quantum callback.
func (m *Machine) OnTick(fn TickFunc) { m.ticks = append(m.ticks, fn) }

// ClearTicks removes all per-quantum callbacks (between profiling
// sessions on a reused machine).
func (m *Machine) ClearTicks() { m.ticks = nil }

// RunResult summarizes a completed run.
type RunResult struct {
	// Wall is the completion time: the latest core finish time.
	Wall sim.Cycles
	// Cores holds per-core statistics for cores that ran a stream.
	Cores []CoreStats
	// TotalOps / TotalMemOps / TotalFlops aggregate over cores.
	TotalOps    uint64
	TotalMemOps uint64
	TotalFlops  uint64
	// DRAMBytes is total memory traffic.
	DRAMBytes uint64
	// MaxRSS is the workload's reported high-water resident set.
	MaxRSS uint64
}

// Run executes one stream per core (streams[i] on core i; nil entries
// idle). It resets per-run state (core clocks, caches, traffic
// counters) but keeps probes and callbacks attached.
func (m *Machine) Run(streams []isa.Stream) (RunResult, error) {
	if len(streams) > len(m.cores) {
		return RunResult{}, fmt.Errorf("machine: %d streams for %d cores",
			len(streams), len(m.cores))
	}
	m.reset()
	active := 0
	for i, s := range streams {
		m.cores[i].stream = s
		if s != nil {
			active++
		} else {
			m.cores[i].done = true
		}
	}
	for i := len(streams); i < len(m.cores); i++ {
		m.cores[i].done = true
	}
	if active == 0 {
		return RunResult{}, fmt.Errorf("machine: no streams to run")
	}

	running := active
	for running > 0 {
		qEnd := m.now + m.spec.Quantum
		for _, c := range m.cores {
			if c.done {
				continue
			}
			if m.runCore(c, qEnd) {
				running--
			}
		}
		m.now = qEnd
		for _, f := range m.ticks {
			f(m.now)
		}
	}

	res := RunResult{MaxRSS: m.maxRSS, DRAMBytes: m.dram.TotalBytes()}
	if m.numa != nil {
		res.DRAMBytes = m.numa.TotalBytes()
	}
	for i, s := range streams {
		if s == nil {
			continue
		}
		c := m.cores[i]
		c.stats.Levels = c.hier.LevelCounts()
		res.Cores = append(res.Cores, c.stats)
		res.TotalOps += c.stats.Ops
		res.TotalMemOps += c.stats.MemOps
		res.TotalFlops += c.stats.Flops
		if c.stats.Cycles > res.Wall {
			res.Wall = c.stats.Cycles
		}
	}
	return res, nil
}

// reset prepares per-run state.
func (m *Machine) reset() {
	m.now = 0
	m.rss, m.maxRSS = 0, 0
	m.slc.Reset()
	m.dram.Reset()
	if m.numa != nil {
		m.numa.Reset()
	}
	for _, c := range m.cores {
		c.hier.Reset()
		c.cycles = 0
		c.retireAt = 0
		c.done = false
		c.stream = nil
		c.bufPos, c.bufLen = 0, 0
		c.stats = CoreStats{}
	}
}

// runCore advances one core to qEnd. Returns true when the core's
// stream finished during this quantum.
func (m *Machine) runCore(c *core, qEnd sim.Cycles) (finished bool) {
	// A core that stalled past the quantum boundary (long DRAM queue,
	// IRQ charge) resumes only once time catches up.
	for c.cycles < qEnd {
		if c.bufPos == c.bufLen {
			c.bufLen = c.stream.Fill(c.buf)
			c.bufPos = 0
			if c.bufLen == 0 {
				c.done = true
				c.stats.Cycles = c.cycles
				return true
			}
		}
		op := &c.buf[c.bufPos]
		c.bufPos++
		m.execOp(c, op)
	}
	return false
}

// execOp executes a single operation on core c, charging cycle costs
// and invoking probes.
func (m *Machine) execOp(c *core, op *isa.Op) {
	if op.Kind == isa.KindMarker {
		if op.Marker == isa.MarkerAlloc || op.Marker == isa.MarkerFree {
			m.rss = op.Addr
			if m.rss > m.maxRSS {
				m.maxRSS = m.rss
			}
		}
		if m.markerFn != nil {
			m.markerFn(c.id, c.cycles, op)
		}
		return
	}

	var lat uint32
	var level uint8
	var tlbMiss, remote bool
	var cost sim.Cycles

	switch op.Kind {
	case isa.KindLoad, isa.KindStore:
		r := c.hier.Access(c.cycles, op.Addr, op.Size, op.Kind.IsWrite())
		lat, level, tlbMiss, remote = r.Latency, uint8(r.Level), r.TLBMiss, r.Remote
		if r.TLBMiss {
			c.stats.TLBMiss++
		}
		c.stats.MemOps++
		// Overlap model: the unloaded part of a miss (device latency,
		// tail) is overlapped MLP-wide by out-of-order execution;
		// queue wait is free up to the hide window (prefetch depth),
		// and the excess beyond it stalls the core — but that stall is
		// also shared by the MLP outstanding misses that wait
		// concurrently, so it is amortized the same way. This negative
		// feedback is what pins the DRAM queue near the hide window
		// under saturation (DESIGN.md §4).
		unloaded := lat - r.WaitCycles
		if hide := m.spec.DRAM.HideCycles; hide > 0 && unloaded > hide {
			unloaded = hide
		}
		cost = sim.Cycles(1 + (unloaded+r.StallCycles)/m.spec.MLP)
	case isa.KindBlockLoad, isa.KindBlockStore:
		r := c.hier.Stream(c.cycles, op.Size, op.Kind.IsWrite())
		lat, level = r.Latency, uint8(r.Level)
		lines := uint64(op.Size) / 64
		if lines == 0 {
			lines = 1
		}
		c.stats.MemOps += lines
		// A block transfer occupies the core for its full completion
		// latency (wire time + queue wait are inside lat).
		cost = sim.Cycles(lat)
	case isa.KindSIMD:
		c.stats.Flops += 4 // 4 lanes per vector op
		cost, lat = 1, 1
	case isa.KindDelay:
		// Bulk compute: op.Addr cycles of scalar work in one op.
		cost, lat = sim.Cycles(op.Addr), 1
		if op.Addr > 1 {
			c.stats.Ops += op.Addr - 1 // the final ++ adds the last one
		}
	default: // ALU, branch
		cost, lat = 1, 1
	}

	c.stats.Ops++
	now := c.cycles

	// In-order retirement: this op completes when both its own
	// pipeline latency has elapsed and every older op has retired.
	completion := now + sim.Cycles(lat)
	if c.retireAt > completion {
		completion = c.retireAt
	}
	c.retireAt = completion
	tracked := uint32(completion - now)

	// Reorder-buffer limit: when the retirement backlog exceeds the
	// ROB window, the frontend stalls until it drains back under.
	if rob := m.spec.ROBWindow; rob > 0 && tracked > rob {
		cost += sim.Cycles(tracked - rob)
	}

	c.cycles += cost
	for _, p := range c.probes {
		c.cycles += p.OnOp(now, op, tracked, level, tlbMiss, remote)
	}
}
