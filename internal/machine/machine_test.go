package machine

import (
	"testing"

	"nmo/internal/isa"
	"nmo/internal/memsim"
	"nmo/internal/sim"
)

func smallSpec(cores int) Spec {
	s := AmpereAltraMax().WithCores(cores)
	s.Quantum = 256
	return s
}

func seqLoads(n int, base, stride uint64) *isa.SliceStream {
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Kind: isa.KindLoad, Addr: base + uint64(i)*stride, Size: 8, PC: 0x40}
	}
	return &isa.SliceStream{Ops: ops}
}

func TestAmpereSpecMatchesTable2(t *testing.T) {
	s := AmpereAltraMax()
	if s.Cores != 128 {
		t.Errorf("cores = %d, want 128", s.Cores)
	}
	if s.Freq.Hz != 3_000_000_000 {
		t.Errorf("freq = %d, want 3 GHz", s.Freq.Hz)
	}
	if s.L1.SizeBytes != 64<<10 || s.L2.SizeBytes != 1<<20 || s.SLC.SizeBytes != 16<<20 {
		t.Errorf("cache sizes = %d/%d/%d", s.L1.SizeBytes, s.L2.SizeBytes, s.SLC.SizeBytes)
	}
	if s.MemCapacityBytes != 256<<30 {
		t.Errorf("capacity = %d, want 256 GB", s.MemCapacityBytes)
	}
	if s.PageBytes != 64<<10 {
		t.Errorf("page = %d, want 64 KB", s.PageBytes)
	}
	// 200 GB/s at 3 GHz.
	bw := s.DRAM.PeakBytesPerCycle * float64(s.Freq.Hz)
	if bw < 195e9 || bw > 205e9 {
		t.Errorf("peak bandwidth = %.1f GB/s, want ~200", bw/1e9)
	}
}

func TestRunSingleCore(t *testing.T) {
	m := New(smallSpec(2))
	res, err := m.Run([]isa.Stream{seqLoads(10000, 0, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 10000 || res.TotalMemOps != 10000 {
		t.Errorf("ops = %d/%d, want 10000", res.TotalOps, res.TotalMemOps)
	}
	if res.Wall == 0 {
		t.Error("zero wall time")
	}
	if res.DRAMBytes == 0 {
		t.Error("streaming loads produced no DRAM traffic")
	}
	if len(res.Cores) != 1 {
		t.Errorf("core stats = %d entries", len(res.Cores))
	}
}

func TestRunNoStreamsErrors(t *testing.T) {
	m := New(smallSpec(1))
	if _, err := m.Run(nil); err == nil {
		t.Error("Run(nil) succeeded")
	}
	if _, err := m.Run([]isa.Stream{nil}); err == nil {
		t.Error("Run([nil]) succeeded")
	}
	if _, err := m.Run(make([]isa.Stream, 5)); err == nil {
		t.Error("more streams than cores accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() RunResult {
		m := New(smallSpec(4))
		streams := []isa.Stream{
			seqLoads(5000, 0, 64),
			seqLoads(5000, 1<<30, 64),
			seqLoads(5000, 2<<30, 64),
			seqLoads(5000, 3<<30, 64),
		}
		res, err := m.Run(streams)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Wall != b.Wall || a.DRAMBytes != b.DRAMBytes {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestCacheHitsCheaperThanMisses(t *testing.T) {
	m := New(smallSpec(1))
	// Hot loop: 10k accesses to one line.
	hot := make([]isa.Op, 10000)
	for i := range hot {
		hot[i] = isa.Op{Kind: isa.KindLoad, Addr: 0x1000, Size: 8}
	}
	resHot, _ := m.Run([]isa.Stream{&isa.SliceStream{Ops: hot}})
	resCold, _ := m.Run([]isa.Stream{seqLoads(10000, 0, 4096)})
	if resHot.Wall >= resCold.Wall {
		t.Errorf("hot %d !< cold %d", resHot.Wall, resCold.Wall)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// Many cores streaming concurrently must stay at or below the
	// configured peak bandwidth.
	spec := smallSpec(16)
	m := New(spec)
	streams := make([]isa.Stream, 16)
	for i := range streams {
		streams[i] = seqLoads(50000, uint64(i)<<32, 64)
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	bpc := float64(res.DRAMBytes) / float64(res.Wall)
	if bpc > spec.DRAM.PeakBytesPerCycle*1.3 {
		t.Errorf("achieved %.1f B/cyc exceeds peak %.1f", bpc, spec.DRAM.PeakBytesPerCycle)
	}
	if res.DRAMBytes < 16*50000*64 {
		t.Errorf("DRAM traffic %d less than the working set", res.DRAMBytes)
	}
}

func TestContentionSlowsCores(t *testing.T) {
	// One core streaming alone vs the same stream with 31 others:
	// 32 streaming cores demand ~82 B/cyc against a 66.7 B/cyc peak,
	// so queueing must lengthen the run.
	solo := New(smallSpec(32))
	resSolo, _ := solo.Run([]isa.Stream{seqLoads(50000, 0, 64)})

	crowd := New(smallSpec(32))
	streams := make([]isa.Stream, 32)
	for i := range streams {
		streams[i] = seqLoads(50000, uint64(i)<<32, 64)
	}
	resCrowd, _ := crowd.Run(streams)
	if resCrowd.Wall <= resSolo.Wall {
		t.Errorf("32-way run (%d cyc) not slower than solo (%d cyc)",
			resCrowd.Wall, resSolo.Wall)
	}
}

func TestMarkersAndRSS(t *testing.T) {
	m := New(smallSpec(1))
	ops := []isa.Op{
		{Kind: isa.KindMarker, Marker: isa.MarkerAlloc, Addr: 1 << 30},
		{Kind: isa.KindMarker, Marker: isa.MarkerStart, Label: 3},
		{Kind: isa.KindLoad, Addr: 0x10, Size: 8},
		{Kind: isa.KindMarker, Marker: isa.MarkerStop, Label: 3},
		{Kind: isa.KindMarker, Marker: isa.MarkerFree, Addr: 1 << 20},
	}
	var seen []isa.MarkerKind
	m.SetMarkerFunc(func(core int, now sim.Cycles, op *isa.Op) {
		seen = append(seen, op.Marker)
	})
	res, err := m.Run([]isa.Stream{&isa.SliceStream{Ops: ops}})
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.MarkerKind{isa.MarkerAlloc, isa.MarkerStart, isa.MarkerStop, isa.MarkerFree}
	if len(seen) != len(want) {
		t.Fatalf("markers seen = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("marker %d = %v, want %v", i, seen[i], want[i])
		}
	}
	if res.MaxRSS != 1<<30 {
		t.Errorf("MaxRSS = %d, want %d", res.MaxRSS, 1<<30)
	}
	cur, _ := m.RSS()
	if cur != 1<<20 {
		t.Errorf("final RSS = %d, want %d", cur, 1<<20)
	}
	// Markers execute for free and don't count as ops.
	if res.TotalOps != 1 {
		t.Errorf("TotalOps = %d, want 1 (markers excluded)", res.TotalOps)
	}
}

// chargeProbe charges a fixed penalty on every Nth op.
type chargeProbe struct {
	n       int
	seen    int
	penalty sim.Cycles
	memOps  uint64
}

func (p *chargeProbe) OnOp(now sim.Cycles, op *isa.Op, lat uint32, level uint8, tlb, remote bool) sim.Cycles {
	p.seen++
	if op.Kind.IsMemory() {
		p.memOps++
	}
	if p.n > 0 && p.seen%p.n == 0 {
		return p.penalty
	}
	return 0
}

func TestProbeChargesCycles(t *testing.T) {
	base := New(smallSpec(1))
	resBase, _ := base.Run([]isa.Stream{seqLoads(10000, 0, 64)})

	m := New(smallSpec(1))
	probe := &chargeProbe{n: 10, penalty: 100}
	if err := m.AttachProbe(0, probe); err != nil {
		t.Fatal(err)
	}
	res, _ := m.Run([]isa.Stream{seqLoads(10000, 0, 64)})
	if probe.seen != 10000 {
		t.Errorf("probe saw %d ops", probe.seen)
	}
	extra := int64(res.Wall) - int64(resBase.Wall)
	wantExtra := int64(1000 * 100)
	if extra < wantExtra*8/10 || extra > wantExtra*12/10 {
		t.Errorf("probe penalty changed wall by %d, want ~%d", extra, wantExtra)
	}
}

func TestAttachProbeValidation(t *testing.T) {
	m := New(smallSpec(2))
	if err := m.AttachProbe(5, &chargeProbe{}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := m.AttachProbe(-1, &chargeProbe{}); err == nil {
		t.Error("negative core accepted")
	}
	if err := m.AttachProbe(1, &chargeProbe{}); err != nil {
		t.Errorf("valid attach failed: %v", err)
	}
	m.ClearProbes()
	res, _ := m.Run([]isa.Stream{seqLoads(100, 0, 64), seqLoads(100, 1<<30, 64)})
	if res.TotalOps != 200 {
		t.Errorf("ops = %d", res.TotalOps)
	}
}

func TestTicksFire(t *testing.T) {
	m := New(smallSpec(1))
	var ticks []sim.Cycles
	m.OnTick(func(now sim.Cycles) { ticks = append(ticks, now) })
	m.Run([]isa.Stream{seqLoads(5000, 0, 64)})
	if len(ticks) == 0 {
		t.Fatal("no ticks")
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not monotone")
		}
	}
	if ticks[0] != m.Spec().Quantum {
		t.Errorf("first tick at %d, want one quantum (%d)", ticks[0], m.Spec().Quantum)
	}
}

func TestBlockOpsMoveBulkTraffic(t *testing.T) {
	m := New(smallSpec(1))
	ops := []isa.Op{
		{Kind: isa.KindBlockStore, Addr: 0, Size: 1 << 20},
		{Kind: isa.KindBlockLoad, Addr: 1 << 30, Size: 1 << 20},
	}
	res, err := m.Run([]isa.Stream{&isa.SliceStream{Ops: ops}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMBytes != 2<<20 {
		t.Errorf("DRAM bytes = %d, want %d", res.DRAMBytes, 2<<20)
	}
	if res.TotalMemOps != 2*(1<<20)/64 {
		t.Errorf("mem ops = %d, want %d lines", res.TotalMemOps, 2*(1<<20)/64)
	}
	// Wire time: 2 MB at ~66.7 B/cyc is ~31k cycles minimum.
	if res.Wall < 30000 {
		t.Errorf("wall = %d, too fast for 2 MB", res.Wall)
	}
}

func TestFlopsCounted(t *testing.T) {
	m := New(smallSpec(1))
	ops := make([]isa.Op, 100)
	for i := range ops {
		ops[i] = isa.Op{Kind: isa.KindSIMD}
	}
	res, _ := m.Run([]isa.Stream{&isa.SliceStream{Ops: ops}})
	if res.TotalFlops != 400 {
		t.Errorf("flops = %d, want 400 (4 lanes)", res.TotalFlops)
	}
}

func TestRunResetsBetweenRuns(t *testing.T) {
	m := New(smallSpec(1))
	r1, _ := m.Run([]isa.Stream{seqLoads(1000, 0, 64)})
	r2, _ := m.Run([]isa.Stream{seqLoads(1000, 0, 64)})
	if r1.Wall != r2.Wall || r1.DRAMBytes != r2.DRAMBytes {
		t.Errorf("state leaked across runs: %+v vs %+v", r1, r2)
	}
}

func TestLevelCountsReported(t *testing.T) {
	m := New(smallSpec(1))
	ops := make([]isa.Op, 2000)
	for i := range ops {
		ops[i] = isa.Op{Kind: isa.KindLoad, Addr: 0x5000, Size: 8}
	}
	res, _ := m.Run([]isa.Stream{&isa.SliceStream{Ops: ops}})
	lv := res.Cores[0].Levels
	if lv[memsim.LevelL1] < 1990 {
		t.Errorf("L1 hits = %d, want ~1999", lv[memsim.LevelL1])
	}
	if lv[memsim.LevelDRAM] != 1 {
		t.Errorf("DRAM accesses = %d, want 1", lv[memsim.LevelDRAM])
	}
}

func TestWithHelpers(t *testing.T) {
	s := AmpereAltraMax().WithCores(8).WithFreq(1_000_000)
	if s.Cores != 8 || s.Freq.Hz != 1_000_000 {
		t.Errorf("helpers broken: %+v", s)
	}
	// normalize must not clobber explicit values.
	n := s.normalize()
	if n.Cores != 8 || n.Freq.Hz != 1_000_000 {
		t.Errorf("normalize clobbered: %+v", n)
	}
}

func TestNUMAMachineRemoteAccesses(t *testing.T) {
	spec := smallSpec(4)
	spec.NUMA = memsim.NUMAConfig{Nodes: 2, InterleaveBytes: 1 << 30, InterconnectLatency: 100}
	m := New(spec)
	if m.NUMA() == nil {
		t.Fatal("NUMA domain not constructed")
	}
	// Cores 0,1 on node 0; cores 2,3 on node 1. All cores stream from
	// the first GiB (node 0): half the machine accesses remotely.
	streams := make([]isa.Stream, 4)
	for i := range streams {
		streams[i] = seqLoads(20000, uint64(i)*4<<20, 64)
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	local, remote := m.NUMA().Traffic()
	if remote == 0 {
		t.Fatal("no remote accesses despite cross-node placement")
	}
	if local == 0 {
		t.Fatal("no local accesses")
	}
	frac := m.NUMA().RemoteFraction()
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("remote fraction = %v, want ~0.5", frac)
	}
	if res.DRAMBytes != (local+remote)*64 {
		t.Errorf("DRAMBytes = %d, want %d", res.DRAMBytes, (local+remote)*64)
	}
}

func TestNUMARemoteSlower(t *testing.T) {
	mk := func(nodes int) sim.Cycles {
		spec := smallSpec(2)
		spec.NUMA = memsim.NUMAConfig{Nodes: nodes, InterleaveBytes: 1 << 30,
			InterconnectLatency: 400}
		m := New(spec)
		// Core 1 (node 1 when nodes=2) streams node-0 memory.
		streams := []isa.Stream{nil, seqLoads(50000, 0, 64)}
		res, err := m.Run(streams)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	uma, numa := mk(1), mk(2)
	if numa <= uma {
		t.Errorf("remote run (%d) not slower than local (%d)", numa, uma)
	}
}

func TestIntelIceLakeSPSpec(t *testing.T) {
	s := IntelIceLakeSP()
	if s.Arch != isa.ArchX86 {
		t.Errorf("arch = %q", s.Arch)
	}
	if s.PageBytes != 4<<10 {
		t.Errorf("page = %d, want 4 KB", s.PageBytes)
	}
	// All cache geometries must construct (power-of-two set counts).
	m := New(s.WithCores(2))
	if m.Spec().Cores != 2 {
		t.Errorf("cores = %d", m.Spec().Cores)
	}
}

func TestSpecForArch(t *testing.T) {
	if SpecForArch(isa.ArchX86).Name != IntelIceLakeSP().Name {
		t.Error("x86 does not map to the Ice Lake part")
	}
	if SpecForArch(isa.ArchARM64).Name != AmpereAltraMax().Name {
		t.Error("arm64 does not map to the Altra")
	}
	if SpecForArch("").Arch != isa.ArchARM64 {
		t.Error("unknown arch must fall back to the ARM platform")
	}
}
