// Package machine implements the simulated multicore ARM system that
// NMO profiles: cores executing workload operation streams against the
// memsim hierarchy, with per-operation probe hooks for the perf
// subsystem and marker delivery for the NMO annotation API.
//
// The default Spec reproduces Table II of the paper (Ampere Altra Max:
// 128 Armv8.2+ cores at 3.0 GHz, 64 KB L1i/L1d and 1 MB L2 per core,
// 16 MB system level cache, 256 GB DDR4 at 200 GB/s peak, 64 KB
// pages).
//
// Execution is quantum-based and fully deterministic: within each
// quantum the cores run round-robin on a single goroutine, sharing the
// SLC and the DRAM bandwidth bucket. Cycle costs charge an out-of-
// order overlap model (a miss costs latency/MLP, not the full
// latency), while SPE tracks the *full* pipeline latency of sampled
// operations — the distinction matters: throughput is set by overlap,
// collisions by occupancy.
package machine

import (
	"nmo/internal/isa"
	"nmo/internal/memsim"
	"nmo/internal/sim"
)

// Spec describes the simulated hardware platform.
type Spec struct {
	// Name identifies the platform in reports.
	Name string
	// Arch is the instruction-set architecture (isa.ArchARM64 /
	// isa.ArchX86). It pins which sampling backend the platform
	// carries: SPE exists only on arm64, PEBS only on x86_64, so a
	// scenario is a (ISA × backend) point by construction.
	Arch string
	// Cores is the number of hardware threads.
	Cores int
	// Freq is the core clock.
	Freq sim.Freq
	// L1, L2 are per-core cache geometries; SLC is shared.
	L1, L2, SLC memsim.CacheConfig
	// TLBEntries is the per-core data TLB size.
	TLBEntries int
	// PageBytes is the system page size (64 KB on the testbed).
	PageBytes int
	// DRAM configures main memory (per NUMA node when NUMA is set).
	DRAM memsim.DRAMConfig
	// NUMA configures the socket topology (zero value = single node).
	NUMA memsim.NUMAConfig
	// Lat holds hierarchy hit latencies.
	Lat memsim.Latencies
	// MemCapacityBytes is the installed memory (capacity reporting).
	MemCapacityBytes uint64
	// MLP is the memory-level-parallelism divisor of the overlap
	// model: a miss of latency L charges L/MLP cycles to execution.
	MLP uint32
	// ROBWindow bounds the in-order retirement backlog in cycles:
	// once the oldest incomplete op is this far behind, the frontend
	// stalls (reorder buffer full) and the excess is charged to
	// execution time.
	ROBWindow uint32
	// Quantum is the scheduling/bandwidth-accounting granularity.
	Quantum sim.Cycles
}

// AmpereAltraMax returns the paper's Table II platform.
func AmpereAltraMax() Spec {
	return Spec{
		Name:       "ARM Ampere Altra Max 64-Bit (Neoverse V1-class)",
		Arch:       isa.ArchARM64,
		Cores:      128,
		Freq:       sim.Freq{Hz: 3_000_000_000},
		L1:         memsim.CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4},
		L2:         memsim.CacheConfig{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8},
		SLC:        memsim.CacheConfig{SizeBytes: 16 << 20, LineBytes: 64, Ways: 16},
		TLBEntries: 48,
		PageBytes:  64 << 10,
		DRAM: memsim.DRAMConfig{
			BaseLatency: 150,
			// 200 GB/s at 3 GHz ≈ 66.7 bytes/cycle.
			PeakBytesPerCycle: 66.7,
			HideCycles:        1600,
		},
		Lat:              memsim.DefaultLatencies(),
		MemCapacityBytes: 256 << 30,
		// A Neoverse-class OoO core overlaps ~20+ outstanding misses;
		// MLP 24 gives per-core streaming bandwidth near 10 GB/s,
		// matching Altra measurements, while SPE still tracks the full
		// per-access latency (including the DRAM tail) for sampling.
		MLP:       24,
		ROBWindow: 9_000,
		// Small enough that the round-robin skew on the shared DRAM
		// clock (bounded by one quantum) stays well below genuine
		// queueing delays.
		Quantum: 256,
	}
}

// IntelIceLakeSP returns an Intel Xeon Platinum 8380 (Ice Lake-SP)
// class platform: the x86 counterpart used for the SPE-vs-PEBS
// cross-ISA contrasts (the paper's §III portability claim; the
// SPE-vs-PEBS methodology of its ref. [8]). 40 cores at 2.3 GHz,
// 48 KB L1d and 1.25 MB L2 per core, 60 MB shared LLC, 8-channel
// DDR4-3200 (~205 GB/s peak), 4 KB pages.
func IntelIceLakeSP() Spec {
	return Spec{
		Name:  "Intel Xeon Platinum 8380 (Ice Lake-SP)",
		Arch:  isa.ArchX86,
		Cores: 40,
		Freq:  sim.Freq{Hz: 2_300_000_000},
		L1:    memsim.CacheConfig{SizeBytes: 48 << 10, LineBytes: 64, Ways: 12},
		L2:    memsim.CacheConfig{SizeBytes: 1280 << 10, LineBytes: 64, Ways: 20},
		// The 8380's LLC is 60 MB; the model rounds to the nearest
		// power-of-two set count (64 MB, 16-way).
		SLC:        memsim.CacheConfig{SizeBytes: 64 << 20, LineBytes: 64, Ways: 16},
		TLBEntries: 64,
		PageBytes:  4 << 10,
		DRAM: memsim.DRAMConfig{
			BaseLatency: 140,
			// ~205 GB/s at 2.3 GHz ≈ 89 bytes/cycle.
			PeakBytesPerCycle: 89.0,
			HideCycles:        1400,
		},
		Lat:              memsim.DefaultLatencies(),
		MemCapacityBytes: 256 << 30,
		// Sunny-Cove-class cores sustain a deep out-of-order miss
		// window; MLP 20 lands per-core streaming bandwidth in the
		// measured 12-15 GB/s range.
		MLP:       20,
		ROBWindow: 9_000,
		Quantum:   256,
	}
}

// SpecForArch returns the canonical platform of an ISA (isa.ArchARM64
// → the Altra, isa.ArchX86 → the Ice Lake part). It is the single
// backend-to-platform mapping: callers resolve a sampling backend to
// its native arch and look the platform up here.
func SpecForArch(arch string) Spec {
	if arch == isa.ArchX86 {
		return IntelIceLakeSP()
	}
	return AmpereAltraMax()
}

// WithCores returns a copy of the spec with a different core count
// (thread-sweep experiments use subsets of the 128-core part).
func (s Spec) WithCores(n int) Spec {
	s.Cores = n
	return s
}

// WithFreq returns a copy with a different clock. The phase-level
// CloudSuite runs scale the clock down so that two minutes of
// application time stays cheap to simulate; DESIGN.md §4 explains why
// this preserves the Fig. 2/3 shapes.
func (s Spec) WithFreq(hz uint64) Spec {
	s.Freq = sim.Freq{Hz: hz}
	return s
}

// normalize fills zero fields with Altra defaults so reduced specs in
// tests stay valid.
func (s Spec) normalize() Spec {
	d := AmpereAltraMax()
	if s.Arch == "" {
		s.Arch = d.Arch
	}
	if s.Cores == 0 {
		s.Cores = d.Cores
	}
	if s.Freq.Hz == 0 {
		s.Freq = d.Freq
	}
	if s.L1.SizeBytes == 0 {
		s.L1 = d.L1
	}
	if s.L2.SizeBytes == 0 {
		s.L2 = d.L2
	}
	if s.SLC.SizeBytes == 0 {
		s.SLC = d.SLC
	}
	if s.TLBEntries == 0 {
		s.TLBEntries = d.TLBEntries
	}
	if s.PageBytes == 0 {
		s.PageBytes = d.PageBytes
	}
	if s.DRAM.PeakBytesPerCycle == 0 {
		s.DRAM = d.DRAM
	}
	if s.Lat.L1 == 0 {
		s.Lat = d.Lat
	}
	if s.MemCapacityBytes == 0 {
		s.MemCapacityBytes = d.MemCapacityBytes
	}
	if s.MLP == 0 {
		s.MLP = d.MLP
	}
	if s.ROBWindow == 0 {
		s.ROBWindow = d.ROBWindow
	}
	if s.Quantum == 0 {
		s.Quantum = d.Quantum
	}
	return s
}
