package workloads

import (
	"fmt"

	"nmo/internal/isa"
	"nmo/internal/sim"
	"nmo/internal/xrand"
)

// Phase describes one execution phase of a phase-level workload: a
// duration, a target aggregate memory bandwidth, a resident-set
// trajectory, and a read/write mix. The phase engine turns a schedule
// of phases into per-thread op streams of 64 KB block transfers
// interleaved with compute (think-time) operations sized so the
// bandwidth timeline comes out as specified — while still flowing
// through the full machine/DRAM model, so saturation and contention
// remain emergent rather than scripted.
type Phase struct {
	// Name labels the phase (start/stop markers are emitted on
	// transitions by thread 0).
	Name string
	// Seconds is the phase duration in simulated seconds.
	Seconds float64
	// GBps is the target aggregate bandwidth in decimal GB/s.
	GBps float64
	// RSSStartGiB / RSSEndGiB give the resident set (GiB) at the
	// phase boundary; the engine interpolates linearly.
	RSSStartGiB float64
	RSSEndGiB   float64
	// WriteFrac is the fraction of block transfers that are stores.
	WriteFrac float64
	// JitterFrac adds deterministic pseudo-random variation to the
	// per-block think time (0.1 = ±10%).
	JitterFrac float64
}

// PhaseWorkload drives a schedule of phases across Threads streams.
type PhaseWorkload struct {
	name       string
	threads    int
	freq       sim.Freq
	phases     []Phase
	seed       uint64
	blockBytes uint32
	peakBps    float64 // device peak, bytes/second; pacing reference
	ingest     Region
	heap       Region
}

// DefaultBlockBytes is the default bulk-transfer granularity.
const DefaultBlockBytes = 64 << 10

// NewPhaseWorkload builds a phase-level workload. freq must match the
// machine the workload will run on: think-time conversion from seconds
// to cycles depends on it.
func NewPhaseWorkload(name string, threads int, freq sim.Freq, seed uint64, phases []Phase) *PhaseWorkload {
	if threads <= 0 || len(phases) == 0 || freq.Hz == 0 {
		panic(fmt.Sprintf("workloads: bad phase workload %q (threads=%d phases=%d)",
			name, threads, len(phases)))
	}
	var maxRSS float64
	for _, p := range phases {
		if p.RSSEndGiB > maxRSS {
			maxRSS = p.RSSEndGiB
		}
		if p.RSSStartGiB > maxRSS {
			maxRSS = p.RSSStartGiB
		}
	}
	heapBytes := uint64(maxRSS * (1 << 30))
	return &PhaseWorkload{
		name:       name,
		threads:    threads,
		freq:       freq,
		phases:     phases,
		seed:       seed,
		blockBytes: DefaultBlockBytes,
		peakBps:    200e9, // Table II device; pacing reference only
		ingest:     Region{Name: "ingest", Lo: baseHeap, Hi: baseHeap + heapBytes},
		heap:       Region{Name: "heap", Lo: baseHeap + heapBytes, Hi: baseHeap + 2*heapBytes},
	}
}

// SetBlockBytes changes the bulk-transfer granularity (power of two;
// larger blocks keep long timelines cheap to simulate).
func (p *PhaseWorkload) SetBlockBytes(n uint32) {
	if n == 0 || n&(n-1) != 0 {
		panic("workloads: block bytes must be a positive power of two")
	}
	p.blockBytes = n
}

// Name implements Workload.
func (p *PhaseWorkload) Name() string { return p.name }

// Threads implements Workload.
func (p *PhaseWorkload) Threads() int { return p.threads }

// Labels implements Workload: one label per phase.
func (p *PhaseWorkload) Labels() []string {
	out := make([]string, len(p.phases))
	for i, ph := range p.phases {
		out[i] = ph.Name
	}
	return out
}

// Regions implements Workload.
func (p *PhaseWorkload) Regions() []Region { return []Region{p.ingest, p.heap} }

// TotalSeconds returns the schedule length.
func (p *PhaseWorkload) TotalSeconds() float64 {
	var s float64
	for _, ph := range p.phases {
		s += ph.Seconds
	}
	return s
}

// Streams implements Workload.
func (p *PhaseWorkload) Streams() []isa.Stream {
	out := make([]isa.Stream, p.threads)
	for t := 0; t < p.threads; t++ {
		out[t] = &phaseGen{
			w:   p,
			tid: t,
			rng: xrand.New(p.seed).Derive(uint64(t) + 101),
		}
	}
	return out
}

type phaseGen struct {
	w   *PhaseWorkload
	tid int
	rng *xrand.RNG

	phase    int
	blockIdx int // blocks emitted in current phase (this thread)
	blocks   int // total blocks this thread must emit this phase
	thinkPer int // pacing delay cycles per block (pre-jitter)
	preamble bool
	rdAddr   uint64
	wrAddr   uint64
}

// setupPhase computes the block/pacing budget for the current phase.
func (g *phaseGen) setupPhase() {
	ph := g.w.phases[g.phase]
	perThreadCycles := float64(g.w.freq.CyclesOf(ph.Seconds))
	// Aggregate bytes this phase, split across threads.
	bytes := ph.GBps * 1e9 * ph.Seconds / float64(g.w.threads)
	g.blocks = int(bytes / float64(g.w.blockBytes))
	if g.blocks < 1 {
		g.blocks = 1
	}
	// A block op occupies the core for roughly its wire time at the
	// device peak; the rest of the phase budget becomes pacing delay.
	// The machine charges real contention on top, so the achieved
	// timeline is emergent; this is only the demand schedule.
	wire := float64(g.w.blockBytes) / g.w.peakBps * float64(g.w.freq.Hz)
	g.thinkPer = int(perThreadCycles/float64(g.blocks) - wire)
	if g.thinkPer < 0 {
		g.thinkPer = 0
	}
	g.blockIdx = 0
}

// Fill implements isa.Stream.
func (g *phaseGen) Fill(dst []isa.Op) int {
	n := 0
	w := g.w
	for g.phase < len(w.phases) {
		ph := &w.phases[g.phase]
		if !g.preamble {
			g.setupPhase()
			if g.tid == 0 {
				if len(dst)-n < 2 {
					return n
				}
				dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerAlloc,
					Addr: uint64(ph.RSSStartGiB * (1 << 30))}
				dst[n+1] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStart,
					Label: uint16(g.phase)}
				n += 2
			}
			g.preamble = true
		}
		for g.blockIdx < g.blocks {
			// Worst case: RSS marker + block + pacing delay.
			if len(dst)-n < 3 {
				return n
			}
			if g.tid == 0 && g.blockIdx%64 == 0 {
				frac := float64(g.blockIdx) / float64(g.blocks)
				rss := ph.RSSStartGiB + (ph.RSSEndGiB-ph.RSSStartGiB)*frac
				dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerAlloc,
					Addr: uint64(rss * (1 << 30))}
				n++
			}
			kind := isa.KindBlockLoad
			addr := w.ingest.Lo + g.rdAddr%(w.ingest.Hi-w.ingest.Lo)
			pc := uint64(pcCloudIngest)
			if g.rng.Bool(ph.WriteFrac) {
				kind = isa.KindBlockStore
				addr = w.heap.Lo + g.wrAddr%(w.heap.Hi-w.heap.Lo)
				g.wrAddr += uint64(w.blockBytes)
				pc = pcCloudIngest + 4
			} else {
				g.rdAddr += uint64(w.blockBytes)
			}
			dst[n] = isa.Op{Kind: kind, Addr: addr, Size: w.blockBytes, PC: pc}
			n++
			g.blockIdx++
			think := g.thinkPer
			if ph.JitterFrac > 0 && think > 0 {
				span := int(float64(think) * ph.JitterFrac)
				if span > 0 {
					think += g.rng.Intn(2*span+1) - span
				}
			}
			if think > 0 {
				dst[n] = isa.Op{Kind: isa.KindDelay, Addr: uint64(think), PC: pcCloudComp}
				n++
			}
		}
		if g.tid == 0 {
			if len(dst)-n < 2 {
				return n
			}
			dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerAlloc,
				Addr: uint64(ph.RSSEndGiB * (1 << 30))}
			dst[n+1] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStop,
				Label: uint16(g.phase)}
			n += 2
		}
		g.phase++
		g.preamble = false
	}
	return n
}
