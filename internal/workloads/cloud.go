package workloads

import "nmo/internal/sim"

// The CloudSuite pair. The paper runs both in Docker with 32 cores and
// 8 GiB per core (§VI-A); the schedules below are the synthetic
// equivalents whose capacity/bandwidth timelines reproduce the shapes
// of Figs. 2–3:
//
//   - Page Rank (Graph Analytics): the large dataset is ingested at the
//     start — bandwidth spikes to ~120 GiB/s near 5 s — then rank
//     iterations fluctuate downward while the heap grows to its
//     123.8 GiB saturation.
//   - In-memory Analytics (ALS over user-movie ratings): memory
//     saturates early at 52.3 GiB, and the alternating least squares
//     sweeps produce an ~15 s periodic bandwidth pattern peaking near
//     100 GiB/s.

// PageRankThreads is the container CPU allocation in the paper.
const PageRankThreads = 32

// NewPageRank builds the Graph Analytics (Page Rank) phase schedule.
// freq is the simulated clock of the machine that will run it.
func NewPageRank(freq sim.Freq, seed uint64) *PhaseWorkload {
	phases := []Phase{
		{Name: "startup", Seconds: 2, GBps: 8,
			RSSStartGiB: 2, RSSEndGiB: 6, WriteFrac: 0.5, JitterFrac: 0.2},
		{Name: "load", Seconds: 4, GBps: 124,
			RSSStartGiB: 6, RSSEndGiB: 58, WriteFrac: 0.55, JitterFrac: 0.15},
		{Name: "rank-iter-1", Seconds: 4, GBps: 88,
			RSSStartGiB: 58, RSSEndGiB: 86, WriteFrac: 0.3, JitterFrac: 0.3},
		{Name: "rank-iter-2", Seconds: 4, GBps: 64,
			RSSStartGiB: 86, RSSEndGiB: 104, WriteFrac: 0.3, JitterFrac: 0.3},
		{Name: "rank-iter-3", Seconds: 4, GBps: 46,
			RSSStartGiB: 104, RSSEndGiB: 116, WriteFrac: 0.3, JitterFrac: 0.3},
		{Name: "rank-iter-4", Seconds: 4, GBps: 38,
			RSSStartGiB: 116, RSSEndGiB: 123.8, WriteFrac: 0.25, JitterFrac: 0.3},
		{Name: "finalize", Seconds: 3, GBps: 22,
			RSSStartGiB: 123.8, RSSEndGiB: 123.8, WriteFrac: 0.2, JitterFrac: 0.3},
	}
	return NewPhaseWorkload("pagerank", PageRankThreads, freq, seed, phases)
}

// InMemThreads is the container CPU allocation in the paper.
const InMemThreads = 32

// NewInMemAnalytics builds the In-memory Analytics (ALS) schedule:
// an init phase then eight ~15-second sweeps, each a high-bandwidth
// ratings pass followed by a cache-resident solve.
func NewInMemAnalytics(freq sim.Freq, seed uint64) *PhaseWorkload {
	phases := []Phase{
		{Name: "init", Seconds: 6, GBps: 36,
			RSSStartGiB: 4, RSSEndGiB: 44, WriteFrac: 0.6, JitterFrac: 0.2},
	}
	rss := 44.0
	for i := 0; i < 8; i++ {
		end := rss
		if end < 52.3 {
			end = rss + 2.1
			if end > 52.3 {
				end = 52.3
			}
		}
		sweep := Phase{
			Name: sweepName(i), Seconds: 5, GBps: 98,
			RSSStartGiB: rss, RSSEndGiB: end, WriteFrac: 0.35, JitterFrac: 0.15,
		}
		solve := Phase{
			Name: solveName(i), Seconds: 10, GBps: 14,
			RSSStartGiB: end, RSSEndGiB: end, WriteFrac: 0.2, JitterFrac: 0.35,
		}
		rss = end
		phases = append(phases, sweep, solve)
	}
	return NewPhaseWorkload("inmem-analytics", InMemThreads, freq, seed, phases)
}

func sweepName(i int) string { return "als-sweep-" + string(rune('1'+i)) }
func solveName(i int) string { return "als-solve-" + string(rune('1'+i)) }
