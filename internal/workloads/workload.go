// Package workloads implements operation-stream generators for the
// five applications of the paper's evaluation (§V):
//
//   - STREAM (Triad kernel), C+OpenMP — synthetic bandwidth benchmark;
//   - CFD, Rodinia — unstructured-grid finite volume Euler solver;
//   - BFS, Rodinia — breadth-first search over a random graph;
//   - Page Rank, CloudSuite Graph Analytics — phase-level synthetic
//     equivalent (load-then-iterate);
//   - In-memory Analytics (ALS), CloudSuite — phase-level synthetic
//     equivalent (periodic sweeps).
//
// The first three are cycle-level workloads: every load/store of the
// kernel is emitted with its real address pattern, which is what the
// SPE sensitivity experiments (Figs. 7–11) sample. The CloudSuite pair
// are phase-level workloads built on the shared phase engine
// (phases.go): they model bandwidth and capacity *timelines* with
// block transfers, which is all Figs. 2–3 need (DESIGN.md §2).
//
// All generators are deterministic functions of their configuration
// and seed.
package workloads

import (
	"fmt"

	"nmo/internal/isa"
)

// Region is a tagged address range, the equivalent of
// nmo_tag_addr("name", start, end) in the paper's annotation API.
type Region struct {
	Name string
	Lo   uint64 // inclusive
	Hi   uint64 // exclusive
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Lo && addr < r.Hi }

// Workload produces one operation stream per thread plus the metadata
// NMO needs for region-based profiling.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Threads is the number of streams the workload runs.
	Threads() int
	// Streams returns fresh per-thread op streams. Each call restarts
	// the workload from the beginning (used for baseline vs profiled
	// runs over identical instruction streams).
	Streams() []isa.Stream
	// Regions returns the tagged memory regions.
	Regions() []Region
	// Labels returns the marker label table: Labels()[op.Label] is
	// the kernel name carried by start/stop markers.
	Labels() []string
}

// NewStandard constructs a named cycle-level workload with the
// canonical CLI shapes: elems is elements (stream/cfd) or nodes
// (bfs), iters applies to stream/cfd, and BFS always runs degree 8
// with 3 traversals. Both cmd/nmoprof's local path and the nmod
// service resolver build through here, so a remote submission and the
// equivalent local invocation are the same workload by construction —
// the byte-identical-trace contract rests on this single definition.
func NewStandard(name string, elems, threads, iters int, seed uint64) (Workload, error) {
	switch name {
	case "stream":
		return NewStream(StreamConfig{Elems: elems, Threads: threads, Iters: iters}), nil
	case "cfd":
		return NewCFD(CFDConfig{Elems: elems, Threads: threads, Iters: iters, Seed: seed}), nil
	case "bfs":
		return NewBFS(BFSConfig{Nodes: elems, Degree: 8, Threads: threads, Iters: 3, Seed: seed}), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (supported: stream, cfd, bfs)", name)
}

// Base addresses used by the cycle-level workloads. Keeping data
// structures in well-separated virtual ranges makes the Fig. 4–6
// scatter plots legible and region attribution unambiguous.
const (
	baseA         = 0x0000_1000_0000_0000
	baseB         = 0x0000_2000_0000_0000
	baseC         = 0x0000_3000_0000_0000
	baseVariables = 0x0000_4000_0000_0000
	baseFluxes    = 0x0000_5000_0000_0000
	baseNormals   = 0x0000_6000_0000_0000
	baseNeighbors = 0x0000_7000_0000_0000
	baseOffsets   = 0x0000_8000_0000_0000
	baseEdges     = 0x0000_9000_0000_0000
	baseVisited   = 0x0000_a000_0000_0000
	baseFrontier  = 0x0000_b000_0000_0000
	baseHeap      = 0x0000_c000_0000_0000
)

// Synthetic code-site PCs, one per kernel loop, so samples attribute
// to stable "instructions".
const (
	pcStreamTriad = 0x0040_1000
	pcCFDCompute  = 0x0040_2000
	pcBFSExpand   = 0x0040_3000
	pcCloudIngest = 0x0040_4000
	pcCloudComp   = 0x0040_5000
)
