package workloads

import (
	"fmt"

	"nmo/internal/isa"
)

// StreamConfig configures the STREAM benchmark.
type StreamConfig struct {
	// Elems is the number of float64 elements per array (a, b, c).
	Elems int
	// Threads partitions each array into contiguous chunks.
	Threads int
	// Iters is the number of Triad iterations.
	Iters int
}

// Stream is the STREAM benchmark: the Triad kernel
// a[i] = b[i] + SCALAR*c[i], the kernel the paper reports (§V). Each
// thread sweeps a contiguous chunk of the arrays — the source of the
// "regular incremental small line segments" in Fig. 4.
type Stream struct {
	cfg StreamConfig
}

// NewStream constructs the workload. It panics on nonsensical
// configuration (static experiment definitions, not user input).
func NewStream(cfg StreamConfig) *Stream {
	if cfg.Elems <= 0 || cfg.Threads <= 0 || cfg.Iters <= 0 {
		panic(fmt.Sprintf("workloads: bad STREAM config %+v", cfg))
	}
	if cfg.Threads > cfg.Elems {
		cfg.Threads = cfg.Elems
	}
	return &Stream{cfg: cfg}
}

// Name implements Workload.
func (s *Stream) Name() string { return "stream" }

// Threads implements Workload.
func (s *Stream) Threads() int { return s.cfg.Threads }

// Labels implements Workload. Label 0 tags the Triad kernel.
func (s *Stream) Labels() []string { return []string{"triad"} }

// Regions implements Workload: the a, b, c arrays, exactly the tags of
// the paper's Listing 1 / Fig. 4.
func (s *Stream) Regions() []Region {
	bytes := uint64(s.cfg.Elems) * 8
	return []Region{
		{Name: "a", Lo: baseA, Hi: baseA + bytes},
		{Name: "b", Lo: baseB, Hi: baseB + bytes},
		{Name: "c", Lo: baseC, Hi: baseC + bytes},
	}
}

// FootprintBytes returns the workload's total array footprint.
func (s *Stream) FootprintBytes() uint64 { return uint64(s.cfg.Elems) * 8 * 3 }

// Streams implements Workload.
func (s *Stream) Streams() []isa.Stream {
	out := make([]isa.Stream, s.cfg.Threads)
	per := s.cfg.Elems / s.cfg.Threads
	for t := 0; t < s.cfg.Threads; t++ {
		lo := t * per
		hi := lo + per
		if t == s.cfg.Threads-1 {
			hi = s.cfg.Elems
		}
		out[t] = &streamGen{w: s, tid: t, lo: lo, hi: hi, idx: lo}
	}
	return out
}

// streamGen emits one thread's Triad ops lazily.
type streamGen struct {
	w        *Stream
	tid      int
	lo, hi   int
	iter     int
	idx      int
	preamble bool // alloc/start markers emitted for current iteration
}

// opsPerElem: load b, load c, SIMD fma, store a, branch (loop back).
const streamOpsPerElem = 5

// Fill implements isa.Stream.
func (g *streamGen) Fill(dst []isa.Op) int {
	n := 0
	for g.iter < g.w.cfg.Iters {
		if !g.preamble {
			// Thread 0 carries the annotations: the allocation report
			// once, and the "triad" start marker per iteration.
			if g.tid == 0 {
				need := 1
				if g.iter == 0 {
					need = 2
				}
				if len(dst)-n < need {
					return n
				}
				if g.iter == 0 {
					dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerAlloc,
						Addr: g.w.FootprintBytes()}
					n++
				}
				dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStart, Label: 0}
				n++
			}
			g.preamble = true
		}
		for g.idx < g.hi {
			if len(dst)-n < streamOpsPerElem {
				return n
			}
			off := uint64(g.idx) * 8
			dst[n+0] = isa.Op{Kind: isa.KindLoad, Addr: baseB + off, Size: 8, PC: pcStreamTriad}
			dst[n+1] = isa.Op{Kind: isa.KindLoad, Addr: baseC + off, Size: 8, PC: pcStreamTriad + 4}
			dst[n+2] = isa.Op{Kind: isa.KindSIMD, PC: pcStreamTriad + 8}
			dst[n+3] = isa.Op{Kind: isa.KindStore, Addr: baseA + off, Size: 8, PC: pcStreamTriad + 12}
			dst[n+4] = isa.Op{Kind: isa.KindBranch, PC: pcStreamTriad + 16}
			n += streamOpsPerElem
			g.idx++
		}
		// End of this thread's chunk for this iteration.
		if g.tid == 0 {
			if len(dst)-n < 1 {
				return n
			}
			dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStop, Label: 0}
			n++
		}
		g.iter++
		g.idx = g.lo
		g.preamble = false
	}
	return n
}
