package workloads

import (
	"fmt"

	"nmo/internal/isa"
	"nmo/internal/xrand"
)

// CFDConfig configures the Rodinia-CFD-like solver.
type CFDConfig struct {
	// Elems is the number of mesh elements.
	Elems int
	// Threads partitions the element range into contiguous chunks.
	Threads int
	// Iters is the number of solver iterations ("computation loop"
	// executions; the paper uses 20).
	Iters int
	// Seed drives mesh connectivity generation.
	Seed uint64
}

// CFD models Rodinia's unstructured-grid finite volume solver for the
// 3D Euler equations. The flux kernel gathers the flow variables of
// four neighbouring elements through an irregular connectivity table,
// streams the face normals, and stores the computed fluxes — giving
// the mixed regular/irregular access pattern visible in Figs. 5–6
// (normals split cleanly across threads; the variables gathers are
// irregular).
type CFD struct {
	cfg       CFDConfig
	neighbors []uint32 // 4 per element
}

// Per-element strides (bytes). Five doubles of flow variables and
// fluxes; four 3-vectors of face normals; four neighbor indices.
const (
	cfdVarStride    = 40
	cfdFluxStride   = 40
	cfdNormalStride = 96
	cfdNbrStride    = 16
)

// NewCFD constructs the workload, generating mesh connectivity: three
// short-range neighbours (spatial locality of a mesh partition) and
// one long-range neighbour (the irregular far edges a real
// unstructured mesh contains).
func NewCFD(cfg CFDConfig) *CFD {
	if cfg.Elems <= 0 || cfg.Threads <= 0 || cfg.Iters <= 0 {
		panic(fmt.Sprintf("workloads: bad CFD config %+v", cfg))
	}
	if cfg.Threads > cfg.Elems {
		cfg.Threads = cfg.Elems
	}
	rng := xrand.New(cfg.Seed ^ 0xCFD)
	nb := make([]uint32, 4*cfg.Elems)
	for i := 0; i < cfg.Elems; i++ {
		for k := 0; k < 3; k++ {
			d := rng.Intn(32) - 16
			j := i + d
			if j < 0 {
				j += cfg.Elems
			}
			if j >= cfg.Elems {
				j -= cfg.Elems
			}
			nb[4*i+k] = uint32(j)
		}
		nb[4*i+3] = uint32(rng.Intn(cfg.Elems))
	}
	return &CFD{cfg: cfg, neighbors: nb}
}

// Name implements Workload.
func (c *CFD) Name() string { return "cfd" }

// Threads implements Workload.
func (c *CFD) Threads() int { return c.cfg.Threads }

// Labels implements Workload. Label 0 tags the computation loop, the
// region the paper profiles in Figs. 5–6.
func (c *CFD) Labels() []string { return []string{"computation loop"} }

// Regions implements Workload.
func (c *CFD) Regions() []Region {
	n := uint64(c.cfg.Elems)
	return []Region{
		{Name: "variables", Lo: baseVariables, Hi: baseVariables + n*cfdVarStride},
		{Name: "fluxes", Lo: baseFluxes, Hi: baseFluxes + n*cfdFluxStride},
		{Name: "normals", Lo: baseNormals, Hi: baseNormals + n*cfdNormalStride},
		{Name: "elements_surrounding", Lo: baseNeighbors, Hi: baseNeighbors + n*cfdNbrStride},
	}
}

// FootprintBytes returns the mesh data footprint.
func (c *CFD) FootprintBytes() uint64 {
	return uint64(c.cfg.Elems) * (cfdVarStride + cfdFluxStride + cfdNormalStride + cfdNbrStride)
}

// Streams implements Workload.
func (c *CFD) Streams() []isa.Stream {
	out := make([]isa.Stream, c.cfg.Threads)
	per := c.cfg.Elems / c.cfg.Threads
	for t := 0; t < c.cfg.Threads; t++ {
		lo := t * per
		hi := lo + per
		if t == c.cfg.Threads-1 {
			hi = c.cfg.Elems
		}
		out[t] = &cfdGen{w: c, tid: t, lo: lo, hi: hi, idx: lo}
	}
	return out
}

type cfdGen struct {
	w        *CFD
	tid      int
	lo, hi   int
	iter     int
	idx      int
	preamble bool
}

// Ops per element: 1 neighbor-index load, 4 gather loads, 1 own-
// variables load, 2 normals loads, 4 SIMD, 1 flux store, 1 branch.
const cfdOpsPerElem = 14

// Fill implements isa.Stream.
func (g *cfdGen) Fill(dst []isa.Op) int {
	n := 0
	for g.iter < g.w.cfg.Iters {
		if !g.preamble {
			if g.tid == 0 {
				need := 1
				if g.iter == 0 {
					need = 2
				}
				if len(dst)-n < need {
					return n
				}
				if g.iter == 0 {
					dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerAlloc,
						Addr: g.w.FootprintBytes()}
					n++
				}
				dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStart, Label: 0}
				n++
			}
			g.preamble = true
		}
		for g.idx < g.hi {
			if len(dst)-n < cfdOpsPerElem {
				return n
			}
			i := uint64(g.idx)
			nb := g.w.neighbors[4*g.idx : 4*g.idx+4]
			dst[n] = isa.Op{Kind: isa.KindLoad, Addr: baseNeighbors + i*cfdNbrStride,
				Size: 16, PC: pcCFDCompute}
			n++
			for k := 0; k < 4; k++ {
				dst[n] = isa.Op{Kind: isa.KindLoad,
					Addr: baseVariables + uint64(nb[k])*cfdVarStride,
					Size: 40, PC: pcCFDCompute + 4 + uint64(k)*4}
				n++
			}
			dst[n] = isa.Op{Kind: isa.KindLoad, Addr: baseVariables + i*cfdVarStride,
				Size: 40, PC: pcCFDCompute + 20}
			n++
			dst[n] = isa.Op{Kind: isa.KindLoad, Addr: baseNormals + i*cfdNormalStride,
				Size: 48, PC: pcCFDCompute + 24}
			n++
			dst[n] = isa.Op{Kind: isa.KindLoad, Addr: baseNormals + i*cfdNormalStride + 48,
				Size: 48, PC: pcCFDCompute + 28}
			n++
			for k := 0; k < 4; k++ {
				dst[n] = isa.Op{Kind: isa.KindSIMD, PC: pcCFDCompute + 32 + uint64(k)*4}
				n++
			}
			dst[n] = isa.Op{Kind: isa.KindStore, Addr: baseFluxes + i*cfdFluxStride,
				Size: 40, PC: pcCFDCompute + 48}
			n++
			dst[n] = isa.Op{Kind: isa.KindBranch, PC: pcCFDCompute + 52}
			n++
			g.idx++
		}
		if g.tid == 0 {
			if len(dst)-n < 1 {
				return n
			}
			dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStop, Label: 0}
			n++
		}
		g.iter++
		g.idx = g.lo
		g.preamble = false
	}
	return n
}
