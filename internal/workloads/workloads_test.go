package workloads

import (
	"testing"

	"nmo/internal/isa"
	"nmo/internal/sim"
)

func drain(t *testing.T, s isa.Stream) []isa.Op {
	t.Helper()
	var out []isa.Op
	buf := make([]isa.Op, 1000)
	for {
		n := s.Fill(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
		if len(out) > 100_000_000 {
			t.Fatal("stream does not terminate")
		}
	}
}

func countKinds(ops []isa.Op) map[isa.Kind]int {
	m := make(map[isa.Kind]int)
	for _, op := range ops {
		m[op.Kind]++
	}
	return m
}

func TestStreamOpCount(t *testing.T) {
	w := NewStream(StreamConfig{Elems: 1000, Threads: 4, Iters: 3})
	streams := w.Streams()
	if len(streams) != 4 {
		t.Fatalf("streams = %d", len(streams))
	}
	total := 0
	for _, s := range streams {
		ops := drain(t, s)
		for _, op := range ops {
			if op.Kind != isa.KindMarker {
				total++
			}
		}
	}
	want := 1000 * 3 * streamOpsPerElem
	if total != want {
		t.Errorf("total ops = %d, want %d", total, want)
	}
}

func TestStreamAddressesStayInRegions(t *testing.T) {
	w := NewStream(StreamConfig{Elems: 500, Threads: 2, Iters: 1})
	regions := w.Regions()
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	for _, s := range w.Streams() {
		for _, op := range drain(t, s) {
			if !op.Kind.IsMemory() {
				continue
			}
			found := false
			for _, r := range regions {
				if r.Contains(op.Addr) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("address %#x outside all regions", op.Addr)
			}
		}
	}
}

func TestStreamThreadPartition(t *testing.T) {
	w := NewStream(StreamConfig{Elems: 1000, Threads: 4, Iters: 1})
	streams := w.Streams()
	// Thread 1's loads of b must cover exactly [250, 500) * 8.
	ops := drain(t, streams[1])
	lo, hi := uint64(1<<63), uint64(0)
	for _, op := range ops {
		if op.Kind == isa.KindLoad && op.Addr >= baseB && op.Addr < baseB+8000 {
			off := op.Addr - baseB
			if off < lo {
				lo = off
			}
			if off > hi {
				hi = off
			}
		}
	}
	if lo != 250*8 || hi != 499*8 {
		t.Errorf("thread 1 b-range = [%d, %d], want [2000, 3992]", lo, hi)
	}
}

func TestStreamMarkers(t *testing.T) {
	w := NewStream(StreamConfig{Elems: 100, Threads: 2, Iters: 5})
	ops := drain(t, w.Streams()[0])
	starts, stops, allocs := 0, 0, 0
	for _, op := range ops {
		if op.Kind != isa.KindMarker {
			continue
		}
		switch op.Marker {
		case isa.MarkerStart:
			starts++
			if w.Labels()[op.Label] != "triad" {
				t.Errorf("start label = %q", w.Labels()[op.Label])
			}
		case isa.MarkerStop:
			stops++
		case isa.MarkerAlloc:
			allocs++
		}
	}
	if starts != 5 || stops != 5 || allocs != 1 {
		t.Errorf("markers = %d starts, %d stops, %d allocs; want 5/5/1", starts, stops, allocs)
	}
	// Non-zero threads carry no markers.
	for _, op := range drain(t, w.Streams()[1]) {
		if op.Kind == isa.KindMarker {
			t.Fatal("thread 1 emitted a marker")
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	w := NewStream(StreamConfig{Elems: 300, Threads: 3, Iters: 2})
	a := drain(t, w.Streams()[0])
	b := drain(t, w.Streams()[0])
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestStreamSmallBatchBoundary(t *testing.T) {
	// Fill with a tiny buffer to exercise every boundary branch.
	w := NewStream(StreamConfig{Elems: 50, Threads: 1, Iters: 2})
	s := w.Streams()[0]
	var total, markers int
	buf := make([]isa.Op, 7)
	for {
		n := s.Fill(buf)
		if n == 0 {
			break
		}
		for _, op := range buf[:n] {
			if op.Kind == isa.KindMarker {
				markers++
			} else {
				total++
			}
		}
	}
	if total != 50*2*streamOpsPerElem {
		t.Errorf("ops = %d", total)
	}
	if markers != 1+2*2 {
		t.Errorf("markers = %d, want 5", markers)
	}
}

func TestCFDGatherIrregularity(t *testing.T) {
	w := NewCFD(CFDConfig{Elems: 2000, Threads: 1, Iters: 1, Seed: 9})
	ops := drain(t, w.Streams()[0])
	// Collect gather targets (loads to variables from neighbor sites).
	var gathers []uint64
	for _, op := range ops {
		if op.Kind == isa.KindLoad && op.Addr >= baseVariables &&
			op.Addr < baseVariables+uint64(2000*cfdVarStride) {
			gathers = append(gathers, op.Addr)
		}
	}
	if len(gathers) == 0 {
		t.Fatal("no variable loads")
	}
	// At least some long-range jumps must occur (far neighbor).
	far := 0
	for i := 1; i < len(gathers); i++ {
		d := int64(gathers[i]) - int64(gathers[i-1])
		if d < 0 {
			d = -d
		}
		if d > 1000*cfdVarStride {
			far++
		}
	}
	if far < 10 {
		t.Errorf("only %d long-range gathers; connectivity not irregular", far)
	}
}

func TestCFDOpBudget(t *testing.T) {
	w := NewCFD(CFDConfig{Elems: 100, Threads: 2, Iters: 3, Seed: 1})
	total := 0
	for _, s := range w.Streams() {
		for _, op := range drain(t, s) {
			if op.Kind != isa.KindMarker {
				total++
			}
		}
	}
	if want := 100 * 3 * cfdOpsPerElem; total != want {
		t.Errorf("ops = %d, want %d", total, want)
	}
}

func TestCFDRegions(t *testing.T) {
	w := NewCFD(CFDConfig{Elems: 100, Threads: 1, Iters: 1, Seed: 1})
	names := map[string]bool{}
	for _, r := range w.Regions() {
		names[r.Name] = true
		if r.Hi <= r.Lo {
			t.Errorf("region %s empty", r.Name)
		}
	}
	for _, want := range []string{"variables", "fluxes", "normals", "elements_surrounding"} {
		if !names[want] {
			t.Errorf("missing region %q", want)
		}
	}
}

func TestCFDSeedChangesConnectivity(t *testing.T) {
	a := NewCFD(CFDConfig{Elems: 500, Threads: 1, Iters: 1, Seed: 1})
	b := NewCFD(CFDConfig{Elems: 500, Threads: 1, Iters: 1, Seed: 2})
	same := 0
	for i := range a.neighbors {
		if a.neighbors[i] == b.neighbors[i] {
			same++
		}
	}
	if same == len(a.neighbors) {
		t.Error("different seeds gave identical connectivity")
	}
}

func TestBFSReachesMostNodes(t *testing.T) {
	w := NewBFS(BFSConfig{Nodes: 5000, Degree: 8, Threads: 4, Seed: 3})
	if w.Depth() < 2 {
		t.Errorf("depth = %d; graph degenerate", w.Depth())
	}
	if v := w.VisitedCount(); v < 4000 {
		t.Errorf("visited %d/5000; graph too disconnected", v)
	}
}

func TestBFSStreamsCoverVisits(t *testing.T) {
	w := NewBFS(BFSConfig{Nodes: 2000, Degree: 6, Threads: 3, Seed: 5})
	// Each visited node contributes exactly one frontier load across
	// all threads, and each discovery exactly one visited store.
	frontierLoads, visitedStores := 0, 0
	for _, s := range w.Streams() {
		for _, op := range drain(t, s) {
			if op.Kind == isa.KindLoad && op.Addr >= baseFrontier {
				frontierLoads++
			}
			if op.Kind == isa.KindStore && op.Addr >= baseVisited && op.Addr < baseVisited+2000 {
				visitedStores++
			}
		}
	}
	if frontierLoads != w.VisitedCount() {
		t.Errorf("frontier loads = %d, visited = %d", frontierLoads, w.VisitedCount())
	}
	if visitedStores != w.VisitedCount()-1 { // root is not discovered
		t.Errorf("visited stores = %d, want %d", visitedStores, w.VisitedCount()-1)
	}
}

func TestBFSDeterministic(t *testing.T) {
	mk := func() []isa.Op {
		w := NewBFS(BFSConfig{Nodes: 1000, Degree: 4, Threads: 2, Seed: 7})
		var all []isa.Op
		for _, s := range w.Streams() {
			all = append(all, drainT(s)...)
		}
		return all
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func drainT(s isa.Stream) []isa.Op {
	var out []isa.Op
	buf := make([]isa.Op, 512)
	for {
		n := s.Fill(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestBFSMemOpDensityLowerThanStream(t *testing.T) {
	// The paper's BFS collides far less than STREAM because its
	// tracked latencies are short; a prerequisite is a compact
	// footprint and branch-heavy mix.
	bfs := NewBFS(BFSConfig{Nodes: 2000, Degree: 6, Threads: 1, Seed: 1})
	kinds := countKinds(drainT(bfs.Streams()[0]))
	memFrac := float64(kinds[isa.KindLoad]+kinds[isa.KindStore]) /
		float64(kinds[isa.KindLoad]+kinds[isa.KindStore]+kinds[isa.KindALU]+kinds[isa.KindBranch])
	if memFrac > 0.75 {
		t.Errorf("BFS memory fraction %.2f too high", memFrac)
	}
}

func TestPhaseWorkloadSchedule(t *testing.T) {
	freq := sim.Freq{Hz: 1_000_000}
	w := NewPhaseWorkload("test", 2, freq, 1, []Phase{
		{Name: "p0", Seconds: 0.5, GBps: 1, RSSStartGiB: 1, RSSEndGiB: 2, WriteFrac: 0.5},
		{Name: "p1", Seconds: 0.5, GBps: 0.5, RSSStartGiB: 2, RSSEndGiB: 2},
	})
	if w.TotalSeconds() != 1.0 {
		t.Errorf("TotalSeconds = %v", w.TotalSeconds())
	}
	if len(w.Labels()) != 2 || w.Labels()[1] != "p1" {
		t.Errorf("labels = %v", w.Labels())
	}
	bytesMoved := uint64(0)
	markers := 0
	for _, s := range w.Streams() {
		for _, op := range drainT(s) {
			if op.Kind == isa.KindBlockLoad || op.Kind == isa.KindBlockStore {
				bytesMoved += uint64(op.Size)
			}
			if op.Kind == isa.KindMarker {
				markers++
			}
		}
	}
	// Target: (1 GB/s * 0.5s) + (0.5 GB/s * 0.5s) = 0.75 GB.
	want := uint64(0.75e9)
	if bytesMoved < want*8/10 || bytesMoved > want*11/10 {
		t.Errorf("bytes = %d, want ~%d", bytesMoved, want)
	}
	if markers == 0 {
		t.Error("no markers emitted")
	}
}

func TestPageRankSchedule(t *testing.T) {
	freq := sim.Freq{Hz: 1_000_000}
	w := NewPageRank(freq, 1)
	if w.Threads() != 32 {
		t.Errorf("threads = %d, want 32", w.Threads())
	}
	if s := w.TotalSeconds(); s < 20 || s > 30 {
		t.Errorf("duration = %v s, want ~25", s)
	}
	// Peak RSS must hit the paper's 123.8 GiB.
	var maxRSS uint64
	for _, op := range drainT(w.Streams()[0]) {
		if op.Kind == isa.KindMarker && op.Marker == isa.MarkerAlloc && op.Addr > maxRSS {
			maxRSS = op.Addr
		}
	}
	gib := float64(uint64(1) << 30)
	want := uint64(123.8 * gib)
	if maxRSS < want*99/100 || maxRSS > want*101/100 {
		t.Errorf("max RSS = %.1f GiB, want 123.8", float64(maxRSS)/(1<<30))
	}
}

func TestInMemAnalyticsSchedule(t *testing.T) {
	freq := sim.Freq{Hz: 1_000_000}
	w := NewInMemAnalytics(freq, 1)
	if s := w.TotalSeconds(); s < 110 || s > 135 {
		t.Errorf("duration = %v s, want ~126", s)
	}
	var maxRSS uint64
	for _, op := range drainT(w.Streams()[0]) {
		if op.Kind == isa.KindMarker && op.Marker == isa.MarkerAlloc && op.Addr > maxRSS {
			maxRSS = op.Addr
		}
	}
	gib := float64(uint64(1) << 30)
	want := uint64(52.3 * gib)
	if maxRSS < want*99/100 || maxRSS > want*101/100 {
		t.Errorf("max RSS = %.1f GiB, want 52.3", float64(maxRSS)/(1<<30))
	}
	// Sweep phases alternate: 1 init + 16 sweep/solve.
	if len(w.Labels()) != 17 {
		t.Errorf("phases = %d, want 17", len(w.Labels()))
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "x", Lo: 100, Hi: 200}
	if !r.Contains(100) || !r.Contains(199) || r.Contains(200) || r.Contains(99) {
		t.Error("Contains boundary conditions wrong")
	}
}

func TestConfigValidationPanics(t *testing.T) {
	cases := []func(){
		func() { NewStream(StreamConfig{}) },
		func() { NewCFD(CFDConfig{Elems: 10}) },
		func() { NewBFS(BFSConfig{Nodes: 1, Degree: 1, Threads: 1}) },
		func() { NewPhaseWorkload("x", 0, sim.Freq{Hz: 1}, 1, []Phase{{}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
