package workloads

import (
	"fmt"

	"nmo/internal/isa"
	"nmo/internal/xrand"
)

// BFSConfig configures the Rodinia-BFS-like graph traversal.
type BFSConfig struct {
	// Nodes is the number of graph vertices.
	Nodes int
	// Degree is the out-degree of every vertex.
	Degree int
	// Threads partitions each frontier by vertex id.
	Threads int
	// Iters is the number of BFS traversals, each from a different
	// source vertex (0 means 1). The first traversal streams the CSR
	// cold; later ones run warm out of the cache hierarchy — matching
	// a benchmark loop over sources and keeping BFS the cache-friendly
	// contrast workload of the paper's Figs. 7–8.
	Iters int
	// Seed drives graph generation.
	Seed uint64
}

// bfsRun is one precomputed traversal.
type bfsRun struct {
	source uint32
	levels [][]uint32 // visit order per BFS level
	parent []int32    // discovering edge index per node, -1 for root/unreached
}

// BFS models Rodinia's breadth-first search. The traversals are
// computed once at construction (the level structure of a BFS is a
// property of the graph, not of thread interleaving); the per-thread
// streams then replay their share of each level's edge scans with the
// real CSR addresses. Compared to STREAM/CFD the kernel is
// branch-heavy with a compact working set, so its sampled latencies
// are short — the reason BFS shows almost no SPE collisions in
// Fig. 8c while taking the most samples per unit time (Fig. 7c).
type BFS struct {
	cfg     BFSConfig
	offsets []uint32 // CSR offsets, len Nodes+1 (edge counts prefix sum)
	edges   []uint32 // CSR targets
	runs    []bfsRun // one per iteration (source)
}

// NewBFS builds the graph (uniform random targets with a bias toward
// low vertex ids, approximating a scale-free degree distribution) and
// precomputes the BFS from vertex 0.
func NewBFS(cfg BFSConfig) *BFS {
	if cfg.Nodes <= 1 || cfg.Degree <= 0 || cfg.Threads <= 0 {
		panic(fmt.Sprintf("workloads: bad BFS config %+v", cfg))
	}
	rng := xrand.New(cfg.Seed ^ 0xBF5)
	b := &BFS{cfg: cfg}
	b.offsets = make([]uint32, cfg.Nodes+1)
	b.edges = make([]uint32, cfg.Nodes*cfg.Degree)
	for i := 0; i < cfg.Nodes; i++ {
		b.offsets[i] = uint32(i * cfg.Degree)
		for k := 0; k < cfg.Degree; k++ {
			var t int
			if rng.Bool(0.25) {
				// Preferential edge to a low-id hub.
				t = rng.Intn(cfg.Nodes/16 + 1)
			} else {
				t = rng.Intn(cfg.Nodes)
			}
			b.edges[i*cfg.Degree+k] = uint32(t)
		}
	}
	b.offsets[cfg.Nodes] = uint32(cfg.Nodes * cfg.Degree)
	iters := cfg.Iters
	if iters <= 0 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		b.runs = append(b.runs, b.computeLevels(uint32(i*cfg.Nodes/iters)))
	}
	return b
}

// computeLevels runs one host-side BFS from source, recording visit
// order and discovering edges.
func (b *BFS) computeLevels(source uint32) bfsRun {
	n := b.cfg.Nodes
	run := bfsRun{source: source, parent: make([]int32, n)}
	visited := make([]bool, n)
	for i := range run.parent {
		run.parent[i] = -1
	}
	frontier := []uint32{source}
	visited[source] = true
	for len(frontier) > 0 {
		run.levels = append(run.levels, frontier)
		var next []uint32
		for _, u := range frontier {
			lo, hi := b.offsets[u], b.offsets[u+1]
			for e := lo; e < hi; e++ {
				v := b.edges[e]
				if !visited[v] {
					visited[v] = true
					run.parent[v] = int32(e)
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return run
}

// Name implements Workload.
func (b *BFS) Name() string { return "bfs" }

// Threads implements Workload.
func (b *BFS) Threads() int { return b.cfg.Threads }

// Labels implements Workload.
func (b *BFS) Labels() []string { return []string{"bfs kernel"} }

// Regions implements Workload.
func (b *BFS) Regions() []Region {
	n := uint64(b.cfg.Nodes)
	e := uint64(len(b.edges))
	return []Region{
		{Name: "offsets", Lo: baseOffsets, Hi: baseOffsets + (n+1)*4},
		{Name: "edges", Lo: baseEdges, Hi: baseEdges + e*4},
		{Name: "visited", Lo: baseVisited, Hi: baseVisited + n},
		{Name: "frontier", Lo: baseFrontier, Hi: baseFrontier + n*4},
	}
}

// FootprintBytes returns the graph data footprint.
func (b *BFS) FootprintBytes() uint64 {
	return uint64(b.cfg.Nodes)*(4+1+4) + uint64(len(b.edges))*4 + 4
}

// Depth returns the number of BFS levels of the first traversal
// (test helper).
func (b *BFS) Depth() int { return len(b.runs[0].levels) }

// VisitedCount returns how many vertices all traversals reach in
// total.
func (b *BFS) VisitedCount() int {
	c := 0
	for _, r := range b.runs {
		for _, l := range r.levels {
			c += len(l)
		}
	}
	return c
}

// Streams implements Workload.
func (b *BFS) Streams() []isa.Stream {
	out := make([]isa.Stream, b.cfg.Threads)
	for t := 0; t < b.cfg.Threads; t++ {
		out[t] = &bfsGen{w: b, tid: t, edge: -1}
	}
	return out
}

type bfsGen struct {
	w   *BFS
	tid int

	run      int
	level    int
	pos      int // index into current level's visit list
	edge     int // next edge offset within the current node, -1 = node preamble
	curNode  uint32
	started  bool
	nextSlot uint64 // position in the next-frontier array for stores
}

// Fill implements isa.Stream. Per node: frontier load + offsets load;
// per edge: edge-target load, visited-byte load, compare branch; on
// first discovery: visited store + next-frontier store.
func (g *bfsGen) Fill(dst []isa.Op) int {
	n := 0
	w := g.w
	for g.run < len(w.runs) {
		r := &w.runs[g.run]
		if g.level < len(r.levels) {
			n = g.fillRun(dst, n, r)
			if g.level < len(r.levels) {
				return n // dst full mid-level
			}
		}
		// Traversal finished; emit the closing marker once.
		if g.tid == 0 {
			if len(dst)-n < 1 {
				return n
			}
			dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStop, Label: 0}
			n++
		}
		g.run++
		g.level, g.pos, g.edge = 0, 0, -1
		g.started = false
	}
	return n
}

// fillRun emits ops for one traversal until dst fills or the run ends.
func (g *bfsGen) fillRun(dst []isa.Op, n int, r *bfsRun) int {
	w := g.w
	for g.level < len(r.levels) {
		if !g.started {
			if g.tid == 0 {
				need := 1
				if g.run == 0 {
					need = 2
				}
				if len(dst)-n < need {
					return n
				}
				if g.run == 0 {
					dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerAlloc,
						Addr: w.FootprintBytes()}
					n++
				}
				dst[n] = isa.Op{Kind: isa.KindMarker, Marker: isa.MarkerStart, Label: 0}
				n++
			}
			g.started = true
		}
		lvl := r.levels[g.level]
		for g.pos < len(lvl) {
			u := lvl[g.pos]
			if int(u)%w.cfg.Threads != g.tid {
				g.pos++
				continue
			}
			if g.edge < 0 || g.curNode != u {
				// Node preamble: frontier entry + CSR offsets.
				if len(dst)-n < 3 {
					return n
				}
				dst[n] = isa.Op{Kind: isa.KindLoad, Addr: baseFrontier + uint64(g.pos)*4,
					Size: 4, PC: pcBFSExpand}
				dst[n+1] = isa.Op{Kind: isa.KindLoad, Addr: baseOffsets + uint64(u)*4,
					Size: 8, PC: pcBFSExpand + 4}
				dst[n+2] = isa.Op{Kind: isa.KindALU, PC: pcBFSExpand + 8}
				n += 3
				g.curNode = u
				g.edge = int(w.offsets[u])
			}
			hi := int(w.offsets[u+1])
			for g.edge < hi {
				// Worst case per edge: 2 loads + branch + 2 stores + ALU.
				if len(dst)-n < 6 {
					return n
				}
				e := g.edge
				v := w.edges[e]
				dst[n] = isa.Op{Kind: isa.KindLoad, Addr: baseEdges + uint64(e)*4,
					Size: 4, PC: pcBFSExpand + 12}
				dst[n+1] = isa.Op{Kind: isa.KindLoad, Addr: baseVisited + uint64(v),
					Size: 1, PC: pcBFSExpand + 16}
				dst[n+2] = isa.Op{Kind: isa.KindBranch, PC: pcBFSExpand + 20}
				n += 3
				if r.parent[v] == int32(e) {
					dst[n] = isa.Op{Kind: isa.KindStore, Addr: baseVisited + uint64(v),
						Size: 1, PC: pcBFSExpand + 24}
					dst[n+1] = isa.Op{Kind: isa.KindStore,
						Addr: baseFrontier + (g.nextSlot%uint64(w.cfg.Nodes))*4,
						Size: 4, PC: pcBFSExpand + 28}
					dst[n+2] = isa.Op{Kind: isa.KindALU, PC: pcBFSExpand + 32}
					n += 3
					g.nextSlot++
				}
				g.edge++
			}
			g.edge = -1
			g.pos++
		}
		g.level++
		g.pos = 0
		g.edge = -1
	}
	return n
}
