package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"nmo/internal/analysis"
	"nmo/internal/auth"
	"nmo/internal/core"
	"nmo/internal/engine"
	"nmo/internal/obs"
	"nmo/internal/postproc"
	"nmo/internal/report"
	"nmo/internal/sampler"
	"nmo/internal/trace"
)

// SchedConfig sizes the scheduler.
type SchedConfig struct {
	// Workers is the number of concurrently running jobs (<= 0: 2).
	Workers int
	// QueueCap bounds the number of queued leader jobs; submissions
	// beyond it are rejected (ErrQueueFull -> HTTP 429). <= 0: 64.
	QueueCap int
	// EngineJobs is the engine worker-pool size each job runs its
	// scenario batch with (<= 0: 1, so Workers jobs never
	// oversubscribe the host; results are bit-identical at any
	// value).
	EngineJobs int
	// BackendSlots caps concurrently *running* jobs per sampling
	// backend: a job occupies one slot on every backend its scenarios
	// resolve to, and a worker never starts a job whose backends are
	// saturated — it picks the next admissible job instead (the
	// conflict-constrained selection of the queue). nil or a missing
	// kind means unlimited.
	BackendSlots map[sampler.Kind]int
	// MaxJobs bounds retained job records (<= 0: 1024). Terminal jobs
	// beyond the bound are forgotten oldest-first — their IDs then
	// 404, but the *results* stay addressable: an identical
	// resubmission is a cache hit. Without the bound a long-running
	// daemon would pin every job's trace blobs forever.
	MaxJobs int
	// Metrics is the observability bundle the scheduler counts into
	// (nil: a fresh private one, so embedded/test schedulers are fully
	// instrumented without wiring).
	Metrics *Metrics
	// Quotas supplies per-tenant fair-share weights and max-in-flight
	// caps (nil: every tenant weight 1, unlimited). The weight is read
	// once, when the tenant's queue is created.
	Quotas *auth.Quotas
}

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = errInvalid("service: job queue is full")

// ErrQuotaExceeded rejects submissions past the tenant's max-in-flight
// quota (-> HTTP 429, code quota_exceeded).
var ErrQuotaExceeded = errInvalid("service: tenant in-flight quota exceeded")

// ErrCanceled is the terminal error of canceled jobs.
var ErrCanceled = errInvalid("service: job canceled")

// errShutdown fails queued jobs when the scheduler closes.
var errShutdown = errInvalid("service: scheduler shut down")

// Job is one submitted unit of work. All mutable state is behind mu;
// Info snapshots it for the wire.
type Job struct {
	ID       string
	Key      string
	Tenant   string // principal the job was submitted as
	Priority int
	seq      uint64
	reqID    string        // request ID of the admitting submission
	audit    *obs.AuditLog // transition sink (nil-safe)

	// quotaReleased guards the tenant in-flight decrement (leaders
	// only; guarded by the scheduler's mu, not j.mu).
	quotaReleased bool

	rs    []resolved
	kinds []sampler.Kind // distinct backends (admission resources)
	entry *entry         // cache slot this job serves from / fills

	enqueued time.Time // leader enqueue instant (queue-wait phase)

	mu     sync.Mutex
	state  JobState
	cached bool
	errMsg string
	phases JobPhases          // completed-phase timings
	cancel context.CancelFunc // set while running (leaders only)
	art    *JobArtifacts      // set when done
}

// Info snapshots the job's wire status.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID: j.ID, State: j.state, Key: j.Key, Priority: j.Priority,
		Cached: j.cached, Scenarios: len(j.rs), Error: j.errMsg,
		RequestID: j.reqID, Tenant: j.Tenant,
	}
	if j.phases != (JobPhases{}) {
		p := j.phases
		info.Phases = &p
	}
	return info
}

// setPhase records one completed phase's duration on the job record.
func (j *Job) setPhase(fn func(*JobPhases)) {
	j.mu.Lock()
	fn(&j.phases)
	j.mu.Unlock()
}

// auditState logs a job lifecycle transition to the audit sink.
func (j *Job) auditState(state, errMsg string) {
	j.audit.Log(obs.Event{
		Kind: "job", Job: j.ID, Key: j.Key, ReqID: j.reqID,
		Tenant: j.Tenant, State: state, Error: errMsg,
	})
}

// Artifacts returns the job's results once done (nil before).
func (j *Job) Artifacts() *JobArtifacts {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.art
}

// Done returns the cache entry's completion channel — closed when the
// job's key has an outcome (fill or abort).
func (j *Job) Done() <-chan struct{} { return j.entry.done }

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// finish moves the job to a terminal state. The audit line is written
// after the lock is released — the sink serializes on its own mutex
// and must not nest inside j.mu.
func (j *Job) finish(art *JobArtifacts, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.cancel = nil
	if err != nil {
		if err == ErrCanceled || err == context.Canceled {
			j.state = StateCanceled
			j.errMsg = ErrCanceled.Error()
		} else {
			j.state = StateFailed
			j.errMsg = err.Error()
		}
	} else {
		j.state = StateDone
		j.art = art
	}
	state, errMsg := string(j.state), j.errMsg
	j.mu.Unlock()
	j.auditState(state, errMsg)
}

// Scheduler admits, queues, and executes jobs on a bounded worker
// pool. Submission performs cache admission (hit, coalesce, or
// enqueue-as-leader) plus tenant quota admission; workers drain
// per-tenant queues by weighted deficit round robin, and within the
// chosen tenant pick the highest-priority *admissible* job — one whose
// backends all have a free slot — so a saturated backend never blocks
// jobs that only need the other one.
type Scheduler struct {
	cfg   SchedConfig
	cache *Cache
	m     *Metrics

	mu   sync.Mutex
	cond *sync.Cond
	// Per-tenant queues (each sorted priority desc, seq asc), drained
	// by DRR over the active rotation. Invariant: a tenantQueue is in
	// active iff it has queued jobs.
	tqs      map[string]*tenantQueue
	active   []*tenantQueue
	nQueued  int            // total queued leaders (QueueCap applies globally)
	inflight map[string]int // live leader jobs per tenant (max_in_flight)
	runningT map[string]int // running leader jobs per tenant (stats)
	jobs     map[string]*Job
	order    []*Job // submission order (job-record pruning)
	running  map[sampler.Kind]int
	nRun     int
	closed   bool
	seq      uint64

	// baseCtx parents every job context, so Close cancels whatever is
	// running — including jobs in the pop-to-run window whose cancel
	// func is not registered yet.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg sync.WaitGroup
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg SchedConfig, cache *Cache) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.EngineJobs <= 0 {
		cfg.EngineJobs = 1
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	if cache == nil {
		cache, _ = NewCache(CacheConfig{}) // memory-only: never errors
	}
	s := &Scheduler{cfg: cfg, cache: cache, m: cfg.Metrics,
		tqs:      make(map[string]*tenantQueue),
		inflight: make(map[string]int),
		runningT: make(map[string]int),
		jobs:     make(map[string]*Job), running: make(map[sampler.Kind]int)}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.cond = sync.NewCond(&s.mu)
	s.registerGauges()
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker()
	}
	return s
}

// registerGauges folds the scheduler's occupancy and the cache's
// counters into the registry as func-backed metrics, read at scrape
// time from the same state /v1/stats snapshots — one source of truth
// for both views.
func (s *Scheduler) registerGauges() {
	reg := s.m.Reg
	reg.GaugeFunc("nmo_queue_depth", "Jobs waiting for a scheduler worker.",
		func() float64 { q, _ := s.occupancy(); return float64(q) })
	reg.GaugeFunc("nmo_jobs_running", "Jobs executing on scheduler workers.",
		func() float64 { _, r := s.occupancy(); return float64(r) })
	reg.CounterFunc("nmo_cache_hits_total",
		"Submissions answered by a completed cache entry.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("nmo_cache_coalesced_total",
		"Submissions attached to an identical in-flight job.",
		func() float64 { return float64(s.cache.Stats().Coalesced) })
	reg.CounterFunc("nmo_cache_evictions_total", "Cache entries evicted.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.CounterFunc("nmo_cache_demotions_total", "Blobs demoted memory→disk.",
		func() float64 { return float64(s.cache.Stats().Demotions) })
	reg.CounterFunc("nmo_cache_promotions_total", "Blobs promoted disk→memory.",
		func() float64 { return float64(s.cache.Stats().Promotions) })
	reg.GaugeFunc("nmo_cache_entries", "Cache entries resident.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("nmo_cache_bytes", "Cache tier occupancy in bytes.",
		func() float64 { return float64(s.cache.Stats().BytesMem) }, obs.L("tier", "mem"))
	reg.GaugeFunc("nmo_cache_bytes", "",
		func() float64 { return float64(s.cache.Stats().BytesDisk) }, obs.L("tier", "disk"))
}

// occupancy snapshots the queue depth and running-job count.
func (s *Scheduler) occupancy() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nQueued, s.nRun
}

// Metrics returns the scheduler's observability bundle — the server
// layer mounts its registry at /metrics and reuses its HTTP
// middleware and audit sink.
func (s *Scheduler) Metrics() *Metrics { return s.m }

// EngineRuns returns the number of engine batch executions — the
// counter the cache's no-duplicate-simulation guarantee is tested
// against.
func (s *Scheduler) EngineRuns() uint64 { return s.m.EngineRuns.Value() }

// Stats snapshots the scheduler and cache counters. Every field is
// read from the same instrument or atomic the /metrics exposition
// renders, so the JSON and Prometheus views agree by construction.
func (s *Scheduler) Stats() SchedStats {
	cs := s.cache.Stats()
	queued, running := s.occupancy()
	return SchedStats{
		Submitted:       s.m.Submitted.Value(),
		Rejected:        s.m.Rejected.Value(),
		EngineRuns:      s.m.EngineRuns.Value(),
		CacheHits:       cs.Hits,
		Coalesced:       cs.Coalesced,
		CacheEntries:    cs.Entries,
		CacheEvictions:  cs.Evictions,
		CacheBytesMem:   cs.BytesMem,
		CacheBytesDisk:  cs.BytesDisk,
		CacheDemotions:  cs.Demotions,
		CachePromotions: cs.Promotions,
		Queued:          queued,
		Running:         running,
		UptimeSec:       obs.Uptime(),
		JobPhases:       s.m.PhaseStats(),
		Tenants:         s.tenantStats(),
	}
}

// tenantStats snapshots the per-tenant fair-share view: every tenant
// that has submitted since boot, with its weight, occupancy, and
// lifetime counters.
func (s *Scheduler) tenantStats() []TenantStat {
	names := s.m.TenantNames()
	if len(names) == 0 {
		return nil
	}
	out := make([]TenantStat, 0, len(names))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range names {
		tm := s.m.Tenant(t)
		st := TenantStat{
			Tenant:     t,
			Weight:     s.cfg.Quotas.For(t).NormWeight(),
			Running:    s.runningT[t],
			InFlight:   s.inflight[t],
			Submitted:  tm.Submitted.Value(),
			EngineRuns: tm.EngineRuns.Value(),
			Rejected:   tm.Rejected.Value(),
		}
		if tq := s.tqs[t]; tq != nil {
			st.Queued = len(tq.jobs)
		}
		out = append(out, st)
	}
	return out
}

// Submit validates, resolves, and admits a job. The returned Job is
// already terminal for cache hits; coalesced and queued jobs complete
// asynchronously (watch Done / poll Info).
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitReq(spec, "")
}

// SubmitReq is Submit carrying the request ID of the admitting HTTP
// request, running as the default tenant.
func (s *Scheduler) SubmitReq(spec JobSpec, reqID string) (*Job, error) {
	return s.SubmitTenant(spec, reqID, auth.DefaultTenant)
}

// SubmitTenant is the full submission path: request ID stamped on the
// job record and every audit line it emits, tenant charged against its
// max-in-flight quota and queued under its fair-share queue. The
// resolve+admission span is recorded as the job's cache_lookup phase.
func (s *Scheduler) SubmitTenant(spec JobSpec, reqID, tenant string) (*Job, error) {
	if tenant == "" {
		tenant = auth.DefaultTenant
	}
	admitStart := time.Now()
	rs, key, err := resolveJob(spec)
	if err != nil {
		s.m.Rejected.Inc()
		s.m.Tenant(tenant).Rejected.Inc()
		return nil, err
	}
	job := &Job{
		ID: newID(), Key: key, Tenant: tenant, Priority: spec.Priority,
		reqID: reqID, audit: s.m.Audit,
		rs: rs, kinds: backends(rs), state: StateQueued,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.m.Rejected.Inc()
		s.m.Tenant(tenant).Rejected.Inc()
		return nil, errShutdown
	}
	e, leader := s.cache.Acquire(key)
	job.entry = e
	if leader {
		// Leader admission charges real capacity: the global queue cap
		// first, then the tenant's in-flight quota. Cache hits and
		// coalesced followers are free — they cost no engine time.
		// Either rejection undoes the reservation before releasing the
		// scheduler lock: every Submit acquires under it, so no
		// follower can attach to the entry before the abort lands.
		if s.nQueued >= s.cfg.QueueCap {
			s.cache.Abort(e, ErrQueueFull)
			s.mu.Unlock()
			s.m.Rejected.Inc()
			s.m.Tenant(tenant).Rejected.Inc()
			return nil, ErrQueueFull
		}
		if max := s.cfg.Quotas.For(tenant).MaxInFlight; max > 0 && s.inflight[tenant] >= max {
			s.cache.Abort(e, ErrQuotaExceeded)
			s.mu.Unlock()
			s.m.Rejected.Inc()
			s.m.Tenant(tenant).Rejected.Inc()
			return nil, ErrQuotaExceeded
		}
		s.inflight[tenant]++
	}
	s.m.Submitted.Inc()
	s.m.Tenant(tenant).Submitted.Inc()
	s.seq++
	job.seq = s.seq
	job.cached = !leader // job not yet published; no lock needed
	job.enqueued = admitStart
	s.jobs[job.ID] = job
	s.order = append(s.order, job)
	s.pruneLocked()
	if leader {
		s.enqueueLocked(job)
		s.cond.Signal()
		s.mu.Unlock()
		// The job is visible to workers once s.mu drops: record the
		// phase under j.mu like every later phase write.
		lookup := time.Since(admitStart)
		job.setPhase(func(p *JobPhases) { p.CacheLookupSec = lookup.Seconds() })
		s.m.ObservePhase("cache_lookup", lookup)
		job.auditState("queued", "")
		return job, nil
	}
	// Coalescing onto a *queued* leader: the attached submission's
	// priority must still count, or a high-priority request would
	// silently wait at its leader's lower position. The leader may sit
	// in any tenant's queue (coalescing crosses tenants — same key,
	// same bytes); bump it and re-place it within its own queue.
bump:
	for _, tq := range s.tqs {
		for i, q := range tq.jobs {
			if q.Key == key && q.Priority < spec.Priority {
				q.mu.Lock()
				q.Priority = spec.Priority
				q.mu.Unlock()
				tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
				tq.insert(q)
				break bump
			}
		}
	}
	s.mu.Unlock()

	lookup := time.Since(admitStart)
	job.setPhase(func(p *JobPhases) { p.CacheLookupSec = lookup.Seconds() })
	s.m.ObservePhase("cache_lookup", lookup)
	job.auditState("cached", "")

	// Cache hit or coalesce: the leader's outcome completes this job.
	select {
	case <-e.done:
		art, err := e.Wait() // done already closed: returns immediately
		job.finish(art, err)
	default:
		go func() {
			art, err := e.Wait()
			job.finish(art, err)
		}()
	}
	return job, nil
}

// tenantQueue is one tenant's slice of the scheduler: its queued
// leader jobs (sorted priority desc, seq asc — the pre-multi-tenant
// global order) plus its deficit-round-robin service state.
type tenantQueue struct {
	tenant string
	weight int // DRR quantum, from the quota file (>= 1)
	credit int // jobs this tenant may still pop this round
	jobs   []*Job
}

// insert places j by (priority desc, seq asc).
func (tq *tenantQueue) insert(j *Job) {
	i := sort.Search(len(tq.jobs), func(i int) bool {
		q := tq.jobs[i]
		if q.Priority != j.Priority {
			return q.Priority < j.Priority
		}
		return q.seq > j.seq
	})
	tq.jobs = append(tq.jobs, nil)
	copy(tq.jobs[i+1:], tq.jobs[i:])
	tq.jobs[i] = j
}

// enqueueLocked queues a leader under its tenant, activating the
// tenant's queue when it goes non-empty; callers hold mu.
func (s *Scheduler) enqueueLocked(j *Job) {
	tq := s.tqs[j.Tenant]
	if tq == nil {
		tq = &tenantQueue{tenant: j.Tenant, weight: s.cfg.Quotas.For(j.Tenant).NormWeight()}
		s.tqs[j.Tenant] = tq
	}
	if len(tq.jobs) == 0 {
		s.active = append(s.active, tq)
	}
	tq.insert(j)
	s.nQueued++
}

// deactivateLocked drops an emptied tenant queue from the rotation.
// Credit does not bank across idle periods — an absent tenant restarts
// at zero, so fairness is over backlogged tenants only (standard DRR).
func (s *Scheduler) deactivateLocked(tq *tenantQueue) {
	tq.credit = 0
	for i, q := range s.active {
		if q == tq {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// pruneLocked forgets the oldest terminal job records beyond MaxJobs,
// releasing their artifact references (the cache keeps results
// addressable by content). Queued/running jobs are never pruned, so
// the map can transiently exceed the bound while that many jobs are
// genuinely live.
func (s *Scheduler) pruneLocked() {
	excess := len(s.order) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if excess > 0 && j.Info().State.Terminal() {
			delete(s.jobs, j.ID)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}

// Get looks a job up by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: queued leaders are dequeued and their cache
// entry aborted (coalesced followers of that entry cancel with them);
// running jobs get their context canceled and finish at the next
// scenario boundary. Terminal jobs are left untouched.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("service: unknown job %q", id)
	}
	if tq := s.tqs[j.Tenant]; tq != nil {
		for i, q := range tq.jobs {
			if q == j {
				tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
				s.nQueued--
				if len(tq.jobs) == 0 {
					s.deactivateLocked(tq)
				}
				s.releaseQuotaLocked(j)
				// Abort before releasing the scheduler lock (like the
				// queue-full path in Submit): a concurrent identical
				// Submit acquires under s.mu, so it must find either the
				// queued entry or no entry — never a doomed one to
				// coalesce onto.
				s.cache.Abort(j.entry, ErrCanceled)
				s.mu.Unlock()
				j.finish(nil, ErrCanceled)
				return nil
			}
		}
	}
	s.mu.Unlock()

	// One critical section decides the job's fate: runJob's
	// queued→running transition also holds j.mu, so either we observe
	// the cancel func (and fire it), or we mark the job canceled
	// before the run starts and runJob's terminal check aborts it.
	// Releasing the lock between the read and the state change would
	// let a pop-to-run racer start an uncancellable batch.
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		// Already finished; nothing to cancel.
	case j.cancel != nil:
		cancel := j.cancel
		j.mu.Unlock()
		cancel() // runJob observes ctx errors and aborts the entry
		return nil
	default:
		// Not queued, not yet running: a coalesced follower (its
		// leader keeps running for everyone else) or a leader in the
		// pop-to-run window.
		j.state = StateCanceled
		j.errMsg = ErrCanceled.Error()
		j.mu.Unlock()
		j.auditState(string(StateCanceled), ErrCanceled.Error())
		return nil
	}
	j.mu.Unlock()
	return nil
}

// Close stops the workers, cancels everything queued or running, and
// waits for the pool to drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var pending []*Job
	for _, tq := range s.active {
		pending = append(pending, tq.jobs...)
		tq.jobs = nil
		tq.credit = 0
	}
	s.active = nil
	s.nQueued = 0
	for _, j := range pending {
		s.releaseQuotaLocked(j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range pending {
		s.cache.Abort(j.entry, errShutdown)
		j.finish(nil, errShutdown)
	}
	// Cancels every running job at its next scenario boundary — even
	// one a worker has popped but not yet registered a cancel func
	// for (its context derives from baseCtx either way).
	s.baseCancel()
	s.wg.Wait()
}

// popLocked removes and returns the next job under weighted deficit
// round robin across tenants, or nil when nothing is admissible.
//
// The front of the active rotation owns the turn. Entering a turn with
// no credit replenishes it to the tenant's weight; each popped job
// costs one credit (unit job cost — jobs are comparable engine
// batches), and the tenant keeps the front until its credit or its
// queue runs out, then rotates to the back. Under saturation that
// yields exact weight ratios (3:1 → A,A,A,B repeating). A tenant whose
// queued jobs are all inadmissible (saturated backends) passes its
// turn without burning credit, so backend conflicts never tax a
// tenant's share. With a single tenant the whole mechanism reduces to
// the pre-multi-tenant scan: first admissible job in (priority desc,
// seq asc) order — bit-identical scheduling.
//
// Within the chosen tenant, admissibility and ordering are unchanged:
// every backend the job occupies must have a free slot, and the
// priority-ordered scan returns the first fit (no head-of-line
// blocking across backends; FIFO within one backend's contenders).
func (s *Scheduler) popLocked() *Job {
	for visited := 0; visited < len(s.active); {
		tq := s.active[0]
		if tq.credit <= 0 {
			tq.credit = tq.weight
		}
		if j := s.popTenantLocked(tq); j != nil {
			tq.credit--
			if len(tq.jobs) == 0 {
				s.deactivateLocked(tq)
			} else if tq.credit == 0 {
				s.active = append(s.active[1:], tq)
			}
			return j
		}
		// Nothing admissible for this tenant right now: pass the turn,
		// keep the credit for when its backends free up.
		s.active = append(s.active[1:], tq)
		visited++
	}
	return nil
}

// popTenantLocked removes the tenant's best admissible job, or nil.
func (s *Scheduler) popTenantLocked(tq *tenantQueue) *Job {
	for i, j := range tq.jobs {
		if s.admissibleLocked(j) {
			tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
			s.nQueued--
			return j
		}
	}
	return nil
}

func (s *Scheduler) admissibleLocked(j *Job) bool {
	if s.cfg.BackendSlots == nil {
		return true
	}
	for _, k := range j.kinds {
		if lim, ok := s.cfg.BackendSlots[k]; ok && lim > 0 && s.running[k] >= lim {
			return false
		}
	}
	return true
}

// releaseQuotaLocked returns a leader job's in-flight quota unit.
// Idempotent (the flag lives under s.mu): a job released at cancel
// time is not released again at worker exit.
func (s *Scheduler) releaseQuotaLocked(j *Job) {
	if j.quotaReleased {
		return
	}
	j.quotaReleased = true
	if s.inflight[j.Tenant]--; s.inflight[j.Tenant] <= 0 {
		delete(s.inflight, j.Tenant)
	}
}

// worker is the scheduler loop: pick an admissible job, reserve its
// backend slots, run it, release, repeat.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var job *Job
		for !s.closed {
			if job = s.popLocked(); job != nil {
				break
			}
			s.cond.Wait()
		}
		if job == nil { // closed
			s.mu.Unlock()
			return
		}
		for _, k := range job.kinds {
			s.running[k]++
		}
		s.nRun++
		s.runningT[job.Tenant]++
		s.mu.Unlock()

		s.runJob(job)

		s.mu.Lock()
		for _, k := range job.kinds {
			s.running[k]--
		}
		s.nRun--
		if s.runningT[job.Tenant]--; s.runningT[job.Tenant] <= 0 {
			delete(s.runningT, job.Tenant)
		}
		s.releaseQuotaLocked(job)
		// A slot freed: jobs previously inadmissible may fit now.
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// shutdownErr distinguishes the two causes of a context cancel seen by
// a running job: Close canceling the base context (the job should fail
// with the clean 503-style shutdown error) versus a per-job DELETE
// (ErrCanceled). Reading closed under mu is safe here — Close releases
// the lock before it cancels and waits.
func (s *Scheduler) shutdownErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShutdown
	}
	return ErrCanceled
}

// runJob executes a leader job's scenario batch and fills (or aborts)
// its cache entry, completing every coalesced follower along the way.
func (s *Scheduler) runJob(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.mu.Lock()
	if job.state.Terminal() { // canceled between pop and run
		job.mu.Unlock()
		cancel()
		s.cache.Abort(job.entry, ErrCanceled)
		return
	}
	if ctx.Err() != nil {
		// The job was popped in the Close window: a Submit racing Close
		// handed it to a worker before closed was set, and the base
		// context is already canceled. Don't start the engine just to
		// watch it cancel — fail the job with the same clean shutdown
		// error a post-Close Submit is rejected with.
		job.mu.Unlock()
		cancel()
		s.cache.Abort(job.entry, errShutdown)
		job.finish(nil, errShutdown)
		return
	}
	job.state = StateRunning
	wait := time.Since(job.enqueued)
	job.phases.QueueWaitSec = wait.Seconds()
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel()
	s.m.ObservePhase("queue_wait", wait)
	s.m.Tenant(job.Tenant).QueueWait.Observe(wait.Seconds())
	job.auditState("running", "")

	art, err := s.execute(ctx, job)
	if err != nil {
		s.cache.Abort(job.entry, err)
		job.finish(nil, err)
		return
	}
	spillStart := time.Now()
	s.cache.Fill(job.entry, art)
	spill := time.Since(spillStart)
	job.setPhase(func(p *JobPhases) { p.SpillSec = spill.Seconds() })
	s.m.ObservePhase("spill", spill)
	job.finish(art, nil)
}

// execute runs the resolved scenarios as one engine batch, streaming
// each sampling scenario's trace into an in-memory v2 blob, and
// digests the results into servable artifacts. The engine span and
// the digest pass are recorded as the job's run and digest phases.
func (s *Scheduler) execute(ctx context.Context, job *Job) (*JobArtifacts, error) {
	rs := job.rs
	scs := make([]engine.Scenario, len(rs))
	bufs := make([]*bytes.Buffer, len(rs))
	for i := range rs {
		r := &rs[i]
		i := i
		scs[i] = engine.Scenario{
			Name:     r.spec.Name,
			Spec:     r.mach,
			Config:   r.cfg,
			Workload: r.workloadFactory,
		}
		if r.cfg.Mode.Sampling() {
			blockSamples := r.spec.BlockSamples
			newWriter := trace.NewWriterV2
			if r.spec.Compress {
				newWriter = trace.NewWriterV21
			}
			// The factory runs once, on the executing engine worker;
			// each scenario writes its private slot, and the engine's
			// completion barrier publishes the slices to this
			// goroutine.
			scs[i].SinkFactory = func(meta trace.Meta) (trace.Sink, error) {
				buf := &bytes.Buffer{}
				w, err := newWriter(buf, meta, blockSamples)
				if err != nil {
					return nil, err
				}
				bufs[i] = buf
				return w, nil
			}
		}
	}

	s.m.EngineRuns.Inc()
	s.m.Tenant(job.Tenant).EngineRuns.Inc()
	runStart := time.Now()
	results := engine.Runner{Jobs: s.cfg.EngineJobs}.RunAllContext(ctx, scs)
	run := time.Since(runStart)
	job.setPhase(func(p *JobPhases) { p.RunSec = run.Seconds() })
	s.m.ObservePhase("run", run)

	digestStart := time.Now()
	art := &JobArtifacts{Traces: make([]*TraceBlob, len(rs))}
	for i, res := range results {
		if res.Err != nil {
			if ctx.Err() != nil {
				// errShutdown when the cancel came from Close, so jobs
				// caught mid-run by a daemon shutdown report the same
				// cause as ones rejected at the door.
				return nil, s.shutdownErr()
			}
			return nil, res.Err
		}
		sr, blob, err := digest(&rs[i], res.Profile, bufs[i])
		if err != nil {
			return nil, err
		}
		art.Doc.Scenarios = append(art.Doc.Scenarios, sr)
		art.Traces[i] = blob
	}
	dig := time.Since(digestStart)
	job.setPhase(func(p *JobPhases) { p.DigestSec = dig.Seconds() })
	s.m.ObservePhase("digest", dig)
	return art, nil
}

// digest turns one scenario's profile + trace blob into its wire
// result: aggregate counters, Eq. 1 accuracy, and the same tables the
// local CLI prints, derived from the blob by one out-of-core postproc
// pass.
func digest(r *resolved, prof *core.Profile, buf *bytes.Buffer) (ScenarioResult, *TraceBlob, error) {
	sr := ScenarioResult{
		Name:        r.spec.Name,
		Workload:    prof.Workload,
		WallCycles:  uint64(prof.Wall),
		WallSec:     prof.WallSec,
		MemAccesses: prof.MemAccesses,
		BusAccesses: prof.BusAccesses,
	}
	if r.cfg.Mode.Counters() {
		sr.Bandwidth = &prof.Bandwidth
		if r.cfg.TrackRSS {
			sr.Capacity = &prof.Capacity
		}
	}
	if !r.cfg.Mode.Sampling() || buf == nil {
		return sr, NewTraceBlob(r.spec.Name, nil, [16]byte{}), nil
	}

	sr.Backend = string(prof.Backend)
	sr.Samples = prof.Sampler.Processed
	sr.Accuracy = analysis.Accuracy(prof.MemAccesses, prof.Sampler.Processed, r.cfg.EffectivePeriod())
	data := buf.Bytes()
	blob := NewTraceBlob(r.spec.Name, data, prof.MD5)
	sr.TraceMD5 = hex.EncodeToString(blob.MD5[:])
	sr.TraceBytes = int64(len(data))

	rd, err := trace.OpenV2(bytes.NewReader(data))
	if err != nil {
		return sr, blob, fmt.Errorf("service: scenario %q blob: %w", r.spec.Name, err)
	}
	sr.TraceSamples = rd.TotalSamples()
	sr.TraceBlocks = rd.NumBlocks()
	sum, err := postproc.Summarize(postproc.From(rd), false)
	if err != nil {
		return sr, blob, err
	}
	sr.LatP50 = sum.Lat.Percentile(50)
	sr.LatP90 = sum.Lat.Percentile(90)
	sr.LatP99 = sum.Lat.Percentile(99)

	regions := &report.Table{Title: "Samples by region", Headers: []string{"region", "count"}}
	for _, g := range sum.ByRegion.Groups() {
		regions.AddRow(g.Key, g.Count)
	}
	sr.Tables = []*report.Table{regions, report.NewLevelTable(sum.Levels.By)}
	return sr, blob, nil
}

// newID mints a random job ID.
func newID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}
