package service

import (
	"sort"
	"sync"
	"time"

	"nmo/internal/obs"
	"nmo/internal/zerocopy"
)

// JobPhaseNames are the lifecycle phases every job's timing breakdown
// covers, in execution order: content-address resolution + cache
// admission, the wait for a scheduler worker, the engine batch, the
// result digestion, and the cache fill (which may spill to disk).
// Each completed phase is observed into the nmo_job_phase_seconds
// histogram and recorded on the job itself (GET /v1/jobs/{id}).
var JobPhaseNames = []string{"cache_lookup", "queue_wait", "run", "digest", "spill"}

// Metrics is the daemon's observability bundle: one obs.Registry that
// backs both GET /metrics and the counter fields of GET /v1/stats —
// the same atomic words rendered two ways, so the views cannot drift
// — plus the HTTP middleware and the optional JSONL audit sink.
//
// The scheduler's former ad-hoc atomics (submitted/rejected/engine
// runs) live here as registry-owned counters; the cache tiers and the
// zero-copy data plane join as func-backed metrics read at scrape
// time from their existing atomics.
type Metrics struct {
	Reg   *obs.Registry
	HTTP  *obs.HTTPMetrics
	Audit *obs.AuditLog

	Submitted  *obs.Counter
	Rejected   *obs.Counter
	EngineRuns *obs.Counter

	phases map[string]*obs.Histogram

	// Per-tenant instruments, registered lazily the first time a
	// tenant submits. Tenants are authenticated principals, so the
	// label cardinality is bounded by the identity space. The global
	// families above stay label-free — dashboards and CI greps keyed
	// on them are untouched; the tenant dimension is new families.
	tmu     sync.Mutex
	tenants map[string]*TenantMetrics
}

// TenantMetrics is one tenant's instrument set.
type TenantMetrics struct {
	Submitted  *obs.Counter
	Rejected   *obs.Counter
	EngineRuns *obs.Counter
	QueueWait  *obs.Histogram
}

// NewMetrics builds a registry pre-populated with the daemon's job
// counters, phase histograms, and build-info metrics. audit may be
// nil (no audit sink).
func NewMetrics(audit *obs.AuditLog) *Metrics {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	m := &Metrics{
		Reg:   reg,
		HTTP:  obs.NewHTTPMetrics(reg, audit),
		Audit: audit,
		Submitted: reg.Counter("nmo_jobs_submitted_total",
			"Job submissions admitted (cache hits and coalesced included)."),
		Rejected: reg.Counter("nmo_jobs_rejected_total",
			"Job submissions rejected (bad spec, queue full, shutting down)."),
		EngineRuns: reg.Counter("nmo_engine_runs_total",
			"Engine batch executions — what the content-addressed cache deduplicates."),
		phases:  make(map[string]*obs.Histogram, len(JobPhaseNames)),
		tenants: make(map[string]*TenantMetrics),
	}
	for _, p := range JobPhaseNames {
		m.phases[p] = reg.Histogram("nmo_job_phase_seconds",
			"Job lifecycle phase durations.", obs.PhaseBuckets, obs.L("phase", p))
	}
	return m
}

// Tenant returns (registering on first use) the tenant's instrument
// set. The hot path after the first submission is one map lookup
// under a short mutex.
func (m *Metrics) Tenant(tenant string) *TenantMetrics {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	tm := m.tenants[tenant]
	if tm == nil {
		l := obs.L("tenant", tenant)
		tm = &TenantMetrics{
			Submitted: m.Reg.Counter("nmo_tenant_jobs_submitted_total",
				"Job submissions admitted, by tenant.", l),
			Rejected: m.Reg.Counter("nmo_tenant_jobs_rejected_total",
				"Job submissions rejected, by tenant.", l),
			EngineRuns: m.Reg.Counter("nmo_tenant_engine_runs_total",
				"Engine batch executions, by tenant.", l),
			QueueWait: m.Reg.Histogram("nmo_tenant_queue_wait_seconds",
				"Queue wait by tenant — the fairness signal.", obs.PhaseBuckets, l),
		}
		m.tenants[tenant] = tm
	}
	return tm
}

// TenantNames lists tenants that have instruments, sorted.
func (m *Metrics) TenantNames() []string {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	names := make([]string, 0, len(m.tenants))
	for t := range m.tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

// ObservePhase records one completed job phase into its histogram.
func (m *Metrics) ObservePhase(phase string, d time.Duration) {
	if h := m.phases[phase]; h != nil {
		h.Observe(d.Seconds())
	}
}

// PhaseStats summarizes the phase histograms for /v1/stats and
// `nmostat -stats`: per-phase observation count and total seconds (so
// a mean is one division away), in JobPhaseNames order.
func (m *Metrics) PhaseStats() []PhaseStat {
	out := make([]PhaseStat, 0, len(JobPhaseNames))
	for _, p := range JobPhaseNames {
		h := m.phases[p]
		out = append(out, PhaseStat{Phase: p, Count: h.Count(), TotalSec: h.Sum()})
	}
	return out
}

// RegisterDataPlane folds a zerocopy.Counters into a registry as
// func-backed metrics: the three byte paths of the trace data plane
// (they sum to total trace bytes served) and the terminal copy
// outcome classification. Shared by the shard server and the gateway
// — each tier registers its own counters into its own registry.
func RegisterDataPlane(reg *obs.Registry, zc *zerocopy.Counters) {
	reg.CounterFunc("nmo_zc_bytes_total",
		"Trace body bytes moved, by data-plane path (sendfile/splice/fallback).",
		func() float64 { return float64(zc.SendfileBytes()) }, obs.L("path", "sendfile"))
	reg.CounterFunc("nmo_zc_bytes_total", "",
		func() float64 { return float64(zc.SpliceBytes()) }, obs.L("path", "splice"))
	reg.CounterFunc("nmo_zc_bytes_total", "",
		func() float64 { return float64(zc.FallbackBytes()) }, obs.L("path", "fallback"))
	reg.CounterFunc("nmo_trace_client_aborts_total",
		"Trace serves cut short by the client going away.",
		func() float64 { return float64(zc.ClientAborts()) })
	reg.CounterFunc("nmo_trace_serve_errors_total",
		"Trace serves broken by a disk or upstream failure.",
		func() float64 { return float64(zc.Errors()) })
}
