package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newSpillServer spins a full HTTP stack over a scheduler whose cache
// spills to dir with the given tier budgets (0 = defaults).
func newSpillServer(t *testing.T, dir string, memBudget, diskBudget int64) (*Scheduler, *Client, func()) {
	t.Helper()
	cache, err := NewCache(CacheConfig{Dir: dir, MemBudget: memBudget, DiskBudget: diskBudget})
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedConfig{Workers: 1}, cache)
	srv := httptest.NewServer(NewServer(sched))
	client := NewClient(srv.URL)
	closed := false
	closeAll := func() {
		if !closed {
			closed = true
			srv.Close()
			sched.Close()
		}
	}
	t.Cleanup(closeAll)
	return sched, client, closeAll
}

// spillFiles lists the non-quarantined entry files in a spill dir.
func spillFiles(t *testing.T, dir string) (sidecars, blobs []string) {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		switch {
		case strings.HasSuffix(de.Name(), quarantineExt):
		case strings.HasSuffix(de.Name(), spillMetaSuffix):
			sidecars = append(sidecars, de.Name())
		case strings.HasSuffix(de.Name(), spillBlobSuffix):
			blobs = append(blobs, de.Name())
		}
	}
	return sidecars, blobs
}

// TestCacheRestartRecovery is the tentpole e2e: fill the cache, stop
// the daemon, restart it on the same spill directory, and resubmit the
// identical job — zero new engine runs, and the served bytes are
// identical to the pre-restart download.
func TestCacheRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := quickJob(91)

	_, client, closeAll := newSpillServer(t, dir, 0, 0)
	info, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	_, beforeMD5, err := client.DownloadTrace(ctx, info.ID, NewTraceOptions(), &before)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := client.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	closeAll() // daemon gone; only the spill directory survives

	sched2, client2, _ := newSpillServer(t, dir, 0, 0)
	st := sched2.Stats()
	if st.CacheEntries != 1 || st.CacheBytesDisk == 0 {
		t.Fatalf("restarted cache: entries=%d disk_bytes=%d, want a recovered entry",
			st.CacheEntries, st.CacheBytesDisk)
	}
	info2, err := client2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached {
		t.Error("identical resubmission after restart was not served from the cache")
	}
	if _, err := client2.Wait(ctx, info2.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if runs := sched2.EngineRuns(); runs != 0 {
		t.Errorf("restarted daemon ran the engine %d times for a recovered job, want 0", runs)
	}

	var after bytes.Buffer
	_, afterMD5, err := client2.DownloadTrace(ctx, info2.ID, NewTraceOptions(), &after)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("post-restart trace bytes differ from the pre-restart download")
	}
	if beforeMD5 != afterMD5 {
		t.Errorf("post-restart X-Nmo-Trace-Md5 %s != pre-restart %s", afterMD5, beforeMD5)
	}
	doc2, err := client2.Result(ctx, info2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Scenarios[0].TraceMD5 != doc.Scenarios[0].TraceMD5 ||
		doc2.Scenarios[0].Samples != doc.Scenarios[0].Samples {
		t.Error("recovered result document differs from the pre-restart one")
	}
}

// TestSpillQuarantine: a spill directory containing a torn temp-file,
// a truncated blob, a corrupt sidecar, and an orphan blob boots into a
// working cache — the broken pieces renamed aside, the intact entry
// recovered, and never a panic.
func TestSpillQuarantine(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, client, closeAll := newSpillServer(t, dir, 0, 0)
	for _, seed := range []uint64{92, 93} {
		info, err := client.Submit(ctx, quickJob(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	closeAll()

	sidecars, blobs := spillFiles(t, dir)
	if len(sidecars) != 2 || len(blobs) != 2 {
		t.Fatalf("expected 2 committed entries, found sidecars=%v blobs=%v", sidecars, blobs)
	}

	// Sabotage entry 0: truncate its blob (simulating a torn write the
	// rename protocol should normally prevent, e.g. disk corruption).
	victim := filepath.Join(dir, blobs[0])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// A torn temp-file from a crashed spill.
	if err := os.WriteFile(filepath.Join(dir, spillTmpPrefix+"dead"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt sidecar with an orphaned-by-it blob.
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+spillMetaSuffix), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+".t0"+spillBlobSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	cache, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatalf("boot over a damaged spill dir must not fail: %v", err)
	}
	st := cache.Stats()
	if st.Entries != 1 {
		t.Errorf("recovered %d entries, want 1 (the undamaged one)", st.Entries)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var quarantined []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), quarantineExt) {
			quarantined = append(quarantined, de.Name())
		}
	}
	// Truncated blob + its sidecar, torn temp, corrupt sidecar, orphan
	// blob: 5 files renamed aside.
	if len(quarantined) != 5 {
		t.Errorf("quarantined %v (%d files), want 5", quarantined, len(quarantined))
	}
}

// TestDemotionServesFromFile is the zero-copy acceptance check: under
// a tiny memory budget the blob demotes to its spill file, the
// unfiltered /trace serve comes from the file-backed path, and the
// served bytes and X-Nmo-Trace-Md5 are exactly the spill file's.
func TestDemotionServesFromFile(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	sched, client, _ := newSpillServer(t, dir, 1, 0) // 1-byte memory tier: everything demotes
	info, err := client.Submit(ctx, quickJob(94))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	job, ok := sched.Get(info.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	blob := job.Artifacts().Traces[0]
	if !blob.FileBacked() {
		t.Fatal("blob not demoted under a 1-byte memory budget")
	}
	st := sched.Stats()
	if st.CacheDemotions == 0 || st.CacheBytesMem != 0 || st.CacheBytesDisk != blob.Size() {
		t.Errorf("stats after demotion: demotions=%d mem=%d disk=%d (blob %d bytes)",
			st.CacheDemotions, st.CacheBytesMem, st.CacheBytesDisk, blob.Size())
	}

	_, spillBlobs := spillFiles(t, dir)
	if len(spillBlobs) != 1 {
		t.Fatalf("spill dir holds %v, want exactly one blob", spillBlobs)
	}
	fileBytes, err := os.ReadFile(filepath.Join(dir, spillBlobs[0]))
	if err != nil {
		t.Fatal(err)
	}

	var served bytes.Buffer
	n, md5hex, err := client.DownloadTrace(ctx, info.ID, NewTraceOptions(), &served)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), fileBytes) {
		t.Error("file-backed serve differs from the spill file's bytes")
	}
	if n != int64(len(fileBytes)) {
		t.Errorf("served %d bytes, spill file holds %d", n, len(fileBytes))
	}
	if md5hex != hex.EncodeToString(blob.MD5[:]) {
		t.Errorf("X-Nmo-Trace-Md5 %s != blob MD5 %x", md5hex, blob.MD5)
	}

	// The filtered path works off the same file backing (straddler
	// blocks only — never the whole blob into memory).
	opt := NewTraceOptions()
	opt.FromNs = 1
	var filtered bytes.Buffer
	if _, _, err := client.DownloadTrace(ctx, info.ID, opt, &filtered); err != nil {
		t.Fatalf("filtered download from a demoted blob: %v", err)
	}
	if blob.FileBacked() != true {
		t.Error("serving promoted the blob; reads must not move tiers")
	}
}

// TestPromotionOnHit: a demoted entry that fits the memory budget is
// promoted back on its next Acquire, counted in the stats.
func TestPromotionOnHit(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(CacheConfig{Dir: dir, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("aa", 32)
	e, leader := c.Acquire(key)
	if !leader {
		t.Fatal("fresh cache has the key")
	}
	c.Fill(e, &JobArtifacts{Traces: []*TraceBlob{
		NewTraceBlob("t", bytes.Repeat([]byte{7}, 4096), [16]byte{}),
	}})

	// Force the demotion a real cache would do under pressure.
	c.mu.Lock()
	c.demoteLocked(e)
	c.mu.Unlock()
	if !e.art.Traces[0].FileBacked() {
		t.Fatal("demotion left the blob resident")
	}

	if _, leader := c.Acquire(key); leader {
		t.Fatal("key vanished")
	}
	if e.art.Traces[0].FileBacked() {
		t.Error("hit on a demoted entry did not promote it")
	}
	st := c.Stats()
	if st.Promotions != 1 || st.Demotions != 1 {
		t.Errorf("promotions=%d demotions=%d, want 1/1", st.Promotions, st.Demotions)
	}
	if st.BytesMem != 4096 || st.BytesDisk != 4096 {
		t.Errorf("bytes mem=%d disk=%d, want 4096/4096 (write-through)", st.BytesMem, st.BytesDisk)
	}
	data, err := e.art.Traces[0].Bytes()
	if err != nil || !bytes.Equal(data, bytes.Repeat([]byte{7}, 4096)) {
		t.Errorf("promoted bytes corrupted (err=%v)", err)
	}
}

// TestDiskBudgetEviction: the disk tier evicts LRU by bytes, deleting
// the victim's spill files.
func TestDiskBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(CacheConfig{Dir: dir, MemBudget: 1, DiskBudget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	fill := func(k byte) {
		key := strings.Repeat(hex.EncodeToString([]byte{k}), 32)
		e, leader := c.Acquire(key)
		if !leader {
			t.Fatalf("key %s present", key)
		}
		c.Fill(e, &JobArtifacts{Traces: []*TraceBlob{
			NewTraceBlob("t", bytes.Repeat([]byte{k}, 4096), [16]byte{}),
		}})
	}
	fill(1)
	fill(2)
	fill(3) // 12288 > 10000: entry 1's files must go
	st := c.Stats()
	if st.Entries != 2 || st.BytesDisk != 8192 {
		t.Errorf("entries=%d disk=%d, want 2/8192", st.Entries, st.BytesDisk)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions=%d, want 1", st.Evictions)
	}
	sidecars, blobs := spillFiles(t, dir)
	if len(sidecars) != 2 || len(blobs) != 2 {
		t.Errorf("spill dir holds %v / %v, want 2 entries' files", sidecars, blobs)
	}
	for _, name := range append(sidecars, blobs...) {
		if strings.HasPrefix(name, strings.Repeat("01", 32)) {
			t.Errorf("evicted entry's file %s survived", name)
		}
	}
}
