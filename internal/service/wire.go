// Package service is the long-running profiling daemon layer: it
// exposes the full nmo pipeline (engine → core → trace → postproc)
// over HTTP as a job API, so the CLIs — and many concurrent remote
// users — become front-ends to one shared simulation service instead
// of one-shot processes.
//
// Three pieces compose the subsystem:
//
//   - A bounded-worker Scheduler with FIFO-within-priority queueing
//     and per-backend admission control: jobs whose scenarios contend
//     for the same simulated backend (SPE on the Altra model, PEBS on
//     the Ice Lake model) occupy that backend's slots, a
//     conflict-constrained selection in the spirit of the
//     conflict-pair literature (PAPERS.md).
//   - A content-addressed, single-flight result Cache keyed by the
//     canonical hash of each scenario's resolved core.Config +
//     machine.Spec + workload shape. Runs are deterministic (jobs=1
//     vs jobs=N MD5-pinned since PR 1), so identical submissions are
//     answered from the cache — concurrent identical submissions
//     coalesce onto one leader run and nothing simulates twice.
//   - Streaming delivery: a finished job's v2 trace blobs are served
//     over chunked HTTP, with ?from/to/core mapped onto the trace
//     package's ScanHints block-skip push-down, and its aggregate
//     summary (tables, percentiles, Eq. 1 accuracy) as JSON.
//
// Client is the thin Go client the remote CLI modes (nmoprof/nmostat
// -remote) are built on.
package service

import (
	"nmo/internal/obs"
	"nmo/internal/report"
	"nmo/internal/trace"
)

// APIError is the typed error every non-2xx daemon response decodes
// into: the stable machine-readable code, the human message, and the
// request ID to grep the fleet's audit logs with. It is the obs-layer
// envelope type verbatim (one wire shape across tiers); the alias
// keeps service-level callers writing service.APIError and
// errors.Is(err, &service.APIError{Code: ...}).
type APIError = obs.APIError

// The CLI/wire defaults, shared with cmd/nmoprof's flag defaults so a
// defaulted remote submission and a defaulted local invocation are the
// same scenario by construction (zero wire fields resolve to these).
const (
	DefaultThreads = 32
	DefaultElems   = 2_000_000
	DefaultIters   = 2
	DefaultCores   = 128
	DefaultSeed    = 42
)

// ScenarioSpec is one scenario of a job, the JSON mirror of the knobs
// cmd/nmoprof resolves from its flags and the Table I environment.
// Zero values take the same defaults as the CLI, so a spec and the
// equivalent local nmoprof invocation resolve to the identical
// core.Config/machine.Spec pair — which is what makes served traces
// byte-identical to local ones, and what the cache key hashes.
type ScenarioSpec struct {
	// Name labels the scenario inside the job (default: the workload
	// name, suffixed with the index when duplicated).
	Name string `json:"name,omitempty"`
	// Workload is one of the cycle-level workloads: stream | cfd |
	// bfs. (Phase-level CloudSuite timelines are not served; they
	// bypass the engine.)
	Workload string `json:"workload"`
	// Threads is the worker thread count (default 32).
	Threads int `json:"threads,omitempty"`
	// Elems sizes the workload: elements for stream/cfd, nodes for
	// bfs (default 2_000_000).
	Elems int `json:"elems,omitempty"`
	// Iters is the iteration count for stream/cfd (default 2; bfs
	// always runs the CLI's 3 traversals).
	Iters int `json:"iters,omitempty"`
	// Cores is the simulated machine size (default 128).
	Cores int `json:"cores,omitempty"`
	// Seed seeds the workload and profiler. Zero means "the CLI
	// default", 42 — seed 0 itself is not representable on the wire
	// (the same unset-means-default convention engine.Scenario.Seed
	// uses); nmoprof -remote rejects -seed 0 rather than silently
	// running a different simulation than a local -seed 0 would.
	Seed uint64 `json:"seed,omitempty"`
	// Backend selects the sampling backend and with it the platform:
	// "spe" (ARM Altra) or "pebs" (Intel Ice Lake). Empty follows the
	// default, SPE on ARM.
	Backend string `json:"backend,omitempty"`
	// Mode is the collection mode: none | counters | sample | full
	// (default sample). "none" runs the uninstrumented timing
	// baseline.
	Mode string `json:"mode,omitempty"`
	// Period is the sampling period (0 = the default 4096).
	Period uint64 `json:"period,omitempty"`
	// TrackRSS enables working-set capture (NMO_TRACK_RSS).
	TrackRSS bool `json:"track_rss,omitempty"`
	// BufMiB / AuxMiB size the ring and aux buffers in MiB (0 = the
	// Table I default of 1).
	//
	// There is deliberately no MaxSamples knob: the service streams
	// every scenario into a v2 blob, and streamed runs lift the
	// retention cap exactly as local -trace-out runs do.
	BufMiB int `json:"buf_mib,omitempty"`
	AuxMiB int `json:"aux_mib,omitempty"`
	// BlockSamples overrides the v2 block granularity of the stored
	// trace (0 = trace.DefaultBlockSamples). It shapes the stored
	// bytes, so it participates in the cache key.
	BlockSamples int `json:"block_samples,omitempty"`
	// Compress stores the trace in the v2.1 format (per-block
	// compressed frames; same sample stream and rolling MD5). Like
	// BlockSamples it shapes the stored bytes, so it participates in
	// the cache key — a compressed and an uncompressed run of the same
	// scenario are distinct cache entries with equal checksums.
	Compress bool `json:"compress,omitempty"`
}

// JobSpec is the POST /v1/jobs request body: a batch of scenarios
// executed as one engine.Runner batch, plus queueing metadata.
type JobSpec struct {
	// Scenarios is the sweep grid; results and traces keep submission
	// order.
	Scenarios []ScenarioSpec `json:"scenarios"`
	// Priority orders the queue: higher runs first, FIFO within equal
	// priority (default 0).
	Priority int `json:"priority,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	// StateQueued: admitted, waiting for a worker (or, for a
	// coalesced job, for its leader's run).
	StateQueued JobState = "queued"
	// StateRunning: executing on a scheduler worker.
	StateRunning JobState = "running"
	// StateDone: finished; result and traces are servable.
	StateDone JobState = "done"
	// StateFailed: the run errored; Error carries the cause.
	StateFailed JobState = "failed"
	// StateCanceled: canceled before completion (DELETE, or the
	// daemon shut down, or a coalesced leader was canceled).
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobInfo is the wire status of a job (GET /v1/jobs/{id} and the
// submission response).
type JobInfo struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Key is the job's content-address (hex); identical submissions
	// share it.
	Key      string `json:"key"`
	Priority int    `json:"priority"`
	// Cached reports the job was answered from the result cache — by
	// a completed entry (no queueing at all) or by coalescing onto an
	// identical in-flight job.
	Cached bool `json:"cached"`
	// Scenarios is the job's scenario count.
	Scenarios int `json:"scenarios"`
	// Error is the failure cause for failed/canceled jobs.
	Error string `json:"error,omitempty"`
	// RequestID is the ID of the HTTP request that admitted the job —
	// minted at the outermost hop (gateway, or shard for direct
	// submissions) and stamped on every audit line the job emits, so
	// one grep follows a request across tiers.
	RequestID string `json:"request_id,omitempty"`
	// Tenant is the principal the job was submitted as. Quotas,
	// fair-share weight, and per-tenant metrics all key off it.
	Tenant string `json:"tenant,omitempty"`
	// Phases is the job's lifecycle timing breakdown; fields fill in as
	// the job progresses and are all set once it is done.
	Phases *JobPhases `json:"phases,omitempty"`
}

// JobPhases is one job's lifecycle timing breakdown, in seconds:
// content-address resolution + cache admission, the wait for a
// scheduler worker, the engine batch, the result digestion, and the
// cache fill. Cache-served jobs only have the lookup phase.
type JobPhases struct {
	CacheLookupSec float64 `json:"cache_lookup_sec,omitempty"`
	QueueWaitSec   float64 `json:"queue_wait_sec,omitempty"`
	RunSec         float64 `json:"run_sec,omitempty"`
	DigestSec      float64 `json:"digest_sec,omitempty"`
	SpillSec       float64 `json:"spill_sec,omitempty"`
}

// PhaseStat is one phase's fleet-level summary inside SchedStats:
// observation count and total seconds across all jobs (mean = total /
// count), mirroring the nmo_job_phase_seconds histogram's _count and
// _sum.
type PhaseStat struct {
	Phase    string  `json:"phase"`
	Count    uint64  `json:"count"`
	TotalSec float64 `json:"total_sec"`
}

// ScenarioResult is one scenario's digest inside a ResultDoc.
type ScenarioResult struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Backend  string `json:"backend,omitempty"`
	// WallCycles / WallSec are the run's completion time.
	WallCycles uint64  `json:"wall_cycles"`
	WallSec    float64 `json:"wall_sec"`
	// MemAccesses / BusAccesses are the exact counting-event totals.
	MemAccesses uint64 `json:"mem_accesses"`
	BusAccesses uint64 `json:"bus_accesses"`
	// Samples is the processed sample count; Accuracy the paper's
	// Eq. (1) against MemAccesses.
	Samples  uint64  `json:"samples"`
	Accuracy float64 `json:"accuracy"`
	// TraceMD5 is the rolling checksum (hex) of the scenario's sample
	// stream — byte-identical to the MD5 a local run reports for the
	// same scenario. Empty when the scenario did not sample.
	TraceMD5 string `json:"trace_md5,omitempty"`
	// TraceSamples / TraceBytes / TraceBlocks describe the stored v2
	// blob served by GET /v1/jobs/{id}/trace.
	TraceSamples uint64 `json:"trace_samples,omitempty"`
	TraceBytes   int64  `json:"trace_bytes,omitempty"`
	TraceBlocks  int    `json:"trace_blocks,omitempty"`
	// LatP50/90/99 are sampled-latency percentiles (cycles).
	LatP50 float64 `json:"lat_p50,omitempty"`
	LatP90 float64 `json:"lat_p90,omitempty"`
	LatP99 float64 `json:"lat_p99,omitempty"`
	// Tables are the rendered-table equivalents of the local CLI
	// output (samples by region, by memory level), shipped as data so
	// remote front-ends print exactly what a local run would.
	Tables []*report.Table `json:"tables,omitempty"`
	// Bandwidth / Capacity are the temporal series of counters-mode
	// runs (capacity additionally needs track_rss), shipped so remote
	// front-ends can write the same CSVs a local run does.
	Bandwidth *trace.Series `json:"bandwidth,omitempty"`
	Capacity  *trace.Series `json:"capacity,omitempty"`
}

// ResultDoc is the GET /v1/jobs/{id}/result body: every scenario's
// digest, in submission order.
type ResultDoc struct {
	Key       string           `json:"key"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// SchedStats is the scheduler/cache counter snapshot (GET /v1/stats).
type SchedStats struct {
	// Submitted counts every accepted POST; Rejected counts 429s at
	// the queue cap.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	// EngineRuns counts actual engine batch executions — the counter
	// the cache tests pin: identical submissions must not add to it.
	EngineRuns uint64 `json:"engine_runs"`
	// CacheHits counts submissions answered by a completed cache
	// entry; Coalesced counts submissions that attached to an
	// identical in-flight job.
	CacheHits uint64 `json:"cache_hits"`
	Coalesced uint64 `json:"coalesced"`
	// CacheEntries / CacheEvictions describe the cache population.
	CacheEntries   int    `json:"cache_entries"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// CacheBytesMem / CacheBytesDisk are the current byte occupancy of
	// the two cache tiers; CacheDemotions / CachePromotions count blob
	// movements between them (memory→disk under pressure, disk→memory
	// on hit).
	CacheBytesMem   int64  `json:"cache_bytes_mem"`
	CacheBytesDisk  int64  `json:"cache_bytes_disk"`
	CacheDemotions  uint64 `json:"cache_demotions"`
	CachePromotions uint64 `json:"cache_promotions"`
	// Queued / Running are current occupancy.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// The zero-copy data plane's byte accounting: trace body bytes
	// moved by sendfile(2) (shard spill file → socket), by splice(2)
	// (upstream socket → client socket on the gateway hop), and
	// through the user-space fallback copy (memory-tier blobs,
	// straddler blocks, unwrapped/TLS conns, non-Linux builds). The
	// three sum to total trace bytes served, so the kernel-offload
	// ratio is directly readable. TraceClientAborts / TraceServeErrors
	// split terminal copy failures into "client went away" vs "disk or
	// upstream broke" — previously both were dropped on the floor.
	ZcSendfileBytes   int64  `json:"zc_sendfile_bytes"`
	ZcSpliceBytes     int64  `json:"zc_splice_bytes"`
	ZcFallbackBytes   int64  `json:"zc_fallback_bytes"`
	TraceClientAborts uint64 `json:"trace_client_aborts"`
	TraceServeErrors  uint64 `json:"trace_serve_errors"`
	// UptimeSec is seconds since this process started (a gateway
	// reports its own uptime, not a sum over shards).
	UptimeSec float64 `json:"uptime_sec"`
	// JobPhases summarizes the job lifecycle phase histograms — the
	// JSON twin of nmo_job_phase_seconds.
	JobPhases []PhaseStat `json:"job_phases,omitempty"`
	// Tenants is the per-tenant fair-share view: one row per tenant
	// that has submitted since boot, sorted by name.
	Tenants []TenantStat `json:"tenants,omitempty"`
}

// TenantStat is one tenant's row in the stats view: its DRR weight,
// current occupancy, and lifetime counters. InFlight counts live
// leader jobs (queued + running) — the quantity max_in_flight caps.
type TenantStat struct {
	Tenant     string `json:"tenant"`
	Weight     int    `json:"weight"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	InFlight   int    `json:"in_flight"`
	Submitted  uint64 `json:"submitted"`
	EngineRuns uint64 `json:"engine_runs"`
	Rejected   uint64 `json:"rejected"`
}

// MemberStats is one shard's row in a gateway's fleet stats view.
type MemberStats struct {
	// Member is the shard's address as the gateway was configured with
	// it; Shard is its stable index (the job-ID routing prefix).
	Member string `json:"member"`
	Shard  int    `json:"shard"`
	// Healthy reflects the registry's view (probe + proxy outcomes);
	// Error carries the last failure for unhealthy members.
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Stats is the member's live counter snapshot (nil when the member
	// was unreachable during the fan-out).
	Stats *SchedStats `json:"stats,omitempty"`
}

// FleetStats is the gateway's merged GET /v1/stats body: the summed
// counters inline — a strict superset of one daemon's SchedStats, so
// Client.Stats pointed at a gateway decodes the aggregate unchanged —
// plus one row per member. Sums cover only members that answered the
// fan-out; unreachable shards appear with Healthy=false and no Stats,
// so a fleet total during a partial outage is explicitly a lower
// bound, not a silent undercount.
type FleetStats struct {
	SchedStats
	Members []MemberStats `json:"members"`
}
