package service

import (
	"bytes"
	"io"
	"sync"
)

// TraceBlob is one scenario's stored v2 (or v2.1) trace: the exact
// bytes the run's writer sink produced, plus the stream's rolling MD5.
// The trace endpoint serves Data verbatim (unfiltered requests must be
// byte-identical to a local run's file) or restreams a filtered copy.
type TraceBlob struct {
	Name string
	Data []byte
	MD5  [16]byte
}

// Size returns the blob's byte length.
func (b *TraceBlob) Size() int64 { return int64(len(b.Data)) }

// SectionReader returns an io.ReaderAt-backed view of the stored
// bytes. This is the delivery seam: handlers hand it straight to
// io.Copy (net/http's ResponseWriter implements io.ReaderFrom, so the
// unfiltered path is a single copy loop with no intermediate chunking)
// and to trace.OpenV2 for filtered restreams. When the cache learns to
// spill blobs to disk, this returns a file-backed section and the
// unfiltered path becomes sendfile-eligible without touching handlers.
func (b *TraceBlob) SectionReader() *io.SectionReader {
	return io.NewSectionReader(bytes.NewReader(b.Data), 0, int64(len(b.Data)))
}

// JobArtifacts is everything a finished job can serve: the result
// document and one trace blob per scenario (Data empty for scenarios
// that did not sample). Artifacts are immutable once published —
// handlers read them concurrently without locks.
type JobArtifacts struct {
	Doc    ResultDoc
	Traces []TraceBlob
}

// Trace returns the blob for a scenario by name, or by index when sel
// parses as one ("" = scenario 0).
func (a *JobArtifacts) Trace(sel string) (*TraceBlob, bool) {
	if sel == "" {
		sel = "0"
	}
	for i := range a.Traces {
		if a.Traces[i].Name == sel {
			return &a.Traces[i], true
		}
	}
	if idx, err := parseIndex(sel); err == nil && idx < len(a.Traces) {
		return &a.Traces[idx], true
	}
	return nil, false
}

// entry is one cache slot: in-flight while filled == false (the done
// channel is open and waiters accumulate), completed after Fill. A
// failed or canceled leader Aborts the entry, which removes it from
// the cache — failures are not content-addressable results.
type entry struct {
	key    string
	done   chan struct{}
	art    *JobArtifacts // nil until Fill
	err    error         // set by Abort
	filled bool
}

// Cache is the content-addressed, single-flight result store. Acquire
// is the only admission point: the first job for a key becomes the
// leader (and must later Fill or Abort), every concurrent identical
// submission attaches to the same entry and is completed by the
// leader's outcome — so one simulation serves any number of identical
// requests, and nothing ever simulates twice.
//
// Completed entries evict FIFO by fill order once Cap is exceeded;
// in-flight entries are never evicted.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	fills   []string // completed keys in fill order (eviction queue)

	hits      uint64
	coalesced uint64
	evictions uint64
}

// NewCache builds a cache retaining at most capEntries completed
// results (<= 0 means 256).
func NewCache(capEntries int) *Cache {
	if capEntries <= 0 {
		capEntries = 256
	}
	return &Cache{cap: capEntries, entries: make(map[string]*entry)}
}

// Acquire resolves a key to its entry. leader is true when the caller
// created the entry and owns filling it; false means the entry was
// already present — completed (e.filled, art servable now) or
// in-flight (wait on e.done).
func (c *Cache) Acquire(key string) (e *entry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.filled {
			c.hits++
		} else {
			c.coalesced++
		}
		return e, false
	}
	e = &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// Fill publishes a leader's artifacts, wakes every waiter, and evicts
// the oldest completed entries beyond the cap.
func (c *Cache) Fill(e *entry, art *JobArtifacts) {
	c.mu.Lock()
	e.art = art
	e.filled = true
	c.fills = append(c.fills, e.key)
	for len(c.fills) > c.cap {
		victim := c.fills[0]
		c.fills = c.fills[1:]
		// The victim may have been replaced after an Abort+re-Acquire
		// cycle; only evict the completed entry the queue recorded.
		if v, ok := c.entries[victim]; ok && v.filled {
			delete(c.entries, victim)
			c.evictions++
		}
	}
	// Close before releasing the lock: an Acquire that observes
	// filled=true must also find done closed, so cache-hit
	// submissions are terminal the moment they return.
	close(e.done)
	c.mu.Unlock()
}

// Abort removes a failed leader's entry (so the next identical
// submission re-runs) and propagates err to every waiter.
func (c *Cache) Abort(e *entry, err error) {
	c.mu.Lock()
	e.err = err
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	close(e.done) // inside the lock, for the same reason as Fill
	c.mu.Unlock()
}

// Wait blocks until the entry completes and returns its outcome.
func (e *entry) Wait() (*JobArtifacts, error) {
	<-e.done
	return e.art, e.err
}

// Len returns the number of resident entries (completed + in-flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns (hits, coalesced, evictions).
func (c *Cache) Stats() (hits, coalesced, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.coalesced, c.evictions
}

// parseIndex parses a small non-negative decimal (scenario selector).
func parseIndex(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, errBadIndex
	}
	for _, r := range s {
		if r < '0' || r > '9' || n > 1<<20 {
			return 0, errBadIndex
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}

var errBadIndex = errInvalid("not an index")

// errInvalid is a trivial constant-string error.
type errInvalid string

func (e errInvalid) Error() string { return string(e) }
