package service

import (
	"bytes"
	"container/list"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"nmo/internal/zerocopy"
)

// blobBacking is the storage a TraceBlob currently serves from: a
// resident byte slice, a spill file, or both (write-through). The
// data/path fields are immutable; demotion and promotion swap the
// pointer atomically so in-flight serves keep whichever backing they
// loaded. files pools open descriptors on the spill file so the hot
// serve path pays os.Open once, not per request; mems pools readers
// over the resident slice so the memory tier is allocation-free too.
type blobBacking struct {
	data  []byte // resident copy; nil once demoted to disk
	path  string // spill file; "" for memory-only blobs
	files sync.Pool
	mems  sync.Pool
}

// fileHandle is one pooled serve handle: an open descriptor on the
// spill file plus the reusable copy machinery around it (a
// LimitedReader shell, a Writer shell, a 256 KiB chunk buffer, and a
// zerocopy.FileSection). Pooling the whole kit makes a steady-state
// file-tier serve allocation-free: on a zero-copy connection the
// handler points fs at the descriptor and the blob moves by
// sendfile(2) on the conn's cached raw fd; elsewhere the blob streams
// through the bounded buffer. (Go's own net.sendFile allocates a
// rawConn and closure per call — the regression that kept PR 7 on the
// pooled copy; the cached-rawconn path in internal/zerocopy is what
// finally made the kernel path win.) Either way the payload is never
// staged on the heap in full.
type fileHandle struct {
	f   *os.File
	lr  io.LimitedReader
	out chunkWriter
	buf []byte
	fs  zerocopy.FileSection
}

// chunkWriter is a reusable plain-Writer shell: handing it to
// io.CopyBuffer hides the ResponseWriter's ReaderFrom so the copy
// actually uses the pooled buffer.
type chunkWriter struct{ w io.Writer }

func (cw *chunkWriter) Write(p []byte) (int, error) { return cw.w.Write(p) }

// acquireFile returns a serve handle positioned at offset 0, reusing a
// pooled one when available. Handles that fall out of the pool are
// closed by the runtime's os.File cleanup, so an evicted backing leaks
// nothing.
func (bk *blobBacking) acquireFile() (*fileHandle, error) {
	if h, _ := bk.files.Get().(*fileHandle); h != nil {
		if _, err := h.f.Seek(0, io.SeekStart); err == nil {
			return h, nil
		}
		h.f.Close()
	}
	f, err := os.Open(bk.path)
	if err != nil {
		return nil, err
	}
	// A fresh descriptor means this blob wasn't recently served: hint
	// the whole file ahead so the disk read overlaps the response.
	zerocopy.FadviseWillNeed(f)
	return &fileHandle{f: f}, nil
}

// releaseFile returns a handle from acquireFile to the pool.
func (bk *blobBacking) releaseFile(h *fileHandle) { bk.files.Put(h) }

// acquireMem returns a pooled reader positioned at the start of the
// resident bytes — the memory-tier counterpart of acquireFile, so a
// steady-state resident serve allocates nothing either.
func (bk *blobBacking) acquireMem() *bytes.Reader {
	r, _ := bk.mems.Get().(*bytes.Reader)
	if r == nil {
		r = new(bytes.Reader)
	}
	r.Reset(bk.data)
	return r
}

// releaseMem returns a reader from acquireMem to the pool, dropping
// its view of the data so a pooled reader never pins the slice.
func (bk *blobBacking) releaseMem(r *bytes.Reader) {
	r.Reset(nil)
	bk.mems.Put(r)
}

// TraceBlob is one scenario's stored v2 (or v2.1) trace: the exact
// bytes the run's writer sink produced, plus the stream's rolling MD5.
// The trace endpoint serves the bytes verbatim (unfiltered requests
// must be byte-identical to a local run's file) or restreams a
// filtered copy. A blob may be memory-resident, file-backed (spilled
// to the cache directory and demoted), or both; the accessor methods
// hide which, except that file-backed serves hand the handler a
// pooled handle on the real *os.File so the payload streams through
// one bounded buffer instead of being read back onto the heap.
type TraceBlob struct {
	Name string
	MD5  [16]byte

	size    int64
	backing atomic.Pointer[blobBacking]
}

// NewTraceBlob builds a memory-resident blob (data nil/empty for
// scenarios that did not sample).
func NewTraceBlob(name string, data []byte, sum [16]byte) *TraceBlob {
	b := &TraceBlob{Name: name, MD5: sum, size: int64(len(data))}
	b.backing.Store(&blobBacking{data: data})
	return b
}

// fileTraceBlob builds a blob served from an already-verified spill
// file (the boot-recovery constructor).
func fileTraceBlob(name string, path string, size int64, sum [16]byte) *TraceBlob {
	b := &TraceBlob{Name: name, MD5: sum, size: size}
	b.backing.Store(&blobBacking{path: path})
	return b
}

// Size returns the blob's byte length.
func (b *TraceBlob) Size() int64 { return b.size }

// FileBacked reports whether the blob currently serves from its spill
// file (demoted: no resident copy).
func (b *TraceBlob) FileBacked() bool {
	bk := b.backing.Load()
	return bk != nil && bk.data == nil && bk.path != ""
}

// Bytes materializes the blob's contents (reading the spill file when
// demoted). Tests and the digest path use it; the serving path uses
// open so file-backed blobs never round-trip through the heap.
func (b *TraceBlob) Bytes() ([]byte, error) {
	bk := b.backing.Load()
	if bk == nil {
		return nil, nil
	}
	if bk.data != nil || bk.path == "" {
		return bk.data, nil
	}
	return os.ReadFile(bk.path)
}

// open pins the blob's current backing for one request: either the
// resident bytes or a serve handle positioned at 0, drawn from the
// backing's descriptor pool (the caller must return it with
// bk.releaseFile). Every serve gets its own file offset, and an
// evicted-but-open file keeps serving to its in-flight readers under
// POSIX unlink semantics.
func (b *TraceBlob) open() (data []byte, h *fileHandle, bk *blobBacking, err error) {
	bk = b.backing.Load()
	if bk == nil {
		return nil, nil, nil, nil
	}
	if bk.data != nil || bk.path == "" {
		return bk.data, nil, bk, nil
	}
	h, err = bk.acquireFile()
	if err != nil {
		return nil, nil, bk, err
	}
	return nil, h, bk, nil
}

// JobArtifacts is everything a finished job can serve: the result
// document and one trace blob per scenario (empty for scenarios that
// did not sample). The structure is immutable once published; only
// each blob's backing pointer moves as the cache demotes and promotes.
type JobArtifacts struct {
	Doc    ResultDoc
	Traces []*TraceBlob
}

// Trace returns the blob for a scenario by name, or by index when sel
// parses as one ("" = scenario 0).
func (a *JobArtifacts) Trace(sel string) (*TraceBlob, bool) {
	if sel == "" {
		sel = "0"
	}
	for _, b := range a.Traces {
		if b.Name == sel {
			return b, true
		}
	}
	if idx, err := parseIndex(sel); err == nil && idx < len(a.Traces) {
		return a.Traces[idx], true
	}
	return nil, false
}

// size sums the artifact's blob bytes (the unit the byte budgets
// account in; the result document is noise next to any trace).
func (a *JobArtifacts) size() int64 {
	var n int64
	for _, b := range a.Traces {
		n += b.Size()
	}
	return n
}

// entry is one cache slot: in-flight while filled == false (the done
// channel is open and waiters accumulate), completed after Fill. A
// failed or canceled leader Aborts the entry, which removes it from
// the cache — failures are not content-addressable results.
type entry struct {
	key    string
	done   chan struct{}
	art    *JobArtifacts // nil until Fill
	err    error         // set by Abort
	filled bool

	// Tier bookkeeping, guarded by the cache mutex. size is the blob
	// byte total; memBytes is size while resident, 0 once demoted;
	// diskBytes is size while the entry's spill files exist.
	size      int64
	memBytes  int64
	diskBytes int64
	persisted bool
	elem      *list.Element
}

// CacheConfig sizes the two-tier cache. Dir == "" disables the disk
// tier entirely (memory-only, nothing survives a restart).
type CacheConfig struct {
	Dir        string // spill directory ("" = memory-only)
	MemBudget  int64  // resident blob bytes; <= 0 means 256 MiB
	DiskBudget int64  // spilled blob bytes; <= 0 means 4 GiB
}

// maxEntries is a backstop on entry count: blob-less results (counters
// mode) are byte-budget-invisible, so a count cap keeps a pathological
// all-counters workload from growing the map without bound.
const maxEntries = 1 << 14

// Cache is the content-addressed, single-flight, two-tier result
// store. Acquire is the only admission point: the first job for a key
// becomes the leader (and must later Fill or Abort), every concurrent
// identical submission attaches to the same entry and is completed by
// the leader's outcome — so one simulation serves any number of
// identical requests, and nothing ever simulates twice.
//
// Tier 1 is the in-memory hot set, tier 2 the spill directory. Fill
// writes through to disk (v2/v2.1 blob files plus a JSON sidecar,
// temp-file + rename + fsync), so demotion is a pointer swap that
// drops the heap copy and a restart recovers every persisted entry.
// Both tiers evict LRU by bytes: memory pressure demotes (or, with no
// disk tier, evicts), disk pressure deletes the coldest entry's files.
// In-flight entries are never evicted.
type Cache struct {
	mu      sync.Mutex
	cfg     CacheConfig
	entries map[string]*entry
	lru     *list.List // completed entries, MRU at front

	bytesMem  int64
	bytesDisk int64

	hits       uint64
	coalesced  uint64
	evictions  uint64
	demotions  uint64
	promotions uint64
}

// CacheStats is a point-in-time snapshot of the cache counters and
// tier occupancy.
type CacheStats struct {
	Hits       uint64
	Coalesced  uint64
	Evictions  uint64
	Demotions  uint64
	Promotions uint64
	BytesMem   int64
	BytesDisk  int64
	Entries    int
}

// NewCache builds the store. With cfg.Dir set, the directory is
// created if needed and scanned for entries a previous daemon spilled:
// every sidecar whose blob files exist, parse as v2/v2.1, and rehash
// to their recorded rolling MD5s is adopted file-backed (the restart-
// warm set); torn temp-files, corrupt blobs, and orphans are renamed
// aside with a .quarantine suffix and a logged warning. The only error
// is a spill directory that cannot be created or read.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 256 << 20
	}
	if cfg.DiskBudget <= 0 {
		cfg.DiskBudget = 4 << 30
	}
	c := &Cache{cfg: cfg, entries: make(map[string]*entry), lru: list.New()}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := c.loadDir(); err != nil {
			return nil, err
		}
		c.rebalanceLocked() // recovered set may exceed the (new) budget
	}
	return c, nil
}

// Acquire resolves a key to its entry. leader is true when the caller
// created the entry and owns filling it; false means the entry was
// already present — completed (e.filled, art servable now) or
// in-flight (wait on e.done). A hit on a demoted entry that fits the
// memory budget promotes it back to the hot set.
func (c *Cache) Acquire(key string) (e *entry, leader bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		promote := false
		if e.filled {
			c.hits++
			c.touchLocked(e)
			promote = e.persisted && e.memBytes == 0 && e.size <= c.cfg.MemBudget
		} else {
			c.coalesced++
		}
		c.mu.Unlock()
		if promote {
			c.promote(e)
		}
		return e, false
	}
	e = &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	return e, true
}

// Fill publishes a leader's artifacts, wakes every waiter, and
// rebalances both tiers. With a disk tier configured the artifacts are
// persisted first (write-through), outside the lock — the single-
// flight protocol guarantees one leader per key, so no two goroutines
// ever persist the same entry. Persistence failures degrade the entry
// to memory-only; they never fail the job.
func (c *Cache) Fill(e *entry, art *JobArtifacts) {
	diskBytes, persisted := c.persist(e.key, art)
	c.mu.Lock()
	e.art = art
	e.filled = true
	e.size = art.size()
	e.persisted = persisted
	if cur, ok := c.entries[e.key]; ok && cur == e {
		e.memBytes = e.size
		c.bytesMem += e.size
		if persisted {
			e.diskBytes = diskBytes
			c.bytesDisk += diskBytes
		}
		e.elem = c.lru.PushFront(e)
		c.rebalanceLocked()
	}
	// Close before releasing the lock: an Acquire that observes
	// filled=true must also find done closed, so cache-hit
	// submissions are terminal the moment they return.
	close(e.done)
	c.mu.Unlock()
}

// Abort removes a failed leader's entry (so the next identical
// submission re-runs) and propagates err to every waiter.
func (c *Cache) Abort(e *entry, err error) {
	c.mu.Lock()
	e.err = err
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	close(e.done) // inside the lock, for the same reason as Fill
	c.mu.Unlock()
}

// Wait blocks until the entry completes and returns its outcome.
func (e *entry) Wait() (*JobArtifacts, error) {
	<-e.done
	return e.art, e.err
}

// touchLocked moves a completed entry to the MRU end.
func (c *Cache) touchLocked(e *entry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// promote reads a demoted entry's spill files back into memory. The
// file reads run outside the lock; the backing swap and accounting are
// re-checked under it, so a concurrent demote/evict/promote of the
// same entry resolves to exactly one accounted resident copy.
func (c *Cache) promote(e *entry) {
	type loaded struct {
		b    *TraceBlob
		data []byte
	}
	var ls []loaded
	for _, b := range e.art.Traces {
		bk := b.backing.Load()
		if bk == nil || bk.data != nil || bk.path == "" {
			continue
		}
		data, err := os.ReadFile(bk.path)
		if err != nil {
			return // evicted under us; the entry serves from whatever remains
		}
		ls = append(ls, loaded{b, data})
	}
	if len(ls) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[e.key]; !ok || cur != e || e.memBytes > 0 {
		return
	}
	for _, l := range ls {
		bk := l.b.backing.Load()
		l.b.backing.Store(&blobBacking{data: l.data, path: bk.path})
	}
	e.memBytes = e.size
	c.bytesMem += e.size
	c.promotions++
	c.rebalanceLocked()
}

// demoteLocked drops an entry's resident copies, leaving it serving
// from its spill files.
func (c *Cache) demoteLocked(e *entry) {
	for _, b := range e.art.Traces {
		bk := b.backing.Load()
		if bk != nil && bk.data != nil && bk.path != "" {
			b.backing.Store(&blobBacking{path: bk.path})
		}
	}
	c.bytesMem -= e.memBytes
	e.memBytes = 0
	c.demotions++
}

// evictLocked removes an entry from the cache entirely, deleting its
// spill files. Jobs still holding the artifacts keep serving resident
// copies; file-backed blobs of an evicted entry fail their next open
// (and keep serving already-open requests, per unlink semantics).
func (c *Cache) evictLocked(e *entry) {
	delete(c.entries, e.key)
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	c.bytesMem -= e.memBytes
	e.memBytes = 0
	if e.persisted {
		c.bytesDisk -= e.diskBytes
		e.diskBytes = 0
		c.removeSpill(e)
	}
	c.evictions++
}

// rebalanceLocked enforces both byte budgets (and the entry-count
// backstop), coldest first. Memory pressure demotes persisted entries
// and evicts memory-only ones; disk pressure evicts outright.
func (c *Cache) rebalanceLocked() {
	for c.bytesMem > c.cfg.MemBudget {
		victim := c.coldestLocked(func(e *entry) bool { return e.memBytes > 0 })
		if victim == nil {
			break
		}
		if victim.persisted {
			c.demoteLocked(victim)
		} else {
			c.evictLocked(victim)
		}
	}
	for c.bytesDisk > c.cfg.DiskBudget {
		victim := c.coldestLocked(func(e *entry) bool { return e.diskBytes > 0 })
		if victim == nil {
			break
		}
		c.evictLocked(victim)
	}
	for c.lru.Len() > maxEntries {
		c.evictLocked(c.lru.Back().Value.(*entry))
	}
}

// coldestLocked walks the LRU from the cold end for the first entry
// matching pred.
func (c *Cache) coldestLocked(pred func(*entry) bool) *entry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); pred(e) {
			return e
		}
	}
	return nil
}

// Len returns the number of resident entries (completed + in-flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the cache counters and tier occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits,
		Coalesced:  c.coalesced,
		Evictions:  c.evictions,
		Demotions:  c.demotions,
		Promotions: c.promotions,
		BytesMem:   c.bytesMem,
		BytesDisk:  c.bytesDisk,
		Entries:    len(c.entries),
	}
}

// parseIndex parses a small non-negative decimal (scenario selector).
func parseIndex(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, errBadIndex
	}
	for _, r := range s {
		if r < '0' || r > '9' || n > 1<<20 {
			return 0, errBadIndex
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}

var errBadIndex = errInvalid("not an index")

// errInvalid is a trivial constant-string error.
type errInvalid string

func (e errInvalid) Error() string { return string(e) }
