package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"nmo/internal/core"
	"nmo/internal/machine"
	"nmo/internal/sampler"
	"nmo/internal/workloads"
)

// keyVersion salts every cache key; bump it when resolution or the
// stored-artifact shape changes so stale entries can never be served
// across an upgrade.
const keyVersion = "nmo-service-v2"

// resolved is one normalized, executable scenario: the spec with every
// default filled, plus the core.Config / machine.Spec pair it maps to
// and the scenario's content-address. Resolution is pure — it builds
// no machine and runs nothing — so Submit can key and validate a job
// without touching a worker.
type resolved struct {
	spec ScenarioSpec // normalized (defaults filled)
	mach machine.Spec // platform the scenario runs on
	cfg  core.Config  // resolved profiler configuration
	key  string       // scenario content-address (hex)
	kind sampler.Kind // resolved backend (admission-control resource)
}

// Sanity bounds on workload shapes: generous enough for any paper-
// scale experiment, small enough that one malicious spec cannot make
// the daemon allocate a planet-sized mesh.
const (
	maxElems   = 1 << 28
	maxThreads = 4096
	maxCores   = 4096
	maxIters   = 1000
	// maxBufMiB bounds the ring/aux buffer request (per-core kernel
	// state scales with it); maxBlockSamples bounds the v2 writer's
	// eager block buffer (36 B per sample slot, so 1<<20 ≈ 36 MB).
	maxBufMiB       = 1 << 10
	maxBlockSamples = 1 << 20
)

// normalize fills a ScenarioSpec's defaults — the shared wire/CLI
// constants, so a defaulted spec resolves to the same scenario a
// defaulted local nmoprof invocation runs.
func normalize(sp ScenarioSpec) ScenarioSpec {
	if sp.Threads == 0 {
		sp.Threads = DefaultThreads
	}
	if sp.Elems == 0 {
		sp.Elems = DefaultElems
	}
	if sp.Iters == 0 {
		sp.Iters = DefaultIters
	}
	if sp.Cores == 0 {
		sp.Cores = DefaultCores
	}
	if sp.Seed == 0 {
		sp.Seed = DefaultSeed
	}
	if sp.Mode == "" {
		sp.Mode = "sample"
	}
	// Name defaulting happens in resolveJob, which sees the whole
	// batch: a defaulted name is the workload name, index-suffixed
	// only when that would collide.
	return sp
}

// resolveScenario validates and resolves one spec into its executable
// form and content-address.
func resolveScenario(sp ScenarioSpec, index int) (resolved, error) {
	sp = normalize(sp)

	switch sp.Workload {
	case "stream", "cfd", "bfs":
	case "":
		return resolved{}, fmt.Errorf("scenario %d: missing workload", index)
	default:
		return resolved{}, fmt.Errorf("scenario %d: unknown workload %q (supported: stream, cfd, bfs)", index, sp.Workload)
	}
	// Reject out-of-range shapes here with a 400, not at run time via
	// a recovered constructor panic after the job burned a worker.
	switch {
	case sp.Threads < 1 || sp.Threads > maxThreads:
		return resolved{}, fmt.Errorf("scenario %d: threads %d out of range [1, %d]", index, sp.Threads, maxThreads)
	case sp.Elems < 1 || sp.Elems > maxElems:
		return resolved{}, fmt.Errorf("scenario %d: elems %d out of range [1, %d]", index, sp.Elems, maxElems)
	case sp.Iters < 1 || sp.Iters > maxIters:
		return resolved{}, fmt.Errorf("scenario %d: iters %d out of range [1, %d]", index, sp.Iters, maxIters)
	case sp.Cores < 1 || sp.Cores > maxCores:
		return resolved{}, fmt.Errorf("scenario %d: cores %d out of range [1, %d]", index, sp.Cores, maxCores)
	case sp.BlockSamples < 0 || sp.BlockSamples > maxBlockSamples:
		return resolved{}, fmt.Errorf("scenario %d: block_samples %d out of range [0, %d]", index, sp.BlockSamples, maxBlockSamples)
	case sp.BufMiB < 0 || sp.BufMiB > maxBufMiB:
		return resolved{}, fmt.Errorf("scenario %d: buf_mib %d out of range [0, %d]", index, sp.BufMiB, maxBufMiB)
	case sp.AuxMiB < 0 || sp.AuxMiB > maxBufMiB:
		return resolved{}, fmt.Errorf("scenario %d: aux_mib %d out of range [0, %d]", index, sp.AuxMiB, maxBufMiB)
	}

	mode, err := core.ParseMode(sp.Mode)
	if err != nil {
		return resolved{}, fmt.Errorf("scenario %d: %v", index, err)
	}

	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.Enable = mode != core.ModeNone
	cfg.Seed = sp.Seed
	cfg.Period = sp.Period
	cfg.TrackRSS = sp.TrackRSS
	if sp.BufMiB > 0 {
		cfg.BufMiB = sp.BufMiB
	}
	if sp.AuxMiB > 0 {
		cfg.AuxMiB = sp.AuxMiB
	}
	if sp.Backend != "" {
		kind, err := sampler.ParseKind(sp.Backend)
		if err != nil {
			return resolved{}, fmt.Errorf("scenario %d: %v", index, err)
		}
		cfg.Backend = kind
	}
	if err := cfg.Validate(); err != nil {
		return resolved{}, fmt.Errorf("scenario %d: %v", index, err)
	}

	// Canonicalize to *effective* values before keying, so explicit
	// defaults and implicit ones share a content address: period 0
	// and 4096 are the same sampling run, backend "" and "spe" the
	// same platform. (For non-sampling modes the period is unused;
	// zeroing it merges those aliases too.)
	cfg.Backend = cfg.EffectiveBackend("")
	sp.Backend = string(cfg.Backend)
	if mode.Sampling() {
		cfg.Period = cfg.EffectivePeriod()
	} else {
		cfg.Period = 0
	}
	sp.Period = cfg.Period
	if sp.Workload == "bfs" {
		// BFS ignores iters (NewStandard pins 3 traversals); pin the
		// canonical value so specs differing only in the ignored knob
		// share a content address.
		sp.Iters = 3
	}

	spec := machine.SpecForArch(cfg.Backend.Arch()).WithCores(sp.Cores)
	if sp.Threads > spec.Cores {
		return resolved{}, fmt.Errorf("scenario %d: %d threads exceed %d cores", index, sp.Threads, spec.Cores)
	}

	return resolved{
		spec: sp,
		mach: spec,
		cfg:  cfg,
		key:  scenarioKey(sp, spec, cfg),
		kind: cfg.Backend,
	}, nil
}

// workloadFactory builds the scenario's workload through the same
// canonical constructor cmd/nmoprof's local path uses
// (workloads.NewStandard), so remote and local runs cannot drift.
func (r *resolved) workloadFactory() (workloads.Workload, error) {
	sp := r.spec
	return workloads.NewStandard(sp.Workload, sp.Elems, sp.Threads, sp.Iters, sp.Seed)
}

// scenarioKey derives the scenario's content-address: a SHA-256 over
// the canonical config encoding (core owns the semantic/delivery field
// split), the machine spec (JSON is deterministic — struct field
// order — and the spec is plain data), and the workload-shaping spec
// fields. Two scenarios with equal keys produce bit-identical profiles
// and trace blobs, which is the invariant the result cache rests on.
func scenarioKey(sp ScenarioSpec, mach machine.Spec, cfg core.Config) string {
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{0})
	h.Write(cfg.CanonicalBytes())
	h.Write([]byte{0})
	// machine.Spec and the workload fields are plain data; JSON
	// encodes them deterministically.
	enc := json.NewEncoder(h)
	enc.Encode(mach)
	fmt.Fprintf(h, "workload=%s\nthreads=%d\nelems=%d\niters=%d\nseed=%d\nblock=%d\ncompress=%t\n",
		sp.Workload, sp.Threads, sp.Elems, sp.Iters, sp.Seed, sp.BlockSamples, sp.Compress)
	return hex.EncodeToString(h.Sum(nil))
}

// ContentAddress resolves a job spec to its content-address — the key
// the result cache files the job's artifacts under — without running
// anything. It is the shared keying point of the fleet: the gateway
// hashes the same resolution the scheduler's cache admission performs,
// so a submission routed by ContentAddress lands on exactly the shard
// whose single-flight cache holds (or will hold) its result. Invalid
// specs return the same error Submit would reject them with.
func ContentAddress(spec JobSpec) (string, error) {
	_, key, err := resolveJob(spec)
	return key, err
}

// resolveJob resolves every scenario of a spec and derives the job's
// content-address (the hash of its scenario keys, order included — a
// job is its scenario sequence).
func resolveJob(spec JobSpec) ([]resolved, string, error) {
	if len(spec.Scenarios) == 0 {
		return nil, "", fmt.Errorf("job has no scenarios")
	}
	if len(spec.Scenarios) > maxScenarios {
		return nil, "", fmt.Errorf("job has %d scenarios (limit %d)", len(spec.Scenarios), maxScenarios)
	}
	rs := make([]resolved, len(spec.Scenarios))
	names := make(map[string]bool, len(spec.Scenarios))
	h := sha256.New()
	h.Write([]byte(keyVersion + ":job"))
	for i, sp := range spec.Scenarios {
		r, err := resolveScenario(sp, i)
		if err != nil {
			return nil, "", err
		}
		if r.spec.Name == "" {
			// Default name: the workload, index-suffixed only when
			// the plain name is already taken — so a [stream, cfd]
			// sweep addresses its traces as "stream" and "cfd",
			// matching the local CLI's file naming.
			r.spec.Name = r.spec.Workload
			if names[r.spec.Name] {
				r.spec.Name = fmt.Sprintf("%s#%d", r.spec.Workload, i)
			}
		}
		if names[r.spec.Name] {
			return nil, "", fmt.Errorf("scenario name %q duplicated (traces are addressed by name)", r.spec.Name)
		}
		names[r.spec.Name] = true
		rs[i] = r
		fmt.Fprintf(h, "\x00%s\x00%s", r.spec.Name, r.key)
	}
	return rs, hex.EncodeToString(h.Sum(nil)), nil
}

// maxScenarios bounds one job's grid; sweeps larger than this should
// be split into jobs so the queue stays responsive.
const maxScenarios = 256

// backends returns the distinct backend kinds a job's scenarios
// occupy, in first-appearance order — the resources its admission is
// checked against.
func backends(rs []resolved) []sampler.Kind {
	var out []sampler.Kind
	for i := range rs {
		k := rs[i].kind
		found := false
		for _, o := range out {
			if o == k {
				found = true
				break
			}
		}
		if !found {
			out = append(out, k)
		}
	}
	return out
}

// parseBackendList parses a comma-separated backend list ("spe,pebs")
// for the daemon's admission-control flags.
func parseBackendList(s string) ([]sampler.Kind, error) {
	var out []sampler.Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := sampler.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
