package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"nmo/internal/obs"
)

// scrapeMetrics fetches and parses /metrics into a map keyed by the
// series as rendered (name plus label block), value as float.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsStatsAgree drives a mixed workload — two distinct jobs,
// an identical resubmission (cache hit), a rejected spec, a trace
// download — then asserts the Prometheus exposition and the /v1/stats
// JSON agree exactly on every shared counter. Both views render the
// same registry words, so any drift is a wiring bug.
func TestMetricsStatsAgree(t *testing.T) {
	sched := NewScheduler(SchedConfig{Workers: 2}, nil)
	defer sched.Close()
	srv := httptest.NewServer(NewServer(sched))
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	spec := func(seed uint64) JobSpec {
		return JobSpec{Scenarios: []ScenarioSpec{{
			Workload: "stream", Threads: 2, Elems: 10_000, Iters: 1, Cores: 4,
			Seed: seed, Period: 700,
		}}}
	}
	var lastID string
	for _, seed := range []uint64{42, 43, 42} { // third is a cache hit
		info, err := client.Submit(ctx, spec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, 0); err != nil {
			t.Fatal(err)
		}
		lastID = info.ID
	}
	if _, err := client.Submit(ctx, JobSpec{Scenarios: []ScenarioSpec{{Workload: "no-such"}}}); err == nil {
		t.Fatal("bad spec accepted")
	}
	opt := NewTraceOptions()
	if _, _, err := client.DownloadTrace(ctx, lastID, opt, io.Discard); err != nil {
		t.Fatal(err)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mx := scrapeMetrics(t, srv.URL)

	checks := []struct {
		series string
		want   float64
	}{
		{"nmo_jobs_submitted_total", float64(st.Submitted)},
		{"nmo_jobs_rejected_total", float64(st.Rejected)},
		{"nmo_engine_runs_total", float64(st.EngineRuns)},
		{"nmo_cache_hits_total", float64(st.CacheHits)},
		{"nmo_cache_coalesced_total", float64(st.Coalesced)},
		{"nmo_cache_entries", float64(st.CacheEntries)},
		{"nmo_cache_evictions_total", float64(st.CacheEvictions)},
		{"nmo_cache_demotions_total", float64(st.CacheDemotions)},
		{"nmo_cache_promotions_total", float64(st.CachePromotions)},
		{`nmo_cache_bytes{tier="mem"}`, float64(st.CacheBytesMem)},
		{`nmo_cache_bytes{tier="disk"}`, float64(st.CacheBytesDisk)},
		{"nmo_queue_depth", float64(st.Queued)},
		{"nmo_jobs_running", float64(st.Running)},
		{`nmo_zc_bytes_total{path="sendfile"}`, float64(st.ZcSendfileBytes)},
		{`nmo_zc_bytes_total{path="splice"}`, float64(st.ZcSpliceBytes)},
		{`nmo_zc_bytes_total{path="fallback"}`, float64(st.ZcFallbackBytes)},
		{"nmo_trace_client_aborts_total", float64(st.TraceClientAborts)},
		{"nmo_trace_serve_errors_total", float64(st.TraceServeErrors)},
	}
	for _, c := range checks {
		got, ok := mx[c.series]
		if !ok {
			t.Errorf("series %s missing from /metrics", c.series)
			continue
		}
		if got != c.want {
			t.Errorf("%s: /metrics %v != /v1/stats %v", c.series, got, c.want)
		}
	}

	// The workload's known shape: 3 accepted, 1 rejected, 2 engine
	// runs (the duplicate must not re-simulate), 1 cache hit, and the
	// trace download moved bytes through the fallback path (httptest
	// conns are not zero-copy wrapped).
	if st.Submitted != 3 || st.Rejected != 1 || st.EngineRuns != 2 || st.CacheHits != 1 {
		t.Errorf("workload counters off: %+v", st)
	}
	if st.ZcFallbackBytes <= 0 {
		t.Errorf("trace download did not count fallback bytes: %+v", st)
	}
	if st.UptimeSec <= 0 {
		t.Errorf("uptime not reported: %+v", st)
	}

	// Build-info and HTTP middleware series exist.
	for _, prefix := range []string{"nmo_build_info{", "nmo_process_start_time_seconds",
		`nmo_http_requests_total{route="POST /v1/jobs",code="2xx"}`} {
		found := false
		for k := range mx {
			if strings.HasPrefix(k, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series with prefix %s in /metrics", prefix)
		}
	}

	// Phase summary: every phase present, run observed twice (once per
	// engine run), and the histogram twin agrees with the JSON view.
	phases := make(map[string]PhaseStat, len(st.JobPhases))
	for _, p := range st.JobPhases {
		phases[p.Phase] = p
	}
	for _, name := range JobPhaseNames {
		p, ok := phases[name]
		if !ok {
			t.Errorf("phase %q missing from stats", name)
			continue
		}
		if got := mx[`nmo_job_phase_seconds_count{phase="`+name+`"}`]; got != float64(p.Count) {
			t.Errorf("phase %q: histogram count %v != stats count %d", name, got, p.Count)
		}
	}
	if phases["run"].Count != 2 {
		t.Errorf("run phase count = %d, want 2 (one per engine run)", phases["run"].Count)
	}
	if phases["cache_lookup"].Count != 3 {
		t.Errorf("cache_lookup count = %d, want 3 (every admission)", phases["cache_lookup"].Count)
	}
}

// TestJobPhasesExposed pins the per-job timing breakdown on the wire:
// a finished leader job reports all five phases; a cache-served job
// reports only the lookup.
func TestJobPhasesExposed(t *testing.T) {
	sched := NewScheduler(SchedConfig{Workers: 1}, nil)
	defer sched.Close()
	srv := httptest.NewServer(NewServer(sched))
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	spec := JobSpec{Scenarios: []ScenarioSpec{{
		Workload: "stream", Threads: 2, Elems: 10_000, Iters: 1, Cores: 4, Seed: 42, Period: 700,
	}}}
	info, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	done, err := client.Wait(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done.Phases == nil {
		t.Fatal("finished job has no phase breakdown")
	}
	if done.Phases.RunSec <= 0 || done.Phases.DigestSec <= 0 {
		t.Errorf("run/digest phases not timed: %+v", *done.Phases)
	}
	if done.Phases.QueueWaitSec <= 0 || done.Phases.CacheLookupSec <= 0 {
		t.Errorf("admission phases not timed: %+v", *done.Phases)
	}

	hit, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, hit.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Cached {
		t.Fatal("resubmission not served from cache")
	}
	if final.Phases == nil || final.Phases.CacheLookupSec <= 0 {
		t.Errorf("cache-served job should report its lookup phase: %+v", final.Phases)
	}
	if final.Phases.RunSec != 0 {
		t.Errorf("cache-served job must not report a run phase: %+v", *final.Phases)
	}
}

// TestRequestIDOnJob pins the request-ID stamp end to end at the shard
// tier: an inbound X-Nmo-Request-Id lands in the submission response,
// the job record, and the job's audit lines.
func TestRequestIDOnJob(t *testing.T) {
	var sink strings.Builder
	audit := obs.NewAuditWriter(&sink)
	sched := NewScheduler(SchedConfig{Workers: 1, Metrics: NewMetrics(audit)}, nil)
	defer sched.Close()
	srv := httptest.NewServer(NewServer(sched))
	defer srv.Close()

	body := `{"scenarios":[{"workload":"stream","threads":2,"elems":10000,"iters":1,"cores":4,"period":700}]}`
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "r-e2e-test")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "r-e2e-test" {
		t.Errorf("response header echoed %q", got)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.RequestID != "r-e2e-test" {
		t.Errorf("job record request_id = %q", info.RequestID)
	}
	if _, err := NewClient(srv.URL).Wait(context.Background(), info.ID, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), `"req_id":"r-e2e-test"`) ||
		!strings.Contains(sink.String(), `"state":"done"`) {
		t.Errorf("audit lines missing the request ID or terminal state:\n%s", sink.String())
	}
}
