package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nmo/internal/trace"
	"nmo/internal/zerocopy"
)

// The spill directory holds, per cached entry:
//
//	<key>.t<i>.nmo2   scenario i's trace — a plain v2/v2.1 file, the
//	                  exact bytes the daemon serves (no envelope, so
//	                  nmostat opens it directly and the unfiltered
//	                  /trace path is a sendfile of this file)
//	<key>.json        sidecar: the result document plus per-trace
//	                  name/size/MD5 manifest
//
// where <key> is the job's content address (hex SHA-256, filename-
// safe by construction). Every file is written to a .tmp-* name in
// the same directory, fsynced, then renamed; the sidecar is written
// last, so it is the commit point — a crash leaves either a complete
// entry or stray files the next boot quarantines.

const (
	spillTmpPrefix  = ".tmp-"
	spillBlobSuffix = ".nmo2"
	spillMetaSuffix = ".json"
	quarantineExt   = ".quarantine"
)

// sidecarDoc is the on-disk manifest committing one cache entry.
type sidecarDoc struct {
	Version int            `json:"version"`
	Key     string         `json:"key"`
	Doc     ResultDoc      `json:"doc"`
	Traces  []sidecarTrace `json:"traces"`
}

// sidecarTrace records one blob of the entry. Bytes 0 (a scenario
// that did not sample) has no file.
type sidecarTrace struct {
	Name  string `json:"name,omitempty"`
	MD5   string `json:"md5,omitempty"`
	Bytes int64  `json:"bytes"`
	File  string `json:"file,omitempty"`
}

// spillBlobName names scenario i's blob file for a key.
func spillBlobName(key string, i int) string {
	return fmt.Sprintf("%s.t%d%s", key, i, spillBlobSuffix)
}

// persist writes art through to the spill directory and re-points each
// blob's backing at its file (data still resident — demotion later is
// a pointer swap). Returns the spilled byte total and whether the
// entry committed; any failure logs a warning and leaves the entry
// memory-only (stray files are quarantined by the next boot scan).
func (c *Cache) persist(key string, art *JobArtifacts) (int64, bool) {
	if c.cfg.Dir == "" {
		return 0, false
	}
	var total int64
	sc := sidecarDoc{Version: 1, Key: key, Doc: art.Doc}
	for i, b := range art.Traces {
		st := sidecarTrace{Name: b.Name, Bytes: b.Size()}
		if b.Size() > 0 {
			data, err := b.Bytes() // resident at fill time, never fails
			if err == nil {
				err = atomicWrite(filepath.Join(c.cfg.Dir, spillBlobName(key, i)), data)
			}
			if err != nil {
				log.Printf("cache: spill of %s failed, entry stays memory-only: %v", key, err)
				return 0, false
			}
			st.MD5 = hex.EncodeToString(b.MD5[:])
			st.File = spillBlobName(key, i)
			b.backing.Store(&blobBacking{data: data, path: filepath.Join(c.cfg.Dir, st.File)})
			total += b.Size()
		}
		sc.Traces = append(sc.Traces, st)
	}
	js, err := json.Marshal(&sc)
	if err == nil {
		err = atomicWrite(filepath.Join(c.cfg.Dir, key+spillMetaSuffix), js)
	}
	if err != nil {
		log.Printf("cache: sidecar of %s failed, entry stays memory-only: %v", key, err)
		return 0, false
	}
	syncDir(c.cfg.Dir)
	return total, true
}

// removeSpill deletes an evicted entry's files (sidecar first, so a
// crash mid-removal leaves orphan blobs, not a sidecar pointing at
// nothing — both are quarantined states, but orphans never resurrect
// a half-deleted entry).
func (c *Cache) removeSpill(e *entry) {
	os.Remove(filepath.Join(c.cfg.Dir, e.key+spillMetaSuffix))
	for _, b := range e.art.Traces {
		if bk := b.backing.Load(); bk != nil && bk.path != "" {
			// The blob is dead: hand its page-cache pages back before
			// the unlink, so a churning disk tier doesn't squat on
			// memory the live blobs (and the OS) want.
			zerocopy.DropPageCache(bk.path)
			os.Remove(bk.path)
		}
	}
}

// atomicWrite lands data at path via temp-file + fsync + rename, so a
// crash at any point leaves either the old file, no file, or a .tmp-*
// stray — never a torn path.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, spillTmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// syncDir fsyncs a directory so renames into it are durable. Best
// effort — some filesystems reject directory fsync.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// quarantine renames a suspect file aside and logs why. The file is
// kept (suffixed, never rescanned) rather than deleted so an operator
// can inspect what went wrong.
func (c *Cache) quarantine(name, why string) {
	from := filepath.Join(c.cfg.Dir, name)
	if err := os.Rename(from, from+quarantineExt); err != nil {
		log.Printf("cache: warning: %s: %s (quarantine failed: %v)", name, why, err)
		return
	}
	log.Printf("cache: warning: quarantined %s: %s", name, why)
}

// loadDir scans the spill directory on boot and adopts every entry
// that verifies: sidecar parses and matches its filename's key, every
// blob file exists at the recorded size, opens as v2/v2.1, and rehashes
// to the recorded rolling MD5. Verified entries join the cache
// file-backed (tier 2 only), LRU-ordered by sidecar mtime. Torn
// .tmp-* strays, unverifiable entries, and orphan blobs are
// quarantined with a warning — a corrupt spill dir degrades to a cold
// start, never a failed or panicking boot.
func (c *Cache) loadDir() error {
	des, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return err
	}

	type recovered struct {
		e     *entry
		mtime int64
	}
	var recs []recovered
	claimed := make(map[string]bool)

	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, spillTmpPrefix) {
			c.quarantine(name, "torn temp-file from an interrupted spill")
			continue
		}
		if !strings.HasSuffix(name, spillMetaSuffix) {
			continue
		}
		key := strings.TrimSuffix(name, spillMetaSuffix)
		claimed[name] = true
		sc, blobs, mtime, why := c.verifyEntry(key, name)
		for _, st := range sc.Traces {
			if st.File != "" {
				claimed[st.File] = true
			}
		}
		if why != "" {
			c.quarantine(name, why)
			for _, st := range sc.Traces {
				if st.File != "" {
					if _, err := os.Stat(filepath.Join(c.cfg.Dir, st.File)); err == nil {
						c.quarantine(st.File, "blob of quarantined entry "+key)
					}
				}
			}
			continue
		}
		e := &entry{key: key, done: make(chan struct{}), filled: true, persisted: true}
		e.art = &JobArtifacts{Doc: sc.Doc, Traces: blobs}
		e.size = e.art.size()
		e.diskBytes = e.size
		close(e.done)
		recs = append(recs, recovered{e, mtime})
	}

	// Orphan blobs: files no surviving sidecar claims (their entry's
	// commit never landed, or its sidecar was itself quarantined).
	for _, de := range des {
		name := de.Name()
		if !de.IsDir() && strings.HasSuffix(name, spillBlobSuffix) && !claimed[name] {
			c.quarantine(name, "orphan blob with no committed sidecar")
		}
	}

	// Seed the LRU by spill time: oldest pushed first so it ends at
	// the cold end.
	sort.Slice(recs, func(i, j int) bool { return recs[i].mtime < recs[j].mtime })
	for _, r := range recs {
		c.entries[r.e.key] = r.e
		r.e.elem = c.lru.PushFront(r.e)
		c.bytesDisk += r.e.diskBytes
	}
	if n := len(recs); n > 0 {
		log.Printf("cache: recovered %d spilled entries (%d bytes) from %s", n, c.bytesDisk, c.cfg.Dir)
	}
	return nil
}

// verifyEntry checks one sidecar and its blobs, returning the parsed
// manifest, ready file-backed blobs, and the sidecar mtime. A
// non-empty why means the entry failed verification (the partial
// manifest is still returned so the caller can quarantine its files).
func (c *Cache) verifyEntry(key, name string) (sc sidecarDoc, blobs []*TraceBlob, mtime int64, why string) {
	path := filepath.Join(c.cfg.Dir, name)
	fi, err := os.Stat(path)
	if err != nil {
		return sc, nil, 0, "unreadable sidecar: " + err.Error()
	}
	mtime = fi.ModTime().UnixNano()
	js, err := os.ReadFile(path)
	if err != nil {
		return sc, nil, mtime, "unreadable sidecar: " + err.Error()
	}
	if err := json.Unmarshal(js, &sc); err != nil {
		return sc, nil, mtime, "corrupt sidecar: " + err.Error()
	}
	if sc.Version != 1 {
		return sc, nil, mtime, fmt.Sprintf("unsupported sidecar version %d", sc.Version)
	}
	if sc.Key != key {
		return sc, nil, mtime, fmt.Sprintf("sidecar key %q does not match filename", sc.Key)
	}
	if _, err := hex.DecodeString(key); err != nil || len(key) != 64 {
		return sc, nil, mtime, "filename is not a content address"
	}
	for _, st := range sc.Traces {
		if st.Bytes == 0 {
			blobs = append(blobs, NewTraceBlob(st.Name, nil, [16]byte{}))
			continue
		}
		var sum [16]byte
		raw, err := hex.DecodeString(st.MD5)
		if err != nil || len(raw) != 16 {
			return sc, nil, mtime, fmt.Sprintf("trace %q: bad md5 %q", st.Name, st.MD5)
		}
		copy(sum[:], raw)
		bpath := filepath.Join(c.cfg.Dir, st.File)
		if st.File == "" || filepath.Base(st.File) != st.File {
			return sc, nil, mtime, fmt.Sprintf("trace %q: bad file name %q", st.Name, st.File)
		}
		bfi, err := os.Stat(bpath)
		if err != nil {
			return sc, nil, mtime, fmt.Sprintf("trace %q: missing blob: %v", st.Name, err)
		}
		if bfi.Size() != st.Bytes {
			return sc, nil, mtime, fmt.Sprintf("trace %q: blob is %d bytes, sidecar says %d", st.Name, bfi.Size(), st.Bytes)
		}
		if why := verifyBlobFile(bpath, sum); why != "" {
			return sc, nil, mtime, fmt.Sprintf("trace %q: %s", st.Name, why)
		}
		blobs = append(blobs, fileTraceBlob(st.Name, bpath, st.Bytes, sum))
	}
	return sc, blobs, mtime, ""
}

// verifyBlobFile opens a spilled v2/v2.1 file and rehashes its payload
// against the sidecar's rolling MD5 (which must also be the file
// tail's). Returns "" on success.
func verifyBlobFile(path string, want [16]byte) string {
	f, err := os.Open(path)
	if err != nil {
		return "unreadable blob: " + err.Error()
	}
	defer f.Close()
	rd, err := trace.OpenV2(f)
	if err != nil {
		return "corrupt blob: " + err.Error()
	}
	sum, err := rd.VerifyMD5()
	if err != nil {
		return "corrupt blob: " + err.Error()
	}
	if sum != want {
		return fmt.Sprintf("blob md5 %x does not match sidecar %x", sum, want)
	}
	return ""
}
