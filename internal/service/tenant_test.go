package service

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nmo/internal/auth"
)

// defaultQueue returns the default tenant's queue; callers hold s.mu.
// The single-tenant white-box tests read it where they used to read
// the (pre-multi-tenant) global queue — same jobs, same order.
func defaultQueue(s *Scheduler) []*Job {
	if tq := s.tqs[auth.DefaultTenant]; tq != nil {
		return tq.jobs
	}
	return nil
}

// enqueueRaw builds a minimal queued job and places it directly via
// enqueueLocked — no cache, no cond.Signal, so the worker pool never
// wakes and pop order can be observed deterministically.
func enqueueRaw(s *Scheduler, tenant string, pri int) *Job {
	s.seq++
	j := &Job{ID: fmt.Sprintf("%s-%d", tenant, s.seq), Tenant: tenant,
		Priority: pri, seq: s.seq, state: StateQueued}
	s.enqueueLocked(j)
	return j
}

// popAll drains the DRR rotation, recording each pop's tenant.
func popAll(s *Scheduler) []string {
	var got []string
	for {
		j := s.popLocked()
		if j == nil {
			return got
		}
		got = append(got, j.Tenant)
	}
}

// TestDRRFairShareOrder pins the weighted fair-share policy exactly:
// two backlogged tenants at weights 3:1 are served in the repeating
// pattern A,A,A,B — engine runs converge to 3:1 under saturation by
// construction.
func TestDRRFairShareOrder(t *testing.T) {
	quotas := &auth.Quotas{Tenants: map[string]auth.TenantQuota{
		"alpha": {Weight: 3},
		"beta":  {Weight: 1},
	}}
	s := newTestScheduler(t, SchedConfig{Workers: 1, Quotas: quotas})

	s.mu.Lock()
	for i := 0; i < 9; i++ {
		enqueueRaw(s, "alpha", 0)
	}
	for i := 0; i < 3; i++ {
		enqueueRaw(s, "beta", 0)
	}
	got := popAll(s)
	s.mu.Unlock()

	want := []string{
		"alpha", "alpha", "alpha", "beta",
		"alpha", "alpha", "alpha", "beta",
		"alpha", "alpha", "alpha", "beta",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DRR pop order = %v, want %v", got, want)
	}
}

// TestDRRSingleTenantOrderUnchanged: with one tenant the DRR machinery
// must degenerate to the pre-multi-tenant policy — first admissible
// job in (priority desc, seq asc) order — so single-tenant scheduling
// is bit-identical to the old scheduler.
func TestDRRSingleTenantOrderUnchanged(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{Workers: 1})
	s.mu.Lock()
	j1 := enqueueRaw(s, auth.DefaultTenant, 0)
	j2 := enqueueRaw(s, auth.DefaultTenant, 5)
	j3 := enqueueRaw(s, auth.DefaultTenant, 5)
	j4 := enqueueRaw(s, auth.DefaultTenant, 1)
	var got []string
	for {
		j := s.popLocked()
		if j == nil {
			break
		}
		got = append(got, j.ID)
	}
	s.mu.Unlock()
	want := []string{j2.ID, j3.ID, j4.ID, j1.ID} // priority desc, FIFO within
	if !reflect.DeepEqual(got, want) {
		t.Errorf("single-tenant pop order = %v, want %v", got, want)
	}
}

// TestDRRIdleTenantNoCreditBanking: a tenant that goes idle and comes
// back does not carry saved-up credit — fairness is over backlogged
// tenants only.
func TestDRRIdleTenantNoCreditBanking(t *testing.T) {
	quotas := &auth.Quotas{Tenants: map[string]auth.TenantQuota{
		"alpha": {Weight: 3},
		"beta":  {Weight: 1},
	}}
	s := newTestScheduler(t, SchedConfig{Workers: 1, Quotas: quotas})
	s.mu.Lock()
	enqueueRaw(s, "alpha", 0)
	if got := popAll(s); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Fatalf("warm-up pop = %v", got)
	}
	// alpha drained mid-round (credit 2 unspent). Re-backlog both:
	// the fresh round must still serve 3:1, not 5:1.
	for i := 0; i < 6; i++ {
		enqueueRaw(s, "alpha", 0)
	}
	for i := 0; i < 2; i++ {
		enqueueRaw(s, "beta", 0)
	}
	got := popAll(s)
	s.mu.Unlock()
	want := []string{"alpha", "alpha", "alpha", "beta", "alpha", "alpha", "alpha", "beta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-idle pop order = %v, want %v", got, want)
	}
}

// TestTenantMaxInFlight: a tenant at max_in_flight 1 has its second
// concurrent leader rejected with ErrQuotaExceeded, and regains the
// slot once the first job completes. Other tenants are unaffected.
func TestTenantMaxInFlight(t *testing.T) {
	quotas := &auth.Quotas{Tenants: map[string]auth.TenantQuota{
		"tiny": {MaxInFlight: 1},
	}}
	s := newTestScheduler(t, SchedConfig{Workers: 1, Quotas: quotas})

	first, err := s.SubmitTenant(quickJob(800), "", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitTenant(quickJob(801), "", "tiny"); err != ErrQuotaExceeded {
		t.Fatalf("second in-flight submission: err = %v, want ErrQuotaExceeded", err)
	}
	// Other tenants still admit (the quota is per tenant, not global).
	other, err := s.SubmitTenant(quickJob(802), "", "roomy")
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}

	// An identical resubmission is a cache hit/coalesce — free, never
	// quota-rejected (it costs no engine time).
	dup, err := s.SubmitTenant(quickJob(800), "", "tiny")
	if err != nil {
		t.Fatalf("coalesced duplicate rejected: %v", err)
	}

	waitDone(t, first)
	// The quota unit is returned by the worker just after the job
	// turns terminal; poll the tiny remainder.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := s.SubmitTenant(quickJob(803), "", "tiny")
		if err == nil {
			waitDone(t, j)
			break
		}
		if err != ErrQuotaExceeded {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never released after job completion")
		}
		time.Sleep(time.Millisecond)
	}
	waitDone(t, other)
	waitDone(t, dup)
}

// TestTenantStatsRows: per-tenant stats report submissions, engine
// runs, and the configured weight per tenant, and JobInfo carries the
// tenant.
func TestTenantStatsRows(t *testing.T) {
	quotas := &auth.Quotas{Tenants: map[string]auth.TenantQuota{
		"alpha": {Weight: 3},
	}}
	s := newTestScheduler(t, SchedConfig{Workers: 2, Quotas: quotas})

	ja, err := s.SubmitTenant(quickJob(810), "", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	jb, err := s.SubmitTenant(quickJob(811), "", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, ja); info.Tenant != "alpha" {
		t.Errorf("JobInfo.Tenant = %q, want alpha", info.Tenant)
	}
	waitDone(t, jb)

	rows := map[string]TenantStat{}
	for _, row := range s.Stats().Tenants {
		rows[row.Tenant] = row
	}
	a, ok := rows["alpha"]
	if !ok {
		t.Fatalf("no alpha row in %v", rows)
	}
	if a.Weight != 3 || a.Submitted != 1 || a.EngineRuns != 1 {
		t.Errorf("alpha row = %+v, want weight 3, submitted 1, engine runs 1", a)
	}
	b, ok := rows["beta"]
	if !ok {
		t.Fatalf("no beta row in %v", rows)
	}
	if b.Weight != 1 || b.Submitted != 1 {
		t.Errorf("beta row = %+v, want weight 1, submitted 1", b)
	}
}

// TestTenantQuotaReleasedOnCancel: canceling a queued leader returns
// its in-flight unit immediately.
func TestTenantQuotaReleasedOnCancel(t *testing.T) {
	quotas := &auth.Quotas{Tenants: map[string]auth.TenantQuota{
		"tiny": {MaxInFlight: 1},
	}}
	s := newTestScheduler(t, SchedConfig{Workers: 1, Quotas: quotas})

	// Plug the only worker with another tenant's job so tiny's leader
	// stays queued.
	plug, err := s.SubmitTenant(quickJob(820), "", "plug")
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.SubmitTenant(quickJob(821), "", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitTenant(quickJob(822), "", "tiny"); err != ErrQuotaExceeded {
		t.Fatalf("quota not enforced while queued: err = %v", err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := s.SubmitTenant(quickJob(823), "", "tiny")
		if err == nil {
			waitDone(t, j)
			break
		}
		if err != ErrQuotaExceeded {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never released after cancel")
		}
		time.Sleep(time.Millisecond)
	}
	waitDone(t, plug)
}
