package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"nmo/internal/trace"
)

// newTestServer spins a full HTTP stack over a fresh scheduler.
func newTestServer(t *testing.T, cfg SchedConfig) (*httptest.Server, *Scheduler, *Client) {
	t.Helper()
	sched := NewScheduler(cfg, nil)
	t.Cleanup(sched.Close)
	srv := httptest.NewServer(NewServer(sched))
	t.Cleanup(srv.Close)
	return srv, sched, NewClient(srv.URL)
}

// TestHTTPEndToEnd drives the whole loop a remote CLI performs:
// submit, poll, fetch the result document, stream the trace, verify
// the bytes against the stored blob and its checksum.
func TestHTTPEndToEnd(t *testing.T) {
	_, sched, client := newTestServer(t, SchedConfig{Workers: 2})
	ctx := context.Background()

	info, err := client.Submit(ctx, quickJob(50))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Key == "" {
		t.Fatalf("submission response incomplete: %+v", info)
	}
	if info, err = client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	doc, err := client.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Key != info.Key || len(doc.Scenarios) != 1 {
		t.Fatalf("result doc mismatch: %+v", doc)
	}
	sr := doc.Scenarios[0]
	if sr.Samples == 0 || sr.TraceMD5 == "" || len(sr.Tables) == 0 {
		t.Fatalf("scenario result incomplete: %+v", sr)
	}

	var buf bytes.Buffer
	n, md5hex, err := client.DownloadTrace(ctx, info.ID, NewTraceOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if md5hex != sr.TraceMD5 {
		t.Errorf("stream header MD5 %s != result MD5 %s", md5hex, sr.TraceMD5)
	}
	if n != sr.TraceBytes {
		t.Errorf("streamed %d bytes, result says %d", n, sr.TraceBytes)
	}
	// The wire bytes are the stored blob verbatim...
	job, _ := sched.Get(info.ID)
	if !bytes.Equal(buf.Bytes(), blobBytes(t, job.Artifacts().Traces[0])) {
		t.Error("streamed bytes differ from the stored blob")
	}
	// ...and a valid v2 file whose tail checksum matches.
	rd, err := trace.OpenV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.MD5(); got != job.Artifacts().Traces[0].MD5 {
		t.Error("downloaded file's tail MD5 differs from the run checksum")
	}
	if rd.TotalSamples() != sr.TraceSamples {
		t.Errorf("downloaded file has %d samples, result says %d", rd.TotalSamples(), sr.TraceSamples)
	}

	// Stats reflect the traffic.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.EngineRuns != 1 {
		t.Errorf("stats = %+v, want 1 submitted / 1 engine run", st)
	}
}

// TestHTTPTraceFilterPushdown requests a filtered stream and checks
// exact trimming: every delivered sample is inside the bounds and the
// count matches a local exact filter of the full blob.
func TestHTTPTraceFilterPushdown(t *testing.T) {
	_, sched, client := newTestServer(t, SchedConfig{Workers: 1})
	ctx := context.Background()

	info, err := client.Submit(ctx, quickJob(51))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	job, _ := sched.Get(info.ID)
	blob := job.Artifacts().Traces[0]

	// Pick bounds that split the run: the middle half of the time
	// range, one core.
	full, err := trace.OpenV2(bytes.NewReader(blobBytes(t, blob)))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := full.Block(0).TimeMin, full.Block(full.NumBlocks()-1).TimeMax
	from := lo + (hi-lo)/4
	to := lo + 3*(hi-lo)/4
	const core = 1
	var want uint64
	if err := full.Scan(trace.ScanHints{}, func(s *trace.Sample) {
		if s.TimeNs >= from && s.TimeNs < to && s.Core == core {
			want++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Skip("filter selects nothing; fixture too small for this seed")
	}

	opt := NewTraceOptions()
	opt.FromNs, opt.ToNs, opt.Core = from, to, core
	var buf bytes.Buffer
	if _, _, err := client.DownloadTrace(ctx, info.ID, opt, &buf); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.OpenV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("filtered stream is not a valid v2 file: %v", err)
	}
	var got uint64
	if err := rd.Scan(trace.ScanHints{}, func(s *trace.Sample) {
		if s.TimeNs < from || s.TimeNs >= to || s.Core != core {
			t.Fatalf("sample outside the requested bounds: t=%d core=%d", s.TimeNs, s.Core)
		}
		got++
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("filtered stream has %d samples, want %d", got, want)
	}
}

// TestHTTPErrors covers the API's failure surface.
func TestHTTPErrors(t *testing.T) {
	srv, _, client := newTestServer(t, SchedConfig{Workers: 1})
	ctx := context.Background()

	// Unknown job: 404 on every job route.
	for _, path := range []string{"/v1/jobs/jnope", "/v1/jobs/jnope/result", "/v1/jobs/jnope/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// Bad specs: 400 with the resolver's message.
	for _, body := range []string{
		`{`,
		`{"scenarios":[]}`,
		`{"scenarios":[{"workload":"fortnite"}]}`,
		`{"scenarios":[{"workload":"stream","backend":"vtune"}]}`,
		`{"unknown_field":1}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}

	// A counters-mode job finishes but serves no trace: 404.
	spec := quickSpec(60)
	spec.Mode = "counters"
	info, err := client.Submit(ctx, JobSpec{Scenarios: []ScenarioSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Trace(ctx, info.ID, NewTraceOptions()); err == nil {
		t.Error("trace of a counters-mode job succeeded")
	}
	if _, err := client.Result(ctx, info.ID); err != nil {
		t.Errorf("counters-mode result should serve: %v", err)
	}

	// Bad filter parameters: 400.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + info.ID + "/trace?core=minus-one")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad core filter = %d, want 4xx", resp.StatusCode)
	}

	// Canceling an unfinished job surfaces in Wait as an error.
	slow := quickSpec(61)
	slow.Elems = 400_000
	head, err := client.Submit(ctx, JobSpec{Scenarios: []ScenarioSpec{slow}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Submit(ctx, quickJob(62))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, queued.ID, 5*time.Millisecond); err == nil {
		t.Error("Wait on a canceled job returned success")
	}
	if _, err := client.Wait(ctx, head.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPCoalescedResultIdentical: two identical submissions through
// the HTTP layer return the same document and trace stream.
func TestHTTPCoalescedResultIdentical(t *testing.T) {
	_, _, client := newTestServer(t, SchedConfig{Workers: 2})
	ctx := context.Background()

	a, err := client.Submit(ctx, quickJob(70))
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Submit(ctx, quickJob(70))
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != b.Key {
		t.Fatalf("identical submissions keyed differently")
	}
	if _, err := client.Wait(ctx, a.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, b.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	da, err := client.Result(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	db, err := client.Result(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(da, db) {
		t.Error("identical jobs returned different result documents")
	}
	var ta, tb bytes.Buffer
	if _, _, err := client.DownloadTrace(ctx, a.ID, NewTraceOptions(), &ta); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.DownloadTrace(ctx, b.ID, NewTraceOptions(), &tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("identical jobs streamed different trace bytes")
	}
}
