package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"nmo/internal/obs"
	"nmo/internal/trace"
	"nmo/internal/zerocopy"
)

// Server exposes a Scheduler over HTTP. Routes (Go 1.22 pattern mux):
//
//	POST   /v1/jobs              submit a JobSpec; 200 JobInfo
//	GET    /v1/jobs/{id}         job status; 200 JobInfo
//	DELETE /v1/jobs/{id}         cancel; 200 JobInfo
//	GET    /v1/jobs/{id}/result  finished job's ResultDoc
//	GET    /v1/jobs/{id}/trace   v2/v2.1 trace stream;
//	                             ?scenario=name|index selects the blob,
//	                             ?from/?to (ns) and ?core push down to
//	                             the block index server-side
//	GET    /v1/stats             SchedStats
//	GET    /v1/healthz           200 "ok"
//
// Unfiltered trace responses are the stored blob verbatim — byte-
// identical to the v2 file the same scenario writes locally — with the
// stream's rolling MD5 in X-Nmo-Trace-Md5. Filtered responses are a
// fresh v2 stream (own index, own checksum) restreamed through the
// block-skip push-down.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
	zc    *zerocopy.Counters
	m     *Metrics
}

// NewServer wires a scheduler into an HTTP handler. Every route runs
// behind the scheduler's metrics middleware (request counts, latency
// and size histograms, request-ID boundary, audit lines), and the
// backing registry is exposed at GET /metrics — including this
// server's zero-copy data-plane counters.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux(),
		zc: new(zerocopy.Counters), m: sched.Metrics()}
	RegisterDataPlane(s.m.Reg, s.zc)
	s.route("POST /v1/jobs", s.handleSubmit)
	s.route("GET /v1/jobs/{id}", s.handleStatus)
	s.route("DELETE /v1/jobs/{id}", s.handleCancel)
	s.route("GET /v1/jobs/{id}/result", s.handleResult)
	s.route("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.route("GET /v1/stats", s.handleStats)
	s.route("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.route("GET /metrics", obs.Handler(s.m.Reg).ServeHTTP)
	return s
}

// route mounts a handler behind the metrics middleware, using the mux
// pattern itself as the bounded-cardinality route label.
func (s *Server) route(pattern string, fn http.HandlerFunc) {
	s.mux.Handle(pattern, s.m.HTTP.Wrap(pattern, fn))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ZeroCopy returns the server's data-plane counters. The daemon hands
// the same object to zerocopy.WrapListener, so listener-side sendfile
// accounting and handler-side fallback accounting land in one place.
func (s *Server) ZeroCopy() *zerocopy.Counters { return s.zc }

// MaxSpecBytes bounds the POST /v1/jobs body (a 256-scenario sweep
// spec is a few tens of KB; a megabyte is generous). Exported so the
// gateway enforces the identical bound — a spec must never be
// accepted by one tier and rejected by the next.
const MaxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, err := s.sched.SubmitReq(spec, obs.RequestID(r.Context()))
	if err != nil {
		code := http.StatusBadRequest
		if err == ErrQueueFull {
			code = http.StatusTooManyRequests
		} else if err == errShutdown {
			code = http.StatusServiceUnavailable
		}
		WriteError(w, code, err)
		return
	}
	WriteJSON(w, http.StatusOK, job.Info())
}

// job resolves the {id} path value, writing the 404 itself on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		WriteError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		WriteJSON(w, http.StatusOK, j.Info())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.sched.Cancel(j.ID); err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sched.Stats()
	st.ZcSendfileBytes = s.zc.SendfileBytes()
	st.ZcSpliceBytes = s.zc.SpliceBytes()
	st.ZcFallbackBytes = s.zc.FallbackBytes()
	st.TraceClientAborts = s.zc.ClientAborts()
	st.TraceServeErrors = s.zc.Errors()
	WriteJSON(w, http.StatusOK, st)
}

// artifacts resolves a job's artifacts, mapping unfinished and failed
// jobs to 409/the failure. Results are served only for done jobs —
// clients poll status first (or watch the submission response's state
// for cache hits).
func artifacts(w http.ResponseWriter, j *Job) (*JobArtifacts, bool) {
	info := j.Info()
	switch info.State {
	case StateDone:
		return j.Artifacts(), true
	case StateFailed, StateCanceled:
		WriteError(w, http.StatusConflict, fmt.Errorf("job %s is %s: %s", j.ID, info.State, info.Error))
	default:
		WriteError(w, http.StatusConflict, fmt.Errorf("job %s is %s; poll until done", j.ID, info.State))
	}
	return nil, false
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art, ok := artifacts(w, j)
	if !ok {
		return
	}
	doc := art.Doc
	doc.Key = j.Key
	WriteJSON(w, http.StatusOK, doc)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art, ok := artifacts(w, j)
	if !ok {
		return
	}
	blob, ok := art.Trace(r.URL.Query().Get("scenario"))
	if !ok || blob.Size() == 0 {
		WriteError(w, http.StatusNotFound, fmt.Errorf("job %s has no trace for scenario %q (sampling disabled, or unknown name)",
			j.ID, r.URL.Query().Get("scenario")))
		return
	}

	lo, hi, core, filtered, err := traceFilter(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}

	// Pin the blob's current backing for this request: resident bytes,
	// or an open handle on its spill file (which keeps serving even if
	// the cache deletes the file mid-response).
	_, h, bk, err := blob.open()
	if err != nil || bk == nil {
		WriteError(w, http.StatusNotFound, fmt.Errorf("job %s: trace evicted from cache: %v", j.ID, err))
		return
	}
	if h != nil {
		defer bk.releaseFile(h)
	}

	zc := zerocopy.FromContext(r.Context())
	w.Header().Set("Content-Type", "application/octet-stream")
	if !filtered {
		// Unfiltered: the stored bytes verbatim. The rolling MD5 is
		// echoed so clients can verify without reading the tail first;
		// Content-Length lets them preallocate and keeps the response
		// sized through the proxy hop (and eligible for kernel
		// offload). Three tiers, best first:
		//
		//   1. file-backed on a zero-copy conn — flush the sized
		//      header, then io.Copy hands the pooled handle's
		//      FileSection to the connection's ReadFrom, which drives
		//      sendfile(2) on its cached raw fd: no per-request
		//      allocation, no user-space byte.
		//   2. file-backed otherwise (httptest, TLS, non-Linux, or the
		//      kernel refused) — the classic pooled 256 KiB copy, zero
		//      allocations in steady state.
		//   3. memory-resident — one WriteTo straight out of the
		//      resident slice through a pooled reader.
		w.Header().Set("X-Nmo-Trace-Md5", hex.EncodeToString(blob.MD5[:]))
		w.Header().Set("Content-Length", strconv.FormatInt(blob.Size(), 10))
		w.WriteHeader(http.StatusOK)
		var copyErr error
		switch {
		case h != nil && zc != nil:
			flushHeader(w)
			h.fs.Set(h.f, 0, blob.Size())
			_, copyErr = io.Copy(w, &h.fs) // sendfile; bytes counted conn-side
		case h != nil:
			if h.buf == nil {
				h.buf = make([]byte, 256<<10)
			}
			h.lr = io.LimitedReader{R: h.f, N: blob.Size()}
			h.out.w = w
			n, err := io.CopyBuffer(&h.out, &h.lr, h.buf)
			h.out.w = nil
			s.zc.AddFallback(n)
			copyErr = err
		default:
			mr := bk.acquireMem()
			n, err := io.Copy(w, mr)
			bk.releaseMem(mr)
			s.zc.AddFallback(n)
			copyErr = err
		}
		s.zc.CountCopyErr(r.Context(), copyErr)
		return
	}

	// Filtered, file-backed, no core predicate: serve from a span
	// plan. The plan is the RestreamExact output described as literal
	// segments (header, straddler blocks, footer) plus (offset,
	// length) extents of provably-whole stored blocks — so the size
	// and checksum are known before the first byte (a sized response
	// with X-Nmo-Trace-Md5, which the gateway passes through), and
	// every whole-block run sendfiles verbatim from the spill file on
	// a zero-copy conn. Only straddlers and the envelope touch user
	// space. Core filters are excluded: CoreMask aliases at 64 cores,
	// so no block is ever provably whole and a plan would buffer the
	// entire filtered stream.
	if h != nil && core < 0 {
		rd, err := trace.OpenV2(io.NewSectionReader(h.f, 0, blob.Size()))
		if err != nil {
			WriteError(w, http.StatusInternalServerError, err)
			return
		}
		plan, err := trace.RestreamPlanExact(rd, lo, hi, core)
		if err != nil {
			WriteError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("X-Nmo-Trace-Md5", hex.EncodeToString(plan.MD5[:]))
		w.Header().Set("Content-Length", strconv.FormatInt(plan.Size, 10))
		w.WriteHeader(http.StatusOK)
		flushHeader(w)
		s.zc.CountCopyErr(r.Context(), s.servePlan(w, h, plan, zc))
		return
	}

	// Filtered, memory-tier or core-predicated: restream chunked
	// through the block-skip push-down, as before. Blocks the index
	// proves entirely inside the predicate are spliced in their stored
	// form; straddlers are exact-filtered. Errors past the header
	// surface as a truncated chunked body (the client's OpenV2
	// rejects it).
	var src io.ReadSeeker
	if h != nil {
		src = io.NewSectionReader(h.f, 0, blob.Size())
	} else {
		mr := bk.acquireMem()
		defer bk.releaseMem(mr)
		src = mr
	}
	rd, err := trace.OpenV2(src)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusOK)
	cw := countWriter{w: w}
	_, _, err = trace.RestreamExact(rd, &cw, lo, hi, core)
	s.zc.AddFallback(cw.n)
	s.zc.CountCopyErr(r.Context(), err)
}

// servePlan streams a span plan: literal segments through the normal
// write path, extents through the handle's FileSection — sendfile on a
// zero-copy conn, pread copy anywhere else. Byte-identical to the
// chunked restream of the same predicate. On a wrapped conn the extent
// bytes are credited conn-side (sendfile or fallback) by Conn.ReadFrom;
// on anything else they stream through FileSection.Read invisibly, so
// they are counted as fallback here to keep sendfile+splice+fallback
// summing to total trace bytes served.
func (s *Server) servePlan(w http.ResponseWriter, h *fileHandle, plan *trace.RestreamPlan, zc *zerocopy.Conn) error {
	for _, seg := range plan.Segments {
		if seg.Data != nil {
			n, err := w.Write(seg.Data)
			s.zc.AddFallback(int64(n))
			if err != nil {
				return err
			}
			continue
		}
		h.fs.Set(h.f, seg.SrcOff, seg.Len)
		n, err := io.Copy(w, &h.fs)
		if zc == nil {
			s.zc.AddFallback(n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// flushHeader pushes the written header onto the wire so net/http's
// ReadFrom skips its 512-byte sniff prefix and hands the entire body
// to the connection in one go.
func flushHeader(w http.ResponseWriter) {
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
}

// countWriter tallies the bytes a chunked restream pushes through the
// user-space path, so fallback accounting covers filtered serves too.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// traceFilter parses ?from/?to/?core into the canonical trace
// predicate: timestamps in [lo, hi) (0 = unbounded) and an exact core
// (-1 = all). filtered reports whether any filter was requested —
// false selects the serve-verbatim fast path.
func traceFilter(r *http.Request) (lo, hi uint64, core int, filtered bool, err error) {
	q := r.URL.Query()
	core = -1
	if v := q.Get("from"); v != "" {
		if lo, err = strconv.ParseUint(v, 10, 64); err != nil {
			return 0, 0, -1, false, fmt.Errorf("bad from %q", v)
		}
	}
	if v := q.Get("to"); v != "" {
		if hi, err = strconv.ParseUint(v, 10, 64); err != nil {
			return 0, 0, -1, false, fmt.Errorf("bad to %q", v)
		}
	}
	if v := q.Get("core"); v != "" {
		c, err := strconv.Atoi(v)
		if err != nil || c < 0 {
			return 0, 0, -1, false, fmt.Errorf("bad core %q", v)
		}
		core = c
	}
	return lo, hi, core, lo != 0 || hi != 0 || core >= 0, nil
}

// WriteJSON and WriteError are the wire encoding helpers, shared with
// the gateway so every tier answers with the same JSON shapes (errors
// always as the apiError body).
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the standard error body.
func WriteError(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, apiError{Error: err.Error()})
}
