package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"nmo/internal/auth"
	"nmo/internal/obs"
	"nmo/internal/trace"
	"nmo/internal/zerocopy"
)

// Server exposes a Scheduler over HTTP. Routes (Go 1.22 pattern mux):
//
//	POST   /v1/jobs              submit a JobSpec; 200 JobInfo
//	GET    /v1/jobs/{id}         job status; 200 JobInfo
//	DELETE /v1/jobs/{id}         cancel; 200 JobInfo
//	GET    /v1/jobs/{id}/result  finished job's ResultDoc
//	GET    /v1/jobs/{id}/trace   v2/v2.1 trace stream;
//	                             ?scenario=name|index selects the blob,
//	                             ?from/?to (ns) and ?core push down to
//	                             the block index server-side
//	GET    /v1/stats             SchedStats
//	GET    /v1/healthz           200 "ok"
//
// Unfiltered trace responses are the stored blob verbatim — byte-
// identical to the v2 file the same scenario writes locally — with the
// stream's rolling MD5 in X-Nmo-Trace-Md5. Filtered responses are a
// fresh v2 stream (own index, own checksum) restreamed through the
// block-skip push-down.
//
// Every non-2xx response is the standard JSON error envelope
// ({"error": {"code", "message", "request_id"}}); /v1/healthz,
// /v1/stats, and /metrics are never behind auth (they are the
// read-only operational surface probes and dashboards live on), while
// the job routes run behind the configured auth middleware.
type Server struct {
	sched  *Scheduler
	router *obs.Router
	zc     *zerocopy.Counters
	m      *Metrics
	auth   *auth.Middleware
}

// ServerOption customizes NewServer.
type ServerOption func(*Server)

// WithAuth mounts an auth middleware on the job routes (default: a
// ModeNone middleware — dev-header tenancy, no credentials).
func WithAuth(a *auth.Middleware) ServerOption {
	return func(s *Server) { s.auth = a }
}

// NewServer wires a scheduler into an HTTP handler. Every route runs
// behind the scheduler's metrics middleware (request counts, latency
// and size histograms, request-ID boundary, audit lines), and the
// backing registry is exposed at GET /metrics — including this
// server's zero-copy data-plane counters.
func NewServer(sched *Scheduler, opts ...ServerOption) *Server {
	s := &Server{sched: sched, zc: new(zerocopy.Counters), m: sched.Metrics()}
	for _, o := range opts {
		o(s)
	}
	if s.auth == nil {
		// ModeNone with the scheduler's quota table: tenancy via dev
		// header, rate limits still enforced per claimed tenant.
		s.auth, _ = auth.NewMiddleware(auth.Config{Mode: auth.ModeNone, Quotas: sched.cfg.Quotas})
	}
	RegisterDataPlane(s.m.Reg, s.zc)
	rt := obs.NewRouter(s.m.HTTP)
	protect, limit := s.auth.Protect, s.auth.LimitSubmit
	rt.HandleFunc("POST", "/v1/jobs", s.handleSubmit, protect, limit)
	rt.HandleFunc("GET", "/v1/jobs/{id}", s.handleStatus, protect)
	rt.HandleFunc("DELETE", "/v1/jobs/{id}", s.handleCancel, protect)
	rt.HandleFunc("GET", "/v1/jobs/{id}/result", s.handleResult, protect)
	rt.HandleFunc("GET", "/v1/jobs/{id}/trace", s.handleTrace, protect)
	rt.HandleFunc("GET", "/v1/stats", s.handleStats)
	rt.HandleFunc("GET", "/v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	rt.Handle("GET", "/metrics", obs.Handler(s.m.Reg))
	s.router = rt
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.router.ServeHTTP(w, r)
}

// ZeroCopy returns the server's data-plane counters. The daemon hands
// the same object to zerocopy.WrapListener, so listener-side sendfile
// accounting and handler-side fallback accounting land in one place.
func (s *Server) ZeroCopy() *zerocopy.Counters { return s.zc }

// MaxSpecBytes bounds the POST /v1/jobs body (a 256-scenario sweep
// spec is a few tens of KB; a megabyte is generous). Exported so the
// gateway enforces the identical bound — a spec must never be
// accepted by one tier and rejected by the next.
const MaxSpecBytes = 1 << 20

// submitErr maps a Submit failure onto its envelope status and code.
func submitErr(err error) (int, string) {
	switch err {
	case ErrQueueFull:
		return http.StatusTooManyRequests, obs.CodeQueueFull
	case ErrQuotaExceeded:
		return http.StatusTooManyRequests, obs.CodeQuotaExceeded
	case errShutdown:
		return http.StatusServiceUnavailable, obs.CodeShutdown
	}
	return http.StatusBadRequest, obs.CodeBadSpec
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		obs.WriteError(w, r, http.StatusBadRequest, obs.CodeBadSpec, "bad job spec: "+err.Error())
		return
	}
	job, err := s.sched.SubmitTenant(spec, obs.RequestID(r.Context()), auth.TenantFrom(r.Context()))
	if err != nil {
		status, code := submitErr(err)
		obs.WriteError(w, r, status, code, err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, job.Info())
}

// job resolves the {id} path value, writing the 404 itself on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		obs.WriteError(w, r, http.StatusNotFound, obs.CodeNotFound, fmt.Sprintf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		WriteJSON(w, http.StatusOK, j.Info())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.sched.Cancel(j.ID); err != nil {
		obs.WriteError(w, r, http.StatusInternalServerError, obs.CodeInternal, err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sched.Stats()
	st.ZcSendfileBytes = s.zc.SendfileBytes()
	st.ZcSpliceBytes = s.zc.SpliceBytes()
	st.ZcFallbackBytes = s.zc.FallbackBytes()
	st.TraceClientAborts = s.zc.ClientAborts()
	st.TraceServeErrors = s.zc.Errors()
	WriteJSON(w, http.StatusOK, st)
}

// artifacts resolves a job's artifacts, mapping unfinished and failed
// jobs to 409/the failure. Results are served only for done jobs —
// clients poll status first (or watch the submission response's state
// for cache hits).
func artifacts(w http.ResponseWriter, r *http.Request, j *Job) (*JobArtifacts, bool) {
	info := j.Info()
	switch info.State {
	case StateDone:
		return j.Artifacts(), true
	case StateFailed, StateCanceled:
		obs.WriteError(w, r, http.StatusConflict, obs.CodeConflict,
			fmt.Sprintf("job %s is %s: %s", j.ID, info.State, info.Error))
	default:
		obs.WriteError(w, r, http.StatusConflict, obs.CodeConflict,
			fmt.Sprintf("job %s is %s; poll until done", j.ID, info.State))
	}
	return nil, false
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art, ok := artifacts(w, r, j)
	if !ok {
		return
	}
	doc := art.Doc
	doc.Key = j.Key
	WriteJSON(w, http.StatusOK, doc)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art, ok := artifacts(w, r, j)
	if !ok {
		return
	}
	blob, ok := art.Trace(r.URL.Query().Get("scenario"))
	if !ok || blob.Size() == 0 {
		obs.WriteError(w, r, http.StatusNotFound, obs.CodeNotFound,
			fmt.Sprintf("job %s has no trace for scenario %q (sampling disabled, or unknown name)",
				j.ID, r.URL.Query().Get("scenario")))
		return
	}

	lo, hi, core, filtered, err := traceFilter(r)
	if err != nil {
		obs.WriteError(w, r, http.StatusBadRequest, obs.CodeBadRequest, err.Error())
		return
	}

	// Pin the blob's current backing for this request: resident bytes,
	// or an open handle on its spill file (which keeps serving even if
	// the cache deletes the file mid-response).
	_, h, bk, err := blob.open()
	if err != nil || bk == nil {
		obs.WriteError(w, r, http.StatusNotFound, obs.CodeNotFound,
			fmt.Sprintf("job %s: trace evicted from cache: %v", j.ID, err))
		return
	}
	if h != nil {
		defer bk.releaseFile(h)
	}

	zc := zerocopy.FromContext(r.Context())
	w.Header().Set("Content-Type", "application/octet-stream")
	if !filtered {
		// Unfiltered: the stored bytes verbatim. The rolling MD5 is
		// echoed so clients can verify without reading the tail first;
		// Content-Length lets them preallocate and keeps the response
		// sized through the proxy hop (and eligible for kernel
		// offload). Three tiers, best first:
		//
		//   1. file-backed on a zero-copy conn — flush the sized
		//      header, then io.Copy hands the pooled handle's
		//      FileSection to the connection's ReadFrom, which drives
		//      sendfile(2) on its cached raw fd: no per-request
		//      allocation, no user-space byte.
		//   2. file-backed otherwise (httptest, TLS, non-Linux, or the
		//      kernel refused) — the classic pooled 256 KiB copy, zero
		//      allocations in steady state.
		//   3. memory-resident — one WriteTo straight out of the
		//      resident slice through a pooled reader.
		w.Header().Set("X-Nmo-Trace-Md5", hex.EncodeToString(blob.MD5[:]))
		w.Header().Set("Content-Length", strconv.FormatInt(blob.Size(), 10))
		w.WriteHeader(http.StatusOK)
		var copyErr error
		switch {
		case h != nil && zc != nil:
			flushHeader(w)
			h.fs.Set(h.f, 0, blob.Size())
			_, copyErr = io.Copy(w, &h.fs) // sendfile; bytes counted conn-side
		case h != nil:
			if h.buf == nil {
				h.buf = make([]byte, 256<<10)
			}
			h.lr = io.LimitedReader{R: h.f, N: blob.Size()}
			h.out.w = w
			n, err := io.CopyBuffer(&h.out, &h.lr, h.buf)
			h.out.w = nil
			s.zc.AddFallback(n)
			copyErr = err
		default:
			mr := bk.acquireMem()
			n, err := io.Copy(w, mr)
			bk.releaseMem(mr)
			s.zc.AddFallback(n)
			copyErr = err
		}
		s.zc.CountCopyErr(r.Context(), copyErr)
		return
	}

	// Filtered, file-backed, no core predicate: serve from a span
	// plan. The plan is the RestreamExact output described as literal
	// segments (header, straddler blocks, footer) plus (offset,
	// length) extents of provably-whole stored blocks — so the size
	// and checksum are known before the first byte (a sized response
	// with X-Nmo-Trace-Md5, which the gateway passes through), and
	// every whole-block run sendfiles verbatim from the spill file on
	// a zero-copy conn. Only straddlers and the envelope touch user
	// space. Core filters are excluded: CoreMask aliases at 64 cores,
	// so no block is ever provably whole and a plan would buffer the
	// entire filtered stream.
	if h != nil && core < 0 {
		rd, err := trace.OpenV2(io.NewSectionReader(h.f, 0, blob.Size()))
		if err != nil {
			obs.WriteError(w, r, http.StatusInternalServerError, obs.CodeInternal, err.Error())
			return
		}
		plan, err := trace.RestreamPlanExact(rd, lo, hi, core)
		if err != nil {
			obs.WriteError(w, r, http.StatusInternalServerError, obs.CodeInternal, err.Error())
			return
		}
		w.Header().Set("X-Nmo-Trace-Md5", hex.EncodeToString(plan.MD5[:]))
		w.Header().Set("Content-Length", strconv.FormatInt(plan.Size, 10))
		w.WriteHeader(http.StatusOK)
		flushHeader(w)
		s.zc.CountCopyErr(r.Context(), s.servePlan(w, h, plan, zc))
		return
	}

	// Filtered, memory-tier or core-predicated: restream chunked
	// through the block-skip push-down, as before. Blocks the index
	// proves entirely inside the predicate are spliced in their stored
	// form; straddlers are exact-filtered. Errors past the header
	// surface as a truncated chunked body (the client's OpenV2
	// rejects it).
	var src io.ReadSeeker
	if h != nil {
		src = io.NewSectionReader(h.f, 0, blob.Size())
	} else {
		mr := bk.acquireMem()
		defer bk.releaseMem(mr)
		src = mr
	}
	rd, err := trace.OpenV2(src)
	if err != nil {
		obs.WriteError(w, r, http.StatusInternalServerError, obs.CodeInternal, err.Error())
		return
	}
	w.WriteHeader(http.StatusOK)
	cw := countWriter{w: w}
	_, _, err = trace.RestreamExact(rd, &cw, lo, hi, core)
	s.zc.AddFallback(cw.n)
	s.zc.CountCopyErr(r.Context(), err)
}

// servePlan streams a span plan: literal segments through the normal
// write path, extents through the handle's FileSection — sendfile on a
// zero-copy conn, pread copy anywhere else. Byte-identical to the
// chunked restream of the same predicate. On a wrapped conn the extent
// bytes are credited conn-side (sendfile or fallback) by Conn.ReadFrom;
// on anything else they stream through FileSection.Read invisibly, so
// they are counted as fallback here to keep sendfile+splice+fallback
// summing to total trace bytes served.
func (s *Server) servePlan(w http.ResponseWriter, h *fileHandle, plan *trace.RestreamPlan, zc *zerocopy.Conn) error {
	for _, seg := range plan.Segments {
		if seg.Data != nil {
			n, err := w.Write(seg.Data)
			s.zc.AddFallback(int64(n))
			if err != nil {
				return err
			}
			continue
		}
		h.fs.Set(h.f, seg.SrcOff, seg.Len)
		n, err := io.Copy(w, &h.fs)
		if zc == nil {
			s.zc.AddFallback(n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// flushHeader pushes the written header onto the wire so net/http's
// ReadFrom skips its 512-byte sniff prefix and hands the entire body
// to the connection in one go.
func flushHeader(w http.ResponseWriter) {
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
}

// countWriter tallies the bytes a chunked restream pushes through the
// user-space path, so fallback accounting covers filtered serves too.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// traceFilter parses ?from/?to/?core into the canonical trace
// predicate: timestamps in [lo, hi) (0 = unbounded) and an exact core
// (-1 = all). filtered reports whether any filter was requested —
// false selects the serve-verbatim fast path.
func traceFilter(r *http.Request) (lo, hi uint64, core int, filtered bool, err error) {
	q := r.URL.Query()
	core = -1
	if v := q.Get("from"); v != "" {
		if lo, err = strconv.ParseUint(v, 10, 64); err != nil {
			return 0, 0, -1, false, fmt.Errorf("bad from %q", v)
		}
	}
	if v := q.Get("to"); v != "" {
		if hi, err = strconv.ParseUint(v, 10, 64); err != nil {
			return 0, 0, -1, false, fmt.Errorf("bad to %q", v)
		}
	}
	if v := q.Get("core"); v != "" {
		c, err := strconv.Atoi(v)
		if err != nil || c < 0 {
			return 0, 0, -1, false, fmt.Errorf("bad core %q", v)
		}
		core = c
	}
	return lo, hi, core, lo != 0 || hi != 0 || core >= 0, nil
}

// WriteJSON is the success-body encoding helper, shared with the
// gateway so every tier answers with the same JSON shapes. Errors go
// through obs.WriteError — the one envelope every tier speaks.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
