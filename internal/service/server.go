package service

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"nmo/internal/trace"
)

// Server exposes a Scheduler over HTTP. Routes (Go 1.22 pattern mux):
//
//	POST   /v1/jobs              submit a JobSpec; 200 JobInfo
//	GET    /v1/jobs/{id}         job status; 200 JobInfo
//	DELETE /v1/jobs/{id}         cancel; 200 JobInfo
//	GET    /v1/jobs/{id}/result  finished job's ResultDoc
//	GET    /v1/jobs/{id}/trace   v2 trace stream (chunked);
//	                             ?scenario=name|index selects the blob,
//	                             ?from/?to (ns) and ?core push down to
//	                             the block index server-side
//	GET    /v1/stats             SchedStats
//	GET    /v1/healthz           200 "ok"
//
// Unfiltered trace responses are the stored blob verbatim — byte-
// identical to the v2 file the same scenario writes locally — with the
// stream's rolling MD5 in X-Nmo-Trace-Md5. Filtered responses are a
// fresh v2 stream (own index, own checksum) restreamed through the
// block-skip push-down.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wires a scheduler into an HTTP handler.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// MaxSpecBytes bounds the POST /v1/jobs body (a 256-scenario sweep
// spec is a few tens of KB; a megabyte is generous). Exported so the
// gateway enforces the identical bound — a spec must never be
// accepted by one tier and rejected by the next.
const MaxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, err := s.sched.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if err == ErrQueueFull {
			code = http.StatusTooManyRequests
		} else if err == errShutdown {
			code = http.StatusServiceUnavailable
		}
		WriteError(w, code, err)
		return
	}
	WriteJSON(w, http.StatusOK, job.Info())
}

// job resolves the {id} path value, writing the 404 itself on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		WriteError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		WriteJSON(w, http.StatusOK, j.Info())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.sched.Cancel(j.ID); err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, s.sched.Stats())
}

// artifacts resolves a job's artifacts, mapping unfinished and failed
// jobs to 409/the failure. Results are served only for done jobs —
// clients poll status first (or watch the submission response's state
// for cache hits).
func artifacts(w http.ResponseWriter, j *Job) (*JobArtifacts, bool) {
	info := j.Info()
	switch info.State {
	case StateDone:
		return j.Artifacts(), true
	case StateFailed, StateCanceled:
		WriteError(w, http.StatusConflict, fmt.Errorf("job %s is %s: %s", j.ID, info.State, info.Error))
	default:
		WriteError(w, http.StatusConflict, fmt.Errorf("job %s is %s; poll until done", j.ID, info.State))
	}
	return nil, false
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art, ok := artifacts(w, j)
	if !ok {
		return
	}
	doc := art.Doc
	doc.Key = j.Key
	WriteJSON(w, http.StatusOK, doc)
}

// traceChunk is the write granularity of full-blob trace responses;
// no Content-Length is set, so net/http chunks the transfer and the
// client can consume the stream incrementally.
const traceChunk = 256 << 10

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art, ok := artifacts(w, j)
	if !ok {
		return
	}
	blob, ok := art.Trace(r.URL.Query().Get("scenario"))
	if !ok || len(blob.Data) == 0 {
		WriteError(w, http.StatusNotFound, fmt.Errorf("job %s has no trace for scenario %q (sampling disabled, or unknown name)",
			j.ID, r.URL.Query().Get("scenario")))
		return
	}

	hints, keep, err := traceFilter(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	if keep == nil {
		// Unfiltered: the stored bytes verbatim, rolling MD5 echoed so
		// clients can verify without reading the tail first.
		w.Header().Set("X-Nmo-Trace-Md5", hex.EncodeToString(blob.MD5[:]))
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		for off := 0; off < len(blob.Data); off += traceChunk {
			end := off + traceChunk
			if end > len(blob.Data) {
				end = len(blob.Data)
			}
			if _, err := w.Write(blob.Data[off:end]); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}

	// Filtered: restream through the block-skip push-down. The
	// response is a fresh, self-describing v2 stream; errors past the
	// header surface as a truncated chunked body (the client's OpenV2
	// rejects it).
	rd, err := trace.OpenV2(bytes.NewReader(blob.Data))
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusOK)
	trace.Restream(rd, w, hints, keep, 0)
}

// traceFilter maps ?from/?to/?core onto the push-down pair: block-
// skip hints for the stored blob's index plus the exact keep
// predicate. A request without filters returns a nil keep — the
// serve-verbatim fast path.
func traceFilter(r *http.Request) (trace.ScanHints, func(*trace.Sample) bool, error) {
	q := r.URL.Query()
	var hints trace.ScanHints
	var err error
	if v := q.Get("from"); v != "" {
		if hints.TimeLo, err = strconv.ParseUint(v, 10, 64); err != nil {
			return hints, nil, fmt.Errorf("bad from %q", v)
		}
	}
	if v := q.Get("to"); v != "" {
		if hints.TimeHi, err = strconv.ParseUint(v, 10, 64); err != nil {
			return hints, nil, fmt.Errorf("bad to %q", v)
		}
	}
	core := -1
	if v := q.Get("core"); v != "" {
		c, err := strconv.Atoi(v)
		if err != nil || c < 0 {
			return hints, nil, fmt.Errorf("bad core %q", v)
		}
		core = c
		hints.CoreMask = trace.CoreBit(int16(c))
	}
	if hints.TimeLo == 0 && hints.TimeHi == 0 && core < 0 {
		return hints, nil, nil
	}
	h := hints
	keep := func(s *trace.Sample) bool {
		if h.TimeLo != 0 && s.TimeNs < h.TimeLo {
			return false
		}
		if h.TimeHi != 0 && s.TimeNs >= h.TimeHi {
			return false
		}
		// Exact core equality: the hint mask aliases mod 64, the
		// predicate must not.
		return core < 0 || int(s.Core) == core
	}
	return hints, keep, nil
}

// WriteJSON and WriteError are the wire encoding helpers, shared with
// the gateway so every tier answers with the same JSON shapes (errors
// always as the apiError body).
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the standard error body.
func WriteError(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, apiError{Error: err.Error()})
}
