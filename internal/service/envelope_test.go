package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nmo/internal/auth"
	"nmo/internal/obs"
)

// decodeEnvelope asserts a response is the standard JSON error
// envelope and returns the embedded APIError.
func decodeEnvelope(t *testing.T, resp *http.Response) *obs.APIError {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error *obs.APIError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("body is not the error envelope: %q (%v)", body, err)
	}
	if env.Error.Code == "" {
		t.Errorf("envelope has no code: %q", body)
	}
	if env.Error.RequestID == "" {
		t.Errorf("envelope has no request_id: %q", body)
	}
	if hdr := resp.Header.Get(obs.RequestIDHeader); hdr != env.Error.RequestID {
		t.Errorf("request ID header %q != envelope request_id %q", hdr, env.Error.RequestID)
	}
	return env.Error
}

// TestErrorEnvelopeGolden sweeps the shard's 4xx/5xx surface: every
// non-2xx response is the one JSON envelope, carrying the right stable
// code and the request ID.
func TestErrorEnvelopeGolden(t *testing.T) {
	srv, _, client := newTestServer(t, SchedConfig{Workers: 1, QueueCap: 1})
	ctx := context.Background()

	// Occupy the only worker with a genuinely slow job (a multi-scenario
	// sweep), then fill the one queue slot: the running/queued pair
	// powers the conflict and queue-full rows below.
	var slowScens []ScenarioSpec
	for i := 0; i < 16; i++ {
		sc := quickSpec(900 + uint64(i))
		sc.Elems = 400_000
		slowScens = append(slowScens, sc)
	}
	head, err := client.Submit(ctx, JobSpec{Scenarios: slowScens})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Submit(ctx, quickJob(930))
	if err != nil {
		t.Fatal(err)
	}

	req := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		r, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			r.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantAllow  string
	}{
		{"unknown route", "GET", "/v1/nope", "", 404, obs.CodeNotFound, ""},
		{"root", "GET", "/", "", 404, obs.CodeNotFound, ""},
		{"unknown verb on jobs", "PUT", "/v1/jobs", "", 405, obs.CodeMethodNotAllowed, "POST"},
		{"unknown verb on stats", "DELETE", "/v1/stats", "", 405, obs.CodeMethodNotAllowed, "GET"},
		{"unknown verb on job id", "PATCH", "/v1/jobs/jx", "", 405, obs.CodeMethodNotAllowed, "DELETE, GET"},
		{"unknown job", "GET", "/v1/jobs/jnope", "", 404, obs.CodeNotFound, ""},
		{"unknown job result", "GET", "/v1/jobs/jnope/result", "", 404, obs.CodeNotFound, ""},
		{"bad spec json", "POST", "/v1/jobs", "{", 400, obs.CodeBadSpec, ""},
		{"bad spec unknown field", "POST", "/v1/jobs", `{"bogus":1}`, 400, obs.CodeBadSpec, ""},
		{"result while queued", "GET", "/v1/jobs/" + queued.ID + "/result", "", 409, obs.CodeConflict, ""},
		{"trace while queued", "GET", "/v1/jobs/" + queued.ID + "/trace", "", 409, obs.CodeConflict, ""},
		{"queue full", "POST", "/v1/jobs", mustSpecJSON(t, quickJob(931)), 429, obs.CodeQueueFull, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := req(tc.method, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if tc.wantAllow != "" {
				if got := resp.Header.Get("Allow"); got != tc.wantAllow {
					t.Errorf("Allow = %q, want %q", got, tc.wantAllow)
				}
			}
			ae := decodeEnvelope(t, resp)
			if ae.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", ae.Code, tc.wantCode)
			}
		})
	}

	// Trailing slashes normalize instead of 404ing.
	resp := req("GET", "/v1/stats/", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/stats/ = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Liveness route: open, cheap, 200.
	resp = req("GET", "/v1/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/healthz = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if err := client.Healthz(ctx); err != nil {
		t.Errorf("client.Healthz: %v", err)
	}

	// Drain, then check the post-completion envelope rows: a malformed
	// filter on a finished job is 400 bad_request.
	if _, err := client.Wait(ctx, head.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, queued.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp = req("GET", "/v1/jobs/"+queued.ID+"/trace?from=xx", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad filter = %d, want 400", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != obs.CodeBadRequest {
		t.Errorf("bad filter code = %q, want %q", ae.Code, obs.CodeBadRequest)
	}
}

func mustSpecJSON(t *testing.T, spec JobSpec) string {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestClientTypedAPIError: the client decodes the envelope into a
// *APIError that carries code, status, and request ID, and matches
// errors.Is by code.
func TestClientTypedAPIError(t *testing.T) {
	_, _, client := newTestServer(t, SchedConfig{Workers: 1})
	_, err := client.Job(context.Background(), "jnope")
	if err == nil {
		t.Fatal("unknown job did not error")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err %T is not *APIError", err)
	}
	if ae.Code != obs.CodeNotFound || ae.Status != 404 || ae.RequestID == "" {
		t.Fatalf("APIError = %+v, want not_found/404 with request ID", ae)
	}
	if !errors.Is(err, &APIError{Code: obs.CodeNotFound}) {
		t.Error("errors.Is by code failed")
	}
	if errors.Is(err, &APIError{Code: obs.CodeQueueFull}) {
		t.Error("errors.Is matched the wrong code")
	}
	// The message format surfaces everything a human needs to grep the
	// audit log: code, status, request ID.
	for _, want := range []string{obs.CodeNotFound, "404", ae.RequestID} {
		if !strings.Contains(ae.Error(), want) {
			t.Errorf("Error() %q missing %q", ae.Error(), want)
		}
	}
}

// TestServerJWTAuth: a shard in jwt mode rejects tokenless and invalid
// requests with the 401 envelope and serves authenticated ones, with
// the job recorded under the token's tenant.
func TestServerJWTAuth(t *testing.T) {
	key := []byte("server-test-key")
	mw, err := auth.NewMiddleware(auth.Config{Mode: auth.ModeJWT, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedConfig{Workers: 1}, nil)
	t.Cleanup(sched.Close)
	srv := httptest.NewServer(NewServer(sched, WithAuth(mw)))
	t.Cleanup(srv.Close)
	ctx := context.Background()

	// No token: 401 envelope with WWW-Authenticate.
	client := NewClient(srv.URL)
	_, err = client.Submit(ctx, quickJob(910))
	if !errors.Is(err, &APIError{Code: obs.CodeUnauthorized}) {
		t.Fatalf("tokenless submit err = %v, want unauthorized", err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate")
	}
	if ae := decodeEnvelope(t, resp); ae.Code != obs.CodeUnauthorized {
		t.Errorf("code = %q, want unauthorized", ae.Code)
	}

	// Expired token: still 401.
	expired, err := auth.SignHS256(key, auth.Claims{Tenant: "ops", Exp: time.Now().Add(-time.Hour).Unix()})
	if err != nil {
		t.Fatal(err)
	}
	client.Token = expired
	if _, err := client.Submit(ctx, quickJob(910)); !errors.Is(err, &APIError{Code: obs.CodeUnauthorized}) {
		t.Fatalf("expired-token submit err = %v, want unauthorized", err)
	}

	// Valid token: the job runs as the token's tenant.
	tok, err := auth.SignHS256(key, auth.Claims{Tenant: "ops"})
	if err != nil {
		t.Fatal(err)
	}
	client.Token = tok
	info, err := client.Submit(ctx, quickJob(910))
	if err != nil {
		t.Fatal(err)
	}
	if info, err = client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "ops" {
		t.Errorf("JobInfo.Tenant = %q, want ops", info.Tenant)
	}

	// The open operational surface needs no credentials even in jwt
	// mode: healthz, stats, metrics.
	for _, path := range []string{"/v1/healthz", "/v1/stats", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without token = %d, want 200", path, resp.StatusCode)
		}
	}
}
