package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"testing"
	"time"

	"nmo/internal/trace"
)

// submitWait submits spec and blocks until it is done, returning the
// job's first trace blob.
func submitWait(t *testing.T, sched *Scheduler, client *Client, spec JobSpec) (string, *TraceBlob) {
	t.Helper()
	ctx := context.Background()
	info, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	job, ok := sched.Get(info.ID)
	if !ok {
		t.Fatalf("job %s vanished", info.ID)
	}
	return info.ID, job.Artifacts().Traces[0]
}

// TestHTTPTraceServeRegression pins the zero-copy serving rework: for
// v2 and v2.1 blobs alike, the unfiltered response is the stored blob
// verbatim with the blob's MD5 in X-Nmo-Trace-Md5, and the filtered
// response is a valid same-format file holding exactly the matching
// samples. Both formats carry the same rolling MD5 for the same run.
func TestHTTPTraceServeRegression(t *testing.T) {
	_, sched, client := newTestServer(t, SchedConfig{Workers: 1})
	ctx := context.Background()

	var md5s [2][16]byte
	for fi, compress := range []bool{false, true} {
		spec := quickJob(57)
		spec.Scenarios[0].Compress = compress
		id, blob := submitWait(t, sched, client, spec)
		md5s[fi] = blob.MD5

		// Unfiltered: the wire bytes are the blob, the header is its
		// checksum.
		var buf bytes.Buffer
		n, md5hex, err := client.DownloadTrace(ctx, id, NewTraceOptions(), &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), blobBytes(t, blob)) {
			t.Errorf("compress=%t: served bytes differ from the stored blob", compress)
		}
		if n != blob.Size() {
			t.Errorf("compress=%t: served %d bytes, blob holds %d", compress, n, blob.Size())
		}
		if md5hex != hex.EncodeToString(blob.MD5[:]) {
			t.Errorf("compress=%t: X-Nmo-Trace-Md5 %s != blob %x", compress, md5hex, blob.MD5)
		}
		rd, err := trace.OpenV2(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if rd.Compressed() != compress {
			t.Errorf("compress=%t: served file reports Compressed()=%t", compress, rd.Compressed())
		}

		// Filtered: same predicate locally and over the wire.
		lo, hi := rd.Block(0).TimeMin, rd.Block(rd.NumBlocks()-1).TimeMax
		from, to := lo+(hi-lo)/4, lo+3*(hi-lo)/4
		var want []trace.Sample
		if err := rd.Scan(trace.ScanHints{}, func(s *trace.Sample) {
			if s.TimeNs >= from && s.TimeNs < to {
				want = append(want, *s)
			}
		}); err != nil {
			t.Fatal(err)
		}
		opt := NewTraceOptions()
		opt.FromNs, opt.ToNs = from, to
		buf.Reset()
		if _, _, err := client.DownloadTrace(ctx, id, opt, &buf); err != nil {
			t.Fatal(err)
		}
		frd, err := trace.OpenV2(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("compress=%t: filtered stream invalid: %v", compress, err)
		}
		var got []trace.Sample
		if err := frd.Scan(trace.ScanHints{}, func(s *trace.Sample) { got = append(got, *s) }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("compress=%t: filtered stream has %d samples, want %d", compress, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("compress=%t: filtered sample %d = %+v, want %+v", compress, i, got[i], want[i])
			}
		}
	}
	// The same scenario checksums identically whether stored as v2 or
	// v2.1 — compression never touches the sample stream.
	if md5s[0] != md5s[1] {
		t.Error("v2 and v2.1 runs of the same scenario have different MD5s")
	}
}

// TestCompressedTraceJobsDeterminism: the v2.1 blob is byte-identical
// whether the engine ran the job on 1 worker or 8 — compression sits
// below the deterministic sample stream, so parallelism cannot leak
// into the stored bytes.
func TestCompressedTraceJobsDeterminism(t *testing.T) {
	spec := quickJob(58)
	spec.Scenarios[0].Compress = true

	var blobs [2]*TraceBlob
	for i, jobs := range []int{1, 8} {
		_, sched, client := newTestServer(t, SchedConfig{Workers: 1, EngineJobs: jobs})
		_, blobs[i] = submitWait(t, sched, client, spec)
	}
	if !bytes.Equal(blobBytes(t, blobs[0]), blobBytes(t, blobs[1])) {
		t.Error("v2.1 blob bytes differ between EngineJobs=1 and EngineJobs=8")
	}
	if blobs[0].MD5 != blobs[1].MD5 {
		t.Error("v2.1 blob MD5 differs between EngineJobs=1 and EngineJobs=8")
	}
}
