package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// benchSpec is deliberately tiny: the benchmark measures the service
// machinery (HTTP, scheduling, cache, digest), not the simulator.
func benchSpec(seed uint64) JobSpec {
	return JobSpec{Scenarios: []ScenarioSpec{{
		Workload: "stream",
		Threads:  2,
		Elems:    20_000,
		Iters:    1,
		Cores:    4,
		Seed:     seed,
		Period:   700,
	}}}
}

// BenchmarkServiceThroughput measures end-to-end jobs/sec through the
// full HTTP stack, contrasting the cache-miss path (every submission
// simulates) with the cache-hit path (every submission is answered
// from the content-addressed store) — the service-level trajectory
// recorded in BENCH_*.json by CI.
func BenchmarkServiceThroughput(b *testing.B) {
	run := func(b *testing.B, spec func(i int) JobSpec) {
		sched := NewScheduler(SchedConfig{Workers: 2, QueueCap: 1 << 16}, NewCache(1<<16))
		defer sched.Close()
		srv := httptest.NewServer(NewServer(sched))
		defer srv.Close()
		client := NewClient(srv.URL)
		ctx := context.Background()

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			info, err := client.Submit(ctx, spec(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
		b.ReportMetric(float64(sched.EngineRuns()), "engine-runs")
	}

	b.Run("miss", func(b *testing.B) {
		// Every submission is a distinct content address: full
		// simulate + digest + cache-fill cost per job.
		run(b, func(i int) JobSpec { return benchSpec(uint64(1000 + i)) })
	})
	b.Run("hit", func(b *testing.B) {
		// One address, submitted repeatedly: after the first fill the
		// latency is pure service overhead.
		run(b, func(int) JobSpec { return benchSpec(1) })
	})
}

// BenchmarkServiceTraceStream measures streaming a cached trace blob
// over HTTP (the hot read path of a dashboard polling one run), raw v2
// against compressed v2.1. Both variants report MB/s of *sample
// payload* delivered — the raw blob size — so the compressed number
// directly shows what shipping fewer wire bytes buys.
func BenchmarkServiceTraceStream(b *testing.B) {
	sched := NewScheduler(SchedConfig{Workers: 1}, NewCache(0))
	defer sched.Close()
	srv := httptest.NewServer(NewServer(sched))
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	submit := func(compress bool) (string, int64) {
		// Unlike benchSpec, the trace bench wants a transfer-dominated
		// blob (hundreds of KiB), not a service-overhead-dominated one.
		spec := benchSpec(1)
		spec.Scenarios[0].Elems = 200_000
		spec.Scenarios[0].Iters = 4
		spec.Scenarios[0].Period = 64
		spec.Scenarios[0].Compress = compress
		info, err := client.Submit(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		n, _, err := client.DownloadTrace(ctx, info.ID, NewTraceOptions(), &buf)
		if err != nil {
			b.Fatal(err)
		}
		return info.ID, n
	}
	rawID, rawBytes := submit(false)
	compID, compBytes := submit(true)

	for _, bc := range []struct {
		name string
		id   string
		wire int64
	}{
		{"raw", rawID, rawBytes},
		{"compressed", compID, compBytes},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var buf bytes.Buffer
			b.SetBytes(rawBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				n, _, err := client.DownloadTrace(ctx, bc.id, NewTraceOptions(), &buf)
				if err != nil {
					b.Fatal(err)
				}
				if n != bc.wire {
					b.Fatalf("downloaded %d bytes, want %d", n, bc.wire)
				}
			}
			b.ReportMetric(float64(bc.wire)/float64(rawBytes), "wire-ratio")
		})
	}
}
