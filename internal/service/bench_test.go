package service

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nmo/internal/zerocopy"
)

// benchSpec is deliberately tiny: the benchmark measures the service
// machinery (HTTP, scheduling, cache, digest), not the simulator.
func benchSpec(seed uint64) JobSpec {
	return JobSpec{Scenarios: []ScenarioSpec{{
		Workload: "stream",
		Threads:  2,
		Elems:    20_000,
		Iters:    1,
		Cores:    4,
		Seed:     seed,
		Period:   700,
	}}}
}

// BenchmarkServiceThroughput measures end-to-end jobs/sec through the
// full HTTP stack, contrasting the cache-miss path (every submission
// simulates) with the cache-hit path (every submission is answered
// from the content-addressed store) — the service-level trajectory
// recorded in BENCH_*.json by CI.
func BenchmarkServiceThroughput(b *testing.B) {
	run := func(b *testing.B, spec func(i int) JobSpec) {
		sched := NewScheduler(SchedConfig{Workers: 2, QueueCap: 1 << 16}, nil)
		defer sched.Close()
		srv := httptest.NewServer(NewServer(sched))
		defer srv.Close()
		client := NewClient(srv.URL)
		ctx := context.Background()

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			info, err := client.Submit(ctx, spec(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
		b.ReportMetric(float64(sched.EngineRuns()), "engine-runs")
	}

	b.Run("miss", func(b *testing.B) {
		// Every submission is a distinct content address: full
		// simulate + digest + cache-fill cost per job.
		run(b, func(i int) JobSpec { return benchSpec(uint64(1000 + i)) })
	})
	b.Run("hit", func(b *testing.B) {
		// One address, submitted repeatedly: after the first fill the
		// latency is pure service overhead.
		run(b, func(int) JobSpec { return benchSpec(1) })
	})
}

// BenchmarkServiceTraceStream measures streaming a cached trace blob
// over HTTP (the hot read path of a dashboard polling one run), raw v2
// against compressed v2.1. Both variants report MB/s of *sample
// payload* delivered — the raw blob size — so the compressed number
// directly shows what shipping fewer wire bytes buys.
func BenchmarkServiceTraceStream(b *testing.B) {
	sched := NewScheduler(SchedConfig{Workers: 1}, nil)
	defer sched.Close()
	srv := httptest.NewServer(NewServer(sched))
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	submit := func(compress bool) (string, int64) {
		// Unlike benchSpec, the trace bench wants a transfer-dominated
		// blob (hundreds of KiB), not a service-overhead-dominated one.
		spec := benchSpec(1)
		spec.Scenarios[0].Elems = 200_000
		spec.Scenarios[0].Iters = 4
		spec.Scenarios[0].Period = 64
		spec.Scenarios[0].Compress = compress
		info, err := client.Submit(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		n, _, err := client.DownloadTrace(ctx, info.ID, NewTraceOptions(), &buf)
		if err != nil {
			b.Fatal(err)
		}
		return info.ID, n
	}
	rawID, rawBytes := submit(false)
	compID, compBytes := submit(true)

	for _, bc := range []struct {
		name string
		id   string
		wire int64
	}{
		{"raw", rawID, rawBytes},
		{"compressed", compID, compBytes},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var buf bytes.Buffer
			b.SetBytes(rawBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				n, _, err := client.DownloadTrace(ctx, bc.id, NewTraceOptions(), &buf)
				if err != nil {
					b.Fatal(err)
				}
				if n != bc.wire {
					b.Fatalf("downloaded %d bytes, want %d", n, bc.wire)
				}
			}
			b.ReportMetric(float64(bc.wire)/float64(rawBytes), "wire-ratio")
		})
	}
}

// BenchmarkTraceServeFile contrasts the two storage tiers on the
// unfiltered /trace path: "memory" serves from the resident blob,
// "file" serves a demoted blob straight from its spill file (the
// sendfile-eligible path, which never stages the payload on the Go
// heap). The file tier's win shows up in allocs/op and B/op.
func BenchmarkTraceServeFile(b *testing.B) {
	run := func(b *testing.B, cache *Cache, wantFile bool) {
		sched := NewScheduler(SchedConfig{Workers: 1}, cache)
		defer sched.Close()
		srv := httptest.NewServer(NewServer(sched))
		defer srv.Close()
		client := NewClient(srv.URL)
		ctx := context.Background()

		spec := benchSpec(1)
		spec.Scenarios[0].Elems = 200_000
		spec.Scenarios[0].Iters = 4
		spec.Scenarios[0].Period = 64
		info, err := client.Submit(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		job, _ := sched.Get(info.ID)
		blob := job.Artifacts().Traces[0]
		if blob.FileBacked() != wantFile {
			b.Fatalf("blob file-backed = %v, want %v", blob.FileBacked(), wantFile)
		}

		var buf bytes.Buffer
		b.SetBytes(blob.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			n, _, err := client.DownloadTrace(ctx, info.ID, NewTraceOptions(), &buf)
			if err != nil {
				b.Fatal(err)
			}
			if n != blob.Size() {
				b.Fatalf("downloaded %d bytes, want %d", n, blob.Size())
			}
		}
	}

	b.Run("memory", func(b *testing.B) {
		run(b, nil, false)
	})
	b.Run("file", func(b *testing.B) {
		// A one-byte memory budget demotes the blob to its spill file
		// the moment it is filled.
		cache, err := NewCache(CacheConfig{Dir: b.TempDir(), MemBudget: 1})
		if err != nil {
			b.Fatal(err)
		}
		run(b, cache, true)
	})
}

// BenchmarkTraceServeSendfile contrasts the two data planes on the
// same demoted blob over real TCP: "sendfile" serves through a
// wrapped listener (the production wiring — the body leaves via
// sendfile(2) and never crosses user space), "fallback" through a
// plain listener (the pooled 256 KiB copy). Both legs are driven by
// the same raw keep-alive client that discards bodies through
// zerocopy.Drainer (splice → /dev/null), so the receive side costs
// page accounting on either leg — like a remote peer's NIC — instead
// of performing in user space the very copies the serve path
// eliminated and charging them back to the host under test (see
// DESIGN.md §14). Each leg also reports user-copy-B/op: the payload
// bytes the server staged through user space, the quantity the
// offload removes. CI's benchstat gate watches this pair for
// regressions of either path.
func BenchmarkTraceServeSendfile(b *testing.B) {
	cache, err := NewCache(CacheConfig{Dir: b.TempDir(), MemBudget: 1})
	if err != nil {
		b.Fatal(err)
	}
	sched := NewScheduler(SchedConfig{Workers: 1}, cache)
	defer sched.Close()
	h := NewServer(sched)

	spec := benchSpec(1)
	spec.Scenarios[0].Elems = 200_000
	spec.Scenarios[0].Iters = 4
	spec.Scenarios[0].Period = 64
	job, err := sched.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	<-job.Done()
	blob := job.Artifacts().Traces[0]
	if !blob.FileBacked() {
		b.Fatal("blob not demoted to the spill file")
	}

	run := func(b *testing.B, wrapped bool) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := &http.Server{Handler: h}
		if wrapped {
			srv.ConnContext = zerocopy.ConnContext
			go srv.Serve(zerocopy.WrapListener(ln, h.ZeroCopy()))
		} else {
			go srv.Serve(ln)
		}
		defer srv.Close()

		// The drain client: one persistent conn, a precomputed request,
		// headers parsed in user space, body spliced to /dev/null.
		addr := ln.Addr().String()
		tc, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer tc.Close()
		dr, err := zerocopy.NewDrainer(tc)
		if err != nil {
			b.Fatal(err)
		}
		defer dr.Close()
		br := bufio.NewReader(tc)
		req := []byte("GET /v1/jobs/" + job.ID + "/trace HTTP/1.1\r\nHost: " + addr + "\r\n\r\n")
		get := func() (int64, error) {
			if _, err := tc.Write(req); err != nil {
				return 0, err
			}
			resp, err := http.ReadResponse(br, nil)
			if err != nil {
				return 0, err
			}
			if resp.StatusCode != http.StatusOK || resp.ContentLength <= 0 {
				return 0, fmt.Errorf("status %s, content-length %d", resp.Status, resp.ContentLength)
			}
			// Whatever the header read over-buffered belongs to the body;
			// the exact remainder is drained in kernel space, leaving the
			// conn at the next response boundary.
			cl := resp.ContentLength
			skip := int64(br.Buffered())
			if skip > cl {
				skip = cl
			}
			if _, err := br.Discard(int(skip)); err != nil {
				return 0, err
			}
			if rest := cl - skip; rest > 0 {
				if n, err := dr.Discard(rest); err != nil {
					return n, err
				}
			}
			return cl, nil
		}

		fb0 := h.ZeroCopy().FallbackBytes()
		b.SetBytes(blob.Size())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := get()
			if err != nil {
				b.Fatal(err)
			}
			if n != blob.Size() {
				b.Fatalf("downloaded %d bytes, want %d", n, blob.Size())
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(h.ZeroCopy().FallbackBytes()-fb0)/float64(b.N), "user-copy-B/op")
	}
	b.Run("sendfile", func(b *testing.B) { run(b, true) })
	b.Run("fallback", func(b *testing.B) { run(b, false) })
}

// BenchmarkCacheWarmBoot measures the restart path: scanning a spill
// directory, verifying every entry's rolling MD5 block by block, and
// repopulating the index. The fixture fans one real trace blob out
// under distinct content addresses, so the cost scales with entries
// and verified payload bytes like a production spill dir.
func BenchmarkCacheWarmBoot(b *testing.B) {
	// One genuine engine run supplies valid v2 bytes + checksum.
	seedSched := NewScheduler(SchedConfig{Workers: 1}, nil)
	spec := benchSpec(1)
	spec.Scenarios[0].Elems = 100_000
	spec.Scenarios[0].Period = 128
	job, err := seedSched.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	<-job.Done()
	art := job.Artifacts()
	data := blobBytesB(b, art.Traces[0])
	sum := art.Traces[0].MD5
	doc := art.Doc
	seedSched.Close()

	const entries = 32
	dir := b.TempDir()
	seed, err := NewCache(CacheConfig{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		key := fmt.Sprintf("%064x", i+1)
		e, leader := seed.Acquire(key)
		if !leader {
			b.Fatal("duplicate key in warm-boot fixture")
		}
		seed.Fill(e, &JobArtifacts{Doc: doc, Traces: []*TraceBlob{
			NewTraceBlob("s0", data, sum),
		}})
	}
	if st := seed.Stats(); st.Entries != entries || st.BytesDisk == 0 {
		b.Fatalf("fixture incomplete: %+v", st)
	}

	b.SetBytes(int64(entries) * int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCache(CacheConfig{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if st := c.Stats(); st.Entries != entries {
			b.Fatalf("recovered %d entries, want %d", st.Entries, entries)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(entries)*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
}

// blobBytesB is the benchmark twin of blobBytes.
func blobBytesB(b *testing.B, blob *TraceBlob) []byte {
	b.Helper()
	data, err := blob.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	return data
}
