package service

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"nmo/internal/core"
	"nmo/internal/engine"
	"nmo/internal/machine"
	"nmo/internal/sampler"
	"nmo/internal/trace"
	"nmo/internal/workloads"
)

// quickSpec is a small, fast scenario; seed varies the content
// address without changing the cost.
func quickSpec(seed uint64) ScenarioSpec {
	return ScenarioSpec{
		Workload: "stream",
		Threads:  4,
		Elems:    30_000,
		Iters:    2,
		Cores:    8,
		Seed:     seed,
		Period:   700,
	}
}

func quickJob(seed uint64) JobSpec {
	return JobSpec{Scenarios: []ScenarioSpec{quickSpec(seed)}}
}

// newTestScheduler builds a scheduler the test owns.
func newTestScheduler(t *testing.T, cfg SchedConfig) *Scheduler {
	t.Helper()
	s := NewScheduler(cfg, nil)
	t.Cleanup(s.Close)
	return s
}

// waitDone waits for a job's terminal state.
func waitDone(t *testing.T, j *Job) JobInfo {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
	// Done() closes when the cache entry resolves; finish runs in the
	// same goroutine for leaders but asynchronously for coalesced
	// followers — poll the (tiny) remainder.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := j.Info()
		if info.State.Terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after entry resolution", j.ID, info.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// blobBytes materializes a blob for comparison (reading its spill
// file when demoted), failing the test on a read error.
func blobBytes(t *testing.T, b *TraceBlob) []byte {
	t.Helper()
	data, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestConcurrentSubmissionSingleFill is the scheduler's core
// guarantee under -race: many clients submitting a mix of identical
// and distinct jobs produce exactly one engine run per distinct
// content address, and every identical submission serves the same
// artifacts.
func TestConcurrentSubmissionSingleFill(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{Workers: 4, QueueCap: 128})

	const identical = 8
	const distinct = 4
	jobs := make([]*Job, identical+distinct)
	var wg sync.WaitGroup
	for i := 0; i < identical+distinct; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := uint64(100) // the shared spec
			if i >= identical {
				seed = uint64(200 + i) // distinct specs
			}
			j, err := s.Submit(quickJob(seed))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}()
	}
	wg.Wait()
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("job %d failed to submit", i)
		}
		if info := waitDone(t, j); info.State != StateDone {
			t.Fatalf("job %d: state %s (%s)", i, info.State, info.Error)
		}
	}

	// One fill per distinct key — the identical eight share one run.
	if runs := s.EngineRuns(); runs != 1+distinct {
		t.Errorf("engine runs = %d, want %d (no duplicate simulation)", runs, 1+distinct)
	}
	st := s.Stats()
	if st.CacheHits+st.Coalesced != identical-1 {
		t.Errorf("hits+coalesced = %d+%d, want %d", st.CacheHits, st.Coalesced, identical-1)
	}

	// Every identical job serves the exact same artifacts (same
	// result doc, same trace bytes), and exactly one of them was the
	// leader (not cached).
	leaders := 0
	base := jobs[0].Artifacts()
	for i := 0; i < identical; i++ {
		info := jobs[i].Info()
		if !info.Cached {
			leaders++
		}
		art := jobs[i].Artifacts()
		if !reflect.DeepEqual(art.Doc, base.Doc) {
			t.Errorf("job %d result doc differs from its identical peers", i)
		}
		if !bytes.Equal(blobBytes(t, art.Traces[0]), blobBytes(t, base.Traces[0])) {
			t.Errorf("job %d trace bytes differ from its identical peers", i)
		}
	}
	if leaders != 1 {
		t.Errorf("identical batch had %d leaders, want 1", leaders)
	}
}

// TestCachedEqualsFresh pins the cached-vs-fresh contract: a result
// served from the cache is indistinguishable from one a fresh
// scheduler computes.
func TestCachedEqualsFresh(t *testing.T) {
	s1 := newTestScheduler(t, SchedConfig{Workers: 2})
	j1, err := s1.Submit(quickJob(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)

	// Identical resubmission: answered from the cache, engine untouched.
	j2, err := s1.Submit(quickJob(7))
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, j2)
	if !info.Cached {
		t.Error("resubmission not served from cache")
	}
	if runs := s1.EngineRuns(); runs != 1 {
		t.Errorf("engine runs = %d after identical resubmission, want 1", runs)
	}
	if j1.Key != j2.Key {
		t.Errorf("identical specs got different keys: %s vs %s", j1.Key, j2.Key)
	}

	// A fresh scheduler (cold cache) recomputes bit-identical output.
	s2 := newTestScheduler(t, SchedConfig{Workers: 2})
	j3, err := s2.Submit(quickJob(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	if !reflect.DeepEqual(j2.Artifacts().Doc, j3.Artifacts().Doc) {
		t.Error("cached result differs from a fresh run's")
	}
	if !bytes.Equal(blobBytes(t, j2.Artifacts().Traces[0]), blobBytes(t, j3.Artifacts().Traces[0])) {
		t.Error("cached trace bytes differ from a fresh run's")
	}
}

// TestServedTraceMatchesLocalRun is the acceptance parity check: the
// blob the service stores (and serves verbatim) is byte-identical to
// the v2 file the same scenario streams locally, and its rolling MD5
// equals the in-memory profile checksum of a plain local run.
func TestServedTraceMatchesLocalRun(t *testing.T) {
	sp := quickSpec(42)

	// Local reference, constructed independently of the service
	// resolver — the way cmd/nmoprof builds its runs.
	cfg := core.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = core.ModeSample
	cfg.Period = sp.Period
	cfg.Seed = sp.Seed
	spec := machine.SpecForArch("arm64").WithCores(sp.Cores)
	factory := func() (workloads.Workload, error) {
		return workloads.NewStream(workloads.StreamConfig{
			Elems: sp.Elems, Threads: sp.Threads, Iters: sp.Iters}), nil
	}

	// (a) collect path: in-memory profile checksum.
	prof, err := engine.Run(engine.Scenario{Name: "local", Spec: spec, Config: cfg, Workload: factory})
	if err != nil {
		t.Fatal(err)
	}
	// (b) streamed path: the v2 bytes a local -trace-out run writes.
	var local bytes.Buffer
	scfg := cfg
	scfg.SinkFactory = func(meta trace.Meta) (trace.Sink, error) {
		return trace.NewWriterV2(&local, meta, 0)
	}
	if _, err := engine.Run(engine.Scenario{Name: "local-v2", Spec: spec, Config: scfg, Workload: factory}); err != nil {
		t.Fatal(err)
	}

	s := newTestScheduler(t, SchedConfig{Workers: 1})
	j, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{sp}})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, j); info.State != StateDone {
		t.Fatalf("job failed: %s", info.Error)
	}
	blob := j.Artifacts().Traces[0]
	if blob.MD5 != prof.MD5 {
		t.Errorf("served trace MD5 %x != local profile MD5 %x", blob.MD5, prof.MD5)
	}
	if !bytes.Equal(blobBytes(t, blob), local.Bytes()) {
		t.Errorf("served trace bytes differ from the local -trace-out stream (%d vs %d bytes)",
			blob.Size(), local.Len())
	}
	if prof.Sampler.Processed == 0 {
		t.Fatal("local run produced no samples; the parity check is vacuous")
	}
}

// TestCancelQueuedJob: with one busy worker, a queued job cancels
// deterministically, its cache entry is released, and a resubmission
// runs fresh.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{Workers: 1})

	// Head job occupies the only worker.
	head, err := s.Submit(quickJob(1))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(quickJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, victim)
	if info.State != StateCanceled {
		t.Fatalf("canceled job state = %s, want %s", info.State, StateCanceled)
	}
	waitDone(t, head)

	// The canceled key re-runs on resubmission (its entry was aborted,
	// not cached as a failure).
	runs := s.EngineRuns()
	again, err := s.Submit(quickJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, again); info.State != StateDone {
		t.Fatalf("resubmitted job state = %s (%s)", info.State, info.Error)
	}
	if s.EngineRuns() != runs+1 {
		t.Errorf("resubmission after cancel did not run fresh")
	}

	if err := s.Cancel("jdoesnotexist"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}

// TestPriorityOrdersQueue: with the only worker busy, later
// submissions sort by priority (desc) then FIFO.
func TestPriorityOrdersQueue(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{Workers: 1})
	head, err := s.Submit(quickJob(10))
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{quickSpec(11)}, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{quickSpec(12)}, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{quickSpec(13)}, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	var order []string
	for _, j := range defaultQueue(s) {
		if j == low || j == high || j == mid {
			order = append(order, j.ID)
		}
	}
	s.mu.Unlock()
	want := []string{high.ID, mid.ID, low.ID}
	if len(order) == 3 && !reflect.DeepEqual(order, want) {
		t.Errorf("queue order = %v, want %v (priority desc, FIFO within)", order, want)
	}
	for _, j := range []*Job{head, low, high, mid} {
		waitDone(t, j)
	}
}

// TestQueueCapRejects: submissions beyond the cap fail with
// ErrQueueFull and do not leak cache entries.
func TestQueueCapRejects(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{Workers: 1, QueueCap: 1})
	if _, err := s.Submit(quickJob(20)); err != nil {
		t.Fatal(err)
	}
	// Depending on timing the head may already be running; fill the
	// one queue slot, then the next distinct submission must bounce.
	var rejected bool
	for seed := uint64(21); seed < 40; seed++ {
		if _, err := s.Submit(quickJob(seed)); err == ErrQueueFull {
			rejected = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Fatal("queue never filled")
	}
	// The rejected key must be resubmittable once the queue drains
	// (its cache reservation was undone) — covered by Submit
	// succeeding on a fresh scheduler; here just ensure the scheduler
	// still works.
	st := s.Stats()
	if st.Rejected == 0 {
		t.Error("rejection not counted")
	}
}

// waitState polls until the job reaches the state (or any terminal
// one) and reports whether it was observed.
func waitState(j *Job, want JobState, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := j.Info().State
		if st == want {
			return true
		}
		if st.Terminal() {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// TestBackendSlotsAdmission: a saturated backend queues its
// contenders, but jobs on the other backend are admitted past them —
// the conflict-constrained pop.
func TestBackendSlotsAdmission(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{
		Workers:      2,
		BackendSlots: map[sampler.Kind]int{sampler.KindSPE: 1, sampler.KindPEBS: 1},
	})

	// A long SPE job saturates the single SPE slot.
	long := quickSpec(30)
	long.Elems = 400_000
	head, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{long}})
	if err != nil {
		t.Fatal(err)
	}
	if !waitState(head, StateRunning, 30*time.Second) {
		t.Fatalf("head job never ran (state %s)", head.Info().State)
	}

	spe2, err := s.Submit(quickJob(31)) // SPE: must wait for the slot
	if err != nil {
		t.Fatal(err)
	}
	pebs := quickSpec(32)
	pebs.Backend = "pebs"
	jp, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{pebs}})
	if err != nil {
		t.Fatal(err)
	}

	// The PEBS job is admitted past the queued SPE contender (a free
	// worker exists, and its backend has a free slot).
	if info := waitDone(t, jp); info.State != StateDone {
		t.Fatalf("pebs job: %s (%s)", info.State, info.Error)
	}
	if head.Info().State == StateRunning {
		if st := spe2.Info().State; st != StateQueued {
			t.Errorf("second SPE job is %s while the SPE slot is saturated, want queued", st)
		}
	}
	// Drain: once the head releases the slot, the queued SPE job runs.
	waitDone(t, head)
	if info := waitDone(t, spe2); info.State != StateDone {
		t.Fatalf("queued SPE job: %s (%s)", info.State, info.Error)
	}
}

// TestResolveValidation covers spec rejection and key behaviour.
func TestResolveValidation(t *testing.T) {
	if _, _, err := resolveJob(JobSpec{}); err == nil {
		t.Error("empty job accepted")
	}
	bad := []ScenarioSpec{
		{Workload: "pagerank"},
		{Workload: ""},
		{Workload: "stream", Backend: "vtune"},
		{Workload: "stream", Mode: "everything"},
		{Workload: "stream", Threads: 64, Cores: 8},
	}
	for i, sp := range bad {
		if _, _, err := resolveJob(JobSpec{Scenarios: []ScenarioSpec{sp}}); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, sp)
		}
	}
	if _, _, err := resolveJob(JobSpec{Scenarios: []ScenarioSpec{
		{Workload: "stream", Name: "x"}, {Workload: "cfd", Name: "x"},
	}}); err == nil {
		t.Error("duplicate scenario names accepted")
	}
}

// TestScenarioKeyCanonicalization: defaults are filled before hashing,
// so an empty spec and its explicit-default twin share a key, while
// any semantic change (seed, period, backend, block size) splits it.
func TestScenarioKeyCanonicalization(t *testing.T) {
	key := func(sp ScenarioSpec) string {
		_, k, err := resolveJob(JobSpec{Scenarios: []ScenarioSpec{sp}})
		if err != nil {
			t.Fatalf("resolve %+v: %v", sp, err)
		}
		return k
	}
	implicit := key(ScenarioSpec{Workload: "stream"})
	explicit := key(ScenarioSpec{Workload: "stream", Threads: 32, Elems: 2_000_000,
		Iters: 2, Cores: 128, Seed: 42, Mode: "sample"})
	if implicit != explicit {
		t.Error("explicit defaults hash differently from implicit ones")
	}
	// Backend aliases canonicalize before hashing.
	if key(ScenarioSpec{Workload: "stream", Backend: "pebs"}) !=
		key(ScenarioSpec{Workload: "stream", Backend: "x86_64"}) {
		t.Error("backend aliases split the key")
	}
	// Effective-value aliasing: implicit and explicit defaults are the
	// same simulation and must share a content address.
	if key(ScenarioSpec{Workload: "stream", Period: 4096}) != implicit {
		t.Error("explicit default period split the key from the implicit one")
	}
	if key(ScenarioSpec{Workload: "stream", Backend: "spe"}) != implicit {
		t.Error("explicit default backend split the key from the implicit one")
	}
	// Period is unused outside sampling modes; its value must not
	// split counters-mode keys.
	if key(ScenarioSpec{Workload: "stream", Mode: "counters", Period: 1234}) !=
		key(ScenarioSpec{Workload: "stream", Mode: "counters"}) {
		t.Error("period split counters-mode keys despite being unused")
	}
	base := ScenarioSpec{Workload: "stream"}
	for _, mut := range []ScenarioSpec{
		{Workload: "cfd"},
		{Workload: "stream", Seed: 43},
		{Workload: "stream", Period: 999},
		{Workload: "stream", Backend: "pebs"},
		{Workload: "stream", BlockSamples: 64},
		{Workload: "stream", Threads: 16},
		{Workload: "stream", Mode: "full"},
	} {
		if key(mut) == key(base) {
			t.Errorf("mutation %+v did not change the key", mut)
		}
	}
	// Priority is queueing metadata, not content.
	_, k1, _ := resolveJob(JobSpec{Scenarios: []ScenarioSpec{base}, Priority: 0})
	_, k2, _ := resolveJob(JobSpec{Scenarios: []ScenarioSpec{base}, Priority: 9})
	if k1 != k2 {
		t.Error("priority changed the content address")
	}
}

// TestCacheEviction: memory-only completed entries evict LRU by blob
// bytes once the memory budget is exceeded, an Acquire hit refreshes
// recency, and nothing in flight is ever evicted.
func TestCacheEviction(t *testing.T) {
	c, err := NewCache(CacheConfig{MemBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	fill := func(key string, n int) {
		e, leader := c.Acquire(key)
		if !leader {
			t.Fatalf("key %s unexpectedly present", key)
		}
		c.Fill(e, &JobArtifacts{Traces: []*TraceBlob{
			NewTraceBlob(key, make([]byte, n), [16]byte{}),
		}})
	}
	fill("a", 100)
	fill("b", 100)
	// Touch a: b becomes the cold end.
	if _, leader := c.Acquire("a"); leader {
		t.Fatal("key a vanished")
	}
	fill("c", 100) // 300 bytes > 256: the LRU victim is b
	if e, leader := c.Acquire("b"); !leader {
		t.Error("cold key b survived past the byte budget")
	} else {
		c.Abort(e, ErrCanceled)
	}
	if _, leader := c.Acquire("a"); leader {
		t.Error("recently used key a was evicted instead of the LRU one")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.BytesMem != 200 {
		t.Errorf("bytes_mem = %d, want 200", st.BytesMem)
	}

	// An in-flight entry survives any amount of pressure.
	d, leader := c.Acquire("d")
	if !leader {
		t.Fatal("key d unexpectedly present")
	}
	fill("big", 300) // overflows the whole budget by itself
	if _, leader := c.Acquire("d"); leader {
		t.Error("in-flight entry was evicted under pressure")
	}
	c.Abort(d, ErrCanceled)
}

// TestJobRecordPruning: terminal job records beyond MaxJobs are
// forgotten oldest-first, while their results stay addressable by
// content through the cache.
func TestJobRecordPruning(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{Workers: 2, MaxJobs: 3})
	var ids []string
	for seed := uint64(80); seed < 88; seed++ {
		j, err := s.Submit(quickJob(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Error("oldest terminal job record survived past MaxJobs")
	}
	if _, ok := s.Get(ids[len(ids)-1]); !ok {
		t.Error("newest job record pruned")
	}
	// The pruned job's result is still one cache hit away.
	runs := s.EngineRuns()
	j, err := s.Submit(quickJob(80))
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, j); !info.Cached || info.State != StateDone {
		t.Errorf("pruned job's resubmission: cached=%t state=%s", info.Cached, info.State)
	}
	if s.EngineRuns() != runs {
		t.Error("pruned job's resubmission re-simulated despite the cache")
	}
}

// TestDefaultScenarioNames: defaulted names are the workload name,
// index-suffixed only on collision — [stream, cfd] addresses its
// traces as "stream" and "cfd", matching local CLI file naming.
func TestDefaultScenarioNames(t *testing.T) {
	rs, _, err := resolveJob(JobSpec{Scenarios: []ScenarioSpec{
		{Workload: "stream"}, {Workload: "cfd"}, {Workload: "stream", Seed: 7},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := []string{rs[0].spec.Name, rs[1].spec.Name, rs[2].spec.Name}
	want := []string{"stream", "cfd", "stream#2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("default names = %v, want %v", got, want)
	}
}

// TestBFSItersKeyAlias: BFS ignores iters (pinned to 3 traversals),
// so specs differing only in that knob share a content address.
func TestBFSItersKeyAlias(t *testing.T) {
	key := func(sp ScenarioSpec) string {
		_, k, err := resolveJob(JobSpec{Scenarios: []ScenarioSpec{sp}})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key(ScenarioSpec{Workload: "bfs"}) != key(ScenarioSpec{Workload: "bfs", Iters: 3}) {
		t.Error("ignored BFS iters split the content address")
	}
	if key(ScenarioSpec{Workload: "stream"}) == key(ScenarioSpec{Workload: "stream", Iters: 3}) {
		t.Error("stream iters is semantic and must split the key")
	}
}

// TestCoalescePriorityInheritance: a high-priority submission that
// coalesces onto a queued lower-priority identical leader bumps the
// leader's queue position.
func TestCoalescePriorityInheritance(t *testing.T) {
	s := newTestScheduler(t, SchedConfig{Workers: 1})
	head, err := s.Submit(quickJob(90)) // occupies the worker
	if err != nil {
		t.Fatal(err)
	}
	leader, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{quickSpec(91)}, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	other, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{quickSpec(92)}, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	follower, err := s.Submit(JobSpec{Scenarios: []ScenarioSpec{quickSpec(91)}, Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	var order []string
	for _, q := range defaultQueue(s) {
		if q == leader || q == other {
			order = append(order, q.ID)
		}
	}
	s.mu.Unlock()
	if len(order) == 2 && !reflect.DeepEqual(order, []string{leader.ID, other.ID}) {
		t.Errorf("queue order = %v, want coalesced-bumped leader %s before %s", order, leader.ID, other.ID)
	}
	for _, j := range []*Job{head, leader, other, follower} {
		waitDone(t, j)
	}
}

// TestResourceBoundsRejected: buffer and block-size requests beyond
// the sanity caps bounce at submit with a validation error.
func TestResourceBoundsRejected(t *testing.T) {
	for _, sp := range []ScenarioSpec{
		{Workload: "stream", AuxMiB: 1 << 20},
		{Workload: "stream", BufMiB: 1 << 20},
		{Workload: "stream", BlockSamples: 1 << 24},
	} {
		if _, _, err := resolveJob(JobSpec{Scenarios: []ScenarioSpec{sp}}); err == nil {
			t.Errorf("oversized spec accepted: %+v", sp)
		}
	}
}

// TestCloseConcurrentSubmitShutsDownCleanly pins the Close/Submit
// race: a Submit that wins the race against Close may see its leader
// popped by a worker just as the base context cancels. Every such job
// must resolve to the clean shutdown error (HTTP 503 at the server) —
// never to a confusing "canceled" state, and never by burning an
// engine run against a dead scheduler. Run under -race: the original
// bug was exactly a window where the popped job raced baseCancel.
func TestCloseConcurrentSubmitShutsDownCleanly(t *testing.T) {
	for round := 0; round < 8; round++ {
		s := NewScheduler(SchedConfig{Workers: 2}, nil)
		const n = 16
		var wg sync.WaitGroup
		jobs := make([]*Job, n)
		errs := make([]error, n)
		start := make(chan struct{})
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				// Distinct keys per submission (and per round). Three
				// scenarios per job: cancellation is scenario-granular,
				// so a worker caught mid-batch by Close sees its
				// remaining scenarios fail with the context error — the
				// widest window of the original race.
				var spec JobSpec
				for sc := 0; sc < 3; sc++ {
					spec.Scenarios = append(spec.Scenarios, ScenarioSpec{
						Workload: "stream", Threads: 2, Elems: 150_000, Iters: 1,
						Cores: 4, Seed: uint64(10000*round + 10*i + sc + 1), Mode: "none",
					})
				}
				jobs[i], errs[i] = s.Submit(spec)
			}()
		}
		close(start)
		// Let workers pop into the danger window before closing; the
		// jitter across rounds sweeps Close over every phase of the
		// submissions.
		time.Sleep(time.Duration(round) * 500 * time.Microsecond)
		s.Close()
		wg.Wait()

		for i := 0; i < n; i++ {
			if errs[i] != nil {
				if errs[i] != errShutdown {
					t.Fatalf("round %d: Submit racing Close returned %v, want errShutdown", round, errs[i])
				}
				continue
			}
			info := waitDone(t, jobs[i])
			switch {
			case info.State == StateDone:
				// Won the race outright; fine.
			case info.State == StateFailed && info.Error == errShutdown.Error():
				// Lost the race; failed with the clean shutdown cause.
			default:
				t.Fatalf("round %d: job racing Close ended %s (%q), want done or the shutdown error",
					round, info.State, info.Error)
			}
		}
	}
}
