package service

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"

	"nmo/internal/trace"
	"nmo/internal/zerocopy"
)

// zcServer is a real-TCP server wired exactly like cmd/nmod: wrapped
// listener + ConnContext, so accepted conns carry the zero-copy state
// and /trace serves take the sendfile/span-plan tiers. httptest can't
// stand in here — its conns are never wrapped, so it only ever
// exercises the fallback copy.
type zcServer struct {
	h       *Server
	client  *Client
	accepts *int64
}

// countingListener counts Accept calls so the keep-alive test can
// prove conn reuse across sendfile serves.
type countingListener struct {
	net.Listener
	n *int64
}

func (cl countingListener) Accept() (net.Conn, error) {
	c, err := cl.Listener.Accept()
	if err == nil {
		atomic.AddInt64(cl.n, 1)
	}
	return c, err
}

// runJob submits spec straight to the scheduler and returns its first
// trace blob once the job is terminal.
func runJob(t *testing.T, sched *Scheduler, spec JobSpec) *TraceBlob {
	t.Helper()
	j, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	return j.Artifacts().Traces[0]
}

func newZCServer(t *testing.T, sched *Scheduler) *zcServer {
	t.Helper()
	h := NewServer(sched)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepts := new(int64)
	srv := &http.Server{Handler: h, ConnContext: zerocopy.ConnContext}
	go srv.Serve(zerocopy.WrapListener(countingListener{ln, accepts}, h.ZeroCopy()))
	t.Cleanup(func() { srv.Close() })
	return &zcServer{
		h:       h,
		client:  NewClient("http://" + ln.Addr().String()),
		accepts: accepts,
	}
}

// TestTraceServeMatrix crosses every serve tier the zero-copy rework
// introduced: storage tier (memory vs spill file) × format (v2 vs
// v2.1) × filter (none → sendfile, time-range → span plan, core →
// chunked restream) × data plane (wrapped real-TCP conn vs unwrapped
// httptest conn, the forced-fallback path). Every cell must produce
// byte-identical bodies and identical X-Nmo-Trace-Md5 headers across
// the two data planes — kernel offload may never change the wire.
func TestTraceServeMatrix(t *testing.T) {
	ctx := context.Background()
	for _, tier := range []string{"memory", "file"} {
		for _, compress := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/compress=%t", tier, compress), func(t *testing.T) {
				var cache *Cache
				if tier == "file" {
					// A one-byte memory budget demotes the blob to its
					// spill file the moment it is filled.
					var err error
					cache, err = NewCache(CacheConfig{Dir: t.TempDir(), MemBudget: 1})
					if err != nil {
						t.Fatal(err)
					}
				}
				sched := NewScheduler(SchedConfig{Workers: 1}, cache)
				t.Cleanup(sched.Close)

				spec := quickJob(91)
				spec.Scenarios[0].Compress = compress
				blob := runJob(t, sched, spec)
				if (tier == "file") != blob.FileBacked() {
					t.Fatalf("blob file-backed = %v in %s tier", blob.FileBacked(), tier)
				}

				// Both servers front the same scheduler, so both serve
				// the exact same stored blob.
				zc := newZCServer(t, sched)
				fb := httptest.NewServer(NewServer(sched))
				t.Cleanup(fb.Close)
				fbClient := NewClient(fb.URL)

				// Resubmit via HTTP to learn the job ID each client sees
				// (same content address → cache hit, no second run).
				info, err := zc.client.Submit(ctx, spec)
				if err != nil {
					t.Fatal(err)
				}
				id := info.ID

				rd, err := trace.OpenV2(bytes.NewReader(blobBytes(t, blob)))
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := rd.Block(0).TimeMin, rd.Block(rd.NumBlocks()-1).TimeMax
				// A middle window exercises the plan's literal
				// (straddler) segments; the full span makes every block
				// provably whole, so its extents must sendfile.
				ranged := NewTraceOptions()
				ranged.FromNs, ranged.ToNs = lo+(hi-lo)/4, lo+3*(hi-lo)/4
				fullspan := NewTraceOptions()
				fullspan.FromNs, fullspan.ToNs = lo, hi+1
				byCore := NewTraceOptions()
				byCore.Core = 1

				for _, fc := range []struct {
					name string
					opt  TraceOptions
				}{
					{"unfiltered", NewTraceOptions()},
					{"timerange", ranged},
					{"fullspan", fullspan},
					{"core", byCore},
				} {
					sfBefore := zc.h.ZeroCopy().SendfileBytes()
					var zcBuf, fbBuf bytes.Buffer
					_, zcMD5, err := zc.client.DownloadTrace(ctx, id, fc.opt, &zcBuf)
					if err != nil {
						t.Fatalf("%s via zerocopy: %v", fc.name, err)
					}
					_, fbMD5, err := fbClient.DownloadTrace(ctx, id, fc.opt, &fbBuf)
					if err != nil {
						t.Fatalf("%s via fallback: %v", fc.name, err)
					}
					if !bytes.Equal(zcBuf.Bytes(), fbBuf.Bytes()) {
						t.Errorf("%s: zerocopy and fallback bodies differ (%d vs %d bytes)",
							fc.name, zcBuf.Len(), fbBuf.Len())
					}
					if zcMD5 != fbMD5 {
						t.Errorf("%s: X-Nmo-Trace-Md5 differs: zerocopy %q, fallback %q",
							fc.name, zcMD5, fbMD5)
					}
					if _, err := trace.OpenV2(bytes.NewReader(zcBuf.Bytes())); err != nil {
						t.Errorf("%s: served stream is not a valid v2 file: %v", fc.name, err)
					}

					// The kernel-offload tiers must actually engage on
					// Linux: unfiltered file serves sendfile the whole
					// blob, and full-span file serves sendfile their
					// span-plan extents — every block is provably whole
					// there. (The middle window may hold only straddler
					// blocks in a small fixture, and core filters alias
					// through CoreMask, so neither promises extents.)
					if runtime.GOOS == "linux" && tier == "file" &&
						(fc.name == "unfiltered" || fc.name == "fullspan") {
						if got := zc.h.ZeroCopy().SendfileBytes(); got <= sfBefore {
							t.Errorf("%s: sendfile bytes did not grow (%d → %d)",
								fc.name, sfBefore, got)
						}
					}
					// The span plan makes filtered file-tier responses
					// sized and checksummed; the other filtered cells
					// stay chunked and headerless.
					wantMD5 := fc.name == "unfiltered" ||
						(tier == "file" && (fc.name == "timerange" || fc.name == "fullspan"))
					if (zcMD5 != "") != wantMD5 {
						t.Errorf("%s/%s: md5 header presence = %t, want %t",
							tier, fc.name, zcMD5 != "", wantMD5)
					}
				}
			})
		}
	}
}

// TestTraceServeKeepAlive proves the sendfile path preserves HTTP/1.1
// framing: ten sequential downloads (unfiltered + filtered, so both
// the offload and chunked paths run) over one client must reuse one
// TCP conn — if sendfile bytes escaped net/http's response accounting,
// the Content-Length bookkeeping would break and the conn would die
// after the first response.
func TestTraceServeKeepAlive(t *testing.T) {
	cache, err := NewCache(CacheConfig{Dir: t.TempDir(), MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedConfig{Workers: 1}, cache)
	t.Cleanup(sched.Close)
	blob := runJob(t, sched, quickJob(92))
	if !blob.FileBacked() {
		t.Fatal("fixture blob is not file-backed")
	}
	want := blobBytes(t, blob)

	zc := newZCServer(t, sched)
	ctx := context.Background()
	info, err := zc.client.Submit(ctx, quickJob(92))
	if err != nil {
		t.Fatal(err)
	}

	rd, err := trace.OpenV2(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	ranged := NewTraceOptions()
	ranged.FromNs = rd.Block(0).TimeMin + 1

	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		opt := NewTraceOptions()
		if i%2 == 1 {
			opt = ranged
		}
		buf.Reset()
		if _, _, err := zc.client.DownloadTrace(ctx, info.ID, opt, &buf); err != nil {
			t.Fatalf("download %d: %v", i, err)
		}
		if opt.FromNs == 0 && !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("download %d: bytes differ from stored blob", i)
		}
	}
	if n := atomic.LoadInt64(zc.accepts); n != 1 {
		t.Errorf("10 keep-alive downloads used %d conns, want 1", n)
	}
	if runtime.GOOS == "linux" {
		if zc.h.ZeroCopy().SendfileBytes() == 0 {
			t.Error("no sendfile bytes counted across keep-alive downloads")
		}
	}
}
