package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is the thin Go client of the nmod job API — what the remote
// CLI modes (nmoprof/nmostat -remote) are built on. The zero HTTP
// client is http.DefaultClient; Base is "host:port" or a full URL.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient builds a client for a daemon address ("localhost:8077" or
// "http://host:8077").
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out,
// converting non-2xx responses (their apiError body) into errors.
func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeErr turns a non-2xx response into an error carrying the
// server's apiError message when one is present.
func decodeErr(resp *http.Response) error {
	var ae apiError
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		return fmt.Errorf("nmod: %s (HTTP %d)", ae.Error, resp.StatusCode)
	}
	return fmt.Errorf("nmod: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// Submit posts a job spec and returns its admission status (terminal
// already for cache hits).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &info)
	return info, err
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Cancel requests cancellation.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil)
}

// Wait polls until the job reaches a terminal state. Failed and
// canceled jobs return their server-side error; poll <= 0 defaults to
// 100 ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State.Terminal() {
			if info.State != StateDone {
				return info, fmt.Errorf("nmod: job %s %s: %s", id, info.State, info.Error)
			}
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Result fetches a finished job's result document.
func (c *Client) Result(ctx context.Context, id string) (*ResultDoc, error) {
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Stats fetches the daemon's scheduler/cache counters.
func (c *Client) Stats(ctx context.Context) (SchedStats, error) {
	var st SchedStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// TraceOptions select and filter a job's trace stream.
type TraceOptions struct {
	// Scenario selects the blob by name or index ("" = scenario 0).
	Scenario string
	// FromNs / ToNs bound sample timestamps ([from, to), 0 =
	// unbounded); Core keeps one core (< 0 = all — note the zero
	// value selects core 0; build via NewTraceOptions). Any filter
	// makes the server restream (block-skip push-down on its stored
	// blob); no filters stream the stored bytes verbatim.
	FromNs uint64
	ToNs   uint64
	Core   int
}

// NewTraceOptions returns options that stream scenario 0 unfiltered.
func NewTraceOptions() TraceOptions { return TraceOptions{Core: -1} }

// Trace opens a job's v2 trace stream. The returned reader is the raw
// chunked body (a valid v2 file); md5hex carries the X-Nmo-Trace-Md5
// header on unfiltered streams ("" when filtered — a restreamed trace
// carries its checksum in its own tail). The caller closes the reader.
func (c *Client) Trace(ctx context.Context, id string, opt TraceOptions) (body io.ReadCloser, md5hex string, err error) {
	q := url.Values{}
	if opt.Scenario != "" {
		q.Set("scenario", opt.Scenario)
	}
	if opt.FromNs != 0 {
		q.Set("from", strconv.FormatUint(opt.FromNs, 10))
	}
	if opt.ToNs != 0 {
		q.Set("to", strconv.FormatUint(opt.ToNs, 10))
	}
	if opt.Core >= 0 {
		q.Set("core", strconv.Itoa(opt.Core))
	}
	u := c.Base + "/v1/jobs/" + url.PathEscape(id) + "/trace"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, "", decodeErr(resp)
	}
	return resp.Body, resp.Header.Get("X-Nmo-Trace-Md5"), nil
}

// DownloadTrace streams a job's trace to w and returns the bytes
// written plus the advertised MD5 (unfiltered streams only).
func (c *Client) DownloadTrace(ctx context.Context, id string, opt TraceOptions, w io.Writer) (int64, string, error) {
	body, md5hex, err := c.Trace(ctx, id, opt)
	if err != nil {
		return 0, "", err
	}
	defer body.Close()
	n, err := io.Copy(w, body)
	return n, md5hex, err
}
