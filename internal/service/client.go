package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"nmo/internal/obs"
)

// Client is the thin Go client of the nmod job API — what the remote
// CLI modes (nmoprof/nmostat -remote) are built on. The zero HTTP
// client is http.DefaultClient; Base is "host:port" or a full URL.
type Client struct {
	Base string
	HTTP *http.Client
	// Token is the bearer credential sent on every request when
	// non-empty (the CLIs fill it from -token / $NMO_TOKEN). Daemons
	// in -auth-mode none ignore it.
	Token string
}

// NewClient builds a client for a daemon address ("localhost:8077" or
// "http://host:8077").
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out,
// converting non-2xx responses (their error envelope) into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// authorize stamps the bearer credential when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// decodeErr turns a non-2xx response into a typed *APIError: the
// envelope decoded when the body carries one, a synthesized upstream
// error otherwise (non-nmo intermediaries, truncated bodies). Either
// way the HTTP status and request ID ride along, so CLIs print the
// stable code plus the ID to grep the fleet's audit logs with, and
// callers branch with errors.Is(err, &service.APIError{Code: ...}).
func decodeErr(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env struct {
		Error *APIError `json:"error"`
	}
	if json.Unmarshal(data, &env) == nil && env.Error != nil &&
		(env.Error.Code != "" || env.Error.Message != "") {
		ae := env.Error
		ae.Status = resp.StatusCode
		if ae.RequestID == "" {
			ae.RequestID = resp.Header.Get(obs.RequestIDHeader)
		}
		return ae
	}
	return &APIError{
		Code:      obs.CodeUpstream,
		Message:   strings.TrimSpace(string(data)),
		Status:    resp.StatusCode,
		RequestID: resp.Header.Get(obs.RequestIDHeader),
	}
}

// Submit posts a job spec and returns its admission status (terminal
// already for cache hits).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &info)
	return info, err
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Cancel requests cancellation.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil)
}

// Wait polls until the job reaches a terminal state. Failed and
// canceled jobs return their server-side error; poll <= 0 defaults to
// 100 ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State.Terminal() {
			if info.State != StateDone {
				return info, fmt.Errorf("nmod: job %s %s: %s", id, info.State, info.Error)
			}
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Result fetches a finished job's result document.
func (c *Client) Result(ctx context.Context, id string) (*ResultDoc, error) {
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Stats fetches the daemon's scheduler/cache counters.
func (c *Client) Stats(ctx context.Context) (SchedStats, error) {
	var st SchedStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Healthz probes the daemon's liveness route — the cheap check the
// gateway's health prober rides (no stats snapshot, no auth).
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// TraceOptions select and filter a job's trace stream.
type TraceOptions struct {
	// Scenario selects the blob by name or index ("" = scenario 0).
	Scenario string
	// FromNs / ToNs bound sample timestamps ([from, to), 0 =
	// unbounded); Core keeps one core (< 0 = all — note the zero
	// value selects core 0; build via NewTraceOptions). Any filter
	// makes the server restream (block-skip push-down on its stored
	// blob); no filters stream the stored bytes verbatim.
	FromNs uint64
	ToNs   uint64
	Core   int
}

// NewTraceOptions returns options that stream scenario 0 unfiltered.
func NewTraceOptions() TraceOptions { return TraceOptions{Core: -1} }

// Trace opens a job's v2 trace stream. The returned reader is the raw
// chunked body (a valid v2 file); md5hex carries the X-Nmo-Trace-Md5
// header on unfiltered streams ("" when filtered — a restreamed trace
// carries its checksum in its own tail). The caller closes the reader.
func (c *Client) Trace(ctx context.Context, id string, opt TraceOptions) (body io.ReadCloser, md5hex string, err error) {
	q := url.Values{}
	if opt.Scenario != "" {
		q.Set("scenario", opt.Scenario)
	}
	if opt.FromNs != 0 {
		q.Set("from", strconv.FormatUint(opt.FromNs, 10))
	}
	if opt.ToNs != 0 {
		q.Set("to", strconv.FormatUint(opt.ToNs, 10))
	}
	if opt.Core >= 0 {
		q.Set("core", strconv.Itoa(opt.Core))
	}
	u := c.Base + "/v1/jobs/" + url.PathEscape(id) + "/trace"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, "", err
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, "", decodeErr(resp)
	}
	return resp.Body, resp.Header.Get("X-Nmo-Trace-Md5"), nil
}

// DownloadTrace streams a job's trace to w and returns the bytes
// written plus the advertised MD5 (unfiltered streams only).
func (c *Client) DownloadTrace(ctx context.Context, id string, opt TraceOptions, w io.Writer) (int64, string, error) {
	body, md5hex, err := c.Trace(ctx, id, opt)
	if err != nil {
		return 0, "", err
	}
	defer body.Close()
	n, err := io.Copy(w, body)
	return n, md5hex, err
}
