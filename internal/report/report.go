// Package report renders experiment results as aligned ASCII tables,
// CSV series, and terminal heatmaps — the textual equivalents of the
// paper's figures, emitted by cmd/nmorepro and recorded in
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"

	"nmo/internal/analysis"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row. Floating-point cells — float64, float32, and
// any named type with a float kind — render as %.3f so numeric columns
// stay aligned and comparable; everything else formats with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case nil:
		return fmt.Sprintf("%v", c)
	case float64:
		return fmt.Sprintf("%.3f", v)
	case float32:
		return fmt.Sprintf("%.3f", v)
	case string:
		return v
	}
	// Typed numeric aliases (e.g. "type GiBps float64") reach here;
	// they must not fall through to %v's full-precision form.
	if rv := reflect.ValueOf(c); rv.Kind() == reflect.Float32 || rv.Kind() == reflect.Float64 {
		return fmt.Sprintf("%.3f", rv.Float())
	}
	return fmt.Sprintf("%v", c)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderAll renders several tables in order. Table values round-trip
// through encoding/json unchanged (all fields are exported strings),
// which is how the service layer ships result tables over the wire and
// the remote CLIs re-render them with the exact local formatting.
func RenderAll(w io.Writer, tables ...*Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// SortedKeys returns a count-map's keys in sorted order, for
// deterministic table rendering (Go map iteration order is random).
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NewLevelTable builds the per-memory-level sample-count table with
// the one canonical title and row set — every producer (CLIs, the
// nmod result digest) builds through here, so local and daemon-served
// tables cannot diverge.
func NewLevelTable(by [4]uint64) *Table {
	t := &Table{Title: "Samples by memory level (data source)",
		Headers: []string{"level", "count"}}
	for i, name := range []string{"L1", "L2", "SLC", "DRAM"} {
		t.AddRow(name, by[i])
	}
	return t
}

// LevelTable renders the canonical per-memory-level table.
func LevelTable(w io.Writer, by [4]uint64) error {
	return NewLevelTable(by).Render(w)
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// MeanStd formats an analysis.Stats as "mean ± std".
func MeanStd(st analysis.Stats) string {
	return fmt.Sprintf("%.3f ± %.3f", st.Mean, st.StdDev)
}

// GiB formats bytes as GiB.
func GiB(bytes uint64) string {
	return fmt.Sprintf("%.1f GiB", float64(bytes)/float64(1<<30))
}

// heatRamp maps intensity to characters (low to high).
const heatRamp = " .:-=+*#%@"

// RenderHeatmap draws the heatmap as ASCII art, time on the x axis and
// address on the y axis (low addresses at the bottom, like the
// paper's scatter plots).
func RenderHeatmap(w io.Writer, h *analysis.Heatmap, title string) error {
	max := h.MaxCount()
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "## %s\n", title)
	}
	fmt.Fprintf(&b, "addr %#x .. %#x | time %.3fms .. %.3fms | %d samples\n",
		h.AddrMin, h.AddrMax,
		float64(h.TimeMin)/1e6, float64(h.TimeMax)/1e6, h.Total())
	for ab := h.AddrBins - 1; ab >= 0; ab-- {
		b.WriteByte('|')
		for tb := 0; tb < h.TimeBins; tb++ {
			c := h.At(tb, ab)
			if max == 0 || c == 0 {
				b.WriteByte(' ')
				continue
			}
			idx := int(uint64(c) * uint64(len(heatRamp)-1) / uint64(max))
			if idx == 0 {
				idx = 1 // nonzero cells always visible
			}
			b.WriteByte(heatRamp[idx])
		}
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", h.TimeBins))
	b.WriteString("+\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderSeries draws a (time, value) series as a compact ASCII plot
// with `width` columns and `height` rows, used for the Fig. 2/3
// temporal views.
func RenderSeries(w io.Writer, title, unit string, times, values []float64, width, height int) error {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 12
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "## %s\n", title)
	}
	if len(values) == 0 {
		b.WriteString("(no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	var vmax float64
	for _, v := range values {
		if v > vmax {
			vmax = v
		}
	}
	if vmax == 0 {
		vmax = 1
	}
	// Downsample into width columns by max.
	cols := make([]float64, width)
	for i, v := range values {
		c := i * width / len(values)
		if v > cols[c] {
			cols[c] = v
		}
	}
	for row := height - 1; row >= 0; row-- {
		thresh := vmax * float64(row) / float64(height)
		if row == height-1 {
			fmt.Fprintf(&b, "%8.1f |", vmax)
		} else if row == 0 {
			fmt.Fprintf(&b, "%8.1f |", 0.0)
		} else {
			b.WriteString("         |")
		}
		for _, cv := range cols {
			if cv > thresh {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "         +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "          t=%.1fs .. %.1fs (%s)\n",
		times[0], times[len(times)-1], unit)
	_, err := io.WriteString(w, b.String())
	return err
}
