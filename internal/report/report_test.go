package report

import (
	"bytes"
	"strings"
	"testing"

	"nmo/internal/analysis"
	"nmo/internal/trace"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Example",
		Headers: []string{"name", "value", "pct"},
	}
	tb.AddRow("stream", 42, 0.5)
	tb.AddRow("a-much-longer-name", 7, 0.25)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "## Example") {
		t.Errorf("title line = %q", lines[0])
	}
	// Columns aligned: "value" column starts at the same offset.
	h := strings.Index(lines[1], "value")
	r := strings.Index(lines[3], "42")
	if h != r {
		t.Errorf("misaligned columns: header@%d row@%d\n%s", h, r, out)
	}
	if !strings.Contains(out, "0.500") {
		t.Error("float not formatted with 3 decimals")
	}
}

// gibps is a typed float alias like the ones experiment results carry.
type gibps float64

func TestAddRowNormalizesFloats(t *testing.T) {
	tb := &Table{Headers: []string{"kind", "value"}}
	tb.AddRow("float64", 1.0/3.0)
	tb.AddRow("float32", float32(0.25))
	tb.AddRow("alias", gibps(123.456789))
	tb.AddRow("int", 7)
	tb.AddRow("string", "raw")
	tb.AddRow("nil", nil)
	want := [][2]string{
		{"float64", "0.333"},
		{"float32", "0.250"},
		{"alias", "123.457"},
		{"int", "7"},
		{"string", "raw"},
		{"nil", "<nil>"},
	}
	for i, w := range want {
		if tb.Rows[i][0] != w[0] || tb.Rows[i][1] != w[1] {
			t.Errorf("row %d = %v, want %v", i, tb.Rows[i], w)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.1234); got != "12.34%" {
		t.Errorf("Pct = %q", got)
	}
	if got := GiB(52 << 30); got != "52.0 GiB" {
		t.Errorf("GiB = %q", got)
	}
	st := analysis.Aggregate([]float64{1, 2, 3})
	if got := MeanStd(st); !strings.Contains(got, "2.000 ±") {
		t.Errorf("MeanStd = %q", got)
	}
}

func TestRenderHeatmap(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 500; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{
			TimeNs: uint64(i * 1000), VA: 0x1000 + uint64(i)*64,
		})
	}
	h := analysis.BuildHeatmap(tr, 20, 8)
	var buf bytes.Buffer
	if err := RenderHeatmap(&buf, h, "scatter"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "500 samples") {
		t.Errorf("missing sample count:\n%s", out)
	}
	// Diagonal pattern: the plot must contain visible cells.
	marks := 0
	for _, c := range out {
		if strings.ContainsRune(".:-=+*#%@", c) {
			marks++
		}
	}
	if marks < 10 {
		t.Errorf("only %d marks in heatmap:\n%s", marks, out)
	}
}

func TestRenderHeatmapEmpty(t *testing.T) {
	h := analysis.BuildHeatmap(&trace.Trace{}, 4, 4)
	var buf bytes.Buffer
	if err := RenderHeatmap(&buf, h, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 samples") {
		t.Error("empty heatmap should report 0 samples")
	}
}

func TestRenderSeries(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4}
	values := []float64{10, 50, 100, 30, 5}
	var buf bytes.Buffer
	if err := RenderSeries(&buf, "bandwidth", "GiB/s", times, values, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "100.0") {
		t.Errorf("missing max label:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no plot marks")
	}
	if !strings.Contains(out, "t=0.0s .. 4.0s") {
		t.Errorf("missing time range:\n%s", out)
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSeries(&buf, "x", "u", nil, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty series should say so")
	}
}
