// Package engine executes batches of profiling scenarios across a
// bounded worker pool.
//
// A Scenario is one (machine spec × profiler config × workload) point
// of an experiment grid. The Runner shards a batch of scenarios across
// workers: every execution builds its own machine.Machine from the
// scenario's spec, so no simulation state is shared between workers
// and results are bit-identical regardless of the worker count (the
// simulator itself is deterministic — see DESIGN.md §7). Results come
// back in submission order with per-scenario errors; nothing fails
// fast unless asked.
//
// The sweep drivers in internal/experiments and the repro CLIs build
// their grids as scenario batches and hand them here; the sweep shape
// (Figs. 7–11 of the paper) is embarrassingly parallel, and the
// engine is what lets the evaluation scale with the host's cores.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nmo/internal/core"
	"nmo/internal/machine"
	"nmo/internal/workloads"
)

// WorkloadFactory builds the workload a scenario runs. Factories are
// invoked on the executing worker, so construction cost (e.g. BFS
// graph generation) parallelizes along with the run; they must be
// safe to call concurrently with other factories (pure functions of
// their configuration, as all workload generators are).
type WorkloadFactory func() (workloads.Workload, error)

// Scenario is one executable point of an experiment grid.
type Scenario struct {
	// Name identifies the scenario in results and error messages.
	Name string
	// Spec describes the machine the scenario runs on; every
	// execution builds a fresh machine from it.
	Spec machine.Spec
	// Config is the profiler configuration for the run.
	Config core.Config
	// Workload builds the workload to profile.
	Workload WorkloadFactory
	// Seed, when nonzero, overrides Config.Seed. Grids derive it per
	// point with DeriveSeed so trial seeds decorrelate deterministically.
	Seed uint64
	// SinkFactory, when non-nil, overrides Config.SinkFactory for this
	// scenario: the factory runs on the executing worker, once per
	// run, so every scenario gets a private sink chain (aggregate-only
	// sweeps stream entire grids without materializing a sample).
	SinkFactory core.SinkFactory
}

// Result pairs a scenario with its outcome. Exactly one of Profile
// and Err is set.
type Result struct {
	// Name echoes the scenario name.
	Name string
	// Profile is the run's profile on success.
	Profile *core.Profile
	// Err is the per-scenario failure, ErrSkipped if a fail-fast
	// batch aborted before this scenario started.
	Err error
}

// ErrSkipped marks scenarios a fail-fast batch never started.
var ErrSkipped = errors.New("engine: scenario skipped after earlier failure")

// Runner executes scenario batches. The zero value runs with one
// worker per available CPU and no fail-fast.
type Runner struct {
	// Jobs bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// FailFast stops handing out new scenarios after the first error;
	// in-flight scenarios finish, unstarted ones report ErrSkipped.
	FailFast bool
}

// jobs resolves the effective worker count for n scenarios.
func (r Runner) jobs(n int) int {
	j := r.Jobs
	if j <= 0 {
		j = runtime.GOMAXPROCS(0)
	}
	if j > n {
		j = n
	}
	if j < 1 {
		j = 1
	}
	return j
}

// RunAll executes the batch and returns one result per scenario, in
// submission order. Errors (including panics inside a scenario, which
// are recovered per worker) land in the corresponding Result; the
// batch itself always completes unless FailFast is set.
func (r Runner) RunAll(scenarios []Scenario) []Result {
	return r.RunAllContext(context.Background(), scenarios)
}

// RunAllContext is RunAll with cooperative cancellation: scenarios
// not yet started when ctx is canceled report ctx's error in their
// Result instead of running. In-flight scenarios finish — the
// simulator has no preemption points, so cancellation granularity is
// one scenario. The long-running service layer uses this to abort
// queued work on DELETE without tearing down the worker pool.
func (r Runner) RunAllContext(ctx context.Context, scenarios []Scenario) []Result {
	results := make([]Result, len(scenarios))
	if len(scenarios) == 0 {
		return results
	}

	var failed atomic.Bool
	exec := func(i int) {
		sc := &scenarios[i]
		results[i].Name = sc.Name
		if err := ctx.Err(); err != nil {
			results[i].Err = err
			return
		}
		if r.FailFast && failed.Load() {
			results[i].Err = ErrSkipped
			return
		}
		prof, err := runScenario(sc)
		results[i].Profile, results[i].Err = prof, err
		if err != nil {
			failed.Store(true)
		}
	}

	jobs := r.jobs(len(scenarios))
	if jobs == 1 {
		// Serial fast path: no goroutines, same code path otherwise.
		for i := range scenarios {
			exec(i)
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				exec(i)
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Run executes a single scenario inline (no pool).
func Run(sc Scenario) (*core.Profile, error) {
	return runScenario(&sc)
}

// runScenario builds the scenario's private machine and session and
// runs the pipeline, converting panics (workload constructors panic on
// nonsensical static configuration) into per-scenario errors.
func runScenario(sc *Scenario) (prof *core.Profile, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: scenario %q panicked: %v", sc.Name, p)
		}
	}()
	if sc.Workload == nil {
		return nil, fmt.Errorf("engine: scenario %q has no workload factory", sc.Name)
	}
	w, err := sc.Workload()
	if err != nil {
		return nil, fmt.Errorf("engine: scenario %q workload: %w", sc.Name, err)
	}
	cfg := sc.Config
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.SinkFactory != nil {
		cfg.SinkFactory = sc.SinkFactory
	}
	m := machine.New(sc.Spec)
	s, err := core.NewSession(cfg, m)
	if err != nil {
		return nil, fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
	}
	prof, err = s.Run(w)
	if err != nil {
		return nil, fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
	}
	return prof, nil
}

// FirstError returns the first non-skip error in the batch (submission
// order), or the first ErrSkipped if nothing else failed, or nil.
func FirstError(results []Result) error {
	var skipped error
	for i := range results {
		switch {
		case results[i].Err == nil:
		case errors.Is(results[i].Err, ErrSkipped):
			if skipped == nil {
				skipped = results[i].Err
			}
		default:
			return results[i].Err
		}
	}
	return skipped
}

// Profiles unwraps a fully successful batch into its profiles, or
// returns the batch's first error.
func Profiles(results []Result) ([]*core.Profile, error) {
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]*core.Profile, len(results))
	for i := range results {
		out[i] = results[i].Profile
	}
	return out, nil
}

// DeriveSeed deterministically mixes a base seed with a scenario index
// (splitmix64 finalizer), decorrelating per-trial RNG streams while
// keeping grids reproducible from one base seed.
func DeriveSeed(base uint64, idx int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return z
}
