package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"nmo/internal/core"
	"nmo/internal/machine"
	"nmo/internal/workloads"
)

// testScenario builds a small sampling scenario; idx varies the seed.
func testScenario(idx int) Scenario {
	cfg := core.DefaultConfig()
	cfg.Enable = true
	cfg.Mode = core.ModeSample
	cfg.Period = 700
	cfg.RingPages = 8
	cfg.AuxPages = 64
	cfg.PageBytes = 1024
	return Scenario{
		Name:   fmt.Sprintf("stream/%d", idx),
		Spec:   machine.AmpereAltraMax().WithCores(4),
		Config: cfg,
		Seed:   DeriveSeed(42, idx),
		Workload: func() (workloads.Workload, error) {
			return workloads.NewStream(workloads.StreamConfig{
				Elems: 30_000, Threads: 4, Iters: 2,
			}), nil
		},
	}
}

func testBatch(n int) []Scenario {
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = testScenario(i)
	}
	return scs
}

func TestRunAllSubmissionOrderAndNames(t *testing.T) {
	scs := testBatch(6)
	rs := Runner{Jobs: 3}.RunAll(scs)
	if len(rs) != len(scs) {
		t.Fatalf("results = %d, want %d", len(rs), len(scs))
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("scenario %d: %v", i, r.Err)
		}
		if r.Name != scs[i].Name {
			t.Errorf("result %d name = %q, want %q", i, r.Name, scs[i].Name)
		}
		if r.Profile == nil || r.Profile.Sampler.Processed == 0 {
			t.Errorf("scenario %d produced no samples", i)
		}
	}
}

func TestRunAllDeterministicAcrossJobs(t *testing.T) {
	// The determinism contract of the whole engine: the same batch at
	// jobs=1 and jobs=8 yields bit-identical trace checksums and
	// identical aggregate statistics.
	serial := Runner{Jobs: 1}.RunAll(testBatch(8))
	parallel := Runner{Jobs: 8}.RunAll(testBatch(8))
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("scenario %d errored: %v / %v", i, s.Err, p.Err)
		}
		if s.Profile.MD5 != p.Profile.MD5 {
			t.Errorf("scenario %d: MD5 differs between jobs=1 and jobs=8", i)
		}
		if s.Profile.Wall != p.Profile.Wall ||
			s.Profile.Sampler != p.Profile.Sampler ||
			s.Profile.Kernel != p.Profile.Kernel {
			t.Errorf("scenario %d: stats differ between jobs=1 and jobs=8", i)
		}
	}
}

// pebsScenario is testScenario pinned to the x86 platform and PEBS
// backend.
func pebsScenario(idx int) Scenario {
	sc := testScenario(idx)
	sc.Name = fmt.Sprintf("stream/pebs/%d", idx)
	sc.Spec = machine.IntelIceLakeSP().WithCores(4)
	sc.Config.Backend = "pebs"
	return sc
}

// TestRunAllDeterministicAcrossJobsPEBS mirrors the SPE determinism
// contract on the PEBS backend: identical checksums and aggregates at
// jobs=1 and jobs=8, and the backend's structural invariants (no SPE
// collisions; samples present) hold on every shard.
func TestRunAllDeterministicAcrossJobsPEBS(t *testing.T) {
	batch := func() []Scenario {
		scs := make([]Scenario, 8)
		for i := range scs {
			scs[i] = pebsScenario(i)
		}
		return scs
	}
	serial := Runner{Jobs: 1}.RunAll(batch())
	parallel := Runner{Jobs: 8}.RunAll(batch())
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("scenario %d errored: %v / %v", i, s.Err, p.Err)
		}
		if s.Profile.MD5 != p.Profile.MD5 {
			t.Errorf("scenario %d: MD5 differs between jobs=1 and jobs=8", i)
		}
		if s.Profile.Wall != p.Profile.Wall ||
			s.Profile.Sampler != p.Profile.Sampler ||
			s.Profile.Kernel != p.Profile.Kernel {
			t.Errorf("scenario %d: stats differ between jobs=1 and jobs=8", i)
		}
		if s.Profile.Sampler.Processed == 0 {
			t.Errorf("scenario %d: no PEBS samples", i)
		}
		if s.Profile.Sampler.Collisions != 0 {
			t.Errorf("scenario %d: PEBS reported %d SPE collisions",
				i, s.Profile.Sampler.Collisions)
		}
	}
}

func TestRunAllDistinctSeedsDecorrelate(t *testing.T) {
	rs := Runner{}.RunAll(testBatch(3))
	if err := FirstError(rs); err != nil {
		t.Fatal(err)
	}
	if rs[0].Profile.MD5 == rs[1].Profile.MD5 {
		t.Error("different derived seeds produced identical traces")
	}
}

func TestRunAllErrorIsolation(t *testing.T) {
	scs := testBatch(4)
	scs[1].Workload = func() (workloads.Workload, error) {
		return nil, errors.New("boom")
	}
	// Threads beyond the machine's cores: Session.Run rejects it.
	scs[2].Workload = func() (workloads.Workload, error) {
		return workloads.NewStream(workloads.StreamConfig{
			Elems: 1000, Threads: 64, Iters: 1,
		}), nil
	}
	rs := Runner{Jobs: 2}.RunAll(scs)
	if rs[0].Err != nil || rs[3].Err != nil {
		t.Errorf("healthy scenarios failed: %v / %v", rs[0].Err, rs[3].Err)
	}
	if rs[1].Err == nil || !strings.Contains(rs[1].Err.Error(), "boom") {
		t.Errorf("factory error lost: %v", rs[1].Err)
	}
	if rs[2].Err == nil {
		t.Error("oversubscribed scenario did not error")
	}
	if err := FirstError(rs); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("FirstError = %v, want the first failure", err)
	}
}

func TestRunAllPanicRecovered(t *testing.T) {
	scs := testBatch(2)
	scs[0].Workload = func() (workloads.Workload, error) {
		// NewStream panics on nonsensical static configuration.
		return workloads.NewStream(workloads.StreamConfig{}), nil
	}
	rs := Runner{Jobs: 2}.RunAll(scs)
	if rs[0].Err == nil || !strings.Contains(rs[0].Err.Error(), "panicked") {
		t.Errorf("panic not converted to error: %v", rs[0].Err)
	}
	if rs[1].Err != nil {
		t.Errorf("panic leaked into sibling scenario: %v", rs[1].Err)
	}
}

func TestRunAllFailFast(t *testing.T) {
	scs := testBatch(8)
	scs[0].Workload = func() (workloads.Workload, error) {
		return nil, errors.New("first failure")
	}
	rs := Runner{Jobs: 1, FailFast: true}.RunAll(scs)
	if rs[0].Err == nil {
		t.Fatal("failure lost")
	}
	skipped := 0
	for _, r := range rs[1:] {
		if errors.Is(r.Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped != len(scs)-1 {
		t.Errorf("fail-fast skipped %d of %d", skipped, len(scs)-1)
	}
}

func TestRunAllNoFailFastByDefault(t *testing.T) {
	scs := testBatch(3)
	scs[0].Workload = func() (workloads.Workload, error) {
		return nil, errors.New("first failure")
	}
	rs := Runner{Jobs: 1}.RunAll(scs)
	for i, r := range rs[1:] {
		if r.Err != nil {
			t.Errorf("scenario %d did not run: %v", i+1, r.Err)
		}
	}
}

func TestRunSingle(t *testing.T) {
	prof, err := Run(testScenario(0))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Sampler.Processed == 0 {
		t.Error("no samples")
	}
	// Run must agree with the same scenario through RunAll.
	rs := Runner{Jobs: 2}.RunAll(testBatch(1))
	if err := FirstError(rs); err != nil {
		t.Fatal(err)
	}
	if rs[0].Profile.MD5 != prof.MD5 {
		t.Error("Run and RunAll disagree on the same scenario")
	}
}

func TestRunMissingFactory(t *testing.T) {
	sc := testScenario(0)
	sc.Workload = nil
	if _, err := Run(sc); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestProfiles(t *testing.T) {
	rs := Runner{}.RunAll(testBatch(2))
	ps, err := Profiles(rs)
	if err != nil || len(ps) != 2 || ps[0] == nil {
		t.Fatalf("Profiles = %v, %v", ps, err)
	}
	rs[1].Err = errors.New("late failure")
	if _, err := Profiles(rs); err == nil {
		t.Error("Profiles ignored an error")
	}
}

func TestRunAllEmptyBatch(t *testing.T) {
	if rs := (Runner{}).RunAll(nil); len(rs) != 0 {
		t.Errorf("empty batch returned %d results", len(rs))
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if s == 0 {
			t.Fatal("zero derived seed")
		}
		if seen[s] {
			t.Fatalf("derived seed collision at %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Error("DeriveSeed not deterministic")
	}
	if DeriveSeed(42, 7) == DeriveSeed(43, 7) {
		t.Error("base seed ignored")
	}
}

func TestRunnerJobsClamping(t *testing.T) {
	if got := (Runner{Jobs: 16}).jobs(4); got != 4 {
		t.Errorf("jobs(4) with 16 workers = %d, want 4", got)
	}
	if got := (Runner{Jobs: -1}).jobs(100); got < 1 {
		t.Errorf("auto jobs = %d, want >= 1", got)
	}
	if got := (Runner{Jobs: 2}).jobs(100); got != 2 {
		t.Errorf("jobs = %d, want 2", got)
	}
}

func TestRunAllContextPreCanceled(t *testing.T) {
	// A batch submitted with an already-canceled context runs nothing:
	// every result carries the context's error, names intact.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := Runner{Jobs: 2}.RunAllContext(ctx, testBatch(4))
	for i, r := range rs {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("scenario %d err = %v, want context.Canceled", i, r.Err)
		}
		if r.Profile != nil {
			t.Errorf("scenario %d ran despite canceled context", i)
		}
		if r.Name == "" {
			t.Errorf("scenario %d lost its name", i)
		}
	}
}

func TestRunAllContextMidBatchCancel(t *testing.T) {
	// Cancel fired by the second scenario's workload factory: with one
	// worker, scenario 0 (in flight) completes, later scenarios that
	// have not started report the cancellation. The already-started
	// scenario 1 also completes — cancellation is checked at scenario
	// boundaries only.
	ctx, cancel := context.WithCancel(context.Background())
	scs := testBatch(5)
	orig := scs[1].Workload
	scs[1].Workload = func() (workloads.Workload, error) {
		cancel()
		return orig()
	}
	rs := Runner{Jobs: 1}.RunAllContext(ctx, scs)
	if rs[0].Err != nil {
		t.Fatalf("scenario 0: %v", rs[0].Err)
	}
	if rs[1].Err != nil {
		t.Fatalf("scenario 1 (canceled mid-run) should finish: %v", rs[1].Err)
	}
	for i := 2; i < len(rs); i++ {
		if !errors.Is(rs[i].Err, context.Canceled) {
			t.Errorf("scenario %d err = %v, want context.Canceled", i, rs[i].Err)
		}
	}
}
