package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck-at-zero stream")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical outputs across different seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("derived streams with different labels coincide")
	}
	// Deriving must not consume parent state.
	p2 := New(7)
	p2.Derive(1)
	if parent.Uint64() != p2.Uint64() {
		t.Error("Derive mutated parent state")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestPerturbZeroBits(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Perturb(0) != 0 {
			t.Fatal("Perturb(0) must return 0")
		}
	}
}

func TestPerturbRangeAndMean(t *testing.T) {
	r := New(11)
	const bits = 8
	span := int64(1) << bits
	var sum int64
	const n = 100000
	for i := 0; i < n; i++ {
		p := r.Perturb(bits)
		if p <= -span/2-1 || p > span/2 {
			t.Fatalf("Perturb(%d) = %d out of range", bits, p)
		}
		sum += p
	}
	mean := float64(sum) / n
	// Uniform over (-128, 128]; mean should be ~0.5, allow slack.
	if mean < -2 || mean > 3 {
		t.Errorf("Perturb mean = %v, want ~0.5 (zero-mean dither)", mean)
	}
}

func TestPerturbBitsClamped(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		p := r.Perturb(40) // clamped to 16
		if p < -(1<<15) || p > 1<<15 {
			t.Fatalf("Perturb(40) = %d outside clamped range", p)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		xs := make([]int, m)
		for i := range xs {
			xs[i] = i
		}
		New(seed).Shuffle(m, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, m)
		for _, v := range xs {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-squared-ish sanity check over 16 buckets.
	r := New(99)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	want := n / 16
	for i, c := range buckets {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d = %d, want %d±10%%", i, c, want)
		}
	}
}
