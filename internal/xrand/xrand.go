// Package xrand provides a small, fast, deterministic pseudo-random
// number generator used throughout the simulation.
//
// The whole repository must be reproducible: two runs with the same
// seed produce byte-identical traces, sample counts, and collision
// statistics. math/rand would work, but its global state and larger
// footprint make accidental nondeterminism easy; xrand makes the seed
// explicit at every construction site.
//
// The generator is xorshift64* (Vigna 2014), which passes BigCrush for
// the purposes of statistical sampling perturbation and workload
// shuffling. It is not cryptographically secure and must never be used
// for anything security sensitive.
package xrand

// RNG is a deterministic xorshift64* generator. The zero value is not
// valid; use New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to
// a fixed nonzero constant because xorshift has an all-zero fixed
// point.
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	return &RNG{state: seed}
}

// Derive returns a new generator whose stream is a deterministic
// function of the parent seed and the given stream label. It is used
// to give every core / trial / workload an independent stream without
// cross-contaminating the parent sequence.
func (r *RNG) Derive(label uint64) *RNG {
	// SplitMix64 step over (state ^ label) decorrelates the child.
	z := r.state ^ (label+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return New(z)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perturb returns a zero-mean perturbation in (-2^(bits-1), 2^(bits-1)].
// ARM SPE adds a small random dither to the sampling interval counter
// so that the selected operations are not phase-locked with loop
// bodies; Perturb models that dither. bits == 0 returns 0 (dither
// disabled, as when the PMSIRR jitter bit is clear).
func (r *RNG) Perturb(bits uint) int64 {
	if bits == 0 {
		return 0
	}
	if bits > 16 {
		bits = 16
	}
	span := int64(1) << bits
	return int64(r.Uint64n(uint64(span))) - span/2
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
