package analysis

import (
	"testing"

	"nmo/internal/trace"
)

func pcTrace(pcs ...uint64) *trace.Trace {
	tr := &trace.Trace{}
	for i, pc := range pcs {
		tr.Samples = append(tr.Samples, trace.Sample{PC: pc, TimeNs: uint64(i + 1), VA: 1})
	}
	return tr
}

func TestPCBiasPerfectMatch(t *testing.T) {
	tr := pcTrace(1, 1, 2, 2)
	truth := map[uint64]float64{1: 0.5, 2: 0.5}
	if d := PCBias(tr, truth); d > 1e-9 {
		t.Errorf("bias = %v, want 0", d)
	}
}

func TestPCBiasTotalDivergence(t *testing.T) {
	tr := pcTrace(9, 9, 9)
	truth := map[uint64]float64{1: 1.0}
	if d := PCBias(tr, truth); d < 0.99 {
		t.Errorf("bias = %v, want ~1", d)
	}
}

func TestPCBiasPartial(t *testing.T) {
	// Truth 50/50, samples 75/25: TV distance = 0.25.
	tr := pcTrace(1, 1, 1, 2)
	truth := map[uint64]float64{1: 0.5, 2: 0.5}
	if d := PCBias(tr, truth); d < 0.24 || d > 0.26 {
		t.Errorf("bias = %v, want 0.25", d)
	}
}

func TestPCBiasDegenerate(t *testing.T) {
	if PCBias(&trace.Trace{}, map[uint64]float64{1: 1}) != 1 {
		t.Error("empty trace vs nonempty truth must be total divergence")
	}
	if PCBias(pcTrace(1), nil) != 0 {
		t.Error("empty truth bias not 0")
	}
}

func TestPCHistogram(t *testing.T) {
	h := PCHistogramOf(pcTrace(5, 5, 5, 7, 7, 9))
	if len(h) != 3 {
		t.Fatalf("histogram size %d", len(h))
	}
	if h[0].PC != 5 || h[0].Count != 3 {
		t.Errorf("top entry %+v", h[0])
	}
	if h[2].PC != 9 || h[2].Count != 1 {
		t.Errorf("last entry %+v", h[2])
	}
}

func TestLevelBreakdown(t *testing.T) {
	tr := &trace.Trace{Samples: []trace.Sample{
		{Level: 0}, {Level: 0}, {Level: 1}, {Level: 3}, {Level: 9},
	}}
	lv := LevelBreakdown(tr)
	if lv != [4]int{2, 1, 0, 2} {
		t.Errorf("breakdown = %v", lv)
	}
	if r := MissRatioFromSamples(tr); r != 0.4 {
		t.Errorf("miss ratio = %v, want 0.4", r)
	}
	if MissRatioFromSamples(&trace.Trace{}) != 0 {
		t.Error("empty miss ratio not 0")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	tr := &trace.Trace{}
	for i := 1; i <= 100; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{Lat: uint16(i)})
	}
	p50, p90, p99 := LatencyPercentiles(tr)
	if p50 != 50 || p90 != 90 || p99 != 99 {
		t.Errorf("percentiles = %v/%v/%v", p50, p90, p99)
	}
	if a, b, c := LatencyPercentiles(&trace.Trace{}); a+b+c != 0 {
		t.Error("empty percentiles not 0")
	}
}
