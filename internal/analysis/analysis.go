// Package analysis implements the quantitative evaluation methodology
// of the paper's §VII: sampling accuracy per Eq. (1), time overhead
// against an uninstrumented baseline, collision statistics, plus the
// post-processing analyses the paper's figures are built from
// (address-space heatmaps for Figs. 4–6, multi-trial aggregation for
// Figs. 7–11, and the Roofline arithmetic-intensity helper from §III).
package analysis

import (
	"math"
	"sort"

	"nmo/internal/sim"
	"nmo/internal/trace"
)

// Accuracy implements the paper's Eq. (1):
//
//	accuracy = 1 - |mem_counted - samples*period| / mem_counted
//
// memCounted is the exact load+store count from the perf-stat
// baseline; samples the number of processed SPE samples; period the
// sampling period. The result may be negative when the estimate is off
// by more than 100%.
func Accuracy(memCounted, samples, period uint64) float64 {
	if memCounted == 0 {
		return 0
	}
	est := float64(samples) * float64(period)
	return 1 - math.Abs(float64(memCounted)-est)/float64(memCounted)
}

// Overhead returns the relative time overhead of a profiled run
// against its baseline: (profiled-baseline)/baseline. Negative values
// are clamped to zero (measurement noise in the paper's method; in the
// deterministic simulation a profiled run is never faster).
func Overhead(baseline, profiled sim.Cycles) float64 {
	if baseline == 0 {
		return 0
	}
	o := (float64(profiled) - float64(baseline)) / float64(baseline)
	if o < 0 {
		return 0
	}
	return o
}

// Stats holds mean and standard deviation of repeated trials — the
// paper reports the average and standard deviation of at least five
// repetitions (§V).
type Stats struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	N      int
}

// Aggregate computes trial statistics.
func Aggregate(values []float64) Stats {
	st := Stats{N: len(values)}
	if st.N == 0 {
		return st
	}
	st.Min, st.Max = values[0], values[0]
	var sum float64
	for _, v := range values {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(st.N)
	if st.N > 1 {
		var ss float64
		for _, v := range values {
			d := v - st.Mean
			ss += d * d
		}
		st.StdDev = math.Sqrt(ss / float64(st.N-1))
	}
	return st
}

// Percentile returns the p-th percentile (0–100) of values using
// nearest-rank on a sorted copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Heatmap is a 2D histogram of samples over (time, address) — the
// data behind the Fig. 4–6 scatter/high-resolution trace plots.
type Heatmap struct {
	TimeBins int
	AddrBins int
	TimeMin  uint64 // ns
	TimeMax  uint64
	AddrMin  uint64
	AddrMax  uint64
	// Counts is row-major [time][addr].
	Counts []uint32
}

// BuildHeatmap bins the trace's samples. Empty traces or degenerate
// ranges yield a zeroed map with 1x1 geometry.
func BuildHeatmap(tr *trace.Trace, timeBins, addrBins int) *Heatmap {
	if timeBins <= 0 {
		timeBins = 64
	}
	if addrBins <= 0 {
		addrBins = 64
	}
	h := &Heatmap{TimeBins: timeBins, AddrBins: addrBins}
	if len(tr.Samples) == 0 {
		h.TimeBins, h.AddrBins = 1, 1
		h.Counts = make([]uint32, 1)
		return h
	}
	h.TimeMin, h.TimeMax = tr.Samples[0].TimeNs, tr.Samples[0].TimeNs
	h.AddrMin, h.AddrMax = tr.Samples[0].VA, tr.Samples[0].VA
	for i := range tr.Samples {
		s := &tr.Samples[i]
		if s.TimeNs < h.TimeMin {
			h.TimeMin = s.TimeNs
		}
		if s.TimeNs > h.TimeMax {
			h.TimeMax = s.TimeNs
		}
		if s.VA < h.AddrMin {
			h.AddrMin = s.VA
		}
		if s.VA > h.AddrMax {
			h.AddrMax = s.VA
		}
	}
	h.Counts = make([]uint32, timeBins*addrBins)
	tSpan := float64(h.TimeMax-h.TimeMin) + 1
	aSpan := float64(h.AddrMax-h.AddrMin) + 1
	for i := range tr.Samples {
		s := &tr.Samples[i]
		tb := int(float64(s.TimeNs-h.TimeMin) / tSpan * float64(timeBins))
		ab := int(float64(s.VA-h.AddrMin) / aSpan * float64(addrBins))
		if tb >= timeBins {
			tb = timeBins - 1
		}
		if ab >= addrBins {
			ab = addrBins - 1
		}
		h.Counts[tb*addrBins+ab]++
	}
	return h
}

// At returns the count of cell (timeBin, addrBin).
func (h *Heatmap) At(tb, ab int) uint32 { return h.Counts[tb*h.AddrBins+ab] }

// Total returns the number of binned samples.
func (h *Heatmap) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += uint64(c)
	}
	return t
}

// MaxCount returns the largest cell value.
func (h *Heatmap) MaxCount() uint32 {
	var m uint32
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// NonEmptyCells counts cells with at least one sample; the spread of
// occupied cells distinguishes the regular STREAM segments (Fig. 4)
// from CFD's irregular gathers (Fig. 6).
func (h *Heatmap) NonEmptyCells() int {
	n := 0
	for _, c := range h.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Roofline classifies a workload in the Roofline model (§III-A):
// given arithmetic intensity (flops/byte), the machine's peak compute
// (flops/s) and peak memory bandwidth (bytes/s), it returns the
// attainable performance and whether the workload is memory bound.
func Roofline(ai, peakFlops, peakBW float64) (attainable float64, memoryBound bool) {
	if ai <= 0 {
		return 0, true
	}
	memCeil := ai * peakBW
	if memCeil < peakFlops {
		return memCeil, true
	}
	return peakFlops, false
}

// SpatialLocality computes the fraction of consecutive (time-ordered)
// samples whose addresses fall within `window` bytes of the previous
// sample — a crude locality score used to contrast workloads.
func SpatialLocality(tr *trace.Trace, window uint64) float64 {
	if len(tr.Samples) < 2 {
		return 0
	}
	sorted := make([]trace.Sample, len(tr.Samples))
	copy(sorted, tr.Samples)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TimeNs < sorted[j].TimeNs })
	near := 0
	for i := 1; i < len(sorted); i++ {
		d := int64(sorted[i].VA) - int64(sorted[i-1].VA)
		if d < 0 {
			d = -d
		}
		if uint64(d) <= window {
			near++
		}
	}
	return float64(near) / float64(len(sorted)-1)
}
