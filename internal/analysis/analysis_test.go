package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"nmo/internal/trace"
)

func TestAccuracyExact(t *testing.T) {
	// samples*period == memCounted => accuracy 1.
	if got := Accuracy(1_000_000, 1000, 1000); got != 1.0 {
		t.Errorf("exact estimate accuracy = %v", got)
	}
}

func TestAccuracyUnderAndOverEstimate(t *testing.T) {
	// 10% undercount and 10% overcount give the same accuracy (the
	// formula takes |.|).
	u := Accuracy(1_000_000, 900, 1000)
	o := Accuracy(1_000_000, 1100, 1000)
	if math.Abs(u-0.9) > 1e-12 || math.Abs(o-0.9) > 1e-12 {
		t.Errorf("accuracy = %v / %v, want 0.9", u, o)
	}
}

func TestAccuracyDegenerate(t *testing.T) {
	if Accuracy(0, 100, 100) != 0 {
		t.Error("zero memCounted should yield 0")
	}
	// Estimate off by >100% goes negative, as Eq. (1) allows.
	if got := Accuracy(100, 300, 1); got >= 0 {
		t.Errorf("gross overestimate accuracy = %v, want negative", got)
	}
}

// Property: accuracy is maximized exactly at samples*period ==
// memCounted and decreases monotonically with |error|.
func TestAccuracyMonotoneProperty(t *testing.T) {
	f := func(mem uint32, errA, errB uint16) bool {
		m := uint64(mem)%1_000_000 + 1000
		a, b := uint64(errA), uint64(errB)
		if a > b {
			a, b = b, a
		}
		accA := Accuracy(m, m+a, 1)
		accB := Accuracy(m, m+b, 1)
		return accA >= accB && accA <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(1000, 1050); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("overhead = %v, want 0.05", got)
	}
	if Overhead(1000, 900) != 0 {
		t.Error("negative overhead not clamped")
	}
	if Overhead(0, 100) != 0 {
		t.Error("zero baseline not handled")
	}
}

func TestAggregate(t *testing.T) {
	st := Aggregate([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if st.Mean != 5 {
		t.Errorf("mean = %v", st.Mean)
	}
	if math.Abs(st.StdDev-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ~2.138 (sample)", st.StdDev)
	}
	if st.Min != 2 || st.Max != 9 || st.N != 8 {
		t.Errorf("min/max/n = %v/%v/%d", st.Min, st.Max, st.N)
	}
	if Aggregate(nil).N != 0 {
		t.Error("empty aggregate")
	}
	one := Aggregate([]float64{3})
	if one.Mean != 3 || one.StdDev != 0 {
		t.Errorf("single-value aggregate: %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(vals, 50); p != 5 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(vals, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(vals, 100); p != 10 {
		t.Errorf("p100 = %v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	// Input must not be mutated.
	shuffled := []float64{3, 1, 2}
	Percentile(shuffled, 50)
	if shuffled[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func mkTrace(n int) *trace.Trace {
	tr := &trace.Trace{Workload: "t"}
	for i := 0; i < n; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{
			TimeNs: uint64(i * 100),
			VA:     0x1000 + uint64(i)*64,
		})
	}
	return tr
}

func TestHeatmapBinning(t *testing.T) {
	tr := mkTrace(1000)
	h := BuildHeatmap(tr, 10, 10)
	if h.Total() != 1000 {
		t.Errorf("total = %d", h.Total())
	}
	// A diagonal access pattern occupies ~10 of 100 cells.
	if n := h.NonEmptyCells(); n < 10 || n > 20 {
		t.Errorf("non-empty cells = %d, want ~10 (diagonal)", n)
	}
	if h.MaxCount() == 0 {
		t.Error("zero max count")
	}
	if h.At(0, 0) == 0 {
		t.Error("first cell empty for diagonal pattern")
	}
}

func TestHeatmapEmptyAndDefaults(t *testing.T) {
	h := BuildHeatmap(&trace.Trace{}, 0, 0)
	if h.Total() != 0 || len(h.Counts) != 1 {
		t.Errorf("empty heatmap: %+v", h)
	}
	// Single sample.
	h = BuildHeatmap(mkTrace(1), 4, 4)
	if h.Total() != 1 {
		t.Errorf("single-sample total = %d", h.Total())
	}
}

// Property: every sample lands in exactly one bin.
func TestHeatmapConservationProperty(t *testing.T) {
	f := func(times []uint32) bool {
		tr := &trace.Trace{}
		for i, tm := range times {
			tr.Samples = append(tr.Samples, trace.Sample{
				TimeNs: uint64(tm), VA: uint64(i) * 4096,
			})
		}
		h := BuildHeatmap(tr, 8, 8)
		return h.Total() == uint64(len(times))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoofline(t *testing.T) {
	// Low AI: memory bound.
	att, mb := Roofline(0.5, 1e12, 200e9)
	if !mb || att != 100e9 {
		t.Errorf("low AI: att=%v mb=%v", att, mb)
	}
	// High AI: compute bound.
	att, mb = Roofline(100, 1e12, 200e9)
	if mb || att != 1e12 {
		t.Errorf("high AI: att=%v mb=%v", att, mb)
	}
	// The ridge point of a 1e12/200e9 machine is AI=5.
	att, mb = Roofline(5, 1e12, 200e9)
	if att != 1e12 {
		t.Errorf("ridge: att=%v", att)
	}
	if att, mb = Roofline(0, 1e12, 200e9); att != 0 || !mb {
		t.Error("zero AI")
	}
}

func TestSpatialLocality(t *testing.T) {
	// Sequential addresses: perfect locality at a 64-byte window.
	tr := mkTrace(100)
	if loc := SpatialLocality(tr, 64); loc != 1.0 {
		t.Errorf("sequential locality = %v", loc)
	}
	// Scattered addresses: near-zero locality.
	scattered := &trace.Trace{}
	for i := 0; i < 100; i++ {
		scattered.Samples = append(scattered.Samples, trace.Sample{
			TimeNs: uint64(i), VA: uint64(i%2) * (1 << 30),
		})
	}
	if loc := SpatialLocality(scattered, 64); loc > 0.05 {
		t.Errorf("scattered locality = %v", loc)
	}
	if SpatialLocality(&trace.Trace{}, 64) != 0 {
		t.Error("empty locality")
	}
}
