package analysis

import (
	"math"
	"sort"

	"nmo/internal/trace"
)

// The paper's future work (§IX) plans to evaluate sampling bias when
// the same event appears at different code positions and to trace
// cache activities. This file implements both analyses so the
// reproduction covers the announced extensions.

// PCBias quantifies how unevenly samples distribute over program
// counters against a reference distribution of the true per-PC
// frequencies. The result is the total variation distance in [0, 1]:
// 0 means sampling matched the true mix perfectly, 1 means total
// divergence. With interval-counter dither enabled the distance
// should be near 0; without it, phase lock with loop bodies inflates
// it.
func PCBias(tr *trace.Trace, truth map[uint64]float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	if len(tr.Samples) == 0 {
		// No samples at all against a nonempty truth is the extreme
		// form of bias: phase lock onto a code position the filter
		// rejects collects nothing.
		return 1
	}
	counts := make(map[uint64]float64)
	for i := range tr.Samples {
		counts[tr.Samples[i].PC]++
	}
	n := float64(len(tr.Samples))
	var dist float64
	seen := make(map[uint64]bool, len(truth))
	for pc, p := range truth {
		dist += math.Abs(counts[pc]/n - p)
		seen[pc] = true
	}
	for pc, c := range counts {
		if !seen[pc] {
			dist += c / n
		}
	}
	return dist / 2
}

// PCHistogram returns per-PC sample counts sorted by descending count
// — the "which instructions are sampled" view.
type PCCount struct {
	PC    uint64
	Count int
}

// PCHistogramOf builds the histogram.
func PCHistogramOf(tr *trace.Trace) []PCCount {
	counts := make(map[uint64]int)
	for i := range tr.Samples {
		counts[tr.Samples[i].PC]++
	}
	out := make([]PCCount, 0, len(counts))
	for pc, c := range counts {
		out = append(out, PCCount{PC: pc, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// LevelBreakdown counts samples by the memory level that served them
// (0=L1, 1=L2, 2=SLC, 3=DRAM) — the cache-activity tracing metric the
// paper lists as future work. SPE data-source packets carry exactly
// this information, so the breakdown is free once samples decode.
func LevelBreakdown(tr *trace.Trace) [4]int {
	var out [4]int
	for i := range tr.Samples {
		l := tr.Samples[i].Level
		if l > 3 {
			l = 3
		}
		out[l]++
	}
	return out
}

// MissRatioFromSamples estimates the fraction of sampled accesses
// served beyond the private caches (SLC or DRAM) — a sampled proxy
// for the L2 miss ratio.
func MissRatioFromSamples(tr *trace.Trace) float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	lv := LevelBreakdown(tr)
	return float64(lv[2]+lv[3]) / float64(len(tr.Samples))
}

// LatencyPercentiles returns the p50/p90/p99 of sampled access
// latencies in cycles — the latency-distribution view used when
// choosing SPE minimum-latency filters.
func LatencyPercentiles(tr *trace.Trace) (p50, p90, p99 float64) {
	if len(tr.Samples) == 0 {
		return 0, 0, 0
	}
	lats := make([]float64, len(tr.Samples))
	for i := range tr.Samples {
		lats[i] = float64(tr.Samples[i].Lat)
	}
	return Percentile(lats, 50), Percentile(lats, 90), Percentile(lats, 99)
}
