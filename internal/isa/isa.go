// Package isa defines the operation model that workloads feed to the
// machine simulator.
//
// A workload is compiled (by hand, in internal/workloads) into a
// stream of Ops: loads, stores, branches, scalar and SIMD arithmetic,
// plus two pseudo-ops. Marker ops carry the NMO source annotations
// (nmo_start / nmo_stop) through the pipeline, mirroring how the real
// tool's annotation API emits events from inside the application.
// Block ops represent a bulk transfer (many consecutive cache lines)
// and exist so that the phase-level CloudSuite workloads can model
// realistic bandwidth without simulating every line individually
// (DESIGN.md §4).
package isa

import "fmt"

// Architecture names. The op model itself is architecture-neutral;
// these strings pin a machine spec (and hence a scenario) to the ISA
// whose sampling hardware it carries — SPE exists only on arm64, PEBS
// only on x86_64.
const (
	ArchARM64 = "arm64"
	ArchX86   = "x86_64"
)

// Kind classifies an operation.
type Kind uint8

const (
	// KindALU is a scalar integer/FP operation with unit cost.
	KindALU Kind = iota
	// KindSIMD is a vector (SVE/NEON-class) operation; it counts as a
	// floating-point event for arithmetic-intensity profiling.
	KindSIMD
	// KindBranch is a control-flow operation. ARM SPE can sample
	// branches, but NMO excludes them due to known Neoverse sampling
	// bias (§IV-A), so the default SPE filter drops them.
	KindBranch
	// KindLoad is a memory read of Size bytes at Addr.
	KindLoad
	// KindStore is a memory write of Size bytes at Addr.
	KindStore
	// KindBlockLoad reads Size bytes (possibly many cache lines)
	// starting at Addr, modeled as a streaming transfer.
	KindBlockLoad
	// KindBlockStore writes Size bytes starting at Addr, streaming.
	KindBlockStore
	// KindMarker is a pseudo-op carrying an annotation event in
	// Marker/Label. It consumes no pipeline resources.
	KindMarker
	// KindDelay is a bulk stand-in for Addr cycles of compute: the
	// core charges Addr cycles and counts Addr scalar operations.
	// Phase-level workloads use it to pace block transfers without
	// emitting millions of individual ALU ops. Probes observe it as a
	// single operation, so it must not be mixed with SPE sampling
	// (the phase-level CloudSuite runs only use counting events).
	KindDelay

	numKinds
)

// NumKinds is the number of distinct operation kinds.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindSIMD:
		return "simd"
	case KindBranch:
		return "branch"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBlockLoad:
		return "block-load"
	case KindBlockStore:
		return "block-store"
	case KindMarker:
		return "marker"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMemory reports whether the op accesses memory (and is therefore a
// candidate for SPE load/store sampling and mem_access counting).
func (k Kind) IsMemory() bool {
	return k == KindLoad || k == KindStore || k == KindBlockLoad || k == KindBlockStore
}

// IsWrite reports whether the op writes memory.
func (k Kind) IsWrite() bool { return k == KindStore || k == KindBlockStore }

// MarkerKind distinguishes annotation events carried by KindMarker ops.
type MarkerKind uint8

const (
	// MarkerNone is the zero value; not a valid marker.
	MarkerNone MarkerKind = iota
	// MarkerStart corresponds to nmo_start("label").
	MarkerStart
	// MarkerStop corresponds to nmo_stop().
	MarkerStop
	// MarkerAlloc reports that the workload's resident set grew to
	// Addr bytes (used by the temporal capacity collector).
	MarkerAlloc
	// MarkerFree reports that the resident set shrank to Addr bytes.
	MarkerFree
)

func (m MarkerKind) String() string {
	switch m {
	case MarkerStart:
		return "start"
	case MarkerStop:
		return "stop"
	case MarkerAlloc:
		return "alloc"
	case MarkerFree:
		return "free"
	}
	return "none"
}

// Op is a single dynamic operation. It is kept small (32 bytes) and
// free of pointers so that batches of Ops stay cheap to fill and scan;
// the simulator touches hundreds of millions of them per experiment.
type Op struct {
	// Addr is the virtual address for memory ops; for MarkerAlloc /
	// MarkerFree it carries the new RSS in bytes.
	Addr uint64
	// PC is the program counter of the instruction. Workloads assign
	// stable synthetic PCs per code site so that samples can be
	// attributed to kernels.
	PC uint64
	// Size is the access size in bytes for memory ops.
	Size uint32
	// Kind classifies the op.
	Kind Kind
	// Marker is the annotation event kind for KindMarker ops.
	Marker MarkerKind
	// Label identifies the annotation region for marker ops; it
	// indexes the workload's region-name table.
	Label uint16
}

// Stream produces operations in batches. Fill writes up to len(dst)
// ops into dst and returns the number written; it returns 0 when the
// stream is exhausted. Implementations are single-threaded per stream:
// the machine drives one Stream per simulated hardware thread.
type Stream interface {
	Fill(dst []Op) int
}

// SliceStream adapts a fixed []Op to the Stream interface. It is used
// heavily in tests.
type SliceStream struct {
	Ops []Op
	pos int
}

// Fill implements Stream.
func (s *SliceStream) Fill(dst []Op) int {
	n := copy(dst, s.Ops[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// FuncStream adapts a fill function to the Stream interface.
type FuncStream func(dst []Op) int

// Fill implements Stream.
func (f FuncStream) Fill(dst []Op) int { return f(dst) }

// CountOps drains the stream with the given batch size and returns
// per-kind totals. Test and analysis helper.
func CountOps(s Stream, batch int) (total uint64, byKind [NumKinds]uint64) {
	if batch <= 0 {
		batch = 4096
	}
	buf := make([]Op, batch)
	for {
		n := s.Fill(buf)
		if n == 0 {
			return
		}
		total += uint64(n)
		for i := 0; i < n; i++ {
			byKind[buf[i].Kind]++
		}
	}
}
