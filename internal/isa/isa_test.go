package isa

import "testing"

func TestKindPredicates(t *testing.T) {
	memKinds := map[Kind]bool{
		KindLoad: true, KindStore: true, KindBlockLoad: true, KindBlockStore: true,
	}
	writeKinds := map[Kind]bool{KindStore: true, KindBlockStore: true}
	for k := Kind(0); k < Kind(NumKinds); k++ {
		if got := k.IsMemory(); got != memKinds[k] {
			t.Errorf("%v.IsMemory() = %v, want %v", k, got, memKinds[k])
		}
		if got := k.IsWrite(); got != writeKinds[k] {
			t.Errorf("%v.IsWrite() = %v, want %v", k, got, writeKinds[k])
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < Kind(NumKinds); k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("Kind(%d) has bad String %q", k, s)
		}
	}
	if s := Kind(200).String(); s != "kind(200)" {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestMarkerKindStrings(t *testing.T) {
	for m, want := range map[MarkerKind]string{
		MarkerNone: "none", MarkerStart: "start", MarkerStop: "stop",
		MarkerAlloc: "alloc", MarkerFree: "free",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestSliceStream(t *testing.T) {
	ops := make([]Op, 10)
	for i := range ops {
		ops[i].Addr = uint64(i)
	}
	s := &SliceStream{Ops: ops}
	buf := make([]Op, 4)
	var got []uint64
	for {
		n := s.Fill(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, buf[i].Addr)
		}
	}
	if len(got) != 10 {
		t.Fatalf("drained %d ops, want 10", len(got))
	}
	for i, a := range got {
		if a != uint64(i) {
			t.Fatalf("op %d has addr %d", i, a)
		}
	}
	s.Reset()
	if n := s.Fill(buf); n != 4 {
		t.Errorf("after Reset Fill = %d, want 4", n)
	}
}

func TestFuncStream(t *testing.T) {
	calls := 0
	fs := FuncStream(func(dst []Op) int {
		if calls >= 2 {
			return 0
		}
		calls++
		dst[0] = Op{Kind: KindLoad}
		return 1
	})
	total, byKind := CountOps(fs, 8)
	if total != 2 || byKind[KindLoad] != 2 {
		t.Errorf("CountOps = %d, %v", total, byKind)
	}
}

func TestCountOpsDefaultsBatch(t *testing.T) {
	s := &SliceStream{Ops: []Op{{Kind: KindStore}, {Kind: KindALU}}}
	total, byKind := CountOps(s, 0)
	if total != 2 || byKind[KindStore] != 1 || byKind[KindALU] != 1 {
		t.Errorf("CountOps = %d, %v", total, byKind)
	}
}

func TestOpSize(t *testing.T) {
	// The simulator scans hundreds of millions of Ops; keep the struct
	// compact. This test pins the size so accidental growth is caught.
	var op Op
	_ = op
	const maxBytes = 32
	if s := sizeOfOp(); s > maxBytes {
		t.Errorf("sizeof(Op) = %d, want <= %d", s, maxBytes)
	}
}
