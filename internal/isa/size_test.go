package isa

import "unsafe"

func sizeOfOp() uintptr { return unsafe.Sizeof(Op{}) }
