// Package ringbuf implements the byte ring buffer protocol used by the
// simulated perf_event subsystem.
//
// perf mmap areas follow a single-producer / single-consumer protocol:
// the kernel advances a monotonically increasing head as it writes,
// userspace advances tail as it consumes, and the live span is
// head-tail bytes within a power-of-two area. The same protocol is
// used twice in this repository: for the data ring (where
// PERF_RECORD_AUX metadata records land) and for the aux area (where
// SPE hardware writes sample records).
//
// Head and tail are absolute byte offsets (never wrapped); Buf.index
// masks them into the backing array, exactly like the kernel's
// handling of perf_event_mmap_page.data_head/data_tail.
package ringbuf

import "fmt"

// Buf is a power-of-two byte ring buffer. The zero value is not
// usable; construct with New.
type Buf struct {
	data []byte
	mask uint64
	head uint64 // producer offset (absolute)
	tail uint64 // consumer offset (absolute)

	dropped uint64 // bytes rejected for lack of space
}

// New creates a ring buffer of the given size, which must be a
// positive power of two.
func New(size int) *Buf {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("ringbuf: size %d must be a positive power of two", size))
	}
	return &Buf{data: make([]byte, size), mask: uint64(size - 1)}
}

// Size returns the buffer capacity in bytes.
func (b *Buf) Size() int { return len(b.data) }

// Head returns the absolute producer offset.
func (b *Buf) Head() uint64 { return b.head }

// Tail returns the absolute consumer offset.
func (b *Buf) Tail() uint64 { return b.tail }

// Used returns the number of unconsumed bytes.
func (b *Buf) Used() int { return int(b.head - b.tail) }

// Free returns the number of writable bytes.
func (b *Buf) Free() int { return len(b.data) - b.Used() }

// Dropped returns the cumulative number of bytes rejected by Write for
// lack of space (the truncation counter).
func (b *Buf) Dropped() uint64 { return b.dropped }

// Write appends p if it fits entirely; partial writes never happen
// (an SPE record is all-or-nothing, which is what makes a full aux
// buffer *truncate* samples rather than tear them). It reports whether
// the write succeeded.
func (b *Buf) Write(p []byte) bool {
	if len(p) > b.Free() {
		b.dropped += uint64(len(p))
		return false
	}
	pos := b.head & b.mask
	n := copy(b.data[pos:], p)
	if n < len(p) {
		copy(b.data, p[n:])
	}
	b.head += uint64(len(p))
	return true
}

// Peek returns up to max unconsumed bytes starting at tail without
// advancing it. The returned slice is a copy (records may wrap the
// ring edge, and callers keep decoded spans across later writes).
func (b *Buf) Peek(max int) []byte {
	avail := b.Used()
	if max < 0 || max > avail {
		max = avail
	}
	out := make([]byte, max)
	pos := b.tail & b.mask
	n := copy(out, b.data[pos:])
	if n < max {
		copy(out[n:], b.data)
	}
	return out
}

// ReadAt copies size bytes starting at absolute offset off into a new
// slice. It is used to service PERF_RECORD_AUX records, whose
// aux_offset/aux_size fields address the aux area by absolute offset.
// It panics if the span is not within [tail, head] — that would be a
// protocol violation by the caller.
func (b *Buf) ReadAt(off uint64, size int) []byte {
	if off < b.tail || off+uint64(size) > b.head {
		panic(fmt.Sprintf("ringbuf: ReadAt [%d,%d) outside live span [%d,%d)",
			off, off+uint64(size), b.tail, b.head))
	}
	out := make([]byte, size)
	pos := off & b.mask
	n := copy(out, b.data[pos:])
	if n < size {
		copy(out[n:], b.data)
	}
	return out
}

// Advance moves the consumer tail forward by n bytes. It panics if n
// exceeds the unconsumed span.
func (b *Buf) Advance(n int) {
	if n < 0 || n > b.Used() {
		panic(fmt.Sprintf("ringbuf: Advance(%d) with only %d used", n, b.Used()))
	}
	b.tail += uint64(n)
}

// Reset empties the buffer and clears the drop counter. Offsets
// restart from zero.
func (b *Buf) Reset() {
	b.head, b.tail, b.dropped = 0, 0, 0
}
