package ringbuf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, -8, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
	if b := New(64); b.Size() != 64 {
		t.Errorf("Size = %d, want 64", b.Size())
	}
}

func TestWriteRead(t *testing.T) {
	b := New(64)
	if !b.Write([]byte("hello")) {
		t.Fatal("Write failed with space available")
	}
	if b.Used() != 5 || b.Free() != 59 {
		t.Errorf("Used/Free = %d/%d", b.Used(), b.Free())
	}
	got := b.Peek(-1)
	if !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Peek = %q", got)
	}
	b.Advance(5)
	if b.Used() != 0 {
		t.Errorf("Used after Advance = %d", b.Used())
	}
}

func TestWriteRejectsWhenFull(t *testing.T) {
	b := New(16)
	if !b.Write(make([]byte, 16)) {
		t.Fatal("exact-fit write failed")
	}
	if b.Write([]byte{1}) {
		t.Fatal("overfull write succeeded")
	}
	if b.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", b.Dropped())
	}
	// All-or-nothing: a 10-byte write into 4 free bytes must not
	// partially land.
	b.Advance(12)
	if b.Free() != 12 {
		t.Fatalf("Free = %d", b.Free())
	}
	if b.Write(make([]byte, 13)) {
		t.Fatal("write larger than free space succeeded")
	}
	if b.Dropped() != 14 {
		t.Errorf("Dropped = %d, want 14", b.Dropped())
	}
}

func TestWrapAround(t *testing.T) {
	b := New(8)
	b.Write([]byte{1, 2, 3, 4, 5, 6})
	b.Advance(6)
	// Next write wraps the ring edge.
	payload := []byte{7, 8, 9, 10}
	if !b.Write(payload) {
		t.Fatal("wrapping write failed")
	}
	if got := b.Peek(-1); !bytes.Equal(got, payload) {
		t.Errorf("Peek after wrap = %v, want %v", got, payload)
	}
}

func TestHeadTailMonotone(t *testing.T) {
	b := New(8)
	var lastHead, lastTail uint64
	for i := 0; i < 100; i++ {
		b.Write([]byte{byte(i), byte(i + 1)})
		b.Advance(2)
		if b.Head() < lastHead || b.Tail() < lastTail {
			t.Fatal("head/tail went backwards")
		}
		lastHead, lastTail = b.Head(), b.Tail()
	}
	if lastHead != 200 {
		t.Errorf("head = %d, want 200 (absolute offsets never wrap)", lastHead)
	}
}

func TestReadAt(t *testing.T) {
	b := New(16)
	b.Write([]byte("abcdefgh"))
	got := b.ReadAt(2, 3)
	if !bytes.Equal(got, []byte("cde")) {
		t.Errorf("ReadAt(2,3) = %q", got)
	}
	// Spanning the wrap boundary.
	b.Advance(8)
	b.Write([]byte("ijklmnopqrst")) // head now 20, occupies 8..19
	got = b.ReadAt(14, 4)
	if !bytes.Equal(got, []byte("opqr")) {
		t.Errorf("ReadAt(14,4) = %q", got)
	}
}

func TestReadAtPanicsOutsideLiveSpan(t *testing.T) {
	b := New(16)
	b.Write([]byte("abcd"))
	b.Advance(2)
	defer func() {
		if recover() == nil {
			t.Error("ReadAt before tail did not panic")
		}
	}()
	b.ReadAt(0, 2)
}

func TestAdvancePanicsPastHead(t *testing.T) {
	b := New(16)
	b.Write([]byte("ab"))
	defer func() {
		if recover() == nil {
			t.Error("Advance past head did not panic")
		}
	}()
	b.Advance(3)
}

func TestPeekLimit(t *testing.T) {
	b := New(32)
	b.Write([]byte("0123456789"))
	if got := b.Peek(4); !bytes.Equal(got, []byte("0123")) {
		t.Errorf("Peek(4) = %q", got)
	}
	if got := b.Peek(100); len(got) != 10 {
		t.Errorf("Peek(100) returned %d bytes, want 10", len(got))
	}
}

func TestReset(t *testing.T) {
	b := New(16)
	b.Write(make([]byte, 16))
	b.Write([]byte{1}) // dropped
	b.Reset()
	if b.Used() != 0 || b.Head() != 0 || b.Tail() != 0 || b.Dropped() != 0 {
		t.Errorf("after Reset: used=%d head=%d tail=%d dropped=%d",
			b.Used(), b.Head(), b.Tail(), b.Dropped())
	}
}

// Property: data written is read back in FIFO order across arbitrary
// interleavings of writes and consumes.
func TestFIFOProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		b := New(256)
		var expect, got []byte
		for _, c := range chunks {
			if len(c) > 64 {
				c = c[:64]
			}
			if b.Free() < len(c) {
				// Drain to make room.
				got = append(got, b.Peek(-1)...)
				b.Advance(b.Used())
			}
			if !b.Write(c) {
				return false
			}
			expect = append(expect, c...)
		}
		got = append(got, b.Peek(-1)...)
		return bytes.Equal(expect, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Used+Free == Size always.
func TestAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b := New(128)
		for _, o := range ops {
			n := int(o % 32)
			if o%2 == 0 {
				b.Write(make([]byte, n))
			} else {
				if n > b.Used() {
					n = b.Used()
				}
				b.Advance(n)
			}
			if b.Used()+b.Free() != b.Size() || b.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
