package obs

import (
	"net/http"
	"sort"
	"strings"
)

// Router is the small route-table helper nmod and nmogw share. It
// exists to make the failure surface of the HTTP API as uniform as the
// success surface: every unmatched path answers 404 with the standard
// envelope, every matched path with a wrong verb answers 405 (with an
// Allow header) instead of Go's bare 404, and trailing slashes
// normalize to the canonical route instead of silently missing. All of
// that still flows through the metrics middleware, so even "route does
// not exist" shows up in the request counters and the audit log.
type Router struct {
	mux *http.ServeMux
	m   *HTTPMetrics
	// methods collects the verbs registered per path so the 405
	// fallback can advertise them.
	methods map[string][]string
}

// NewRouter builds a Router whose handlers are all wrapped by m. The
// catch-all 404 is registered immediately; per-path 405 fallbacks are
// registered as routes arrive.
func NewRouter(m *HTTPMetrics) *Router {
	rt := &Router{mux: http.NewServeMux(), m: m, methods: map[string][]string{}}
	rt.mux.Handle("/", m.Wrap("other", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, r, http.StatusNotFound, CodeNotFound, "no such route: "+r.URL.Path)
	})))
	return rt
}

// Handle registers handler for one method+path, wrapped in the metrics
// middleware under the combined pattern (the per-route label). mw
// middlewares apply innermost-last, i.e. mw[0] runs first — and all of
// them run inside the metrics wrapper, so early rejects (auth, quota)
// are recorded with their real status class.
func (rt *Router) Handle(method, path string, handler http.Handler, mw ...func(http.Handler) http.Handler) {
	for i := len(mw) - 1; i >= 0; i-- {
		handler = mw[i](handler)
	}
	pattern := method + " " + path
	rt.mux.Handle(pattern, rt.m.Wrap(pattern, handler))

	// First verb on this path: also claim the method-less pattern as
	// the 405 fallback. Go's mux prefers "GET /x" over "/x", so the
	// fallback only fires for unregistered verbs. {$} patterns can't
	// take a bare-path fallback without swallowing the subtree; the
	// root 404 covers them.
	if !strings.Contains(path, "{$}") {
		if _, seen := rt.methods[path]; !seen {
			rt.mux.Handle(path, rt.m.Wrap("other", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				allow := append([]string(nil), rt.methods[path]...)
				sort.Strings(allow)
				w.Header().Set("Allow", strings.Join(allow, ", "))
				WriteError(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
					r.Method+" not allowed on "+path)
			})))
		}
	}
	rt.methods[path] = append(rt.methods[path], method)
}

// HandleFunc is Handle for plain funcs.
func (rt *Router) HandleFunc(method, path string, fn http.HandlerFunc, mw ...func(http.Handler) http.Handler) {
	rt.Handle(method, path, fn, mw...)
}

// ServeHTTP normalizes trailing slashes ("/v1/jobs/" serves as
// "/v1/jobs" instead of 404ing) and dispatches. Only the routing view
// of the URL is rewritten; handlers still see the canonical path.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p := r.URL.Path; len(p) > 1 && strings.HasSuffix(p, "/") {
		trimmed := strings.TrimRight(p, "/")
		if trimmed == "" {
			trimmed = "/"
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = trimmed
		if r2.URL.RawPath != "" {
			r2.URL.RawPath = strings.TrimRight(r2.URL.RawPath, "/")
			if r2.URL.RawPath == "" {
				r2.URL.RawPath = "/"
			}
		}
		r = r2
	}
	rt.mux.ServeHTTP(w, r)
}
