package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the text exposition format end to end:
// HELP/TYPE lines, family name sorting, label rendering with spec
// escaping, counter/gauge/func values, and the full histogram
// _bucket/_sum/_count shape with cumulative le buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", L("route", "/v1/jobs"), L("code", "2xx")).Add(3)
	r.Gauge("test_in_flight", "In-flight requests.").Set(2)
	r.GaugeFunc("test_build_info", `Escaped help: backslash \ and
newline.`, func() float64 { return 1 }, L("version", "a\"b\\c\nd"))
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1}, L("route", "/v1/jobs"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_build_info Escaped help: backslash \\ and\nnewline.
# TYPE test_build_info gauge
test_build_info{version="a\"b\\c\nd"} 1
# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{route="/v1/jobs",le="0.1"} 1
test_latency_seconds_bucket{route="/v1/jobs",le="1"} 3
test_latency_seconds_bucket{route="/v1/jobs",le="+Inf"} 4
test_latency_seconds_sum{route="/v1/jobs"} 6.05
test_latency_seconds_count{route="/v1/jobs"} 4
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{route="/v1/jobs",code="2xx"} 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestHistogramInvariants checks the scraper-validated invariants on a
// populated histogram: buckets are monotonically non-decreasing in le
// order, the +Inf bucket equals _count, and boundary values land in
// their own bucket (le is an upper *inclusive* bound).
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 8, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 120.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	wantLines := []string{
		`test_h_bucket{le="1"} 2`, // 0.5 and the boundary 1 itself
		`test_h_bucket{le="2"} 4`,
		`test_h_bucket{le="4"} 6`,
		`test_h_bucket{le="+Inf"} 8`,
		`test_h_count 8`,
	}
	for _, line := range wantLines {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing %q in:\n%s", line, b.String())
		}
	}
}

// TestIdempotentRegistration pins the rebuild-over-live-scheduler
// contract: the same (name, labels) returns the identical instrument,
// distinct labels create distinct series, a func re-registration
// replaces the closure, and a kind clash panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "", L("x", "1"))
	b := r.Counter("test_total", "", L("x", "1"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := r.Counter("test_total", "", L("x", "2")); c == a {
		t.Error("distinct labels returned the same counter")
	}

	val := 1.0
	r.GaugeFunc("test_fn", "", func() float64 { return val })
	r.GaugeFunc("test_fn", "", func() float64 { return 42 })
	var out strings.Builder
	r.WritePrometheus(&out)
	if !strings.Contains(out.String(), "test_fn 42\n") {
		t.Errorf("re-registered func not replaced:\n%s", out.String())
	}

	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("test_total", "")
}

// TestInvalidNamePanics pins the registration-time name validation.
func TestInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "9leading", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines while scraping — run under -race in CI — and checks
// nothing is lost.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	h := r.Histogram("test_h", "", []float64{1, 10})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				if i%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestHandler pins the scrape endpoint's content type and body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "Things.").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_total 7\n") {
		t.Errorf("scrape body:\n%s", b.String())
	}
}
