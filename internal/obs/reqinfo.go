package obs

import "context"

// ReqInfo is the mutable per-request record the metrics middleware
// installs in the context before the handler chain runs. Layers that
// learn something about the request as it descends — the auth
// middleware resolving the tenant, WriteError stamping the error code
// — write it here, and the middleware's deferred accounting (audit
// line, per-tenant series) reads the final values on the way back out.
// Only the request's own goroutine touches it, so plain fields suffice.
type ReqInfo struct {
	// Tenant is the authenticated principal's tenant ("" before the
	// auth layer runs, or when no auth layer is mounted).
	Tenant string
	// ErrCode is the envelope code of the response when the request
	// failed ("" for successes).
	ErrCode string
}

type reqInfoKey struct{}

// WithReqInfo attaches a fresh ReqInfo holder to the context.
func WithReqInfo(ctx context.Context, info *ReqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, info)
}

// ReqInfoFrom returns the context's holder (nil when the metrics
// middleware is not mounted, e.g. bare handlers under test).
func ReqInfoFrom(ctx context.Context) *ReqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*ReqInfo)
	return info
}

// SetTenant records the request's authenticated tenant (no-op without
// a holder).
func SetTenant(ctx context.Context, tenant string) {
	if info := ReqInfoFrom(ctx); info != nil {
		info.Tenant = tenant
	}
}

// SetErrCode records the envelope code of a failed response (no-op
// without a holder).
func SetErrCode(ctx context.Context, code string) {
	if info := ReqInfoFrom(ctx); info != nil {
		info.ErrCode = code
	}
}
