// Package obs is the fleet's dependency-free observability core: a
// metrics registry with atomic hot paths and Prometheus text-format
// exposition, HTTP middleware that instruments any handler by route
// and status class, request-ID minting/propagation, a JSONL audit
// sink, and a pprof debug handler.
//
// The package deliberately has no third-party dependencies — the
// container bakes in no Prometheus client library, and the subset the
// fleet needs (counters, gauges, fixed-bucket histograms, text
// exposition 0.0.4) is small enough to own. The design constraint
// that matters is the hot path: Counter.Add and Histogram.Observe are
// a handful of atomic operations with zero allocation, so wiring them
// through the trace data plane and the scheduler does not move the
// benchmarks the CI watchlist gates on.
//
// A Registry is the single source of truth: the same Counter that
// backs a `/v1/stats` JSON field is rendered by `/metrics`, so the
// two views cannot drift (service.TestMetricsStatsAgree pins this).
// Pre-existing atomics that live in tight data-plane structs
// (zerocopy.Counters, the cache's tier accounting) join the registry
// as func-backed metrics read at scrape time — still one underlying
// word per counter.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Buckets are cumulative at
// exposition (Prometheus `le` semantics); observation is one atomic
// increment into the owning bucket plus a CAS-add into the float sum,
// allocation-free.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Label is one metric dimension, fixed at registration time — there
// is no per-observation label lookup, which is what keeps the hot
// path to plain atomics.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family. Exactly one of
// c/g/h/fn is set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups every series of one metric name.
type family struct {
	name, help string
	kind       kind
	series     []*series
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration is idempotent: asking for an existing
// (name, labels) pair returns the same instrument, so a handler layer
// rebuilt over a live scheduler keeps counting into the same words.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, nil)
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for monotonic atomics that live elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, labels, fn)
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, nil)
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, fn)
}

// Histogram registers (or returns the existing) histogram with the
// given ascending upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, nil)
	if s.h == nil {
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return s.h
}

// register finds or creates the (family, series) slot. Mismatched
// re-registration (same name, different kind) is a programming error
// and panics; re-registering a func metric replaces its closure, so a
// rebuilt server layer reads from its live sources, not a stale
// capture.
func (r *Registry) register(name, help string, k kind, labels []Label, fn func() float64) *series {
	mustValidName(name)
	for _, l := range labels {
		mustValidName(l.Key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.fams[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, f.kind))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			if fn != nil {
				s.fn = fn
			}
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), fn: fn}
	f.series = append(f.series, s)
	return s
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustValidName(name string) {
	if name == "" {
		panic("obs: empty metric or label name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric or label name %q", name))
		}
	}
}

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4: families sorted by name, series in registration
// order, label values escaped per the spec.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		writeFamily(&b, r.fams[n])
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, f *family) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range f.series {
		switch {
		case s.h != nil:
			writeHistogram(b, f.name, s)
		case s.fn != nil:
			writeSeries(b, f.name, s.labels, formatFloat(s.fn()))
		case s.c != nil:
			writeSeries(b, f.name, s.labels, strconv.FormatUint(s.c.Value(), 10))
		case s.g != nil:
			writeSeries(b, f.name, s.labels, strconv.FormatInt(s.g.Value(), 10))
		}
	}
}

// writeHistogram renders the `le`-cumulative buckets plus _sum and
// _count. Count is read first and the +Inf bucket forced to it, so a
// scrape racing Observe still satisfies the invariant
// `_count == bucket{le="+Inf"}` that scrapers validate.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	count := h.Count()
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if cum > count {
			cum = count
		}
		writeSeries(b, name+"_bucket", append(s.labels, L("le", formatFloat(bound))),
			strconv.FormatUint(cum, 10))
	}
	writeSeries(b, name+"_bucket", append(s.labels, L("le", "+Inf")),
		strconv.FormatUint(count, 10))
	writeSeries(b, name+"_sum", s.labels, formatFloat(h.Sum()))
	writeSeries(b, name+"_count", s.labels, strconv.FormatUint(count, 10))
}

func writeSeries(b *strings.Builder, name string, labels []Label, value string) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf spelled out.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a GET /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
