package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkMetricsOverhead prices the middleware: the same handler
// bare vs wrapped, driven through the in-process ServeHTTP path so the
// delta is pure instrumentation (request-ID mint, recorder, atomics,
// deferred record), not network noise. The CI watchlist gates on it.
func BenchmarkMetricsOverhead(b *testing.B) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	run := func(b *testing.B, h http.Handler) {
		req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, handler) })
	b.Run("instrumented", func(b *testing.B) {
		m := NewHTTPMetrics(NewRegistry(), nil)
		run(b, m.Wrap("GET /v1/healthz", handler))
	})
}

// BenchmarkObserve prices the raw instruments' hot paths.
func BenchmarkObserve(b *testing.B) {
	reg := NewRegistry()
	b.Run("counter", func(b *testing.B) {
		c := reg.Counter("bench_total", "")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram", func(b *testing.B) {
		h := reg.Histogram("bench_seconds", "", LatencyBuckets)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(0.0042)
			}
		})
	})
}
