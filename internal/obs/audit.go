package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one audit record: an HTTP request served (kind "http") or
// a job lifecycle transition (kind "job"). One JSON object per line,
// MIG-style — greppable, `jq`-able, and append-only.
type Event struct {
	// Time is RFC3339Nano UTC, stamped at Log time when empty.
	Time string `json:"ts,omitempty"`
	// Kind is "http" or "job".
	Kind string `json:"kind"`
	// ReqID is the request ID that follows the work across tiers.
	ReqID string `json:"req_id,omitempty"`
	// Tenant is the authenticated principal the work ran as ("" before
	// the auth layer existed, or for unauthenticated routes).
	Tenant string `json:"tenant,omitempty"`
	// Code is the stable envelope error code of rejected requests
	// ("" for successes) — one grep joins a client-visible failure to
	// its audit line.
	Code string `json:"code,omitempty"`

	// HTTP fields.
	Method string  `json:"method,omitempty"`
	Path   string  `json:"path,omitempty"`
	Status int     `json:"status,omitempty"`
	Bytes  int64   `json:"bytes,omitempty"`
	DurMs  float64 `json:"dur_ms,omitempty"`

	// Job fields.
	Job   string `json:"job,omitempty"`
	Key   string `json:"key,omitempty"`
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// AuditLog is an append-only JSONL sink. A nil *AuditLog is a valid
// no-op sink, so every call site can log unconditionally and auditing
// stays a single -audit-log flag away. Writes are serialized by one
// mutex — audit volume is one line per request/transition, far below
// where lock contention would show.
type AuditLog struct {
	mu sync.Mutex
	w  io.Writer
	f  *os.File
}

// OpenAudit opens (creating if needed) an append-only JSONL audit
// file. Opening with O_APPEND keeps concurrent daemon instances from
// interleaving partial lines: each Write lands whole.
func OpenAudit(path string) (*AuditLog, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &AuditLog{w: f, f: f}, nil
}

// NewAuditWriter wraps any writer as an audit sink (tests, stderr).
func NewAuditWriter(w io.Writer) *AuditLog { return &AuditLog{w: w} }

// Log appends one event. Safe on a nil receiver.
func (a *AuditLog) Log(ev Event) {
	if a == nil {
		return
	}
	if ev.Time == "" {
		ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return // an Event is always marshalable; defensive only
	}
	line = append(line, '\n')
	a.mu.Lock()
	a.w.Write(line)
	a.mu.Unlock()
}

// Close closes the underlying file (no-op for writer-backed and nil
// sinks).
func (a *AuditLog) Close() error {
	if a == nil || a.f == nil {
		return nil
	}
	return a.f.Close()
}
