package obs

import (
	"io"
	"net/http"
	"sync"
	"time"
)

// Default bucket layouts. Latency spans the fleet's spread: a cache
// hit answers in well under a millisecond, a cold fig8 sweep runs for
// tens of seconds, and a trace download sits in between. Sizes span a
// JSON status line through a multi-hundred-MiB trace blob. Phases use
// the latency layout with a longer tail (queue wait under load).
var (
	LatencyBuckets = []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2.5, 10, 60}
	SizeBuckets    = []float64{512, 8 << 10, 128 << 10, 1 << 20, 16 << 20, 256 << 20}
	PhaseBuckets   = []float64{0.0005, 0.002, 0.01, 0.05, 0.25, 1, 5, 30, 120}
)

// HTTPMetrics instruments handlers: request counts by route and
// status class, one global in-flight gauge, and per-route latency and
// response-size histograms. Routes are fixed strings (the mux
// patterns), registered eagerly at Wrap time so every series exists
// from the first scrape — the hot path never touches the registry.
type HTTPMetrics struct {
	reg      *Registry
	audit    *AuditLog
	inFlight *Gauge

	// Per-tenant series are registered lazily the first time a tenant
	// appears (tenants are authenticated principals, so the label set
	// is bounded by the identity space, not by arbitrary requests).
	// The maps cache instruments so the per-request path is one lookup,
	// not a registry walk.
	tmu          sync.Mutex
	tenantReqs   map[string]*Counter // key: tenant + "\x00" + class
	tenantBytes_ map[string]*Counter // key: tenant + "\x00" + route
}

// NewHTTPMetrics builds the middleware factory. audit may be nil.
func NewHTTPMetrics(reg *Registry, audit *AuditLog) *HTTPMetrics {
	return &HTTPMetrics{
		reg:          reg,
		audit:        audit,
		inFlight:     reg.Gauge("nmo_http_in_flight", "HTTP requests currently being served."),
		tenantReqs:   make(map[string]*Counter),
		tenantBytes_: make(map[string]*Counter),
	}
}

// tenantClass returns the tenant's request counter for one status
// class, registering it on first use.
func (m *HTTPMetrics) tenantClass(tenant, class string) *Counter {
	key := tenant + "\x00" + class
	m.tmu.Lock()
	defer m.tmu.Unlock()
	c := m.tenantReqs[key]
	if c == nil {
		c = m.reg.Counter("nmo_tenant_http_requests_total",
			"HTTP requests served, by tenant and status class.",
			L("tenant", tenant), L("code", class))
		m.tenantReqs[key] = c
	}
	return c
}

// tenantBytes returns the tenant's response-byte counter for one
// route. On the trace route this is exactly "trace bytes served per
// tenant" — the response recorder counts sendfile'd bytes too (its
// ReadFrom seam returns the kernel-moved total).
func (m *HTTPMetrics) tenantBytes(tenant, route string) *Counter {
	key := tenant + "\x00" + route
	m.tmu.Lock()
	defer m.tmu.Unlock()
	c := m.tenantBytes_[key]
	if c == nil {
		c = m.reg.Counter("nmo_tenant_http_response_bytes_total",
			"HTTP response body bytes, by tenant and route.",
			L("tenant", tenant), L("route", route))
		m.tenantBytes_[key] = c
	}
	return c
}

// Audit returns the middleware's audit sink (nil when none).
func (m *HTTPMetrics) Audit() *AuditLog { return m.audit }

// Wrap instruments one route. It also owns the request-ID boundary:
// an inbound X-Nmo-Request-Id is accepted (the gateway already minted
// one), otherwise a fresh ID is minted; either way the ID is placed
// in the request context, echoed on the response, and stamped on the
// audit line.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	classes := [5]*Counter{}
	for i := range classes {
		classes[i] = m.reg.Counter("nmo_http_requests_total",
			"HTTP requests served, by route and status class.",
			L("route", route), L("code", string('1'+byte(i))+"xx"))
	}
	lat := m.reg.Histogram("nmo_http_request_seconds",
		"HTTP request latency by route.", LatencyBuckets, L("route", route))
	size := m.reg.Histogram("nmo_http_response_bytes",
		"HTTP response body bytes by route.", SizeBuckets, L("route", route))

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		info := &ReqInfo{}
		r = r.WithContext(WithReqInfo(WithRequestID(r.Context(), id), info))
		w.Header().Set(RequestIDHeader, id)

		rec := responseRecorder{w: w, status: http.StatusOK}
		start := time.Now()
		m.inFlight.Inc()
		defer func() {
			m.inFlight.Dec()
			d := time.Since(start)
			cls := rec.status / 100
			if cls < 1 || cls > 5 {
				cls = 5
			}
			classes[cls-1].Inc()
			lat.Observe(d.Seconds())
			size.Observe(float64(rec.bytes))
			// Early-middleware rejects (auth, quota) reach here with
			// the real status and code: the auth layer runs inside this
			// wrapper, and WriteError stamped the code on the holder.
			if info.Tenant != "" {
				m.tenantClass(info.Tenant, string('1'+byte(cls-1))+"xx").Inc()
				m.tenantBytes(info.Tenant, route).Add(uint64(rec.bytes))
			}
			m.audit.Log(Event{
				Kind: "http", ReqID: id, Method: r.Method, Path: r.URL.Path,
				Status: rec.status, Bytes: rec.bytes,
				DurMs:  float64(d.Nanoseconds()) / 1e6,
				Tenant: info.Tenant, Code: info.ErrCode,
			})
		}()
		next.ServeHTTP(&rec, r)
	})
}

// responseRecorder captures status and body bytes while staying
// transparent to the data plane: it forwards Flush (the sendfile
// header flush) and ReadFrom (the seam net/http's sendfile/splice
// offload hangs off — wrapping it away would silently degrade every
// zero-copy serve to the buffered fallback).
type responseRecorder struct {
	w      http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *responseRecorder) Header() http.Header { return r.w.Header() }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.w.WriteHeader(code)
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.w.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *responseRecorder) Flush() {
	if fl, ok := r.w.(http.Flusher); ok {
		fl.Flush()
	}
}

// ReadFrom keeps io.Copy offload-eligible: the source reaches the
// underlying ResponseWriter's ReaderFrom intact (net/http hands it to
// the connection, where zerocopy.Conn recognizes File/SocketSections
// and drives sendfile/splice). Without a ReaderFrom seam here, the
// instrumented handler would copy through a buffer instead.
func (r *responseRecorder) ReadFrom(src io.Reader) (int64, error) {
	r.wrote = true
	if rf, ok := r.w.(io.ReaderFrom); ok {
		n, err := rf.ReadFrom(src)
		r.bytes += n
		return n, err
	}
	n, err := io.Copy(r.w, src)
	r.bytes += n
	return n, err
}
