package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Stable machine-readable error codes. Every non-2xx response on every
// tier carries exactly one of these in its envelope, so clients and
// dashboards branch on the code, never on message text. The set is
// small and closed on purpose: a new failure mode gets a new constant
// here, not an ad-hoc string at a call site.
const (
	// CodeBadSpec: the job spec failed decoding or validation (400).
	CodeBadSpec = "bad_spec"
	// CodeBadRequest: malformed query or path parameters (400).
	CodeBadRequest = "bad_request"
	// CodeUnauthorized: missing or invalid credentials (401).
	CodeUnauthorized = "unauthorized"
	// CodeNotFound: no such job, trace, or route (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the route exists, the verb does not (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeConflict: the job exists but is not in a servable state (409).
	CodeConflict = "conflict"
	// CodeQueueFull: the scheduler queue is at capacity (429).
	CodeQueueFull = "queue_full"
	// CodeQuotaExceeded: a per-tenant rate or in-flight quota tripped
	// (429).
	CodeQuotaExceeded = "quota_exceeded"
	// CodeInternal: an unexpected server-side failure (500).
	CodeInternal = "internal"
	// CodeUpstream: a gateway could not reach or parse a shard (502).
	CodeUpstream = "upstream"
	// CodeShutdown: the daemon is draining and takes no new work (503).
	CodeShutdown = "shutdown"
)

// APIError is the one JSON error body every tier answers non-2xx
// requests with, wrapped in an envelope: {"error": {"code": ...,
// "message": ..., "request_id": ...}}. Server-side it is written by
// WriteError; client-side service.Client decodes it back into the same
// type (Status filled from the HTTP response), so a CLI failure prints
// the stable code and the request ID to grep the fleet's audit logs
// with.
type APIError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
	// Status is the HTTP status the envelope traveled on — client-side
	// context, never serialized (the transport already carries it).
	Status int `json:"-"`
}

// Error formats the full failure context: code, message, HTTP status,
// and request ID when present.
func (e *APIError) Error() string {
	s := fmt.Sprintf("nmod: %s: %s", e.Code, e.Message)
	switch {
	case e.Status != 0 && e.RequestID != "":
		s += fmt.Sprintf(" (HTTP %d, request %s)", e.Status, e.RequestID)
	case e.Status != 0:
		s += fmt.Sprintf(" (HTTP %d)", e.Status)
	case e.RequestID != "":
		s += fmt.Sprintf(" (request %s)", e.RequestID)
	}
	return s
}

// Is matches two APIErrors by code (and status when the target pins
// one), so callers write errors.Is(err, &obs.APIError{Code:
// obs.CodeQueueFull}) instead of string-matching messages.
func (e *APIError) Is(target error) bool {
	t, ok := target.(*APIError)
	if !ok {
		return false
	}
	return t.Code == e.Code && (t.Status == 0 || t.Status == e.Status)
}

// errEnvelope is the wire shape: the error object under one "error"
// key, so success bodies (which never have that key) and failures are
// structurally disjoint.
type errEnvelope struct {
	Error *APIError `json:"error"`
}

// WriteError writes the standard JSON error envelope. The request ID
// is read from the request context (the metrics middleware placed it
// there), and the code is recorded on the request's ReqInfo so the
// middleware's audit line carries it — a rejected request audits with
// the same code the client saw.
func WriteError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	var reqID string
	if r != nil {
		reqID = RequestID(r.Context())
		SetErrCode(r.Context(), code)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errEnvelope{Error: &APIError{
		Code: code, Message: msg, RequestID: reqID,
	}})
}
