package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors the uptime and start-time metrics. Package
// init runs before main, so this is process start for all practical
// purposes.
var processStart = time.Now()

// Uptime returns seconds since process start.
func Uptime() float64 { return time.Since(processStart).Seconds() }

// Version returns the main module's version from build info
// ("(devel)" for plain `go build` trees).
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// RegisterBuildInfo adds the identity metrics both daemons expose:
// the constant-1 nmo_build_info gauge whose labels carry what is
// running, and the process start time in the Prometheus convention
// (so `time() - nmo_process_start_time_seconds` is uptime).
func RegisterBuildInfo(reg *Registry) {
	reg.GaugeFunc("nmo_build_info",
		"Constant 1; labels identify the running build.",
		func() float64 { return 1 },
		L("version", Version()), L("goversion", runtime.Version()), L("goos", runtime.GOOS))
	start := float64(processStart.UnixNano()) / 1e9
	reg.GaugeFunc("nmo_process_start_time_seconds",
		"Unix time the process started.",
		func() float64 { return start })
}

// DebugHandler serves the net/http/pprof endpoints under
// /debug/pprof/ on a private mux — the daemons mount it only behind
// the opt-in -debug-addr listener, never on the public API port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
