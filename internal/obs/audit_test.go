package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestAuditAppend pins the file sink: events append as one JSON object
// per line, reopening keeps the earlier lines (O_APPEND), and the
// timestamp is stamped in RFC3339Nano when absent.
func TestAuditAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	a, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	a.Log(Event{Kind: "http", ReqID: "r1", Status: 200})
	a.Log(Event{Kind: "job", Job: "j1", State: "queued"})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	b.Log(Event{Kind: "job", Job: "j1", State: "done"})
	b.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (reopen must append)", len(events))
	}
	if events[0].ReqID != "r1" || events[2].State != "done" {
		t.Errorf("events out of order: %+v", events)
	}
	for _, ev := range events {
		if _, err := time.Parse(time.RFC3339Nano, ev.Time); err != nil {
			t.Errorf("bad timestamp %q: %v", ev.Time, err)
		}
	}
}

// TestAuditNilSafe pins the nil-receiver contract every call site
// relies on.
func TestAuditNilSafe(t *testing.T) {
	var a *AuditLog
	a.Log(Event{Kind: "http"}) // must not panic
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditConcurrent checks lines land whole under concurrent
// writers (run with -race in CI).
func TestAuditConcurrent(t *testing.T) {
	var buf bytes.Buffer
	a := NewAuditWriter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Log(Event{Kind: "http", Status: w*1000 + i})
			}
		}(w)
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("torn line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 8*50 {
		t.Errorf("got %d lines, want %d", n, 8*50)
	}
}
