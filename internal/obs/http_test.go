package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestMiddlewareStatusClasses drives one wrapped route through every
// status class and checks each lands in its own counter, with the
// other classes untouched.
func TestMiddlewareStatusClasses(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil)
	h := m.Wrap("GET /probe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code := 0
		fmt.Sscanf(r.URL.Query().Get("code"), "%d", &code)
		w.WriteHeader(code)
		w.Write([]byte("body"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	codes := map[int]int{200: 3, 204: 1, 404: 2, 500: 1, 302: 1}
	for code, n := range codes {
		for i := 0; i < n; i++ {
			resp, err := srv.Client().Get(fmt.Sprintf("%s/?code=%d", srv.URL, code))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	out := scrape(t, reg)
	for _, want := range []string{
		`nmo_http_requests_total{route="GET /probe",code="2xx"} 4`,
		`nmo_http_requests_total{route="GET /probe",code="3xx"} 1`,
		`nmo_http_requests_total{route="GET /probe",code="4xx"} 2`,
		`nmo_http_requests_total{route="GET /probe",code="5xx"} 1`,
		`nmo_http_requests_total{route="GET /probe",code="1xx"} 0`,
		`nmo_http_request_seconds_count{route="GET /probe"} 8`,
		`nmo_http_in_flight 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in scrape:\n%s", want, out)
		}
	}
}

// TestMiddlewareBytes pins the response-size accounting: the _sum of
// the size histogram is the exact body bytes written, for both Write
// and implicit-200 paths.
func TestMiddlewareBytes(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil)
	body := bytes.Repeat([]byte("x"), 1000)
	h := m.Wrap("GET /blob", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body) // implicit 200
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, resp); len(got) != 1000 {
			t.Fatalf("body length %d", len(got))
		}
		resp.Body.Close()
	}
	out := scrape(t, reg)
	if !strings.Contains(out, `nmo_http_response_bytes_sum{route="GET /blob"} 3000`+"\n") {
		t.Errorf("byte sum missing:\n%s", out)
	}
	if !strings.Contains(out, `nmo_http_requests_total{route="GET /blob",code="2xx"} 3`+"\n") {
		t.Errorf("implicit 200 not counted as 2xx:\n%s", out)
	}
}

// TestRequestIDBoundary pins the middleware's request-ID contract:
// minted when absent, accepted when present, always placed in the
// context and echoed on the response header.
func TestRequestIDBoundary(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil)
	var seen string
	h := m.Wrap("GET /id", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Minted: no inbound header.
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(RequestIDHeader)
	if minted == "" || seen != minted {
		t.Fatalf("minted ID %q, handler saw %q", minted, seen)
	}

	// Accepted: inbound header wins (the gateway already minted).
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(RequestIDHeader, "r-upstream")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "r-upstream" {
		t.Errorf("echoed %q, want the inbound ID", got)
	}
	if seen != "r-upstream" {
		t.Errorf("handler saw %q, want the inbound ID", seen)
	}

	// Fresh mints are distinct.
	if a, b := NewRequestID(), NewRequestID(); a == b {
		t.Errorf("NewRequestID repeated %q", a)
	}
}

// TestRecorderPassthrough pins the data-plane transparency of the
// response recorder: it must expose Flush and delegate ReadFrom to the
// underlying writer (the seam net/http's sendfile offload hangs off),
// while still counting the bytes.
func TestRecorderPassthrough(t *testing.T) {
	under := &recordingRW{}
	rec := responseRecorder{w: under, status: http.StatusOK}

	if _, ok := interface{}(&rec).(http.Flusher); !ok {
		t.Fatal("recorder does not implement http.Flusher")
	}
	rec.Flush()
	if !under.flushed {
		t.Error("Flush not delegated")
	}

	// The bare Reader hides strings.Reader's WriteTo so io.Copy takes
	// the dst.ReadFrom branch — the same shape as the trace handler's
	// io.Copy(w, &h.fs) sendfile path.
	n, err := io.Copy(&rec, struct{ io.Reader }{strings.NewReader("0123456789")})
	if err != nil || n != 10 {
		t.Fatalf("copy: %d, %v", n, err)
	}
	if !under.readFrom {
		t.Error("io.Copy did not reach the underlying ReadFrom")
	}
	if rec.bytes != 10 {
		t.Errorf("recorded %d bytes, want 10", rec.bytes)
	}
}

// recordingRW is a ResponseWriter that records whether the offload
// seams were exercised.
type recordingRW struct {
	hdr      http.Header
	flushed  bool
	readFrom bool
	buf      bytes.Buffer
}

func (r *recordingRW) Header() http.Header {
	if r.hdr == nil {
		r.hdr = make(http.Header)
	}
	return r.hdr
}
func (r *recordingRW) WriteHeader(int)             {}
func (r *recordingRW) Write(p []byte) (int, error) { return r.buf.Write(p) }
func (r *recordingRW) Flush()                      { r.flushed = true }
func (r *recordingRW) ReadFrom(src io.Reader) (int64, error) {
	r.readFrom = true
	return io.Copy(&r.buf, src)
}

// TestMiddlewareAudit pins the HTTP audit line: one JSON object per
// request with the ID, method, path, status, and byte count.
func TestMiddlewareAudit(t *testing.T) {
	var sink bytes.Buffer
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, NewAuditWriter(&sink))
	h := m.Wrap("GET /a", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/a?x=1", nil)
	req.Header.Set(RequestIDHeader, "r-audit")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var ev Event
	if err := json.Unmarshal(sink.Bytes(), &ev); err != nil {
		t.Fatalf("audit line %q: %v", sink.String(), err)
	}
	want := Event{Time: ev.Time, DurMs: ev.DurMs, Kind: "http", ReqID: "r-audit",
		Method: "GET", Path: "/a", Status: http.StatusTeapot, Bytes: 15}
	if ev != want {
		t.Errorf("audit event = %+v, want %+v", ev, want)
	}
	if ev.Time == "" || ev.DurMs < 0 {
		t.Errorf("missing timestamp or duration: %+v", ev)
	}
}
