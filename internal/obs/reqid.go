package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader carries the request ID across tiers: minted at the
// outermost hop (the gateway, or the shard for direct clients),
// echoed on every response, and forwarded on every proxied upstream
// request — so one ID follows a job from the client's POST through
// gateway → shard → job record → audit line.
const RequestIDHeader = "X-Nmo-Request-Id"

type reqIDKey struct{}

// WithRequestID attaches a request ID to a context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the context's request ID ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// NewRequestID mints a random request ID (r + 16 hex chars).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "r" + hex.EncodeToString(b[:])
}
