package postproc

import (
	"sort"

	"nmo/internal/trace"
)

// False-sharing detection — one of the memory-centric analyses the
// paper's introduction motivates ("identify hot memory regions that
// cause extensive false sharing"). A cache line written by one core
// and accessed by others forces coherence traffic even when the cores
// touch disjoint bytes; sampled traces reveal candidates as lines
// with multi-core access where at least one core writes and the
// per-core byte footprints are disjoint.

// LineReport describes one suspicious cache line.
type LineReport struct {
	// Line is the line-aligned base address.
	Line uint64
	// Cores is the number of distinct cores that touched the line.
	Cores int
	// Writers is the number of distinct cores that wrote it.
	Writers int
	// Samples is the number of samples on the line.
	Samples int
	// Disjoint is true when no two cores' sampled byte offsets
	// overlap — the signature of *false* (rather than true) sharing.
	Disjoint bool
	// MeanLatency is the mean sampled latency on the line; false
	// sharing inflates it via coherence misses.
	MeanLatency float64
}

// FalseSharing scans the trace for shared-written cache lines of the
// given size (64 on the testbed) and returns candidates sorted by
// sample count. minCores filters lines touched by fewer cores.
func FalseSharing(tr *trace.Trace, lineBytes uint64, minCores int) []LineReport {
	if lineBytes == 0 {
		lineBytes = 64
	}
	if minCores < 2 {
		minCores = 2
	}
	type lineState struct {
		cores   map[int16]map[uint64]bool // core -> byte offsets sampled
		writers map[int16]bool
		samples int
		latSum  float64
	}
	lines := map[uint64]*lineState{}
	for i := range tr.Samples {
		s := &tr.Samples[i]
		line := s.VA / lineBytes * lineBytes
		st := lines[line]
		if st == nil {
			st = &lineState{cores: map[int16]map[uint64]bool{}, writers: map[int16]bool{}}
			lines[line] = st
		}
		offs := st.cores[s.Core]
		if offs == nil {
			offs = map[uint64]bool{}
			st.cores[s.Core] = offs
		}
		offs[s.VA-line] = true
		if s.Store {
			st.writers[s.Core] = true
		}
		st.samples++
		st.latSum += float64(s.Lat)
	}

	var out []LineReport
	for line, st := range lines {
		if len(st.cores) < minCores || len(st.writers) == 0 {
			continue
		}
		out = append(out, LineReport{
			Line:        line,
			Cores:       len(st.cores),
			Writers:     len(st.writers),
			Samples:     st.samples,
			Disjoint:    disjointOffsets(st.cores),
			MeanLatency: st.latSum / float64(st.samples),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// disjointOffsets reports whether every sampled byte offset belongs to
// exactly one core.
func disjointOffsets(cores map[int16]map[uint64]bool) bool {
	seen := map[uint64]int16{}
	for core, offs := range cores {
		for off := range offs {
			if prev, ok := seen[off]; ok && prev != core {
				return false
			}
			seen[off] = core
		}
	}
	return true
}
