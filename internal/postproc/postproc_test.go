package postproc

import (
	"testing"

	"nmo/internal/trace"
)

func testTrace() *trace.Trace {
	return &trace.Trace{
		Workload: "t",
		Regions:  []string{"a", "b"},
		Kernels:  []string{"k0"},
		Samples: []trace.Sample{
			{TimeNs: 100, VA: 0x1000, PC: 0x40, Lat: 10, Core: 0, Region: 0, Kernel: 0, Store: true, Level: 0},
			{TimeNs: 200, VA: 0x1008, PC: 0x44, Lat: 200, Core: 1, Region: 0, Kernel: 0, Level: 3},
			{TimeNs: 1200, VA: 0x2000, PC: 0x44, Lat: 40, Core: 0, Region: 1, Kernel: -1, Level: 2},
			{TimeNs: 1300, VA: 0x2040, PC: 0x48, Lat: 45, Core: 2, Region: 1, Kernel: 0, Level: 2},
			{TimeNs: 2500, VA: 0x9000, PC: 0x4c, Lat: 4, Core: 0, Region: -1, Kernel: 0, Level: 0},
		},
	}
}

func TestQueryCountAndFilters(t *testing.T) {
	tr := testTrace()
	if n := Query(tr).Count(); n != 5 {
		t.Errorf("unfiltered count = %d", n)
	}
	if n := Query(tr).Filter(StoresOnly()).Count(); n != 1 {
		t.Errorf("stores = %d", n)
	}
	if n := Query(tr).Filter(LoadsOnly()).Count(); n != 4 {
		t.Errorf("loads = %d", n)
	}
	if n := Query(tr).Filter(MinLatency(40)).Count(); n != 3 {
		t.Errorf("minlat = %d", n)
	}
	if n := Query(tr).Filter(AtLevel(2)).Count(); n != 2 {
		t.Errorf("SLC level = %d", n)
	}
	if n := Query(tr).Filter(OnCore(0)).Count(); n != 3 {
		t.Errorf("core0 = %d", n)
	}
	if n := Query(tr).Filter(InRegion(tr, "b")).Count(); n != 2 {
		t.Errorf("region b = %d", n)
	}
	if n := Query(tr).Filter(InRegion(tr, "missing")).Count(); n != 0 {
		t.Errorf("missing region = %d", n)
	}
	if n := Query(tr).Filter(InKernel(tr, "k0")).Count(); n != 4 {
		t.Errorf("kernel k0 = %d", n)
	}
	if n := Query(tr).Filter(AddrRange(0x1000, 0x2000)).Count(); n != 2 {
		t.Errorf("addr range = %d", n)
	}
	if n := Query(tr).Filter(TimeRange(0, 1000)).Count(); n != 2 {
		t.Errorf("time range = %d", n)
	}
}

func TestQueryComposition(t *testing.T) {
	tr := testTrace()
	base := Query(tr).Filter(LoadsOnly())
	// Adding a filter must not mutate the base query.
	refined := base.Filter(AtLevel(2))
	if base.Count() != 4 {
		t.Errorf("base mutated: %d", base.Count())
	}
	if refined.Count() != 2 {
		t.Errorf("refined = %d", refined.Count())
	}
}

func TestGroupCount(t *testing.T) {
	tr := testTrace()
	groups := Query(tr).GroupCount(ByRegion(tr))
	want := map[string]int{"a": 2, "b": 2, "-": 1}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for _, g := range groups {
		if want[g.Key] != g.Count {
			t.Errorf("group %q = %d, want %d", g.Key, g.Count, want[g.Key])
		}
	}
	// Sorted by key.
	for i := 1; i < len(groups); i++ {
		if groups[i].Key < groups[i-1].Key {
			t.Error("groups not sorted")
		}
	}
}

func TestGroupKeys(t *testing.T) {
	tr := testTrace()
	byCore := Query(tr).GroupCount(ByCore())
	if len(byCore) != 3 || byCore[0].Key != "core00" || byCore[0].Count != 3 {
		t.Errorf("by core = %v", byCore)
	}
	byLevel := Query(tr).GroupCount(ByLevel())
	m := map[string]int{}
	for _, g := range byLevel {
		m[g.Key] = g.Count
	}
	if m["L1"] != 2 || m["SLC"] != 2 || m["DRAM"] != 1 {
		t.Errorf("by level = %v", m)
	}
	byPC := Query(tr).GroupCount(ByPC())
	if len(byPC) != 4 {
		t.Errorf("by pc = %v", byPC)
	}
	byPage := Query(tr).GroupCount(ByPage(0x1000))
	if len(byPage) != 3 {
		t.Errorf("by page = %v", byPage)
	}
	byKernel := Query(tr).GroupCount(ByKernel(tr))
	m = map[string]int{}
	for _, g := range byKernel {
		m[g.Key] = g.Count
	}
	if m["k0"] != 4 || m["-"] != 1 {
		t.Errorf("by kernel = %v", m)
	}
}

func TestTopN(t *testing.T) {
	tr := testTrace()
	top := Query(tr).TopN(ByPC(), 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Key != "0x44" || top[0].Count != 2 {
		t.Errorf("top[0] = %v", top[0])
	}
}

func TestMeanLatency(t *testing.T) {
	tr := testTrace()
	got := Query(tr).Filter(AtLevel(2)).MeanLatency()
	if got != 42.5 {
		t.Errorf("mean = %v, want 42.5", got)
	}
	if Query(&trace.Trace{}).MeanLatency() != 0 {
		t.Error("empty mean not 0")
	}
}

func TestWindow(t *testing.T) {
	tr := testTrace()
	wins := Query(tr).Window(1000)
	if len(wins) != 3 {
		t.Fatalf("windows = %v", wins)
	}
	if wins[0].StartNs != 0 || wins[0].Count != 2 {
		t.Errorf("win0 = %v", wins[0])
	}
	if wins[1].StartNs != 1000 || wins[1].Count != 2 {
		t.Errorf("win1 = %v", wins[1])
	}
	if wins[2].StartNs != 2000 || wins[2].Count != 1 {
		t.Errorf("win2 = %v", wins[2])
	}
	// Zero width coerced to 1.
	if got := Query(tr).Window(0); len(got) != 5 {
		t.Errorf("width-0 windows = %v", got)
	}
}

func TestCollect(t *testing.T) {
	tr := testTrace()
	got := Query(tr).Filter(StoresOnly()).Collect()
	if len(got) != 1 || !got[0].Store {
		t.Errorf("collect = %v", got)
	}
	// Mutating the copy must not affect the trace.
	got[0].VA = 0xdead
	if tr.Samples[0].VA == 0xdead {
		t.Error("Collect aliases the trace")
	}
}

func TestFalseSharingDetection(t *testing.T) {
	// Line 0x1000: core 0 writes offset 0, core 1 reads offset 8 —
	// classic false sharing (disjoint bytes).
	// Line 0x2000: cores 0 and 2 both touch offset 0 — true sharing.
	// Line 0x3000: single core only — not reported.
	tr := &trace.Trace{Samples: []trace.Sample{
		{VA: 0x1000, Core: 0, Store: true, Lat: 300},
		{VA: 0x1008, Core: 1, Lat: 250},
		{VA: 0x1008, Core: 1, Lat: 260},
		{VA: 0x2000, Core: 0, Store: true, Lat: 100},
		{VA: 0x2000, Core: 2, Lat: 90},
		{VA: 0x3000, Core: 0, Store: true, Lat: 10},
	}}
	reports := FalseSharing(tr, 64, 2)
	if len(reports) != 2 {
		t.Fatalf("reports = %+v", reports)
	}
	byLine := map[uint64]LineReport{}
	for _, r := range reports {
		byLine[r.Line] = r
	}
	fs := byLine[0x1000]
	if !fs.Disjoint || fs.Cores != 2 || fs.Writers != 1 {
		t.Errorf("0x1000 = %+v, want disjoint 2-core 1-writer", fs)
	}
	if fs.MeanLatency < 250 {
		t.Errorf("0x1000 mean latency = %v", fs.MeanLatency)
	}
	ts := byLine[0x2000]
	if ts.Disjoint {
		t.Errorf("0x2000 reported disjoint; it is true sharing: %+v", ts)
	}
}

func TestFalseSharingFilters(t *testing.T) {
	// Read-only sharing is not reported (no writers).
	tr := &trace.Trace{Samples: []trace.Sample{
		{VA: 0x1000, Core: 0}, {VA: 0x1008, Core: 1},
	}}
	if got := FalseSharing(tr, 64, 2); len(got) != 0 {
		t.Errorf("read-only line reported: %v", got)
	}
	if got := FalseSharing(&trace.Trace{}, 0, 0); len(got) != 0 {
		t.Errorf("empty trace: %v", got)
	}
}
