package postproc

import (
	"math"
	"sort"

	"nmo/internal/trace"
)

// Agg is an online aggregation fed by a single scan. Run drives any
// number of them over one pass through the source, which is what
// makes multi-table post-processing of an on-disk trace one-scan
// cheap instead of one-scan-per-table.
type Agg interface {
	Add(*trace.Sample)
}

// Run feeds every matching sample to all aggs in one scan and returns
// the source's scan error (nil for in-memory sources).
func (q *Q) Run(aggs ...Agg) error {
	return q.scan(func(s *trace.Sample) {
		for _, a := range aggs {
			a.Add(s)
		}
	})
}

// CountAgg counts matching samples.
type CountAgg struct{ N uint64 }

// Add counts the sample.
func (c *CountAgg) Add(*trace.Sample) { c.N++ }

// GroupCountAgg counts samples per key — the online form of
// Q.GroupCount, shareable across one scan with other aggregations.
type GroupCountAgg struct {
	key Key
	m   map[string]int
}

// NewGroupCount builds a keyed counter.
func NewGroupCount(key Key) *GroupCountAgg {
	return &GroupCountAgg{key: key, m: map[string]int{}}
}

// Add counts the sample under its key.
func (g *GroupCountAgg) Add(s *trace.Sample) { g.m[g.key(s)]++ }

// Groups returns the counts sorted by key.
func (g *GroupCountAgg) Groups() []Group {
	out := make([]Group, 0, len(g.m))
	for k, c := range g.m {
		out = append(out, Group{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counts returns the raw key -> count map.
func (g *GroupCountAgg) Counts() map[string]int { return g.m }

// MeanAgg accumulates the mean of a projected value.
type MeanAgg struct {
	proj   func(*trace.Sample) float64
	sum, n float64
}

// NewMeanLatency builds the mean-latency aggregation.
func NewMeanLatency() *MeanAgg {
	return &MeanAgg{proj: func(s *trace.Sample) float64 { return float64(s.Lat) }}
}

// Add accumulates the sample's projection.
func (m *MeanAgg) Add(s *trace.Sample) { m.sum += m.proj(s); m.n++ }

// Mean returns the accumulated mean (0 for empty).
func (m *MeanAgg) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / m.n
}

// LatHistAgg is an exact latency histogram: Lat is 16-bit, so 64K
// buckets give exact percentiles of arbitrarily large traces in
// constant memory — the out-of-core replacement for sorting all
// latencies.
type LatHistAgg struct {
	buckets []uint64
	n       uint64
}

// NewLatHist builds the latency histogram.
func NewLatHist() *LatHistAgg {
	return &LatHistAgg{buckets: make([]uint64, 1<<16)}
}

// Add buckets the sample's latency.
func (h *LatHistAgg) Add(s *trace.Sample) { h.buckets[s.Lat]++; h.n++ }

// Percentile returns the p-th percentile (0–100) by nearest rank.
func (h *LatHistAgg) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for lat, c := range h.buckets {
		seen += c
		if seen >= rank {
			return float64(lat)
		}
	}
	return float64(len(h.buckets) - 1)
}

// HashAgg folds samples into the rolling trace checksum — used to
// verify a v2 file's footer MD5 during the same scan that feeds the
// tables.
type HashAgg struct{ h *trace.Hash }

// NewHash builds the checksum aggregation.
func NewHash() *HashAgg { return &HashAgg{h: trace.NewHash()} }

// Add hashes the sample.
func (a *HashAgg) Add(s *trace.Sample) { a.h.Emit(s) }

// Sum16 returns the rolling checksum.
func (a *HashAgg) Sum16() [16]byte { return a.h.Sum16() }

// LevelAgg counts samples per memory level — the trace.LevelHist sink
// wearing the Agg interface, so the bucketing rule lives in one place.
type LevelAgg struct{ trace.LevelHist }

// Add counts the sample's data-source level.
func (l *LevelAgg) Add(s *trace.Sample) { l.Emit(s) }

// Summary is the standard single-pass digest of a sample stream: the
// aggregations both CLIs render, produced by one scan so an on-disk
// trace is read exactly once.
type Summary struct {
	Count    uint64
	ByRegion *GroupCountAgg
	ByKernel *GroupCountAgg
	ByCore   *GroupCountAgg
	Levels   LevelAgg
	Lat      *LatHistAgg
	MeanLat  *MeanAgg
	MD5      [16]byte
}

// Summarize runs the standard digest over the query in a single pass.
// withHash folds the rolling checksum into the same pass (Summary.MD5
// stays zero without it) — hashing re-encodes every sample, the most
// expensive per-sample work of the scan, so callers that discard the
// checksum skip it.
func Summarize(q *Q, withHash bool) (*Summary, error) {
	meta := q.Meta()
	s := &Summary{
		ByRegion: NewGroupCount(ByRegionNames(meta.Regions)),
		ByKernel: NewGroupCount(ByKernelNames(meta.Kernels)),
		ByCore:   NewGroupCount(ByCore()),
		Lat:      NewLatHist(),
		MeanLat:  NewMeanLatency(),
	}
	var count CountAgg
	aggs := []Agg{&count, s.ByRegion, s.ByKernel, s.ByCore, &s.Levels, s.Lat, s.MeanLat}
	var hash *HashAgg
	if withHash {
		hash = NewHash()
		aggs = append(aggs, hash)
	}
	if err := q.Run(aggs...); err != nil {
		return nil, err
	}
	s.Count = count.N
	if hash != nil {
		s.MD5 = hash.Sum16()
	}
	return s, nil
}
