package postproc

import (
	"bytes"
	"testing"

	"nmo/internal/trace"
)

// bigTrace spans many v2 blocks with increasing timestamps.
func bigTrace() *trace.Trace {
	tr := &trace.Trace{
		Workload: "big",
		Regions:  []string{"a", "b"},
		Kernels:  []string{"k"},
	}
	for i := 0; i < 640; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{
			TimeNs: uint64(i) * 10,
			VA:     uint64(0x1000 + i*8),
			Lat:    uint16(i % 100),
			Core:   int16(i % 4),
			Region: int16(i%3) - 1,
			Kernel: int16(i%2) - 1,
			Store:  i%2 == 0,
			Level:  uint8(i % 4),
		})
	}
	return tr
}

func v2Reader(t *testing.T, tr *trace.Trace, blockSamples int) *trace.ReaderV2 {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterV2(&buf, tr.Meta(), blockSamples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Samples {
		if err := w.Emit(&tr.Samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.OpenV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// TestQueryOverV2MatchesInMemory runs the same queries against the
// in-memory trace and its v2 serialization: results must agree on
// every combinator.
func TestQueryOverV2MatchesInMemory(t *testing.T) {
	tr := bigTrace()
	rd := v2Reader(t, tr, 32)

	mem, ooc := Query(tr), From(rd)
	if a, b := mem.Count(), ooc.Count(); a != b {
		t.Errorf("count: %d vs %d", a, b)
	}
	if a, b := mem.Filter(StoresOnly()).Count(), ooc.Filter(StoresOnly()).Count(); a != b {
		t.Errorf("stores: %d vs %d", a, b)
	}
	if a, b := mem.MeanLatency(), ooc.MeanLatency(); a != b {
		t.Errorf("mean latency: %v vs %v", a, b)
	}
	ag := mem.GroupCount(ByRegion(tr))
	bg := ooc.GroupCount(ByRegionNames(rd.Meta().Regions))
	if len(ag) != len(bg) {
		t.Fatalf("groups: %v vs %v", ag, bg)
	}
	for i := range ag {
		if ag[i] != bg[i] {
			t.Errorf("group %d: %v vs %v", i, ag[i], bg[i])
		}
	}
}

// TestTimeBetweenPushdownSkipsBlocks: the structured time filter must
// give exact results while the v2 source skips non-overlapping blocks.
func TestTimeBetweenPushdownSkipsBlocks(t *testing.T) {
	tr := bigTrace() // times 0..6390, blocks of 32 cover 320ns each
	rd := v2Reader(t, tr, 32)

	want := Query(tr).Filter(TimeRange(1000, 1500)).Count()
	got := From(rd).TimeBetween(1000, 1500).Count()
	if got != want {
		t.Errorf("pushed-down count = %d, want %d", got, want)
	}
	read, skipped := rd.ScanStats()
	if skipped == 0 {
		t.Errorf("no blocks skipped (read %d)", read)
	}
	if read+skipped != uint64(rd.NumBlocks()) {
		t.Errorf("read %d + skipped %d != %d blocks", read, skipped, rd.NumBlocks())
	}

	// Unbounded-above variant.
	if got := From(rd).TimeBetween(6000, 0).Count(); got != Query(tr).Filter(TimeRangeOpen(6000, 0)).Count() {
		t.Error("open-ended TimeBetween disagrees")
	}
}

// TestOnCoresPushdown: exact filtering plus a usable skip mask.
func TestOnCoresPushdown(t *testing.T) {
	tr := bigTrace()
	rd := v2Reader(t, tr, 32)
	want := Query(tr).Filter(OnCore(2)).Count()
	if got := From(rd).OnCores(2).Count(); got != want {
		t.Errorf("OnCores(2) = %d, want %d", got, want)
	}
	// Every block holds all four cores here, so nothing skips — but a
	// single-core trace must skip for a disjoint core query.
	solo := &trace.Trace{Workload: "solo"}
	for i := 0; i < 64; i++ {
		solo.Samples = append(solo.Samples, trace.Sample{TimeNs: uint64(i), Core: 1})
	}
	srd := v2Reader(t, solo, 16)
	if got := From(srd).OnCores(2).Count(); got != 0 {
		t.Errorf("disjoint core query returned %d", got)
	}
	if read, skipped := srd.ScanStats(); read != 0 || skipped != 4 {
		t.Errorf("read/skipped = %d/%d, want 0/4", read, skipped)
	}
}

// TestRunMultiAggregationSinglePass: one scan must feed several
// aggregations with the same results the one-shot methods produce.
func TestRunMultiAggregationSinglePass(t *testing.T) {
	tr := bigTrace()
	rd := v2Reader(t, tr, 32)

	var count CountAgg
	var levels LevelAgg
	byRegion := NewGroupCount(ByRegionNames(rd.Meta().Regions))
	mean := NewMeanLatency()
	hash := NewHash()
	if err := From(rd).Run(&count, &levels, byRegion, mean, hash); err != nil {
		t.Fatal(err)
	}
	if int(count.N) != len(tr.Samples) {
		t.Errorf("count = %d", count.N)
	}
	if got, want := mean.Mean(), Query(tr).MeanLatency(); got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if hash.Sum16() != tr.MD5() {
		t.Error("single-pass hash differs from Trace.MD5")
	}
	if hash.Sum16() != rd.MD5() {
		t.Error("single-pass hash differs from the footer checksum")
	}
	wantGroups := Query(tr).GroupCount(ByRegion(tr))
	gotGroups := byRegion.Groups()
	for i := range wantGroups {
		if gotGroups[i] != wantGroups[i] {
			t.Errorf("group %d: %v vs %v", i, gotGroups[i], wantGroups[i])
		}
	}
	// The multi-agg pass cost exactly one scan.
	if read, skipped := rd.ScanStats(); read != uint64(rd.NumBlocks()) || skipped != 0 {
		t.Errorf("read/skipped = %d/%d after one full pass of %d blocks",
			read, skipped, rd.NumBlocks())
	}
}

// TestLatHistPercentiles pins the histogram percentiles against the
// sort-based analysis path.
func TestLatHistPercentiles(t *testing.T) {
	h := NewLatHist()
	for _, lat := range []uint16{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		h.Add(&trace.Sample{Lat: lat})
	}
	if p := h.Percentile(50); p != 50 {
		t.Errorf("p50 = %v", p)
	}
	if p := h.Percentile(90); p != 90 {
		t.Errorf("p90 = %v", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	empty := NewLatHist()
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile not 0")
	}
}
