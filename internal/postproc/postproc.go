// Package postproc is the reproduction of NMO's extensible
// post-processing component (§III: "flexible post-processing and
// visualization are enabled by NMO's extensible scripting component
// ... users can write their own in Python to process the performance
// data"). Instead of Python, it provides a composable query pipeline
// over sample streams: filters, projections, group-bys, temporal
// windows, and exporters, all chainable and lazily evaluated.
//
// Queries run against a trace.SampleSource — an in-memory *Trace or
// an out-of-core v2 ReaderV2 — so the same pipeline works whether the
// samples fit in memory or not. Structured combinators (TimeBetween,
// OnCores) push their predicates down to the source as ScanHints: a
// v2 reader skips whole blocks whose footer-index entry cannot match,
// without touching their bytes.
//
//	q := postproc.Query(tr).
//	    Filter(postproc.InRegion(tr, "a")).
//	    Filter(postproc.StoresOnly()).
//	    Window(1e6) // 1 ms buckets
//	counts := q.GroupCount(postproc.ByCore())
//
// One scan can feed several aggregations at once (Run), which is how
// the CLIs derive every table of a large on-disk trace in a single
// pass.
package postproc

import (
	"fmt"
	"sort"

	"nmo/internal/trace"
)

// Pred is a sample predicate.
type Pred func(*trace.Sample) bool

// Key projects a sample to a grouping key.
type Key func(*trace.Sample) string

// Q is a lazily-evaluated query over a sample source. Q values are
// immutable; each combinator returns a new query.
type Q struct {
	src   trace.SampleSource
	meta  trace.Meta
	preds []Pred
	hints trace.ScanHints
}

// Query starts a pipeline over an in-memory trace.
func Query(tr *trace.Trace) *Q { return From(tr) }

// From starts a pipeline over any sample source (in-memory trace or
// out-of-core v2 reader).
func From(src trace.SampleSource) *Q {
	return &Q{src: src, meta: src.Meta()}
}

// Meta returns the source's stream identity (workload, name tables).
func (q *Q) Meta() trace.Meta { return q.meta }

// clone copies the query with room for one more predicate.
func (q *Q) clone() *Q {
	nq := &Q{src: q.src, meta: q.meta, hints: q.hints,
		preds: make([]Pred, len(q.preds), len(q.preds)+1)}
	copy(nq.preds, q.preds)
	return nq
}

// Filter adds a predicate; samples must satisfy all predicates.
func (q *Q) Filter(p Pred) *Q {
	nq := q.clone()
	nq.preds = append(nq.preds, p)
	return nq
}

// TimeBetween keeps samples with lo <= TimeNs < hi (hi == 0 means
// unbounded above) and pushes the bound down to the source, which may
// skip whole blocks outside it.
func (q *Q) TimeBetween(lo, hi uint64) *Q {
	nq := q.Filter(TimeRangeOpen(lo, hi))
	if lo > nq.hints.TimeLo {
		nq.hints.TimeLo = lo
	}
	if hi != 0 && (nq.hints.TimeHi == 0 || hi < nq.hints.TimeHi) {
		nq.hints.TimeHi = hi
	}
	return nq
}

// OnCores keeps samples from the given hardware threads and pushes the
// core set down to the source as a block-skip mask.
func (q *Q) OnCores(cores ...int16) *Q {
	set := make(map[int16]bool, len(cores))
	var mask uint64
	for _, c := range cores {
		set[c] = true
		mask |= trace.CoreBit(c)
	}
	nq := q.Filter(func(s *trace.Sample) bool { return set[s.Core] })
	nq.hints.CoreMask |= mask
	return nq
}

// match reports whether the sample passes all predicates.
func (q *Q) match(s *trace.Sample) bool {
	for _, p := range q.preds {
		if !p(s) {
			return false
		}
	}
	return true
}

// scan streams matching samples from the source. Sources may
// over-deliver relative to the pushed-down hints (block granularity);
// the predicates do the exact filtering.
func (q *Q) scan(fn func(*trace.Sample)) error {
	return q.src.Scan(q.hints, func(s *trace.Sample) {
		if q.match(s) {
			fn(s)
		}
	})
}

// Each visits every matching sample. It has no error path, which is
// only sound for in-memory sources (their scans cannot fail); on an
// out-of-core source a mid-scan I/O failure would silently truncate
// the visit, so fallible sources must go through EachErr or Run,
// which propagate the scan error.
func (q *Q) Each(fn func(*trace.Sample)) {
	_ = q.scan(fn)
}

// EachErr visits every matching sample and returns the source's scan
// error — the out-of-core form of Each.
func (q *Q) EachErr(fn func(*trace.Sample)) error {
	return q.scan(fn)
}

// Count returns the number of matching samples.
func (q *Q) Count() int {
	n := 0
	q.Each(func(*trace.Sample) { n++ })
	return n
}

// Collect materializes the matching samples (copies).
func (q *Q) Collect() []trace.Sample {
	var out []trace.Sample
	q.Each(func(s *trace.Sample) { out = append(out, *s) })
	return out
}

// GroupCount counts matching samples per key, sorted by key.
type Group struct {
	Key   string
	Count int
}

// GroupCount groups matching samples.
func (q *Q) GroupCount(key Key) []Group {
	m := map[string]int{}
	q.Each(func(s *trace.Sample) { m[key(s)]++ })
	out := make([]Group, 0, len(m))
	for k, c := range m {
		out = append(out, Group{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TopN returns the n largest groups by count (ties by key).
func (q *Q) TopN(key Key, n int) []Group {
	groups := q.GroupCount(key)
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Count != groups[j].Count {
			return groups[i].Count > groups[j].Count
		}
		return groups[i].Key < groups[j].Key
	})
	if n < len(groups) {
		groups = groups[:n]
	}
	return groups
}

// MeanLatency returns the mean sampled latency of matching samples.
func (q *Q) MeanLatency() float64 {
	var sum, n float64
	q.Each(func(s *trace.Sample) { sum += float64(s.Lat); n++ })
	if n == 0 {
		return 0
	}
	return sum / n
}

// Window buckets matching samples into fixed time windows of width
// ns and returns per-window counts, ordered by window start.
type WindowCount struct {
	StartNs uint64
	Count   int
}

// Window buckets matching samples.
func (q *Q) Window(widthNs uint64) []WindowCount {
	if widthNs == 0 {
		widthNs = 1
	}
	m := map[uint64]int{}
	q.Each(func(s *trace.Sample) { m[s.TimeNs/widthNs*widthNs]++ })
	out := make([]WindowCount, 0, len(m))
	for start, c := range m {
		out = append(out, WindowCount{StartNs: start, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// --- predicates ---

// StoresOnly keeps write samples.
func StoresOnly() Pred { return func(s *trace.Sample) bool { return s.Store } }

// LoadsOnly keeps read samples.
func LoadsOnly() Pred { return func(s *trace.Sample) bool { return !s.Store } }

// MinLatency keeps samples at or above lat cycles.
func MinLatency(lat uint16) Pred {
	return func(s *trace.Sample) bool { return s.Lat >= lat }
}

// AtLevel keeps samples served by the given memory level (0=L1 ...
// 3=DRAM).
func AtLevel(level uint8) Pred {
	return func(s *trace.Sample) bool { return s.Level == level }
}

// OnCore keeps samples from one hardware thread.
func OnCore(core int16) Pred {
	return func(s *trace.Sample) bool { return s.Core == core }
}

// InRegion keeps samples attributed to the named tagged region of tr.
func InRegion(tr *trace.Trace, name string) Pred {
	idx := int16(-1)
	for i, r := range tr.Regions {
		if r == name {
			idx = int16(i)
			break
		}
	}
	return func(s *trace.Sample) bool { return s.Region == idx && idx >= 0 }
}

// InKernel keeps samples attributed to the named tagged phase of tr.
func InKernel(tr *trace.Trace, name string) Pred {
	idx := int16(-1)
	for i, k := range tr.Kernels {
		if k == name {
			idx = int16(i)
			break
		}
	}
	return func(s *trace.Sample) bool { return s.Kernel == idx && idx >= 0 }
}

// AddrRange keeps samples with lo <= VA < hi.
func AddrRange(lo, hi uint64) Pred {
	return func(s *trace.Sample) bool { return s.VA >= lo && s.VA < hi }
}

// TimeRange keeps samples with lo <= TimeNs < hi.
func TimeRange(lo, hi uint64) Pred {
	return func(s *trace.Sample) bool { return s.TimeNs >= lo && s.TimeNs < hi }
}

// TimeRangeOpen keeps samples with lo <= TimeNs < hi, where hi == 0
// means unbounded above (the TimeBetween push-down predicate).
func TimeRangeOpen(lo, hi uint64) Pred {
	return func(s *trace.Sample) bool {
		return s.TimeNs >= lo && (hi == 0 || s.TimeNs < hi)
	}
}

// --- keys ---

// ByRegion groups by tagged region name.
func ByRegion(tr *trace.Trace) Key { return ByRegionNames(tr.Regions) }

// ByRegionNames groups by tagged region name, given the name table
// directly (for sources without an in-memory trace, e.g. v2 readers).
func ByRegionNames(regions []string) Key {
	return func(s *trace.Sample) string {
		if s.Region < 0 || int(s.Region) >= len(regions) {
			return "-"
		}
		return regions[s.Region]
	}
}

// ByKernel groups by tagged phase name.
func ByKernel(tr *trace.Trace) Key { return ByKernelNames(tr.Kernels) }

// ByKernelNames groups by tagged phase name from a bare name table.
func ByKernelNames(kernels []string) Key {
	return func(s *trace.Sample) string {
		if s.Kernel < 0 || int(s.Kernel) >= len(kernels) {
			return "-"
		}
		return kernels[s.Kernel]
	}
}

// ByCore groups by hardware thread.
func ByCore() Key {
	return func(s *trace.Sample) string { return fmt.Sprintf("core%02d", s.Core) }
}

// ByLevel groups by memory level.
func ByLevel() Key {
	names := [4]string{"L1", "L2", "SLC", "DRAM"}
	return func(s *trace.Sample) string {
		l := s.Level
		if l > 3 {
			l = 3
		}
		return names[l]
	}
}

// ByPC groups by instruction address.
func ByPC() Key {
	return func(s *trace.Sample) string { return fmt.Sprintf("%#x", s.PC) }
}

// ByPage groups by the 64 KB page of the data address — the paper's
// testbed page granularity, useful for hot-page placement decisions.
func ByPage(pageBytes uint64) Key {
	if pageBytes == 0 {
		pageBytes = 64 << 10
	}
	return func(s *trace.Sample) string {
		return fmt.Sprintf("%#x", s.VA/pageBytes*pageBytes)
	}
}
