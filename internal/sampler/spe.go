package sampler

import (
	"nmo/internal/sim"
	"nmo/internal/spe"
	"nmo/internal/spepkt"
	"nmo/internal/xrand"
)

// speBackend adapts the ARM SPE model (internal/spe + internal/spepkt)
// to the neutral interface.
type speBackend struct{}

func (speBackend) Kind() Kind { return KindSPE }

func (speBackend) NewUnit(cfg Config, rng *xrand.RNG, host Host) Unit {
	u := spe.NewUnit(spe.Config{
		Period:             cfg.Period,
		JitterBits:         cfg.JitterBits,
		SampleLoads:        cfg.SampleLoads,
		SampleStores:       cfg.SampleStores,
		SampleBranches:     cfg.SampleBranches,
		MinLatency:         cfg.MinLatency,
		CollectPA:          cfg.CollectPA,
		TimerDiv:           cfg.TimerDiv,
		CorruptOnCollision: cfg.CorruptOnCollision,
	}, rng, host)
	return speUnit{u}
}

func (speBackend) NewDecoder() Decoder { return speDecoder{} }

// speUnit wraps spe.Unit. SPE streams each record to the host as it
// completes, so Flush is a no-op — residual aux data is the host's to
// publish.
type speUnit struct{ *spe.Unit }

func (speUnit) Flush(sim.Cycles) {}

func (u speUnit) Stats() Stats {
	s := u.Unit.Stats()
	return Stats{
		OpsSeen:    s.OpsSeen,
		Selected:   s.Selected,
		Collisions: s.Collisions,
		Filtered:   s.Filtered,
		Emitted:    s.Emitted,
		Truncated:  s.Truncated,
		Corrupted:  s.Corrupted,
	}
}

// speDecoder normalizes SPE packet records: the data-source payload
// maps back to a hierarchy level index, invalid records (bad headers,
// zero VA/TS — the post-collision corruption NMO skips) count as
// Skipped.
type speDecoder struct{}

func (speDecoder) DecodeSpan(span []byte, emit func(*Sample)) DecodeStats {
	st := spepkt.DecodeAll(span, func(rec *spepkt.Record) {
		emit(&Sample{
			PC:    rec.PC,
			VA:    rec.VA,
			TS:    rec.TS,
			Lat:   rec.TotalLat,
			Level: levelOfSource(rec.Source),
			Store: rec.IsStore(),
		})
	})
	return DecodeStats{Valid: st.Valid, Skipped: st.Skipped, Partial: st.Partial}
}

// levelOfSource maps an SPE data-source payload back to a hierarchy
// level index.
func levelOfSource(src uint8) uint8 {
	switch src {
	case spepkt.SourceL1:
		return 0
	case spepkt.SourceL2:
		return 1
	case spepkt.SourceSLC:
		return 2
	default:
		return 3
	}
}
