package sampler

import (
	"strings"
	"testing"

	"nmo/internal/isa"
	"nmo/internal/pebs"
	"nmo/internal/sim"
	"nmo/internal/xrand"
)

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{
		"spe": KindSPE, "SPE": KindSPE, " arm64 ": KindSPE,
		"pebs": KindPEBS, "intel": KindPEBS, "x86_64": KindPEBS,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	_, err := ParseKind("ibs")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The flag-validation satellite: the error itself must name every
	// supported backend so CLIs can print it verbatim.
	for _, k := range Kinds() {
		if !strings.Contains(err.Error(), string(k)) {
			t.Errorf("error %q does not name backend %s", err, k)
		}
	}
}

func TestKindArchPinning(t *testing.T) {
	if KindSPE.Arch() != isa.ArchARM64 {
		t.Errorf("SPE arch = %s", KindSPE.Arch())
	}
	if KindPEBS.Arch() != isa.ArchX86 {
		t.Errorf("PEBS arch = %s", KindPEBS.Arch())
	}
}

func TestForUnknownKind(t *testing.T) {
	if _, err := For("timer"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range Kinds() {
		b, err := For(k)
		if err != nil || b.Kind() != k {
			t.Fatalf("For(%s) = %v, %v", k, b, err)
		}
	}
}

// collectHost records everything both delivery paths hand it.
type collectHost struct {
	records [][]byte
	spans   [][]byte
	recSize int
}

func (h *collectHost) WriteRecord(now sim.Cycles, rec []byte) bool {
	h.records = append(h.records, append([]byte(nil), rec...))
	return true
}

func (h *collectHost) ServicePMI(now sim.Cycles, records []byte, recSize int) bool {
	h.spans = append(h.spans, append([]byte(nil), records...))
	h.recSize = recSize
	return true
}

// TestPEBSUnitSemantics pins the PEBS half of the normalization
// contract: population counting, PMI batch delivery, shadowing skid
// accounting, and the structural absence of collisions.
func TestPEBSUnitSemantics(t *testing.T) {
	host := &collectHost{}
	b, _ := For(KindPEBS)
	u := b.NewUnit(Config{
		Period: 10, SampleLoads: true, SampleStores: true,
		SkidOps: 4, PMIThreshold: 10 * pebs.RecordSize,
	}, xrand.New(7), host)
	u.Enable()

	load := isa.Op{Kind: isa.KindLoad, Addr: 0x1000, PC: 0x40, Size: 8}
	alu := isa.Op{Kind: isa.KindALU}
	for i := 0; i < 5000; i++ {
		u.OnOp(sim.Cycles(i*2), &load, 120, 3, false, false)
		u.OnOp(sim.Cycles(i*2+1), &alu, 1, 0, false, false) // not in the population
	}
	u.Flush(1 << 30)

	st := u.Stats()
	if st.OpsSeen != 5000 {
		t.Errorf("population OpsSeen = %d, want 5000 (ALU ops excluded)", st.OpsSeen)
	}
	if st.Selected != 500 {
		t.Errorf("Selected = %d, want 500", st.Selected)
	}
	if st.Collisions != 0 || st.Corrupted != 0 {
		t.Errorf("PEBS reported SPE-only mechanisms: %+v", st)
	}
	if st.SkidTotal == 0 {
		t.Error("no shadowing skid accumulated despite SkidOps=4")
	}
	if len(host.records) != 0 {
		t.Error("PEBS used the streaming record path")
	}
	if len(host.spans) == 0 || host.recSize != pebs.RecordSize {
		t.Fatalf("no PMI spans delivered (recSize=%d)", host.recSize)
	}

	// Every span decodes into normalized samples carrying the op's
	// memory level and latency.
	dec := b.NewDecoder()
	var n int
	for _, span := range host.spans {
		dst := dec.DecodeSpan(span, func(s *Sample) {
			n++
			if s.Level != 3 || s.VA != 0x1000 || s.Store {
				t.Fatalf("bad normalized sample: %+v", s)
			}
			if s.Lat != 120 {
				t.Fatalf("lat = %d, want 120", s.Lat)
			}
		})
		if dst.Skipped != 0 || dst.Partial != 0 {
			t.Errorf("decode stats %+v", dst)
		}
	}
	if uint64(n) != st.Emitted {
		t.Errorf("decoded %d, unit emitted %d", n, st.Emitted)
	}
}

// TestSPEUnitSemantics pins the SPE half: streaming record delivery
// and the structural absence of the PEBS-only mechanisms.
func TestSPEUnitSemantics(t *testing.T) {
	host := &collectHost{}
	b, _ := For(KindSPE)
	u := b.NewUnit(Config{
		Period: 10, SampleLoads: true, SampleStores: true,
		TimerDiv: 1, CorruptOnCollision: 64,
	}, xrand.New(7), host)
	u.Enable()

	op := isa.Op{Kind: isa.KindLoad, Addr: 0x2000, PC: 0x80, Size: 8}
	for i := 0; i < 1000; i++ {
		u.OnOp(sim.Cycles(i*100), &op, 4, 1, false, false)
	}
	u.Flush(1 << 30) // no-op on SPE

	st := u.Stats()
	if st.Emitted == 0 {
		t.Fatal("no records emitted")
	}
	if st.Dropped != 0 || st.SkidTotal != 0 {
		t.Errorf("SPE reported PEBS-only mechanisms: %+v", st)
	}
	if len(host.spans) != 0 {
		t.Error("SPE used the PMI batch path")
	}
	var n int
	for _, rec := range host.records {
		b.NewDecoder().DecodeSpan(rec, func(s *Sample) {
			n++
			if s.VA != 0x2000 || s.PC != 0x80 || s.Level != 1 {
				t.Fatalf("bad normalized sample: %+v", s)
			}
		})
	}
	if uint64(n) != st.Emitted {
		t.Errorf("decoded %d, emitted %d", n, st.Emitted)
	}
}

// TestPEBSDecoderPartialSpan pins the partial-byte accounting.
func TestPEBSDecoderPartialSpan(t *testing.T) {
	var rec pebs.Record
	buf := make([]byte, pebs.RecordSize+5)
	rec.IP, rec.Addr, rec.TSC = 1, 2, 3
	pebs.Encode(buf, &rec)
	b, _ := For(KindPEBS)
	st := b.NewDecoder().DecodeSpan(buf, func(*Sample) {})
	if st.Valid != 1 || st.Partial != 5 {
		t.Errorf("stats = %+v, want 1 valid + 5 partial", st)
	}
}
