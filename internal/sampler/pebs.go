package sampler

import (
	"nmo/internal/isa"
	"nmo/internal/pebs"
	"nmo/internal/sim"
	"nmo/internal/xrand"
)

// pebsBackend adapts the Intel PEBS model (internal/pebs) to the
// neutral interface.
type pebsBackend struct{}

func (pebsBackend) Kind() Kind { return KindPEBS }

// pebsEventFor selects the counted population from the operation-class
// filters. PEBS counts one event; loads+stores maps to the combined
// retired-memory-instruction event.
func pebsEventFor(cfg Config) pebs.Event {
	switch {
	case cfg.SampleLoads && cfg.SampleStores:
		return pebs.EventMemAll
	case cfg.SampleStores:
		return pebs.EventStores
	default:
		return pebs.EventLoads
	}
}

func (pebsBackend) NewUnit(cfg Config, rng *xrand.RNG, host Host) Unit {
	u := pebs.NewUnit(pebs.Config{
		Event:        pebsEventFor(cfg),
		Period:       cfg.Period,
		SkidOps:      cfg.SkidOps,
		DSBytes:      cfg.DSBytes,
		PMIThreshold: cfg.PMIThreshold,
	}, rng, func(now sim.Cycles, records []byte) (sim.Cycles, bool) {
		// The PMI hands the DS span to the kernel event; interrupt
		// time is charged through the host's IRQ accounting rather
		// than returned, matching how the SPE path charges its buffer
		// management interrupt. A rejected PMI leaves the DS buffer
		// with the unit, whose overflow drops are the real PEBS loss.
		return 0, host.ServicePMI(now, records, pebs.RecordSize)
	})
	return pebsUnit{u}
}

func (pebsBackend) NewDecoder() Decoder { return pebsDecoder{} }

// pebsUnit wraps pebs.Unit, dropping the probe arguments PEBS hardware
// does not see (TLB and NUMA outcomes ride in SPE event packets only).
type pebsUnit struct{ *pebs.Unit }

func (u pebsUnit) OnOp(now sim.Cycles, op *isa.Op, lat uint32, level uint8, tlbMiss, remote bool) {
	u.Unit.OnOp(now, op, lat, level)
}

func (u pebsUnit) Stats() Stats {
	s := u.Unit.Stats()
	return Stats{
		OpsSeen:   s.EventsSeen,
		Selected:  s.Sampled,
		Emitted:   s.Written,
		Dropped:   s.Dropped,
		SkidTotal: s.SkidTotal,
	}
}

// pebsDecoder normalizes the fixed 48-byte PEBS memory records. The
// data-source encoding already is a hierarchy level index, and the IP
// skid is inherent in the record (shadowing happened at capture).
type pebsDecoder struct{}

func (pebsDecoder) DecodeSpan(span []byte, emit func(*Sample)) DecodeStats {
	var st DecodeStats
	st.Valid = pebs.DecodeAll(span, func(rec *pebs.Record) {
		emit(&Sample{
			PC:    rec.IP,
			VA:    rec.Addr,
			TS:    rec.TSC,
			Lat:   clamp16(rec.Latency),
			Level: rec.Source,
			Store: rec.Store,
		})
	})
	st.Partial = len(span) % pebs.RecordSize
	return st
}

func clamp16(v uint32) uint16 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}
