// Package sampler defines the architecture-neutral sampling layer of
// the profiler: a Backend constructs per-core sampling Units and span
// Decoders for one ISA's precise-sampling hardware, and every layer
// above (perfev's kernel events, core's decode stage, the experiment
// grids) speaks only these interfaces.
//
// Two backends implement the abstraction, mirroring the paper's §III
// statement that the runtime "uses SPE when compiling for ARM and PEBS
// for Intel":
//
//   - SPE (arm64): every decoded operation passes the interval
//     counter; selected operations are *tracked* through the pipeline
//     by a single tracking slot, so concurrent samples collide and are
//     dropped. Records stream into the aux area one at a time and the
//     kernel's aux watermark decides when the monitor wakes.
//   - PEBS (x86_64): a hardware counter counts a specific retired-
//     instruction population and arms a microcode capture on overflow.
//     There are no collisions, but the captured instruction pointer
//     *skids* to a nearby later instruction (shadowing), and records
//     accumulate in the Debug Store buffer until a PMI delivers the
//     whole span — the PMI plays exactly the role the SPE aux
//     watermark wakeup plays, which is why both map onto the same
//     kernel service path (DESIGN.md §8).
//
// The normalization contract: both units account into the same Stats
// (backend-specific mechanisms land in dedicated fields — Collisions
// stays zero on PEBS, Dropped/SkidTotal stay zero on SPE), and both
// decoders emit the same Sample (PC, VA, raw cycle timestamp, latency,
// memory level, store flag), so the attribution pipeline above never
// branches on the ISA.
package sampler

import (
	"fmt"
	"strings"

	"nmo/internal/isa"
	"nmo/internal/sim"
	"nmo/internal/xrand"
)

// Kind names a sampling backend.
type Kind string

// Supported backends.
const (
	// KindSPE is the ARM Statistical Profiling Extension backend.
	KindSPE Kind = "spe"
	// KindPEBS is the Intel Processor Event-Based Sampling backend.
	KindPEBS Kind = "pebs"
)

// Kinds returns the supported backends in stable order.
func Kinds() []Kind { return []Kind{KindSPE, KindPEBS} }

// SupportedList renders the backend names for flag help and error
// messages ("spe, pebs").
func SupportedList() string {
	names := make([]string, 0, 2)
	for _, k := range Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// ParseKind parses an NMO_BACKEND / -backend value. The error names
// every supported backend, so CLIs can surface it verbatim.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "spe", "arm", "arm64":
		return KindSPE, nil
	case "pebs", "intel", "x86", "x86_64":
		return KindPEBS, nil
	}
	return "", fmt.Errorf("sampler: unknown backend %q (supported: %s)", s, SupportedList())
}

// Arch returns the ISA the backend's hardware exists on.
func (k Kind) Arch() string {
	if k == KindPEBS {
		return isa.ArchX86
	}
	return isa.ArchARM64
}

// String implements fmt.Stringer.
func (k Kind) String() string { return string(k) }

// Config programs one per-core sampling unit, backend-neutrally. The
// kernel driver layer (perfev) fills it from the perf_event_attr it
// parsed; fields a backend has no hardware for are ignored by it.
type Config struct {
	// Period is the sampling interval: operations between samples on
	// SPE, population-event occurrences between samples on PEBS.
	Period uint64
	// SampleLoads / SampleStores / SampleBranches select the sampled
	// operation classes. SPE implements them as the programmable
	// post-selection filter; PEBS selects the counted population
	// (branches are not a PEBS memory population and are ignored).
	SampleLoads    bool
	SampleStores   bool
	SampleBranches bool
	// JitterBits widens the random perturbation of the interval
	// counter reload (SPE dither); 0 disables. PEBS reloads exactly.
	JitterBits uint
	// MinLatency discards samples below the latency threshold
	// (SPE PMSLATFR). PEBS has no latency filter in this model.
	MinLatency uint16
	// CollectPA includes physical addresses in SPE records.
	CollectPA bool
	// TimerDiv is the SPE timer divider (cycles per timer tick).
	TimerDiv uint64
	// CorruptOnCollision makes roughly 1/N SPE collisions leave a
	// mangled record the decoder must skip.
	CorruptOnCollision uint32
	// SkidOps bounds the PEBS shadowing skid: the recorded IP belongs
	// to an instruction up to SkidOps later than the sampled one.
	SkidOps int
	// DSBytes is the PEBS Debug Store buffer capacity; 0 keeps the
	// unit default.
	DSBytes int
	// PMIThreshold is the DS fill level at which the PMI fires; 0
	// keeps the unit default (7/8 of DSBytes).
	PMIThreshold int
}

// Host is what the kernel-side event offers a sampling unit: the two
// hardware-to-kernel delivery paths. SPE uses the per-record path and
// lets the host's aux watermark decide when to publish; PEBS delivers
// whole DS spans at PMI time.
type Host interface {
	// WriteRecord appends one encoded record to the aux area,
	// reporting false when the record was truncated (no room).
	WriteRecord(now sim.Cycles, rec []byte) bool
	// ServicePMI delivers a full DS-buffer span at a performance
	// monitoring interrupt. recSize is the backend's record size, so
	// the host can account partial fits in whole records. It reports
	// whether the kernel took the interrupt; on false the unit keeps
	// its hardware buffer and retries — sustained rejection is what
	// overflows the DS buffer.
	ServicePMI(now sim.Cycles, records []byte, recSize int) bool
}

// Stats is the normalized per-unit accounting. Mechanism-specific
// counters keep their zero value on the backend without the mechanism.
type Stats struct {
	OpsSeen    uint64 // operations (SPE) / population events (PEBS) observed
	Selected   uint64 // interval/counter expiries
	Collisions uint64 // SPE: samples dropped, tracking slot busy (0 on PEBS)
	Filtered   uint64 // samples dropped by the programmable filter
	Emitted    uint64 // records accepted by the host
	Truncated  uint64 // records rejected by the host (buffer full)
	Corrupted  uint64 // SPE: mangled records emitted after collisions
	Dropped    uint64 // PEBS: records lost to DS-buffer overflow (0 on SPE)
	SkidTotal  uint64 // PEBS: accumulated shadowing skid, in ops (0 on SPE)
}

// Unit is one core's sampling hardware. Units are driven
// single-threaded by the machine's core loop and are not safe for
// concurrent use.
type Unit interface {
	// Enable starts sampling (counter restarts from a fresh reload).
	Enable()
	// Disable stops sampling; in-flight state is abandoned.
	Disable()
	// OnOp observes one decoded operation. Interrupt time raised while
	// handling it is charged through the Host, not returned here.
	OnOp(now sim.Cycles, op *isa.Op, lat uint32, level uint8, tlbMiss, remote bool)
	// Flush delivers any residual hardware-buffered records to the
	// Host (end of run). SPE buffers nothing unit-side; PEBS flushes
	// the DS buffer.
	Flush(now sim.Cycles)
	// Stats returns a copy of the normalized counters.
	Stats() Stats
}

// Sample is one decoded record, normalized across backends. TS is the
// raw backend timestamp (SPE timer ticks / TSC cycles — both cycle-
// granular in this model); the session converts it to perf-clock
// nanoseconds with the kernel's published timescale.
type Sample struct {
	PC    uint64 // instruction address (PEBS: possibly skidded)
	VA    uint64 // sampled data virtual address
	TS    uint64 // raw backend timestamp
	Lat   uint16 // total pipeline latency in cycles
	Level uint8  // memory level that served the access (0=L1 … 3=DRAM)
	Store bool
}

// DecodeStats counts the outcomes of one span decode.
type DecodeStats struct {
	Valid   int // records decoded successfully
	Skipped int // records skipped by the invalid-record policy
	Partial int // trailing bytes not forming a whole record
}

// Decoder parses drained aux spans into normalized samples. Decoders
// are stateless and may be shared across spans of one event.
type Decoder interface {
	DecodeSpan(span []byte, emit func(*Sample)) DecodeStats
}

// Backend ties together unit construction and span decoding for one
// ISA's sampling hardware.
type Backend interface {
	Kind() Kind
	// NewUnit constructs a disabled per-core unit bound to the host.
	NewUnit(cfg Config, rng *xrand.RNG, host Host) Unit
	// NewDecoder returns the span decoder for this backend's record
	// format.
	NewDecoder() Decoder
}

// For returns the backend implementation for a kind.
func For(k Kind) (Backend, error) {
	switch k {
	case KindSPE:
		return speBackend{}, nil
	case KindPEBS:
		return pebsBackend{}, nil
	}
	return nil, fmt.Errorf("sampler: unknown backend %q (supported: %s)", k, SupportedList())
}
