package auth

import (
	"fmt"
	"net/http"
	"time"

	"nmo/internal/obs"
)

// Mode selects how the daemon authenticates requests.
type Mode string

const (
	// ModeNone trusts the network: the tenant comes from the
	// X-Nmo-Tenant dev header (or DefaultTenant). Quotas and fair
	// share still apply per claimed tenant.
	ModeNone Mode = "none"
	// ModeJWT requires a valid HS256 bearer token on protected routes.
	ModeJWT Mode = "jwt"
)

// ParseMode validates a -auth-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeNone, ModeJWT:
		return Mode(s), nil
	}
	return "", fmt.Errorf("auth: unknown mode %q (want none or jwt)", s)
}

// Config wires one daemon's auth stance.
type Config struct {
	Mode Mode
	// Key is the HS256 verification key (required in jwt mode; also
	// used to sign/verify the internal tenant header).
	Key []byte
	// Quotas is the tenant quota table (nil = unlimited).
	Quotas *Quotas
}

// Middleware authenticates requests and enforces edge quotas. One
// instance per daemon; Protect/LimitSubmit hand out per-route
// middleware funcs for obs.Router.
type Middleware struct {
	cfg     Config
	limiter *Limiter
	now     func() time.Time
}

// NewMiddleware validates the config (jwt mode without a key is a
// boot-time error, not a silent allow-all) and builds the middleware.
func NewMiddleware(cfg Config) (*Middleware, error) {
	if cfg.Mode == "" {
		cfg.Mode = ModeNone
	}
	if cfg.Mode == ModeJWT && len(cfg.Key) == 0 {
		return nil, fmt.Errorf("auth: mode jwt requires -auth-hmac-key-file")
	}
	return &Middleware{cfg: cfg, limiter: NewLimiter(cfg.Quotas), now: time.Now}, nil
}

// Quotas exposes the quota table (for the scheduler's weights and
// in-flight caps).
func (a *Middleware) Quotas() *Quotas { return a.cfg.Quotas }

// Key exposes the HMAC key (for signing the internal hop on outbound
// shard requests).
func (a *Middleware) Key() []byte { return a.cfg.Key }

// authenticate resolves the request's principal, favoring the signed
// internal header (gateway hop) over the end-user token so shards
// never re-verify JWTs the gateway already terminated.
func (a *Middleware) authenticate(r *http.Request) (Principal, error) {
	if tenant := r.Header.Get(TenantHeader); tenant != "" {
		if sig := r.Header.Get(TenantSigHeader); sig != "" && len(a.cfg.Key) > 0 {
			if !VerifyTenant(a.cfg.Key, tenant, sig) {
				return Principal{}, fmt.Errorf("%w: bad internal signature", ErrToken)
			}
			return Principal{Tenant: tenant, Via: "internal"}, nil
		}
		if a.cfg.Mode == ModeNone {
			// Dev fallback: header alone names the tenant. The
			// InternalHeader marks gateway-forwarded hops so the shard's
			// rate limiter defers to the gateway's (single enforcement
			// at the terminating edge).
			via := "none"
			if r.Header.Get(InternalHeader) != "" {
				via = "internal"
			}
			return Principal{Tenant: tenant, Via: via}, nil
		}
		// jwt mode with an unsigned tenant header: fall through to the
		// bearer token; the header is not a credential.
	}
	switch a.cfg.Mode {
	case ModeJWT:
		tok := BearerToken(r)
		if tok == "" {
			return Principal{}, fmt.Errorf("%w: missing bearer token", ErrToken)
		}
		claims, err := VerifyHS256(a.cfg.Key, tok, a.now())
		if err != nil {
			return Principal{}, err
		}
		return Principal{Tenant: claims.TenantName(), Via: "jwt"}, nil
	default:
		return Principal{Tenant: DefaultTenant, Via: "none"}, nil
	}
}

// Protect authenticates the request before the handler runs. Failures
// answer 401 with the standard envelope; the generic message keeps
// verification internals out of responses (the audit line carries the
// code either way). On success the principal lands in the context and
// the tenant on the request's ReqInfo, so per-tenant series and audit
// lines exist even for requests the handler later rejects.
func (a *Middleware) Protect(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p, err := a.authenticate(r)
		if err != nil {
			w.Header().Set("WWW-Authenticate", `Bearer realm="nmo"`)
			obs.WriteError(w, r, http.StatusUnauthorized, obs.CodeUnauthorized,
				"missing or invalid credentials")
			return
		}
		ctx := WithPrincipal(r.Context(), p)
		obs.SetTenant(ctx, p.Tenant)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// LimitSubmit charges the tenant's token bucket for one submission.
// Internal hops skip the charge: the gateway already charged the
// tenant at the terminating edge, and double-billing the shard hop
// would halve every configured rate. Mount after Protect.
func (a *Middleware) LimitSubmit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p, _ := PrincipalFrom(r.Context())
		if p.Via != "internal" && !a.limiter.Allow(p.Tenant, a.now()) {
			obs.WriteError(w, r, http.StatusTooManyRequests, obs.CodeQuotaExceeded,
				fmt.Sprintf("tenant %q submission rate exceeded", p.Tenant))
			return
		}
		next.ServeHTTP(w, r)
	})
}
