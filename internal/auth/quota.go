package auth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// TenantQuota is one tenant's resource class. Zero values mean
// "unlimited" for the limits and "1" for the weight, so a minimal
// quota file only has to name what it wants to constrain.
type TenantQuota struct {
	// Weight is the tenant's deficit-round-robin share. Tenants at
	// weight 3 complete ~3x the engine runs of weight-1 tenants under
	// saturation. 0 means 1.
	Weight int `json:"weight,omitempty"`
	// RatePerSec caps sustained job submissions per second (token
	// bucket). 0 = unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth; defaults to max(1, ceil(RatePerSec))
	// when a rate is set.
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's concurrently live leader jobs
	// (queued + running) on a shard. Cache hits and coalesced
	// followers are free — they cost no engine time. 0 = unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// NormWeight returns the effective DRR weight (>= 1).
func (q TenantQuota) NormWeight() int {
	if q.Weight < 1 {
		return 1
	}
	return q.Weight
}

// Quotas maps tenants to their classes, with a default class for
// tenants not listed. The JSON shape:
//
//	{
//	  "default": {"weight": 1, "rate_per_sec": 50, "max_in_flight": 8},
//	  "tenants": {
//	    "ops":  {"weight": 3},
//	    "tiny": {"weight": 1, "max_in_flight": 1}
//	  }
//	}
type Quotas struct {
	Default TenantQuota            `json:"default"`
	Tenants map[string]TenantQuota `json:"tenants,omitempty"`
}

// LoadQuotas parses a quota file. Unknown keys are rejected so a typo
// ("max_inflight") fails loudly at boot instead of silently granting
// unlimited quota.
func LoadQuotas(path string) (*Quotas, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var q Quotas
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("quota file %s: %w", path, err)
	}
	return &q, nil
}

// For returns the quota class for a tenant. Nil-safe: a nil Quotas
// (no -tenant-quotas flag) grants everyone the unlimited zero class.
func (q *Quotas) For(tenant string) TenantQuota {
	if q == nil {
		return TenantQuota{}
	}
	if t, ok := q.Tenants[tenant]; ok {
		return t
	}
	return q.Default
}

// Limiter enforces per-tenant token-bucket submission rates. Buckets
// are created on first use from the tenant's quota class; tenants with
// no rate configured never allocate a bucket.
type Limiter struct {
	quotas *Quotas
	mu     sync.Mutex
	bkts   map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// NewLimiter builds a limiter over a quota table (nil = allow all).
func NewLimiter(q *Quotas) *Limiter {
	return &Limiter{quotas: q, bkts: map[string]*bucket{}}
}

// Allow charges one submission against the tenant's bucket, reporting
// whether it fits. Unlimited tenants always pass.
func (l *Limiter) Allow(tenant string, now time.Time) bool {
	tq := l.quotas.For(tenant)
	if tq.RatePerSec <= 0 {
		return true
	}
	burst := float64(tq.Burst)
	if burst < 1 {
		burst = tq.RatePerSec
		if burst < 1 {
			burst = 1
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.bkts[tenant]
	if b == nil {
		b = &bucket{tokens: burst, last: now, rate: tq.RatePerSec, burst: burst}
		l.bkts[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
