package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

func mustSign(t *testing.T, key []byte, c Claims) string {
	t.Helper()
	tok, err := SignHS256(key, c)
	if err != nil {
		t.Fatalf("SignHS256: %v", err)
	}
	return tok
}

// forgeToken builds a token with an arbitrary header object and claim
// set, signed with key (pass nil to leave the signature empty).
func forgeToken(t *testing.T, hdr map[string]any, claims Claims, key []byte) string {
	t.Helper()
	h, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(claims)
	if err != nil {
		t.Fatal(err)
	}
	signing := b64.EncodeToString(h) + "." + b64.EncodeToString(b)
	if key == nil {
		return signing + "."
	}
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(signing))
	return signing + "." + b64.EncodeToString(mac.Sum(nil))
}

func TestVerifyHS256Table(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	future := now.Add(time.Hour).Unix()
	past := now.Add(-time.Hour).Unix()

	cases := []struct {
		name       string
		token      string
		wantErr    bool
		wantTenant string
	}{
		{
			name:       "valid sub claim",
			token:      mustSign(t, testKey, Claims{Sub: "alice", Exp: future}),
			wantTenant: "alice",
		},
		{
			name:       "valid tenant claim",
			token:      mustSign(t, testKey, Claims{Tenant: "ops", Exp: future}),
			wantTenant: "ops",
		},
		{
			name:       "tenant wins over sub",
			token:      mustSign(t, testKey, Claims{Sub: "alice", Tenant: "ops", Exp: future}),
			wantTenant: "ops",
		},
		{
			name:       "no exp means no expiry",
			token:      mustSign(t, testKey, Claims{Sub: "alice"}),
			wantTenant: "alice",
		},
		{
			name:    "expired",
			token:   mustSign(t, testKey, Claims{Sub: "alice", Exp: past}),
			wantErr: true,
		},
		{
			name:    "exp exactly now rejected",
			token:   mustSign(t, testKey, Claims{Sub: "alice", Exp: now.Unix()}),
			wantErr: true,
		},
		{
			name:    "bad signature (wrong key)",
			token:   mustSign(t, []byte("another-key-entirely-wrong-here!"), Claims{Sub: "alice", Exp: future}),
			wantErr: true,
		},
		{
			name: "tampered claims",
			token: func() string {
				tok := mustSign(t, testKey, Claims{Sub: "alice", Exp: future})
				parts := strings.Split(tok, ".")
				forged, _ := json.Marshal(Claims{Sub: "mallory", Exp: future})
				parts[1] = b64.EncodeToString(forged)
				return strings.Join(parts, ".")
			}(),
			wantErr: true,
		},
		{
			name:    "missing claim (no sub, no tenant)",
			token:   mustSign(t, testKey, Claims{Exp: future}),
			wantErr: true,
		},
		{
			name:    "alg none rejected",
			token:   forgeToken(t, map[string]any{"alg": "none", "typ": "JWT"}, Claims{Sub: "alice", Exp: future}, nil),
			wantErr: true,
		},
		{
			name:    "alg none with valid HMAC still rejected",
			token:   forgeToken(t, map[string]any{"alg": "none", "typ": "JWT"}, Claims{Sub: "alice", Exp: future}, testKey),
			wantErr: true,
		},
		{
			name:    "alg RS256 rejected",
			token:   forgeToken(t, map[string]any{"alg": "RS256", "typ": "JWT"}, Claims{Sub: "alice", Exp: future}, testKey),
			wantErr: true,
		},
		{
			name:    "two segments",
			token:   "aaaa.bbbb",
			wantErr: true,
		},
		{
			name:    "four segments",
			token:   "aaaa.bbbb.cccc.dddd",
			wantErr: true,
		},
		{
			name:    "empty token",
			token:   "",
			wantErr: true,
		},
		{
			name:    "non-base64 header",
			token:   "!!!.bbbb.cccc",
			wantErr: true,
		},
		{
			name: "padded base64 segment rejected",
			token: func() string {
				// Segments must be raw (unpadded) URL encoding; explicit
				// '=' padding must fail the decode, not alias to the
				// same claims under a still-valid signature.
				tok := mustSign(t, testKey, Claims{Sub: "al", Exp: future})
				parts := strings.Split(tok, ".")
				raw, _ := b64.DecodeString(parts[1])
				parts[1] = base64.URLEncoding.EncodeToString(raw)
				if !strings.Contains(parts[1], "=") {
					t.Fatal("test setup: claims segment needs padding")
				}
				return strings.Join(parts, ".")
			}(),
			wantErr: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			claims, err := VerifyHS256(testKey, tc.token, now)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got claims %+v", claims)
				}
				if !errors.Is(err, ErrToken) {
					t.Fatalf("error %v does not wrap ErrToken", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got := claims.TenantName(); got != tc.wantTenant {
				t.Fatalf("tenant = %q, want %q", got, tc.wantTenant)
			}
		})
	}
}

func TestSignVerifyTenant(t *testing.T) {
	sig := SignTenant(testKey, "ops")
	if !VerifyTenant(testKey, "ops", sig) {
		t.Fatal("valid tenant signature rejected")
	}
	if VerifyTenant(testKey, "other", sig) {
		t.Fatal("signature accepted for wrong tenant")
	}
	if VerifyTenant([]byte("wrong"), "ops", sig) {
		t.Fatal("signature accepted under wrong key")
	}
	if VerifyTenant(testKey, "ops", "zz-not-hex") {
		t.Fatal("non-hex signature accepted")
	}
	if VerifyTenant(testKey, "ops", "") {
		t.Fatal("empty signature accepted")
	}
}

func TestLoadKeyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "key")
	if err := os.WriteFile(path, []byte("  secret-key \n"), 0o600); err != nil {
		t.Fatal(err)
	}
	key, err := LoadKeyFile(path)
	if err != nil {
		t.Fatalf("LoadKeyFile: %v", err)
	}
	if string(key) != "secret-key" {
		t.Fatalf("key = %q, want trimmed %q", key, "secret-key")
	}

	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, []byte(" \n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyFile(empty); err == nil {
		t.Fatal("empty key file accepted")
	}
	if _, err := LoadKeyFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing key file accepted")
	}
}

func TestBearerToken(t *testing.T) {
	cases := []struct {
		hdr  string
		want string
	}{
		{"Bearer abc.def.ghi", "abc.def.ghi"},
		{"bearer abc", "abc"},
		{"Bearer   abc  ", "abc"},
		{"Basic dXNlcjpwYXNz", ""},
		{"Bearer", ""},
		{"", ""},
	}
	for _, tc := range cases {
		r, _ := http.NewRequest("GET", "/", nil)
		if tc.hdr != "" {
			r.Header.Set("Authorization", tc.hdr)
		}
		if got := BearerToken(r); got != tc.want {
			t.Errorf("BearerToken(%q) = %q, want %q", tc.hdr, got, tc.want)
		}
	}
}

func TestLoadQuotas(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "quotas.json")
	if err := os.WriteFile(good, []byte(`{
		"default": {"weight": 1, "rate_per_sec": 50, "max_in_flight": 8},
		"tenants": {
			"ops":  {"weight": 3},
			"tiny": {"weight": 1, "max_in_flight": 1}
		}
	}`), 0o600); err != nil {
		t.Fatal(err)
	}
	q, err := LoadQuotas(good)
	if err != nil {
		t.Fatalf("LoadQuotas: %v", err)
	}
	if got := q.For("ops").NormWeight(); got != 3 {
		t.Fatalf("ops weight = %d, want 3", got)
	}
	if got := q.For("tiny").MaxInFlight; got != 1 {
		t.Fatalf("tiny max_in_flight = %d, want 1", got)
	}
	// Unlisted tenants inherit the default class.
	if got := q.For("unknown").MaxInFlight; got != 8 {
		t.Fatalf("unknown tenant max_in_flight = %d, want default 8", got)
	}
	if got := q.For("unknown").RatePerSec; got != 50 {
		t.Fatalf("unknown tenant rate = %v, want default 50", got)
	}

	// Typos fail loudly rather than silently granting unlimited quota.
	bad := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(bad, []byte(`{"default": {"max_inflight": 1}}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadQuotas(bad); err == nil {
		t.Fatal("unknown quota field accepted")
	}

	// Nil Quotas (no flag) grants the unlimited zero class.
	var nilQ *Quotas
	if got := nilQ.For("anyone"); got != (TenantQuota{}) {
		t.Fatalf("nil quotas class = %+v, want zero", got)
	}
	if got := (TenantQuota{}).NormWeight(); got != 1 {
		t.Fatalf("zero quota weight = %d, want 1", got)
	}
}

func TestLimiterTokenBucket(t *testing.T) {
	q := &Quotas{Tenants: map[string]TenantQuota{
		"slow": {RatePerSec: 2, Burst: 2},
		"free": {},
	}}
	l := NewLimiter(q)
	now := time.Unix(1_700_000_000, 0)

	// Burst of 2 drains, third is rejected.
	if !l.Allow("slow", now) || !l.Allow("slow", now) {
		t.Fatal("burst capacity not honored")
	}
	if l.Allow("slow", now) {
		t.Fatal("submission beyond burst allowed")
	}
	// Refill at 2/s: after 500ms exactly one token is back.
	now = now.Add(500 * time.Millisecond)
	if !l.Allow("slow", now) {
		t.Fatal("refilled token not granted")
	}
	if l.Allow("slow", now) {
		t.Fatal("second token granted before refill")
	}
	// A long idle period caps at burst, not unbounded accumulation.
	now = now.Add(time.Hour)
	if !l.Allow("slow", now) || !l.Allow("slow", now) {
		t.Fatal("bucket did not refill to burst after idle")
	}
	if l.Allow("slow", now) {
		t.Fatal("bucket exceeded burst after idle")
	}

	// No rate configured: never limited, never allocates a bucket.
	for i := 0; i < 1000; i++ {
		if !l.Allow("free", now) {
			t.Fatal("unlimited tenant throttled")
		}
	}
	l.mu.Lock()
	_, hasBucket := l.bkts["free"]
	l.mu.Unlock()
	if hasBucket {
		t.Fatal("unlimited tenant allocated a bucket")
	}
}

func TestParseMode(t *testing.T) {
	for _, ok := range []string{"none", "jwt"} {
		if _, err := ParseMode(ok); err != nil {
			t.Errorf("ParseMode(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "JWT", "basic", "mtls"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) accepted", bad)
		}
	}
}

func TestNewMiddlewareJWTRequiresKey(t *testing.T) {
	if _, err := NewMiddleware(Config{Mode: ModeJWT}); err == nil {
		t.Fatal("jwt mode without key accepted")
	}
	if _, err := NewMiddleware(Config{Mode: ModeJWT, Key: testKey}); err != nil {
		t.Fatalf("jwt mode with key rejected: %v", err)
	}
	m, err := NewMiddleware(Config{})
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if m.cfg.Mode != ModeNone {
		t.Fatalf("default mode = %q, want none", m.cfg.Mode)
	}
}

func TestAuthenticatePaths(t *testing.T) {
	jwtMW, err := NewMiddleware(Config{Mode: ModeJWT, Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	noneMW, err := NewMiddleware(Config{Mode: ModeNone, Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	noneNoKey, err := NewMiddleware(Config{Mode: ModeNone})
	if err != nil {
		t.Fatal(err)
	}
	tok := mustSign(t, testKey, Claims{Tenant: "ops"})

	mk := func(hdrs map[string]string) *http.Request {
		r, _ := http.NewRequest("POST", "/v1/jobs", nil)
		for k, v := range hdrs {
			r.Header.Set(k, v)
		}
		return r
	}

	cases := []struct {
		name    string
		mw      *Middleware
		hdrs    map[string]string
		want    Principal
		wantErr bool
	}{
		{
			name: "jwt: valid bearer",
			mw:   jwtMW,
			hdrs: map[string]string{"Authorization": "Bearer " + tok},
			want: Principal{Tenant: "ops", Via: "jwt"},
		},
		{
			name:    "jwt: missing token",
			mw:      jwtMW,
			hdrs:    nil,
			wantErr: true,
		},
		{
			name:    "jwt: unsigned tenant header is not a credential",
			mw:      jwtMW,
			hdrs:    map[string]string{TenantHeader: "mallory"},
			wantErr: true,
		},
		{
			name: "jwt: signed internal header trusted without token",
			mw:   jwtMW,
			hdrs: map[string]string{
				TenantHeader:    "ops",
				TenantSigHeader: SignTenant(testKey, "ops"),
			},
			want: Principal{Tenant: "ops", Via: "internal"},
		},
		{
			name: "jwt: forged internal signature rejected",
			mw:   jwtMW,
			hdrs: map[string]string{
				TenantHeader:    "ops",
				TenantSigHeader: SignTenant([]byte("wrong"), "ops"),
			},
			wantErr: true,
		},
		{
			name: "none: bare header names tenant",
			mw:   noneNoKey,
			hdrs: map[string]string{TenantHeader: "dev"},
			want: Principal{Tenant: "dev", Via: "none"},
		},
		{
			name: "none: internal marker upgrades via",
			mw:   noneNoKey,
			hdrs: map[string]string{TenantHeader: "dev", InternalHeader: "1"},
			want: Principal{Tenant: "dev", Via: "internal"},
		},
		{
			name: "none: no headers falls back to default tenant",
			mw:   noneMW,
			hdrs: nil,
			want: Principal{Tenant: DefaultTenant, Via: "none"},
		},
		{
			name: "none with key: bad signature still rejected",
			mw:   noneMW,
			hdrs: map[string]string{
				TenantHeader:    "dev",
				TenantSigHeader: "00",
			},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.mw.authenticate(mk(tc.hdrs))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %+v", p)
				}
				return
			}
			if err != nil {
				t.Fatalf("authenticate: %v", err)
			}
			if p != tc.want {
				t.Fatalf("principal = %+v, want %+v", p, tc.want)
			}
		})
	}
}
