// Package auth is the fleet's identity layer: HS256 JWT validation at
// the edge, a tenant principal carried in the request context, and a
// signed internal header that lets shards trust the gateway's
// authentication without re-verifying the original token. Everything
// is stdlib — crypto/hmac, crypto/sha256, encoding/base64,
// encoding/json — because the token shape the fleet needs (symmetric
// key, two claims, exp) does not justify a dependency.
package auth

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"
)

// DefaultTenant is the principal unauthenticated dev traffic runs as
// when auth-mode is none and no X-Nmo-Tenant header is present. It is
// also the quota class tenants without an explicit entry inherit.
const DefaultTenant = "default"

// Header names for the gateway→shard internal hop. The gateway
// terminates end-user auth, then forwards the resolved tenant plus an
// HMAC over it; the shard verifies the signature against the shared
// key instead of re-parsing the JWT. In none mode the gateway marks
// the hop internal so the shard's dev fallback trusts the header.
const (
	// TenantHeader carries the resolved tenant name.
	TenantHeader = "X-Nmo-Tenant"
	// TenantSigHeader carries hex(HMAC-SHA256(key, tenant)).
	TenantSigHeader = "X-Nmo-Tenant-Sig"
	// InternalHeader marks a gateway-originated hop in none mode.
	InternalHeader = "X-Nmo-Internal"
)

// Principal identifies who a request runs as and how it proved it.
type Principal struct {
	// Tenant is the fair-share / quota identity.
	Tenant string
	// Via records the authentication path: "jwt" (token verified
	// here), "internal" (signed gateway hop), or "none" (dev mode).
	Via string
}

type principalKey struct{}

// WithPrincipal attaches the authenticated principal to the context.
func WithPrincipal(ctx context.Context, p Principal) context.Context {
	return context.WithValue(ctx, principalKey{}, p)
}

// PrincipalFrom returns the context's principal, if any.
func PrincipalFrom(ctx context.Context) (Principal, bool) {
	p, ok := ctx.Value(principalKey{}).(Principal)
	return p, ok
}

// TenantFrom returns the context's tenant, or DefaultTenant when no
// auth layer ran (bare handlers under test, direct library use).
func TenantFrom(ctx context.Context) string {
	if p, ok := PrincipalFrom(ctx); ok && p.Tenant != "" {
		return p.Tenant
	}
	return DefaultTenant
}

// Claims is the JWT claim set the fleet understands. Tenant wins over
// Sub when both are present; most tokens set only one.
type Claims struct {
	Sub    string `json:"sub,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Exp/Iat are Unix seconds, per RFC 7519.
	Exp int64 `json:"exp,omitempty"`
	Iat int64 `json:"iat,omitempty"`
}

// TenantName resolves the principal name from the claim set.
func (c Claims) TenantName() string {
	if c.Tenant != "" {
		return c.Tenant
	}
	return c.Sub
}

var (
	// ErrToken covers every way a token can fail verification; the
	// client-visible message stays generic on purpose (don't teach an
	// attacker which check tripped), while the wrapped detail lands in
	// logs.
	ErrToken = errors.New("invalid token")
)

var b64 = base64.RawURLEncoding

// SignHS256 mints a compact HS256 JWT over claims. Used by tests, the
// CI smoke leg (via the equivalent shell recipe), and documented in
// the README so operators can mint dev tokens with openssl alone.
func SignHS256(key []byte, claims Claims) (string, error) {
	hdr, err := json.Marshal(map[string]string{"alg": "HS256", "typ": "JWT"})
	if err != nil {
		return "", err
	}
	body, err := json.Marshal(claims)
	if err != nil {
		return "", err
	}
	signing := b64.EncodeToString(hdr) + "." + b64.EncodeToString(body)
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(signing))
	return signing + "." + b64.EncodeToString(mac.Sum(nil)), nil
}

// VerifyHS256 validates a compact JWT: three base64url segments, the
// header MUST declare alg HS256 exactly (alg=none and every asymmetric
// alg are rejected before any crypto runs), the HMAC must match in
// constant time, exp (when present) must be in the future, and the
// claim set must resolve to a non-empty tenant.
func VerifyHS256(key []byte, token string, now time.Time) (Claims, error) {
	var zero Claims
	parts := strings.Split(token, ".")
	if len(parts) != 3 {
		return zero, fmt.Errorf("%w: want 3 segments, got %d", ErrToken, len(parts))
	}
	hdrJSON, err := b64.DecodeString(parts[0])
	if err != nil {
		return zero, fmt.Errorf("%w: header: %v", ErrToken, err)
	}
	var hdr struct {
		Alg string `json:"alg"`
	}
	if err := json.Unmarshal(hdrJSON, &hdr); err != nil {
		return zero, fmt.Errorf("%w: header: %v", ErrToken, err)
	}
	if hdr.Alg != "HS256" {
		return zero, fmt.Errorf("%w: alg %q not accepted", ErrToken, hdr.Alg)
	}
	sig, err := b64.DecodeString(parts[2])
	if err != nil {
		return zero, fmt.Errorf("%w: signature: %v", ErrToken, err)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(parts[0] + "." + parts[1]))
	if !hmac.Equal(sig, mac.Sum(nil)) {
		return zero, fmt.Errorf("%w: signature mismatch", ErrToken)
	}
	claimsJSON, err := b64.DecodeString(parts[1])
	if err != nil {
		return zero, fmt.Errorf("%w: claims: %v", ErrToken, err)
	}
	var claims Claims
	if err := json.Unmarshal(claimsJSON, &claims); err != nil {
		return zero, fmt.Errorf("%w: claims: %v", ErrToken, err)
	}
	if claims.Exp != 0 && now.Unix() >= claims.Exp {
		return zero, fmt.Errorf("%w: expired", ErrToken)
	}
	if claims.TenantName() == "" {
		return zero, fmt.Errorf("%w: no sub or tenant claim", ErrToken)
	}
	return claims, nil
}

// SignTenant produces the internal-hop signature over a tenant name.
func SignTenant(key []byte, tenant string) string {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("tenant:" + tenant))
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifyTenant checks an internal-hop signature in constant time.
func VerifyTenant(key []byte, tenant, sig string) bool {
	want, err := hex.DecodeString(sig)
	if err != nil {
		return false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("tenant:" + tenant))
	return hmac.Equal(want, mac.Sum(nil))
}

// LoadKeyFile reads an HMAC key from disk, trimming trailing
// whitespace so `openssl rand -hex 32 > key` round-trips.
func LoadKeyFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	key := bytes.TrimSpace(raw)
	if len(key) == 0 {
		return nil, fmt.Errorf("auth: key file %s is empty", path)
	}
	return key, nil
}

// BearerToken extracts the credential from an Authorization: Bearer
// header ("" when absent or malformed).
func BearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return strings.TrimSpace(h[len(prefix):])
	}
	return ""
}
