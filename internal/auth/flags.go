package auth

import "fmt"

// LoadConfig resolves the three daemon auth flags (-auth-mode,
// -auth-hmac-key-file, -tenant-quotas) into a Config, loading the key
// and quota files and validating the combination. Shared by nmod and
// nmogw so both daemons parse the exact same flag surface.
func LoadConfig(mode, keyFile, quotasFile string) (Config, error) {
	var cfg Config
	m, err := ParseMode(mode)
	if err != nil {
		return cfg, err
	}
	cfg.Mode = m
	if keyFile != "" {
		if cfg.Key, err = LoadKeyFile(keyFile); err != nil {
			return cfg, err
		}
	}
	if m == ModeJWT && len(cfg.Key) == 0 {
		return cfg, fmt.Errorf("auth: -auth-mode jwt requires -auth-hmac-key-file")
	}
	if quotasFile != "" {
		if cfg.Quotas, err = LoadQuotas(quotasFile); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}
