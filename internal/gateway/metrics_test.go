package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nmo/internal/obs"
	"nmo/internal/service"
)

// TestGatewayRequestIDPropagation is the cross-tier tracing e2e: the
// gateway mints a request ID, the shard accepts it, and one grep for
// that ID finds the gateway's HTTP audit line, the shard's HTTP and
// job audit lines, and the job record itself.
func TestGatewayRequestIDPropagation(t *testing.T) {
	var shardSink, gwSink strings.Builder
	sched := service.NewScheduler(service.SchedConfig{
		Workers: 2, Metrics: service.NewMetrics(obs.NewAuditWriter(&shardSink)),
	}, nil)
	t.Cleanup(sched.Close)
	shard := httptest.NewServer(service.NewServer(sched))
	t.Cleanup(shard.Close)

	gw, err := New(Config{Members: []string{shard.URL},
		ProbeEvery: 100 * time.Millisecond, Audit: obs.NewAuditWriter(&gwSink)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	front := httptest.NewServer(gw)
	t.Cleanup(front.Close)

	body := `{"scenarios":[{"workload":"stream","threads":2,"elems":20000,"iters":1,"cores":4,"period":700}]}`
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reqID := resp.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		t.Fatal("gateway did not mint a request ID")
	}
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.RequestID != reqID {
		t.Errorf("shard job record request_id %q != gateway-minted %q", info.RequestID, reqID)
	}

	client := service.NewClient(front.URL)
	done, err := client.Wait(context.Background(), info.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.RequestID != reqID {
		t.Errorf("proxied status lost the request ID: %q", done.RequestID)
	}

	// Both tiers' audit logs carry the one ID: the gateway's HTTP edge
	// line and the shard's HTTP line plus job transitions through
	// "done" — count the matching JSONL events on the shard.
	if !strings.Contains(gwSink.String(), `"req_id":"`+reqID+`"`) {
		t.Errorf("gateway audit missing request ID %s:\n%s", reqID, gwSink.String())
	}
	var httpEvents, jobEvents int
	sc := bufio.NewScanner(strings.NewReader(shardSink.String()))
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("torn shard audit line %q: %v", sc.Text(), err)
		}
		if ev.ReqID != reqID {
			continue
		}
		switch ev.Kind {
		case "http":
			httpEvents++
		case "job":
			jobEvents++
			if ev.Job == "" || ev.Key == "" {
				t.Errorf("job audit event missing identity: %+v", ev)
			}
		}
	}
	if httpEvents == 0 {
		t.Errorf("shard audit has no HTTP line for %s:\n%s", reqID, shardSink.String())
	}
	if jobEvents < 2 { // at least "queued" and "done"
		t.Errorf("shard audit has %d job transitions for %s, want >= 2:\n%s",
			jobEvents, reqID, shardSink.String())
	}
	if !strings.Contains(shardSink.String(), `"state":"done"`) {
		t.Errorf("no terminal job audit event:\n%s", shardSink.String())
	}
}

// TestGatewayMetricsEndpoint pins the gateway's own /metrics: build
// info, HTTP series for gateway routes, the splice/fallback data-plane
// counters, and the merged fleet stats carrying uptime and phase rows.
func TestGatewayMetricsEndpoint(t *testing.T) {
	f := newFleet(t, 2)
	submitWait(t, f.client, spec(42))

	resp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	out := strings.Join(lines, "\n") + "\n"
	for _, want := range []string{
		"nmo_build_info{",
		"nmo_process_start_time_seconds ",
		`nmo_http_requests_total{route="POST /v1/jobs",code="2xx"} 1`,
		`nmo_zc_bytes_total{path="splice"} `,
		"nmo_http_in_flight ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gateway /metrics missing %q:\n%s", want, out)
		}
	}

	st, err := f.client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.UptimeSec <= 0 {
		t.Errorf("merged stats missing gateway uptime: %+v", st)
	}
	phases := map[string]service.PhaseStat{}
	for _, p := range st.JobPhases {
		phases[p.Phase] = p
	}
	if phases["run"].Count != 1 {
		t.Errorf("merged phase summary run count = %d, want 1 (%+v)", phases["run"].Count, st.JobPhases)
	}
}
