package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nmo/internal/service"
)

// fleet is a test fixture: n in-process shards behind one gateway.
type fleet struct {
	shards  []*httptest.Server
	scheds  []*service.Scheduler
	gw      *Gateway
	front   *httptest.Server
	client  *service.Client
	clients []*service.Client // direct per-shard clients
}

func newFleet(t *testing.T, n int) *fleet {
	t.Helper()
	f := &fleet{}
	members := make([]string, n)
	for i := 0; i < n; i++ {
		sched := service.NewScheduler(service.SchedConfig{Workers: 2}, nil)
		t.Cleanup(sched.Close)
		srv := httptest.NewServer(service.NewServer(sched))
		t.Cleanup(srv.Close)
		f.scheds = append(f.scheds, sched)
		f.shards = append(f.shards, srv)
		f.clients = append(f.clients, service.NewClient(srv.URL))
		members[i] = srv.URL
	}
	gw, err := New(Config{Members: members, ProbeEvery: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	f.gw = gw
	f.front = httptest.NewServer(gw)
	t.Cleanup(f.front.Close)
	f.client = service.NewClient(f.front.URL)
	return f
}

// spec is a tiny sampling job; the seed varies the content address.
func spec(seed uint64) service.JobSpec {
	return service.JobSpec{Scenarios: []service.ScenarioSpec{{
		Workload: "stream",
		Threads:  2,
		Elems:    20_000,
		Iters:    1,
		Cores:    4,
		Seed:     seed,
		Period:   700,
	}}}
}

func submitWait(t *testing.T, c *service.Client, js service.JobSpec) service.JobInfo {
	t.Helper()
	ctx := context.Background()
	info, err := c.Submit(ctx, js)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if info, err = c.Wait(ctx, info.ID, time.Millisecond); err != nil {
		t.Fatalf("wait %s: %v", info.ID, err)
	}
	return info
}

func fetchTrace(t *testing.T, c *service.Client, id string, opt service.TraceOptions) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	_, md5hex, err := c.DownloadTrace(context.Background(), id, opt, &buf)
	if err != nil {
		t.Fatalf("trace %s: %v", id, err)
	}
	return buf.Bytes(), md5hex
}

// TestGatewayEndToEnd: a job submitted through the gateway completes,
// and its trace stream — headers included — is byte-identical to
// fetching the same job directly from the shard that ran it, and to a
// fresh run of the same spec on the *other* shard (the determinism the
// whole content-addressed fleet rests on).
func TestGatewayEndToEnd(t *testing.T) {
	f := newFleet(t, 2)
	info := submitWait(t, f.client, spec(42))
	if !strings.HasPrefix(info.ID, "s") {
		t.Fatalf("gateway job ID %q lacks a shard prefix", info.ID)
	}
	shard, inner, err := f.gw.splitJobID(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	doc, err := f.client.Result(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Scenarios) != 1 || doc.Scenarios[0].TraceMD5 == "" {
		t.Fatalf("gateway result doc missing scenario digest: %+v", doc)
	}

	viaGW, md5GW := fetchTrace(t, f.client, info.ID, service.NewTraceOptions())
	direct, md5Direct := fetchTrace(t, f.clients[shard], inner, service.NewTraceOptions())
	if md5GW == "" || md5GW != md5Direct {
		t.Fatalf("MD5 header via gateway %q != direct %q", md5GW, md5Direct)
	}
	if !bytes.Equal(viaGW, direct) {
		t.Fatalf("gateway trace (%d bytes) differs from direct shard trace (%d bytes)",
			len(viaGW), len(direct))
	}

	// Same spec on the other shard: a fresh engine run, identical bytes.
	other := 1 - shard
	otherInfo := submitWait(t, f.clients[other], spec(42))
	fresh, _ := fetchTrace(t, f.clients[other], otherInfo.ID, service.NewTraceOptions())
	if !bytes.Equal(viaGW, fresh) {
		t.Fatalf("shards disagree on identical spec: %d vs %d bytes", len(viaGW), len(fresh))
	}
}

// TestGatewayCacheAffinity: identical submissions through the gateway
// always land on one shard, so the second is a fleet-wide cache hit —
// zero additional engine runs anywhere — while distinct keys spread
// over the members.
func TestGatewayCacheAffinity(t *testing.T) {
	f := newFleet(t, 2)
	first := submitWait(t, f.client, spec(7))
	if first.Cached {
		t.Fatalf("first submission reported cached")
	}
	runs := f.scheds[0].EngineRuns() + f.scheds[1].EngineRuns()
	for i := 0; i < 3; i++ {
		again := submitWait(t, f.client, spec(7))
		if !again.Cached {
			t.Fatalf("resubmission %d missed the cache (routed off-shard?)", i)
		}
		if again.Key != first.Key {
			t.Fatalf("resubmission keyed %s, first %s", again.Key, first.Key)
		}
	}
	if got := f.scheds[0].EngineRuns() + f.scheds[1].EngineRuns(); got != runs {
		t.Fatalf("identical resubmissions cost %d extra engine runs fleet-wide", got-runs)
	}

	// Distinct keys must not all pile onto one shard. 20 keys on 2
	// members: the chance of a one-sided split is ~2e-6.
	for seed := uint64(100); seed < 120; seed++ {
		submitWait(t, f.client, spec(seed))
	}
	sub0 := f.scheds[0].Stats().Submitted
	sub1 := f.scheds[1].Stats().Submitted
	if sub0 == 0 || sub1 == 0 {
		t.Fatalf("all distinct keys routed to one shard: %d / %d", sub0, sub1)
	}
}

// TestGatewayStatsMerge: the fleet view sums member counters inline
// (decodable as plain SchedStats by an unmodified client) and carries
// one healthy row per member.
func TestGatewayStatsMerge(t *testing.T) {
	f := newFleet(t, 3)
	for seed := uint64(1); seed <= 6; seed++ {
		submitWait(t, f.client, spec(seed))
	}
	// The unmodified client decodes the aggregate…
	agg, err := f.client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wantSub, wantRuns, wantDemote, wantPromote uint64
	var wantMem, wantDisk int64
	for _, s := range f.scheds {
		st := s.Stats()
		wantSub += st.Submitted
		wantRuns += st.EngineRuns
		wantMem += st.CacheBytesMem
		wantDisk += st.CacheBytesDisk
		wantDemote += st.CacheDemotions
		wantPromote += st.CachePromotions
	}
	if agg.Submitted != wantSub || agg.EngineRuns != wantRuns {
		t.Fatalf("aggregate stats = %d submitted / %d runs, want %d / %d",
			agg.Submitted, agg.EngineRuns, wantSub, wantRuns)
	}
	// The cache tier columns sum across shards too — and the memory
	// tier is demonstrably populated (every shard holds its blobs).
	if agg.CacheBytesMem != wantMem || wantMem == 0 {
		t.Errorf("aggregate cache_bytes_mem = %d, want the member sum %d (> 0)", agg.CacheBytesMem, wantMem)
	}
	if agg.CacheBytesDisk != wantDisk ||
		agg.CacheDemotions != wantDemote || agg.CachePromotions != wantPromote {
		t.Errorf("aggregate tier stats disk=%d demotions=%d promotions=%d, want %d/%d/%d",
			agg.CacheBytesDisk, agg.CacheDemotions, agg.CachePromotions, wantDisk, wantDemote, wantPromote)
	}
	// …and the full body carries the per-member rows.
	resp, err := http.Get(f.front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleetStats service.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fleetStats); err != nil {
		t.Fatal(err)
	}
	if len(fleetStats.Members) != 3 {
		t.Fatalf("fleet stats has %d member rows, want 3", len(fleetStats.Members))
	}
	for _, m := range fleetStats.Members {
		if !m.Healthy || m.Stats == nil {
			t.Fatalf("member %s (shard %d) unhealthy in an all-up fleet: %+v", m.Member, m.Shard, m)
		}
	}
}

// TestGatewayFailover: killing a shard re-homes its arcs onto the
// survivor — every submission after the kill still completes, the dead
// member shows up unhealthy in the fleet view, and the gateway stays
// healthy overall.
func TestGatewayFailover(t *testing.T) {
	f := newFleet(t, 2)
	submitWait(t, f.client, spec(1))

	victim := 1
	f.shards[victim].Close() // connections now refuse
	f.scheds[victim].Close()

	// 10 distinct keys: about half belonged to the victim's arcs; all
	// must complete on the survivor via the ring-successor walk.
	for seed := uint64(200); seed < 210; seed++ {
		info := submitWait(t, f.client, spec(seed))
		if shard, _, _ := f.gw.splitJobID(info.ID); shard == victim {
			t.Fatalf("job %s routed to the dead shard", info.ID)
		}
	}

	resp, err := http.Get(f.front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleetStats service.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fleetStats); err != nil {
		t.Fatal(err)
	}
	if fleetStats.Members[victim].Healthy || fleetStats.Members[victim].Error == "" {
		t.Fatalf("dead shard still reported healthy: %+v", fleetStats.Members[victim])
	}
	if !fleetStats.Members[1-victim].Healthy {
		t.Fatalf("survivor reported unhealthy: %+v", fleetStats.Members[1-victim])
	}
	if resp, err := http.Get(f.front.URL + "/v1/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway healthz with one survivor: %v (%v)", resp.Status, err)
	}
}

// TestGatewayTraceFilterPushdown: ?from/to/core reach the shard
// unchanged, so a filtered stream through the gateway is byte-for-byte
// the shard's own filtered restream.
func TestGatewayTraceFilterPushdown(t *testing.T) {
	f := newFleet(t, 2)
	info := submitWait(t, f.client, spec(3))
	shard, inner, err := f.gw.splitJobID(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	opt := service.NewTraceOptions()
	opt.Core = 0
	viaGW, _ := fetchTrace(t, f.client, info.ID, opt)
	direct, _ := fetchTrace(t, f.clients[shard], inner, opt)
	if len(viaGW) == 0 || !bytes.Equal(viaGW, direct) {
		t.Fatalf("filtered stream differs through the gateway: %d vs %d bytes", len(viaGW), len(direct))
	}
}

// TestGatewayErrors: malformed specs bounce at the gateway without a
// network hop, unknown and mis-prefixed job IDs 404, and a job
// canceled through the gateway reports canceled.
func TestGatewayErrors(t *testing.T) {
	f := newFleet(t, 2)

	resp, err := http.Post(f.front.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"scenarios":[{"workload":"nope"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workload through gateway: %d, want 400", resp.StatusCode)
	}
	if n := f.scheds[0].Stats().Submitted + f.scheds[1].Stats().Submitted; n != 0 {
		t.Fatalf("invalid spec reached %d shard(s)", n)
	}

	for _, id := range []string{"jdeadbeef", "s99-jdeadbeef", "s1x-j0", "s0-"} {
		if _, err := f.client.Job(context.Background(), id); err == nil ||
			!strings.Contains(err.Error(), "404") {
			t.Fatalf("job %q: err = %v, want 404", id, err)
		}
	}

	// Unknown-but-well-formed inner IDs proxy through to the shard's
	// own 404.
	if _, err := f.client.Job(context.Background(), "s0-jdeadbeef"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown inner job: err = %v, want shard 404", err)
	}

	// Inner IDs crafted to decode into path or query metacharacters
	// must be re-escaped on the proxy hop: they address a (nonexistent)
	// job of that literal name — never another shard endpoint.
	for _, path := range []string{
		"/v1/jobs/s0-j%2F..%2F..%2Fstats", // traversal to /v1/stats
		"/v1/jobs/s0-j1%3Fscenario%3D9",   // query smuggling
		"/v1/jobs/s0-jx%2Ftrace",          // sub-route injection
	} {
		req, err := http.NewRequest(http.MethodGet, f.front.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("injection path %q: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestGatewayIDRewrite: every JobInfo that crosses the gateway —
// submit, status, cancel — carries the gateway-qualified ID, never the
// member-local one.
func TestGatewayIDRewrite(t *testing.T) {
	f := newFleet(t, 2)
	info := submitWait(t, f.client, spec(9))
	status, err := f.client.Job(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.ID != info.ID {
		t.Fatalf("status rewrote ID %q -> %q", info.ID, status.ID)
	}
	// Cancel a fresh (already-done, but the route is what's under
	// test) job over the gateway: the response must re-qualify too.
	req, _ := http.NewRequest(http.MethodDelete, f.front.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var canceled service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&canceled); err != nil {
		t.Fatal(err)
	}
	if canceled.ID != info.ID {
		t.Fatalf("cancel rewrote ID %q -> %q", info.ID, canceled.ID)
	}
}

// TestGatewayContentAddressAgreement: the key the gateway routes on is
// the key the shard admits under — pinned by comparing the submit
// response's Key against a gateway-side ContentAddress call.
func TestGatewayContentAddressAgreement(t *testing.T) {
	f := newFleet(t, 2)
	js := spec(11)
	key, err := service.ContentAddress(js)
	if err != nil {
		t.Fatal(err)
	}
	info := submitWait(t, f.client, js)
	if info.Key != key {
		t.Fatalf("gateway hashed %s, shard admitted %s — routing and cache keys diverged", key, info.Key)
	}
	if owner := f.gw.ring.Lookup(key); owner != f.gw.members[mustShard(t, f, info.ID)].base {
		t.Fatalf("job ran on %s, ring owner is %s", f.gw.members[mustShard(t, f, info.ID)].base, owner)
	}
}

func mustShard(t *testing.T, f *fleet, id string) int {
	t.Helper()
	shard, _, err := f.gw.splitJobID(id)
	if err != nil {
		t.Fatal(err)
	}
	return shard
}

// TestGatewayTracePassThrough: an unfiltered trace relayed through the
// gateway keeps its identity-encoded, sized shape — Content-Length and
// X-Nmo-Trace-Md5 from the shard, no chunking — even when the shard
// serves the blob from its disk tier, and the bytes match the direct
// fetch exactly. This pins the pass-through (non-rebuffered) proxy
// path the shard→gateway→client zero-copy chain needs.
func TestGatewayTracePassThrough(t *testing.T) {
	cache, err := service.NewCache(service.CacheConfig{Dir: t.TempDir(), MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := service.NewScheduler(service.SchedConfig{Workers: 1}, cache)
	t.Cleanup(sched.Close)
	shard := httptest.NewServer(service.NewServer(sched))
	t.Cleanup(shard.Close)
	gw, err := New(Config{Members: []string{shard.URL}, ProbeEvery: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	front := httptest.NewServer(gw)
	t.Cleanup(front.Close)

	info := submitWait(t, service.NewClient(front.URL), spec(77))
	_, inner, err := gw.splitJobID(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	job, ok := sched.Get(inner)
	if !ok {
		t.Fatal("job vanished from the shard")
	}
	if !job.Artifacts().Traces[0].FileBacked() {
		t.Fatal("blob not demoted; the test must exercise the disk tier")
	}

	resp, err := http.Get(front.URL + "/v1/jobs/" + info.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength < 0 || len(resp.TransferEncoding) != 0 {
		t.Errorf("gateway re-framed the sized response: CL=%d TE=%v",
			resp.ContentLength, resp.TransferEncoding)
	}
	if resp.ContentLength != int64(body.Len()) {
		t.Errorf("Content-Length %d != body %d bytes", resp.ContentLength, body.Len())
	}
	direct, md5Direct := fetchTrace(t, service.NewClient(shard.URL), inner, service.NewTraceOptions())
	if got := resp.Header.Get("X-Nmo-Trace-Md5"); got != md5Direct {
		t.Errorf("gateway X-Nmo-Trace-Md5 %q != shard's %q", got, md5Direct)
	}
	if !bytes.Equal(body.Bytes(), direct) {
		t.Error("gateway-relayed bytes differ from the direct shard fetch")
	}
}
