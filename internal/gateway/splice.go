package gateway

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"nmo/internal/obs"
	"nmo/internal/zerocopy"
)

// The splice proxy is the gateway's kernel-offload hop: when the
// downstream client arrived on a zero-copy conn and the shard answers
// a trace read with a sized body, the body moves shard-socket → pipe →
// client-socket via splice(2) without touching user space. http.Client
// cannot carry this path — it owns its sockets — so the gateway speaks
// minimal HTTP/1.1 itself on a small per-member pool of raw TCP conns:
// write the GET, http.ReadResponse the header, relay whatever the
// header read over-buffered, then hand the remaining Content-Length
// bytes to the downstream conn as a SocketSection. The downstream
// write still flows through net/http's response accounting, so framing
// and keep-alive are untouched on both legs, and the X-Nmo-Trace-Md5
// pass-through is verified end to end by the serve-matrix tests.
//
// Failure ladder: anything that goes wrong before the shard's first
// response byte (dial, stale pooled conn, header timeout) falls back
// to the classic http.Client relay — at most one extra round trip.
// Unsized (chunked filtered) and non-200 responses relay through the
// normal copy on the same conn. Errors mid-body are terminal for both
// sockets, counted and classified like any other copy error.

// upstreamPoolSize bounds idle splice conns per member. Trace reads
// are few and heavy; four idle conns cover bursts without hoarding
// fds.
const upstreamPoolSize = 4

const (
	upstreamDialTimeout   = 5 * time.Second
	upstreamWriteTimeout  = 5 * time.Second
	upstreamHeaderTimeout = 30 * time.Second
)

// upstreamConn is one raw HTTP/1.1 connection to a shard.
type upstreamConn struct {
	tc     *net.TCPConn
	br     *bufio.Reader
	reused bool
}

func (uc *upstreamConn) close() { uc.tc.Close() }

// dialAddr extracts the "host:port" splice dial target from a member
// base URL; "" (https or unparsable) disables the splice path for that
// member.
func dialAddr(base string) string {
	u, err := url.Parse(base)
	if err != nil || u.Scheme != "http" || u.Host == "" {
		return ""
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(host, "80")
	}
	return host
}

// getConn returns a pooled idle conn, or dials. fresh skips the pool —
// the retry after a stale pooled conn must not fish out another stale
// one.
func (m *member) getConn(fresh bool) (*upstreamConn, error) {
	if !fresh {
		select {
		case uc := <-m.pool:
			uc.reused = true
			return uc, nil
		default:
		}
	}
	c, err := net.DialTimeout("tcp", m.addr, upstreamDialTimeout)
	if err != nil {
		return nil, err
	}
	tc := c.(*net.TCPConn)
	return &upstreamConn{tc: tc, br: bufio.NewReaderSize(tc, 32<<10)}, nil
}

// putConn parks a conn whose response was fully consumed.
func (m *member) putConn(uc *upstreamConn) {
	uc.reused = false
	select {
	case m.pool <- uc:
	default:
		uc.close()
	}
}

// ssPool recycles the SocketSection shells so a spliced relay
// allocates nothing per request beyond net/http's own bookkeeping.
var ssPool = sync.Pool{New: func() interface{} { return new(zerocopy.SocketSection) }}

// spliceProxy attempts the kernel-offload trace relay. It returns true
// when a response was written (success or a terminal mid-body error);
// false means nothing was sent and the caller should take the
// http.Client path.
func (g *Gateway) spliceProxy(w http.ResponseWriter, r *http.Request, m *member, u string) bool {
	if !zerocopy.Supported() || m.addr == "" || zerocopy.FromContext(r.Context()) == nil {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		return false
	}
	req.Header.Set(obs.RequestIDHeader, obs.RequestID(r.Context()))
	g.setTenantHeaders(req.Header, r)
	for attempt := 0; attempt < 2; attempt++ {
		uc, err := m.getConn(attempt > 0)
		if err != nil {
			return false // dial failed; let the client path mark the member down
		}
		resp, err := uc.roundTrip(req)
		if err != nil {
			uc.close()
			if uc.reused {
				continue // stale keep-alive conn; retry on a fresh dial
			}
			return false
		}
		m.markUp()
		g.relaySpliced(w, r, m, uc, resp)
		return true
	}
	return false
}

// roundTrip writes the request and reads the response header. The
// write and header-read deadlines mirror the http.Client transport's;
// both are cleared before the body relay, which may legitimately
// stream for a long time.
func (uc *upstreamConn) roundTrip(req *http.Request) (*http.Response, error) {
	uc.tc.SetWriteDeadline(time.Now().Add(upstreamWriteTimeout))
	if err := req.Write(uc.tc); err != nil {
		return nil, err
	}
	uc.tc.SetReadDeadline(time.Now().Add(upstreamHeaderTimeout))
	resp, err := http.ReadResponse(uc.br, req)
	if err != nil {
		return nil, err
	}
	uc.tc.SetWriteDeadline(time.Time{})
	uc.tc.SetReadDeadline(time.Time{})
	return resp, nil
}

// relaySpliced forwards one shard response that arrived on a raw
// upstream conn. Sized 200s splice; everything else takes the normal
// relay on the same conn and gives the conn up (chunked framing makes
// reuse bookkeeping not worth it for the rare path).
func (g *Gateway) relaySpliced(w http.ResponseWriter, r *http.Request, m *member, uc *upstreamConn, resp *http.Response) {
	cl := resp.ContentLength
	if resp.StatusCode != http.StatusOK || cl < 0 {
		g.copyResponse(w, r, resp, flusherFor(w))
		resp.Body.Close()
		uc.close()
		return
	}

	for _, h := range []string{"Content-Type", "Content-Length", "X-Nmo-Trace-Md5"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(http.StatusOK)

	// The header read may have buffered the first body bytes; they
	// relay through the normal write path, then the remainder splices
	// straight off the socket. A well-behaved shard sends exactly
	// Content-Length body bytes and nothing after — if the buffer holds
	// more, the conn is desynced: relay the capped prefix but never
	// pool the conn, or the excess would be parsed as the next
	// response's header.
	buffered := int64(uc.br.Buffered())
	poisoned := buffered > cl
	if poisoned {
		buffered = cl
	}

	// roundTrip cleared both deadlines for the body relay, and the
	// splice loop parks in the poller on upstream readability with no
	// timeout of its own — so watch the downstream request context and
	// cut the upstream read short when the client goes away or the
	// request is canceled. Without this a shard stalling mid-body pins
	// the handler goroutine, the pooled conn, and a pipe indefinitely.
	ctx := r.Context()
	relayDone := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			uc.tc.SetReadDeadline(time.Now())
		case <-relayDone:
		}
	}()

	var err error
	if buffered > 0 {
		n, cerr := io.CopyN(w, uc.br, buffered)
		g.zc.AddFallback(n)
		err = cerr
	}
	if remain := cl - buffered; err == nil && remain > 0 {
		if fl := flusherFor(w); fl != nil {
			fl.Flush()
		}
		ss := ssPool.Get().(*zerocopy.SocketSection)
		if serr := ss.Set(uc.tc, remain); serr != nil {
			err = serr
		} else {
			_, err = io.Copy(w, ss) // → downstream Conn.ReadFrom → splice(2)
		}
		ssPool.Put(ss)
	}
	close(relayDone)
	<-watchDone
	if err != nil {
		// Mid-body failure: bytes may be stranded in the pipe, so both
		// framings are broken — drop the upstream conn and let net/http
		// close the downstream one (written != Content-Length).
		g.zc.CountCopyErr(ctx, err)
		uc.close()
		return
	}
	if resp.Close || poisoned {
		uc.close()
		return
	}
	// The watcher may have fired between the last body byte and here;
	// clear any deadline it set before the conn is pooled.
	uc.tc.SetReadDeadline(time.Time{})
	m.putConn(uc)
}
