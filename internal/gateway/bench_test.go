package gateway

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nmo/internal/service"
	"nmo/internal/zerocopy"
)

// BenchmarkGatewayOverhead isolates the routing tier's cost: identical
// cache-hit submissions (submit + wait + nothing simulated) measured
// directly against one shard versus proxied through a two-member
// gateway. The delta is pure gateway work — content-address hashing,
// ring lookup, one extra HTTP hop, ID rewriting. CI appends this to
// BENCH_service.json next to BenchmarkServiceThroughput so the
// gateway-proxied vs direct jobs/sec trajectory is recorded per
// commit.
func BenchmarkGatewayOverhead(b *testing.B) {
	js := service.JobSpec{Scenarios: []service.ScenarioSpec{{
		Workload: "stream",
		Threads:  2,
		Elems:    20_000,
		Iters:    1,
		Cores:    4,
		Seed:     1,
		Period:   700,
	}}}

	run := func(b *testing.B, client *service.Client) {
		ctx := context.Background()
		// Prime the owning shard's cache so every measured iteration is
		// a pure service round-trip.
		info, err := client.Submit(ctx, js)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			info, err := client.Submit(ctx, js)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	}

	b.Run("direct", func(b *testing.B) {
		sched := service.NewScheduler(service.SchedConfig{Workers: 2}, nil)
		defer sched.Close()
		srv := httptest.NewServer(service.NewServer(sched))
		defer srv.Close()
		run(b, service.NewClient(srv.URL))
	})
	b.Run("proxied", func(b *testing.B) {
		members := make([]string, 2)
		for i := range members {
			sched := service.NewScheduler(service.SchedConfig{Workers: 2}, nil)
			defer sched.Close()
			srv := httptest.NewServer(service.NewServer(sched))
			defer srv.Close()
			members[i] = srv.URL
		}
		gw, err := New(Config{Members: members})
		if err != nil {
			b.Fatal(err)
		}
		defer gw.Close()
		front := httptest.NewServer(gw)
		defer front.Close()
		run(b, service.NewClient(front.URL))
	})
}

// BenchmarkGatewaySplice contrasts the proxy hop's two relay paths on
// the same large sized trace: "splice" fronts the gateway with the
// production wrapped listener (body moves shard-socket → pipe →
// client-socket via splice(2)), "copy" with a plain listener (the
// pooled io.Copy relay). The shard is wrapped in both, so the delta
// isolates the gateway hop. Each leg reports user-copy-B/op — the
// payload bytes the gateway staged through user space; loopback ns/op
// carries the page-ref receive artifact described in DESIGN.md §14.
// CI's benchstat gate watches this pair for regressions of either
// path.
func BenchmarkGatewaySplice(b *testing.B) {
	serve := func(handler http.Handler, ctr *zerocopy.Counters) (string, *http.Server) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := &http.Server{Handler: handler}
		if ctr != nil {
			srv.ConnContext = zerocopy.ConnContext
			go srv.Serve(zerocopy.WrapListener(ln, ctr))
		} else {
			go srv.Serve(ln)
		}
		return "http://" + ln.Addr().String(), srv
	}

	cache, err := service.NewCache(service.CacheConfig{Dir: b.TempDir(), MemBudget: 1})
	if err != nil {
		b.Fatal(err)
	}
	sched := service.NewScheduler(service.SchedConfig{Workers: 1}, cache)
	defer sched.Close()
	shardH := service.NewServer(sched)
	shardURL, shardSrv := serve(shardH, shardH.ZeroCopy())
	defer shardSrv.Close()

	js := spec(1)
	js.Scenarios[0].Elems = 200_000
	js.Scenarios[0].Iters = 4
	js.Scenarios[0].Period = 64

	run := func(b *testing.B, wrapped bool) {
		gw, err := New(Config{Members: []string{shardURL}})
		if err != nil {
			b.Fatal(err)
		}
		defer gw.Close()
		var ctr *zerocopy.Counters
		if wrapped {
			ctr = gw.ZeroCopy()
		}
		frontURL, frontSrv := serve(gw, ctr)
		defer frontSrv.Close()
		client := service.NewClient(frontURL)
		ctx := context.Background()

		info, err := client.Submit(ctx, js)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		size, _, err := client.DownloadTrace(ctx, info.ID, service.NewTraceOptions(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}

		fb0 := gw.ZeroCopy().FallbackBytes()
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, _, err := client.DownloadTrace(ctx, info.ID, service.NewTraceOptions(), io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if n != size {
				b.Fatalf("downloaded %d bytes, want %d", n, size)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(gw.ZeroCopy().FallbackBytes()-fb0)/float64(b.N), "user-copy-B/op")
	}
	b.Run("splice", func(b *testing.B) { run(b, true) })
	b.Run("copy", func(b *testing.B) { run(b, false) })
}
