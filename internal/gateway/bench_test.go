package gateway

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"nmo/internal/service"
)

// BenchmarkGatewayOverhead isolates the routing tier's cost: identical
// cache-hit submissions (submit + wait + nothing simulated) measured
// directly against one shard versus proxied through a two-member
// gateway. The delta is pure gateway work — content-address hashing,
// ring lookup, one extra HTTP hop, ID rewriting. CI appends this to
// BENCH_service.json next to BenchmarkServiceThroughput so the
// gateway-proxied vs direct jobs/sec trajectory is recorded per
// commit.
func BenchmarkGatewayOverhead(b *testing.B) {
	js := service.JobSpec{Scenarios: []service.ScenarioSpec{{
		Workload: "stream",
		Threads:  2,
		Elems:    20_000,
		Iters:    1,
		Cores:    4,
		Seed:     1,
		Period:   700,
	}}}

	run := func(b *testing.B, client *service.Client) {
		ctx := context.Background()
		// Prime the owning shard's cache so every measured iteration is
		// a pure service round-trip.
		info, err := client.Submit(ctx, js)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			info, err := client.Submit(ctx, js)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := client.Wait(ctx, info.ID, time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	}

	b.Run("direct", func(b *testing.B) {
		sched := service.NewScheduler(service.SchedConfig{Workers: 2}, nil)
		defer sched.Close()
		srv := httptest.NewServer(service.NewServer(sched))
		defer srv.Close()
		run(b, service.NewClient(srv.URL))
	})
	b.Run("proxied", func(b *testing.B) {
		members := make([]string, 2)
		for i := range members {
			sched := service.NewScheduler(service.SchedConfig{Workers: 2}, nil)
			defer sched.Close()
			srv := httptest.NewServer(service.NewServer(sched))
			defer srv.Close()
			members[i] = srv.URL
		}
		gw, err := New(Config{Members: members})
		if err != nil {
			b.Fatal(err)
		}
		defer gw.Close()
		front := httptest.NewServer(gw)
		defer front.Close()
		run(b, service.NewClient(front.URL))
	})
}
