package gateway

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"

	"nmo/internal/service"
	"nmo/internal/zerocopy"
)

// serveZC starts handler on a real TCP listener wired like the
// production commands: wrapped listener + ConnContext, so accepted
// conns carry the zero-copy state the splice/sendfile tiers need.
func serveZC(t *testing.T, handler http.Handler, ctr *zerocopy.Counters) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler, ConnContext: zerocopy.ConnContext}
	go srv.Serve(zerocopy.WrapListener(ln, ctr))
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestGatewaySpliceRelay drives the full kernel-offload chain: the
// shard sendfiles its spill file, the gateway splices the sized body
// shard-socket → client-socket, and the client still sees bytes
// identical to a direct shard fetch with the MD5 header intact. The
// body must overflow the upstream header-read buffer (32 KiB) or the
// whole response would relay through the buffered prefix and never
// reach the splice.
func TestGatewaySpliceRelay(t *testing.T) {
	cache, err := service.NewCache(service.CacheConfig{Dir: t.TempDir(), MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := service.NewScheduler(service.SchedConfig{Workers: 1}, cache)
	t.Cleanup(sched.Close)
	shardH := service.NewServer(sched)
	shardURL := serveZC(t, shardH, shardH.ZeroCopy())

	gw, err := New(Config{Members: []string{shardURL}, ProbeEvery: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	frontURL := serveZC(t, gw, gw.ZeroCopy())
	client := service.NewClient(frontURL)

	// A transfer-dominated blob: hundreds of KiB, far past the 32 KiB
	// upstream buffer.
	js := spec(31)
	js.Scenarios[0].Elems = 200_000
	js.Scenarios[0].Iters = 4
	js.Scenarios[0].Period = 64
	info := submitWait(t, client, js)
	_, inner, err := gw.splitJobID(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	job, ok := sched.Get(inner)
	if !ok {
		t.Fatal("job vanished from the shard")
	}
	if !job.Artifacts().Traces[0].FileBacked() {
		t.Fatal("blob not demoted; the chain must start at the shard's sendfile tier")
	}

	direct, md5Direct := fetchTrace(t, service.NewClient(shardURL), inner, service.NewTraceOptions())
	if len(direct) < 64<<10 {
		t.Fatalf("fixture blob only %d bytes; too small to outgrow the upstream buffer", len(direct))
	}

	// Several sequential fetches: the first dials the upstream conn,
	// the rest must reuse it from the pool.
	for i := 0; i < 3; i++ {
		viaGW, md5GW := fetchTrace(t, client, info.ID, service.NewTraceOptions())
		if !bytes.Equal(viaGW, direct) {
			t.Fatalf("fetch %d: gateway bytes (%d) differ from direct shard fetch (%d)",
				i, len(viaGW), len(direct))
		}
		if md5GW != md5Direct {
			t.Fatalf("fetch %d: MD5 header via gateway %q != shard's %q", i, md5GW, md5Direct)
		}
	}

	// Filtered (chunked) streams must still flow — they take the
	// non-splice relay on the same infrastructure.
	opt := service.NewTraceOptions()
	opt.Core = 0
	viaGW, _ := fetchTrace(t, client, info.ID, opt)
	directF, _ := fetchTrace(t, service.NewClient(shardURL), inner, opt)
	if len(viaGW) == 0 || !bytes.Equal(viaGW, directF) {
		t.Fatalf("filtered stream differs through the gateway: %d vs %d bytes",
			len(viaGW), len(directF))
	}

	if runtime.GOOS == "linux" {
		if n := gw.ZeroCopy().SpliceBytes(); n == 0 {
			t.Error("gateway relayed a large sized trace with zero splice bytes")
		}
		if n := shardH.ZeroCopy().SendfileBytes(); n == 0 {
			t.Error("shard served its spill file with zero sendfile bytes")
		}
	}

	// The fleet stats view must surface the gateway's own counters on
	// top of the member sums.
	agg, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := shardH.ZeroCopy().SendfileBytes() + shardH.ZeroCopy().FallbackBytes() +
		gw.ZeroCopy().SpliceBytes() + gw.ZeroCopy().FallbackBytes()
	got := agg.ZcSendfileBytes + agg.ZcSpliceBytes + agg.ZcFallbackBytes
	if got < want {
		t.Errorf("fleet stats count %d zero-copy-plane bytes, members+gateway hold %d", got, want)
	}
}

// TestGatewaySpliceFallback pins graceful degradation: a gateway whose
// *own* client conns are not zero-copy (plain listener, no
// ConnContext) must never attempt the splice hop, yet serve identical
// bytes through the classic relay.
func TestGatewaySpliceFallback(t *testing.T) {
	sched := service.NewScheduler(service.SchedConfig{Workers: 1}, nil)
	t.Cleanup(sched.Close)
	shardH := service.NewServer(sched)
	shardURL := serveZC(t, shardH, shardH.ZeroCopy())

	gw, err := New(Config{Members: []string{shardURL}, ProbeEvery: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: gw} // deliberately unwrapped
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	client := service.NewClient("http://" + ln.Addr().String())

	info := submitWait(t, client, spec(33))
	_, inner, err := gw.splitJobID(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	viaGW, md5GW := fetchTrace(t, client, info.ID, service.NewTraceOptions())
	direct, md5Direct := fetchTrace(t, service.NewClient(shardURL), inner, service.NewTraceOptions())
	if !bytes.Equal(viaGW, direct) || md5GW != md5Direct {
		t.Fatalf("fallback relay corrupted the stream: %d vs %d bytes, md5 %q vs %q",
			len(viaGW), len(direct), md5GW, md5Direct)
	}
	if n := gw.ZeroCopy().SpliceBytes(); n != 0 {
		t.Errorf("gateway counted %d splice bytes on non-zero-copy client conns", n)
	}
	if gw.ZeroCopy().FallbackBytes() == 0 {
		t.Error("fallback relay counted no trace bytes")
	}
}

// TestGatewaySpliceClientCancel pins the stalled-shard escape hatch:
// the splice relay clears its deadlines for the body, so a shard that
// stops sending mid-body must not pin the handler (and its pooled
// upstream conn and pipe) past the downstream request's lifetime. The
// fake shard promises 1 MiB, delivers 8 KiB, and stalls; the client
// cancels; the gateway must classify the broken relay as a client
// abort promptly instead of parking in the poller forever.
func TestGatewaySpliceClientCancel(t *testing.T) {
	stall := make(chan struct{})
	t.Cleanup(func() { close(stall) })
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Nmo-Trace-Md5", "00000000000000000000000000000000")
		w.Header().Set("Content-Length", strconv.Itoa(1<<20))
		w.WriteHeader(http.StatusOK)
		w.Write(make([]byte, 8<<10))
		flusherFor(w).Flush()
		<-stall // promised 1 MiB, never delivers the rest
	})
	shardLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shardSrv := &http.Server{Handler: mux}
	go shardSrv.Serve(shardLn)
	t.Cleanup(func() { shardSrv.Close() })

	gw, err := New(Config{Members: []string{"http://" + shardLn.Addr().String()}, ProbeEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	frontURL := serveZC(t, gw, gw.ZeroCopy())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, frontURL+"/v1/jobs/s0-jstall/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The delivered prefix must flow through before the stall bites.
	if _, err := io.CopyN(io.Discard, resp.Body, 8<<10); err != nil {
		t.Fatalf("reading the delivered prefix: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for gw.ZeroCopy().ClientAborts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gateway never released the stalled relay after the client canceled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
