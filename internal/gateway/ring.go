// Package gateway is the fleet routing tier: a stateless HTTP front
// that consistent-hashes each submission's content address onto a ring
// of nmod shards, so identical jobs from any client land on the shard
// whose single-flight cache already holds (or is computing) the
// result. It proxies the whole job API — status, cancel, result, and
// chunked trace streaming with the ?from/to/core push-down intact —
// and merges /v1/stats across members into one fleet view.
//
// Placement must respect the same constraint structure the scheduler's
// per-backend admission does: a job conflicts with the shard that is
// already computing its key (rerunning it elsewhere wastes a worker
// and splits the cache), which is exactly what hashing the content
// address avoids — the conflict-aware assignment is computed by the
// ring, not negotiated between daemons.
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the per-member virtual-node count. 128 points
// per member keeps the expected per-member load within a few percent
// of uniform for fleet sizes in the tens (the balance test pins the
// bound) while the ring stays small enough to rebuild at will.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over member names. Each member owns
// `replicas` pseudo-random points on a 64-bit circle; a key belongs to
// the member owning the first point at or clockwise of the key's hash.
//
// The two properties the fleet relies on:
//
//   - Deterministic placement: the mapping is a pure function of the
//     member set and replica count, so every gateway instance (and a
//     restarted one) routes identically — the tier stays stateless.
//   - Bounded re-mapping: adding or removing one member moves only the
//     keys adjacent to that member's points (expected 1/n of the
//     keyspace); keys between other members' points never move. Seq
//     extends this to failures: the successor walk re-homes a dead
//     member's keys without disturbing anyone else's.
//
// Ring is immutable after construction from the gateway's point of
// view (membership is fixed at boot; health is handled by walking
// Seq); Add/Remove exist for construction and for the re-mapping
// tests.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring (replicas <= 0: DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// hash64 maps a label onto the ring circle. SHA-256 (truncated) rather
// than a fast non-cryptographic hash: the ring hashes rarely (one key
// per submission, members once at boot), and member names are
// adversarial-ish user input — a daemon address engineered to collide
// should not be able to shadow another shard's arc.
func hash64(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member's virtual nodes. Adding a present member is a
// no-op, so rebuilding from a config list is idempotent.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.replicas; v++ {
		r.points = append(r.points, ringPoint{
			// The vnode label nests the member name length so
			// ("ab","1") and ("a","b1") cannot alias.
			hash:   hash64(fmt.Sprintf("%d:%s#%d", len(member), member, v)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member's virtual nodes.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning a key ("" on an empty ring).
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// search finds the index of the first point at or clockwise of the
// key's hash (wrapping past the top of the circle).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Seq returns every member in ring order starting at the key's owner:
// Seq(k)[0] is Lookup(k), Seq(k)[1] is where k's jobs go if the owner
// is down, and so on. Walking this sequence past unhealthy members is
// the gateway's failover rule — each dead shard re-homes only its own
// arcs onto successors, which is the bounded re-mapping guarantee.
func (r *Ring) Seq(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i, start := 0, r.search(key); len(out) < len(r.members); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
