package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nmo/internal/auth"
	"nmo/internal/obs"
	"nmo/internal/service"
)

// newAuthFleet builds n shards and a gateway that all share one HMAC
// key: the gateway terminates end-user JWTs, the shards run in jwt
// mode too and trust only the gateway's signed internal header.
func newAuthFleet(t *testing.T, n int, quotas *auth.Quotas) (*fleet, []byte) {
	t.Helper()
	key := []byte("fleet-shared-hmac-key-for-tests!")
	f := &fleet{}
	members := make([]string, n)
	for i := 0; i < n; i++ {
		sched := service.NewScheduler(service.SchedConfig{Workers: 2, Quotas: quotas}, nil)
		t.Cleanup(sched.Close)
		mw, err := auth.NewMiddleware(auth.Config{Mode: auth.ModeJWT, Key: key, Quotas: quotas})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewServer(sched, service.WithAuth(mw)))
		t.Cleanup(srv.Close)
		f.scheds = append(f.scheds, sched)
		f.shards = append(f.shards, srv)
		f.clients = append(f.clients, service.NewClient(srv.URL))
		members[i] = srv.URL
	}
	gw, err := New(Config{
		Members:    members,
		ProbeEvery: 100 * time.Millisecond,
		Auth:       auth.Config{Mode: auth.ModeJWT, Key: key, Quotas: quotas},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	f.gw = gw
	f.front = httptest.NewServer(gw)
	t.Cleanup(f.front.Close)
	f.client = service.NewClient(f.front.URL)
	return f, key
}

// TestGatewayJWTAuth drives the authenticated fleet end to end: 401
// envelope without a token, full job lifecycle with one, the tenant
// principal threaded gateway→shard into the job record, per-tenant
// series in the gateway's /metrics, and the open operational surface.
func TestGatewayJWTAuth(t *testing.T) {
	f, key := newAuthFleet(t, 2, nil)
	ctx := context.Background()

	// No token: 401 with the unauthorized envelope on every job route.
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/jobs"},
		{"GET", "/v1/jobs/s0-jx"},
		{"GET", "/v1/jobs/s0-jx/result"},
		{"GET", "/v1/jobs/s0-jx/trace"},
		{"DELETE", "/v1/jobs/s0-jx"},
	} {
		req, err := http.NewRequest(probe.method, f.front.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s = %d, want 401", probe.method, probe.path, resp.StatusCode)
		}
		var env struct {
			Error *obs.APIError `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil ||
			env.Error.Code != obs.CodeUnauthorized || env.Error.RequestID == "" {
			t.Errorf("%s %s body %q is not the unauthorized envelope", probe.method, probe.path, body)
		}
	}

	// The client surfaces the typed error.
	if _, err := f.client.Submit(ctx, spec(500)); !errors.Is(err, &service.APIError{Code: obs.CodeUnauthorized}) {
		t.Fatalf("tokenless submit err = %v, want unauthorized", err)
	}

	// A forged token (wrong key) is rejected too.
	forged, err := auth.SignHS256([]byte("not-the-fleet-key"), auth.Claims{Tenant: "ops"})
	if err != nil {
		t.Fatal(err)
	}
	f.client.Token = forged
	if _, err := f.client.Submit(ctx, spec(500)); !errors.Is(err, &service.APIError{Code: obs.CodeUnauthorized}) {
		t.Fatalf("forged-token submit err = %v, want unauthorized", err)
	}

	// With a valid token the full lifecycle works and the job lands on
	// the shard recorded under the token's tenant — the principal
	// crossed the gateway→shard hop via the signed header.
	tok, err := auth.SignHS256(key, auth.Claims{Tenant: "ops", Exp: time.Now().Add(time.Hour).Unix()})
	if err != nil {
		t.Fatal(err)
	}
	f.client.Token = tok
	info := submitWait(t, f.client, spec(500))
	if info.Tenant != "ops" {
		t.Errorf("JobInfo.Tenant through gateway = %q, want ops", info.Tenant)
	}
	if _, err := f.client.Result(ctx, info.ID); err != nil {
		t.Fatalf("result with token: %v", err)
	}
	if body, md5hex := fetchTrace(t, f.client, info.ID, service.NewTraceOptions()); len(body) == 0 || md5hex == "" {
		t.Error("trace with token came back empty")
	}

	// A bare dev header is not a credential in jwt mode.
	req, _ := http.NewRequest("GET", f.front.URL+"/v1/jobs/"+info.ID, nil)
	req.Header.Set(auth.TenantHeader, "mallory")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unsigned dev header in jwt mode = %d, want 401", resp.StatusCode)
	}

	// Shards reject direct tokenless access as well — the fleet has no
	// open back door behind the gateway.
	if _, err := f.clients[0].Stats(ctx); err != nil {
		t.Errorf("shard stats should stay open: %v", err)
	}
	if _, err := f.clients[0].Submit(ctx, spec(501)); !errors.Is(err, &service.APIError{Code: obs.CodeUnauthorized}) {
		t.Fatalf("direct tokenless shard submit err = %v, want unauthorized", err)
	}

	// The operational read-only surface needs no token anywhere.
	for _, base := range []string{f.front.URL, f.shards[0].URL} {
		for _, path := range []string{"/v1/healthz", "/v1/stats", "/metrics"} {
			resp, err := http.Get(base + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s%s without token = %d, want 200", base, path, resp.StatusCode)
			}
		}
	}

	// Per-tenant series materialized on the gateway scrape: request
	// counts for both the 401s (no tenant — absent) and the ops 2xx
	// traffic, plus ops trace bytes on the trace route.
	mresp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	scrape := string(mbody)
	if !strings.Contains(scrape, `nmo_tenant_http_requests_total{tenant="ops",code="2xx"}`) {
		t.Errorf("gateway scrape missing ops 2xx tenant series:\n%.2000s", scrape)
	}
	if !strings.Contains(scrape, `nmo_tenant_http_response_bytes_total{tenant="ops",route="GET /v1/jobs/{id}/trace"}`) {
		t.Errorf("gateway scrape missing ops trace-bytes series")
	}

	// Shard-side tenant accounting followed the principal as well.
	st := f.scheds[0].Stats()
	st2 := f.scheds[1].Stats()
	var submitted uint64
	for _, row := range append(st.Tenants, st2.Tenants...) {
		if row.Tenant == "ops" {
			submitted += row.Submitted
		}
	}
	if submitted == 0 {
		t.Error("no shard recorded an ops submission")
	}
}

// TestGatewayRateLimit: the gateway is the terminating edge for
// per-tenant submission rates — a 1-token bucket answers the second
// rapid submission with the 429 quota_exceeded envelope, while other
// tenants are unaffected.
func TestGatewayRateLimit(t *testing.T) {
	quotas := &auth.Quotas{Tenants: map[string]auth.TenantQuota{
		"drip": {RatePerSec: 0.001, Burst: 1},
	}}
	f, key := newAuthFleet(t, 1, quotas)
	ctx := context.Background()

	tok, err := auth.SignHS256(key, auth.Claims{Tenant: "drip"})
	if err != nil {
		t.Fatal(err)
	}
	f.client.Token = tok
	if _, err := f.client.Submit(ctx, spec(510)); err != nil {
		t.Fatalf("first submission within burst: %v", err)
	}
	_, err = f.client.Submit(ctx, spec(511))
	if !errors.Is(err, &service.APIError{Code: obs.CodeQuotaExceeded}) {
		t.Fatalf("second submission err = %v, want quota_exceeded", err)
	}
	var ae *service.APIError
	if errors.As(err, &ae) {
		if ae.Status != http.StatusTooManyRequests || ae.RequestID == "" {
			t.Errorf("quota envelope = %+v, want 429 with request ID", ae)
		}
	}

	// Reads are not submissions: status polls pass while the bucket is
	// dry, so a throttled tenant can still watch its running jobs.
	otherTok, err := auth.SignHS256(key, auth.Claims{Tenant: "other"})
	if err != nil {
		t.Fatal(err)
	}
	other := service.NewClient(f.front.URL)
	other.Token = otherTok
	if _, err := other.Submit(ctx, spec(512)); err != nil {
		t.Fatalf("unthrottled tenant rejected: %v", err)
	}
}

// TestGatewayDevTenantHeader: in none mode the X-Nmo-Tenant header
// names the tenant, and the gateway forwards it to the shard with the
// internal marker so the principal survives the hop without a key.
func TestGatewayDevTenantHeader(t *testing.T) {
	f := newFleet(t, 1)

	body := strings.NewReader(mustJSON(t, spec(520)))
	req, err := http.NewRequest("POST", f.front.URL+"/v1/jobs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(auth.TenantHeader, "devteam")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dev-header submit = %d: %s", resp.StatusCode, raw)
	}
	var info service.JobInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "devteam" {
		t.Errorf("JobInfo.Tenant = %q, want devteam", info.Tenant)
	}

	// The shard recorded the tenant too (header crossed the hop).
	info2, err := f.client.Job(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Tenant != "devteam" {
		t.Errorf("proxied status Tenant = %q, want devteam", info2.Tenant)
	}

	// No header at all: the default tenant.
	plain := submitWait(t, f.client, spec(521))
	if plain.Tenant != auth.DefaultTenant {
		t.Errorf("headerless Tenant = %q, want %q", plain.Tenant, auth.DefaultTenant)
	}
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestGatewayEnvelope404And405: the gateway speaks the same envelope
// dialect as the shards on its own routing failures.
func TestGatewayEnvelope404And405(t *testing.T) {
	f := newFleet(t, 1)

	resp, err := http.Get(f.front.URL + "/v1/not-a-route")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var env struct {
		Error *obs.APIError `json:"error"`
	}
	if resp.StatusCode != http.StatusNotFound ||
		json.Unmarshal(raw, &env) != nil || env.Error == nil || env.Error.Code != obs.CodeNotFound {
		t.Errorf("gateway 404 = %d %q, want not_found envelope", resp.StatusCode, raw)
	}

	req, _ := http.NewRequest("PUT", f.front.URL+"/v1/jobs", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	env.Error = nil
	if resp.StatusCode != http.StatusMethodNotAllowed ||
		json.Unmarshal(raw, &env) != nil || env.Error == nil || env.Error.Code != obs.CodeMethodNotAllowed {
		t.Errorf("gateway 405 = %d %q, want method_not_allowed envelope", resp.StatusCode, raw)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Errorf("Allow = %q, want POST", allow)
	}

	// Unknown job IDs (malformed shard prefix) are not_found envelopes.
	f.client.Token = ""
	_, err = f.client.Job(context.Background(), "garbage-id")
	if !errors.Is(err, &service.APIError{Code: obs.CodeNotFound}) {
		t.Errorf("bad gateway ID err = %v, want not_found", err)
	}
}
