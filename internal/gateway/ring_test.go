package gateway

import (
	"fmt"
	"testing"
)

func ringOf(members ...string) *Ring {
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Content addresses are hex SHA-256 strings; shaped keys keep
		// the test honest about the real input distribution.
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8077", i+1)
	}
	return out
}

// TestRingDeterministicPlacement: placement is a pure function of the
// member set — independent rebuilds and insertion orders route every
// key identically, which is what lets many gateway instances (and
// restarts) stay stateless.
func TestRingDeterministicPlacement(t *testing.T) {
	ms := memberNames(5)
	a := ringOf(ms...)
	b := ringOf(ms[4], ms[2], ms[0], ms[3], ms[1]) // same set, shuffled inserts
	for _, k := range keys(2000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %.12s…: placement depends on insertion order (%s vs %s)",
				k, a.Lookup(k), b.Lookup(k))
		}
	}
	if got := a.Lookup(keys(1)[0]); got != ringOf(ms...).Lookup(keys(1)[0]) {
		t.Fatalf("rebuild changed placement")
	}
}

// TestRingBalance: with DefaultReplicas vnodes the per-member load
// stays near uniform for every fleet size the smoke tests run (2–8
// members).
func TestRingBalance(t *testing.T) {
	ks := keys(20000)
	for n := 2; n <= 8; n++ {
		r := ringOf(memberNames(n)...)
		counts := make(map[string]int)
		for _, k := range ks {
			counts[r.Lookup(k)]++
		}
		mean := float64(len(ks)) / float64(n)
		for m, c := range counts {
			if f := float64(c) / mean; f < 0.55 || f > 1.6 {
				t.Errorf("%d members: %s owns %.2fx the mean (%d keys)", n, m, f, c)
			}
		}
		if len(counts) != n {
			t.Errorf("%d members: only %d own any keys", n, len(counts))
		}
	}
}

// TestRingJoinRemapsMinimally: adding a member steals only its own
// arcs — every moved key moves *to* the new member, no key shuffles
// between the old members, and the moved fraction stays near 1/(n+1).
func TestRingJoinRemapsMinimally(t *testing.T) {
	ms := memberNames(5)
	r := ringOf(ms[:4]...)
	ks := keys(20000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Lookup(k)
	}

	r.Add(ms[4])
	moved := 0
	for _, k := range ks {
		after := r.Lookup(k)
		if after == before[k] {
			continue
		}
		if after != ms[4] {
			t.Fatalf("key %.12s… moved %s -> %s: a join must only move keys onto the joiner",
				k, before[k], after)
		}
		moved++
	}
	want := float64(len(ks)) / 5
	if f := float64(moved) / want; f < 0.5 || f > 1.6 {
		t.Errorf("join moved %d keys, want about %.0f (1/5 of the keyspace)", moved, want)
	}
}

// TestRingLeaveRemapsToSuccessors: removing a member re-homes exactly
// its keys, each onto the member Seq had already named as the key's
// first failover — so the gateway's walk-past-dead-members rule and an
// actual membership change agree on where everything lands.
func TestRingLeaveRemapsToSuccessors(t *testing.T) {
	ms := memberNames(5)
	r := ringOf(ms...)
	ks := keys(20000)
	victim := ms[2]
	type placement struct{ owner, successor string }
	before := make(map[string]placement, len(ks))
	for _, k := range ks {
		seq := r.Seq(k)
		if seq[0] != r.Lookup(k) {
			t.Fatalf("Seq(%.12s…)[0] = %s, want owner %s", k, seq[0], r.Lookup(k))
		}
		before[k] = placement{owner: seq[0], successor: seq[1]}
	}

	r.Remove(victim)
	for _, k := range ks {
		after := r.Lookup(k)
		p := before[k]
		if p.owner != victim {
			if after != p.owner {
				t.Fatalf("key %.12s… moved %s -> %s though its owner stayed up", k, p.owner, after)
			}
			continue
		}
		if after != p.successor {
			t.Fatalf("victim's key %.12s… re-homed to %s, want ring successor %s", k, after, p.successor)
		}
	}
}

// TestRingSeqCoversFleet: Seq enumerates every member exactly once,
// starting at the owner.
func TestRingSeqCoversFleet(t *testing.T) {
	ms := memberNames(6)
	r := ringOf(ms...)
	for _, k := range keys(200) {
		seq := r.Seq(k)
		if len(seq) != len(ms) {
			t.Fatalf("Seq returned %d members, want %d", len(seq), len(ms))
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Seq repeats %s", m)
			}
			seen[m] = true
		}
	}
}

// TestRingEmptyAndSingle: degenerate shapes answer sanely.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	if r.Seq("k") != nil {
		t.Fatalf("empty ring Seq should be nil")
	}
	r.Add("only")
	for _, k := range keys(100) {
		if r.Lookup(k) != "only" {
			t.Fatalf("single-member ring mis-routed %q", k)
		}
	}
}
