package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nmo/internal/auth"
	"nmo/internal/obs"
	"nmo/internal/service"
	"nmo/internal/zerocopy"
)

// Config sizes a gateway.
type Config struct {
	// Members are the shard daemon addresses ("host:port" or full
	// URLs). Their order fixes each shard's index — the routing prefix
	// baked into gateway job IDs — so every gateway instance configured
	// with the same list routes identically (the tier holds no state a
	// restart could lose).
	Members []string
	// Replicas is the ring's virtual-node count per member (<= 0:
	// DefaultReplicas).
	Replicas int
	// ProbeEvery is the health-probe interval (<= 0: 2s); ProbeTimeout
	// bounds one probe round-trip (<= 0: 2s) and one member leg of the
	// /v1/stats fan-out. Probes hit each member's /v1/stats.
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	// Audit is the gateway's JSONL audit sink (nil: no auditing). The
	// gateway audits the HTTP edge; job transitions are audited by the
	// shard that runs them, joined by the shared request ID.
	Audit *obs.AuditLog
	// Auth is the gateway's identity stance: mode, HS256 key, and the
	// tenant quota table. The gateway is the terminating auth edge —
	// it validates end-user credentials, charges per-tenant rate
	// limits, and forwards the resolved principal to shards as a
	// signed internal header.
	Auth auth.Config
}

// member is one shard in the registry: its client, plus the health
// state the probe loop and proxy error paths both feed. Health flips
// eagerly on proxy transport errors (a dead shard is discovered by the
// first request that hits it, not the next probe tick) and recovers
// via the probe loop.
type member struct {
	base   string // normalized base URL (also the ring label)
	addr   string // "host:port" when base is plain http — the splice dial target
	client *service.Client

	healthy atomic.Bool
	lastErr atomic.Value // string

	// pool holds idle upstream connections for the splice proxy path
	// (the gateway's own keep-alive, since splicing needs the raw
	// socket that http.Client hides).
	pool chan *upstreamConn
}

func (m *member) markDown(err error) {
	m.lastErr.Store(err.Error())
	m.healthy.Store(false)
}

func (m *member) markUp() {
	m.healthy.Store(true)
	m.lastErr.Store("")
}

func (m *member) errString() string {
	if s, ok := m.lastErr.Load().(string); ok {
		return s
	}
	return ""
}

// Gateway fronts a fleet of nmod daemons behind the daemon's own HTTP
// API: submissions are routed by consistent-hashing their content
// address (computed gateway-side with service.ContentAddress — the
// exact key the shard's cache will file the result under), job reads
// are routed by the shard prefix carried in every gateway job ID, and
// /v1/stats fans out and merges. Existing clients (service.Client,
// nmoprof -remote, nmostat -remote, plain curl) work unchanged against
// a gateway URL.
type Gateway struct {
	members []*member
	byBase  map[string]*member
	ring    *Ring
	router  *obs.Router
	httpc   *http.Client
	zc      *zerocopy.Counters
	reg     *obs.Registry
	httpm   *obs.HTTPMetrics
	auth    *auth.Middleware

	probeEvery   time.Duration
	probeTimeout time.Duration
	stop         chan struct{}
	wg           sync.WaitGroup
	closeOnce    sync.Once
}

// New builds a gateway over a fixed member list and starts its health
// probe loop. Members start healthy — the optimistic default costs at
// most one failed proxy hop before the registry learns better.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("gateway: no members configured")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	g := &Gateway{
		byBase: make(map[string]*member),
		ring:   NewRing(cfg.Replicas),
		// No overall client timeout — trace bodies legitimately stream
		// for as long as they stream — but dial and response-header
		// timeouts turn a hung-but-connected shard into a transport
		// error the registry can fail over on, instead of an in-flight
		// request stalled forever. (Every proxied endpoint writes its
		// headers at admission time, so a healthy shard always beats
		// the header timeout.)
		httpc: &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
		}},
		probeEvery:   cfg.ProbeEvery,
		probeTimeout: cfg.ProbeTimeout,
		stop:         make(chan struct{}),
		zc:           new(zerocopy.Counters),
		reg:          obs.NewRegistry(),
	}
	obs.RegisterBuildInfo(g.reg)
	service.RegisterDataPlane(g.reg, g.zc)
	g.httpm = obs.NewHTTPMetrics(g.reg, cfg.Audit)
	var err error
	if g.auth, err = auth.NewMiddleware(cfg.Auth); err != nil {
		return nil, err
	}
	for _, addr := range cfg.Members {
		c := service.NewClient(addr)
		if g.byBase[c.Base] != nil {
			return nil, fmt.Errorf("gateway: member %q duplicated", addr)
		}
		m := &member{base: c.Base, addr: dialAddr(c.Base), client: c,
			pool: make(chan *upstreamConn, upstreamPoolSize)}
		m.markUp()
		g.members = append(g.members, m)
		g.byBase[c.Base] = m
		g.ring.Add(c.Base)
	}

	// The same route table and auth stance as the shard server: job
	// routes behind the auth middleware (with the submission rate
	// limit on POST), the operational read-only surface open.
	rt := obs.NewRouter(g.httpm)
	protect, limit := g.auth.Protect, g.auth.LimitSubmit
	rt.HandleFunc("POST", "/v1/jobs", g.handleSubmit, protect, limit)
	rt.HandleFunc("GET", "/v1/jobs/{id}", g.jobProxy(""), protect)
	rt.HandleFunc("DELETE", "/v1/jobs/{id}", g.jobProxy(""), protect)
	rt.HandleFunc("GET", "/v1/jobs/{id}/result", g.jobProxy("/result"), protect)
	rt.HandleFunc("GET", "/v1/jobs/{id}/trace", g.jobProxy("/trace"), protect)
	rt.HandleFunc("GET", "/v1/stats", g.handleStats)
	rt.HandleFunc("GET", "/v1/healthz", g.handleHealthz)
	rt.Handle("GET", "/metrics", obs.Handler(g.reg))
	g.router = rt

	g.wg.Add(1)
	go g.probeLoop()
	return g, nil
}

// setTenantHeaders forwards the authenticated principal on a
// gateway→shard hop: the tenant plus an HMAC over it when a key is
// configured (the shard verifies the signature instead of re-parsing
// the JWT), or the dev internal marker in keyless none mode. Either
// way the shard sees Via "internal" and skips its own rate limiter —
// the tenant was already charged at this edge.
func (g *Gateway) setTenantHeaders(h http.Header, r *http.Request) {
	p, ok := auth.PrincipalFrom(r.Context())
	if !ok {
		return
	}
	h.Set(auth.TenantHeader, p.Tenant)
	if key := g.auth.Key(); len(key) > 0 {
		h.Set(auth.TenantSigHeader, auth.SignTenant(key, p.Tenant))
	} else {
		h.Set(auth.InternalHeader, "1")
	}
}

// Close stops the probe loop and drops the pooled upstream conns.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	for _, m := range g.members {
		for {
			select {
			case uc := <-m.pool:
				uc.close()
				continue
			default:
			}
			break
		}
	}
}

// ZeroCopy returns the gateway's data-plane counters (splice bytes on
// the proxy hop, fallback relay bytes, terminal copy outcomes). The
// daemon hands the same object to zerocopy.WrapListener.
func (g *Gateway) ZeroCopy() *zerocopy.Counters { return g.zc }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.router.ServeHTTP(w, r)
}

// probeLoop refreshes member health on a fixed cadence. One round runs
// immediately so a gateway booted against a half-dead fleet reports
// truthfully from the first healthz.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	g.probeOnce()
	t := time.NewTicker(g.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeOnce()
		}
	}
}

func (g *Gateway) probeOnce() {
	var wg sync.WaitGroup
	for _, m := range g.members {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), g.probeTimeout)
			defer cancel()
			// Liveness only: /v1/healthz costs the shard nothing (no
			// stats snapshot under the scheduler lock) and needs no
			// credentials, so probing stays cheap at any fleet size.
			if err := m.client.Healthz(ctx); err != nil {
				m.markDown(err)
			} else {
				m.markUp()
			}
		}()
	}
	wg.Wait()
}

// healthyCount returns the number of members currently believed up.
func (g *Gateway) healthyCount() int {
	n := 0
	for _, m := range g.members {
		if m.healthy.Load() {
			n++
		}
	}
	return n
}

// jobID prefixes a member-local job ID with its shard index. The
// prefix is the only routing state a job read needs, and it lives in
// the ID itself — any gateway instance over the same member list can
// serve it.
func jobID(shard int, id string) string {
	return fmt.Sprintf("s%d-%s", shard, id)
}

// splitJobID resolves a gateway job ID back to (shard index, inner
// ID).
func (g *Gateway) splitJobID(id string) (int, string, error) {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return 0, "", fmt.Errorf("unknown job %q (gateway IDs look like s0-j...)", id)
	}
	idxStr, inner, ok := strings.Cut(rest, "-")
	if !ok || inner == "" {
		return 0, "", fmt.Errorf("unknown job %q (gateway IDs look like s0-j...)", id)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 || idx >= len(g.members) {
		return 0, "", fmt.Errorf("unknown job %q (no shard %q)", id, idxStr)
	}
	return idx, inner, nil
}

// shardIndex maps a member back to its configured index.
func (g *Gateway) shardIndex(m *member) int {
	for i, o := range g.members {
		if o == m {
			return i
		}
	}
	return -1 // unreachable: members is fixed at construction
}

// handleSubmit routes a submission: hash the spec's content address,
// walk the ring sequence from its owner, and submit to the first
// member that takes it. Unhealthy members are skipped (bounded
// re-mapping: only arcs owned by dead shards move, each to its ring
// successor); a transport failure marks the member down and moves on,
// so a freshly-dead shard costs one failed hop, not a failed job.
// Shard-side HTTP rejections (400 bad spec, 429 queue full, 503
// shutting down) pass through verbatim — they are answers, not
// routing failures.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxSpecBytes))
	if err != nil {
		obs.WriteError(w, r, http.StatusBadRequest, obs.CodeBadSpec, "bad job spec: "+err.Error())
		return
	}
	var spec service.JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		obs.WriteError(w, r, http.StatusBadRequest, obs.CodeBadSpec, "bad job spec: "+err.Error())
		return
	}
	key, err := service.ContentAddress(spec)
	if err != nil {
		// The same rejection the shard would produce, without spending
		// a network hop on a spec no member will accept.
		obs.WriteError(w, r, http.StatusBadRequest, obs.CodeBadSpec, err.Error())
		return
	}

	// Candidate order: the ring sequence with healthy members first.
	// The unhealthy tail means a fleet whose probes all went stale
	// still gets every member tried before the gateway gives up.
	seq := g.ring.Seq(key)
	candidates := make([]*member, 0, len(seq))
	for _, base := range seq {
		if m := g.byBase[base]; m.healthy.Load() {
			candidates = append(candidates, m)
		}
	}
	for _, base := range seq {
		if m := g.byBase[base]; !m.healthy.Load() {
			candidates = append(candidates, m)
		}
	}
	var lastErr error
	for _, m := range candidates {
		done, err := g.submitTo(w, r, m, body)
		if done {
			return
		}
		lastErr = err
	}
	obs.WriteError(w, r, http.StatusServiceUnavailable, obs.CodeUpstream,
		fmt.Sprintf("no reachable shard for key %.12s…: %v", key, lastErr))
}

// submitTo forwards a submission to one member. done means a response
// was written (success or a shard-side rejection passed through);
// false with an error means the member was unreachable and the caller
// should try the next ring successor.
func (g *Gateway) submitTo(w http.ResponseWriter, r *http.Request, m *member, body []byte) (done bool, err error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		m.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, obs.RequestID(r.Context()))
	g.setTenantHeaders(req.Header, r)
	resp, err := g.httpc.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			return true, err // the client went away; nothing to write
		}
		m.markDown(err)
		return false, err
	}
	defer resp.Body.Close()
	m.markUp()
	if resp.StatusCode != http.StatusOK {
		g.copyResponse(w, r, resp, nil)
		return true, nil
	}
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		obs.WriteError(w, r, http.StatusBadGateway, obs.CodeUpstream,
			fmt.Sprintf("shard %s: bad submit response: %v", m.base, err))
		return true, nil
	}
	info.ID = jobID(g.shardIndex(m), info.ID)
	service.WriteJSON(w, http.StatusOK, info)
	return true, nil
}

// jobProxy builds the handler for one by-ID route (suffix "" for
// status/cancel, "/result", "/trace"): it routes on the ID's shard
// prefix and proxies verbatim — including the trace stream's
// chunking, filter query push-down, and X-Nmo-Trace-Md5 header.
// JobInfo responses get their ID re-qualified so clients only ever
// see gateway IDs. The suffix comes from the matched route, not the
// request path, and the inner ID is re-escaped on the way out — an ID
// crafted to decode into slashes or query metacharacters addresses
// nothing but a (nonexistent) job of that literal name.
func (g *Gateway) jobProxy(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g.proxyJob(w, r, suffix)
	}
}

func (g *Gateway) proxyJob(w http.ResponseWriter, r *http.Request, suffix string) {
	shard, inner, err := g.splitJobID(r.PathValue("id"))
	if err != nil {
		obs.WriteError(w, r, http.StatusNotFound, obs.CodeNotFound, err.Error())
		return
	}
	m := g.members[shard]

	u := m.base + "/v1/jobs/" + url.PathEscape(inner) + suffix
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}

	// Trace reads over a zero-copy downstream conn take the splice
	// proxy: the gateway speaks HTTP/1.1 to the shard on its own
	// pooled TCP conn (http.Client hides the socket splice needs) and
	// moves the sized body kernel-side. Any failure before the first
	// response byte falls through to the classic client path below.
	if suffix == "/trace" && r.Method == http.MethodGet && g.spliceProxy(w, r, m, u) {
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, nil)
	if err != nil {
		obs.WriteError(w, r, http.StatusInternalServerError, obs.CodeInternal, err.Error())
		return
	}
	req.Header.Set(obs.RequestIDHeader, obs.RequestID(r.Context()))
	g.setTenantHeaders(req.Header, r)
	resp, err := g.httpc.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		m.markDown(err)
		obs.WriteError(w, r, http.StatusBadGateway, obs.CodeUpstream,
			fmt.Sprintf("shard %s unreachable: %v", m.base, err))
		return
	}
	defer resp.Body.Close()
	m.markUp()

	// Status and cancel answer with a JobInfo whose ID must be
	// re-qualified; result and trace bodies carry no member-local IDs
	// and stream through untouched.
	if resp.StatusCode == http.StatusOK && suffix == "" {
		var info service.JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			obs.WriteError(w, r, http.StatusBadGateway, obs.CodeUpstream,
				fmt.Sprintf("shard %s: bad response: %v", m.base, err))
			return
		}
		info.ID = jobID(shard, info.ID)
		service.WriteJSON(w, http.StatusOK, info)
		return
	}
	g.copyResponse(w, r, resp, flusherFor(w))
}

// copyBufPool recycles the proxy copy buffers: 256 KB apiece, one per
// in-flight streamed response instead of one allocation per request.
var copyBufPool = sync.Pool{
	New: func() interface{} { b := make([]byte, 256<<10); return &b },
}

// flushWriter flushes after every Write, keeping proxied trace streams
// incremental through io.CopyBuffer. It deliberately does NOT
// implement io.ReaderFrom — the pooled buffer below stays the copy
// granularity, and each chunk reaches the client as soon as it is
// relayed.
type flushWriter struct {
	w  io.Writer
	fl http.Flusher
}

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if f.fl != nil {
		f.fl.Flush()
	}
	return n, err
}

// copyResponse relays a member response through http.Client plumbing:
// relevant headers, status, then the body. Sized responses pass
// straight through io.Copy; unsized (chunked) responses — filtered
// restreams — go through the pooled copy buffer, flushed
// chunk-by-chunk when fl is set so trace streams stay incremental
// through the gateway. This is the fallback relay (the splice proxy
// handles trace bodies on zero-copy conns), so trace bytes moved here
// count as fallback, and a broken copy is classified — client abort
// vs upstream failure — instead of silently discarded.
func (g *Gateway) copyResponse(w http.ResponseWriter, r *http.Request, resp *http.Response, fl http.Flusher) {
	for _, h := range []string{"Content-Type", "Content-Length", "X-Nmo-Trace-Md5"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	isTrace := resp.Header.Get("Content-Type") == "application/octet-stream"
	w.WriteHeader(resp.StatusCode)
	var n int64
	var err error
	if resp.ContentLength >= 0 {
		n, err = io.Copy(w, resp.Body)
	} else {
		bufp := copyBufPool.Get().(*[]byte)
		defer copyBufPool.Put(bufp)
		var dst io.Writer = w
		if fl != nil {
			dst = flushWriter{w: w, fl: fl}
		}
		n, err = io.CopyBuffer(dst, resp.Body, *bufp)
	}
	if isTrace {
		g.zc.AddFallback(n)
		g.zc.CountCopyErr(r.Context(), err)
	}
}

func flusherFor(w http.ResponseWriter) http.Flusher {
	fl, _ := w.(http.Flusher)
	return fl
}

// handleStats fans /v1/stats out to every member and merges the
// answers into a FleetStats: summed counters inline (so a plain
// SchedStats decode of a gateway URL still works) plus one row per
// member. The fan-out is live — the smoke tests compare engine-run
// counters across submissions, which cached probe snapshots would
// blur. Members that fail the fan-out are reported unhealthy with no
// Stats row and excluded from the sums.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	fleet := service.FleetStats{Members: make([]service.MemberStats, len(g.members))}
	var wg sync.WaitGroup
	for i, m := range g.members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), g.probeTimeout)
			defer cancel()
			st, err := m.client.Stats(ctx)
			row := service.MemberStats{Member: m.base, Shard: i}
			switch {
			case err == nil:
				m.markUp()
				row.Healthy = true
				row.Stats = &st
			case r.Context().Err() != nil:
				// The *requester* went away mid-fan-out; every member
				// leg fails with a context error that says nothing
				// about shard health. Don't mark the fleet down over
				// it (nobody reads this response anyway).
				row.Healthy = m.healthy.Load()
				row.Error = err.Error()
			default:
				m.markDown(err)
				row.Error = m.errString()
			}
			fleet.Members[i] = row
		}()
	}
	wg.Wait()
	for _, row := range fleet.Members {
		if row.Stats == nil {
			continue
		}
		st := row.Stats
		fleet.Submitted += st.Submitted
		fleet.Rejected += st.Rejected
		fleet.EngineRuns += st.EngineRuns
		fleet.CacheHits += st.CacheHits
		fleet.Coalesced += st.Coalesced
		fleet.CacheEntries += st.CacheEntries
		fleet.CacheEvictions += st.CacheEvictions
		fleet.CacheBytesMem += st.CacheBytesMem
		fleet.CacheBytesDisk += st.CacheBytesDisk
		fleet.CacheDemotions += st.CacheDemotions
		fleet.CachePromotions += st.CachePromotions
		fleet.Queued += st.Queued
		fleet.Running += st.Running
		fleet.ZcSendfileBytes += st.ZcSendfileBytes
		fleet.ZcSpliceBytes += st.ZcSpliceBytes
		fleet.ZcFallbackBytes += st.ZcFallbackBytes
		fleet.TraceClientAborts += st.TraceClientAborts
		fleet.TraceServeErrors += st.TraceServeErrors
		fleet.JobPhases = mergePhases(fleet.JobPhases, st.JobPhases)
		fleet.Tenants = mergeTenants(fleet.Tenants, st.Tenants)
	}
	// Uptime is this gateway's own clock — summing member uptimes
	// would produce a meaningless "fleet-seconds" figure.
	fleet.UptimeSec = obs.Uptime()
	// The gateway is a data-plane hop of its own: its splice/relay
	// bytes fold into the same inline counters (shards sendfile,
	// the gateway splices — both visible in one fleet view).
	fleet.ZcSendfileBytes += g.zc.SendfileBytes()
	fleet.ZcSpliceBytes += g.zc.SpliceBytes()
	fleet.ZcFallbackBytes += g.zc.FallbackBytes()
	fleet.TraceClientAborts += g.zc.ClientAborts()
	fleet.TraceServeErrors += g.zc.Errors()
	service.WriteJSON(w, http.StatusOK, fleet)
}

// mergeTenants accumulates one member's per-tenant rows into the
// fleet view, matching by tenant name (the weight is a quota-file
// constant, identical across shards; the counters sum).
func mergeTenants(acc, add []service.TenantStat) []service.TenantStat {
	for _, t := range add {
		found := false
		for i := range acc {
			if acc[i].Tenant == t.Tenant {
				acc[i].Queued += t.Queued
				acc[i].Running += t.Running
				acc[i].InFlight += t.InFlight
				acc[i].Submitted += t.Submitted
				acc[i].EngineRuns += t.EngineRuns
				acc[i].Rejected += t.Rejected
				found = true
				break
			}
		}
		if !found {
			acc = append(acc, t)
		}
	}
	return acc
}

// mergePhases accumulates one member's phase summary into the fleet
// totals, matching rows by phase name so shards running different
// builds (or none) merge cleanly.
func mergePhases(acc, add []service.PhaseStat) []service.PhaseStat {
	for _, p := range add {
		found := false
		for i := range acc {
			if acc[i].Phase == p.Phase {
				acc[i].Count += p.Count
				acc[i].TotalSec += p.TotalSec
				found = true
				break
			}
		}
		if !found {
			acc = append(acc, p)
		}
	}
	return acc
}

// handleHealthz is healthy while at least one shard is: the fleet
// degrades before it dies.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := g.healthyCount()
	if up == 0 {
		obs.WriteError(w, r, http.StatusServiceUnavailable, obs.CodeUpstream,
			fmt.Sprintf("no healthy members (%d configured)", len(g.members)))
		return
	}
	fmt.Fprintf(w, "ok (%d/%d members healthy)\n", up, len(g.members))
}
