package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFreqSeconds(t *testing.T) {
	f := Freq{Hz: 3_000_000_000}
	if got := f.Seconds(3_000_000_000); got != 1.0 {
		t.Errorf("Seconds(3e9) = %v, want 1.0", got)
	}
	if got := f.CyclesOf(2.0); got != 6_000_000_000 {
		t.Errorf("CyclesOf(2.0) = %v, want 6e9", got)
	}
}

func TestFreqString(t *testing.T) {
	cases := []struct {
		hz   uint64
		want string
	}{
		{3_000_000_000, "3.0 GHz"},
		{1_500_000, "1.5 MHz"},
		{2_000, "2.0 kHz"},
		{500, "500 Hz"},
	}
	for _, c := range cases {
		if got := (Freq{Hz: c.hz}).String(); got != c.want {
			t.Errorf("Freq{%d}.String() = %q, want %q", c.hz, got, c.want)
		}
	}
}

func TestTimescaleIdentityShift(t *testing.T) {
	ts := Timescale{TimeZero: 100, TimeShift: 0, TimeMult: 1}
	if got := ts.ToNanos(42); got != 142 {
		t.Errorf("ToNanos(42) = %d, want 142", got)
	}
}

func TestTimescaleForRoundTrip(t *testing.T) {
	// 3 GHz, timer tick every 3 cycles => 1 ns per tick.
	ts := TimescaleFor(Freq{Hz: 3_000_000_000}, 3, 0)
	for _, raw := range []uint64{0, 1, 1000, 1 << 20, 1 << 34} {
		got := ts.ToNanos(raw)
		want := float64(raw) // 1 ns per tick
		if math.Abs(float64(got)-want) > want*0.001+1 {
			t.Errorf("ToNanos(%d) = %d, want ~%v", raw, got, want)
		}
	}
}

func TestTimescaleForScaledClock(t *testing.T) {
	// 1 MHz sim clock, tick per cycle => 1000 ns per tick.
	ts := TimescaleFor(Freq{Hz: 1_000_000}, 1, 5)
	got := ts.ToNanos(1000)
	want := uint64(5 + 1000*1000)
	if diff := int64(got) - int64(want); diff < -1100 || diff > 1100 {
		t.Errorf("ToNanos(1000) = %d, want ~%d", got, want)
	}
}

func TestTimescaleMonotoneProperty(t *testing.T) {
	ts := TimescaleFor(Freq{Hz: 3_000_000_000}, 8, 1234)
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return ts.ToNanos(x) <= ts.ToNanos(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimescaleZeroDivGuard(t *testing.T) {
	ts := TimescaleFor(Freq{Hz: 1_000_000_000}, 0, 0) // timerDiv 0 -> 1
	if ts.TimeMult == 0 {
		t.Error("TimeMult must never be zero")
	}
}
