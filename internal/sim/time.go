// Package sim defines the simulated time base shared by every
// component in the repository.
//
// The paper's testbed is a 3.0 GHz Ampere Altra Max; all hardware
// components (cores, caches, the SPE unit, the perf kernel) advance a
// cycle counter, and everything user-visible (bandwidth series,
// temporal capacity plots, SPE timestamps) is derived from cycles
// through an explicit conversion. There is deliberately no use of the
// host wall clock anywhere in the simulation: determinism is a design
// requirement (see DESIGN.md §2).
//
// sim also implements the perf-style timescale conversion
// (time_zero/time_shift/time_mult) that NMO performs when translating
// raw ARM SPE timestamps into the perf clock domain (§IV-A of the
// paper).
package sim

import "fmt"

// Cycles is a point in simulated time, measured in CPU cycles since
// machine reset. It is also used for durations; the meaning is clear
// from context.
type Cycles uint64

// Freq describes the simulated core clock.
type Freq struct {
	// Hz is the number of cycles per simulated second. The cycle-
	// accurate experiments use 3.0 GHz to match Table II; the
	// phase-level CloudSuite experiments use a scaled-down clock so
	// that 120 s of application time stays cheap to simulate
	// (DESIGN.md §4).
	Hz uint64
}

// Seconds converts a cycle count to simulated seconds.
func (f Freq) Seconds(c Cycles) float64 {
	return float64(c) / float64(f.Hz)
}

// CyclesOf converts a simulated duration in seconds to cycles.
func (f Freq) CyclesOf(sec float64) Cycles {
	return Cycles(sec * float64(f.Hz))
}

func (f Freq) String() string {
	switch {
	case f.Hz >= 1e9:
		return fmt.Sprintf("%.1f GHz", float64(f.Hz)/1e9)
	case f.Hz >= 1e6:
		return fmt.Sprintf("%.1f MHz", float64(f.Hz)/1e6)
	case f.Hz >= 1e3:
		return fmt.Sprintf("%.1f kHz", float64(f.Hz)/1e3)
	}
	return fmt.Sprintf("%d Hz", f.Hz)
}

// Timescale mirrors the time_zero / time_shift / time_mult fields of
// the perf_event_mmap_page metadata page. The kernel publishes these
// so userspace can convert raw hardware timestamps t into the perf
// clock (nanoseconds) as
//
//	ns = time_zero + (t * time_mult) >> time_shift
//
// The SPE timestamp timer uses a different timescale than perf, so NMO
// performs exactly this conversion for API compatibility with the x86
// backend (§IV-A). The simulated kernel publishes a Timescale whose
// raw domain is the SPE generic timer and whose output domain is
// nanoseconds of simulated time.
type Timescale struct {
	TimeZero  uint64 // ns offset added after scaling
	TimeShift uint32 // right shift applied to the scaled value
	TimeMult  uint32 // multiplier applied to the raw timestamp
}

// ToNanos converts a raw hardware timestamp to perf-clock nanoseconds.
func (ts Timescale) ToNanos(raw uint64) uint64 {
	// 128-bit-safe widening multiply is unnecessary here: raw counts
	// and multipliers in this simulation stay far below the overflow
	// point, but we still split the multiply to keep headroom for
	// long phase-level runs.
	hi := (raw >> 32) * uint64(ts.TimeMult)
	lo := (raw & 0xFFFFFFFF) * uint64(ts.TimeMult)
	scaled := (hi << (32 - ts.TimeShift)) + (lo >> ts.TimeShift)
	return ts.TimeZero + scaled
}

// TimescaleFor builds the Timescale the simulated kernel publishes for
// a machine running at freq, with the SPE timer ticking once per
// timerDiv cycles. The resulting conversion maps raw timer ticks to
// nanoseconds of simulated time.
func TimescaleFor(freq Freq, timerDiv uint64, zero uint64) Timescale {
	if timerDiv == 0 {
		timerDiv = 1
	}
	// One timer tick is timerDiv cycles = timerDiv * 1e9/Hz ns.
	// Represent that ratio as mult >> shift with shift fixed at 16,
	// which gives ~5 decimal digits of precision: plenty, since the
	// decoder only needs ordering and second-scale binning.
	const shift = 16
	nsPerTick := float64(timerDiv) * 1e9 / float64(freq.Hz)
	mult := uint32(nsPerTick * (1 << shift))
	if mult == 0 {
		mult = 1
	}
	return Timescale{TimeZero: zero, TimeShift: shift, TimeMult: mult}
}
