// Package spe models the ARM Statistical Profiling Extension sampling
// unit, one instance per core.
//
// The unit implements the workflow of the paper's Fig. 1:
//
//  1. a sampling interval counter is reset to the configured period
//     (plus a small random perturbation to avoid phase lock) and
//     decremented as each operation is decoded;
//  2. when the counter reaches zero the operation is selected and its
//     execution pipeline is *tracked* — the unit has a single tracking
//     slot, so if the previous sample has not yet completed its
//     pipeline, the new sample is dropped and counted as a
//     **collision** (this is the mechanism behind the accuracy
//     collapse at small sampling periods, Figs. 7–8);
//  3. on completion the sample passes a programmable filter (operation
//     type, minimum latency); surviving samples are encoded as packet
//     records and written to the aux buffer via the Sink.
//
// Collided samples are discarded before filtering and before any
// buffer write, so they cost no time — which is why STREAM and CFD
// show *lower* overhead at period 1000 than at 4000 in Fig. 8b.
package spe

import (
	"nmo/internal/isa"
	"nmo/internal/sim"
	"nmo/internal/spepkt"
	"nmo/internal/xrand"
)

// Config programs the sampling unit. It corresponds to the PMSCR /
// PMSIRR / PMSFCR system registers, which the perf driver fills from
// the perf_event_attr config fields.
type Config struct {
	// Period is the sampling interval (operations between samples).
	Period uint64
	// JitterBits sets the width of the random perturbation applied to
	// the interval counter on reload; 0 disables dither.
	JitterBits uint
	// SampleLoads / SampleStores / SampleBranches enable operation
	// classes (PMSFCR.LD/ST/B). NMO never enables branches because of
	// the known Neoverse sampling bias (§IV-A).
	SampleLoads    bool
	SampleStores   bool
	SampleBranches bool
	// MinLatency discards samples whose total latency is below the
	// threshold (PMSLATFR); 0 keeps everything.
	MinLatency uint16
	// CollectPA includes physical addresses in records (pa_enable).
	CollectPA bool
	// TrackingSlots is the number of in-flight samples the unit can
	// track. Real SPE implementations have one; the knob exists for
	// the ablation study in bench_test.go.
	TrackingSlots int
	// TimerDiv is the number of CPU cycles per SPE timer tick.
	TimerDiv uint64
	// CorruptOnCollision, when nonzero, makes roughly 1/N collisions
	// leave a mangled (zero-timestamp) record in the aux stream, as
	// observed on real hardware; the NMO decoder must skip these.
	CorruptOnCollision uint32
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = 4096
	}
	if c.TrackingSlots <= 0 {
		c.TrackingSlots = 1
	}
	if c.TimerDiv == 0 {
		c.TimerDiv = 1
	}
	return c
}

// Sink receives encoded sample records. Write reports whether the
// record was accepted; false means the aux buffer had no room and the
// sample was truncated.
type Sink interface {
	WriteRecord(now sim.Cycles, rec []byte) bool
}

// Stats counts the unit's activity since the last Reset.
type Stats struct {
	OpsSeen    uint64 // operations decoded while enabled
	Selected   uint64 // interval counter expiries
	Collisions uint64 // samples dropped: tracking slot busy
	Filtered   uint64 // samples dropped by the programmable filter
	Emitted    uint64 // records accepted by the sink
	Truncated  uint64 // records rejected by the sink (buffer full)
	Corrupted  uint64 // mangled records emitted after collisions
}

// Unit is one core's SPE sampling hardware. Not safe for concurrent
// use; the machine drives each core single-threaded.
type Unit struct {
	cfg     Config
	rng     *xrand.RNG
	sink    Sink
	enabled bool

	counter int64
	slots   []sim.Cycles // busy-until per tracking slot

	stats Stats
	buf   [spepkt.RecordSize]byte
}

// NewUnit constructs a disabled unit. rng must be non-nil; sampling
// perturbation and collision corruption draw from it.
func NewUnit(cfg Config, rng *xrand.RNG, sink Sink) *Unit {
	cfg = cfg.withDefaults()
	u := &Unit{
		cfg:   cfg,
		rng:   rng,
		sink:  sink,
		slots: make([]sim.Cycles, cfg.TrackingSlots),
	}
	u.reload()
	return u
}

// Enable starts sampling. The interval counter restarts from a fresh
// reload, matching PMSCR_EL1.E0SPE/E1SPE semantics.
func (u *Unit) Enable() {
	u.enabled = true
	u.reload()
}

// Disable stops sampling immediately. In-flight tracked samples are
// abandoned.
func (u *Unit) Disable() {
	u.enabled = false
	for i := range u.slots {
		u.slots[i] = 0
	}
}

// Enabled reports whether the unit is sampling.
func (u *Unit) Enabled() bool { return u.enabled }

// Stats returns a copy of the counters.
func (u *Unit) Stats() Stats { return u.stats }

// ResetStats zeroes the counters.
func (u *Unit) ResetStats() { u.stats = Stats{} }

// Config returns the active configuration.
func (u *Unit) Config() Config { return u.cfg }

// reload resets the interval counter to period plus dither.
func (u *Unit) reload() {
	p := int64(u.cfg.Period) + u.rng.Perturb(u.cfg.JitterBits)
	if p < 1 {
		p = 1
	}
	u.counter = p
}

// OnOp is the per-operation hook called by the core model as each
// operation is decoded. lat is the operation's total pipeline latency
// in cycles, level the memory level that served it (memsim.Level
// values), tlbMiss whether translation walked the page table.
//
// The hot path — counter decrement, no expiry — is a handful of
// instructions; everything else happens at most once per period.
func (u *Unit) OnOp(now sim.Cycles, op *isa.Op, lat uint32, level uint8, tlbMiss, remote bool) {
	if !u.enabled {
		return
	}
	u.stats.OpsSeen++
	u.counter--
	if u.counter > 0 {
		return
	}
	u.stats.Selected++
	u.reload()

	// Claim a tracking slot; all busy means collision, and the sample
	// is dropped before filtering (Fig. 1; §VII).
	slot := -1
	for i, busyUntil := range u.slots {
		if busyUntil <= now {
			slot = i
			break
		}
	}
	if slot < 0 {
		u.stats.Collisions++
		if u.cfg.CorruptOnCollision > 0 &&
			u.rng.Uint32()%u.cfg.CorruptOnCollision == 0 {
			u.emitCorrupted(now)
		}
		return
	}
	done := now + sim.Cycles(lat)
	u.slots[slot] = done

	// Programmable filter: operation class and minimum latency.
	if !u.classEnabled(op.Kind) {
		u.stats.Filtered++
		return
	}
	if op.Kind.IsMemory() && uint16(lat) < u.cfg.MinLatency {
		u.stats.Filtered++
		return
	}

	rec := spepkt.Record{
		PC:       op.PC,
		VA:       op.Addr,
		TS:       u.timestamp(done),
		Events:   spepkt.EventsForOutcome(level, tlbMiss, remote),
		IssueLat: issueLat(lat),
		TotalLat: clamp16(lat),
		Op:       opType(op.Kind),
		Source:   spepkt.SourceForLevel(level),
	}
	if tlbMiss {
		rec.XlatLat = 28
	}
	if u.cfg.CollectPA {
		// The simulation has no real page tables; model an identity-
		// with-offset mapping so PA-enabled traces are distinguishable.
		rec.PA = op.Addr ^ 0xFFFF_0000_0000
	}
	spepkt.Encode(u.buf[:], &rec)
	if u.sink.WriteRecord(done, u.buf[:]) {
		u.stats.Emitted++
	} else {
		u.stats.Truncated++
	}
}

// emitCorrupted writes a mangled record (zero timestamp) such as real
// traces contain after collisions; the decoder must skip it.
func (u *Unit) emitCorrupted(now sim.Cycles) {
	rec := spepkt.Record{VA: 0xdead, TS: 0}
	spepkt.Encode(u.buf[:], &rec)
	// Stomp the VA header as well half the time.
	if u.rng.Uint32()&1 == 0 {
		u.buf[spepkt.VAHeaderOffset] = 0x00
	}
	if u.sink.WriteRecord(now, u.buf[:]) {
		u.stats.Corrupted++
	} else {
		u.stats.Truncated++
	}
}

func (u *Unit) classEnabled(k isa.Kind) bool {
	switch k {
	case isa.KindLoad, isa.KindBlockLoad:
		return u.cfg.SampleLoads
	case isa.KindStore, isa.KindBlockStore:
		return u.cfg.SampleStores
	case isa.KindBranch:
		return u.cfg.SampleBranches
	default:
		return false
	}
}

// timestamp converts a completion cycle to a raw SPE timer value,
// guaranteed nonzero (a zero timestamp marks a corrupt record).
func (u *Unit) timestamp(done sim.Cycles) uint64 {
	t := uint64(done) / u.cfg.TimerDiv
	if t == 0 {
		t = 1
	}
	return t
}

// issueLat approximates the front-end portion of the pipeline latency.
func issueLat(total uint32) uint16 {
	l := total / 8
	if l < 1 {
		l = 1
	}
	return clamp16(l)
}

func clamp16(v uint32) uint16 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

func opType(k isa.Kind) uint8 {
	if k.IsWrite() {
		return spepkt.OpStore
	}
	return spepkt.OpLoad
}
