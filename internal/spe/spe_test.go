package spe

import (
	"testing"

	"nmo/internal/isa"
	"nmo/internal/sim"
	"nmo/internal/spepkt"
	"nmo/internal/xrand"
)

// memSink collects records and can simulate a full buffer.
type memSink struct {
	records []spepkt.Record
	raw     [][]byte
	full    bool
}

func (s *memSink) WriteRecord(_ sim.Cycles, rec []byte) bool {
	if s.full {
		return false
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	s.raw = append(s.raw, cp)
	var r spepkt.Record
	if err := spepkt.Decode(cp, &r); err == nil {
		s.records = append(s.records, r)
	}
	return true
}

func loadOp(addr uint64) isa.Op {
	return isa.Op{Kind: isa.KindLoad, Addr: addr, PC: 0x400000, Size: 8}
}

func newUnit(cfg Config, sink Sink) *Unit {
	if cfg.Period == 0 {
		cfg.Period = 10
	}
	cfg.SampleLoads = true
	cfg.SampleStores = true
	return NewUnit(cfg, xrand.New(1), sink)
}

func TestDisabledUnitIgnoresOps(t *testing.T) {
	sink := &memSink{}
	u := newUnit(Config{}, sink)
	op := loadOp(0x1000)
	for i := 0; i < 100; i++ {
		u.OnOp(sim.Cycles(i), &op, 4, 0, false, false)
	}
	if st := u.Stats(); st.OpsSeen != 0 || len(sink.records) != 0 {
		t.Errorf("disabled unit was active: %+v", st)
	}
}

func TestSamplingRate(t *testing.T) {
	sink := &memSink{}
	u := newUnit(Config{Period: 100}, sink)
	u.Enable()
	op := loadOp(0x1000)
	const n = 100000
	now := sim.Cycles(0)
	for i := 0; i < n; i++ {
		u.OnOp(now, &op, 4, 0, false, false)
		now += 4
	}
	st := u.Stats()
	want := uint64(n / 100)
	if st.Selected < want*9/10 || st.Selected > want*11/10 {
		t.Errorf("Selected = %d, want ~%d", st.Selected, want)
	}
	if st.Collisions != 0 {
		t.Errorf("collisions = %d with latency << period spacing", st.Collisions)
	}
	if uint64(len(sink.records)) != st.Emitted {
		t.Errorf("sink has %d records, stats say %d", len(sink.records), st.Emitted)
	}
}

func TestJitterChangesSelection(t *testing.T) {
	run := func(jitter uint) uint64 {
		sink := &memSink{}
		cfg := Config{Period: 97, JitterBits: jitter}
		cfg.SampleLoads = true
		u := NewUnit(cfg, xrand.New(42), sink)
		u.Enable()
		op := loadOp(0x1000)
		for i := 0; i < 50000; i++ {
			u.OnOp(sim.Cycles(i*4), &op, 4, 0, false, false)
		}
		return u.Stats().Selected
	}
	a, b := run(0), run(6)
	if a == 0 || b == 0 {
		t.Fatal("no samples selected")
	}
	// Rates should be within 5% of each other: dither is zero-mean.
	ratio := float64(a) / float64(b)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("jitter biased the rate: %d vs %d", a, b)
	}
}

func TestCollisionWhenTrackingBusy(t *testing.T) {
	sink := &memSink{}
	u := newUnit(Config{Period: 10}, sink)
	u.Enable()
	op := loadOp(0x2000)
	// Latency 1000 cycles but ops only 1 cycle apart: every selection
	// after the first, within the tracking window, collides.
	now := sim.Cycles(0)
	for i := 0; i < 100; i++ {
		u.OnOp(now, &op, 1000, 3, false, false)
		now++
	}
	st := u.Stats()
	if st.Selected < 5 {
		t.Fatalf("too few selections: %+v", st)
	}
	if st.Collisions == 0 {
		t.Error("expected collisions with latency >> period")
	}
	if st.Emitted != 1 {
		t.Errorf("Emitted = %d, want 1 (only the first tracked sample)", st.Emitted)
	}
}

func TestNoCollisionAfterTrackingCompletes(t *testing.T) {
	sink := &memSink{}
	u := newUnit(Config{Period: 10}, sink)
	u.Enable()
	op := loadOp(0x2000)
	// Ops spaced 100 cycles apart, latency 50: tracking always done
	// before the next selection.
	now := sim.Cycles(0)
	for i := 0; i < 1000; i++ {
		u.OnOp(now, &op, 50, 1, false, false)
		now += 100
	}
	if st := u.Stats(); st.Collisions != 0 {
		t.Errorf("Collisions = %d, want 0", st.Collisions)
	}
}

func TestDualSlotAblation(t *testing.T) {
	count := func(slots int) uint64 {
		sink := &memSink{}
		cfg := Config{Period: 10, TrackingSlots: slots}
		cfg.SampleLoads = true
		u := NewUnit(cfg, xrand.New(7), sink)
		u.Enable()
		op := loadOp(0x2000)
		now := sim.Cycles(0)
		for i := 0; i < 10000; i++ {
			u.OnOp(now, &op, 300, 3, false, false)
			now += 2
		}
		return u.Stats().Collisions
	}
	one, two := count(1), count(2)
	if two >= one {
		t.Errorf("2 slots should collide less: 1-slot=%d 2-slot=%d", one, two)
	}
}

func TestFilterByClass(t *testing.T) {
	sink := &memSink{}
	cfg := Config{Period: 1, SampleLoads: true} // stores & branches off
	u := NewUnit(cfg, xrand.New(1), sink)
	u.Enable()
	ops := []isa.Op{
		{Kind: isa.KindLoad, Addr: 0x10, PC: 1},
		{Kind: isa.KindStore, Addr: 0x20, PC: 2},
		{Kind: isa.KindBranch, Addr: 0x30, PC: 3},
		{Kind: isa.KindALU, PC: 4},
	}
	now := sim.Cycles(0)
	for i := 0; i < 100; i++ {
		for j := range ops {
			u.OnOp(now, &ops[j], 2, 0, false, false)
			now += 10
		}
	}
	for _, r := range sink.records {
		if r.Op != spepkt.OpLoad || r.VA != 0x10 {
			t.Fatalf("non-load leaked through filter: %+v", r)
		}
	}
	st := u.Stats()
	if st.Filtered == 0 {
		t.Error("filter dropped nothing")
	}
	if st.Emitted == 0 {
		t.Error("no loads emitted")
	}
}

func TestMinLatencyFilter(t *testing.T) {
	sink := &memSink{}
	cfg := Config{Period: 1, SampleLoads: true, MinLatency: 100}
	u := NewUnit(cfg, xrand.New(1), sink)
	u.Enable()
	fast := loadOp(0x100)
	slow := loadOp(0x200)
	now := sim.Cycles(0)
	for i := 0; i < 50; i++ {
		u.OnOp(now, &fast, 4, 0, false, false)
		now += 1000
		u.OnOp(now, &slow, 250, 3, false, false)
		now += 1000
	}
	for _, r := range sink.records {
		if r.VA != 0x200 {
			t.Fatalf("fast access leaked through latency filter: %+v", r)
		}
	}
	if len(sink.records) == 0 {
		t.Fatal("slow accesses not recorded")
	}
}

func TestRecordContents(t *testing.T) {
	sink := &memSink{}
	cfg := Config{Period: 1, SampleLoads: true, SampleStores: true, TimerDiv: 4}
	u := NewUnit(cfg, xrand.New(1), sink)
	u.Enable()
	op := isa.Op{Kind: isa.KindStore, Addr: 0xABCD, PC: 0x400100, Size: 8}
	u.OnOp(1000, &op, 200, 3, true, false)
	if len(sink.records) != 1 {
		t.Fatalf("records = %d, want 1", len(sink.records))
	}
	r := sink.records[0]
	if r.VA != 0xABCD || r.PC != 0x400100 {
		t.Errorf("VA/PC = %#x/%#x", r.VA, r.PC)
	}
	if !r.IsStore() {
		t.Error("store recorded as load")
	}
	if r.Source != spepkt.SourceDRAM {
		t.Errorf("source = %#x, want DRAM", r.Source)
	}
	if r.TotalLat != 200 {
		t.Errorf("TotalLat = %d, want 200", r.TotalLat)
	}
	if r.Events&spepkt.EvTLBWalk == 0 || r.XlatLat == 0 {
		t.Error("TLB walk not reflected in events/xlat latency")
	}
	// Completion at cycle 1200, timer div 4 => raw TS 300.
	if r.TS != 300 {
		t.Errorf("TS = %d, want 300", r.TS)
	}
}

func TestCollectPA(t *testing.T) {
	sink := &memSink{}
	cfg := Config{Period: 1, SampleLoads: true, CollectPA: true}
	u := NewUnit(cfg, xrand.New(1), sink)
	u.Enable()
	op := loadOp(0x1234)
	u.OnOp(10, &op, 4, 0, false, false)
	if len(sink.records) != 1 || sink.records[0].PA == 0 {
		t.Fatalf("PA not collected: %+v", sink.records)
	}
	// PA disabled => zero.
	sink2 := &memSink{}
	u2 := newUnit(Config{Period: 1}, sink2)
	u2.Enable()
	u2.OnOp(10, &op, 4, 0, false, false)
	if len(sink2.records) != 1 || sink2.records[0].PA != 0 {
		t.Fatalf("PA leaked with pa_enable off: %+v", sink2.records)
	}
}

func TestTruncationCountsWhenSinkFull(t *testing.T) {
	sink := &memSink{full: true}
	u := newUnit(Config{Period: 1}, sink)
	u.Enable()
	op := loadOp(0x99)
	now := sim.Cycles(0)
	for i := 0; i < 10; i++ {
		u.OnOp(now, &op, 4, 0, false, false)
		now += 1000
	}
	st := u.Stats()
	if st.Truncated != 10 || st.Emitted != 0 {
		t.Errorf("Truncated/Emitted = %d/%d, want 10/0", st.Truncated, st.Emitted)
	}
}

func TestCorruptOnCollision(t *testing.T) {
	sink := &memSink{}
	cfg := Config{Period: 2, SampleLoads: true, CorruptOnCollision: 2}
	u := NewUnit(cfg, xrand.New(3), sink)
	u.Enable()
	op := loadOp(0x77)
	now := sim.Cycles(0)
	for i := 0; i < 10000; i++ {
		u.OnOp(now, &op, 5000, 3, false, false)
		now++
	}
	st := u.Stats()
	if st.Collisions == 0 {
		t.Fatal("test setup produced no collisions")
	}
	if st.Corrupted == 0 {
		t.Error("no corrupted records emitted")
	}
	// Corrupted records must be skipped by the decoder.
	skipped := 0
	for _, raw := range sink.raw {
		var r spepkt.Record
		if err := spepkt.Decode(raw, &r); err != nil {
			skipped++
		}
	}
	if skipped != int(st.Corrupted) {
		t.Errorf("decoder skipped %d, unit emitted %d corrupted", skipped, st.Corrupted)
	}
}

func TestEnableDisable(t *testing.T) {
	sink := &memSink{}
	u := newUnit(Config{Period: 5}, sink)
	op := loadOp(0x1)
	u.Enable()
	if !u.Enabled() {
		t.Fatal("Enabled() = false after Enable")
	}
	for i := 0; i < 100; i++ {
		u.OnOp(sim.Cycles(i*10), &op, 4, 0, false, false)
	}
	u.Disable()
	before := u.Stats().OpsSeen
	for i := 0; i < 100; i++ {
		u.OnOp(sim.Cycles(1000+i*10), &op, 4, 0, false, false)
	}
	if u.Stats().OpsSeen != before {
		t.Error("ops counted while disabled")
	}
	u.ResetStats()
	if u.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestEstimatorUnbiased(t *testing.T) {
	// samples*period should estimate the op count within a few
	// percent when there are no collisions (Eq. 1's premise).
	sink := &memSink{}
	cfg := Config{Period: 1000, JitterBits: 8, SampleLoads: true, SampleStores: true}
	u := NewUnit(cfg, xrand.New(11), sink)
	u.Enable()
	op := loadOp(0x1000)
	const n = 2_000_000
	now := sim.Cycles(0)
	for i := 0; i < n; i++ {
		u.OnOp(now, &op, 4, 0, false, false)
		now += 8
	}
	st := u.Stats()
	est := st.Emitted * cfg.Period
	err := float64(int64(est)-int64(n)) / float64(n)
	if err < -0.05 || err > 0.05 {
		t.Errorf("estimator error %.3f (est %d vs true %d)", err, est, n)
	}
}

func TestConfigDefaults(t *testing.T) {
	u := NewUnit(Config{}, xrand.New(1), &memSink{})
	cfg := u.Config()
	if cfg.Period == 0 || cfg.TrackingSlots != 1 || cfg.TimerDiv == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}
