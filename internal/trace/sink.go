package trace

import (
	"crypto/md5"
	"hash"
)

// Meta identifies a trace stream: the workload name plus the region
// and kernel name tables its samples index. Sinks that serialize or
// resolve indices receive it at construction time, before the first
// sample arrives.
type Meta struct {
	Workload string
	Regions  []string
	Kernels  []string
}

// Meta returns the trace's stream identity.
func (t *Trace) Meta() Meta {
	return Meta{Workload: t.Workload, Regions: t.Regions, Kernels: t.Kernels}
}

// Sink consumes a stream of attributed samples. The decode stage pushes
// every sample into the configured sink chain as it is attributed, so a
// run's memory footprint is whatever its sinks retain — an aggregate-
// only chain holds O(1), the Collect compat sink holds everything.
//
// Emit may retain nothing: the *Sample points into a caller-owned
// buffer that is reused after the call returns. Sinks that keep samples
// must copy the value. Close flushes buffered state (footers, final
// blocks); a sink must not be emitted to after Close.
type Sink interface {
	Emit(*Sample) error
	Close() error
}

// Tee fans one sample stream out to several sinks, emitting to each in
// order. Close closes every sink and returns the first error.
type Tee struct {
	sinks []Sink
	// batch mirrors sinks through ToBatch, so EmitBatch fans a batch
	// out natively instead of degrading to per-sample dispatch.
	batch []BatchSink
}

// NewTee builds a fan-out sink. A single-element tee adds one pointer
// hop; callers with exactly one sink should use it directly.
func NewTee(sinks ...Sink) *Tee {
	t := &Tee{sinks: sinks, batch: make([]BatchSink, len(sinks))}
	for i, sk := range sinks {
		t.batch[i] = ToBatch(sk)
	}
	return t
}

// Emit pushes the sample to every sink, stopping at the first error.
func (t *Tee) Emit(s *Sample) error {
	for _, sk := range t.sinks {
		if err := sk.Emit(s); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every sink (all of them, even after an error) and
// returns the first error.
func (t *Tee) Close() error {
	var first error
	for _, sk := range t.sinks {
		if err := sk.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Collect is the compatibility sink: it materializes the stream into an
// in-memory *Trace, exactly as the pre-streaming pipeline did. Max
// bounds retained samples (< 0 = unlimited, matching MaxSamples
// semantics where 0 stores nothing); samples arriving past the cap are
// counted in Truncated instead of being silently dropped.
type Collect struct {
	Trace *Trace
	Max   int
	// Truncated counts samples dropped at the Max cap.
	Truncated uint64
}

// NewCollect builds a collecting sink over tr (which must carry the
// stream's name tables already).
func NewCollect(tr *Trace, max int) *Collect {
	return &Collect{Trace: tr, Max: max}
}

// Emit appends a copy of the sample, or counts it as truncated once the
// cap is reached.
func (c *Collect) Emit(s *Sample) error {
	if c.Max >= 0 && len(c.Trace.Samples) >= c.Max {
		c.Truncated++
		return nil
	}
	c.Trace.Samples = append(c.Trace.Samples, *s)
	return nil
}

// Close is a no-op; the trace is complete after the last Emit.
func (c *Collect) Close() error { return nil }

// Hash maintains the rolling MD5 of the emitted sample stream — the
// same checksum Trace.MD5 computes over a materialized trace, without
// retaining any sample.
type Hash struct {
	h       hash.Hash
	buf     [sampleWireSize]byte
	n       uint64
	scratch []byte // batch encode buffer, grown on demand
}

// NewHash builds a rolling-checksum sink.
func NewHash() *Hash { return &Hash{h: md5.New()} }

// Emit folds the sample's wire encoding into the hash.
func (h *Hash) Emit(s *Sample) error {
	encodeSample(h.buf[:], s)
	h.h.Write(h.buf[:])
	h.n++
	return nil
}

// Close is a no-op.
func (h *Hash) Close() error { return nil }

// Sum16 returns the current checksum. It may be read mid-stream.
func (h *Hash) Sum16() [16]byte {
	var out [16]byte
	copy(out[:], h.h.Sum(nil))
	return out
}

// Count returns the number of hashed samples.
func (h *Hash) Count() uint64 { return h.n }

// CountHist counts samples per name-table index online — the streaming
// equivalent of Trace.CountByRegion / CountByKernel. Index -1 (and any
// out-of-table index) lands in the "-" bucket.
type CountHist struct {
	names []string
	by    []uint64
	other uint64
	// kernel selects the kernel index instead of the region index — a
	// field rather than a selector closure so the batch path hoists the
	// choice out of the per-sample loop.
	kernel bool
}

// NewRegionHist counts by region index.
func NewRegionHist(meta Meta) *CountHist {
	return &CountHist{names: meta.Regions, by: make([]uint64, len(meta.Regions))}
}

// NewKernelHist counts by kernel (tagged phase) index.
func NewKernelHist(meta Meta) *CountHist {
	return &CountHist{names: meta.Kernels, by: make([]uint64, len(meta.Kernels)),
		kernel: true}
}

// Emit counts the sample.
func (c *CountHist) Emit(s *Sample) error {
	idx := s.Region
	if c.kernel {
		idx = s.Kernel
	}
	if idx < 0 || int(idx) >= len(c.by) {
		c.other++
		return nil
	}
	c.by[idx]++
	return nil
}

// Close is a no-op.
func (c *CountHist) Close() error { return nil }

// Counts resolves the histogram to names, matching the map shape of
// Trace.CountByRegion (the "-" key holds unattributed samples).
func (c *CountHist) Counts() map[string]int {
	out := make(map[string]int, len(c.names)+1)
	for i, n := range c.by {
		if n > 0 {
			out[c.names[i]] += int(n)
		}
	}
	if c.other > 0 {
		out["-"] = int(c.other)
	}
	return out
}

// LevelHist counts samples per memory level (0=L1 … 3=DRAM; deeper
// levels clamp to DRAM, as in analysis.LevelBreakdown).
type LevelHist struct {
	By [4]uint64
}

// Emit counts the sample's data-source level.
func (l *LevelHist) Emit(s *Sample) error {
	lv := s.Level
	if lv > 3 {
		lv = 3
	}
	l.By[lv]++
	return nil
}

// Close is a no-op.
func (l *LevelHist) Close() error { return nil }

// Aggregate is the aggregate-only chain the sweep drivers use: rolling
// MD5 plus level/region/kernel histograms, with no per-sample retention
// and no per-sample allocation. Sweeps that only consume accuracy /
// overhead / loss counters run entire grids through it with O(1) sample
// memory per scenario.
type Aggregate struct {
	Hash    Hash
	Levels  LevelHist
	Regions *CountHist
	Kernels *CountHist
}

// NewAggregate builds the aggregate-only sink for a stream.
func NewAggregate(meta Meta) *Aggregate {
	return &Aggregate{
		Hash:    Hash{h: md5.New()},
		Regions: NewRegionHist(meta),
		Kernels: NewKernelHist(meta),
	}
}

// Emit updates every aggregate.
func (a *Aggregate) Emit(s *Sample) error {
	a.Hash.Emit(s)
	a.Levels.Emit(s)
	a.Regions.Emit(s)
	return a.Kernels.Emit(s)
}

// Close is a no-op.
func (a *Aggregate) Close() error { return nil }

// Sum16 returns the stream checksum (equal to Trace.MD5 over the same
// samples).
func (a *Aggregate) Sum16() [16]byte { return a.Hash.Sum16() }

// SeriesBuilder grows a temporal Series online, maintaining max / sum /
// count incrementally so aggregate readers need not walk the points.
// With KeepPoints false the points themselves are discarded and only
// the aggregates survive — the bounded-memory mode for timelines nobody
// plots.
type SeriesBuilder struct {
	KeepPoints bool
	s          Series
	n          int
	sum, max   float64
	last       Point
}

// NewSeriesBuilder starts a named series that retains points.
func NewSeriesBuilder(name, unit string) *SeriesBuilder {
	return &SeriesBuilder{KeepPoints: true, s: Series{Name: name, Unit: unit}}
}

// Add appends one (time, value) observation.
func (b *SeriesBuilder) Add(tsec, v float64) {
	if b.KeepPoints {
		b.s.Points = append(b.s.Points, Point{TimeSec: tsec, Value: v})
	}
	if v > b.max {
		b.max = v
	}
	b.sum += v
	b.n++
	b.last = Point{TimeSec: tsec, Value: v}
}

// Series returns the built series (points empty when KeepPoints was
// off).
func (b *SeriesBuilder) Series() Series { return b.s }

// Max returns the online maximum (0 for empty).
func (b *SeriesBuilder) Max() float64 { return b.max }

// Mean returns the online mean (0 for empty).
func (b *SeriesBuilder) Mean() float64 {
	if b.n == 0 {
		return 0
	}
	return b.sum / float64(b.n)
}

// Count returns the number of observations.
func (b *SeriesBuilder) Count() int { return b.n }

// Last returns the most recent point (zero Point for empty).
func (b *SeriesBuilder) Last() Point { return b.last }
