package trace

import (
	"bytes"
	"testing"
)

// emitBatches feeds tr to a batch sink in the given split sizes (the
// last chunk takes whatever remains), then closes it.
func emitBatches(t *testing.T, sk BatchSink, tr *Trace, split int) {
	t.Helper()
	samples := tr.Samples
	for len(samples) > 0 {
		n := split
		if n > len(samples) {
			n = len(samples)
		}
		if err := sk.EmitBatch(samples[:n]); err != nil {
			t.Fatal(err)
		}
		samples = samples[n:]
	}
	if err := sk.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchAdapterWrapsLegacySinks: ToBatch returns native batch sinks
// unchanged and wraps plain ones in the per-sample loop adapter.
func TestBatchAdapterWrapsLegacySinks(t *testing.T) {
	h := NewHash()
	if ToBatch(h) != BatchSink(h) {
		t.Error("native batch sink was re-wrapped")
	}
	src := synthTrace(50)
	f := &countSink{}
	emitBatches(t, ToBatch(f), src, 7)
	if f.n != 50 {
		t.Errorf("adapter delivered %d samples, want 50", f.n)
	}
}

type countSink struct{ n int }

func (c *countSink) Emit(*Sample) error { c.n++; return nil }
func (c *countSink) Close() error       { return nil }

// TestBatchSinksMatchSequentialEmit proves the contract every native
// EmitBatch must satisfy: for any split of the stream into batches, the
// final sink state is identical to per-sample Emit.
func TestBatchSinksMatchSequentialEmit(t *testing.T) {
	src := synthTrace(333)
	meta := src.Meta()
	for _, split := range []int{1, 2, 16, 100, 333, 1000} {
		// Hash: identical rolling MD5 and count.
		h := NewHash()
		emitBatches(t, h, src, split)
		if h.Sum16() != src.MD5() || h.Count() != 333 {
			t.Errorf("split %d: hash %x count %d", split, h.Sum16(), h.Count())
		}

		// Collect without cap: identical sample slice.
		dst := &Trace{}
		emitBatches(t, NewCollect(dst, -1), src, split)
		if len(dst.Samples) != 333 || dst.MD5() != src.MD5() {
			t.Errorf("split %d: collect stored %d", split, len(dst.Samples))
		}

		// Collect with a cap that lands mid-batch: same stored prefix
		// and truncation accounting as the per-sample path.
		capped := &Trace{}
		cs := NewCollect(capped, 50)
		emitBatches(t, cs, src, split)
		if len(capped.Samples) != 50 || cs.Truncated != 283 {
			t.Errorf("split %d: capped stored %d truncated %d", split, len(capped.Samples), cs.Truncated)
		}

		// Histograms: identical counts.
		rh, kh := NewRegionHist(meta), NewKernelHist(meta)
		var lh LevelHist
		emitBatches(t, NewTee(rh, kh, &lh), src, split)
		wantR, wantK := src.CountByRegion(), src.CountByKernel()
		for k, v := range wantR {
			if rh.Counts()[k] != v {
				t.Errorf("split %d: region %q = %d, want %d", split, k, rh.Counts()[k], v)
			}
		}
		for k, v := range wantK {
			if kh.Counts()[k] != v {
				t.Errorf("split %d: kernel %q = %d, want %d", split, k, kh.Counts()[k], v)
			}
		}
		var total uint64
		for _, n := range lh.By {
			total += n
		}
		if total != 333 {
			t.Errorf("split %d: level total = %d", split, total)
		}

		// Aggregate: every component updated.
		a := NewAggregate(meta)
		emitBatches(t, a, src, split)
		if a.Sum16() != src.MD5() || a.Hash.Count() != 333 {
			t.Errorf("split %d: aggregate hash diverged", split)
		}
	}
}

// TestWriterV2EmitBatchByteIdentity: batched emission produces the
// byte-identical file — v2 and v2.1 — for every batch split, including
// splits that straddle block boundaries.
func TestWriterV2EmitBatchByteIdentity(t *testing.T) {
	src := synthTrace(200)
	for _, compress := range []bool{false, true} {
		newW := NewWriterV2
		if compress {
			newW = NewWriterV21
		}
		var ref bytes.Buffer
		w, err := newW(&ref, src.Meta(), 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := range src.Samples {
			if err := w.Emit(&src.Samples[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		for _, split := range []int{1, 3, 16, 17, 200} {
			var got bytes.Buffer
			bw, err := newW(&got, src.Meta(), 16)
			if err != nil {
				t.Fatal(err)
			}
			emitBatches(t, bw, src, split)
			if !bytes.Equal(got.Bytes(), ref.Bytes()) {
				t.Errorf("compress=%t split %d: batched file differs from per-sample file", compress, split)
			}
		}
	}
}

// TestTeeBatchStopsAtFirstError mirrors the per-sample Tee error
// contract on the batch path.
func TestTeeBatchStopsAtFirstError(t *testing.T) {
	h := NewHash()
	tee := NewTee(&failSink{}, h)
	if err := tee.EmitBatch(make([]Sample, 3)); err == nil {
		t.Fatal("error swallowed")
	}
	if h.Count() != 0 {
		t.Error("sink after the failing one still received the batch")
	}
}

// restreamExactFixture builds a reader with known block geometry:
// 100 samples, block size 40, timestamps 1000·(i+1), cores i%4.
func restreamExactFixture(t *testing.T, compress bool) (*ReaderV2, []Sample) {
	t.Helper()
	meta := Meta{Workload: "wl", Regions: []string{"a", "b"}, Kernels: []string{"k"}}
	newW := NewWriterV2
	if compress {
		newW = NewWriterV21
	}
	var buf bytes.Buffer
	w, err := newW(&buf, meta, 40)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	for i := 0; i < 100; i++ {
		s := Sample{
			TimeNs: uint64(1000 * (i + 1)),
			Core:   int16(i % 4),
			VA:     uint64(0x1000 + i),
			Lat:    uint16(10 + i%7),
			Region: int16(i % 2),
		}
		samples = append(samples, s)
		if err := w.Emit(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return rd, samples
}

func TestRestreamExact(t *testing.T) {
	for _, compress := range []bool{false, true} {
		rd, samples := restreamExactFixture(t, compress)

		// Unfiltered: every block splices; output MD5s to the source.
		var out bytes.Buffer
		n, spliced, err := RestreamExact(rd, &out, 0, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		if n != 100 || spliced != rd.NumBlocks() {
			t.Errorf("compress=%t: n=%d spliced=%d of %d blocks", compress, n, spliced, rd.NumBlocks())
		}
		rd2, err := OpenV2(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if rd2.MD5() != rd.MD5() {
			t.Errorf("compress=%t: unfiltered splice changed the MD5", compress)
		}
		if rd2.Compressed() != compress {
			t.Errorf("compress=%t: splice changed the format", compress)
		}

		// Block-aligned time window [40_001, 80_001): block 1 (samples
		// 40..79) is wholly inside, blocks 0 and 2 are ruled out by the
		// index — exactly one splice, zero re-encoded samples.
		out.Reset()
		n, spliced, err = RestreamExact(rd, &out, 40_001, 80_001, -1)
		if err != nil {
			t.Fatal(err)
		}
		if n != 40 || spliced != 1 {
			t.Errorf("compress=%t aligned: n=%d spliced=%d, want 40/1", compress, n, spliced)
		}

		// Unaligned window + core filter: no splice possible; the output
		// must hold exactly the matching samples, in order.
		out.Reset()
		lo, hi, core := uint64(30_000), uint64(60_000), 1
		n, spliced, err = RestreamExact(rd, &out, lo, hi, core)
		if err != nil {
			t.Fatal(err)
		}
		if spliced != 0 {
			t.Errorf("compress=%t filtered: spliced %d blocks on a core filter", compress, spliced)
		}
		var want []Sample
		for _, s := range samples {
			if s.TimeNs >= lo && s.TimeNs < hi && int(s.Core) == core {
				want = append(want, s)
			}
		}
		if n != uint64(len(want)) {
			t.Fatalf("compress=%t filtered: n=%d, want %d", compress, n, len(want))
		}
		rd3, err := OpenV2(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got []Sample
		if err := rd3.Scan(ScanHints{}, func(s *Sample) { got = append(got, *s) }); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("compress=%t filtered: sample %d = %+v, want %+v", compress, i, got[i], want[i])
			}
		}
	}
}
