package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Workload: "stream",
		Regions:  []string{"a", "b", "c"},
		Kernels:  []string{"triad"},
		Samples: []Sample{
			{TimeNs: 100, VA: 0x1000, PC: 0x40, Lat: 200, Core: 0, Region: 0, Kernel: 0, Store: true, Level: 3},
			{TimeNs: 50, VA: 0x2000, PC: 0x44, Lat: 4, Core: 1, Region: 1, Kernel: -1, Level: 0},
			{TimeNs: 75, VA: 0x9000, PC: 0x48, Lat: 43, Core: 2, Region: -1, Kernel: 0, Level: 2},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := sampleTrace()
	var buf bytes.Buffer
	if err := in.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Workload != in.Workload || len(out.Samples) != len(in.Samples) {
		t.Fatalf("mismatch: %+v", out)
	}
	for i := range in.Samples {
		if in.Samples[i] != out.Samples[i] {
			t.Errorf("sample %d: %+v != %+v", i, in.Samples[i], out.Samples[i])
		}
	}
	if len(out.Regions) != 3 || out.Regions[2] != "c" || out.Kernels[0] != "triad" {
		t.Errorf("tables: %v / %v", out.Regions, out.Kernels)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
	// Valid magic but truncated body.
	in := sampleTrace()
	var buf bytes.Buffer
	in.WriteBinary(&buf)
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestMD5StableAndSensitive(t *testing.T) {
	a, b := sampleTrace(), sampleTrace()
	if a.MD5() != b.MD5() {
		t.Error("identical traces hash differently")
	}
	b.Samples[0].VA++
	if a.MD5() == b.MD5() {
		t.Error("hash insensitive to sample change")
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_ns,va,pc") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",S,") || !strings.Contains(lines[1], "triad") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], ",-") {
		t.Errorf("row 2 should show '-' for untagged kernel: %q", lines[2])
	}
}

func TestCounts(t *testing.T) {
	tr := sampleTrace()
	byRegion := tr.CountByRegion()
	if byRegion["a"] != 1 || byRegion["b"] != 1 || byRegion["-"] != 1 {
		t.Errorf("by region: %v", byRegion)
	}
	byKernel := tr.CountByKernel()
	if byKernel["triad"] != 2 || byKernel["-"] != 1 {
		t.Errorf("by kernel: %v", byKernel)
	}
}

func TestSortByTime(t *testing.T) {
	tr := sampleTrace()
	tr.SortByTime()
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].TimeNs < tr.Samples[i-1].TimeNs {
			t.Fatal("not sorted")
		}
	}
}

func TestSeriesStats(t *testing.T) {
	s := Series{Name: "bw", Unit: "GiBps", Points: []Point{
		{TimeSec: 0, Value: 10}, {TimeSec: 1, Value: 30}, {TimeSec: 2, Value: 20},
	}}
	if s.Max() != 30 {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Mean() != 20 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Last().Value != 20 || s.Last().TimeSec != 2 {
		t.Errorf("Last = %v", s.Last())
	}
	var empty Series
	if empty.Max() != 0 || empty.Mean() != 0 || empty.Last() != (Point{}) {
		t.Error("empty series stats not zero")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Name: "cap", Unit: "GiB", Points: []Point{{TimeSec: 1.5, Value: 52.3}}}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cap_GiB") || !strings.Contains(buf.String(), "52.3") {
		t.Errorf("csv = %q", buf.String())
	}
}

// Property: binary round trip preserves arbitrary samples.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ts, va, pc uint64, lat uint16, core, region, kernel int16, store bool, level uint8) bool {
		in := &Trace{
			Workload: "w",
			Samples: []Sample{{TimeNs: ts, VA: va, PC: pc, Lat: lat,
				Core: core, Region: region, Kernel: kernel, Store: store, Level: level}},
		}
		var buf bytes.Buffer
		if err := in.WriteBinary(&buf); err != nil {
			return false
		}
		out, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return out.Samples[0] == in.Samples[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{Workload: "empty"}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 0 || out.Workload != "empty" {
		t.Errorf("round trip: %+v", out)
	}
	if tr.MD5() != (&Trace{Workload: "other"}).MD5() {
		t.Error("MD5 of empty sample sets should match (hash covers samples only)")
	}
}
