package trace

import (
	"bytes"
	"testing"
)

// planFixture builds a v2/v2.1 stream and returns its raw bytes — the
// plan's extent offsets index into them.
func planFixture(t *testing.T, compress bool) []byte {
	t.Helper()
	meta := Meta{Workload: "wl", Regions: []string{"a", "b"}, Kernels: []string{"k"}}
	newW := NewWriterV2
	if compress {
		newW = NewWriterV21
	}
	var buf bytes.Buffer
	w, err := newW(&buf, meta, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s := Sample{
			TimeNs: uint64(1000 * (i + 1)),
			Core:   int16(i % 4),
			VA:     uint64(0x1000 + i),
			Lat:    uint16(10 + i%7),
			Region: int16(i % 2),
		}
		if err := w.Emit(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assemble materializes a plan against the source bytes.
func assemble(t *testing.T, plan *RestreamPlan, src []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, seg := range plan.Segments {
		if seg.Data != nil {
			out.Write(seg.Data)
			continue
		}
		if seg.SrcOff < 0 || seg.SrcOff+seg.Len > int64(len(src)) {
			t.Fatalf("extent [%d,+%d) outside source of %d bytes", seg.SrcOff, seg.Len, len(src))
		}
		out.Write(src[seg.SrcOff : seg.SrcOff+seg.Len])
	}
	if int64(out.Len()) != plan.Size {
		t.Fatalf("assembled %d bytes, plan.Size %d", out.Len(), plan.Size)
	}
	return out.Bytes()
}

// TestRestreamPlanExact proves the span plan is just RestreamExact in
// segment form: byte-identical output, same MD5, and whole-block runs
// described as coalesced extents rather than literal bytes.
func TestRestreamPlanExact(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi uint64
		core   int
	}{
		{"unfiltered", 0, 0, -1},
		{"aligned-window", 40_001, 80_001, -1},
		{"unaligned-window", 30_000, 60_000, -1},
		{"tail-open", 50_000, 0, -1},
		{"core-filter", 0, 0, 1},
		{"empty-result", 900_000, 900_001, -1},
	}
	for _, compress := range []bool{false, true} {
		src := planFixture(t, compress)
		for _, tc := range cases {
			rd, err := OpenV2(bytes.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			wantN, wantSpliced, err := RestreamExact(rd, &want, tc.lo, tc.hi, tc.core)
			if err != nil {
				t.Fatal(err)
			}

			rd2, err := OpenV2(bytes.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			plan, err := RestreamPlanExact(rd2, tc.lo, tc.hi, tc.core)
			if err != nil {
				t.Fatalf("compress=%t %s: %v", compress, tc.name, err)
			}
			if plan.Samples != wantN || plan.Spliced != wantSpliced {
				t.Errorf("compress=%t %s: plan %d/%d samples/spliced, restream %d/%d",
					compress, tc.name, plan.Samples, plan.Spliced, wantN, wantSpliced)
			}
			got := assemble(t, plan, src)
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("compress=%t %s: assembled plan differs from RestreamExact (%d vs %d bytes)",
					compress, tc.name, len(got), len(want.Bytes()))
			}
			chk, err := OpenV2(bytes.NewReader(got))
			if err != nil {
				t.Fatalf("compress=%t %s: assembled stream unreadable: %v", compress, tc.name, err)
			}
			if chk.MD5() != plan.MD5 {
				t.Errorf("compress=%t %s: plan MD5 mismatch", compress, tc.name)
			}

			// The unfiltered plan must be a header literal, ONE coalesced
			// extent covering every block, and a footer literal.
			if tc.name == "unfiltered" {
				extents := 0
				for _, seg := range plan.Segments {
					if seg.Data == nil {
						extents++
					}
				}
				if extents != 1 {
					t.Errorf("compress=%t unfiltered: %d extents, want 1 coalesced", compress, extents)
				}
			}
		}
	}
}
