package trace

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// synthTrace builds a deterministic many-block trace: timestamps
// increase, cores cycle, and every field varies so round-trip
// mismatches cannot hide.
func synthTrace(n int) *Trace {
	tr := &Trace{
		Workload: "synth",
		Regions:  []string{"a", "b", "c"},
		Kernels:  []string{"k0", "k1"},
	}
	for i := 0; i < n; i++ {
		tr.Samples = append(tr.Samples, Sample{
			TimeNs: uint64(i) * 100,
			VA:     0x10000 + uint64(i)*64,
			PC:     0x400000 + uint64(i%7)*4,
			Lat:    uint16(10 + i%300),
			Core:   int16(i % 5),
			Region: int16(i%4) - 1,
			Kernel: int16(i%3) - 1,
			Store:  i%3 == 0,
			Level:  uint8(i % 4),
		})
	}
	return tr
}

// encodeV2 streams tr through a v2 writer into memory (panic on error:
// in-memory writes cannot fail outside programming bugs).
func encodeV2(tr *Trace, blockSamples int) []byte {
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, tr.Meta(), blockSamples)
	if err != nil {
		panic(err)
	}
	for i := range tr.Samples {
		if err := w.Emit(&tr.Samples[i]); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func writeV2(t *testing.T, tr *Trace, blockSamples int) []byte {
	t.Helper()
	return encodeV2(tr, blockSamples)
}

// TestV2RoundTripMatchesV1 checks writer→reader equality against the
// v1 in-memory trace: same samples in the same order, same name
// tables, and a footer MD5 equal to Trace.MD5.
func TestV2RoundTripMatchesV1(t *testing.T) {
	tr := synthTrace(1000) // 63 blocks of 16 + partial
	rd, err := OpenV2(bytes.NewReader(writeV2(t, tr, 16)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.TotalSamples() != uint64(len(tr.Samples)) {
		t.Fatalf("total = %d, want %d", rd.TotalSamples(), len(tr.Samples))
	}
	if want := (1000 + 15) / 16; rd.NumBlocks() != want {
		t.Errorf("blocks = %d, want %d", rd.NumBlocks(), want)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != tr.Workload {
		t.Errorf("workload %q", got.Workload)
	}
	if fmt.Sprint(got.Regions) != fmt.Sprint(tr.Regions) ||
		fmt.Sprint(got.Kernels) != fmt.Sprint(tr.Kernels) {
		t.Errorf("tables: %v/%v", got.Regions, got.Kernels)
	}
	if len(got.Samples) != len(tr.Samples) {
		t.Fatalf("samples = %d, want %d", len(got.Samples), len(tr.Samples))
	}
	for i := range tr.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got.Samples[i], tr.Samples[i])
		}
	}
	if rd.MD5() != tr.MD5() {
		t.Error("footer MD5 differs from Trace.MD5")
	}
	if got.MD5() != tr.MD5() {
		t.Error("materialized MD5 differs from Trace.MD5")
	}
}

// TestV2RollingMD5 pins the streaming writer's rolling hash against
// Trace.MD5 at every prefix length that ends a block.
func TestV2RollingMD5(t *testing.T) {
	tr := synthTrace(64)
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, tr.Meta(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Samples {
		if err := w.Emit(&tr.Samples[i]); err != nil {
			t.Fatal(err)
		}
		prefix := &Trace{Samples: tr.Samples[:i+1]}
		if w.Sum16() != prefix.MD5() {
			t.Fatalf("rolling MD5 diverged at sample %d", i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV2BlockSkip checks predicate push-down: a hinted scan must
// return exactly the matching samples while skipping blocks, and must
// never skip a block that holds a match (no false negatives).
func TestV2BlockSkip(t *testing.T) {
	tr := synthTrace(1000) // times 0..99900, cores 0..4
	rd, err := OpenV2(bytes.NewReader(writeV2(t, tr, 16)))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		hints ScanHints
		want  func(*Sample) bool
	}{
		{"time-mid", ScanHints{TimeLo: 40_000, TimeHi: 42_000},
			func(s *Sample) bool { return s.TimeNs >= 40_000 && s.TimeNs < 42_000 }},
		{"time-tail", ScanHints{TimeLo: 99_000},
			func(s *Sample) bool { return s.TimeNs >= 99_000 }},
		{"time-empty", ScanHints{TimeLo: 1 << 40},
			func(s *Sample) bool { return false }},
		{"core", ScanHints{CoreMask: CoreBit(3)},
			func(s *Sample) bool { return s.Core == 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			readBefore, skipBefore := rd.ScanStats()
			var delivered []Sample
			if err := rd.Scan(tc.hints, func(s *Sample) {
				delivered = append(delivered, *s)
			}); err != nil {
				t.Fatal(err)
			}
			// Over-delivery is allowed (block granularity); misses are not.
			seen := map[Sample]bool{}
			for _, s := range delivered {
				seen[s] = true
			}
			wantN := 0
			for i := range tr.Samples {
				if tc.want(&tr.Samples[i]) {
					wantN++
					if !seen[tr.Samples[i]] {
						t.Fatalf("matching sample missed: %+v", tr.Samples[i])
					}
				}
			}
			read, skip := rd.ScanStats()
			read -= readBefore
			skip -= skipBefore
			if tc.name != "core" && skip == 0 {
				// Time hints are block-disjoint in this trace, so a
				// narrow range must skip most blocks.
				t.Errorf("no blocks skipped (read %d)", read)
			}
			t.Logf("%s: %d matching, %d delivered, blocks read=%d skipped=%d",
				tc.name, wantN, len(delivered), read, skip)
		})
	}
}

// TestV2TimeSkipExact: with block-aligned time ranges the scan reads
// exactly the covered blocks.
func TestV2TimeSkipExact(t *testing.T) {
	tr := synthTrace(160) // 10 blocks of 16; block b covers [b*1600, b*1600+1500]
	rd, err := OpenV2(bytes.NewReader(writeV2(t, tr, 16)))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := rd.Scan(ScanHints{TimeLo: 3200, TimeHi: 4800}, func(*Sample) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Errorf("delivered %d samples, want the one covered block (16)", n)
	}
	read, skip := rd.ScanStats()
	if read != 1 || skip != 9 {
		t.Errorf("read/skip = %d/%d, want 1/9", read, skip)
	}
}

func TestV2EmptyStream(t *testing.T) {
	tr := &Trace{Workload: "empty", Regions: []string{"r"}}
	rd, err := OpenV2(bytes.NewReader(writeV2(t, tr, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.TotalSamples() != 0 || rd.NumBlocks() != 0 {
		t.Errorf("empty stream: %d samples, %d blocks", rd.TotalSamples(), rd.NumBlocks())
	}
	if rd.MD5() != tr.MD5() {
		t.Error("empty MD5 mismatch")
	}
	got, err := rd.ReadAll()
	if err != nil || len(got.Samples) != 0 || got.Workload != "empty" {
		t.Errorf("ReadAll: %+v, %v", got, err)
	}
}

// TestV2TruncationRejected truncates a valid file at every prefix
// length: every truncation must fail to open (the footer is gone or
// inconsistent) — never panic, never succeed silently.
func TestV2TruncationRejected(t *testing.T) {
	full := writeV2(t, synthTrace(100), 16)
	for n := 0; n < len(full); n++ {
		if _, err := OpenV2(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes opened successfully", n, len(full))
		} else if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("truncation to %d: error not ErrBadTrace: %v", n, err)
		}
	}
}

// TestV2FooterCorruption flips each byte of the index+tail region:
// the reader must either reject the file or deliver exactly the
// per-block sample counts it promised — it must never panic or
// over-read.
func TestV2FooterCorruption(t *testing.T) {
	full := writeV2(t, synthTrace(100), 16)
	footer := len(full) - footerTailSize - 7*blockIndexEntrySize
	for off := footer; off < len(full); off++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), full...)
			mut[off] ^= flip
			rd, err := OpenV2(bytes.NewReader(mut))
			if err != nil {
				continue // rejected: fine
			}
			n := 0
			if err := rd.Scan(ScanHints{}, func(*Sample) { n++ }); err == nil {
				if uint64(n) != rd.TotalSamples() {
					t.Fatalf("offset %d flip %#x: delivered %d of %d promised",
						off, flip, n, rd.TotalSamples())
				}
			}
		}
	}
}

// FuzzOpenV2 feeds arbitrary bytes to the reader; it must never panic
// and every failure must be an ErrBadTrace.
func FuzzOpenV2(f *testing.F) {
	f.Add(encodeV2(synthTrace(50), 8))
	f.Add([]byte{})
	f.Add([]byte("NMO2 but far too short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := OpenV2(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("non-ErrBadTrace failure: %v", err)
			}
			return
		}
		_, _ = rd.ReadAll()
	})
}

// TestVerifyMD5 pins the integrity check spilled cache files are
// adopted under: the recomputed payload hash matches the tail for
// intact v2 and v2.1 streams, and payload corruption that OpenV2
// cannot see (raw block bytes carry no per-block checksum) is caught.
func TestVerifyMD5(t *testing.T) {
	tr := synthTrace(500)
	encode := func(compressed bool) []byte {
		if !compressed {
			return writeV2(t, tr, 16)
		}
		var buf bytes.Buffer
		w, err := NewWriterV21(&buf, tr.Meta(), 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Samples {
			if err := w.Emit(&tr.Samples[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, compressed := range []bool{false, true} {
		data := encode(compressed)
		rd, err := OpenV2(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := rd.VerifyMD5()
		if err != nil {
			t.Fatalf("compressed=%t: intact stream failed verification: %v", compressed, err)
		}
		if sum != tr.MD5() {
			t.Errorf("compressed=%t: verified sum %x != Trace.MD5 %x", compressed, sum, tr.MD5())
		}

		// Flip one payload byte mid-block: the header, index, and tail
		// all still parse, so only the rehash can notice.
		corrupt := append([]byte(nil), data...)
		corrupt[rd.Block(rd.NumBlocks()/2).Offset+3] ^= 0xFF
		crd, err := OpenV2(bytes.NewReader(corrupt))
		if err != nil {
			continue // v2.1 frame decode may reject the flip outright
		}
		if _, err := crd.VerifyMD5(); err == nil {
			t.Errorf("compressed=%t: corrupted payload passed verification", compressed)
		} else if !errors.Is(err, ErrBadTrace) {
			t.Errorf("compressed=%t: corruption error %v is not ErrBadTrace", compressed, err)
		}
	}
}
