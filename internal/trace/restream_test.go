package trace

import (
	"bytes"
	"testing"
)

// restreamFixture writes a deterministic 3-block v2 trace: 100 samples,
// block size 40, timestamps 1000·i, cores i%4.
func restreamFixture(t *testing.T) (*ReaderV2, []Sample) {
	t.Helper()
	meta := Meta{Workload: "wl", Regions: []string{"a", "b"}, Kernels: []string{"k"}}
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, meta, 40)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	for i := 0; i < 100; i++ {
		s := Sample{
			TimeNs: uint64(1000 * (i + 1)),
			Core:   int16(i % 4),
			VA:     uint64(0x1000 + i),
			Lat:    uint16(10 + i%7),
			Region: int16(i % 2),
		}
		samples = append(samples, s)
		if err := w.Emit(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return rd, samples
}

func TestRestreamUnfiltered(t *testing.T) {
	rd, samples := restreamFixture(t)
	var out bytes.Buffer
	n, err := Restream(rd, &out, ScanHints{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(samples)) {
		t.Fatalf("restreamed %d samples, want %d", n, len(samples))
	}
	rd2, err := OpenV2(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Same payload in the same order => same rolling MD5 and a valid,
	// self-describing file.
	if rd2.MD5() != rd.MD5() {
		t.Errorf("restreamed MD5 differs from source")
	}
	if rd2.Meta().Workload != "wl" || len(rd2.Meta().Regions) != 2 {
		t.Errorf("meta not preserved: %+v", rd2.Meta())
	}
}

func TestRestreamFiltered(t *testing.T) {
	rd, samples := restreamFixture(t)
	// Time window [30_000, 60_000) on core 1 — hints skip blocks, keep
	// trims exactly.
	hints := ScanHints{TimeLo: 30_000, TimeHi: 60_000, CoreMask: CoreBit(1)}
	keep := func(s *Sample) bool {
		return s.TimeNs >= 30_000 && s.TimeNs < 60_000 && s.Core == 1
	}
	var want []Sample
	for _, s := range samples {
		s := s
		if keep(&s) {
			want = append(want, s)
		}
	}

	var out bytes.Buffer
	n, err := Restream(rd, &out, hints, keep, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(want)) {
		t.Fatalf("restreamed %d samples, want %d", n, len(want))
	}
	rd2, err := OpenV2(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []Sample
	if err := rd2.Scan(ScanHints{}, func(s *Sample) { got = append(got, *s) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read back %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRestreamEmptyResult(t *testing.T) {
	rd, _ := restreamFixture(t)
	var out bytes.Buffer
	n, err := Restream(rd, &out, ScanHints{TimeLo: 1 << 40}, func(*Sample) bool { return false }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("restreamed %d samples, want 0", n)
	}
	rd2, err := OpenV2(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("empty restream is not a valid v2 file: %v", err)
	}
	if rd2.TotalSamples() != 0 {
		t.Errorf("empty restream reports %d samples", rd2.TotalSamples())
	}
}
