package trace

// ScanHints narrows a SampleSource scan. Hints are an optimization
// contract, not a filter: a source uses them to skip work it can prove
// irrelevant (the v2 reader skips whole blocks via the footer index)
// but MAY deliver samples outside the hinted bounds — callers that
// need exact bounds filter the delivered samples themselves. The zero
// value admits everything.
type ScanHints struct {
	// TimeLo / TimeHi bound sample timestamps to [TimeLo, TimeHi);
	// zero means unbounded on that side.
	TimeLo uint64
	TimeHi uint64
	// CoreMask is an OR of CoreBit values; zero admits every core.
	CoreMask uint64
}

// Admits reports whether a block with the given index entry could
// contain a sample matching the hints.
func (h ScanHints) Admits(b BlockInfo) bool {
	if h.TimeHi != 0 && b.TimeMin >= h.TimeHi {
		return false
	}
	if h.TimeLo != 0 && b.TimeMax < h.TimeLo {
		return false
	}
	if h.CoreMask != 0 && b.CoreMask&h.CoreMask == 0 {
		return false
	}
	return true
}

// SampleSource streams attributed samples: an in-memory Trace or an
// out-of-core v2 ReaderV2. The *Sample passed to fn points into a
// source-owned buffer that is invalid after fn returns; copy to keep.
type SampleSource interface {
	Meta() Meta
	Scan(h ScanHints, fn func(*Sample)) error
}

// Scan visits every sample in stored order. The in-memory trace
// ignores the hints (there is nothing to skip); callers filter.
func (t *Trace) Scan(_ ScanHints, fn func(*Sample)) error {
	for i := range t.Samples {
		fn(&t.Samples[i])
	}
	return nil
}
