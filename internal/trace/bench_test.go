package trace

import (
	"bytes"
	"testing"
)

// emitOnly hides a sink's native EmitBatch so ToBatch falls back to the
// per-sample adapter — the legacy hot path the batch API replaces.
type emitOnly struct{ Sink }

// BenchmarkEmitBatchVsEmit contrasts the per-sample sink chain against
// native batch emission on the same stream. The histogram chain is the
// gated pair (interface dispatch and bounds checks dominate); the
// aggregate chain (MD5-bound) is reported for context.
func BenchmarkEmitBatchVsEmit(b *testing.B) {
	src := synthTrace(65536)
	meta := src.Meta()
	const batch = 512

	chains := []struct {
		name string
		mk   func() Sink
	}{
		{"hist", func() Sink {
			var lh LevelHist
			return NewTee(NewRegionHist(meta), NewKernelHist(meta), &lh)
		}},
		{"aggregate", func() Sink { return NewAggregate(meta) }},
	}
	for _, c := range chains {
		b.Run(c.name+"/legacy", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk := ToBatch(emitOnly{c.mk()})
				for off := 0; off < len(src.Samples); off += batch {
					if err := sk.EmitBatch(src.Samples[off : off+batch]); err != nil {
						b.Fatal(err)
					}
				}
				if err := sk.Close(); err != nil {
					b.Fatal(err)
				}
			}
			perSample(b, len(src.Samples))
		})
		b.Run(c.name+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk := ToBatch(c.mk())
				for off := 0; off < len(src.Samples); off += batch {
					if err := sk.EmitBatch(src.Samples[off : off+batch]); err != nil {
						b.Fatal(err)
					}
				}
				if err := sk.Close(); err != nil {
					b.Fatal(err)
				}
			}
			perSample(b, len(src.Samples))
		})
	}
}

func perSample(b *testing.B, n int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n*b.N), "ns/sample")
}

// BenchmarkTraceCompressedScan measures the filtered out-of-core scan
// on the same stream stored as v2 and v2.1: the hinted window admits
// one block in ten, so the compressed file decompresses only what it
// reads. bytes/op is the stored file size (scan MB/s against bytes on
// disk); blocks read/skipped are reported per op.
func BenchmarkTraceCompressedScan(b *testing.B) {
	tr := synthTrace(100_000) // 100 blocks of 1000
	lo, hi := uint64(4_500_000), uint64(5_500_000)

	for _, bc := range []struct {
		name string
		file []byte
	}{
		{"v2", encodeV2(tr, 1000)},
		{"v2.1", encodeV21(tr, 1000)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rd, err := OpenV2(bytes.NewReader(bc.file))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(len(bc.file)))
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				if err := rd.Scan(ScanHints{TimeLo: lo, TimeHi: hi}, func(*Sample) { n++ }); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			read, skip := rd.ScanStats()
			b.ReportMetric(float64(read)/float64(b.N), "blocks-read/op")
			b.ReportMetric(float64(skip)/float64(b.N), "blocks-skipped/op")
			if n == 0 {
				b.Fatal("window admitted no samples")
			}
		})
	}
}
