package trace

import (
	"errors"
	"testing"
)

func emitAll(t *testing.T, sk Sink, tr *Trace) {
	t.Helper()
	for i := range tr.Samples {
		if err := sk.Emit(&tr.Samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sk.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectMatchesTrace(t *testing.T) {
	src := synthTrace(100)
	dst := &Trace{Workload: src.Workload, Regions: src.Regions, Kernels: src.Kernels}
	c := NewCollect(dst, 1<<20)
	emitAll(t, c, src)
	if len(dst.Samples) != 100 || c.Truncated != 0 {
		t.Fatalf("collected %d, truncated %d", len(dst.Samples), c.Truncated)
	}
	if dst.MD5() != src.MD5() {
		t.Error("collected trace hashes differently")
	}
}

func TestCollectCapCountsTruncated(t *testing.T) {
	src := synthTrace(100)
	dst := &Trace{}
	c := NewCollect(dst, 30)
	emitAll(t, c, src)
	if len(dst.Samples) != 30 {
		t.Errorf("stored %d, cap 30", len(dst.Samples))
	}
	if c.Truncated != 70 {
		t.Errorf("truncated = %d, want 70", c.Truncated)
	}
	// Max < 0 means unlimited; Max == 0 stores nothing (MaxSamples
	// semantics).
	unl := NewCollect(&Trace{}, -1)
	emitAll(t, unl, src)
	if len(unl.Trace.Samples) != 100 || unl.Truncated != 0 {
		t.Error("negative cap should be unlimited")
	}
	zero := NewCollect(&Trace{}, 0)
	emitAll(t, zero, src)
	if len(zero.Trace.Samples) != 0 || zero.Truncated != 100 {
		t.Errorf("zero cap: stored %d truncated %d", len(zero.Trace.Samples), zero.Truncated)
	}
}

func TestHashSinkMatchesTraceMD5(t *testing.T) {
	src := synthTrace(64)
	h := NewHash()
	emitAll(t, h, src)
	if h.Sum16() != src.MD5() {
		t.Error("hash sink differs from Trace.MD5")
	}
	if h.Count() != 64 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestTeeFansOut(t *testing.T) {
	src := synthTrace(40)
	h1, h2 := NewHash(), NewHash()
	dst := &Trace{}
	tee := NewTee(h1, NewCollect(dst, -1), h2)
	emitAll(t, tee, src)
	if h1.Sum16() != src.MD5() || h2.Sum16() != src.MD5() {
		t.Error("tee'd hashes diverge")
	}
	if len(dst.Samples) != 40 {
		t.Errorf("tee'd collect has %d samples", len(dst.Samples))
	}
}

type failSink struct{ calls int }

func (f *failSink) Emit(*Sample) error { f.calls++; return errors.New("boom") }
func (f *failSink) Close() error       { return nil }

func TestTeeStopsAtFirstEmitError(t *testing.T) {
	h := NewHash()
	tee := NewTee(&failSink{}, h)
	if err := tee.Emit(&Sample{}); err == nil {
		t.Fatal("error swallowed")
	}
	if h.Count() != 0 {
		t.Error("sink after the failing one still received the sample")
	}
}

func TestCountHistsMatchBatchCounts(t *testing.T) {
	src := synthTrace(200)
	meta := src.Meta()
	rh, kh := NewRegionHist(meta), NewKernelHist(meta)
	var lh LevelHist
	emitAll(t, NewTee(rh, kh, &lh), src)

	wantR, wantK := src.CountByRegion(), src.CountByKernel()
	gotR, gotK := rh.Counts(), kh.Counts()
	for k, v := range wantR {
		if gotR[k] != v {
			t.Errorf("region %q = %d, want %d", k, gotR[k], v)
		}
	}
	if len(gotR) != len(wantR) {
		t.Errorf("region keys %v vs %v", gotR, wantR)
	}
	for k, v := range wantK {
		if gotK[k] != v {
			t.Errorf("kernel %q = %d, want %d", k, gotK[k], v)
		}
	}
	var total uint64
	for _, n := range lh.By {
		total += n
	}
	if total != 200 {
		t.Errorf("level histogram total = %d", total)
	}
}

func TestAggregateSink(t *testing.T) {
	src := synthTrace(128)
	a := NewAggregate(src.Meta())
	emitAll(t, a, src)
	if a.Sum16() != src.MD5() {
		t.Error("aggregate MD5 differs from Trace.MD5")
	}
	if a.Hash.Count() != 128 {
		t.Errorf("count = %d", a.Hash.Count())
	}
	if got, want := a.Regions.Counts(), src.CountByRegion(); got["a"] != want["a"] {
		t.Errorf("region a: %d vs %d", got["a"], want["a"])
	}
}

func TestSeriesBuilderParity(t *testing.T) {
	b := NewSeriesBuilder("bw", "GiBps")
	ref := Series{Name: "bw", Unit: "GiBps"}
	for i, v := range []float64{10, 30, 20, 5} {
		b.Add(float64(i), v)
		ref.Points = append(ref.Points, Point{TimeSec: float64(i), Value: v})
	}
	s := b.Series()
	if s.Max() != ref.Max() || b.Max() != ref.Max() {
		t.Errorf("max: %v/%v vs %v", s.Max(), b.Max(), ref.Max())
	}
	if s.Mean() != ref.Mean() || b.Mean() != ref.Mean() {
		t.Errorf("mean: %v/%v vs %v", s.Mean(), b.Mean(), ref.Mean())
	}
	if b.Last() != ref.Last() || b.Count() != 4 {
		t.Errorf("last/count: %v/%d", b.Last(), b.Count())
	}
	if len(s.Points) != 4 {
		t.Errorf("points = %d", len(s.Points))
	}

	// Aggregate-only mode: stats survive, points do not.
	d := NewSeriesBuilder("cap", "GiB")
	d.KeepPoints = false
	d.Add(0, 7)
	d.Add(1, 3)
	if len(d.Series().Points) != 0 {
		t.Error("KeepPoints=false retained points")
	}
	if d.Max() != 7 || d.Mean() != 5 {
		t.Errorf("aggregates: max %v mean %v", d.Max(), d.Mean())
	}
}
