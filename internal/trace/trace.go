// Package trace defines the profiling output model of NMO: memory
// access samples, temporal metric series, and their serialized forms.
//
// The real NMO writes sample traces to files named after NMO_NAME and
// hashes them with OpenSSL MD5; this package reproduces both (the
// hash via crypto/md5), plus CSV emitters that the post-processing
// scripts (the paper's Python layer) would consume.
package trace

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Sample is one decoded, attributed SPE memory-access sample.
type Sample struct {
	// TimeNs is the sample completion time in perf-clock nanoseconds
	// (after the time_zero/shift/mult conversion).
	TimeNs uint64
	// VA is the sampled virtual address.
	VA uint64
	// PC is the sampled instruction address.
	PC uint64
	// Lat is the total pipeline latency in cycles.
	Lat uint16
	// Core is the hardware thread the sample came from.
	Core int16
	// Region indexes the tagged region table (-1 if untagged).
	Region int16
	// Kernel indexes the tagged execution-phase table (-1 if outside
	// any tagged phase).
	Kernel int16
	// Store marks write accesses.
	Store bool
	// Level is the memory level that served the access (0=L1 … 3=DRAM).
	Level uint8
}

// Point is one (time, value) pair of a temporal series.
type Point struct {
	TimeSec float64
	Value   float64
}

// Series is a named temporal metric (capacity GiB, bandwidth GiB/s …).
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// Max returns the maximum value of the series (0 for empty).
func (s *Series) Max() float64 {
	var m float64
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 for empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Last returns the final point (zero Point for empty).
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// WriteCSV emits "time_sec,value" rows with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_sec", s.Name + "_" + s.Unit}); err != nil {
		return err
	}
	for _, p := range s.Points {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.TimeSec, 'f', 6, 64),
			strconv.FormatFloat(p.Value, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Trace is a complete profiling result file: samples plus the name
// tables they index.
type Trace struct {
	Workload string
	Regions  []string
	Kernels  []string
	Samples  []Sample
}

// WriteCSV emits one row per sample, resolving table indices to names.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"time_ns", "va", "pc", "lat", "core", "op", "level", "region", "kernel",
	}); err != nil {
		return err
	}
	for i := range t.Samples {
		s := &t.Samples[i]
		op := "L"
		if s.Store {
			op = "S"
		}
		if err := cw.Write([]string{
			strconv.FormatUint(s.TimeNs, 10),
			fmt.Sprintf("%#x", s.VA),
			fmt.Sprintf("%#x", s.PC),
			strconv.Itoa(int(s.Lat)),
			strconv.Itoa(int(s.Core)),
			op,
			strconv.Itoa(int(s.Level)),
			t.name(t.Regions, s.Region),
			t.name(t.Kernels, s.Kernel),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (t *Trace) name(table []string, idx int16) string {
	if idx < 0 || int(idx) >= len(table) {
		return "-"
	}
	return table[idx]
}

// CountByRegion returns per-region sample counts (index -1 mapped to
// the "-" key).
func (t *Trace) CountByRegion() map[string]int {
	out := make(map[string]int)
	for i := range t.Samples {
		out[t.name(t.Regions, t.Samples[i].Region)]++
	}
	return out
}

// CountByKernel returns per-kernel sample counts.
func (t *Trace) CountByKernel() map[string]int {
	out := make(map[string]int)
	for i := range t.Samples {
		out[t.name(t.Kernels, t.Samples[i].Kernel)]++
	}
	return out
}

// SortByTime orders samples by timestamp (stable for determinism).
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Samples, func(i, j int) bool {
		return t.Samples[i].TimeNs < t.Samples[j].TimeNs
	})
}

// MD5 returns the hash of the binary sample payload — the integrity
// checksum NMO computes over its sample trace.
func (t *Trace) MD5() [16]byte {
	h := md5.New()
	var buf [sampleWireSize]byte
	for i := range t.Samples {
		encodeSample(buf[:], &t.Samples[i])
		h.Write(buf[:])
	}
	var out [16]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Binary trace format: a fixed header followed by fixed-size sample
// records, all little-endian.
const (
	traceMagic     = 0x314F4D4E                            // "NMO1"
	sampleWireSize = 8 + 8 + 8 + 2 + 2 + 2 + 2 + 1 + 1 + 2 // padded to 36
)

// MagicV1, MagicV2 and MagicV21 are the leading magics of the binary
// trace formats, exported so tools can sniff a file's format.
const (
	MagicV1  uint32 = traceMagic
	MagicV2  uint32 = traceMagicV2
	MagicV21 uint32 = traceMagicV21
)

func encodeSample(dst []byte, s *Sample) {
	binary.LittleEndian.PutUint64(dst[0:], s.TimeNs)
	binary.LittleEndian.PutUint64(dst[8:], s.VA)
	binary.LittleEndian.PutUint64(dst[16:], s.PC)
	binary.LittleEndian.PutUint16(dst[24:], s.Lat)
	binary.LittleEndian.PutUint16(dst[26:], uint16(s.Core))
	binary.LittleEndian.PutUint16(dst[28:], uint16(s.Region))
	binary.LittleEndian.PutUint16(dst[30:], uint16(s.Kernel))
	if s.Store {
		dst[32] = 1
	} else {
		dst[32] = 0
	}
	dst[33] = s.Level
	dst[34], dst[35] = 0, 0
}

func decodeSample(src []byte, s *Sample) {
	s.TimeNs = binary.LittleEndian.Uint64(src[0:])
	s.VA = binary.LittleEndian.Uint64(src[8:])
	s.PC = binary.LittleEndian.Uint64(src[16:])
	s.Lat = binary.LittleEndian.Uint16(src[24:])
	s.Core = int16(binary.LittleEndian.Uint16(src[26:]))
	s.Region = int16(binary.LittleEndian.Uint16(src[28:]))
	s.Kernel = int16(binary.LittleEndian.Uint16(src[30:]))
	s.Store = src[32] == 1
	s.Level = src[33]
}

// WriteBinary serializes the trace.
func (t *Trace) WriteBinary(w io.Writer) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.Samples)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(t.Regions)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(t.Kernels)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeStrings(w, t.Workload); err != nil {
		return err
	}
	for _, s := range t.Regions {
		if err := writeStrings(w, s); err != nil {
			return err
		}
	}
	for _, s := range t.Kernels {
		if err := writeStrings(w, s); err != nil {
			return err
		}
	}
	var buf [sampleWireSize]byte
	for i := range t.Samples {
		encodeSample(buf[:], &t.Samples[i])
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ErrBadTrace reports a malformed binary trace.
var ErrBadTrace = errors.New("trace: malformed binary trace")

// ReadBinary deserializes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	nSamples := binary.LittleEndian.Uint32(hdr[4:])
	nRegions := binary.LittleEndian.Uint32(hdr[8:])
	nKernels := binary.LittleEndian.Uint32(hdr[12:])
	if nSamples > 1<<30 || nRegions > 1<<16 || nKernels > 1<<16 {
		return nil, fmt.Errorf("%w: implausible counts", ErrBadTrace)
	}
	t := &Trace{}
	var err error
	if t.Workload, err = readString(r); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nRegions; i++ {
		s, err := readString(r)
		if err != nil {
			return nil, err
		}
		t.Regions = append(t.Regions, s)
	}
	for i := uint32(0); i < nKernels; i++ {
		s, err := readString(r)
		if err != nil {
			return nil, err
		}
		t.Kernels = append(t.Kernels, s)
	}
	t.Samples = make([]Sample, nSamples)
	var buf [sampleWireSize]byte
	for i := range t.Samples {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: sample %d: %v", ErrBadTrace, i, err)
		}
		decodeSample(buf[:], &t.Samples[i])
	}
	return t, nil
}

func writeStrings(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("trace: string too long (%d)", len(s))
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	if _, err := w.Write(l[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrBadTrace, err)
	}
	n := binary.LittleEndian.Uint16(l[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrBadTrace, err)
	}
	return string(buf), nil
}
