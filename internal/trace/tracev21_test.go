package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// encodeV21 streams tr through a v2.1 (compressed) writer into memory.
func encodeV21(tr *Trace, blockSamples int) []byte {
	var buf bytes.Buffer
	w, err := NewWriterV21(&buf, tr.Meta(), blockSamples)
	if err != nil {
		panic(err)
	}
	for i := range tr.Samples {
		if err := w.Emit(&tr.Samples[i]); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestSnappyRoundTrip pins the block codec on shapes it must handle:
// empty, tiny, incompressible, highly repetitive, and overlapping-copy
// (offset < length) payloads.
func TestSnappyRoundTrip(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"one":       {0x42},
		"short":     []byte("abcd"),
		"repeat":    bytes.Repeat([]byte("0123456789abcdef"), 1000),
		"overlap":   bytes.Repeat([]byte{7}, 300), // offset 1 copy replicates
		"zeros":     make([]byte, 64<<10),
		"samplelik": encodeV2(synthTrace(500), 16),
	}
	// An incompressible payload: xorshift noise, no rand import needed.
	noise := make([]byte, 10_000)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range noise {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		noise[i] = byte(x)
	}
	cases["noise"] = noise

	for name, src := range cases {
		enc := snapEncode(nil, src)
		dst := make([]byte, len(src))
		if err := snapDecode(dst, enc); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

// FuzzSnapCodec drives both directions: every encode must decode back
// to its input, and arbitrary frames must never panic or overrun.
func FuzzSnapCodec(f *testing.F) {
	f.Add([]byte("hello hello hello"), []byte{0x05, 0x10, 'a', 'b'})
	f.Add(make([]byte, 100), []byte{})
	f.Fuzz(func(t *testing.T, src, frame []byte) {
		enc := snapEncode(nil, src)
		dst := make([]byte, len(src))
		if err := snapDecode(dst, enc); err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatal("round trip mismatch")
		}
		// Arbitrary frame against an arbitrary expected size: any
		// outcome but a panic/overrun is acceptable.
		buf := make([]byte, len(src))
		_ = snapDecode(buf, frame)
	})
}

// TestV21RoundTripMatchesV2 is the format's core contract: a v2.1 file
// decodes to the identical sample stream, name tables, and rolling MD5
// as its v2 counterpart — while storing fewer payload bytes on this
// compressible (regular strides, repeating high bytes) trace.
func TestV21RoundTripMatchesV2(t *testing.T) {
	tr := synthTrace(1000)
	v2 := encodeV2(tr, 16)
	v21 := encodeV21(tr, 16)
	if len(v21) >= len(v2) {
		t.Errorf("v2.1 file (%d B) not smaller than v2 (%d B)", len(v21), len(v2))
	}

	rd, err := OpenV2(bytes.NewReader(v21))
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Compressed() {
		t.Fatal("v2.1 file not detected as compressed")
	}
	stored, raw := rd.PayloadSizes()
	if stored >= raw {
		t.Errorf("stored %d >= raw %d payload bytes", stored, raw)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(tr.Samples) {
		t.Fatalf("samples = %d, want %d", len(got.Samples), len(tr.Samples))
	}
	for i := range tr.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got.Samples[i], tr.Samples[i])
		}
	}
	if rd.MD5() != tr.MD5() {
		t.Error("v2.1 footer MD5 differs from Trace.MD5")
	}
	rd2, err := OpenV2(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if rd.MD5() != rd2.MD5() {
		t.Error("v2.1 rolling MD5 differs from its v2 counterpart")
	}
	if s2, r2 := rd2.PayloadSizes(); s2 != r2 {
		t.Errorf("v2 stored/raw differ: %d != %d", s2, r2)
	}
}

// TestV21BlockSkipSkipsDecompress: the hinted scan on a compressed
// file skips the same blocks as on v2 — and a skipped block's frame is
// never even decompressed (observable as identical skip counts plus
// the format contract that decompression happens inside ReadBlock).
func TestV21BlockSkipSkipsDecompress(t *testing.T) {
	tr := synthTrace(160) // 10 blocks of 16
	rd, err := OpenV2(bytes.NewReader(encodeV21(tr, 16)))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := rd.Scan(ScanHints{TimeLo: 3200, TimeHi: 4800}, func(*Sample) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Errorf("delivered %d samples, want 16", n)
	}
	read, skip := rd.ScanStats()
	if read != 1 || skip != 9 {
		t.Errorf("read/skip = %d/%d, want 1/9", read, skip)
	}
}

// TestV21CorruptBlockRejected smashes a compressed frame's bytes in
// several ways: every read of the damaged block must fail with
// ErrBadTrace — never panic, never silently deliver short or wrong-
// length data.
func TestV21CorruptBlockRejected(t *testing.T) {
	tr := synthTrace(100)
	full := encodeV21(tr, 16)
	rd, err := OpenV2(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	var blk BlockInfo
	found := false
	for i := 0; i < rd.NumBlocks(); i++ {
		if b := rd.Block(i); b.CSize > 0 {
			blk, found = b, true
			break
		}
	}
	if !found {
		t.Fatal("synthetic trace produced no compressed block")
	}
	for name, smash := range map[string]func([]byte){
		// Break the uvarint length preamble: decoded length disagrees
		// with the footer's sample count.
		"preamble": func(b []byte) { b[blk.Offset] ^= 0x7F },
		// Fill the frame with literal tags that run past its end.
		"garbage": func(b []byte) {
			for o := uint64(1); o < uint64(blk.CSize); o++ {
				b[blk.Offset+o] = 0xFC
			}
		},
		// Truncate the frame logically: a copy tag with zero history.
		"badcopy": func(b []byte) { b[blk.Offset+1] = 0x01; b[blk.Offset+2] = 0xFF },
	} {
		mut := append([]byte(nil), full...)
		smash(mut)
		rd, err := OpenV2(bytes.NewReader(mut))
		if err != nil {
			continue // rejected at open: also fine
		}
		got, err := rd.ReadAll()
		if err == nil {
			// Corruption inside literal bytes can decode structurally;
			// then the full promised count must still be delivered.
			if uint64(len(got.Samples)) != rd.TotalSamples() {
				t.Fatalf("%s: silent short read: %d of %d", name, len(got.Samples), rd.TotalSamples())
			}
			continue
		}
		if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("%s: error not ErrBadTrace: %v", name, err)
		}
	}
}

// TestV21LyingFooterRejected patches index entries into impossible
// claims: a compressed size at least as large as the raw payload (the
// writer never stores those), and a nonzero reserved field in a plain
// v2 file. Both must be rejected at open with a clean error.
func TestV21LyingFooterRejected(t *testing.T) {
	tr := synthTrace(100)
	// Index entry i's CSize field lives at indexOff + i*40 + 12; the
	// tail records indexOff at size-48.
	patchCSize := func(file []byte, entry int, csize uint32) []byte {
		mut := append([]byte(nil), file...)
		indexOff := binary.LittleEndian.Uint64(mut[len(mut)-footerTailSize:])
		binary.LittleEndian.PutUint32(mut[indexOff+uint64(entry)*blockIndexEntrySize+12:], csize)
		return mut
	}

	v21 := encodeV21(tr, 16)
	for _, lie := range []uint32{16 * sampleWireSize, 16*sampleWireSize + 100} {
		if _, err := OpenV2(bytes.NewReader(patchCSize(v21, 0, lie))); err == nil {
			t.Fatalf("lying csize %d accepted", lie)
		} else if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("lying csize %d: error not ErrBadTrace: %v", lie, err)
		}
	}

	v2 := encodeV2(tr, 16)
	if _, err := OpenV2(bytes.NewReader(patchCSize(v2, 0, 100))); err == nil {
		t.Fatal("nonzero reserved field in v2 accepted")
	} else if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("v2 reserved field: error not ErrBadTrace: %v", err)
	}
}

// TestV21TruncationRejected mirrors the v2 truncation sweep on a
// compressed file.
func TestV21TruncationRejected(t *testing.T) {
	full := encodeV21(synthTrace(100), 16)
	for n := 0; n < len(full); n++ {
		if _, err := OpenV2(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes opened successfully", n, len(full))
		} else if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("truncation to %d: error not ErrBadTrace: %v", n, err)
		}
	}
}

// FuzzOpenV21 seeds the open fuzzer with compressed files; failures
// must always be clean ErrBadTrace rejections.
func FuzzOpenV21(f *testing.F) {
	f.Add(encodeV21(synthTrace(50), 8))
	f.Add(encodeV21(&Trace{Workload: "w"}, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := OpenV2(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("non-ErrBadTrace failure: %v", err)
			}
			return
		}
		_, _ = rd.ReadAll()
	})
}
