// Binary trace format v2: a blocked, indexed layout built for
// streaming. The v1 format (WriteBinary) needs every sample in memory
// before the header can be written; v2 is written by a Sink as samples
// arrive and read back block-by-block, so neither side ever holds the
// full trace.
//
// Layout (all little-endian):
//
//	header:   magic "NMO2" | blockSamples u32 | nRegions u32 | nKernels u32
//	          workload string | region strings | kernel strings
//	blocks:   count × 36-byte sample records (last block may be partial)
//	index:    one 40-byte entry per block:
//	          offset u64 | count u32 | pad u32 | timeMin u64 | timeMax u64 | coreMask u64
//	tail:     indexOff u64 | totalSamples u64 | blockCount u32 |
//	          blockSamples u32 | md5 [16] | pad u32 | magic "FMO2"   (48 bytes)
//
// The footer index carries each block's time range and core set, so a
// reader can skip whole blocks under time/core predicates without
// touching their bytes. The MD5 in the tail is the rolling hash of the
// sample payload in stream order — identical to Trace.MD5 over the
// same samples, which is how a streamed file is checked against an
// in-memory run.
//
// coreMask sets bit (core mod 64): on machines with more than 64
// cores the mask aliases, which can only retain a block that pure
// core filtering could have skipped — never skip one that matches.
//
// Format v2.1 ("NM21"/"FM21" magics) is v2 with optional per-block
// compression: a block may be stored as a snappy-style compressed
// frame (snappy.go) instead of raw records, with the frame's byte size
// carried in the index entry's formerly-reserved pad field (csize u32;
// 0 = stored raw, which also keeps every v2 file bit-identical). The
// index, tail, and — critically — the rolling MD5 are unchanged: the
// checksum stays defined over the *uncompressed* sample stream, so a
// v2.1 file's MD5 equals its v2 counterpart's and every existing
// golden still holds. Block skip under ScanHints now skips both the
// decode and the decompress of ruled-out blocks.
package trace

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
)

const (
	traceMagicV2  = 0x324F4D4E // "NMO2"
	footerMagicV2 = 0x324F4D46 // "FMO2"

	traceMagicV21  = 0x31324D4E // "NM21"
	footerMagicV21 = 0x31324D46 // "FM21"

	blockIndexEntrySize = 40
	footerTailSize      = 48

	// DefaultBlockSamples is the block granularity of streamed traces:
	// 4096 samples ≈ 144 KB per block, small enough that a predicate
	// scan's working set is trivial, large enough that the index stays
	// thousands of times smaller than the data.
	DefaultBlockSamples = 4096

	maxBlockSamples = 1 << 24
)

// BlockInfo is one footer-index entry: where a block lives and what it
// contains, the basis for predicate push-down.
type BlockInfo struct {
	// Offset is the block's absolute file offset.
	Offset uint64
	// Count is the number of samples in the block.
	Count uint32
	// TimeMin / TimeMax bound the block's sample timestamps
	// (inclusive).
	TimeMin uint64
	TimeMax uint64
	// CoreMask ORs CoreBit over the block's samples.
	CoreMask uint64
	// CSize is the stored byte size of the block's compressed frame;
	// 0 means the block is stored as raw records (Count × 36 bytes).
	// Always 0 in v2 files (the slot is the v2 index entry's reserved
	// pad field).
	CSize uint32
}

// storedSize returns the block's on-disk byte size.
func (b BlockInfo) storedSize() uint64 {
	if b.CSize > 0 {
		return uint64(b.CSize)
	}
	return uint64(b.Count) * sampleWireSize
}

// CoreBit returns the core's bit in a BlockInfo/ScanHints core mask
// (bit core mod 64).
func CoreBit(core int16) uint64 { return 1 << (uint16(core) & 63) }

// WriterV2 streams samples into the v2 format. It is a Sink: Emit
// appends to the current block (flushing full blocks as they complete)
// and Close writes the final partial block, the footer index, and the
// tail. The writer maintains the rolling MD5 of the payload, so the
// checksum of a streamed run costs no second pass.
type WriterV2 struct {
	w            io.Writer
	blockSamples int
	buf          []byte
	n            int // samples in the current block
	off          uint64
	cur          BlockInfo
	index        []BlockInfo
	h            hash.Hash
	total        uint64
	closed       bool
	// compress selects the v2.1 format: flushBlock stores each block
	// as a compressed frame when that is strictly smaller. The rolling
	// hash is fed the raw records either way.
	compress bool
	cbuf     []byte // reusable compression scratch
	// spliceOut, when set, diverts spliceBlock's stored bytes: instead
	// of writing them, the writer reports the (source offset, length)
	// extent and advances as if it had. The span-plan restream uses
	// this to describe whole-block runs as file extents a server can
	// sendfile verbatim. Offsets, index entries, and the rolling MD5
	// come out identical to the written stream.
	spliceOut func(srcOff int64, n int) error
}

// NewWriterV2 starts a v2 stream on w, writing the header immediately.
// blockSamples <= 0 uses DefaultBlockSamples.
func NewWriterV2(w io.Writer, meta Meta, blockSamples int) (*WriterV2, error) {
	return newWriterV2(w, meta, blockSamples, false)
}

// NewWriterV21 starts a v2.1 stream: the v2 layout with per-block
// compression. The sample stream, index semantics, and rolling MD5 are
// identical to a v2 stream over the same samples — only the block
// payload bytes are packed differently.
func NewWriterV21(w io.Writer, meta Meta, blockSamples int) (*WriterV2, error) {
	return newWriterV2(w, meta, blockSamples, true)
}

func newWriterV2(w io.Writer, meta Meta, blockSamples int, compress bool) (*WriterV2, error) {
	if blockSamples <= 0 {
		blockSamples = DefaultBlockSamples
	}
	if blockSamples > maxBlockSamples {
		return nil, fmt.Errorf("trace: block size %d too large", blockSamples)
	}
	wr := &WriterV2{
		w:            w,
		blockSamples: blockSamples,
		buf:          make([]byte, 0, blockSamples*sampleWireSize),
		h:            md5.New(),
		compress:     compress,
	}
	magic := uint32(traceMagicV2)
	if compress {
		magic = traceMagicV21
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(blockSamples))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(meta.Regions)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(meta.Kernels)))
	if err := wr.write(hdr[:]); err != nil {
		return nil, err
	}
	if err := wr.writeString(meta.Workload); err != nil {
		return nil, err
	}
	for _, s := range meta.Regions {
		if err := wr.writeString(s); err != nil {
			return nil, err
		}
	}
	for _, s := range meta.Kernels {
		if err := wr.writeString(s); err != nil {
			return nil, err
		}
	}
	return wr, nil
}

func (wr *WriterV2) write(b []byte) error {
	n, err := wr.w.Write(b)
	wr.off += uint64(n)
	return err
}

func (wr *WriterV2) writeString(s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("trace: string too long (%d)", len(s))
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	if err := wr.write(l[:]); err != nil {
		return err
	}
	return wr.write([]byte(s))
}

// Emit appends one sample to the stream.
func (wr *WriterV2) Emit(s *Sample) error {
	if wr.closed {
		return fmt.Errorf("trace: emit after Close")
	}
	if wr.n == 0 {
		wr.cur = BlockInfo{Offset: wr.off, TimeMin: s.TimeNs, TimeMax: s.TimeNs}
	} else {
		if s.TimeNs < wr.cur.TimeMin {
			wr.cur.TimeMin = s.TimeNs
		}
		if s.TimeNs > wr.cur.TimeMax {
			wr.cur.TimeMax = s.TimeNs
		}
	}
	wr.cur.CoreMask |= CoreBit(s.Core)
	wr.cur.Count++
	start := len(wr.buf)
	wr.buf = wr.buf[:start+sampleWireSize]
	encodeSample(wr.buf[start:], s)
	wr.h.Write(wr.buf[start:])
	wr.n++
	wr.total++
	if wr.n == wr.blockSamples {
		return wr.flushBlock()
	}
	return nil
}

// EmitBatch appends a batch of samples, encoding directly into the
// block buffer with one bulk hash write per contained block span —
// the native batch path of the sink chain. The produced bytes are
// identical to per-sample Emit over the same stream (the rolling MD5
// is over a concatenation, which is invariant to write boundaries).
func (wr *WriterV2) EmitBatch(batch []Sample) error {
	if wr.closed {
		return fmt.Errorf("trace: emit after Close")
	}
	for len(batch) > 0 {
		if wr.n == 0 {
			wr.cur = BlockInfo{Offset: wr.off, TimeMin: batch[0].TimeNs, TimeMax: batch[0].TimeNs}
		}
		take := wr.blockSamples - wr.n
		if take > len(batch) {
			take = len(batch)
		}
		start := len(wr.buf)
		wr.buf = wr.buf[:start+take*sampleWireSize]
		for i := 0; i < take; i++ {
			s := &batch[i]
			if s.TimeNs < wr.cur.TimeMin {
				wr.cur.TimeMin = s.TimeNs
			}
			if s.TimeNs > wr.cur.TimeMax {
				wr.cur.TimeMax = s.TimeNs
			}
			wr.cur.CoreMask |= CoreBit(s.Core)
			encodeSample(wr.buf[start+i*sampleWireSize:], s)
		}
		wr.h.Write(wr.buf[start:])
		wr.cur.Count += uint32(take)
		wr.n += take
		wr.total += uint64(take)
		batch = batch[take:]
		if wr.n == wr.blockSamples {
			if err := wr.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (wr *WriterV2) flushBlock() error {
	if wr.n == 0 {
		return nil
	}
	out := wr.buf
	if wr.compress {
		// Store the compressed frame only when it wins; incompressible
		// blocks stay raw (CSize 0), so compression never inflates.
		wr.cbuf = snapEncode(wr.cbuf[:0], wr.buf)
		if len(wr.cbuf) < len(wr.buf) {
			out = wr.cbuf
			wr.cur.CSize = uint32(len(wr.cbuf))
		}
	}
	if err := wr.write(out); err != nil {
		return err
	}
	wr.index = append(wr.index, wr.cur)
	wr.buf = wr.buf[:0]
	wr.n = 0
	return nil
}

// spliceBlock appends one stored block verbatim: stored is the block's
// on-disk bytes (compressed frame or raw records, matching the
// writer's mode), payload the uncompressed records the rolling hash is
// defined over. The caller must flush any partial block first; the
// restream splice path is the only user.
func (wr *WriterV2) spliceBlock(info BlockInfo, stored, payload []byte) error {
	switch {
	case wr.closed:
		return fmt.Errorf("trace: emit after Close")
	case wr.n != 0:
		return fmt.Errorf("trace: splice into a partial block")
	case int(info.Count) > wr.blockSamples:
		return fmt.Errorf("trace: spliced block count %d exceeds block size %d",
			info.Count, wr.blockSamples)
	case info.CSize > 0 && !wr.compress:
		return fmt.Errorf("trace: compressed splice into an uncompressed stream")
	}
	b := info
	b.Offset = wr.off
	if wr.spliceOut != nil {
		// info.Offset is still the block's offset in the source stream
		// (the line above rewrote only the copy destined for the new
		// index) — exactly the extent the plan needs.
		if err := wr.spliceOut(int64(info.Offset), len(stored)); err != nil {
			return err
		}
		wr.off += uint64(len(stored))
	} else if err := wr.write(stored); err != nil {
		return err
	}
	wr.h.Write(payload)
	wr.index = append(wr.index, b)
	wr.total += uint64(info.Count)
	return nil
}

// Close flushes the final block and writes the footer index and tail.
// The stream is complete and self-describing only after Close returns.
func (wr *WriterV2) Close() error {
	if wr.closed {
		return nil
	}
	if err := wr.flushBlock(); err != nil {
		return err
	}
	wr.closed = true
	indexOff := wr.off
	var ent [blockIndexEntrySize]byte
	for _, b := range wr.index {
		binary.LittleEndian.PutUint64(ent[0:], b.Offset)
		binary.LittleEndian.PutUint32(ent[8:], b.Count)
		binary.LittleEndian.PutUint32(ent[12:], b.CSize)
		binary.LittleEndian.PutUint64(ent[16:], b.TimeMin)
		binary.LittleEndian.PutUint64(ent[24:], b.TimeMax)
		binary.LittleEndian.PutUint64(ent[32:], b.CoreMask)
		if err := wr.write(ent[:]); err != nil {
			return err
		}
	}
	var tail [footerTailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], indexOff)
	binary.LittleEndian.PutUint64(tail[8:], wr.total)
	binary.LittleEndian.PutUint32(tail[16:], uint32(len(wr.index)))
	binary.LittleEndian.PutUint32(tail[20:], uint32(wr.blockSamples))
	sum := wr.h.Sum(nil)
	copy(tail[24:40], sum)
	binary.LittleEndian.PutUint32(tail[40:], 0)
	fm := uint32(footerMagicV2)
	if wr.compress {
		fm = footerMagicV21
	}
	binary.LittleEndian.PutUint32(tail[44:], fm)
	return wr.write(tail[:])
}

// Sum16 returns the rolling checksum of the samples emitted so far
// (equal to Trace.MD5 over the same stream).
func (wr *WriterV2) Sum16() [16]byte {
	var out [16]byte
	copy(out[:], wr.h.Sum(nil))
	return out
}

// Total returns the number of samples emitted so far.
func (wr *WriterV2) Total() uint64 { return wr.total }

// ReaderV2 reads a v2 trace out-of-core: opening it loads only the
// header and footer index; Scan visits blocks one at a time through a
// reusable buffer, skipping blocks whose index entry cannot match the
// scan hints.
type ReaderV2 struct {
	r            io.ReadSeeker
	meta         Meta
	blockSamples int
	index        []BlockInfo
	total        uint64
	sum          [16]byte
	read, skip   uint64
	compressed   bool   // v2.1 file (per-block compression enabled)
	raw          []byte // reusable decompressed-payload buffer
	craw         []byte // reusable stored-bytes read buffer
}

// OpenV2 validates the file's header and footer and loads the block
// index. The sample payload is not read.
func OpenV2(r io.ReadSeeker) (*ReaderV2, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("%w: v2 seek: %v", ErrBadTrace, err)
	}
	if size < 16+2+footerTailSize {
		return nil, fmt.Errorf("%w: v2 file too short (%d bytes)", ErrBadTrace, size)
	}
	if _, err := r.Seek(size-footerTailSize, io.SeekStart); err != nil {
		return nil, fmt.Errorf("%w: v2 seek tail: %v", ErrBadTrace, err)
	}
	var tail [footerTailSize]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: v2 tail: %v", ErrBadTrace, err)
	}
	var compressed bool
	switch binary.LittleEndian.Uint32(tail[44:]) {
	case footerMagicV2:
	case footerMagicV21:
		compressed = true
	default:
		return nil, fmt.Errorf("%w: v2 bad footer magic", ErrBadTrace)
	}
	rd := &ReaderV2{r: r, total: binary.LittleEndian.Uint64(tail[8:]), compressed: compressed}
	indexOff := binary.LittleEndian.Uint64(tail[0:])
	nBlocks := binary.LittleEndian.Uint32(tail[16:])
	rd.blockSamples = int(binary.LittleEndian.Uint32(tail[20:]))
	copy(rd.sum[:], tail[24:40])
	if rd.blockSamples <= 0 || rd.blockSamples > maxBlockSamples {
		return nil, fmt.Errorf("%w: v2 implausible block size %d", ErrBadTrace, rd.blockSamples)
	}
	if indexOff+uint64(nBlocks)*blockIndexEntrySize+footerTailSize != uint64(size) {
		return nil, fmt.Errorf("%w: v2 index does not span to the tail", ErrBadTrace)
	}

	if _, err := r.Seek(int64(indexOff), io.SeekStart); err != nil {
		return nil, fmt.Errorf("%w: v2 seek index: %v", ErrBadTrace, err)
	}
	var sumCount uint64
	var ent [blockIndexEntrySize]byte
	rd.index = make([]BlockInfo, nBlocks)
	for i := range rd.index {
		if _, err := io.ReadFull(r, ent[:]); err != nil {
			return nil, fmt.Errorf("%w: v2 index entry %d: %v", ErrBadTrace, i, err)
		}
		b := BlockInfo{
			Offset:   binary.LittleEndian.Uint64(ent[0:]),
			Count:    binary.LittleEndian.Uint32(ent[8:]),
			CSize:    binary.LittleEndian.Uint32(ent[12:]),
			TimeMin:  binary.LittleEndian.Uint64(ent[16:]),
			TimeMax:  binary.LittleEndian.Uint64(ent[24:]),
			CoreMask: binary.LittleEndian.Uint64(ent[32:]),
		}
		if b.Count == 0 || int(b.Count) > rd.blockSamples {
			return nil, fmt.Errorf("%w: v2 block %d count %d", ErrBadTrace, i, b.Count)
		}
		if b.TimeMin > b.TimeMax {
			return nil, fmt.Errorf("%w: v2 block %d time range inverted", ErrBadTrace, i)
		}
		if b.CSize != 0 {
			if !rd.compressed {
				return nil, fmt.Errorf("%w: v2 block %d has a nonzero reserved field", ErrBadTrace, i)
			}
			// Compressed frames are stored only when strictly smaller
			// than the raw records; a footer claiming otherwise lies.
			if uint64(b.CSize) >= uint64(b.Count)*sampleWireSize {
				return nil, fmt.Errorf("%w: v2.1 block %d compressed size %d not smaller than %d raw bytes",
					ErrBadTrace, i, b.CSize, uint64(b.Count)*sampleWireSize)
			}
		}
		if b.Offset+b.storedSize() > indexOff {
			return nil, fmt.Errorf("%w: v2 block %d overruns the index", ErrBadTrace, i)
		}
		if i > 0 && b.Offset < rd.index[i-1].Offset+rd.index[i-1].storedSize() {
			return nil, fmt.Errorf("%w: v2 block %d overlaps block %d", ErrBadTrace, i, i-1)
		}
		rd.index[i] = b
		sumCount += uint64(b.Count)
	}
	if sumCount != rd.total {
		return nil, fmt.Errorf("%w: v2 block counts sum to %d, tail says %d",
			ErrBadTrace, sumCount, rd.total)
	}

	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("%w: v2 seek header: %v", ErrBadTrace, err)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: v2 header: %v", ErrBadTrace, err)
	}
	wantMagic := uint32(traceMagicV2)
	if rd.compressed {
		wantMagic = traceMagicV21
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != wantMagic {
		return nil, fmt.Errorf("%w: v2 bad magic", ErrBadTrace)
	}
	if int(binary.LittleEndian.Uint32(hdr[4:])) != rd.blockSamples {
		return nil, fmt.Errorf("%w: v2 header/tail block size mismatch", ErrBadTrace)
	}
	nRegions := binary.LittleEndian.Uint32(hdr[8:])
	nKernels := binary.LittleEndian.Uint32(hdr[12:])
	if nRegions > 1<<16 || nKernels > 1<<16 {
		return nil, fmt.Errorf("%w: v2 implausible table sizes", ErrBadTrace)
	}
	if rd.meta.Workload, err = readString(r); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nRegions; i++ {
		s, err := readString(r)
		if err != nil {
			return nil, err
		}
		rd.meta.Regions = append(rd.meta.Regions, s)
	}
	for i := uint32(0); i < nKernels; i++ {
		s, err := readString(r)
		if err != nil {
			return nil, err
		}
		rd.meta.Kernels = append(rd.meta.Kernels, s)
	}
	return rd, nil
}

// Meta returns the stream identity from the header.
func (rd *ReaderV2) Meta() Meta { return rd.meta }

// TotalSamples returns the sample count from the tail.
func (rd *ReaderV2) TotalSamples() uint64 { return rd.total }

// MD5 returns the payload checksum recorded in the tail.
func (rd *ReaderV2) MD5() [16]byte { return rd.sum }

// NumBlocks returns the number of sample blocks.
func (rd *ReaderV2) NumBlocks() int { return len(rd.index) }

// Block returns the index entry of block i.
func (rd *ReaderV2) Block(i int) BlockInfo { return rd.index[i] }

// readStoredBlock reads block i's stored bytes and returns them along
// with the uncompressed record payload (equal slices for raw blocks;
// v2.1 compressed frames are decoded into a reusable buffer). Both
// returned slices alias reader-owned buffers valid until the next
// read.
func (rd *ReaderV2) readStoredBlock(i int) (stored, payload []byte, err error) {
	b := rd.index[i]
	ns := int(b.storedSize())
	if cap(rd.craw) < ns {
		rd.craw = make([]byte, ns)
	}
	stored = rd.craw[:ns]
	if _, err := rd.r.Seek(int64(b.Offset), io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("%w: v2 seek block %d: %v", ErrBadTrace, i, err)
	}
	if _, err := io.ReadFull(rd.r, stored); err != nil {
		return nil, nil, fmt.Errorf("%w: v2 block %d: %v", ErrBadTrace, i, err)
	}
	if b.CSize == 0 {
		return stored, stored, nil
	}
	raw := int(b.Count) * sampleWireSize
	if cap(rd.raw) < raw {
		rd.raw = make([]byte, raw)
	}
	payload = rd.raw[:raw]
	if err := snapDecode(payload, stored); err != nil {
		return nil, nil, fmt.Errorf("%w: v2.1 block %d: %v", ErrBadTrace, i, err)
	}
	return stored, payload, nil
}

// ReadBlock decodes block i into dst (grown as needed) and returns the
// decoded slice. dst may be reused across calls to bound allocation.
// Compressed blocks are decompressed through a reusable buffer — a
// block that ScanHints rule out costs neither decode nor decompress,
// because Scan never calls this for it.
func (rd *ReaderV2) ReadBlock(i int, dst []Sample) ([]Sample, error) {
	b := rd.index[i]
	_, payload, err := rd.readStoredBlock(i)
	if err != nil {
		return nil, err
	}
	if cap(dst) < int(b.Count) {
		dst = make([]Sample, b.Count)
	}
	dst = dst[:b.Count]
	for j := range dst {
		decodeSample(payload[j*sampleWireSize:], &dst[j])
	}
	return dst, nil
}

// Scan streams samples to fn in file order, skipping blocks whose
// index entry rules them out under the hints. Like every SampleSource,
// it may over-deliver relative to the hints (block granularity);
// callers filter exactly.
func (rd *ReaderV2) Scan(h ScanHints, fn func(*Sample)) error {
	var buf []Sample
	var err error
	for i := range rd.index {
		if !h.Admits(rd.index[i]) {
			rd.skip++
			continue
		}
		rd.read++
		if buf, err = rd.ReadBlock(i, buf); err != nil {
			return err
		}
		for j := range buf {
			fn(&buf[j])
		}
	}
	return nil
}

// ScanStats returns the cumulative blocks read and skipped across all
// Scan calls — the observable effect of predicate push-down. On a
// compressed (v2.1) file every skipped block also skipped its
// decompression.
func (rd *ReaderV2) ScanStats() (read, skipped uint64) { return rd.read, rd.skip }

// Compressed reports whether the file is v2.1 with per-block
// compression enabled at write time.
func (rd *ReaderV2) Compressed() bool { return rd.compressed }

// PayloadSizes sums the block index: stored is the on-disk byte size
// of all blocks (compressed frames at their frame size), raw the
// uncompressed record payload they decode to. raw/stored is the file's
// block-compression ratio; the two are equal for v2 files.
func (rd *ReaderV2) PayloadSizes() (stored, raw uint64) {
	for _, b := range rd.index {
		stored += b.storedSize()
		raw += uint64(b.Count) * sampleWireSize
	}
	return stored, raw
}

// VerifyMD5 rehashes the stream's uncompressed record payload block by
// block and checks it against the rolling MD5 recorded in the tail,
// returning the recomputed sum. It never decodes samples — the rolling
// hash is defined over the encoded payload bytes in stream order, so
// verification is a straight read (plus per-block decompression for
// v2.1 files). This is the integrity check a daemon runs when adopting
// a spilled cache file it did not write itself.
func (rd *ReaderV2) VerifyMD5() ([16]byte, error) {
	h := md5.New()
	for i := range rd.index {
		_, payload, err := rd.readStoredBlock(i)
		if err != nil {
			return [16]byte{}, err
		}
		h.Write(payload)
	}
	var sum [16]byte
	h.Sum(sum[:0])
	if sum != rd.sum {
		return sum, fmt.Errorf("%w: payload md5 %x does not match tail %x", ErrBadTrace, sum, rd.sum)
	}
	return sum, nil
}

// ReadAll materializes the whole file into an in-memory Trace (the v1
// object model). Intended for tooling and tests; out-of-core consumers
// use Scan.
func (rd *ReaderV2) ReadAll() (*Trace, error) {
	tr := &Trace{
		Workload: rd.meta.Workload,
		Regions:  rd.meta.Regions,
		Kernels:  rd.meta.Kernels,
		Samples:  make([]Sample, 0, rd.total),
	}
	err := rd.Scan(ScanHints{}, func(s *Sample) {
		tr.Samples = append(tr.Samples, *s)
	})
	return tr, err
}
