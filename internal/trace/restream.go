package trace

import "io"

// Restream writes a filtered copy of an open v2 trace to w as a fresh,
// self-describing v2 stream: blocks the hints rule out are skipped via
// the footer index (their bytes are never read), surviving samples are
// exact-filtered by keep and re-emitted through a new WriterV2 with its
// own index and rolling MD5. blockSamples <= 0 keeps the source's
// block granularity.
//
// This is the push-down boundary of the service layer's trace
// endpoint: ?from/to/core become ScanHints (block skip on the server's
// stored blob) plus a keep predicate (exact trim of the admitted
// blocks), and the client receives a valid v2 file it can verify and
// re-query locally. A nil keep with zero hints degenerates to a block-
// by-block copy — but callers that want the original bytes (and the
// original checksum) should serve the blob directly instead.
//
// Returns the number of samples written.
func Restream(rd *ReaderV2, w io.Writer, h ScanHints, keep func(*Sample) bool, blockSamples int) (uint64, error) {
	if blockSamples <= 0 {
		blockSamples = rd.blockSamples
	}
	wr, err := NewWriterV2(w, rd.Meta(), blockSamples)
	if err != nil {
		return 0, err
	}
	scanErr := rd.Scan(h, func(s *Sample) {
		if err != nil || (keep != nil && !keep(s)) {
			return
		}
		err = wr.Emit(s)
	})
	if scanErr != nil {
		return wr.Total(), scanErr
	}
	if err != nil {
		return wr.Total(), err
	}
	return wr.Total(), wr.Close()
}
